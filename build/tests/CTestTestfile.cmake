# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_system_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_phantom[1]_include.cmake")
include("/root/repo/build/tests/test_scan_prior[1]_include.cmake")
include("/root/repo/build/tests/test_icd[1]_include.cmake")
include("/root/repo/build/tests/test_sv[1]_include.cmake")
include("/root/repo/build/tests/test_chunks[1]_include.cmake")
include("/root/repo/build/tests/test_gsim[1]_include.cmake")
include("/root/repo/build/tests/test_psv_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_recon[1]_include.cmake")
include("/root/repo/build/tests/test_iter_io[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
