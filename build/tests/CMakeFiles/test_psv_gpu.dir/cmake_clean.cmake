file(REMOVE_RECURSE
  "CMakeFiles/test_psv_gpu.dir/test_psv_gpu.cpp.o"
  "CMakeFiles/test_psv_gpu.dir/test_psv_gpu.cpp.o.d"
  "test_psv_gpu"
  "test_psv_gpu.pdb"
  "test_psv_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psv_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
