# Empty compiler generated dependencies file for test_psv_gpu.
# This may be replaced when dependencies are built.
