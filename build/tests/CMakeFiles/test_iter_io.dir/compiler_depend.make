# Empty compiler generated dependencies file for test_iter_io.
# This may be replaced when dependencies are built.
