file(REMOVE_RECURSE
  "CMakeFiles/test_iter_io.dir/test_iter_io.cpp.o"
  "CMakeFiles/test_iter_io.dir/test_iter_io.cpp.o.d"
  "test_iter_io"
  "test_iter_io.pdb"
  "test_iter_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iter_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
