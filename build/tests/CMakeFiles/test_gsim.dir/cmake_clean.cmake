file(REMOVE_RECURSE
  "CMakeFiles/test_gsim.dir/test_gsim.cpp.o"
  "CMakeFiles/test_gsim.dir/test_gsim.cpp.o.d"
  "test_gsim"
  "test_gsim.pdb"
  "test_gsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
