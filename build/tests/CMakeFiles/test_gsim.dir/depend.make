# Empty dependencies file for test_gsim.
# This may be replaced when dependencies are built.
