file(REMOVE_RECURSE
  "CMakeFiles/test_chunks.dir/test_chunks.cpp.o"
  "CMakeFiles/test_chunks.dir/test_chunks.cpp.o.d"
  "test_chunks"
  "test_chunks.pdb"
  "test_chunks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
