# Empty compiler generated dependencies file for test_chunks.
# This may be replaced when dependencies are built.
