file(REMOVE_RECURSE
  "CMakeFiles/test_system_matrix.dir/test_system_matrix.cpp.o"
  "CMakeFiles/test_system_matrix.dir/test_system_matrix.cpp.o.d"
  "test_system_matrix"
  "test_system_matrix.pdb"
  "test_system_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
