# Empty dependencies file for test_system_matrix.
# This may be replaced when dependencies are built.
