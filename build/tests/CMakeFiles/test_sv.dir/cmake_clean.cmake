file(REMOVE_RECURSE
  "CMakeFiles/test_sv.dir/test_sv.cpp.o"
  "CMakeFiles/test_sv.dir/test_sv.cpp.o.d"
  "test_sv"
  "test_sv.pdb"
  "test_sv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
