# Empty dependencies file for test_scan_prior.
# This may be replaced when dependencies are built.
