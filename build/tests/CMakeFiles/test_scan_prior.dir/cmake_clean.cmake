file(REMOVE_RECURSE
  "CMakeFiles/test_scan_prior.dir/test_scan_prior.cpp.o"
  "CMakeFiles/test_scan_prior.dir/test_scan_prior.cpp.o.d"
  "test_scan_prior"
  "test_scan_prior.pdb"
  "test_scan_prior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
