# Empty compiler generated dependencies file for test_icd.
# This may be replaced when dependencies are built.
