file(REMOVE_RECURSE
  "CMakeFiles/test_icd.dir/test_icd.cpp.o"
  "CMakeFiles/test_icd.dir/test_icd.cpp.o.d"
  "test_icd"
  "test_icd.pdb"
  "test_icd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
