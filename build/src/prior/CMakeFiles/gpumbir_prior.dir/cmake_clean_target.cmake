file(REMOVE_RECURSE
  "libgpumbir_prior.a"
)
