file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_prior.dir/neighborhood.cpp.o"
  "CMakeFiles/gpumbir_prior.dir/neighborhood.cpp.o.d"
  "CMakeFiles/gpumbir_prior.dir/prior.cpp.o"
  "CMakeFiles/gpumbir_prior.dir/prior.cpp.o.d"
  "libgpumbir_prior.a"
  "libgpumbir_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
