# Empty dependencies file for gpumbir_prior.
# This may be replaced when dependencies are built.
