
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prior/neighborhood.cpp" "src/prior/CMakeFiles/gpumbir_prior.dir/neighborhood.cpp.o" "gcc" "src/prior/CMakeFiles/gpumbir_prior.dir/neighborhood.cpp.o.d"
  "/root/repo/src/prior/prior.cpp" "src/prior/CMakeFiles/gpumbir_prior.dir/prior.cpp.o" "gcc" "src/prior/CMakeFiles/gpumbir_prior.dir/prior.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
