file(REMOVE_RECURSE
  "libgpumbir_icd.a"
)
