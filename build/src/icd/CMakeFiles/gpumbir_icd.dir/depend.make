# Empty dependencies file for gpumbir_icd.
# This may be replaced when dependencies are built.
