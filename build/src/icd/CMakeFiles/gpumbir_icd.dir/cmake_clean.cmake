file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_icd.dir/convergence.cpp.o"
  "CMakeFiles/gpumbir_icd.dir/convergence.cpp.o.d"
  "CMakeFiles/gpumbir_icd.dir/cost.cpp.o"
  "CMakeFiles/gpumbir_icd.dir/cost.cpp.o.d"
  "CMakeFiles/gpumbir_icd.dir/sequential_icd.cpp.o"
  "CMakeFiles/gpumbir_icd.dir/sequential_icd.cpp.o.d"
  "CMakeFiles/gpumbir_icd.dir/update_order.cpp.o"
  "CMakeFiles/gpumbir_icd.dir/update_order.cpp.o.d"
  "CMakeFiles/gpumbir_icd.dir/voxel_update.cpp.o"
  "CMakeFiles/gpumbir_icd.dir/voxel_update.cpp.o.d"
  "libgpumbir_icd.a"
  "libgpumbir_icd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_icd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
