
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/icd/convergence.cpp" "src/icd/CMakeFiles/gpumbir_icd.dir/convergence.cpp.o" "gcc" "src/icd/CMakeFiles/gpumbir_icd.dir/convergence.cpp.o.d"
  "/root/repo/src/icd/cost.cpp" "src/icd/CMakeFiles/gpumbir_icd.dir/cost.cpp.o" "gcc" "src/icd/CMakeFiles/gpumbir_icd.dir/cost.cpp.o.d"
  "/root/repo/src/icd/sequential_icd.cpp" "src/icd/CMakeFiles/gpumbir_icd.dir/sequential_icd.cpp.o" "gcc" "src/icd/CMakeFiles/gpumbir_icd.dir/sequential_icd.cpp.o.d"
  "/root/repo/src/icd/update_order.cpp" "src/icd/CMakeFiles/gpumbir_icd.dir/update_order.cpp.o" "gcc" "src/icd/CMakeFiles/gpumbir_icd.dir/update_order.cpp.o.d"
  "/root/repo/src/icd/voxel_update.cpp" "src/icd/CMakeFiles/gpumbir_icd.dir/voxel_update.cpp.o" "gcc" "src/icd/CMakeFiles/gpumbir_icd.dir/voxel_update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/prior/CMakeFiles/gpumbir_prior.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
