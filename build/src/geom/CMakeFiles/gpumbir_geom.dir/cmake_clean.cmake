file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_geom.dir/fbp.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/fbp.cpp.o.d"
  "CMakeFiles/gpumbir_geom.dir/footprint.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/footprint.cpp.o.d"
  "CMakeFiles/gpumbir_geom.dir/geometry.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/geometry.cpp.o.d"
  "CMakeFiles/gpumbir_geom.dir/image.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/image.cpp.o.d"
  "CMakeFiles/gpumbir_geom.dir/projector.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/projector.cpp.o.d"
  "CMakeFiles/gpumbir_geom.dir/sinogram.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/sinogram.cpp.o.d"
  "CMakeFiles/gpumbir_geom.dir/system_matrix.cpp.o"
  "CMakeFiles/gpumbir_geom.dir/system_matrix.cpp.o.d"
  "libgpumbir_geom.a"
  "libgpumbir_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
