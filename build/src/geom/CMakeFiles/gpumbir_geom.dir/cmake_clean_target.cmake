file(REMOVE_RECURSE
  "libgpumbir_geom.a"
)
