
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/fbp.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/fbp.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/fbp.cpp.o.d"
  "/root/repo/src/geom/footprint.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/footprint.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/footprint.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/geometry.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/geometry.cpp.o.d"
  "/root/repo/src/geom/image.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/image.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/image.cpp.o.d"
  "/root/repo/src/geom/projector.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/projector.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/projector.cpp.o.d"
  "/root/repo/src/geom/sinogram.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/sinogram.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/sinogram.cpp.o.d"
  "/root/repo/src/geom/system_matrix.cpp" "src/geom/CMakeFiles/gpumbir_geom.dir/system_matrix.cpp.o" "gcc" "src/geom/CMakeFiles/gpumbir_geom.dir/system_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
