# Empty compiler generated dependencies file for gpumbir_geom.
# This may be replaced when dependencies are built.
