file(REMOVE_RECURSE
  "libgpumbir_gpuicd.a"
)
