file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_gpuicd.dir/conflicts.cpp.o"
  "CMakeFiles/gpumbir_gpuicd.dir/conflicts.cpp.o.d"
  "CMakeFiles/gpumbir_gpuicd.dir/gpu_icd.cpp.o"
  "CMakeFiles/gpumbir_gpuicd.dir/gpu_icd.cpp.o.d"
  "libgpumbir_gpuicd.a"
  "libgpumbir_gpuicd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_gpuicd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
