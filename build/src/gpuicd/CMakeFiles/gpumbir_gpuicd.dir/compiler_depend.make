# Empty compiler generated dependencies file for gpumbir_gpuicd.
# This may be replaced when dependencies are built.
