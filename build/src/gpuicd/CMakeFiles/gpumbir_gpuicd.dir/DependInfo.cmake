
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpuicd/conflicts.cpp" "src/gpuicd/CMakeFiles/gpumbir_gpuicd.dir/conflicts.cpp.o" "gcc" "src/gpuicd/CMakeFiles/gpumbir_gpuicd.dir/conflicts.cpp.o.d"
  "/root/repo/src/gpuicd/gpu_icd.cpp" "src/gpuicd/CMakeFiles/gpumbir_gpuicd.dir/gpu_icd.cpp.o" "gcc" "src/gpuicd/CMakeFiles/gpumbir_gpuicd.dir/gpu_icd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/prior/CMakeFiles/gpumbir_prior.dir/DependInfo.cmake"
  "/root/repo/build/src/icd/CMakeFiles/gpumbir_icd.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/gpumbir_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/gsim/CMakeFiles/gpumbir_gsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
