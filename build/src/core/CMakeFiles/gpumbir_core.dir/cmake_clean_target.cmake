file(REMOVE_RECURSE
  "libgpumbir_core.a"
)
