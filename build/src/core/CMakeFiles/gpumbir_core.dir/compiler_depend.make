# Empty compiler generated dependencies file for gpumbir_core.
# This may be replaced when dependencies are built.
