file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_core.dir/cli.cpp.o"
  "CMakeFiles/gpumbir_core.dir/cli.cpp.o.d"
  "CMakeFiles/gpumbir_core.dir/rng.cpp.o"
  "CMakeFiles/gpumbir_core.dir/rng.cpp.o.d"
  "CMakeFiles/gpumbir_core.dir/stats.cpp.o"
  "CMakeFiles/gpumbir_core.dir/stats.cpp.o.d"
  "CMakeFiles/gpumbir_core.dir/table.cpp.o"
  "CMakeFiles/gpumbir_core.dir/table.cpp.o.d"
  "CMakeFiles/gpumbir_core.dir/thread_pool.cpp.o"
  "CMakeFiles/gpumbir_core.dir/thread_pool.cpp.o.d"
  "libgpumbir_core.a"
  "libgpumbir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
