# Empty compiler generated dependencies file for gpumbir_recon.
# This may be replaced when dependencies are built.
