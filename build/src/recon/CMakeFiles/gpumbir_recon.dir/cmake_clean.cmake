file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_recon.dir/metrics.cpp.o"
  "CMakeFiles/gpumbir_recon.dir/metrics.cpp.o.d"
  "CMakeFiles/gpumbir_recon.dir/problem_setup.cpp.o"
  "CMakeFiles/gpumbir_recon.dir/problem_setup.cpp.o.d"
  "CMakeFiles/gpumbir_recon.dir/reconstructor.cpp.o"
  "CMakeFiles/gpumbir_recon.dir/reconstructor.cpp.o.d"
  "CMakeFiles/gpumbir_recon.dir/suite.cpp.o"
  "CMakeFiles/gpumbir_recon.dir/suite.cpp.o.d"
  "libgpumbir_recon.a"
  "libgpumbir_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
