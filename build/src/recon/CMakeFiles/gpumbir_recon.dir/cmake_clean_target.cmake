file(REMOVE_RECURSE
  "libgpumbir_recon.a"
)
