file(REMOVE_RECURSE
  "libgpumbir_io.a"
)
