# Empty compiler generated dependencies file for gpumbir_io.
# This may be replaced when dependencies are built.
