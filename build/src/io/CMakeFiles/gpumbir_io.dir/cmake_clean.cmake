file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_io.dir/image_io.cpp.o"
  "CMakeFiles/gpumbir_io.dir/image_io.cpp.o.d"
  "libgpumbir_io.a"
  "libgpumbir_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
