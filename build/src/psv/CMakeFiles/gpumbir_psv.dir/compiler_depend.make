# Empty compiler generated dependencies file for gpumbir_psv.
# This may be replaced when dependencies are built.
