file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_psv.dir/psv_icd.cpp.o"
  "CMakeFiles/gpumbir_psv.dir/psv_icd.cpp.o.d"
  "libgpumbir_psv.a"
  "libgpumbir_psv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_psv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
