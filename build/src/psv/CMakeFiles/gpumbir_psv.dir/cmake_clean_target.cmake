file(REMOVE_RECURSE
  "libgpumbir_psv.a"
)
