file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_gsim.dir/cpu_model.cpp.o"
  "CMakeFiles/gpumbir_gsim.dir/cpu_model.cpp.o.d"
  "CMakeFiles/gpumbir_gsim.dir/device.cpp.o"
  "CMakeFiles/gpumbir_gsim.dir/device.cpp.o.d"
  "CMakeFiles/gpumbir_gsim.dir/executor.cpp.o"
  "CMakeFiles/gpumbir_gsim.dir/executor.cpp.o.d"
  "CMakeFiles/gpumbir_gsim.dir/occupancy.cpp.o"
  "CMakeFiles/gpumbir_gsim.dir/occupancy.cpp.o.d"
  "CMakeFiles/gpumbir_gsim.dir/timing.cpp.o"
  "CMakeFiles/gpumbir_gsim.dir/timing.cpp.o.d"
  "libgpumbir_gsim.a"
  "libgpumbir_gsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_gsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
