file(REMOVE_RECURSE
  "libgpumbir_gsim.a"
)
