# Empty dependencies file for gpumbir_gsim.
# This may be replaced when dependencies are built.
