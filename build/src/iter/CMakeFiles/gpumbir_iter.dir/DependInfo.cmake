
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iter/art.cpp" "src/iter/CMakeFiles/gpumbir_iter.dir/art.cpp.o" "gcc" "src/iter/CMakeFiles/gpumbir_iter.dir/art.cpp.o.d"
  "/root/repo/src/iter/sirt.cpp" "src/iter/CMakeFiles/gpumbir_iter.dir/sirt.cpp.o" "gcc" "src/iter/CMakeFiles/gpumbir_iter.dir/sirt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
