file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_iter.dir/art.cpp.o"
  "CMakeFiles/gpumbir_iter.dir/art.cpp.o.d"
  "CMakeFiles/gpumbir_iter.dir/sirt.cpp.o"
  "CMakeFiles/gpumbir_iter.dir/sirt.cpp.o.d"
  "libgpumbir_iter.a"
  "libgpumbir_iter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
