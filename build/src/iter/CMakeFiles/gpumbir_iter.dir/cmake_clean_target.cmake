file(REMOVE_RECURSE
  "libgpumbir_iter.a"
)
