# Empty compiler generated dependencies file for gpumbir_iter.
# This may be replaced when dependencies are built.
