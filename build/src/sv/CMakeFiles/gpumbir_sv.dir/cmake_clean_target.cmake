file(REMOVE_RECURSE
  "libgpumbir_sv.a"
)
