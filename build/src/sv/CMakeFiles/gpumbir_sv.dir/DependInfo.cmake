
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sv/chunks.cpp" "src/sv/CMakeFiles/gpumbir_sv.dir/chunks.cpp.o" "gcc" "src/sv/CMakeFiles/gpumbir_sv.dir/chunks.cpp.o.d"
  "/root/repo/src/sv/supervoxel.cpp" "src/sv/CMakeFiles/gpumbir_sv.dir/supervoxel.cpp.o" "gcc" "src/sv/CMakeFiles/gpumbir_sv.dir/supervoxel.cpp.o.d"
  "/root/repo/src/sv/svb.cpp" "src/sv/CMakeFiles/gpumbir_sv.dir/svb.cpp.o" "gcc" "src/sv/CMakeFiles/gpumbir_sv.dir/svb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
