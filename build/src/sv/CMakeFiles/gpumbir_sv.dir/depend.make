# Empty dependencies file for gpumbir_sv.
# This may be replaced when dependencies are built.
