file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_sv.dir/chunks.cpp.o"
  "CMakeFiles/gpumbir_sv.dir/chunks.cpp.o.d"
  "CMakeFiles/gpumbir_sv.dir/supervoxel.cpp.o"
  "CMakeFiles/gpumbir_sv.dir/supervoxel.cpp.o.d"
  "CMakeFiles/gpumbir_sv.dir/svb.cpp.o"
  "CMakeFiles/gpumbir_sv.dir/svb.cpp.o.d"
  "libgpumbir_sv.a"
  "libgpumbir_sv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
