file(REMOVE_RECURSE
  "libgpumbir_scan.a"
)
