# Empty compiler generated dependencies file for gpumbir_scan.
# This may be replaced when dependencies are built.
