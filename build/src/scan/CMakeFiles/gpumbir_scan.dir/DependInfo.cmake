
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/noise.cpp" "src/scan/CMakeFiles/gpumbir_scan.dir/noise.cpp.o" "gcc" "src/scan/CMakeFiles/gpumbir_scan.dir/noise.cpp.o.d"
  "/root/repo/src/scan/scanner.cpp" "src/scan/CMakeFiles/gpumbir_scan.dir/scanner.cpp.o" "gcc" "src/scan/CMakeFiles/gpumbir_scan.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/phantom/CMakeFiles/gpumbir_phantom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
