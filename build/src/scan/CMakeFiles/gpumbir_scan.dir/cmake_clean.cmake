file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_scan.dir/noise.cpp.o"
  "CMakeFiles/gpumbir_scan.dir/noise.cpp.o.d"
  "CMakeFiles/gpumbir_scan.dir/scanner.cpp.o"
  "CMakeFiles/gpumbir_scan.dir/scanner.cpp.o.d"
  "libgpumbir_scan.a"
  "libgpumbir_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
