# Empty compiler generated dependencies file for gpumbir_phantom.
# This may be replaced when dependencies are built.
