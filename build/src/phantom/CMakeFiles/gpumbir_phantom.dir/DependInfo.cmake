
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phantom/analytic_projection.cpp" "src/phantom/CMakeFiles/gpumbir_phantom.dir/analytic_projection.cpp.o" "gcc" "src/phantom/CMakeFiles/gpumbir_phantom.dir/analytic_projection.cpp.o.d"
  "/root/repo/src/phantom/baggage.cpp" "src/phantom/CMakeFiles/gpumbir_phantom.dir/baggage.cpp.o" "gcc" "src/phantom/CMakeFiles/gpumbir_phantom.dir/baggage.cpp.o.d"
  "/root/repo/src/phantom/ellipse.cpp" "src/phantom/CMakeFiles/gpumbir_phantom.dir/ellipse.cpp.o" "gcc" "src/phantom/CMakeFiles/gpumbir_phantom.dir/ellipse.cpp.o.d"
  "/root/repo/src/phantom/rasterize.cpp" "src/phantom/CMakeFiles/gpumbir_phantom.dir/rasterize.cpp.o" "gcc" "src/phantom/CMakeFiles/gpumbir_phantom.dir/rasterize.cpp.o.d"
  "/root/repo/src/phantom/shepp_logan.cpp" "src/phantom/CMakeFiles/gpumbir_phantom.dir/shepp_logan.cpp.o" "gcc" "src/phantom/CMakeFiles/gpumbir_phantom.dir/shepp_logan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
