file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_phantom.dir/analytic_projection.cpp.o"
  "CMakeFiles/gpumbir_phantom.dir/analytic_projection.cpp.o.d"
  "CMakeFiles/gpumbir_phantom.dir/baggage.cpp.o"
  "CMakeFiles/gpumbir_phantom.dir/baggage.cpp.o.d"
  "CMakeFiles/gpumbir_phantom.dir/ellipse.cpp.o"
  "CMakeFiles/gpumbir_phantom.dir/ellipse.cpp.o.d"
  "CMakeFiles/gpumbir_phantom.dir/rasterize.cpp.o"
  "CMakeFiles/gpumbir_phantom.dir/rasterize.cpp.o.d"
  "CMakeFiles/gpumbir_phantom.dir/shepp_logan.cpp.o"
  "CMakeFiles/gpumbir_phantom.dir/shepp_logan.cpp.o.d"
  "libgpumbir_phantom.a"
  "libgpumbir_phantom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_phantom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
