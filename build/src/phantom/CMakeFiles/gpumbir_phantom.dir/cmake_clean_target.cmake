file(REMOVE_RECURSE
  "libgpumbir_phantom.a"
)
