# Empty dependencies file for gpumbir_bench_common.
# This may be replaced when dependencies are built.
