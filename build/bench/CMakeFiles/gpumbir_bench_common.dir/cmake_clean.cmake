file(REMOVE_RECURSE
  "CMakeFiles/gpumbir_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gpumbir_bench_common.dir/bench_common.cpp.o.d"
  "libgpumbir_bench_common.a"
  "libgpumbir_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpumbir_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
