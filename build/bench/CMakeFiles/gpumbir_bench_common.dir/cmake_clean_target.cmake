file(REMOVE_RECURSE
  "libgpumbir_bench_common.a"
)
