file(REMOVE_RECURSE
  "CMakeFiles/fig7a_sv_side.dir/fig7a_sv_side.cpp.o"
  "CMakeFiles/fig7a_sv_side.dir/fig7a_sv_side.cpp.o.d"
  "fig7a_sv_side"
  "fig7a_sv_side.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_sv_side.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
