# Empty dependencies file for fig7a_sv_side.
# This may be replaced when dependencies are built.
