file(REMOVE_RECURSE
  "CMakeFiles/table1_overall.dir/table1_overall.cpp.o"
  "CMakeFiles/table1_overall.dir/table1_overall.cpp.o.d"
  "table1_overall"
  "table1_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
