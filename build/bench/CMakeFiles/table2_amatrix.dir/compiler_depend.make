# Empty compiler generated dependencies file for table2_amatrix.
# This may be replaced when dependencies are built.
