file(REMOVE_RECURSE
  "CMakeFiles/table2_amatrix.dir/table2_amatrix.cpp.o"
  "CMakeFiles/table2_amatrix.dir/table2_amatrix.cpp.o.d"
  "table2_amatrix"
  "table2_amatrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_amatrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
