# Empty dependencies file for fig7c_threads_per_tb.
# This may be replaced when dependencies are built.
