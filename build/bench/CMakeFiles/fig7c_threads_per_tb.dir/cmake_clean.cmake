file(REMOVE_RECURSE
  "CMakeFiles/fig7c_threads_per_tb.dir/fig7c_threads_per_tb.cpp.o"
  "CMakeFiles/fig7c_threads_per_tb.dir/fig7c_threads_per_tb.cpp.o.d"
  "fig7c_threads_per_tb"
  "fig7c_threads_per_tb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_threads_per_tb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
