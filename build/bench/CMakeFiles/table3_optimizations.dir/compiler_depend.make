# Empty compiler generated dependencies file for table3_optimizations.
# This may be replaced when dependencies are built.
