file(REMOVE_RECURSE
  "CMakeFiles/table3_optimizations.dir/table3_optimizations.cpp.o"
  "CMakeFiles/table3_optimizations.dir/table3_optimizations.cpp.o.d"
  "table3_optimizations"
  "table3_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
