file(REMOVE_RECURSE
  "CMakeFiles/fig7b_tb_per_sv.dir/fig7b_tb_per_sv.cpp.o"
  "CMakeFiles/fig7b_tb_per_sv.dir/fig7b_tb_per_sv.cpp.o.d"
  "fig7b_tb_per_sv"
  "fig7b_tb_per_sv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_tb_per_sv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
