# Empty compiler generated dependencies file for fig7b_tb_per_sv.
# This may be replaced when dependencies are built.
