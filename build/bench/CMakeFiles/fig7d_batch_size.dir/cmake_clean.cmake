file(REMOVE_RECURSE
  "CMakeFiles/fig7d_batch_size.dir/fig7d_batch_size.cpp.o"
  "CMakeFiles/fig7d_batch_size.dir/fig7d_batch_size.cpp.o.d"
  "fig7d_batch_size"
  "fig7d_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7d_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
