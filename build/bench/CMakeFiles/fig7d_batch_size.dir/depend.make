# Empty dependencies file for fig7d_batch_size.
# This may be replaced when dependencies are built.
