# Empty dependencies file for fig6_chunk_width.
# This may be replaced when dependencies are built.
