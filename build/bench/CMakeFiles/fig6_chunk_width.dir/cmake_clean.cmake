file(REMOVE_RECURSE
  "CMakeFiles/fig6_chunk_width.dir/fig6_chunk_width.cpp.o"
  "CMakeFiles/fig6_chunk_width.dir/fig6_chunk_width.cpp.o.d"
  "fig6_chunk_width"
  "fig6_chunk_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_chunk_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
