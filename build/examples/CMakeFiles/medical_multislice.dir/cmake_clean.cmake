file(REMOVE_RECURSE
  "CMakeFiles/medical_multislice.dir/medical_multislice.cpp.o"
  "CMakeFiles/medical_multislice.dir/medical_multislice.cpp.o.d"
  "medical_multislice"
  "medical_multislice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_multislice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
