# Empty compiler generated dependencies file for medical_multislice.
# This may be replaced when dependencies are built.
