
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iter/CMakeFiles/gpumbir_iter.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/gpumbir_io.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/gpumbir_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/gpumbir_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/phantom/CMakeFiles/gpumbir_phantom.dir/DependInfo.cmake"
  "/root/repo/build/src/psv/CMakeFiles/gpumbir_psv.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuicd/CMakeFiles/gpumbir_gpuicd.dir/DependInfo.cmake"
  "/root/repo/build/src/sv/CMakeFiles/gpumbir_sv.dir/DependInfo.cmake"
  "/root/repo/build/src/gsim/CMakeFiles/gpumbir_gsim.dir/DependInfo.cmake"
  "/root/repo/build/src/icd/CMakeFiles/gpumbir_icd.dir/DependInfo.cmake"
  "/root/repo/build/src/prior/CMakeFiles/gpumbir_prior.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gpumbir_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpumbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
