# Empty compiler generated dependencies file for security_sparse_view.
# This may be replaced when dependencies are built.
