file(REMOVE_RECURSE
  "CMakeFiles/security_sparse_view.dir/security_sparse_view.cpp.o"
  "CMakeFiles/security_sparse_view.dir/security_sparse_view.cpp.o.d"
  "security_sparse_view"
  "security_sparse_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_sparse_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
