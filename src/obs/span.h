// Per-job span context: the identity a job carries through every layer so
// trace spans and flight-recorder events from svc admission down to
// individual gsim launches attribute to the same job.
//
// Created at admission (svc) or batch start (sched) and threaded by
// const pointer through DeviceRunContext → RunConfig → engines. Purely
// observational: nothing reads it back into the reconstruction, so a run
// with a span context is bit-identical to one without.
#pragma once

#include <string>

#include "obs/trace.h"

namespace mbir::obs {

class FlightRecorder;

struct JobSpanContext {
  int job_id = -1;
  std::string tenant;    ///< "" = default tenant
  std::string job_name;  ///< human label ("case3", "bench12", ...)
  /// Host-clock microseconds (recorder epoch) when the job was admitted;
  /// 0 when tracing is off. Lets dispatch render the queue wait as an
  /// explicit span starting at admission.
  double submit_host_us = 0.0;
  int device = -1;    ///< assigned at dispatch; -1 while queued
  int trace_pid = 0;  ///< modeled-clock trace process for the device
  /// Host-clock thread lane for the device (tid within pid kHost); 0 keeps
  /// the legacy single-lane layout.
  int host_tid = 0;
  /// Optional flight-recorder sink; layers below svc record coarse events
  /// (iterations, terminal states) here when set.
  FlightRecorder* flight = nullptr;
};

/// Attach the job identity to a trace span (job_id/tenant/job args).
inline void tagSpan(TraceEvent& ev, const JobSpanContext& span) {
  if (span.job_id >= 0) ev.num_args.emplace_back("job_id", double(span.job_id));
  if (!span.tenant.empty()) ev.str_args.emplace_back("tenant", span.tenant);
  if (!span.job_name.empty()) ev.str_args.emplace_back("job", span.job_name);
}

}  // namespace mbir::obs
