// Minimal JSON support for the observability subsystem.
//
// JsonWriter is a streaming builder used by every machine-readable artifact
// this repo emits (Chrome trace files, run reports, BENCH_*.json). The
// parser exists so ctest can validate those artifacts structurally (schema
// tests parse what the recorder wrote) without an external dependency; it
// accepts strict JSON only and throws mbir::Error on malformed input —
// including duplicate object keys, unescaped control characters, numbers
// that overflow to infinity, unpaired UTF-16 surrogate escapes, and nesting
// beyond 200 levels (fuzzed by tests/test_json_fuzz.cpp). Since PR 5 both
// ends also serve as the service wire format (src/svc), so the strictness
// guarantees are load-bearing at a trust boundary, not just for artifacts
// this repo wrote itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mbir::obs {

/// Streaming JSON builder. Containers are opened/closed explicitly; the
/// writer tracks comma placement. Keys must be written before values inside
/// objects (unbalanced use trips an MBIR_CHECK).
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  ///< non-finite values are written as null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(std::int64_t(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Splice a pre-serialized complete JSON value (e.g. a nested report
  /// document built by another writer) in value position. The caller owns
  /// the claim that `json` is well formed.
  JsonWriter& raw(std::string_view json);

  /// Shorthand for key(k).value(v).
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// The document built so far. Complete (all containers closed) documents
  /// only — the writer does not verify completeness.
  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);
  static std::string formatNumber(double v);

 private:
  void beforeValue();

  std::string out_;
  std::vector<char> stack_;  // '{' or '[' per open container
  bool first_in_container_ = true;
  bool after_key_ = false;
};

/// Parsed JSON document node.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> array_v;
  std::map<std::string, JsonValue> object_v;

  bool isNull() const { return type == Type::kNull; }
  bool isObject() const { return type == Type::kObject; }
  bool isArray() const { return type == Type::kArray; }
  bool isNumber() const { return type == Type::kNumber; }
  bool isString() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;

  /// Checked accessors (throw mbir::Error on type mismatch).
  double asNumber() const;
  const std::string& asString() const;
  bool asBool() const;
};

/// Parse a complete JSON document (throws mbir::Error on syntax errors or
/// trailing garbage).
JsonValue parseJson(std::string_view text);

}  // namespace mbir::obs
