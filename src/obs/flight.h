// Flight recorder: an always-on, bounded ring buffer of recent coarse span
// events per device lane, dumped as `gpumbir.flight/1` JSON when something
// goes wrong (deadline miss, job failure, cancel, SIGUSR1). The point is a
// post-mortem of "what was each device doing just before the incident"
// without the cost or volume of an always-on Chrome trace file.
//
// Memory is bounded by construction: num_lanes * capacity rings of small
// fixed events; old events are overwritten, never reallocated on the hot
// path after warm-up. record() takes a short mutex — same cost class as a
// Histogram::observe — and nothing feeds back into reconstruction.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mbir::obs {

struct FlightEvent {
  /// Host microseconds since the recorder's construction — stamped by
  /// record() itself so every event in a dump shares one clock, whether or
  /// not a trace recorder exists.
  double host_us = 0.0;
  int job_id = -1;
  std::string kind;    ///< "admit" | "dispatch" | "iteration" | "done" | ...
  std::string detail;  ///< free text: tenant, error message, kernel name
  double value = 0.0;  ///< numeric payload (rmse, wait seconds, ...)
};

class FlightRecorder {
 public:
  /// Lane 0 is the control plane (admission, cancels); lanes 1..num_devices
  /// are one per device.
  explicit FlightRecorder(int num_devices, std::size_t capacity_per_lane = 256);

  static constexpr std::string_view kSchema = "gpumbir.flight/1";

  /// Control-plane lane index and the lane for a device.
  static constexpr int kControlLane = 0;
  static int deviceLane(int device) { return device + 1; }

  /// Append one event to a lane's ring (out-of-range lanes clamp to the
  /// control lane), stamping ev.host_us. Thread-safe; overwrites the
  /// oldest event when full.
  void record(int lane, FlightEvent ev);

  /// Events currently buffered across all lanes.
  std::size_t size() const;
  /// Total events ever recorded (buffered + overwritten).
  std::uint64_t totalRecorded() const;

  /// Snapshot the rings as a `gpumbir.flight/1` document:
  ///   {"schema":..,"reason":..,"capacity_per_lane":..,"lanes":[
  ///     {"lane":0,"device":-1,"events_total":N,"events":[...oldest first]}]}
  std::string dumpJson(std::string_view reason) const;

  /// dumpJson() to a file (throws mbir::Error on I/O failure).
  void writeFile(const std::string& path, std::string_view reason) const;

 private:
  struct Lane {
    std::vector<FlightEvent> ring;  // grows to capacity, then wraps
    std::size_t next = 0;           // overwrite cursor once full
    std::uint64_t total = 0;        // events ever recorded to this lane
  };

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Lane> lanes_;
  std::size_t capacity_;
};

}  // namespace mbir::obs
