#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "core/error.h"

namespace mbir::obs {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

std::string JsonWriter::formatNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values print as integers (counter values stay exact and the
  // documents stay diffable); everything else round-trips via %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::beforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  MBIR_CHECK_MSG(stack_.empty() || stack_.back() == '[',
                 "JSON object members need a key before the value");
  if (!first_in_container_) out_ += ',';
  first_in_container_ = false;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ += '{';
  stack_.push_back('{');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  MBIR_CHECK(!stack_.empty() && stack_.back() == '{' && !after_key_);
  stack_.pop_back();
  out_ += '}';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ += '[';
  stack_.push_back('[');
  first_in_container_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  MBIR_CHECK(!stack_.empty() && stack_.back() == '[');
  stack_.pop_back();
  out_ += ']';
  first_in_container_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  MBIR_CHECK_MSG(!stack_.empty() && stack_.back() == '{' && !after_key_,
                 "JSON key outside an object");
  if (!first_in_container_) out_ += ',';
  first_in_container_ = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  out_ += formatNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  beforeValue();
  out_ += json;
  return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  auto it = object_v.find(k);
  return it == object_v.end() ? nullptr : &it->second;
}

double JsonValue::asNumber() const {
  MBIR_CHECK_MSG(type == Type::kNumber, "JSON value is not a number");
  return num_v;
}

const std::string& JsonValue::asString() const {
  MBIR_CHECK_MSG(type == Type::kString, "JSON value is not a string");
  return str_v;
}

bool JsonValue::asBool() const {
  MBIR_CHECK_MSG(type == Type::kBool, "JSON value is not a bool");
  return bool_v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    MBIR_CHECK_MSG(pos_ == s_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail("unexpected character");
  }

  void skipWs() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool consumeLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str_v = parseString();
        return v;
      }
      case 't': {
        JsonValue v;
        if (!consumeLiteral("true")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.bool_v = true;
        return v;
      }
      case 'f': {
        JsonValue v;
        if (!consumeLiteral("false")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.bool_v = false;
        return v;
      }
      case 'n': {
        if (!consumeLiteral("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parseNumber();
    }
  }

  /// RAII nesting guard: the parser is recursive-descent, so unbounded
  /// nesting ("[[[[...") would exhaust the stack instead of throwing. 200
  /// levels is far beyond any document this repo emits.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth) p_.fail("nesting too deep");
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  JsonValue parseObject() {
    DepthGuard depth(*this);
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      JsonValue member = parseValue();
      // Strict: a duplicate key is a malformed document, not a last-wins
      // overwrite (the writers never emit one; silently dropping a member
      // would hide bugs in artifacts this repo reads back).
      if (!v.object_v.emplace(std::move(key), std::move(member)).second)
        fail("duplicate object key");
      skipWs();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    DepthGuard depth(*this);
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_v.push_back(parseValue());
      skipWs();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += char(cp);
    } else if (cp < 0x800) {
      out += char(0xC0 | (cp >> 6));
      out += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += char(0xE0 | (cp >> 12));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    } else {
      out += char(0xF0 | (cp >> 18));
      out += char(0x80 | ((cp >> 12) & 0x3F));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    }
  }

  unsigned parseHex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = next();
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= unsigned(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= unsigned(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= unsigned(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return cp;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20)
          fail("unescaped control character in string");
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parseHex4();
          // Surrogate handling: a high surrogate must be followed by an
          // escaped low surrogate (combined into one code point, encoded as
          // 4-byte UTF-8); anything unpaired is rejected — emitting CESU-8
          // or lone surrogates would hand invalid UTF-8 to wire peers.
          if (cp >= 0xDC00 && cp <= 0xDFFF) fail("unpaired low surrogate");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (next() != '\\' || next() != 'u')
              fail("high surrogate not followed by \\u low surrogate");
            const unsigned lo = parseHex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
              fail("high surrogate not followed by a low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          appendUtf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    // Enforce the strict JSON grammar before handing to strtod (which would
    // also accept "+1", "01", "1.", ".5", hex, "inf", ...):
    //   -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    const char* p = text.c_str();
    if (*p == '-') ++p;
    if (*p == '0') {
      ++p;
    } else if (*p >= '1' && *p <= '9') {
      while (*p >= '0' && *p <= '9') ++p;
    } else {
      fail("malformed number");
    }
    if (*p == '.') {
      ++p;
      if (*p < '0' || *p > '9') fail("malformed number");
      while (*p >= '0' && *p <= '9') ++p;
    }
    if (*p == 'e' || *p == 'E') {
      ++p;
      if (*p == '+' || *p == '-') ++p;
      if (*p < '0' || *p > '9') fail("malformed number");
      while (*p >= '0' && *p <= '9') ++p;
    }
    if (*p != '\0') fail("malformed number");
    const double d = std::strtod(text.c_str(), nullptr);
    // A grammatically valid literal can still overflow to ±inf ("1e999").
    // Strict parsing means a finite number or a rejection — a silent inf
    // would flow into protocol fields that every consumer assumes finite
    // (the writer, symmetrically, never emits non-finite numbers).
    if (!std::isfinite(d)) fail("number out of range");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.num_v = d;
    return v;
  }

  static constexpr int kMaxDepth = 200;

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parseJson(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace mbir::obs
