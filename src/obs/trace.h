// Structured trace recorder emitting Chrome trace-event JSON — the format
// Perfetto and chrome://tracing open directly.
//
// Two clocks, rendered as two trace "processes":
//   * pid 1 — real host wall time (microseconds since the recorder's
//     epoch): what the simulator actually spent executing kernels
//     functionally on host threads.
//   * pid 2 — modeled device time (microseconds of simulated Titan X
//     time, gsim's timing model): where the *modeled* run spends its
//     time — the clock the paper's tables are written in.
// The same span name can appear on both tracks (e.g. a kernel launch),
// letting one trace answer both "what is the simulator doing" and "what
// would the GPU be doing".
//
// record() is thread-safe (short mutex append); events carry complete
// ("ph":"X") spans with numeric/string args — KernelStats counters,
// occupancy, RMSE, ... — attached per span.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mbir::obs {

/// Which clock a span is measured on. Values double as the trace pid.
enum class Clock : int { kHost = 1, kModeled = 2 };

struct TraceEvent {
  std::string name;
  std::string cat;
  Clock clock = Clock::kHost;
  double ts_us = 0.0;   ///< span start (microseconds on `clock`)
  double dur_us = 0.0;  ///< span duration
  int tid = 0;          ///< track within the clock's process
  /// Trace process override; 0 = derive from `clock` (pid 1/2). The batch
  /// scheduler gives every simulated device its own process (see
  /// TraceRecorder::nameProcess) so multi-device runs render one modeled
  /// timeline per device.
  int pid = 0;
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds of host wall time since the recorder was created.
  double nowHostUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Append one complete span (thread-safe).
  void record(TraceEvent ev);

  /// Register an extra trace process (beyond the two built-in clock
  /// processes) with a display name and sort position — one per simulated
  /// device in a scheduler batch. Re-registering a pid overwrites its name.
  /// Thread-safe.
  void nameProcess(int pid, std::string name, int sort_index = 0);

  /// Name a thread track within a process — the service uses this to give
  /// the host-clock process one labelled lane per device ("device 0", ...)
  /// so per-job spans nest visually per device. Re-registering a (pid, tid)
  /// overwrites its name. Thread-safe.
  void nameThread(int pid, int tid, std::string name, int sort_index = 0);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;

  /// Serialize as a Chrome trace-event document:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}, with process_name
  /// metadata naming the host-clock and modeled-clock tracks.
  std::string toJson() const;

  /// toJson() to a file (throws mbir::Error on I/O failure).
  void writeFile(const std::string& path) const;

 private:
  struct ProcessMeta {
    int pid = 0;
    std::string name;
    int sort_index = 0;
  };
  struct ThreadMeta {
    int pid = 0;
    int tid = 0;
    std::string name;
    int sort_index = 0;
  };

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<ProcessMeta> processes_;
  std::vector<ThreadMeta> threads_;
};

}  // namespace mbir::obs
