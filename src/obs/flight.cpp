#include "obs/flight.h"

#include <algorithm>
#include <fstream>

#include "core/error.h"
#include "obs/json.h"

namespace mbir::obs {

FlightRecorder::FlightRecorder(int num_devices, std::size_t capacity_per_lane)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(1, capacity_per_lane)) {
  MBIR_CHECK_MSG(num_devices >= 0, "flight recorder needs num_devices >= 0");
  lanes_.resize(std::size_t(num_devices) + 1);  // +1: control lane
}

void FlightRecorder::record(int lane, FlightEvent ev) {
  ev.host_us = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
  std::lock_guard lock(mu_);
  const auto li = std::size_t(
      lane < 0 || lane >= int(lanes_.size()) ? kControlLane : lane);
  Lane& l = lanes_[li];
  ++l.total;
  if (l.ring.size() < capacity_) {
    l.ring.push_back(std::move(ev));
  } else {
    l.ring[l.next] = std::move(ev);
    l.next = (l.next + 1) % capacity_;
  }
}

std::size_t FlightRecorder::size() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Lane& l : lanes_) n += l.ring.size();
  return n;
}

std::uint64_t FlightRecorder::totalRecorded() const {
  std::lock_guard lock(mu_);
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.total;
  return n;
}

std::string FlightRecorder::dumpJson(std::string_view reason) const {
  JsonWriter w;
  std::lock_guard lock(mu_);
  w.beginObject();
  w.kv("schema", kSchema);
  w.kv("reason", reason);
  w.kv("capacity_per_lane", std::uint64_t(capacity_));
  w.key("lanes").beginArray();
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    const Lane& l = lanes_[li];
    w.beginObject();
    w.kv("lane", std::int64_t(li));
    w.kv("device", std::int64_t(li) - 1);  // -1 = control plane
    w.kv("events_total", l.total);
    w.key("events").beginArray();
    // Oldest first: once the ring has wrapped, `next` points at the oldest
    // entry; before that the ring is already in append order.
    const std::size_t n = l.ring.size();
    const std::size_t start = n == capacity_ ? l.next : 0;
    for (std::size_t k = 0; k < n; ++k) {
      const FlightEvent& ev = l.ring[(start + k) % n];
      w.beginObject();
      w.kv("host_us", ev.host_us);
      w.kv("job_id", std::int64_t(ev.job_id));
      w.kv("kind", ev.kind);
      if (!ev.detail.empty()) w.kv("detail", ev.detail);
      w.kv("value", ev.value);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

void FlightRecorder::writeFile(const std::string& path,
                               std::string_view reason) const {
  const std::string json = dumpJson(reason);
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open flight dump for writing: " << path);
  out.write(json.data(), std::streamsize(json.size()));
  out.flush();
  MBIR_CHECK_MSG(out.good(), "failed writing flight dump: " << path);
}

}  // namespace mbir::obs
