#include "obs/trace.h"

#include <fstream>

#include "core/error.h"
#include "obs/json.h"

namespace mbir::obs {

void TraceRecorder::record(TraceEvent ev) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::string TraceRecorder::toJson() const {
  const std::vector<TraceEvent> events = snapshot();
  JsonWriter w;
  w.beginObject();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").beginArray();
  // Name the two clock tracks so Perfetto shows them as labelled processes.
  const struct {
    Clock clock;
    const char* name;
  } tracks[] = {{Clock::kHost, "host wall clock"},
                {Clock::kModeled, "modeled device clock"}};
  for (const auto& t : tracks) {
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", int(t.clock));
    w.kv("tid", 0);
    w.kv("name", "process_name");
    w.key("args").beginObject().kv("name", t.name).endObject();
    w.endObject();
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", int(t.clock));
    w.kv("tid", 0);
    w.kv("name", "process_sort_index");
    w.key("args").beginObject().kv("sort_index", int(t.clock)).endObject();
    w.endObject();
  }
  for (const TraceEvent& ev : events) {
    w.beginObject();
    w.kv("ph", "X");
    w.kv("pid", int(ev.clock));
    w.kv("tid", ev.tid);
    w.kv("name", ev.name);
    if (!ev.cat.empty()) w.kv("cat", ev.cat);
    w.kv("ts", ev.ts_us);
    w.kv("dur", ev.dur_us);
    if (!ev.num_args.empty() || !ev.str_args.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : ev.num_args) w.kv(k, v);
      for (const auto& [k, v] : ev.str_args) w.kv(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

void TraceRecorder::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open trace file for writing: " << path);
  const std::string json = toJson();
  out.write(json.data(), std::streamsize(json.size()));
  out.flush();
  MBIR_CHECK_MSG(out.good(), "failed writing trace file: " << path);
}

}  // namespace mbir::obs
