#include "obs/trace.h"

#include <fstream>

#include "core/error.h"
#include "obs/json.h"

namespace mbir::obs {

void TraceRecorder::record(TraceEvent ev) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
}

void TraceRecorder::nameProcess(int pid, std::string name, int sort_index) {
  std::lock_guard lock(mu_);
  for (ProcessMeta& p : processes_) {
    if (p.pid == pid) {
      p.name = std::move(name);
      p.sort_index = sort_index;
      return;
    }
  }
  processes_.push_back({pid, std::move(name), sort_index});
}

void TraceRecorder::nameThread(int pid, int tid, std::string name,
                               int sort_index) {
  std::lock_guard lock(mu_);
  for (ThreadMeta& t : threads_) {
    if (t.pid == pid && t.tid == tid) {
      t.name = std::move(name);
      t.sort_index = sort_index;
      return;
    }
  }
  threads_.push_back({pid, tid, std::move(name), sort_index});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::string TraceRecorder::toJson() const {
  std::vector<TraceEvent> events;
  std::vector<ProcessMeta> processes;
  std::vector<ThreadMeta> threads;
  {
    std::lock_guard lock(mu_);
    events = events_;
    processes = processes_;
    threads = threads_;
  }
  JsonWriter w;
  w.beginObject();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").beginArray();
  // Name the clock tracks (and any registered extra processes, e.g. one per
  // scheduler device) so Perfetto shows them as labelled processes.
  const auto name_process = [&w](int pid, const std::string& name,
                                 int sort_index) {
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", 0);
    w.kv("name", "process_name");
    w.key("args").beginObject().kv("name", name).endObject();
    w.endObject();
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", 0);
    w.kv("name", "process_sort_index");
    w.key("args").beginObject().kv("sort_index", sort_index).endObject();
    w.endObject();
  };
  name_process(int(Clock::kHost), "host wall clock", int(Clock::kHost));
  name_process(int(Clock::kModeled), "modeled device clock",
               int(Clock::kModeled));
  for (const ProcessMeta& p : processes) name_process(p.pid, p.name, p.sort_index);
  for (const ThreadMeta& t : threads) {
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", t.pid);
    w.kv("tid", t.tid);
    w.kv("name", "thread_name");
    w.key("args").beginObject().kv("name", t.name).endObject();
    w.endObject();
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", t.pid);
    w.kv("tid", t.tid);
    w.kv("name", "thread_sort_index");
    w.key("args").beginObject().kv("sort_index", t.sort_index).endObject();
    w.endObject();
  }
  for (const TraceEvent& ev : events) {
    w.beginObject();
    w.kv("ph", "X");
    w.kv("pid", ev.pid != 0 ? ev.pid : int(ev.clock));
    w.kv("tid", ev.tid);
    w.kv("name", ev.name);
    if (!ev.cat.empty()) w.kv("cat", ev.cat);
    w.kv("ts", ev.ts_us);
    w.kv("dur", ev.dur_us);
    if (!ev.num_args.empty() || !ev.str_args.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : ev.num_args) w.kv(k, v);
      for (const auto& [k, v] : ev.str_args) w.kv(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

void TraceRecorder::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open trace file for writing: " << path);
  const std::string json = toJson();
  out.write(json.data(), std::streamsize(json.size()));
  out.flush();
  MBIR_CHECK_MSG(out.good(), "failed writing trace file: " << path);
}

}  // namespace mbir::obs
