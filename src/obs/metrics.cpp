#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"
#include "obs/json.h"

namespace mbir::obs {

namespace {

/// The bounded bucket bounds, built once. Each decade's bounds are computed
/// from one pow() so 2e-3 is exactly 2 * pow(10,-3): observe() and tests
/// agree bit-for-bit on where a boundary value lands.
const std::array<double, Histogram::kBuckets - 1>& bucketBounds() {
  static const auto bounds = [] {
    std::array<double, Histogram::kBuckets - 1> b{};
    int i = 0;
    for (int e = Histogram::kMinExponent; e < Histogram::kMaxExponent; ++e) {
      const double decade = std::pow(10.0, double(e));
      b[std::size_t(i++)] = decade;
      b[std::size_t(i++)] = 2.0 * decade;
      b[std::size_t(i++)] = 5.0 * decade;
    }
    b[std::size_t(i++)] = std::pow(10.0, double(Histogram::kMaxExponent));
    MBIR_CHECK(i == Histogram::kBuckets - 1);
    return b;
  }();
  return bounds;
}

}  // namespace

std::string labeledName(std::string_view base, const MetricLabels& labels) {
  if (labels.empty()) return std::string(base);
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out(base);
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : sorted) {
    MBIR_CHECK_MSG(!k.empty(), "metric label key must be non-empty");
    MBIR_CHECK_MSG(k.find_first_of("{},=\"") == std::string::npos &&
                       v.find_first_of("{},=\"") == std::string::npos,
                   "metric label must not contain {},=\" : " << k << "=" << v);
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out.push_back('=');
    out += v;
  }
  out.push_back('}');
  return out;
}

double Histogram::bucketUpperBound(int i) {
  MBIR_CHECK(i >= 0 && i < kBuckets);
  if (i == kBuckets - 1) return std::numeric_limits<double>::infinity();
  return bucketBounds()[std::size_t(i)];
}

void Histogram::observe(double v) {
  // NaN is counted (in the overflow bucket, so it is never lost) but kept
  // out of sum/min/max — one bad sample must not poison the aggregates or
  // the JSON dump. lower_bound cannot be asked about NaN: every comparison
  // is false, which would misfile it in bucket 0.
  const bool is_nan = std::isnan(v);
  std::size_t b = std::size_t(kBuckets - 1);
  if (!is_nan) {
    // First bucket whose inclusive upper bound covers v; past-the-end means
    // the overflow bucket.
    const auto& bounds = bucketBounds();
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    b = std::size_t(it - bounds.begin());
  }
  std::lock_guard lock(mu_);
  if (!is_nan) {
    if (!has_finite_ || v < s_.min) s_.min = v;
    if (!has_finite_ || v > s_.max) s_.max = v;
    has_finite_ = true;
    s_.sum += v;
  }
  ++s_.count;
  ++s_.buckets[b];
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation within the covering
  // bucket. Bucket edges are clamped to [min, max]: a single observation
  // reports itself as every quantile instead of a bucket-wide guess.
  const double target = std::max(1.0, std::ceil(q * double(count)));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets[std::size_t(i)];
    if (c == 0) continue;
    if (double(cum + c) >= target) {
      double lo = i == 0 ? min : bucketUpperBound(i - 1);
      double hi = bucketUpperBound(i);
      lo = std::clamp(lo, min, max);
      hi = std::clamp(hi, min, max);
      const double frac = (target - double(cum)) / double(c);
      return lo + frac * (hi - lo);
    }
    cum += c;
  }
  return max;  // unreachable when bucket counts sum to `count`
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mu_);
  return s_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(!gauges_.count(name) && !histograms_.count(name),
                 "metric name registered with a different kind: " << name);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(!counters_.count(name) && !histograms_.count(name),
                 "metric name registered with a different kind: " << name);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(!counters_.count(name) && !gauges_.count(name),
                 "metric name registered with a different kind: " << name);
  return histograms_[name];
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  return counter(labeledName(name, labels));
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  return gauge(labeledName(name, labels));
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const MetricLabels& labels) {
  return histogram(labeledName(name, labels));
}

std::uint64_t MetricsRegistry::counterValue(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gaugeValue(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

Histogram::Snapshot MetricsRegistry::histogramSnapshot(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram::Snapshot{} : it->second.snapshot();
}

void MetricsRegistry::writeJson(JsonWriter& w) const {
  std::lock_guard lock(mu_);
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h.snapshot();
    w.key(name).beginObject();
    w.kv("v", Histogram::kSchemaVersion);
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("p50", s.quantile(0.50));
    w.kv("p95", s.quantile(0.95));
    w.kv("p99", s.quantile(0.99));
    // Sparse dump: [upper_bound, count] for non-zero buckets; the overflow
    // bucket's infinite bound serializes as null (JsonWriter's non-finite
    // policy), which the strict parser reads back as kNull.
    w.key("buckets").beginArray();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t c = s.buckets[std::size_t(i)];
      if (c == 0) continue;
      w.beginArray();
      w.value(Histogram::bucketUpperBound(i));
      w.value(c);
      w.endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

}  // namespace mbir::obs
