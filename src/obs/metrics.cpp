#include "obs/metrics.h"

#include <cmath>

#include "core/error.h"
#include "obs/json.h"

namespace mbir::obs {

double Histogram::bucketUpperBound(int i) {
  MBIR_CHECK(i >= 0 && i < kBuckets);
  return std::pow(10.0, double(i + kMinExponent));
}

void Histogram::observe(double v) {
  std::lock_guard lock(mu_);
  if (s_.count == 0 || v < s_.min) s_.min = v;
  if (s_.count == 0 || v > s_.max) s_.max = v;
  ++s_.count;
  s_.sum += v;
  int b = 0;
  while (b < kBuckets - 1 && v > bucketUpperBound(b)) ++b;
  ++s_.buckets[std::size_t(b)];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mu_);
  return s_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(!gauges_.count(name) && !histograms_.count(name),
                 "metric name registered with a different kind: " << name);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(!counters_.count(name) && !histograms_.count(name),
                 "metric name registered with a different kind: " << name);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(!counters_.count(name) && !gauges_.count(name),
                 "metric name registered with a different kind: " << name);
  return histograms_[name];
}

std::uint64_t MetricsRegistry::counterValue(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::writeJson(JsonWriter& w) const {
  std::lock_guard lock(mu_);
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h.snapshot();
    w.key(name).beginObject();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

}  // namespace mbir::obs
