// Observability session: ObsConfig (what to record, where to export) and
// Recorder (one MetricsRegistry + one TraceRecorder sharing an epoch).
//
// Everything is opt-in and zero-overhead when disabled: instrumented code
// holds an `obs::Recorder*` that defaults to nullptr, so the disabled path
// costs one pointer test and records nothing — outputs are bit-identical
// to a build without observability (asserted by
// tests/test_parallel_determinism.cpp). When enabled, recording is
// observational only: nothing read back from the recorder influences the
// reconstruction, so determinism (for any host thread count) is preserved.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mbir::obs {

struct ObsConfig {
  bool metrics = false;  ///< record counters/gauges/histograms
  bool trace = false;    ///< record trace spans
  /// Also emit one host-clock span per simulated threadblock (verbose:
  /// thousands of events for a full reconstruction). Requires `trace`.
  bool block_spans = false;
  /// Write the Chrome trace JSON here after the run ("" = keep in memory;
  /// the recorder stays inspectable either way).
  std::string trace_path;
  /// Write the machine-readable run report here ("" = don't write).
  std::string report_path;

  bool enabled() const { return metrics || trace; }
};

class Recorder {
 public:
  explicit Recorder(ObsConfig cfg = {}) : cfg_(std::move(cfg)) {}

  const ObsConfig& config() const { return cfg_; }
  bool metricsOn() const { return cfg_.metrics; }
  bool traceOn() const { return cfg_.trace; }
  bool blockSpansOn() const { return cfg_.trace && cfg_.block_spans; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

 private:
  ObsConfig cfg_;
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

/// RAII host-clock span: measures wall time from construction to
/// destruction and records it (no-op when rec is null or tracing is off).
class HostSpan {
 public:
  HostSpan(Recorder* rec, std::string name, std::string cat)
      : rec_(rec && rec->traceOn() ? rec : nullptr) {
    if (!rec_) return;
    ev_.name = std::move(name);
    ev_.cat = std::move(cat);
    ev_.ts_us = rec_->trace().nowHostUs();
  }

  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

  void addArg(std::string key, double v) {
    if (rec_) ev_.num_args.emplace_back(std::move(key), v);
  }

  ~HostSpan() {
    if (!rec_) return;
    ev_.dur_us = rec_->trace().nowHostUs() - ev_.ts_us;
    rec_->trace().record(std::move(ev_));
  }

 private:
  Recorder* rec_;
  TraceEvent ev_;
};

}  // namespace mbir::obs
