// Thread-safe metrics registry: counters, gauges and histograms addressed
// by stable dotted names (`gsim.launch.svb_access_bytes`,
// `gpuicd.chunk_cache.hits`, ... — DESIGN.md §observability documents the
// naming scheme). Names may carry labels — `svc.jobs_done{tenant=acme}`,
// `sched.busy_ms{device=2}` — encoded canonically into the name by
// labeledName(), so the registry stays one flat sorted namespace.
//
// Instruments are registered on first use and live for the registry's
// lifetime; references returned by counter()/gauge()/histogram() stay valid
// (node-based storage), so hot paths look an instrument up once and then
// update it lock-free. Updates are relaxed atomics (counters/gauges) or a
// short mutex (histograms): safe from any worker thread, and purely
// observational — nothing in the registry feeds back into reconstruction,
// so enabling metrics cannot perturb determinism.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mbir::obs {

class JsonWriter;

/// Label set for a metric name, e.g. {{"tenant","acme"}}. Encoded into the
/// instrument name via labeledName(); keys are sorted so the same set always
/// produces the same name regardless of call-site order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical labeled form: `base{k1=v1,k2=v2}` with keys sorted. Keys and
/// values must not contain '{', '}', ',', '=' or '"' (throws mbir::Error).
/// An empty label set returns `base` unchanged.
std::string labeledName(std::string_view base, const MetricLabels& labels);

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram on a log-linear scale: within each decade the
/// inclusive upper bounds step through 1, 2, 5 (1e-3, 2e-3, 5e-3, 1e-2, ...),
/// spanning 1 ns .. 1e10 with a final overflow bucket. Sub-decade resolution
/// keeps p50/p95/p99 estimates tight enough for latency SLOs while one scale
/// still serves both seconds and byte counts. Snapshot JSON is versioned
/// (kSchemaVersion) so consumers can tell the decade-era shape apart.
class Histogram {
 public:
  /// Bumped when the bucket layout or snapshot JSON shape changes.
  /// v1: 20 decade buckets, {count,sum,min,max} only.
  /// v2: log-linear 1-2-5 buckets, quantiles + sparse bucket dump.
  static constexpr int kSchemaVersion = 2;

  static constexpr int kMinExponent = -9;
  static constexpr int kMaxExponent = 10;
  /// 1-2-5 bounds for decades [kMinExponent, kMaxExponent), one final bound
  /// at 10^kMaxExponent, then the overflow bucket.
  static constexpr int kBuckets =
      3 * (kMaxExponent - kMinExponent) + 1 /*top bound*/ + 1 /*overflow*/;

  /// Inclusive upper bound of bucket i; +infinity for the overflow bucket.
  static double bucketUpperBound(int i);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
    /// covering bucket, clamped to [min, max] so estimates never leave the
    /// observed range. 0 when the histogram is empty.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
  bool has_finite_ = false;  ///< min/max/sum seeded by a non-NaN observation
};

class MetricsRegistry {
 public:
  /// Find-or-create by dotted name. References remain valid for the
  /// registry's lifetime. A name may only be used for one instrument kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Labeled find-or-create: counter("svc.jobs_done", {{"tenant","acme"}})
  /// addresses `svc.jobs_done{tenant=acme}`.
  Counter& counter(const std::string& name, const MetricLabels& labels);
  Gauge& gauge(const std::string& name, const MetricLabels& labels);
  Histogram& histogram(const std::string& name, const MetricLabels& labels);

  /// Read accessors that never register: value of an instrument, or a zero
  /// value (0 / 0.0 / empty snapshot) when the name was never used.
  std::uint64_t counterValue(const std::string& name) const;
  double gaugeValue(const std::string& name) const;
  Histogram::Snapshot histogramSnapshot(const std::string& name) const;

  /// Serialize every instrument, sorted by name:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///    {"v":2,"count":..,"sum":..,"min":..,"max":..,
  ///     "p50":..,"p95":..,"p99":..,"buckets":[[ub,count],...]}, ...}}
  /// The bucket dump is sparse (non-zero buckets only; the overflow bucket's
  /// bound serializes as null), keeping live stats scrapes small.
  void writeJson(JsonWriter& w) const;

 private:
  mutable std::mutex mu_;  // guards registration only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mbir::obs
