// Thread-safe metrics registry: counters, gauges and histograms addressed
// by stable dotted names (`gsim.launch.svb_access_bytes`,
// `gpuicd.chunk_cache.hits`, ... — DESIGN.md §observability documents the
// naming scheme).
//
// Instruments are registered on first use and live for the registry's
// lifetime; references returned by counter()/gauge()/histogram() stay valid
// (node-based storage), so hot paths look an instrument up once and then
// update it lock-free. Updates are relaxed atomics (counters/gauges) or a
// short mutex (histograms): safe from any worker thread, and purely
// observational — nothing in the registry feeds back into reconstruction,
// so enabling metrics cannot perturb determinism.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace mbir::obs {

class JsonWriter;

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram on a decade scale: bucket i counts observations
/// <= 10^(i + kMinExponent); the last bucket is the overflow. One scale
/// serves both seconds (1 ns .. 10^10 s) and byte counts.
class Histogram {
 public:
  static constexpr int kBuckets = 20;
  static constexpr int kMinExponent = -9;

  /// Inclusive upper bound of bucket i (the last bucket is unbounded).
  static double bucketUpperBound(int i);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Snapshot s_;
};

class MetricsRegistry {
 public:
  /// Find-or-create by dotted name. References remain valid for the
  /// registry's lifetime. A name may only be used for one instrument kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Current value of a counter, 0 when it was never registered.
  std::uint64_t counterValue(const std::string& name) const;

  /// Serialize every instrument, sorted by name:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///    {"count":..,"sum":..,"min":..,"max":..}, ...}}
  void writeJson(JsonWriter& w) const;

 private:
  mutable std::mutex mu_;  // guards registration only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mbir::obs
