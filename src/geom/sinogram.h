// Sinogram container: one float per (view, channel), view-major rows.
#pragma once

#include <span>
#include <vector>

#include "core/error.h"
#include "core/view2d.h"
#include "geom/geometry.h"

namespace mbir {

class Sinogram {
 public:
  Sinogram() = default;
  Sinogram(int num_views, int num_channels)
      : views_(num_views),
        channels_(num_channels),
        data_(std::size_t(num_views) * std::size_t(num_channels), 0.0f) {
    MBIR_CHECK(num_views > 0 && num_channels > 0);
  }
  explicit Sinogram(const ParallelBeamGeometry& g)
      : Sinogram(g.num_views, g.num_channels) {}

  int views() const { return views_; }
  int channels() const { return channels_; }
  std::size_t size() const { return data_.size(); }

  float& at(int view, int channel) {
    MBIR_CHECK_MSG(inBounds(view, channel), "v=" << view << " c=" << channel);
    return (*this)(view, channel);
  }
  float at(int view, int channel) const {
    MBIR_CHECK_MSG(inBounds(view, channel), "v=" << view << " c=" << channel);
    return (*this)(view, channel);
  }
  float& operator()(int view, int channel) {
    return data_[std::size_t(view) * std::size_t(channels_) + std::size_t(channel)];
  }
  float operator()(int view, int channel) const {
    return data_[std::size_t(view) * std::size_t(channels_) + std::size_t(channel)];
  }

  bool inBounds(int view, int channel) const {
    return view >= 0 && view < views_ && channel >= 0 && channel < channels_;
  }

  std::span<float> row(int view) {
    return {data_.data() + std::size_t(view) * std::size_t(channels_),
            std::size_t(channels_)};
  }
  std::span<const float> row(int view) const {
    return {data_.data() + std::size_t(view) * std::size_t(channels_),
            std::size_t(channels_)};
  }

  View2D<float> view2d() { return {data_.data(), views_, channels_}; }
  View2D<const float> view2d() const { return {data_.data(), views_, channels_}; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  void setZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Sum of squares, optionally weighted: sum w * s^2 (double accumulation).
  double sumSquares() const;
  double weightedSumSquares(const Sinogram& w) const;

  bool sameShape(const Sinogram& o) const {
    return views_ == o.views_ && channels_ == o.channels_;
  }

 private:
  int views_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

}  // namespace mbir
