#include "geom/footprint.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mbir {

TrapezoidProfile::TrapezoidProfile(double pixel_mm, double theta_rad) {
  MBIR_CHECK(pixel_mm > 0.0);
  const double a = std::abs(std::cos(theta_rad)) * pixel_mm;
  const double b = std::abs(std::sin(theta_rad)) * pixel_mm;
  const double hi = std::max(a, b);
  half_support_ = (a + b) / 2.0;
  half_flat_ = std::abs(a - b) / 2.0;
  // hi > 0 always since cos and sin cannot both vanish.
  height_ = pixel_mm * pixel_mm / hi;
}

double TrapezoidProfile::value(double u) const {
  u = std::abs(u);
  if (u >= half_support_) return 0.0;
  if (u <= half_flat_) return height_;
  // Linear ramp from (half_flat, height) down to (half_support, 0).
  return height_ * (half_support_ - u) / (half_support_ - half_flat_);
}

double TrapezoidProfile::cumulative(double u) const {
  // Exploit symmetry: C(u) = total/2 + S(u) where S is odd.
  const double total = height_ * (half_support_ + half_flat_);  // full integral
  double s;                                                     // S(|u|)
  const double au = std::abs(u);
  if (au >= half_support_) {
    s = total / 2.0;
  } else if (au <= half_flat_) {
    s = height_ * au;
  } else {
    const double ramp = half_support_ - half_flat_;
    const double x = au - half_flat_;  // position within the ramp
    // Integral over flat part plus partial ramp (trapezoid slice).
    s = height_ * half_flat_ + height_ * x * (1.0 - x / (2.0 * ramp));
  }
  return total / 2.0 + (u >= 0.0 ? s : -s);
}

double TrapezoidProfile::integral(double u0, double u1) const {
  MBIR_CHECK(u0 <= u1);
  return cumulative(u1) - cumulative(u0);
}

}  // namespace mbir
