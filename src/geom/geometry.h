// Parallel-beam CT acquisition geometry.
//
// Matches the paper's experimental setup (§5.1): parallel-beam projection,
// views uniformly distributed over [0, 180) degrees, a linear detector array
// of `num_channels` sensors, and a square reconstruction grid. The paper's
// dataset used 720 views x 1024 channels at 512x512; defaults here are a
// scaled-down instance with identical structure (see DESIGN.md §1).
#pragma once

#include <cstddef>
#include <numbers>

namespace mbir {

struct ParallelBeamGeometry {
  /// Number of view angles, uniformly spaced over [first_angle, first_angle + angle_range).
  int num_views = 180;
  /// Number of detector channels per view.
  int num_channels = 256;
  /// Reconstruction image is image_size x image_size pixels.
  int image_size = 128;
  /// Square pixel side (mm).
  double pixel_size_mm = 0.8;
  /// Detector channel pitch (mm).
  double channel_spacing_mm = 0.8;
  /// First view angle (radians).
  double first_angle_rad = 0.0;
  /// Angular span (radians); parallel beam needs only pi.
  double angle_range_rad = std::numbers::pi;
  /// Detector coordinate (in channels) onto which the rotation center projects.
  /// Defaults to the array center when negative.
  double center_channel = -1.0;

  /// Throws mbir::Error if any field is out of range.
  void validate() const;

  double angle(int view) const {
    return first_angle_rad + angle_range_rad * double(view) / double(num_views);
  }

  double centerChannel() const {
    return center_channel >= 0.0 ? center_channel
                                 : (double(num_channels) - 1.0) / 2.0;
  }

  /// Cartesian center of pixel (row, col); x grows with col, y grows upward
  /// (decreasing row), origin at the rotation center.
  double pixelX(int col) const {
    return (double(col) - (double(image_size) - 1.0) / 2.0) * pixel_size_mm;
  }
  double pixelY(int row) const {
    return ((double(image_size) - 1.0) / 2.0 - double(row)) * pixel_size_mm;
  }

  /// Detector coordinate (in channel units) of the projection of point (x, y)
  /// at view `v`: t = x cos(theta) + y sin(theta).
  double projectToChannel(double x, double y, int view) const;

  std::size_t numVoxels() const { return std::size_t(image_size) * std::size_t(image_size); }
  std::size_t sinogramSize() const {
    return std::size_t(num_views) * std::size_t(num_channels);
  }

  /// Radius (mm) of the field of view fully covered by the detector.
  double fieldOfViewRadius() const;

  bool operator==(const ParallelBeamGeometry&) const = default;
};

/// The paper's full-scale geometry (512x512, 720 views, 1024 channels).
ParallelBeamGeometry paperScaleGeometry();

/// Scaled-down default used by tests and benches (128x128, 180 views, 256 ch).
ParallelBeamGeometry benchScaleGeometry();

/// Tiny geometry for fast unit tests (32x32, 48 views, 64 channels).
ParallelBeamGeometry testScaleGeometry();

}  // namespace mbir
