#include "geom/fbp.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"

namespace mbir {

namespace {

/// Discrete Ram-Lak (ramp) convolution kernel, Kak & Slaney eq. 61:
/// h[0] = 1/(4 d^2), h[n] = 0 for even n, h[n] = -1/(pi^2 n^2 d^2) for odd n,
/// where d is the channel spacing.
std::vector<double> rampKernel(int num_channels, double spacing) {
  std::vector<double> h(std::size_t(num_channels), 0.0);
  const double d2 = spacing * spacing;
  h[0] = 1.0 / (4.0 * d2);
  for (int n = 1; n < num_channels; n += 2)
    h[std::size_t(n)] = -1.0 / (std::numbers::pi * std::numbers::pi * double(n) * double(n) * d2);
  return h;
}

}  // namespace

Image2D fbpReconstruct(const Sinogram& y, const ParallelBeamGeometry& g,
                       const FbpOptions& opt) {
  g.validate();
  MBIR_CHECK(y.views() == g.num_views && y.channels() == g.num_channels);

  const int V = g.num_views;
  const int C = g.num_channels;
  const auto h = rampKernel(C, g.channel_spacing_mm);

  // Filter every view row by direct convolution (O(V C^2); fine at the
  // sizes this library targets, and it keeps the module dependency-free).
  std::vector<float> filtered(std::size_t(V) * std::size_t(C));
  globalThreadPool().parallelFor(0, V, [&](int v) {
    const auto row = y.row(v);
    float* dst = filtered.data() + std::size_t(v) * std::size_t(C);
    for (int c = 0; c < C; ++c) {
      double acc = 0.0;
      for (int k = 0; k < C; ++k)
        acc += double(row[std::size_t(k)]) * h[std::size_t(std::abs(c - k))];
      dst[c] = float(acc * g.channel_spacing_mm);
    }
  }, /*grain=*/4);

  // Backproject with linear interpolation over channels.
  Image2D img(g.image_size);
  const double scale = g.angle_range_rad / double(V);
  const double fov = g.fieldOfViewRadius();

  globalThreadPool().parallelFor(0, g.image_size, [&](int row) {
    for (int col = 0; col < g.image_size; ++col) {
      const double x = g.pixelX(col);
      const double yy = g.pixelY(row);
      if (opt.mask_fov && x * x + yy * yy > fov * fov) {
        img(row, col) = 0.0f;
        continue;
      }
      double acc = 0.0;
      for (int v = 0; v < V; ++v) {
        const double tc = g.projectToChannel(x, yy, v);
        const int c0 = int(std::floor(tc));
        if (c0 < 0 || c0 + 1 >= C) continue;
        const double frac = tc - double(c0);
        const float* f = filtered.data() + std::size_t(v) * std::size_t(C);
        acc += double(f[c0]) * (1.0 - frac) + double(f[c0 + 1]) * frac;
      }
      double val = acc * scale;
      if (opt.clamp_nonnegative && val < 0.0) val = 0.0;
      img(row, col) = float(val);
    }
  }, /*grain=*/4);
  return img;
}

}  // namespace mbir
