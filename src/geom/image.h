// Reconstruction image containers.
//
// Image2D holds one slice in linear attenuation units (1/mm); the
// hounsfield helpers in core/ convert to/from HU for reporting. ImageStack
// models the paper's dataset organization: a 3D volume reconstructed as
// independent 2D slices.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "core/error.h"
#include "core/view2d.h"

namespace mbir {

class Image2D {
 public:
  Image2D() = default;
  explicit Image2D(int size, float fill_value = 0.0f)
      : size_(size), data_(std::size_t(size) * std::size_t(size), fill_value) {
    MBIR_CHECK(size > 0);
  }

  int size() const { return size_; }
  std::size_t numVoxels() const { return data_.size(); }

  float& operator()(int row, int col) {
    return data_[std::size_t(row) * std::size_t(size_) + std::size_t(col)];
  }
  float operator()(int row, int col) const {
    return data_[std::size_t(row) * std::size_t(size_) + std::size_t(col)];
  }
  float& at(int row, int col) {
    MBIR_CHECK_MSG(inBounds(row, col), "r=" << row << " c=" << col);
    return (*this)(row, col);
  }
  float at(int row, int col) const {
    MBIR_CHECK_MSG(inBounds(row, col), "r=" << row << " c=" << col);
    return (*this)(row, col);
  }

  /// Flat voxel index: row * size + col (the ICD code iterates voxels by
  /// this index; the system matrix uses the same numbering).
  float& operator[](std::size_t voxel) { return data_[voxel]; }
  float operator[](std::size_t voxel) const { return data_[voxel]; }

  bool inBounds(int row, int col) const {
    return row >= 0 && row < size_ && col >= 0 && col < size_;
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }
  View2D<const float> view2d() const { return {data_.data(), size_, size_}; }
  View2D<float> view2d() { return {data_.data(), size_, size_}; }

  void setZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  bool sameShape(const Image2D& o) const { return size_ == o.size_; }

  /// Root-mean-square difference over all voxels (same units as voxels).
  double rmsDiff(const Image2D& other) const;

 private:
  int size_ = 0;
  std::vector<float> data_;
};

/// A stack of independent 2D slices (the paper's volumes are reconstructed
/// slice-by-slice; all slices share one SystemMatrix).
class ImageStack {
 public:
  ImageStack() = default;
  ImageStack(int num_slices, int size) : slices_(std::size_t(num_slices), Image2D(size)) {
    MBIR_CHECK(num_slices > 0);
  }

  int numSlices() const { return int(slices_.size()); }
  Image2D& slice(int s) { return slices_[std::size_t(s)]; }
  const Image2D& slice(int s) const { return slices_[std::size_t(s)]; }

 private:
  std::vector<Image2D> slices_;
};

}  // namespace mbir
