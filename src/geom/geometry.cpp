#include "geom/geometry.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mbir {

void ParallelBeamGeometry::validate() const {
  MBIR_CHECK_MSG(num_views > 0, "num_views=" << num_views);
  MBIR_CHECK_MSG(num_channels > 1, "num_channels=" << num_channels);
  MBIR_CHECK_MSG(image_size > 1, "image_size=" << image_size);
  MBIR_CHECK(pixel_size_mm > 0.0);
  MBIR_CHECK(channel_spacing_mm > 0.0);
  MBIR_CHECK(angle_range_rad > 0.0);
  MBIR_CHECK(center_channel < double(num_channels));
}

double ParallelBeamGeometry::projectToChannel(double x, double y, int view) const {
  const double th = angle(view);
  const double t = x * std::cos(th) + y * std::sin(th);
  return centerChannel() + t / channel_spacing_mm;
}

double ParallelBeamGeometry::fieldOfViewRadius() const {
  const double half_span =
      std::min(centerChannel(), double(num_channels) - 1.0 - centerChannel());
  return half_span * channel_spacing_mm;
}

ParallelBeamGeometry paperScaleGeometry() {
  ParallelBeamGeometry g;
  g.num_views = 720;
  g.num_channels = 1024;
  g.image_size = 512;
  g.pixel_size_mm = 0.8;
  g.channel_spacing_mm = 0.45;
  return g;
}

ParallelBeamGeometry benchScaleGeometry() {
  ParallelBeamGeometry g;
  g.num_views = 180;
  g.num_channels = 256;
  g.image_size = 128;
  g.pixel_size_mm = 0.8;
  g.channel_spacing_mm = 0.45;
  return g;
}

ParallelBeamGeometry testScaleGeometry() {
  ParallelBeamGeometry g;
  g.num_views = 48;
  g.num_channels = 64;
  g.image_size = 32;
  g.pixel_size_mm = 0.8;
  g.channel_spacing_mm = 0.5;
  return g;
}

}  // namespace mbir
