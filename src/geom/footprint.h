// Pixel-on-detector footprint math.
//
// The system matrix entry A[i][j] captures how much of the ray bundle hitting
// channel j at view i passes through a given square pixel. For a parallel
// beam, the shadow of a square pixel on the detector axis is a trapezoid:
// chord length through the pixel as a function of perpendicular offset u from
// the pixel-center projection. With a = |cos(theta)| * p and
// b = |sin(theta)| * p (p = pixel side), the trapezoid has
//   support   |u| <= (a + b) / 2,
//   flat top  |u| <= |a - b| / 2,
//   height    p^2 / max(a, b)   (so that the profile integrates to area p^2).
// The A entry for a channel is the *average* chord over the channel aperture
// (units: mm), so that y = A x is a set of line integrals when x is in 1/mm.
#pragma once

namespace mbir {

/// Symmetric trapezoidal profile; evaluated/integrated analytically.
class TrapezoidProfile {
 public:
  /// Construct the shadow profile of a square pixel of side `pixel_mm`
  /// viewed at angle `theta_rad`.
  TrapezoidProfile(double pixel_mm, double theta_rad);

  /// Profile value (chord length, mm) at perpendicular offset u (mm).
  double value(double u) const;

  /// Definite integral of value() over [u0, u1] (mm^2). u0 <= u1 required.
  double integral(double u0, double u1) const;

  double halfFlat() const { return half_flat_; }
  double halfSupport() const { return half_support_; }
  double height() const { return height_; }

 private:
  /// Integral of value() over (-inf, u].
  double cumulative(double u) const;

  double half_flat_;
  double half_support_;
  double height_;
};

}  // namespace mbir
