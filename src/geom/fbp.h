// Filtered backprojection (the "direct method" the paper contrasts MBIR
// against, §1/§7) — used here both as a baseline example and as the
// initializer for ICD (starting MBIR from the FBP image is standard practice
// and what makes voxel zero-skipping sound: air regions start at zero,
// object regions start nonzero).
#pragma once

#include "geom/geometry.h"
#include "geom/image.h"
#include "geom/sinogram.h"

namespace mbir {

struct FbpOptions {
  /// Clamp negative attenuation to zero (physical images are nonnegative;
  /// ICD's positivity constraint assumes a nonnegative start).
  bool clamp_nonnegative = true;
  /// Zero out pixels outside the scanner field-of-view circle.
  bool mask_fov = true;
};

/// Ram-Lak filtered backprojection with linear detector interpolation.
/// Returns attenuation in 1/mm.
Image2D fbpReconstruct(const Sinogram& y, const ParallelBeamGeometry& g,
                       const FbpOptions& opt = {});

}  // namespace mbir
