// Sparse CT system matrix (the paper's "A-matrix").
//
// A has one column per voxel and one row per (view, channel) measurement.
// Because a parallel-beam voxel footprint covers only a few adjacent
// channels per view (the sinusoidal trace of Fig. 1b), each column is
// stored as, per view, a (first_channel, count) run plus its weights.
// Per the paper (§4.1), all of a voxel's A elements across all views are
// contiguous in memory ("placed in memory in a contiguous fashion, using a
// sparse matrix format").
//
// Shared by every algorithm in the repo: projectors, sequential ICD,
// PSV-ICD, and GPU-ICD (which additionally re-packs it into zero-padded
// chunks and a quantized uint8 form — see sv/).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/geometry.h"

namespace mbir {

class SystemMatrix {
 public:
  /// Location of one voxel-view run.
  struct Run {
    std::uint32_t offset;        ///< index of the first weight in weights()
    std::uint16_t first_channel; ///< detector channel of the first weight
    std::uint16_t count;         ///< number of channels covered (may be 0)
  };

  /// Compute the matrix for a geometry. Cost is O(numVoxels * numViews);
  /// parallelized over voxels on the global thread pool.
  static SystemMatrix compute(const ParallelBeamGeometry& g);

  const ParallelBeamGeometry& geometry() const { return geom_; }
  int numViews() const { return geom_.num_views; }
  int numChannels() const { return geom_.num_channels; }
  std::size_t numVoxels() const { return geom_.numVoxels(); }

  const Run& run(std::size_t voxel, int view) const {
    return runs_[voxel * std::size_t(geom_.num_views) + std::size_t(view)];
  }

  std::span<const float> weights(std::size_t voxel, int view) const {
    const Run& r = run(voxel, view);
    return {weights_.data() + r.offset, std::size_t(r.count)};
  }

  /// All weights of a voxel's column, across views, contiguous.
  std::span<const float> columnWeights(std::size_t voxel) const;

  /// Largest A entry in the voxel's column (0 for an all-zero column).
  /// Used by the uint8 quantization (§4.3.1).
  float voxelMax(std::size_t voxel) const { return voxel_max_[voxel]; }

  /// Sum of squared entries of the voxel's column (unweighted).
  double columnSumSquares(std::size_t voxel) const;

  /// Total nonzero entries (after edge-trimming of runs).
  std::size_t nnz() const { return nnz_; }

  /// Maximum voxel footprint width (channels) over all voxels and views.
  int maxFootprintWidth() const { return max_footprint_width_; }

  /// Visit every nonzero of a voxel column: fn(view, channel, weight).
  template <typename Fn>
  void forEachEntry(std::size_t voxel, Fn&& fn) const {
    for (int v = 0; v < geom_.num_views; ++v) {
      const Run& r = run(voxel, v);
      const float* w = weights_.data() + r.offset;
      for (int k = 0; k < int(r.count); ++k)
        fn(v, int(r.first_channel) + k, w[k]);
    }
  }

 private:
  SystemMatrix() = default;

  ParallelBeamGeometry geom_;
  std::vector<Run> runs_;       // voxel-major, then view
  std::vector<float> weights_;  // voxel-major, then view, then channel
  std::vector<float> voxel_max_;
  std::size_t nnz_ = 0;
  int max_footprint_width_ = 0;
};

}  // namespace mbir
