// Forward and back projection through the sparse system matrix.
//
// MBIR itself never forward-projects during iterations (ICD maintains the
// error sinogram incrementally), but projectors are needed to (a) simulate
// scans, (b) initialize e = y - A x0, and (c) verify adjointness and column
// correctness in tests.
#pragma once

#include "geom/image.h"
#include "geom/sinogram.h"
#include "geom/system_matrix.h"

namespace mbir {

/// y = A x. Accumulates into a fresh sinogram.
Sinogram forwardProject(const SystemMatrix& A, const Image2D& x);

/// x_hat = A^T s (unweighted backprojection; used by tests and FBP-like init).
Image2D backProject(const SystemMatrix& A, const Sinogram& s);

/// e = y - A x (the initial error sinogram of Algs. 1-3).
Sinogram errorSinogram(const SystemMatrix& A, const Sinogram& y, const Image2D& x);

/// <A x, s> computed two ways must agree; returns <y, A x>.
double innerProductSino(const Sinogram& a, const Sinogram& b);

}  // namespace mbir
