#include "geom/image.h"

namespace mbir {

double Image2D::rmsDiff(const Image2D& other) const {
  MBIR_CHECK(sameShape(other));
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = double(data_[i]) - double(other.data_[i]);
    acc += d * d;
  }
  return std::sqrt(acc / double(data_.size()));
}

}  // namespace mbir
