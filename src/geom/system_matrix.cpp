#include "geom/system_matrix.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/thread_pool.h"
#include "geom/footprint.h"

namespace mbir {

namespace {

/// Per-view constants reused across all voxels.
struct ViewSetup {
  TrapezoidProfile profile;
  double cos_th, sin_th;
};

std::vector<ViewSetup> makeViewSetups(const ParallelBeamGeometry& g) {
  std::vector<ViewSetup> setups;
  setups.reserve(std::size_t(g.num_views));
  for (int v = 0; v < g.num_views; ++v) {
    const double th = g.angle(v);
    setups.push_back({TrapezoidProfile(g.pixel_size_mm, th), std::cos(th), std::sin(th)});
  }
  return setups;
}

/// Channel interval [first, last] overlapped by the footprint centered at
/// channel-coordinate tc with half support hs (in channel units), clipped to
/// the detector. Returns count 0 when empty.
struct ChannelRange {
  int first = 0;
  int count = 0;
};

ChannelRange channelRange(double tc, double hs_channels, int num_channels) {
  int lo = int(std::ceil(tc - hs_channels - 0.5));
  int hi = int(std::floor(tc + hs_channels + 0.5));
  lo = std::max(lo, 0);
  hi = std::min(hi, num_channels - 1);
  if (hi < lo) return {};
  return {lo, hi - lo + 1};
}

// Entries smaller than this fraction of the profile height are dropped;
// they contribute nothing visible but would widen every run by a channel.
constexpr double kWeightCutoffFraction = 1e-6;

}  // namespace

SystemMatrix SystemMatrix::compute(const ParallelBeamGeometry& g) {
  g.validate();
  SystemMatrix m;
  m.geom_ = g;

  const auto setups = makeViewSetups(g);
  const int n = g.image_size;
  const int num_views = g.num_views;
  const std::size_t num_voxels = g.numVoxels();

  m.runs_.assign(num_voxels * std::size_t(num_views), Run{});
  m.voxel_max_.assign(num_voxels, 0.0f);

  // Pass 1: channel ranges and counts (cheap; no integrals).
  std::vector<std::uint32_t> voxel_nnz(num_voxels, 0);
  globalThreadPool().parallelFor(0, int(num_voxels), [&](int voxel) {
    const int row = voxel / n;
    const int col = voxel % n;
    const double x = g.pixelX(col);
    const double y = g.pixelY(row);
    std::uint32_t nnz = 0;
    for (int v = 0; v < num_views; ++v) {
      const ViewSetup& s = setups[std::size_t(v)];
      const double t_mm = x * s.cos_th + y * s.sin_th;
      const double tc = g.centerChannel() + t_mm / g.channel_spacing_mm;
      const double hs = s.profile.halfSupport() / g.channel_spacing_mm;
      const ChannelRange cr = channelRange(tc, hs, g.num_channels);
      Run& r = m.runs_[std::size_t(voxel) * std::size_t(num_views) + std::size_t(v)];
      r.first_channel = std::uint16_t(cr.first);
      r.count = std::uint16_t(cr.count);
      nnz += std::uint32_t(cr.count);
    }
    voxel_nnz[std::size_t(voxel)] = nnz;
  }, /*grain=*/256);

  // Prefix sum -> per-run offsets (voxel-major order).
  std::size_t total = 0;
  for (std::size_t voxel = 0; voxel < num_voxels; ++voxel) {
    std::uint32_t off = std::uint32_t(total);
    for (int v = 0; v < num_views; ++v) {
      Run& r = m.runs_[voxel * std::size_t(num_views) + std::size_t(v)];
      r.offset = off;
      off += r.count;
    }
    total += voxel_nnz[voxel];
    MBIR_CHECK_MSG(total <= UINT32_MAX, "A-matrix nnz exceeds uint32 offsets");
  }
  m.weights_.assign(total, 0.0f);

  // Pass 2: fill weights; track per-voxel max and global footprint width.
  std::vector<int> width_per_voxel(num_voxels, 0);
  globalThreadPool().parallelFor(0, int(num_voxels), [&](int voxel) {
    const int row = voxel / n;
    const int col = voxel % n;
    const double x = g.pixelX(col);
    const double y = g.pixelY(row);
    float vmax = 0.0f;
    int wmax = 0;
    for (int v = 0; v < num_views; ++v) {
      const ViewSetup& s = setups[std::size_t(v)];
      const double t_mm = x * s.cos_th + y * s.sin_th;
      const double tc = g.centerChannel() + t_mm / g.channel_spacing_mm;
      Run& r = m.runs_[std::size_t(voxel) * std::size_t(num_views) + std::size_t(v)];
      const double cutoff = s.profile.height() * kWeightCutoffFraction;
      int first_kept = -1, last_kept = -1;
      for (int k = 0; k < int(r.count); ++k) {
        const int ch = int(r.first_channel) + k;
        // Channel aperture [ch - 0.5, ch + 0.5] in channel units, converted
        // to mm offsets from the footprint center.
        const double u0 = (double(ch) - 0.5 - tc) * g.channel_spacing_mm;
        const double u1 = (double(ch) + 0.5 - tc) * g.channel_spacing_mm;
        const double a = s.profile.integral(u0, u1) / g.channel_spacing_mm;
        const float af = a <= cutoff ? 0.0f : float(a);
        m.weights_[r.offset + std::size_t(k)] = af;
        if (af > 0.0f) {
          if (first_kept < 0) first_kept = k;
          last_kept = k;
          vmax = std::max(vmax, af);
        }
      }
      // Trim leading/trailing zero channels from the run (weights stay where
      // they are; only the run window narrows).
      if (first_kept < 0) {
        r.count = 0;
      } else {
        r.offset += std::uint32_t(first_kept);
        r.first_channel = std::uint16_t(int(r.first_channel) + first_kept);
        r.count = std::uint16_t(last_kept - first_kept + 1);
      }
      wmax = std::max(wmax, int(r.count));
    }
    m.voxel_max_[std::size_t(voxel)] = vmax;
    width_per_voxel[std::size_t(voxel)] = wmax;
  }, /*grain=*/256);

  m.max_footprint_width_ =
      *std::max_element(width_per_voxel.begin(), width_per_voxel.end());
  for (const Run& r : m.runs_) m.nnz_ += r.count;
  return m;
}

std::span<const float> SystemMatrix::columnWeights(std::size_t voxel) const {
  // Column spans from the first run's offset to the last run's end. Runs of
  // a voxel are contiguous by construction (trimming only narrows windows).
  const Run& first = run(voxel, 0);
  const Run& last = run(voxel, numViews() - 1);
  const std::size_t begin = first.offset;
  const std::size_t end = last.offset + last.count;
  MBIR_CHECK(end >= begin && end <= weights_.size());
  return {weights_.data() + begin, end - begin};
}

double SystemMatrix::columnSumSquares(std::size_t voxel) const {
  double acc = 0.0;
  for (int v = 0; v < numViews(); ++v)
    for (float w : weights(voxel, v)) acc += double(w) * double(w);
  return acc;
}

}  // namespace mbir
