#include "geom/projector.h"

#include "core/error.h"
#include "core/simd.h"
#include "core/thread_pool.h"

namespace mbir {

Sinogram forwardProject(const SystemMatrix& A, const Image2D& x) {
  MBIR_CHECK(std::size_t(x.size()) * std::size_t(x.size()) == A.numVoxels());
  // Row loops run on the env-selected lane-group path (GPUMBIR_SIMD).
  // axpy is elementwise, so path selection cannot change the result bits.
  const SimdOps& ops = resolveSimdOps(SimdMode::kDefault);
  Sinogram y(A.numViews(), A.numChannels());
  auto ys = y.flat();
  const int num_channels = A.numChannels();
  for (std::size_t voxel = 0; voxel < A.numVoxels(); ++voxel) {
    const float xv = x[voxel];
    if (xv == 0.0f) continue;
    for (int v = 0; v < A.numViews(); ++v) {
      const SystemMatrix::Run& r = A.run(voxel, v);
      const auto w = A.weights(voxel, v);
      float* dst = ys.data() + std::size_t(v) * std::size_t(num_channels) + r.first_channel;
      ops.axpy_row(w.data(), xv, dst, int(w.size()));
    }
  }
  return y;
}

Image2D backProject(const SystemMatrix& A, const Sinogram& s) {
  MBIR_CHECK(s.views() == A.numViews() && s.channels() == A.numChannels());
  // Lane-strided accumulation (element i of a footprint row to lane i mod
  // kSimdLanes, lanes carried across views, fixed-order reduction) — the
  // canonical lane-group semantics, identical bits on every path.
  const SimdOps& ops = resolveSimdOps(SimdMode::kDefault);
  Image2D x(A.geometry().image_size);
  auto xs = x.flat();
  const int num_channels = A.numChannels();
  auto ss = s.flat();
  globalThreadPool().parallelFor(0, int(A.numVoxels()), [&](int voxel) {
    alignas(32) double acc[kSimdLanes] = {};
    for (int v = 0; v < A.numViews(); ++v) {
      const SystemMatrix::Run& r = A.run(std::size_t(voxel), v);
      const auto w = A.weights(std::size_t(voxel), v);
      const float* src =
          ss.data() + std::size_t(v) * std::size_t(num_channels) + r.first_channel;
      ops.dot_row(w.data(), src, int(w.size()), acc);
    }
    xs[std::size_t(voxel)] = float(reduceLanes(acc));
  }, /*grain=*/256);
  return x;
}

Sinogram errorSinogram(const SystemMatrix& A, const Sinogram& y, const Image2D& x) {
  Sinogram e = forwardProject(A, x);
  MBIR_CHECK(e.sameShape(y));
  auto ef = e.flat();
  auto yf = y.flat();
  for (std::size_t i = 0; i < ef.size(); ++i) ef[i] = yf[i] - ef[i];
  return e;
}

double innerProductSino(const Sinogram& a, const Sinogram& b) {
  MBIR_CHECK(a.sameShape(b));
  double acc = 0.0;
  auto af = a.flat();
  auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) acc += double(af[i]) * double(bf[i]);
  return acc;
}

}  // namespace mbir
