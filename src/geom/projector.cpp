#include "geom/projector.h"

#include "core/error.h"
#include "core/thread_pool.h"

namespace mbir {

Sinogram forwardProject(const SystemMatrix& A, const Image2D& x) {
  MBIR_CHECK(std::size_t(x.size()) * std::size_t(x.size()) == A.numVoxels());
  Sinogram y(A.numViews(), A.numChannels());
  auto ys = y.flat();
  const int num_channels = A.numChannels();
  for (std::size_t voxel = 0; voxel < A.numVoxels(); ++voxel) {
    const float xv = x[voxel];
    if (xv == 0.0f) continue;
    for (int v = 0; v < A.numViews(); ++v) {
      const SystemMatrix::Run& r = A.run(voxel, v);
      const auto w = A.weights(voxel, v);
      float* dst = ys.data() + std::size_t(v) * std::size_t(num_channels) + r.first_channel;
      for (std::size_t k = 0; k < w.size(); ++k) dst[k] += w[k] * xv;
    }
  }
  return y;
}

Image2D backProject(const SystemMatrix& A, const Sinogram& s) {
  MBIR_CHECK(s.views() == A.numViews() && s.channels() == A.numChannels());
  Image2D x(A.geometry().image_size);
  auto xs = x.flat();
  const int num_channels = A.numChannels();
  auto ss = s.flat();
  globalThreadPool().parallelFor(0, int(A.numVoxels()), [&](int voxel) {
    double acc = 0.0;
    for (int v = 0; v < A.numViews(); ++v) {
      const SystemMatrix::Run& r = A.run(std::size_t(voxel), v);
      const auto w = A.weights(std::size_t(voxel), v);
      const float* src =
          ss.data() + std::size_t(v) * std::size_t(num_channels) + r.first_channel;
      for (std::size_t k = 0; k < w.size(); ++k) acc += double(w[k]) * double(src[k]);
    }
    xs[std::size_t(voxel)] = float(acc);
  }, /*grain=*/256);
  return x;
}

Sinogram errorSinogram(const SystemMatrix& A, const Sinogram& y, const Image2D& x) {
  Sinogram e = forwardProject(A, x);
  MBIR_CHECK(e.sameShape(y));
  auto ef = e.flat();
  auto yf = y.flat();
  for (std::size_t i = 0; i < ef.size(); ++i) ef[i] = yf[i] - ef[i];
  return e;
}

double innerProductSino(const Sinogram& a, const Sinogram& b) {
  MBIR_CHECK(a.sameShape(b));
  double acc = 0.0;
  auto af = a.flat();
  auto bf = b.flat();
  for (std::size_t i = 0; i < af.size(); ++i) acc += double(af[i]) * double(bf[i]);
  return acc;
}

}  // namespace mbir
