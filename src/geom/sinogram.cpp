#include "geom/sinogram.h"

namespace mbir {

double Sinogram::sumSquares() const {
  double acc = 0.0;
  for (float v : data_) acc += double(v) * double(v);
  return acc;
}

double Sinogram::weightedSumSquares(const Sinogram& w) const {
  MBIR_CHECK(sameShape(w));
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    acc += double(w.data_[i]) * double(data_[i]) * double(data_[i]);
  return acc;
}

}  // namespace mbir
