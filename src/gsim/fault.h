// Fault-injection seam for the simulated GPU substrate.
//
// A FaultHook is a per-run observer/saboteur the executor and the
// reconstructor call at deterministic points of a job's execution: once at
// the top of every GpuSimulator::launch (event "launch:<kernel>", indexed by
// the simulator's launch sequence) and once per reconstruction iteration
// (event "iteration", indexed by iteration). Those call sites depend only on
// the problem + config — never on host timing, thread count, or device
// assignment — so a hook that fires "at the 3rd event" fires at the same
// algorithmic point on every replay.
//
// A hook may do three things, matching the chaos fault taxonomy
// (DESIGN.md §12):
//   - return normally (heartbeat only — the watchdog's liveness signal),
//   - throw (LaunchFault for a corrupted launch, DeviceLost after a stall
//     is abandoned by the watchdog) — the error unwinds through
//     reconstruct() into sched::runJobOnDevice's catch, failing or
//     migrating the job without touching the device thread's stack,
//   - block (a stalled device: heartbeats stop, the run freezes until the
//     service-level watchdog declares the device failed).
//
// The hook pointer is plumbed RunConfig -> GpuIcdOptions -> GpuSimulator and
// RunConfig -> the engine-agnostic per-iteration tracker, so all three
// engines (seq/psv/gpu) share the iteration-boundary injection point and the
// gpu engine additionally gets per-launch granularity. nullptr everywhere
// means zero overhead and byte-for-byte the pre-chaos behavior.
#pragma once

#include <cstdint>
#include <string>

#include "core/error.h"

namespace mbir::gsim {

/// Structured error modeling a corrupted kernel launch: the driver accepted
/// the launch but the kernel never ran correctly. Carries enough context
/// (kernel, launch index, device) for a failure report to say *which* launch
/// was corrupted, not just that the job failed.
class LaunchFault : public Error {
 public:
  LaunchFault(std::string kernel, std::uint64_t launch_index, int device)
      : Error("LaunchFault: corrupted launch of kernel '" + kernel +
              "' (launch #" + std::to_string(launch_index) + ", device " +
              std::to_string(device) + ")"),
        kernel_(std::move(kernel)),
        launch_index_(launch_index),
        device_(device) {}

  const std::string& kernel() const { return kernel_; }
  std::uint64_t launchIndex() const { return launch_index_; }
  int device() const { return device_; }

 private:
  std::string kernel_;
  std::uint64_t launch_index_;
  int device_;
};

/// Structured error a stalled run throws after the watchdog abandons its
/// device: the work is not wrong, the device underneath it is gone. The
/// dispatcher treats DeviceLost (on a failed device) as "migrate", never
/// "fail".
class DeviceLost : public Error {
 public:
  explicit DeviceLost(int device)
      : Error("DeviceLost: device " + std::to_string(device) +
              " declared failed while the job was running"),
        device_(device) {}

  int device() const { return device_; }

 private:
  int device_;
};

/// Execution-event observer injected into a single job run. See the file
/// comment for the contract; implementations live in src/chaos.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// `what` names the event kind ("launch:<kernel>" or "iteration");
  /// `index` counts events of any kind within this run, from 0. May throw
  /// or block — call sites must be exception-safe past this point.
  virtual void onEvent(const char* what, std::uint64_t index) = 0;
};

}  // namespace mbir::gsim
