// gsim façade over the core SIMD lane-group layer (core/simd.h).
//
// The lane-group primitives live in core so layers below gsim — notably the
// geom projector, which gsim itself depends on through icd — can run their
// row loops on the same dispatch tables. Simulator code addresses them
// through this alias header: kernels receive the resolved table in
// BlockCtx::warp (gsim/executor.h) and never resolve a path themselves.
#pragma once

#include "core/simd.h"

namespace mbir::gsim {

using mbir::kSimdLanes;
using mbir::SimdMode;
using mbir::SimdOps;
using mbir::ThetaLanes;

using mbir::avx2SimdOps;
using mbir::parseSimdMode;
using mbir::reduceLanes;
using mbir::resolveSimdOps;
using mbir::scalarSimdOps;
using mbir::simdModeFromEnv;
using mbir::simdModeName;

}  // namespace mbir::gsim
