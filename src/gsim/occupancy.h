// CUDA-style occupancy calculator.
//
// Occupancy — the ratio of resident threads to the architectural maximum —
// is the paper's central lever in §4.2: the naive kernel needs 44 registers
// per thread (50-60% occupancy); spilling thread-local variables to shared
// memory brings it to 32 registers and 100% occupancy, which the timing
// model converts into higher achieved memory bandwidth.
#pragma once

#include "gsim/device.h"

namespace mbir::gsim {

struct KernelResources {
  int threads_per_block = 256;
  int regs_per_thread = 32;
  std::size_t smem_per_block_bytes = 0;
};

struct Occupancy {
  int blocks_per_smm = 0;
  int threads_per_smm = 0;
  double fraction = 0.0;  ///< threads_per_smm / max_threads_per_smm
  /// Which resource bound the block count ("threads", "blocks", "registers",
  /// "shared_memory").
  const char* limiter = "";
};

/// Compute resident blocks per SMM under all four limits. Throws on
/// impossible configurations (block larger than any single limit allows).
Occupancy computeOccupancy(const DeviceSpec& dev, const KernelResources& res);

}  // namespace mbir::gsim
