#include "gsim/timing.h"

#include <algorithm>
#include <cmath>

namespace mbir::gsim {

namespace {
constexpr double kGb = 1e9;
}

KernelTime modelKernelTime(const DeviceSpec& dev, const KernelStats& stats,
                           const Occupancy& occ) {
  KernelTime t;
  t.occupancy = occ.fraction;
  double eff = std::min(1.0, std::pow(occ.fraction, kOccupancyExponent));
  // Device fill: a grid smaller than the device's resident-block capacity
  // leaves SMMs idle for the whole launch.
  if (stats.grid_blocks > 0) {
    const double capacity = double(dev.num_smm) * double(occ.blocks_per_smm);
    const double fill = std::min(1.0, double(stats.grid_blocks) / capacity);
    eff *= std::pow(fill, kFillExponent);
  }

  t.launch = dev.kernel_launch_us * 1e-6;

  double l2_bytes = stats.svb_access_time_bytes + stats.desc_bytes;
  double tex_bytes = 0.0;
  if (stats.amatrix_via_texture) {
    tex_bytes = stats.amatrix_access_bytes;
  } else {
    // Global-path A reads stream through L2 (no width penalty: the paper's
    // global fallback reads A as wide words).
    l2_bytes += stats.amatrix_access_bytes;
  }

  // Capacity spill: the fraction of SVB accesses that miss L2 because the
  // kernel's working set exceeds it.
  double spill = 0.0;
  if (stats.l2_working_set_bytes > double(dev.l2_size_bytes)) {
    spill = stats.svb_access_bytes *
            (1.0 - double(dev.l2_size_bytes) / stats.l2_working_set_bytes);
  }
  const double dram_bytes =
      stats.svb_unique_bytes + stats.amatrix_unique_bytes + spill;

  t.tex = tex_bytes / (dev.tex_bw_gbs * kGb * eff);
  t.l2 = l2_bytes / (dev.l2_bw_gbs * kGb * eff);
  t.dram = dram_bytes / (dev.dram_bw_gbs * kGb);
  t.smem = stats.smem_bytes / (dev.smem_bw_gbs * kGb * eff);
  t.compute = stats.flops / (dev.peakFlops() * eff);
  t.atomic = stats.atomic_ops_weighted / (dev.atomic_ops_per_ns * 1e9);

  const struct {
    double v;
    const char* name;
  } paths[] = {{t.tex, "tex"},   {t.l2, "l2"},           {t.dram, "dram"},
               {t.smem, "smem"}, {t.compute, "compute"}, {t.atomic, "atomic"}};
  // Soft bottleneck: a p-norm over the per-path times. A hard max() would
  // claim that shrinking a non-critical path (e.g. the A-matrix stream in
  // Table 2) is free; real GPUs overlap paths imperfectly, and secondary
  // streams contend with the critical one. p = 4 keeps the critical path
  // dominant while letting near-critical paths contribute, matching the
  // smallish-but-real deltas of the paper's Tables 2-3.
  double norm = 0.0;
  double worst = 0.0;
  t.bottleneck = "none";
  for (const auto& p : paths) {
    norm += p.v * p.v * p.v * p.v;
    if (p.v > worst) {
      worst = p.v;
      t.bottleneck = p.name;
    }
  }
  norm = std::pow(norm, 0.25);
  t.total = t.launch + norm * stats.imbalance_factor;
  return t;
}

LinkSpec pcie3Link() { return LinkSpec{"pcie3", 5e-6, 12.0}; }

LinkSpec nvlinkLink() { return LinkSpec{"nvlink", 2e-6, 35.0}; }

double transferSeconds(const LinkSpec& link, std::size_t bytes) {
  return link.latency_s + double(bytes) / (link.bandwidth_gbs * kGb);
}

BandwidthReport bandwidthReport(const KernelStats& stats, double total_seconds) {
  BandwidthReport r;
  if (total_seconds <= 0.0) return r;
  const double tex_bytes =
      stats.amatrix_via_texture ? stats.amatrix_access_bytes : 0.0;
  r.tex_gbs = tex_bytes / kGb / total_seconds;
  if (stats.amatrix_access_bytes > 0.0)
    r.tex_hit_rate =
        std::max(0.0, 1.0 - stats.amatrix_unique_bytes / stats.amatrix_access_bytes);
  const double l2_bytes =
      stats.svb_access_bytes + stats.desc_bytes +
      (stats.amatrix_via_texture ? 0.0 : stats.amatrix_access_bytes);
  r.l2_gbs = l2_bytes / kGb / total_seconds;
  r.smem_gbs = stats.smem_bytes / kGb / total_seconds;
  r.dram_gbs =
      (stats.svb_unique_bytes + stats.amatrix_unique_bytes) / kGb / total_seconds;
  r.total_gbs = r.tex_gbs + r.l2_gbs + r.smem_gbs + r.dram_gbs;
  return r;
}

}  // namespace mbir::gsim
