// First-order GPU kernel timing model.
//
// Converts one kernel launch's KernelStats + occupancy into modeled time.
// The model is a bottleneck (roofline-style) maximum over the paths the
// paper's optimizations act on, scaled by an occupancy latency-hiding
// efficiency:
//
//   eff(occ)   = occ^kOccupancyExponent  (capped at 1), further scaled by
//                device fill (grids smaller than the resident-block capacity
//                leave SMMs idle). The exponent is calibrated from the
//                paper's Table 3 row 2: raising occupancy to 100% via the
//                register spill gives a 1.124x speedup.
//   t_tex      = amatrix_access_bytes / (tex_bw * eff)         [if texture]
//   t_l2       = (svb_access_time_bytes + desc [+ A if global]) / (l2_bw * eff)
//                where svb_access_time_bytes already folds in the
//                4-byte-width penalty (paper §4.3.2: float reads reach only
//                ~50-55% of L2 bandwidth, double reads 100%).
//   t_dram     = (unique bytes + L2 capacity spill) / dram_bw
//                spill = svb_access_bytes * max(0, 1 - l2_size/working_set)
//   t_smem     = smem_bytes / (smem_bw * eff)
//   t_compute  = flops / (peak_flops * eff)
//   t_atomic   = atomic_ops_weighted / atomic_throughput
//   t_kernel   = launch_overhead + max(all of the above)
//
// Everything here is a *model* of the paper's Titan X, not a measurement of
// the host — see DESIGN.md §1 ("Substitutions") and EXPERIMENTS.md for which
// outputs are calibrated vs emergent.
#pragma once

#include <cstddef>

#include "gsim/device.h"
#include "gsim/kernel_stats.h"
#include "gsim/occupancy.h"

namespace mbir::gsim {

/// Occupancy -> bandwidth efficiency exponent (see header comment). 0.45
/// makes the 62.5% -> 100% occupancy step of the register-spill optimization
/// land near the paper's published 1.124x (Table 3 row 2) net of the spill's
/// own shared-memory traffic.
inline constexpr double kOccupancyExponent = 0.45;

/// Device-fill exponent: a grid filling fraction f of the resident-block
/// capacity achieves f^0.7 of peak throughput (sublinear: partially-filled
/// devices still overlap memory traffic). Calibrated so one-threadblock-
/// per-SV (intra-SV parallelism off) lands near the paper's 6.25x.
inline constexpr double kFillExponent = 0.7;

/// Per-launch timing breakdown (seconds).
struct KernelTime {
  double total = 0.0;
  double launch = 0.0;
  double tex = 0.0;
  double l2 = 0.0;
  double dram = 0.0;
  double smem = 0.0;
  double compute = 0.0;
  double atomic = 0.0;
  const char* bottleneck = "";
  double occupancy = 0.0;
};

/// Model one kernel launch.
KernelTime modelKernelTime(const DeviceSpec& dev, const KernelStats& stats,
                           const Occupancy& occ);

/// Achieved-bandwidth report for a set of launches (paper §5.3 reports
/// achieved GB/s per path and cache hit rates).
struct BandwidthReport {
  double tex_gbs = 0.0;
  double tex_hit_rate = 0.0;  ///< 1 - unique/access
  double l2_gbs = 0.0;
  double smem_gbs = 0.0;
  double dram_gbs = 0.0;
  double total_gbs = 0.0;
};

BandwidthReport bandwidthReport(const KernelStats& stats, double total_seconds);

// ---------------------------------------------------------------------------
// Inter-device interconnect model
// ---------------------------------------------------------------------------
//
// Multi-device slab sharding (DESIGN.md §13) moves halo rows and error-
// sinogram reductions between simulated devices. Each link is modeled the
// same first-order way as the kernel paths above: a fixed per-transfer
// latency (driver + DMA setup) plus bytes over a sustained bandwidth.

/// One point-to-point link between two devices (or device and host).
struct LinkSpec {
  const char* name = "pcie3";
  double latency_s = 5e-6;     ///< per-transfer setup latency
  double bandwidth_gbs = 12.0; ///< sustained unidirectional bandwidth
};

/// PCIe 3.0 x16: ~12 GB/s sustained of the 15.75 GB/s raw (the paper-era
/// Titan X interconnect), ~5 us effective launch-to-first-byte latency.
LinkSpec pcie3Link();

/// NVLink 1.0-class link: ~35 GB/s sustained per direction, lower setup
/// latency. Not the default; lets the bench show the comm-bound regime
/// shrinking on a better fabric.
LinkSpec nvlinkLink();

/// Modeled seconds to move `bytes` over `link` (latency + bytes/bandwidth).
double transferSeconds(const LinkSpec& link, std::size_t bytes);

}  // namespace mbir::gsim
