#include "gsim/executor.h"

#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"

namespace mbir::gsim {

int KernelProfiler::transactions(int elements, int elem_bytes, bool aligned) const {
  if (elements <= 0) return 0;
  const int span = elements * elem_bytes;
  int n = (span + dev_.transaction_bytes - 1) / dev_.transaction_bytes;
  if (!aligned) ++n;  // straddles one extra line
  return n;
}

void KernelProfiler::svbAccess(int elements, int elem_bytes, bool aligned,
                               bool as_double) {
  const double bytes =
      double(transactions(elements, elem_bytes, aligned)) * dev_.transaction_bytes;
  stats_.svb_access_bytes += bytes;
  stats_.svb_access_time_bytes +=
      as_double ? bytes : bytes / dev_.l2_float_width_factor;
}

void KernelProfiler::svbScalarAccess(int elements, int elem_bytes) {
  // One transaction per element; width penalty applies (narrow loads).
  const double bytes = double(elements) * dev_.transaction_bytes;
  (void)elem_bytes;
  stats_.svb_access_bytes += bytes;
  stats_.svb_access_time_bytes += bytes / dev_.l2_float_width_factor;
}

void KernelProfiler::svbIdle(int elements, int elem_bytes) {
  const double bytes =
      double(transactions(elements, elem_bytes, true)) * dev_.transaction_bytes;
  stats_.svb_access_time_bytes += bytes;
}

void KernelProfiler::setImbalance(double factor) {
  MBIR_CHECK(factor >= 1.0);
  if (factor > stats_.imbalance_factor) stats_.imbalance_factor = factor;
}

void KernelProfiler::svbUnique(std::size_t bytes) {
  stats_.svb_unique_bytes += double(bytes);
}

void KernelProfiler::amatrixAccess(int elements, int elem_bytes, bool aligned) {
  stats_.amatrix_access_bytes +=
      double(transactions(elements, elem_bytes, aligned)) * dev_.transaction_bytes;
}

void KernelProfiler::amatrixScalarAccess(int elements, int elem_bytes) {
  (void)elem_bytes;
  stats_.amatrix_access_bytes += double(elements) * dev_.transaction_bytes;
}

void KernelProfiler::amatrixUnique(std::size_t bytes) {
  stats_.amatrix_unique_bytes += double(bytes);
}

void KernelProfiler::setAmatrixViaTexture(bool via_texture) {
  stats_.amatrix_via_texture = via_texture;
}

void KernelProfiler::descRead(std::size_t bytes) {
  stats_.desc_bytes += double(bytes);
}

void KernelProfiler::smemTraffic(std::size_t bytes) {
  stats_.smem_bytes += double(bytes);
}

void KernelProfiler::addFlops(double n) { stats_.flops += n; }

void KernelProfiler::svbAtomic(int ops, double conflict_mult) {
  MBIR_CHECK(conflict_mult >= 1.0);
  stats_.atomic_ops += ops;
  stats_.atomic_ops_weighted += double(ops) * conflict_mult;
}

void KernelProfiler::globalAtomic(int ops, double conflict_mult) {
  svbAtomic(ops, conflict_mult);
}

void KernelProfiler::setL2WorkingSet(double bytes) {
  stats_.l2_working_set_bytes = bytes;
}

LaunchReport GpuSimulator::launch(const LaunchConfig& cfg,
                                  const std::function<void(BlockCtx&)>& kernel) {
  MBIR_CHECK(cfg.num_blocks >= 1);
  LaunchReport report;
  report.occupancy = computeOccupancy(dev_, cfg.resources);

  if (cfg.num_blocks == 1) {
    KernelProfiler prof(dev_);
    BlockCtx ctx{0, 1, prof};
    kernel(ctx);
    report.stats = prof.stats();
  } else {
    // Every block gets a private profiler so blocks can run on any host
    // thread; merging the per-block stats in block-index order keeps the
    // report bit-identical for any pool size.
    std::vector<KernelProfiler> profs;
    profs.reserve(std::size_t(cfg.num_blocks));
    for (int b = 0; b < cfg.num_blocks; ++b) profs.emplace_back(dev_);
    ThreadPool& pool = host_pool_ ? *host_pool_ : globalThreadPool();
    pool.parallelFor(0, cfg.num_blocks, [&](int b) {
      BlockCtx ctx{b, cfg.num_blocks, profs[std::size_t(b)]};
      kernel(ctx);
    });
    for (const KernelProfiler& p : profs) report.stats += p.stats();
  }
  report.stats.launches = 1;
  report.stats.grid_blocks = cfg.num_blocks;
  report.time = modelKernelTime(dev_, report.stats, report.occupancy);

  total_stats_ += report.stats;
  total_seconds_ += report.time.total;
  NamedTotals& nt = per_kernel_[cfg.name];
  nt.stats += report.stats;
  nt.seconds += report.time.total;
  nt.launches += 1;
  return report;
}

void GpuSimulator::resetTotals() {
  total_stats_ = KernelStats{};
  total_seconds_ = 0.0;
  per_kernel_.clear();
}

}  // namespace mbir::gsim
