#include "gsim/executor.h"

#include <thread>
#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"
#include "gsim/fault.h"
#include "obs/obs.h"
#include "obs/span.h"

namespace mbir::gsim {

namespace {

/// Host wall-time of one simulated block, for optional per-block spans.
struct BlockSpan {
  double t0_us = 0.0;
  double t1_us = 0.0;
  int tid = 0;  ///< hashed host worker thread id
};

int hostThreadTid() {
  return int(std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fff);
}

/// KernelStats + time breakdown as span args (same set on both clocks).
void fillLaunchArgs(obs::TraceEvent& ev, const LaunchReport& report) {
  const KernelStats& s = report.stats;
  ev.num_args = {{"blocks", double(s.grid_blocks)},
                 {"occupancy", report.occupancy.fraction},
                 {"svb_access_bytes", s.svb_access_bytes},
                 {"svb_unique_bytes", s.svb_unique_bytes},
                 {"amatrix_access_bytes", s.amatrix_access_bytes},
                 {"amatrix_unique_bytes", s.amatrix_unique_bytes},
                 {"desc_bytes", s.desc_bytes},
                 {"smem_bytes", s.smem_bytes},
                 {"flops", s.flops},
                 {"atomic_ops", s.atomic_ops},
                 {"atomic_ops_weighted", s.atomic_ops_weighted},
                 {"l2_working_set_bytes", s.l2_working_set_bytes},
                 {"imbalance_factor", s.imbalance_factor},
                 {"modeled_seconds", report.time.total},
                 {"t_tex", report.time.tex},
                 {"t_l2", report.time.l2},
                 {"t_dram", report.time.dram},
                 {"t_smem", report.time.smem},
                 {"t_compute", report.time.compute},
                 {"t_atomic", report.time.atomic}};
  ev.str_args = {{"bottleneck", report.time.bottleneck},
                 {"amatrix_path", s.amatrix_via_texture ? "texture" : "global"},
                 {"occupancy_limiter", report.occupancy.limiter}};
}

}  // namespace

void GpuSimulator::setRecorder(obs::Recorder* rec) {
  rec_ = rec;
  inst_ = {};
  if (rec_ && rec_->metricsOn()) {
    obs::MetricsRegistry& m = rec_->metrics();
    inst_.launches = &m.counter("gsim.launch.count");
    inst_.blocks = &m.counter("gsim.launch.blocks");
    inst_.svb_access_bytes = &m.counter("gsim.launch.svb_access_bytes");
    inst_.svb_unique_bytes = &m.counter("gsim.launch.svb_unique_bytes");
    inst_.amatrix_access_bytes = &m.counter("gsim.launch.amatrix_access_bytes");
    inst_.flops = &m.counter("gsim.launch.flops");
    inst_.atomic_ops = &m.counter("gsim.launch.atomic_ops");
    inst_.occupancy = &m.gauge("gsim.launch.occupancy");
    inst_.modeled_seconds = &m.histogram("gsim.launch.modeled_seconds");
    inst_.race_launches_checked = &m.counter("gsim.race.launches_checked");
    inst_.race_ranges_checked = &m.counter("gsim.race.ranges_checked");
    inst_.race_races_found = &m.counter("gsim.race.races_found");
  }
}

LaunchReport GpuSimulator::launch(const LaunchConfig& cfg,
                                  const std::function<void(BlockCtx&)>& kernel) {
  MBIR_CHECK(cfg.num_blocks >= 1);
  // Fault seam: fires before any block is scheduled or time is accounted,
  // so a thrown LaunchFault leaves the simulator's totals untouched. The
  // sequence number advances even when the hook throws — "the 4th launch"
  // means the 4th attempted launch on every replay.
  if (fault_hook_ != nullptr) {
    const std::uint64_t seq = launch_seq_++;
    fault_hook_->onEvent(("launch:" + cfg.name).c_str(), seq);
  }
  LaunchReport report;
  report.occupancy = computeOccupancy(dev_, cfg.resources);

  const bool tracing = rec_ && rec_->traceOn();
  const bool block_spans = rec_ && rec_->blockSpansOn();
  const double host_t0_us = tracing ? rec_->trace().nowHostUs() : 0.0;
  const double modeled_t0_s = total_seconds_;
  std::vector<BlockSpan> bspans;
  if (block_spans) bspans.resize(std::size_t(cfg.num_blocks));

  // Per-block span capture writes only the block's own slot, so it is as
  // race-free as the profiler array and adds nothing when disabled.
  const auto run_block = [&](BlockCtx& ctx) {
    if (block_spans) {
      BlockSpan& bs = bspans[std::size_t(ctx.block_idx)];
      bs.tid = hostThreadTid();
      bs.t0_us = rec_->trace().nowHostUs();
      kernel(ctx);
      bs.t1_us = rec_->trace().nowHostUs();
    } else {
      kernel(ctx);
    }
  };

  // When race checking is on, every block logs its declared accesses into
  // its own slot (same isolation argument as the profiler array); the
  // whole launch is intersected after the blocks join.
  const bool race_on = race_.config().enabled;
  std::vector<BlockAccessLog> race_logs;
  if (race_on) race_logs.resize(std::size_t(cfg.num_blocks));

  const WarpCtx warp{*simd_ops_, kSimdLanes};
  if (cfg.num_blocks == 1) {
    KernelProfiler prof(dev_);
    if (race_on) prof.setRaceLog(&race_logs[0]);
    BlockCtx ctx{0, 1, prof, warp};
    run_block(ctx);
    report.stats = prof.stats();
  } else {
    // Every block gets a private profiler so blocks can run on any host
    // thread; merging the per-block stats in block-index order keeps the
    // report bit-identical for any pool size.
    std::vector<KernelProfiler> profs;
    profs.reserve(std::size_t(cfg.num_blocks));
    for (int b = 0; b < cfg.num_blocks; ++b) {
      profs.emplace_back(dev_);
      if (race_on) profs.back().setRaceLog(&race_logs[std::size_t(b)]);
    }
    ThreadPool& pool = host_pool_ ? *host_pool_ : globalThreadPool();
    pool.parallelFor(0, cfg.num_blocks, [&](int b) {
      BlockCtx ctx{b, cfg.num_blocks, profs[std::size_t(b)], warp};
      run_block(ctx);
    });
    for (const KernelProfiler& p : profs) report.stats += p.stats();
  }
  report.stats.launches = 1;
  report.stats.grid_blocks = cfg.num_blocks;
  report.time = modelKernelTime(dev_, report.stats, report.occupancy);

  int races_found = 0;
  std::size_t race_ranges = 0;
  if (race_on) {
    for (const BlockAccessLog& log : race_logs) race_ranges += log.size();
    races_found = race_.checkLaunch(cfg.name, race_logs);
  }

  total_stats_ += report.stats;
  total_seconds_ += report.time.total;
  NamedTotals& nt = per_kernel_[cfg.name];
  nt.stats += report.stats;
  nt.seconds += report.time.total;
  nt.launches += 1;

  if (inst_.launches) {
    inst_.launches->add();
    inst_.blocks->add(std::uint64_t(cfg.num_blocks));
    inst_.svb_access_bytes->add(std::uint64_t(report.stats.svb_access_bytes));
    inst_.svb_unique_bytes->add(std::uint64_t(report.stats.svb_unique_bytes));
    inst_.amatrix_access_bytes->add(
        std::uint64_t(report.stats.amatrix_access_bytes));
    inst_.flops->add(std::uint64_t(report.stats.flops));
    inst_.atomic_ops->add(std::uint64_t(report.stats.atomic_ops));
    inst_.occupancy->set(report.occupancy.fraction);
    inst_.modeled_seconds->observe(report.time.total);
    if (race_on) {
      inst_.race_launches_checked->add();
      inst_.race_ranges_checked->add(std::uint64_t(race_ranges));
      inst_.race_races_found->add(std::uint64_t(races_found));
    }
  }
  if (tracing) {
    const std::string span_name = "gsim.launch." + cfg.name;
    obs::TraceEvent host_ev;
    host_ev.name = span_name;
    host_ev.cat = "gsim";
    host_ev.clock = obs::Clock::kHost;
    host_ev.ts_us = host_t0_us;
    host_ev.dur_us = rec_->trace().nowHostUs() - host_t0_us;
    fillLaunchArgs(host_ev, report);
    obs::TraceEvent dev_ev;
    dev_ev.name = span_name;
    dev_ev.cat = "gsim";
    dev_ev.clock = obs::Clock::kModeled;
    dev_ev.pid = trace_pid_;
    dev_ev.ts_us = modeled_t0_s * 1e6;
    dev_ev.dur_us = report.time.total * 1e6;
    fillLaunchArgs(dev_ev, report);
    if (span_) {
      host_ev.tid = span_->host_tid;
      obs::tagSpan(host_ev, *span_);
      obs::tagSpan(dev_ev, *span_);
    }
    rec_->trace().record(std::move(host_ev));
    rec_->trace().record(std::move(dev_ev));
    for (std::size_t b = 0; b < bspans.size(); ++b) {
      obs::TraceEvent bev;
      bev.name = "gsim.block." + cfg.name;
      bev.cat = "gsim.block";
      bev.clock = obs::Clock::kHost;
      bev.ts_us = bspans[b].t0_us;
      bev.dur_us = bspans[b].t1_us - bspans[b].t0_us;
      bev.tid = bspans[b].tid;
      bev.num_args = {{"block_idx", double(b)}};
      rec_->trace().record(std::move(bev));
    }
  }
  // Diagnose after totals/metrics/trace so the launch stays observable even
  // when the diagnosis is fatal; the report (all diagnoses so far) remains
  // readable via raceDetector() from a catch block.
  if (races_found > 0 && race_.config().throw_on_race) {
    const std::vector<RaceReport>& races = race_.races();
    MBIR_CHECK_MSG(false, races.empty()
                              ? "race detected in kernel '" + cfg.name + "'"
                              : RaceDetector::describe(races.back()));
  }
  return report;
}

void GpuSimulator::resetTotals() {
  total_stats_ = KernelStats{};
  total_seconds_ = 0.0;
  per_kernel_.clear();
  // Race diagnoses are per-run state too; buffer registrations survive.
  race_.reset();
}

}  // namespace mbir::gsim
