#include "gsim/race_check.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <tuple>

#include "core/error.h"
#include "obs/json.h"

namespace mbir::gsim {

namespace {

bool envFlag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}

/// Two same-phase, same-buffer accesses by distinct blocks conflict unless
/// both are reads or both are atomics. Read-vs-atomic counts: a plain load
/// concurrent with an atomic RMW is undefined ordering at device semantics.
bool kindsConflict(AccessKind a, AccessKind b) {
  if (a == AccessKind::kRead && b == AccessKind::kRead) return false;
  if (a == AccessKind::kAtomic && b == AccessKind::kAtomic) return false;
  return true;
}

/// One range tagged with its owning block, the sweep's working unit.
struct TaggedRange {
  AccessRange r;
  int block = 0;
};

}  // namespace

const char* accessKindName(AccessKind k) {
  switch (k) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kAtomic: return "atomic";
  }
  return "?";
}

RaceCheckConfig RaceCheckConfig::fromEnv() {
  RaceCheckConfig cfg;
  cfg.enabled = envFlag("GPUMBIR_RACE_CHECK", false);
  cfg.throw_on_race = envFlag("GPUMBIR_RACE_CHECK_THROW", cfg.enabled);
  return cfg;
}

void BlockAccessLog::push(int buffer, std::int64_t lo, std::int64_t hi,
                          AccessKind kind) {
  if (lo >= hi) return;  // empty ranges carry no accesses
  // Cheap coalescing: kernels declare rows/stripes in order, so extending
  // the previous range covers the common case and keeps logs short.
  if (!ranges_.empty()) {
    AccessRange& last = ranges_.back();
    if (last.buffer == buffer && last.kind == kind && last.phase == phase_ &&
        lo <= last.hi && hi >= last.lo) {
      last.lo = std::min(last.lo, lo);
      last.hi = std::max(last.hi, hi);
      return;
    }
  }
  ranges_.push_back({lo, hi, buffer, phase_, kind});
}

void BlockAccessLog::setPhase(int phase) {
  MBIR_CHECK_MSG(phase >= phase_, "block phases must be monotonic");
  phase_ = phase;
}

void BlockAccessLog::clear() {
  ranges_.clear();
  phase_ = 0;
}

void RaceDetector::reconfigure(const RaceCheckConfig& cfg) {
  std::lock_guard lock(mu_);
  cfg_ = cfg;
  buffer_ids_.clear();
  buffer_names_.clear();
  races_.clear();
  totals_ = RaceCheckTotals{};
}

int RaceDetector::bufferId(const std::string& name) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = buffer_ids_.emplace(name, int(buffer_names_.size()));
  if (inserted) buffer_names_.push_back(name);
  return it->second;
}

const std::string& RaceDetector::bufferName(int id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK(id >= 0 && std::size_t(id) < buffer_names_.size());
  return buffer_names_[std::size_t(id)];
}

int RaceDetector::checkLaunch(const std::string& kernel,
                              const std::vector<BlockAccessLog>& logs) {
  // Flatten, then sort by (buffer, phase, lo): conflicts only exist inside
  // one (buffer, phase) run, and within a run a sweep over lo with an
  // active list pruned by hi finds every overlapping pair without the
  // all-pairs quadratic blowup.
  std::vector<TaggedRange> flat;
  std::size_t total = 0;
  for (const BlockAccessLog& log : logs) total += log.ranges_.size();
  flat.reserve(total);
  for (std::size_t b = 0; b < logs.size(); ++b)
    for (const AccessRange& r : logs[b].ranges_) flat.push_back({r, int(b)});
  std::sort(flat.begin(), flat.end(),
            [](const TaggedRange& a, const TaggedRange& b) {
              return std::tie(a.r.buffer, a.r.phase, a.r.lo, a.block) <
                     std::tie(b.r.buffer, b.r.phase, b.r.lo, b.block);
            });

  // Deduplicate diagnoses: a kernel sweeping many rows would otherwise
  // report the same logical race once per row pair.
  using Key = std::tuple<int, int, int, int, AccessKind, AccessKind>;
  std::set<Key> seen;
  int found = 0;
  std::vector<RaceReport> local;

  std::vector<const TaggedRange*> active;
  int run_buffer = -1, run_phase = -1;
  for (const TaggedRange& cur : flat) {
    if (cur.r.buffer != run_buffer || cur.r.phase != run_phase) {
      active.clear();
      run_buffer = cur.r.buffer;
      run_phase = cur.r.phase;
    }
    // Drop ranges that end at or before the sweep line.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const TaggedRange* t) {
                                  return t->r.hi <= cur.r.lo;
                                }),
                 active.end());
    for (const TaggedRange* prev : active) {
      if (prev->block == cur.block) continue;
      if (!kindsConflict(prev->r.kind, cur.r.kind)) continue;
      const int a = std::min(prev->block, cur.block);
      const int b = std::max(prev->block, cur.block);
      const AccessKind ka = prev->block == a ? prev->r.kind : cur.r.kind;
      const AccessKind kb = prev->block == a ? cur.r.kind : prev->r.kind;
      if (!seen.insert({cur.r.buffer, cur.r.phase, a, b, ka, kb}).second)
        continue;
      RaceReport rep;
      rep.kernel = kernel;
      rep.buffer = bufferName(cur.r.buffer);
      rep.block_a = a;
      rep.block_b = b;
      rep.kind_a = ka;
      rep.kind_b = kb;
      rep.lo = std::max(prev->r.lo, cur.r.lo);
      rep.hi = std::min(prev->r.hi, cur.r.hi);
      rep.phase = cur.r.phase;
      local.push_back(std::move(rep));
      ++found;
    }
    active.push_back(&cur);
  }

  std::lock_guard lock(mu_);
  totals_.launches_checked += 1;
  totals_.blocks_checked += logs.size();
  totals_.ranges_checked += total;
  totals_.races_found += std::uint64_t(found);
  for (RaceReport& rep : local) {
    if (int(races_.size()) >= cfg_.max_reports) break;
    races_.push_back(std::move(rep));
  }
  return found;
}

RaceCheckTotals RaceDetector::totals() const {
  std::lock_guard lock(mu_);
  return totals_;
}

void RaceDetector::reset() {
  std::lock_guard lock(mu_);
  races_.clear();
  totals_ = RaceCheckTotals{};
}

std::string RaceDetector::describe(const RaceReport& r) {
  return "race in kernel '" + r.kernel + "': blocks " +
         std::to_string(r.block_a) + " (" + accessKindName(r.kind_a) +
         ") and " + std::to_string(r.block_b) + " (" +
         accessKindName(r.kind_b) + ") overlap on buffer '" + r.buffer +
         "' elements [" + std::to_string(r.lo) + ", " + std::to_string(r.hi) +
         ") in phase " + std::to_string(r.phase);
}

std::string RaceDetector::reportJson() const {
  std::lock_guard lock(mu_);
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.race_report/1");
  w.key("totals").beginObject();
  w.kv("launches_checked", totals_.launches_checked);
  w.kv("blocks_checked", totals_.blocks_checked);
  w.kv("ranges_checked", totals_.ranges_checked);
  w.kv("races_found", totals_.races_found);
  w.endObject();
  w.kv("races_reported", std::uint64_t(races_.size()));
  w.key("races").beginArray();
  for (const RaceReport& r : races_) {
    w.beginObject();
    w.kv("kernel", r.kernel);
    w.kv("buffer", r.buffer);
    w.kv("block_a", r.block_a);
    w.kv("block_b", r.block_b);
    w.kv("kind_a", accessKindName(r.kind_a));
    w.kv("kind_b", accessKindName(r.kind_b));
    w.kv("lo", r.lo);
    w.kv("hi", r.hi);
    w.kv("phase", r.phase);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

void RaceDetector::writeReportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open race report path: " + path);
  out << reportJson() << "\n";
  MBIR_CHECK_MSG(out.good(), "failed writing race report: " + path);
}

}  // namespace mbir::gsim
