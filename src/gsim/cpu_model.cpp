#include "gsim/cpu_model.h"

#include "core/error.h"

namespace mbir::gsim {

CpuModel xeon16Core() {
  CpuModel m;
  m.name = "2x Xeon E5-2670, 16 cores (modeled)";
  m.cores = 16;
  m.element_ns = 6.5;  // L2-resident SVB walk (calibration anchor, see header)
  return m;
}

CpuModel sequentialReference() {
  CpuModel m;
  m.name = "Xeon E5-2670, 1 core, no SVBs (modeled)";
  m.cores = 1;
  m.element_ns = 52.0;  // DRAM-latency bound sinusoidal walk (anchor)
  m.gather_element_ns = 0.0;  // sequential ICD has no SVBs
  m.visit_ns = 30.0;
  return m;
}

double modelPsvCpuSeconds(const WorkCounters& w, const CpuModel& m) {
  MBIR_CHECK(m.cores >= 1);
  const double parallel_ns =
      double(w.voxels_visited) * m.visit_ns +
      double(w.theta_elements + w.error_update_elements) * m.element_ns +
      double(w.svb_gather_elements) * m.gather_element_ns +
      double(w.voxel_updates) * m.update_overhead_ns;
  const double serial_ns =
      double(w.svb_writeback_elements) * m.writeback_element_ns +
      double(w.lock_acquisitions) * m.lock_us * 1e3;
  return (parallel_ns / double(m.cores) + serial_ns) * 1e-9;
}

double modelSequentialCpuSeconds(const WorkCounters& w, const CpuModel& m) {
  const double ns =
      double(w.voxels_visited) * m.visit_ns +
      double(w.theta_elements + w.error_update_elements) * m.element_ns +
      double(w.voxel_updates) * m.update_overhead_ns;
  return ns * 1e-9;
}

}  // namespace mbir::gsim
