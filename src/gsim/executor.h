// Functional GPU kernel executor + per-launch profiler.
//
// Kernels are written as C++ callables over a BlockCtx; the executor runs
// every threadblock of a launch concurrently on the host thread pool (like
// the hardware would), each block reporting to its own KernelProfiler.
// Per-block stats are merged in block-index order, so the LaunchReport —
// counters and modeled time — is bit-identical for any host thread count.
// Kernels must therefore be written like real CUDA blocks: no unsynchronized
// writes to state shared across blocks (DESIGN.md §gsim host execution
// model). Alongside the functional work, kernels report their memory
// behaviour at *warp* granularity to the KernelProfiler; the launch() call
// converts the counters to modeled time (gsim/timing.h).
//
// This is the substitution for CUDA hardware: same algorithm, same parallel
// semantics, modeled performance (DESIGN.md §1).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/error.h"
#include "gsim/device.h"
#include "gsim/kernel_stats.h"
#include "gsim/occupancy.h"
#include "gsim/race_check.h"
#include "gsim/simd.h"
#include "gsim/timing.h"

namespace mbir {
class ThreadPool;
}

namespace mbir::obs {
class Counter;
class Gauge;
class Histogram;
class Recorder;
struct JobSpanContext;
}  // namespace mbir::obs

namespace mbir::gsim {

/// Accounting interface kernels report through.
///
/// All accounting methods are defined inline: kernels call them once per
/// warp-granularity access inside their hottest loops, and the calls must
/// melt into the surrounding loop rather than pay an out-of-line call each
/// (they dominated the profile before the SIMD lane-group rework). The
/// operations and their order are exactly the out-of-line originals, so
/// every accumulated stat is bit-identical to pre-inline builds.
class KernelProfiler {
 public:
  explicit KernelProfiler(const DeviceSpec& dev) : dev_(dev) {}

  /// Post-coalescing transaction count for one warp-contiguous access.
  int transactions(int elements, int elem_bytes, bool aligned) const {
    if (elements <= 0) return 0;
    const int span = elements * elem_bytes;
    int n = (span + dev_.transaction_bytes - 1) / dev_.transaction_bytes;
    if (!aligned) ++n;  // straddles one extra line
    return n;
  }

  /// One warp reads/writes `elements` contiguous SVB elements of
  /// `elem_bytes`. `aligned` = starts on a transaction boundary;
  /// `as_double` = issued as 8-byte loads (§4.3.2 width trick).
  void svbAccess(int elements, int elem_bytes, bool aligned, bool as_double) {
    const double bytes = double(transactions(elements, elem_bytes, aligned)) *
                         dev_.transaction_bytes;
    stats_.svb_access_bytes += bytes;
    stats_.svb_access_time_bytes +=
        as_double ? bytes : bytes / dev_.l2_float_width_factor;
  }

  /// Uncoalesced SVB access: each element is its own transaction (the naive
  /// layout's sensor-channel-major walk, Fig. 4a).
  void svbScalarAccess(int elements, int elem_bytes) {
    // One transaction per element; width penalty applies (narrow loads).
    const double bytes = double(elements) * dev_.transaction_bytes;
    (void)elem_bytes;
    stats_.svb_access_bytes += bytes;
    stats_.svb_access_time_bytes += bytes / dev_.l2_float_width_factor;
  }

  /// Idle-lane time: warps occupying the L2 path without useful traffic
  /// (e.g. chunk rows not divisible by the block's warp count). Counts
  /// toward time but not toward achieved-bandwidth reports.
  void svbIdle(int elements, int elem_bytes) {
    const double bytes = double(transactions(elements, elem_bytes, true)) *
                         dev_.transaction_bytes;
    stats_.svb_access_time_bytes += bytes;
  }

  /// Declare load imbalance (completion-time multiplier; max is kept).
  void setImbalance(double factor) {
    MBIR_CHECK(factor >= 1.0);
    if (factor > stats_.imbalance_factor) stats_.imbalance_factor = factor;
  }

  /// Compulsory SVB footprint (counted once per SVB per kernel).
  void svbUnique(std::size_t bytes) { stats_.svb_unique_bytes += double(bytes); }

  /// One warp reads `elements` contiguous A-matrix elements.
  void amatrixAccess(int elements, int elem_bytes, bool aligned) {
    stats_.amatrix_access_bytes +=
        double(transactions(elements, elem_bytes, aligned)) *
        dev_.transaction_bytes;
  }
  void amatrixScalarAccess(int elements, int elem_bytes) {
    (void)elem_bytes;
    stats_.amatrix_access_bytes += double(elements) * dev_.transaction_bytes;
  }
  void amatrixUnique(std::size_t bytes) {
    stats_.amatrix_unique_bytes += double(bytes);
  }
  void setAmatrixViaTexture(bool via_texture) {
    stats_.amatrix_via_texture = via_texture;
  }

  /// Chunk-descriptor / per-view index lookups.
  void descRead(std::size_t bytes) { stats_.desc_bytes += double(bytes); }

  void smemTraffic(std::size_t bytes) { stats_.smem_bytes += double(bytes); }
  void addFlops(double n) { stats_.flops += n; }

  /// `conflict_mult` >= 1: expected serialization (same-address replays).
  void svbAtomic(int ops, double conflict_mult) {
    MBIR_CHECK(conflict_mult >= 1.0);
    stats_.atomic_ops += ops;
    stats_.atomic_ops_weighted += double(ops) * conflict_mult;
  }
  void globalAtomic(int ops, double conflict_mult) {
    svbAtomic(ops, conflict_mult);
  }

  void setL2WorkingSet(double bytes) { stats_.l2_working_set_bytes = bytes; }

  // Race-check declarations (no-ops — one branch — unless the executor
  // attached a BlockAccessLog for this launch). Buffer ids come from
  // GpuSimulator::raceDetector()->bufferId(), resolved host-side before the
  // launch; [lo, hi) are half-open element ranges of that buffer.
  void raceRead(int buffer, std::int64_t lo, std::int64_t hi) {
    if (race_log_) race_log_->read(buffer, lo, hi);
  }
  void raceWrite(int buffer, std::int64_t lo, std::int64_t hi) {
    if (race_log_) race_log_->write(buffer, lo, hi);
  }
  void raceAtomic(int buffer, std::int64_t lo, std::int64_t hi) {
    if (race_log_) race_log_->atomic(buffer, lo, hi);
  }
  /// Grid-wide phase boundary (cooperative grid sync): accesses in
  /// different phases never conflict. Every block must declare the same
  /// phase sequence, like every block reaching the same barrier.
  void racePhase(int phase) {
    if (race_log_) race_log_->setPhase(phase);
  }
  bool raceCheckOn() const { return race_log_ != nullptr; }
  void setRaceLog(BlockAccessLog* log) { race_log_ = log; }

  const KernelStats& stats() const { return stats_; }

 private:
  const DeviceSpec& dev_;
  KernelStats stats_;
  BlockAccessLog* race_log_ = nullptr;
};

/// Lane-group execution context: how this launch's warps execute their
/// functional math. `ops` is the lane-group implementation resolved for the
/// owning GpuSimulator (scalar or AVX2 — bit-identical either way, see
/// gsim/simd.h); kernels route their hot row loops through it, processing
/// `lanes` simulated warp lanes per step. Profiler and race declarations
/// stay at warp granularity and do not depend on which path runs.
struct WarpCtx {
  const SimdOps& ops;
  int lanes = kSimdLanes;
};

/// Context passed to kernel code for one threadblock.
struct BlockCtx {
  int block_idx;
  int num_blocks;
  KernelProfiler& prof;
  WarpCtx warp;
};

struct LaunchConfig {
  std::string name;
  int num_blocks = 1;
  KernelResources resources;
};

struct LaunchReport {
  Occupancy occupancy;
  KernelStats stats;
  KernelTime time;
};

class FaultHook;  // gsim/fault.h

/// Aggregated per-kernel-name totals.
struct NamedTotals {
  KernelStats stats;
  double seconds = 0.0;
  int launches = 0;
};

class GpuSimulator {
 public:
  /// Race checking auto-enables from GPUMBIR_RACE_CHECK=1 so any existing
  /// binary can be run checked without a code change; setRaceCheck()
  /// overrides either way.
  explicit GpuSimulator(DeviceSpec spec = titanXMaxwell())
      : dev_(std::move(spec)), race_(RaceCheckConfig::fromEnv()) {}

  const DeviceSpec& device() const { return dev_; }

  /// Reconfigure device-semantics race checking (gsim/race_check.h). Resets
  /// the detector; off by default and one branch per declaration when off.
  void setRaceCheck(const RaceCheckConfig& cfg) { race_.reconfigure(cfg); }
  bool raceCheckOn() const { return race_.config().enabled; }
  /// The per-simulator detector — buffer registration for kernels and
  /// report/totals readout for callers. Valid whether or not checking is
  /// enabled (everything is cheap and empty when off).
  RaceDetector& raceDetector() { return race_; }
  const RaceDetector& raceDetector() const { return race_; }

  /// Host thread pool blocks execute on (nullptr = process-wide pool).
  /// Purely a wall-clock knob: results are identical for any pool.
  void setHostPool(ThreadPool* pool) { host_pool_ = pool; }

  /// Lane-group implementation subsequent launches hand to kernels through
  /// BlockCtx::warp (gsim/simd.h). Defaults to the GPUMBIR_SIMD environment
  /// knob (unset = auto). Purely a wall-clock knob too: the scalar and AVX2
  /// paths are bit-identical, so this never changes results — but forcing
  /// kAvx2 on a host that cannot run it throws.
  void setSimdMode(SimdMode m) { simd_ops_ = &resolveSimdOps(m); }
  const SimdOps& simdOps() const { return *simd_ops_; }
  /// The concrete path kernels will execute on: "scalar" | "avx2".
  const char* simdPath() const { return simd_ops_->name; }

  /// Observability sink (nullptr = off, the default): every launch records
  /// one span per clock (host wall time + modeled device time) with its
  /// KernelStats and time breakdown as args, optional per-block host-clock
  /// spans, and `gsim.launch.*` metrics. Purely observational — launch
  /// results are bit-identical with or without a recorder.
  void setRecorder(obs::Recorder* rec);

  /// Trace process this instance's modeled-clock spans belong to (0 = the
  /// shared "modeled device clock" process). A multi-device scheduler gives
  /// every device instance its own pid (named via
  /// obs::TraceRecorder::nameProcess) so per-device timelines stay apart.
  /// Purely observational.
  void setTracePid(int pid) { trace_pid_ = pid; }
  int tracePid() const { return trace_pid_; }

  /// Per-job span context (nullptr = none): launch spans carry the job's
  /// id/tenant args and land on the job's host-clock lane, so a service
  /// trace nests every launch under its job. Borrowed; must outlive the
  /// launches it covers. Purely observational.
  void setSpanContext(const obs::JobSpanContext* span) { span_ = span; }

  /// Fault-injection hook (nullptr = none, the default): called at the top
  /// of every launch with "launch:<kernel>" and this simulator's launch
  /// sequence number, *before* any block runs. The hook may throw
  /// (LaunchFault — the launch is accounted as never having happened) or
  /// block (a stalled device). Borrowed; scoped to one job run by the
  /// scheduler layers. See gsim/fault.h.
  void setFaultHook(FaultHook* hook) { fault_hook_ = hook; }

  /// Run every block of the kernel functionally (concurrently across host
  /// threads); model and accumulate time. The report is invariant to the
  /// host thread count: each block profiles into its own KernelProfiler and
  /// the per-block stats are merged in block-index order.
  LaunchReport launch(const LaunchConfig& cfg,
                      const std::function<void(BlockCtx&)>& kernel);

  /// Account host<->device or kernel-free modeled time (e.g. a memcpy).
  void addModeledSeconds(double s) { total_seconds_ += s; }

  double totalModeledSeconds() const { return total_seconds_; }
  const KernelStats& totalStats() const { return total_stats_; }
  const std::map<std::string, NamedTotals>& perKernel() const { return per_kernel_; }
  void resetTotals();

 private:
  /// gsim.launch.* instruments, resolved once in setRecorder so the launch
  /// path never does registry lookups.
  struct Instruments {
    obs::Counter* launches = nullptr;
    obs::Counter* blocks = nullptr;
    obs::Counter* svb_access_bytes = nullptr;
    obs::Counter* svb_unique_bytes = nullptr;
    obs::Counter* amatrix_access_bytes = nullptr;
    obs::Counter* flops = nullptr;
    obs::Counter* atomic_ops = nullptr;
    obs::Gauge* occupancy = nullptr;
    obs::Histogram* modeled_seconds = nullptr;
    obs::Counter* race_launches_checked = nullptr;
    obs::Counter* race_ranges_checked = nullptr;
    obs::Counter* race_races_found = nullptr;
  };

  DeviceSpec dev_;
  RaceDetector race_;
  ThreadPool* host_pool_ = nullptr;
  const SimdOps* simd_ops_ = &resolveSimdOps(SimdMode::kDefault);
  obs::Recorder* rec_ = nullptr;
  int trace_pid_ = 0;
  const obs::JobSpanContext* span_ = nullptr;
  FaultHook* fault_hook_ = nullptr;
  std::uint64_t launch_seq_ = 0;
  Instruments inst_;
  KernelStats total_stats_;
  double total_seconds_ = 0.0;
  std::map<std::string, NamedTotals> per_kernel_;
};

}  // namespace mbir::gsim
