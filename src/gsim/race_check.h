// Device-semantics race detection for simulated kernel launches.
//
// Host-level TSan checks pthread semantics: it can only see races that the
// host scheduler happens to expose, and host locks that do not exist on the
// device can mask real device races. This layer checks the CUDA-level
// invariant directly, independent of host interleaving: within one launch,
// two *blocks* may not touch overlapping element ranges of the same buffer
// unless both accesses are reads, both are atomics, or a grid-wide phase
// boundary separates them. Kernels declare their memory behaviour as
// (buffer, element range, read/write/atomic) through the KernelProfiler —
// the same channel they already report traffic on — and the executor
// collects one BlockAccessLog per block, then hands the launch to the
// RaceDetector, which sorts the declared ranges and intersects them.
//
// Everything is opt-in (RaceCheckConfig, or GPUMBIR_RACE_CHECK=1 in the
// environment) and costs a single pointer test per declaration site when
// disabled. Diagnoses carry kernel name, block pair, buffer and overlapping
// element range, and are exported as a `gpumbir.race_report/1` JSON
// artifact. The conflict rules intentionally mirror the paper's §4.2
// schedule argument; gpuicd/conflicts.h cross-checks the analytical
// checkerboard schedule against this detector (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mbir::gsim {

enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1, kAtomic = 2 };

const char* accessKindName(AccessKind k);

struct RaceCheckConfig {
  bool enabled = false;
  /// Throw mbir::Error from launch() on the first diagnosed race (after it
  /// has been recorded). Defaults on when enabled via the environment so a
  /// race anywhere fails the enclosing test run.
  bool throw_on_race = false;
  /// Cap on stored diagnoses; checking (and the races_found counter) keeps
  /// going past it so a noisy kernel cannot exhaust memory.
  int max_reports = 64;

  /// GPUMBIR_RACE_CHECK=1 enables; GPUMBIR_RACE_CHECK_THROW=0/1 overrides
  /// throw_on_race (default: throw when enabled).
  static RaceCheckConfig fromEnv();
};

/// One declared access: half-open element range [lo, hi) of a registered
/// buffer, in the block's current phase.
struct AccessRange {
  std::int64_t lo = 0, hi = 0;
  int buffer = 0;
  int phase = 0;
  AccessKind kind = AccessKind::kRead;
};

/// Access set of one simulated block within one launch. Filled through the
/// KernelProfiler race* methods; owned and handed to the detector by the
/// executor.
class BlockAccessLog {
 public:
  void read(int buffer, std::int64_t lo, std::int64_t hi) {
    push(buffer, lo, hi, AccessKind::kRead);
  }
  void write(int buffer, std::int64_t lo, std::int64_t hi) {
    push(buffer, lo, hi, AccessKind::kWrite);
  }
  void atomic(int buffer, std::int64_t lo, std::int64_t hi) {
    push(buffer, lo, hi, AccessKind::kAtomic);
  }

  /// Enter grid-wide phase `phase` (monotonic per block). A phase boundary
  /// models a device-wide barrier between launches-within-a-launch
  /// (cooperative grid sync): accesses in different phases never conflict.
  void setPhase(int phase);

  bool empty() const { return ranges_.size() == 0; }
  std::size_t size() const { return ranges_.size(); }
  void clear();

 private:
  friend class RaceDetector;
  void push(int buffer, std::int64_t lo, std::int64_t hi, AccessKind kind);

  std::vector<AccessRange> ranges_;
  int phase_ = 0;
};

/// One diagnosed race: two blocks of `kernel` touched the overlapping
/// element range [lo, hi) of `buffer` in the same phase with a conflicting
/// kind pair.
struct RaceReport {
  std::string kernel;
  std::string buffer;
  int block_a = 0, block_b = 0;
  AccessKind kind_a = AccessKind::kRead, kind_b = AccessKind::kRead;
  std::int64_t lo = 0, hi = 0;
  int phase = 0;
};

struct RaceCheckTotals {
  std::uint64_t launches_checked = 0;
  std::uint64_t blocks_checked = 0;
  std::uint64_t ranges_checked = 0;
  std::uint64_t races_found = 0;
};

/// Shadow-range race checker. One detector per GpuSimulator (the scheduler
/// therefore gets one per simulated device); also usable standalone — the
/// PSV engine and the conflict-schedule cross-check feed it BlockAccessLogs
/// directly. Thread-safe: bufferId() is called from kernel code on any host
/// worker thread.
class RaceDetector {
 public:
  explicit RaceDetector(RaceCheckConfig cfg = {}) : cfg_(cfg) {}

  const RaceCheckConfig& config() const { return cfg_; }

  /// Swap in a new config and clear all state (diagnoses, totals, buffer
  /// registry). The detector itself is neither copyable nor movable (it
  /// owns a mutex), so reconfiguration happens in place.
  void reconfigure(const RaceCheckConfig& cfg);

  /// Find-or-create a stable id for a named buffer ("image", "sino.e",
  /// "svb.e/7", ...). Ranges of different buffers never conflict.
  int bufferId(const std::string& name);
  const std::string& bufferName(int id) const;

  /// Intersect the per-block access sets of one launch and record every
  /// diagnosed race (deduplicated per block pair / buffer / kind pair /
  /// phase). Returns the number of new diagnoses; never throws — the
  /// caller decides whether a diagnosis is fatal (config().throw_on_race).
  int checkLaunch(const std::string& kernel,
                  const std::vector<BlockAccessLog>& logs);

  const std::vector<RaceReport>& races() const { return races_; }
  RaceCheckTotals totals() const;
  void reset();

  /// Human-readable one-liner for error messages and logs.
  static std::string describe(const RaceReport& r);

  /// Machine-readable artifact, schema `gpumbir.race_report/1`.
  std::string reportJson() const;
  void writeReportJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  RaceCheckConfig cfg_;
  std::map<std::string, int> buffer_ids_;
  // deque: bufferName() hands out references that must survive later
  // bufferId() insertions.
  std::deque<std::string> buffer_names_;
  std::vector<RaceReport> races_;
  RaceCheckTotals totals_;
};

}  // namespace mbir::gsim
