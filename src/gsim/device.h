// GPU device description for the execution simulator.
//
// The paper's experiments ran on an NVIDIA Maxwell Titan X; this struct
// captures the architectural quantities the paper's optimizations act on
// (SMM/core counts, register file, shared memory, cache sizes, per-path
// bandwidths, warp width). The timing model (gsim/timing.h) converts kernel
// work counters into modeled time using these numbers. See DESIGN.md §1 for
// why simulation stands in for real CUDA hardware here.
#pragma once

#include <cstddef>
#include <string>

namespace mbir::gsim {

struct DeviceSpec {
  std::string name = "Maxwell Titan X (simulated)";

  // --- execution resources ---
  int num_smm = 24;
  int cores_per_smm = 128;
  double clock_ghz = 1.127;
  int warp_size = 32;
  int max_threads_per_smm = 2048;
  int max_blocks_per_smm = 32;
  int max_threads_per_block = 1024;
  int regs_per_smm = 64 * 1024;
  /// Register allocation granularity per warp (Maxwell: 256).
  int reg_alloc_granularity = 256;
  std::size_t smem_per_smm_bytes = 96 * 1024;
  std::size_t max_smem_per_block_bytes = 48 * 1024;

  // --- memory hierarchy ---
  /// Device (global) memory peak bandwidth, GB/s.
  double dram_bw_gbs = 336.0;
  /// L2 peak bandwidth at full-width (>= 8-byte) accesses, GB/s. 4-byte
  /// accesses reach only l2_float_width_factor of this (paper §4.3.2 reports
  /// 50% at the microbenchmark level; the effective kernel-level factor is
  /// milder because the L2 pipe is not saturated every cycle — 0.8 is
  /// calibrated so disabling double reads costs ~5% as in Table 3 row 1).
  double l2_bw_gbs = 950.0;
  double l2_float_width_factor = 0.8;
  /// Unified L1/texture cache peak bandwidth, GB/s (per §5.3 ~700 achieved).
  double tex_bw_gbs = 1150.0;
  double smem_bw_gbs = 1400.0;
  std::size_t l2_size_bytes = 3 * 1024 * 1024;
  std::size_t l1_size_bytes = 24 * 1024;  ///< unified L1/tex per SMM
  /// Memory transaction (cache line) size in bytes.
  int transaction_bytes = 128;

  // --- costs ---
  double kernel_launch_us = 8.0;
  /// Aggregate L2 atomic throughput to *distinct* addresses (operations per
  /// nanosecond across the whole chip; ~128 GB/s of 4-byte red/atom ops).
  /// Same-address conflicts serialize and divide this.
  double atomic_ops_per_ns = 32.0;

  double peakFlops() const {
    return double(num_smm) * double(cores_per_smm) * 2.0 * clock_ghz * 1e9;
  }
};

/// The paper's GPU.
DeviceSpec titanXMaxwell();

/// Scale the simulated device to a reduced problem size.
///
/// The benches run at a scaled-down geometry (DESIGN.md §1). Two quantities
/// must keep their paper-scale *ratios* for the trade-offs of Fig. 7 to
/// reproduce:
///  * SVB-working-set : L2-capacity — an SVB's size scales with the view
///    count (its band width is set by pixel/channel spacing, not channel
///    count), so L2 is scaled by `ratio` = num_views / 720;
///  * grid-size : device-capacity — the SV count shrinks with the image, so
///    the SMM count is scaled by the same ratio to keep batches filling the
///    device exactly when they do at paper scale.
/// Per-path bandwidths are chip-level and stay as on the Titan X, so time
/// ratios between algorithm variants remain meaningful.
DeviceSpec scaleCachesToProblem(DeviceSpec dev, double ratio);

}  // namespace mbir::gsim
