#include "gsim/occupancy.h"

#include <algorithm>

#include "core/aligned.h"
#include "core/error.h"

namespace mbir::gsim {

Occupancy computeOccupancy(const DeviceSpec& dev, const KernelResources& res) {
  MBIR_CHECK_MSG(res.threads_per_block >= 1 &&
                     res.threads_per_block <= dev.max_threads_per_block,
                 "threads_per_block=" << res.threads_per_block);
  MBIR_CHECK(res.regs_per_thread >= 1);
  MBIR_CHECK_MSG(res.smem_per_block_bytes <= dev.max_smem_per_block_bytes,
                 "smem_per_block=" << res.smem_per_block_bytes);

  const int warps_per_block =
      (res.threads_per_block + dev.warp_size - 1) / dev.warp_size;

  // Registers are allocated per warp with architecture granularity.
  const std::size_t regs_per_warp =
      roundUp(std::size_t(res.regs_per_thread) * std::size_t(dev.warp_size),
              std::size_t(dev.reg_alloc_granularity));
  const std::size_t regs_per_block = regs_per_warp * std::size_t(warps_per_block);
  MBIR_CHECK_MSG(regs_per_block <= std::size_t(dev.regs_per_smm),
                 "block needs " << regs_per_block << " registers");

  struct Limit {
    int blocks;
    const char* name;
  };
  const Limit limits[4] = {
      {dev.max_threads_per_smm / res.threads_per_block, "threads"},
      {dev.max_blocks_per_smm, "blocks"},
      {int(std::size_t(dev.regs_per_smm) / regs_per_block), "registers"},
      {res.smem_per_block_bytes == 0
           ? dev.max_blocks_per_smm
           : int(dev.smem_per_smm_bytes / res.smem_per_block_bytes),
       "shared_memory"},
  };

  Occupancy occ;
  occ.blocks_per_smm = limits[0].blocks;
  occ.limiter = limits[0].name;
  for (const Limit& l : limits) {
    if (l.blocks < occ.blocks_per_smm) {
      occ.blocks_per_smm = l.blocks;
      occ.limiter = l.name;
    }
  }
  MBIR_CHECK_MSG(occ.blocks_per_smm >= 1, "kernel cannot fit on an SMM");
  occ.threads_per_smm = occ.blocks_per_smm * res.threads_per_block;
  occ.fraction = double(occ.threads_per_smm) / double(dev.max_threads_per_smm);
  return occ;
}

}  // namespace mbir::gsim
