#include "gsim/device.h"

#include <algorithm>

namespace mbir::gsim {

DeviceSpec titanXMaxwell() { return DeviceSpec{}; }

DeviceSpec scaleCachesToProblem(DeviceSpec dev, double ratio) {
  if (ratio <= 0.0) ratio = 1.0;
  if (ratio > 1.0) ratio = 1.0;
  auto scale = [&](std::size_t bytes, std::size_t floor_bytes) {
    const auto scaled = std::size_t(double(bytes) * ratio);
    return scaled < floor_bytes ? floor_bytes : scaled;
  };
  dev.l2_size_bytes = scale(dev.l2_size_bytes, 32 * 1024);
  dev.l1_size_bytes = scale(dev.l1_size_bytes, 2 * 1024);
  dev.num_smm = std::max(2, int(double(dev.num_smm) * ratio + 0.5));
  return dev;
}

}  // namespace mbir::gsim
