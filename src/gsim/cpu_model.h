// CPU machine models for the Table 1 comparison.
//
// The paper compares GPU-ICD against (a) the public single-core sequential
// ICD and (b) PSV-ICD on a dual-socket 16-core Xeon E5-2670 (iso-power with
// the Titan X). This container has one core, so the benches run both
// algorithms *functionally* (exact convergence behaviour, real work
// counters) and convert the counted work into modeled seconds with the
// models below.
//
//   t_seq = visits * visit_ns + (theta + error elements) * element_ns
//     element_ns is DRAM-latency dominated (~50 ns): sequential ICD walks
//     the sinogram in the sinusoidal pattern of Fig. 1b, defeating caches
//     and prefetchers (§2.2).
//
//   t_psv = [ visits * visit_ns + (theta + error) * element_ns
//             + gathers * gather_element_ns + updates * update_overhead_ns ]
//           / cores
//           + writeback_elements * writeback_element_ns      (serialized)
//           + lock_acquisitions * lock_us                    (serialized)
//     element_ns here is L1/L2-resident (~6-7 ns including the multiply
//     chain): the SVB transformation is exactly what makes this number
//     small (§2.2, Fig. 2).
//
// CALIBRATION: psv_element_ns is set so that PSV-ICD's modeled time/equit at
// the paper's geometry (512^2, 720 views) reproduces the published 0.41
// s/equit; seq_element_ns so that sequential ICD lands at the published
// 138x gap. These are the two anchors declared in DESIGN.md §4; everything
// else (GPU times, optimization deltas, sweep shapes) is emergent.
#pragma once

#include <string>

#include "icd/work.h"

namespace mbir::gsim {

struct CpuModel {
  std::string name;
  int cores = 16;
  double element_ns = 6.5;          ///< per (w, A, e) triple in theta/error loops
  double gather_element_ns = 1.0;   ///< SVB copy in/out, per element
  double visit_ns = 25.0;           ///< per visited voxel (incl. zero-skip test)
  double update_overhead_ns = 120.0;///< prior solve + neighbourhood per update
  double writeback_element_ns = 1.0;///< serialized under the global lock
  double lock_us = 0.3;
};

/// 16-core Xeon E5-2670 node running PSV-ICD (the paper's CPU system).
CpuModel xeon16Core();

/// Single-core sequential ICD on the same node (no SVBs: DRAM-latency bound).
CpuModel sequentialReference();

/// Modeled wall-clock seconds for a PSV-ICD run's counted work.
double modelPsvCpuSeconds(const WorkCounters& w, const CpuModel& m);

/// Modeled wall-clock seconds for a sequential-ICD run's counted work.
double modelSequentialCpuSeconds(const WorkCounters& w, const CpuModel& m);

}  // namespace mbir::gsim
