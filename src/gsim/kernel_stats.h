// Work counters gathered from one simulated kernel launch.
//
// Kernels report warp-level memory accesses, flops and atomics through
// KernelProfiler (gsim/executor.h); the counters below are what the timing
// model consumes. "Access" bytes are post-coalescing transaction bytes;
// "unique" bytes are the compulsory footprint (first touch, served by DRAM).
#pragma once

#include <cstddef>

namespace mbir::gsim {

struct KernelStats {
  // SVB traffic (resident in L2 when it fits; §3.2 / §4.3.2).
  double svb_access_bytes = 0;       ///< transaction bytes through L2
  double svb_access_time_bytes = 0;  ///< bytes / width-factor (float penalty)
  double svb_unique_bytes = 0;       ///< compulsory DRAM fill

  // A-matrix traffic (texture path or global/L2 path; §4.3.1).
  double amatrix_access_bytes = 0;
  double amatrix_unique_bytes = 0;
  bool amatrix_via_texture = true;

  // Chunk descriptor / index lookups (small, L2).
  double desc_bytes = 0;

  // On-chip traffic.
  double smem_bytes = 0;

  double flops = 0;

  // Atomic operations with their expected serialization multiplier folded in
  // (ops * conflict multiplier).
  double atomic_ops_weighted = 0;
  double atomic_ops = 0;

  /// L2 working set declared by the kernel (for the capacity spill model).
  double l2_working_set_bytes = 0;

  /// Load-imbalance completion-time multiplier (>= 1): with static voxel
  /// distribution, zero-skipping leaves some threadblocks idle while the
  /// busiest finishes (§3.2 / Table 3 "dynamic voxel distribution").
  double imbalance_factor = 1.0;

  /// Grid size of the launch (set by the executor); small grids cannot fill
  /// the device (Alg. 3's batch threshold exists to avoid this).
  int grid_blocks = 0;

  int launches = 0;

  KernelStats& operator+=(const KernelStats& o) {
    svb_access_bytes += o.svb_access_bytes;
    svb_access_time_bytes += o.svb_access_time_bytes;
    svb_unique_bytes += o.svb_unique_bytes;
    amatrix_access_bytes += o.amatrix_access_bytes;
    amatrix_unique_bytes += o.amatrix_unique_bytes;
    // The texture path is a whole-kernel property; any block declaring the
    // global path (false) moves the merged launch off the texture path.
    amatrix_via_texture = amatrix_via_texture && o.amatrix_via_texture;
    desc_bytes += o.desc_bytes;
    smem_bytes += o.smem_bytes;
    flops += o.flops;
    atomic_ops_weighted += o.atomic_ops_weighted;
    atomic_ops += o.atomic_ops;
    l2_working_set_bytes = o.l2_working_set_bytes > l2_working_set_bytes
                               ? o.l2_working_set_bytes
                               : l2_working_set_bytes;
    imbalance_factor =
        o.imbalance_factor > imbalance_factor ? o.imbalance_factor : imbalance_factor;
    grid_blocks = o.grid_blocks > grid_blocks ? o.grid_blocks : grid_blocks;
    launches += o.launches;
    return *this;
  }
};

}  // namespace mbir::gsim
