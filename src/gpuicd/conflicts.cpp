#include "gpuicd/conflicts.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mbir {

double intraSvConflictMultiplier(const SvbPlan& plan, const SystemMatrix& A,
                                 int concurrent_blocks) {
  MBIR_CHECK(concurrent_blocks >= 1);
  if (concurrent_blocks == 1) return 1.0;

  // Mean band width over views with data.
  double width_sum = 0.0;
  int active_views = 0;
  for (int v = 0; v < plan.numViews(); ++v) {
    if (plan.width(v) > 0) {
      width_sum += plan.width(v);
      ++active_views;
    }
  }
  if (active_views == 0) return 1.0;
  const double mean_width = width_sum / double(active_views);

  // Mean voxel footprint width (channels per view); sample the SV center
  // voxel — footprints vary only with view angle, not position.
  const SuperVoxel& sv = plan.sv();
  const int n = A.geometry().image_size;
  const int center_row = (sv.row0 + sv.row1 - 1) / 2;
  const int center_col = (sv.col0 + sv.col1 - 1) / 2;
  const std::size_t voxel = std::size_t(center_row) * std::size_t(n) + std::size_t(center_col);
  double fp_sum = 0.0;
  int fp_views = 0;
  for (int v = 0; v < A.numViews(); ++v) {
    const auto& r = A.run(voxel, v);
    if (r.count > 0) {
      fp_sum += r.count;
      ++fp_views;
    }
  }
  if (fp_views == 0) return 1.0;
  const double footprint = fp_sum / double(fp_views);

  // Probability two concurrent footprints collide in a band row ~
  // footprint / band width; expected writers per touched cell:
  const double p = std::min(1.0, footprint / std::max(mean_width, 1.0));
  return 1.0 + double(concurrent_blocks - 1) * p;
}

double interSvConflictMultiplier(const std::vector<const SvbPlan*>& batch,
                                 int num_channels) {
  if (batch.size() <= 1) return 1.0;
  MBIR_CHECK(num_channels > 0);
  const int num_views = batch.front()->numViews();

  double sum_w = 0.0, sum_w2 = 0.0;
  std::vector<int> diff(std::size_t(num_channels) + 1);
  for (int v = 0; v < num_views; ++v) {
    std::fill(diff.begin(), diff.end(), 0);
    bool any = false;
    for (const SvbPlan* p : batch) {
      const int w = p->width(v);
      if (w <= 0) continue;
      diff[std::size_t(p->lo(v))] += 1;
      diff[std::size_t(p->lo(v) + w)] -= 1;
      any = true;
    }
    if (!any) continue;
    int writers = 0;
    for (int c = 0; c < num_channels; ++c) {
      writers += diff[std::size_t(c)];
      if (writers > 0) {
        sum_w += writers;
        sum_w2 += double(writers) * double(writers);
      }
    }
  }
  if (sum_w <= 0.0) return 1.0;
  return std::max(1.0, sum_w2 / sum_w);
}

double staticPartitionImbalance(const std::vector<int>& work_per_voxel,
                                int blocks) {
  MBIR_CHECK(blocks >= 1);
  if (work_per_voxel.empty() || blocks == 1) return 1.0;
  const int n = int(work_per_voxel.size());
  const int per_block = (n + blocks - 1) / blocks;
  double total = 0.0, worst = 0.0;
  for (int b = 0; b < blocks; ++b) {
    double acc = 0.0;
    for (int k = b * per_block; k < std::min(n, (b + 1) * per_block); ++k)
      acc += work_per_voxel[std::size_t(k)];
    total += acc;
    worst = std::max(worst, acc);
  }
  if (total <= 0.0) return 1.0;
  const double mean = total / double(blocks);
  return mean > 0.0 ? std::max(1.0, worst / mean) : 1.0;
}

}  // namespace mbir
