#include "gpuicd/conflicts.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <utility>

#include "core/error.h"

namespace mbir {

double intraSvConflictMultiplier(const SvbPlan& plan, const SystemMatrix& A,
                                 int concurrent_blocks) {
  MBIR_CHECK(concurrent_blocks >= 1);
  if (concurrent_blocks == 1) return 1.0;

  // Mean band width over views with data.
  double width_sum = 0.0;
  int active_views = 0;
  for (int v = 0; v < plan.numViews(); ++v) {
    if (plan.width(v) > 0) {
      width_sum += plan.width(v);
      ++active_views;
    }
  }
  if (active_views == 0) return 1.0;
  const double mean_width = width_sum / double(active_views);

  // Mean voxel footprint width (channels per view); sample the SV center
  // voxel — footprints vary only with view angle, not position.
  const SuperVoxel& sv = plan.sv();
  const int n = A.geometry().image_size;
  const int center_row = (sv.row0 + sv.row1 - 1) / 2;
  const int center_col = (sv.col0 + sv.col1 - 1) / 2;
  const std::size_t voxel = std::size_t(center_row) * std::size_t(n) + std::size_t(center_col);
  double fp_sum = 0.0;
  int fp_views = 0;
  for (int v = 0; v < A.numViews(); ++v) {
    const auto& r = A.run(voxel, v);
    if (r.count > 0) {
      fp_sum += r.count;
      ++fp_views;
    }
  }
  if (fp_views == 0) return 1.0;
  const double footprint = fp_sum / double(fp_views);

  // Probability two concurrent footprints collide in a band row ~
  // footprint / band width; expected writers per touched cell:
  const double p = std::min(1.0, footprint / std::max(mean_width, 1.0));
  return 1.0 + double(concurrent_blocks - 1) * p;
}

double interSvConflictMultiplier(const std::vector<const SvbPlan*>& batch,
                                 int num_channels) {
  if (batch.size() <= 1) return 1.0;
  MBIR_CHECK(num_channels > 0);
  const int num_views = batch.front()->numViews();

  double sum_w = 0.0, sum_w2 = 0.0;
  std::vector<int> diff(std::size_t(num_channels) + 1);
  for (int v = 0; v < num_views; ++v) {
    std::fill(diff.begin(), diff.end(), 0);
    bool any = false;
    for (const SvbPlan* p : batch) {
      const int w = p->width(v);
      if (w <= 0) continue;
      diff[std::size_t(p->lo(v))] += 1;
      diff[std::size_t(p->lo(v) + w)] -= 1;
      any = true;
    }
    if (!any) continue;
    int writers = 0;
    for (int c = 0; c < num_channels; ++c) {
      writers += diff[std::size_t(c)];
      if (writers > 0) {
        sum_w += writers;
        sum_w2 += double(writers) * double(writers);
      }
    }
  }
  if (sum_w <= 0.0) return 1.0;
  return std::max(1.0, sum_w2 / sum_w);
}

namespace {

/// Does SV `a`'s sweep conflict with SV `b`'s at device semantics? True
/// when a's rect expanded by the 1-voxel read ring (clamped to the image)
/// intersects b's written rect, or vice versa. Write/write overlap is
/// subsumed: touching write rects always intersect the other's ring.
bool svSweepsConflict(const SuperVoxel& a, const SuperVoxel& b, int n) {
  const auto ring_hits = [n](const SuperVoxel& u, const SuperVoxel& v) {
    const int r0 = std::max(0, u.row0 - 1), r1 = std::min(n, u.row1 + 1);
    const int c0 = std::max(0, u.col0 - 1), c1 = std::min(n, u.col1 + 1);
    return r0 < v.row1 && v.row0 < r1 && c0 < v.col1 && v.col0 < c1;
  };
  return ring_hits(a, b) || ring_hits(b, a);
}

}  // namespace

int scheduleImageConflicts(const SvGrid& grid, const std::vector<int>& group,
                           gsim::RaceDetector* detector) {
  const int n = grid.imageSize();

  // Implementation 1: analytic rect intersection over all pairs.
  int analytic = 0;
  for (std::size_t i = 0; i < group.size(); ++i)
    for (std::size_t j = i + 1; j < group.size(); ++j)
      if (svSweepsConflict(grid.sv(group[i]), grid.sv(group[j]), n))
        ++analytic;

  // Implementation 2: the race detector over the same geometry, declared
  // exactly like the mbir_update kernel — one block per SV, write rows of
  // the rect, read rows of the clamped ring.
  gsim::RaceDetector scratch(
      {.enabled = true, .throw_on_race = false,
       .max_reports = int(3 * group.size() * group.size() + 1)});
  gsim::RaceDetector& det = detector ? *detector : scratch;
  const std::size_t races_before = det.races().size();
  const int image = det.bufferId("image");
  std::vector<gsim::BlockAccessLog> logs(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const SuperVoxel& sv = grid.sv(group[i]);
    for (int r = sv.row0; r < sv.row1; ++r)
      logs[i].write(image, std::int64_t(r) * n + sv.col0,
                    std::int64_t(r) * n + sv.col1);
    const int rr0 = std::max(0, sv.row0 - 1), rr1 = std::min(n, sv.row1 + 1);
    const int rc0 = std::max(0, sv.col0 - 1), rc1 = std::min(n, sv.col1 + 1);
    for (int r = rr0; r < rr1; ++r)
      logs[i].read(image, std::int64_t(r) * n + rc0,
                   std::int64_t(r) * n + rc1);
  }
  det.checkLaunch("schedule_check", logs);

  // One conflicting pair can produce several diagnoses (read/write in both
  // directions plus write/write); count distinct block pairs.
  std::set<std::pair<int, int>> pairs;
  const std::vector<gsim::RaceReport>& races = det.races();
  for (std::size_t k = races_before; k < races.size(); ++k)
    pairs.insert({races[k].block_a, races[k].block_b});
  MBIR_CHECK_MSG(int(pairs.size()) == analytic,
                 "schedule cross-check disagreement: analytic="
                     << analytic << " detector=" << pairs.size()
                     << " over " << group.size() << " SVs");
  return analytic;
}

double staticPartitionImbalance(const std::vector<int>& work_per_voxel,
                                int blocks) {
  MBIR_CHECK(blocks >= 1);
  if (work_per_voxel.empty() || blocks == 1) return 1.0;
  const int n = int(work_per_voxel.size());
  const int per_block = (n + blocks - 1) / blocks;
  double total = 0.0, worst = 0.0;
  for (int b = 0; b < blocks; ++b) {
    double acc = 0.0;
    for (int k = b * per_block; k < std::min(n, (b + 1) * per_block); ++k)
      acc += work_per_voxel[std::size_t(k)];
    total += acc;
    worst = std::max(worst, acc);
  }
  if (total <= 0.0) return 1.0;
  const double mean = total / double(blocks);
  return mean > 0.0 ? std::max(1.0, worst / mean) : 1.0;
}

}  // namespace mbir
