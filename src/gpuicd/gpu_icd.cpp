#include "gpuicd/gpu_icd.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/rng.h"
#include "gpuicd/conflicts.h"
#include "gsim/occupancy.h"
#include "icd/update_order.h"
#include "icd/voxel_update.h"
#include "prior/neighborhood.h"
#include "sv/chunks.h"
#include "sv/svb.h"

namespace mbir {

namespace {

/// Everything one batch needs while its three kernels run.
struct BatchSv {
  int sv_id;
  const SvbPlan* plan;
  std::unique_ptr<ChunkPlan> chunks;  // null for the naive layout
  std::unique_ptr<Svb> e_svb;
  std::unique_ptr<Svb> e_orig;
  std::unique_ptr<Svb> w_svb;
};

}  // namespace

struct GpuIcd::Impl {
  const Problem problem;  // by value: Problem is a non-owning view struct
  GpuIcdOptions opt;
  SvGrid grid;
  gsim::GpuSimulator sim;
  std::vector<SvbPlan> plans;
  std::vector<double> magnitude;

  Impl(const Problem& p, GpuIcdOptions o)
      : problem(p),
        opt(std::move(o)),
        grid(p.A.geometry().image_size, opt.tunables.sv),
        sim(opt.device) {
    problem.validate();
    opt.tunables.validate();
    MBIR_CHECK(opt.max_iterations >= 1);
    plans.reserve(std::size_t(grid.count()));
    for (int i = 0; i < grid.count(); ++i)
      plans.emplace_back(p.A.geometry(), grid.sv(i));
    // Start every SV "hot" so SVs a threshold-skipped batch left behind
    // still rank top on magnitude-driven iterations.
    magnitude.assign(std::size_t(grid.count()), 1e30);
  }

  int effectiveTbPerSv() const {
    return opt.flags.exploit_intra_sv ? opt.tunables.threadblocks_per_sv : 1;
  }

  gsim::KernelResources updateKernelResources() const {
    const KernelFootprint fp = updateKernelFootprint(opt.flags);
    gsim::KernelResources res;
    res.threads_per_block = opt.tunables.threads_per_block;
    res.regs_per_thread = fp.regs_per_thread;
    res.smem_per_block_bytes =
        fp.smem_bytes_per_thread * std::size_t(opt.tunables.threads_per_block);
    return res;
  }

  /// SVs whose SVBs are resident concurrently, for the L2 capacity model.
  int concurrentSvs(int batch_svs) const {
    const gsim::Occupancy occ =
        computeOccupancy(opt.device, updateKernelResources());
    const int resident_blocks = opt.device.num_smm * occ.blocks_per_smm;
    const int svs = std::max(1, resident_blocks / effectiveTbPerSv());
    return std::min(svs, batch_svs);
  }

  // ---- Kernel 1: SVB generation (Alg. 3 line 28) ----
  void launchSvbGen(std::vector<BatchSv>& batch, const Sinogram& e) {
    gsim::LaunchConfig cfg;
    cfg.name = "svb_gen";
    cfg.num_blocks = int(batch.size()) * 8;
    cfg.resources = {.threads_per_block = 256, .regs_per_thread = 24,
                     .smem_per_block_bytes = 0};
    sim.launch(cfg, [&](gsim::BlockCtx& ctx) {
      if (ctx.block_idx != 0) return;  // functional work done once
      for (BatchSv& b : batch) {
        const SvbLayout layout = opt.flags.transformed_layout
                                     ? SvbLayout::kPadded
                                     : SvbLayout::kPacked;
        b.e_svb = std::make_unique<Svb>(*b.plan, layout);
        b.e_svb->gather(e);
        b.e_orig = std::make_unique<Svb>(*b.plan, layout);
        std::memcpy(b.e_orig->raw().data(), b.e_svb->raw().data(),
                    b.e_svb->raw().size() * sizeof(float));
        b.w_svb = std::make_unique<Svb>(*b.plan, layout);
        b.w_svb->gather(problem.weights);
        // Accounting: per view row — read global e, write e_svb + e_orig,
        // read global w, write w_svb (5 streams).
        for (int v = 0; v < b.plan->numViews(); ++v) {
          const int w = b.plan->width(v);
          if (w == 0) continue;
          ctx.prof.svbAccess(w, 4, /*aligned=*/false, /*as_double=*/true);
          ctx.prof.svbAccess(w, 4, true, true);
          ctx.prof.svbAccess(w, 4, true, true);
          ctx.prof.svbAccess(w, 4, false, true);
          ctx.prof.svbAccess(w, 4, true, true);
        }
      }
    });
  }

  // ---- Kernel 2: the MBIR update kernel (Alg. 3, MBIR_GPU_Kernel) ----
  void launchUpdateKernel(std::vector<BatchSv>& batch, Image2D& x, Rng& rng,
                          GpuRunStats& stats) {
    const OptimFlags& fl = opt.flags;
    const int tb_per_sv = effectiveTbPerSv();

    gsim::LaunchConfig cfg;
    cfg.name = "mbir_update";
    cfg.num_blocks = int(batch.size()) * tb_per_sv;
    cfg.resources = updateKernelResources();

    // L2 working set: SVBs (e + w) of concurrently resident SVs plus a
    // slice of chunk descriptors.
    double svb_bytes_mean = 0.0;
    for (const BatchSv& b : batch)
      svb_bytes_mean += 2.0 * double(b.plan->paddedSize()) * 4.0;
    svb_bytes_mean /= double(batch.size());
    const double working_set =
        svb_bytes_mean * double(concurrentSvs(int(batch.size())));

    sim.launch(cfg, [&](gsim::BlockCtx& ctx) {
      if (ctx.block_idx != 0) return;
      ctx.prof.setAmatrixViaTexture(fl.amatrix_via_texture);
      ctx.prof.setL2WorkingSet(working_set);
      for (BatchSv& b : batch) {
        double mag = 0.0;
        if (fl.transformed_layout)
          processSvTransformed(b, x, rng, ctx.prof, stats, mag);
        else
          processSvNaive(b, x, rng, ctx.prof, stats, mag);
        magnitude[std::size_t(b.sv_id)] = mag;
      }
    });
  }

  /// One SV's voxel sweep against the padded SVB + A-chunks.
  void processSvTransformed(BatchSv& b, Image2D& x, Rng& rng,
                            gsim::KernelProfiler& prof, GpuRunStats& stats,
                            double& mag) {
    const SystemMatrix& A = problem.A;
    const GpuTunables& tn = opt.tunables;
    const OptimFlags& fl = opt.flags;
    const SuperVoxel& sv = grid.sv(b.sv_id);
    const SvbPlan& plan = *b.plan;
    const ChunkPlan& cp = *b.chunks;
    const int n = x.size();
    const int W = tn.chunk_width;
    const int warps = tn.threads_per_block / 32;
    const int abytes = cp.bytesPerElement();
    const int tb_per_sv = effectiveTbPerSv();
    const double conflict = intraSvConflictMultiplier(
        plan, A, std::min(tb_per_sv, sv.numVoxels()));
    const KernelFootprint fp = updateKernelFootprint(fl);

    std::vector<int> order(std::size_t(sv.numVoxels()));
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = int(k);
    rng.shuffle(order);

    std::vector<int> work_rows;  // per scheduled voxel, for imbalance model
    work_rows.reserve(order.size());

    for (int k : order) {
      const int row = sv.row0 + k / sv.numCols();
      const int col = sv.col0 + k % sv.numCols();
      ++stats.work.voxels_visited;
      // Dynamic voxel fetch from the SV's shared counter.
      prof.descRead(4);
      if (opt.zero_skip && allNeighborsZero(x, row, col)) {
        prof.descRead(9 * 4);  // x and neighbour loads
        work_rows.push_back(0);
        continue;
      }
      const std::size_t voxel = std::size_t(row) * std::size_t(n) + std::size_t(col);

      ThetaPair theta;
      int rows_total = 0;
      for (const ChunkDesc& d : cp.chunksOf(k)) {
        prof.descRead(sizeof(ChunkDesc));
        for (int i = 0; i < d.nrows; ++i) {
          const int v = d.view0 + i;
          const SystemMatrix::Run& r = A.run(voxel, v);
          // Warp-level traffic: e row + w row + A row. Rows whose width is
          // not a warp multiple leave lanes idle on the last pass — the
          // reason warp-multiple chunk widths win in Fig. 6.
          prof.svbAccess(W, 4, d.aligned, fl.read_svb_as_double);
          prof.svbAccess(W, 4, d.aligned, fl.read_svb_as_double);
          prof.amatrixAccess(W, abytes, d.aligned);
          const int idle_lanes = (W + 31) / 32 * 32 - W;
          if (idle_lanes > 0) {
            prof.svbIdle(idle_lanes, 4);
            prof.svbIdle(idle_lanes, 4);
          }
          // Spilled thread-locals live in shared memory (§4.2); without
          // the spill they stay in registers and cost no traffic.
          prof.smemTraffic(std::size_t(32) *
                           (fl.spill_registers_to_smem ? 8 : 0));
          prof.addFlops(3.0 * W);
          // Functional math over the true footprint (padding is zero).
          const int ws = int(r.first_channel) - plan.lo(v);
          const float* erow = b.e_svb->rowData(v);
          const float* wrow = b.w_svb->rowData(v);
          for (int kk = 0; kk < int(r.count); ++kk) {
            const int cc = ws + kk;
            const double a = double(cp.aValue(d, i, cc - d.base));
            const double wv = double(wrow[cc]);
            theta.theta1 += -wv * a * double(erow[cc]);
            theta.theta2 += wv * a * a;
          }
          stats.work.theta_elements += r.count;
          ++rows_total;
        }
      }
      // Idle lanes: rows not divisible by the block's warp count.
      const int pad_rows = (rows_total + warps - 1) / warps * warps - rows_total;
      if (pad_rows > 0) {
        prof.svbIdle(pad_rows * W, 4);
        prof.svbIdle(pad_rows * W, 4);
      }
      // Tree reduction of partial thetas through shared memory.
      prof.smemTraffic(std::size_t(tn.threads_per_block) * 8 * 2);
      prof.addFlops(double(tn.threads_per_block) * 2.0);

      const float delta = solveDelta(problem.prior, x, row, col, theta);
      prof.addFlops(60.0);  // prior solve, single thread
      x(row, col) += delta;

      // Error SVB update: e_svb -= A * delta, atomic per element.
      if (delta != 0.0f) {
        for (const ChunkDesc& d : cp.chunksOf(k)) {
          for (int i = 0; i < d.nrows; ++i) {
            const int v = d.view0 + i;
            const SystemMatrix::Run& r = A.run(voxel, v);
            prof.svbAccess(W, 4, d.aligned, false);  // atomics are 4-byte
            prof.amatrixAccess(W, abytes, d.aligned);
            // atomicAdd only where A is nonzero (zero lanes are masked).
            prof.svbAtomic(int(r.count), conflict);
            prof.addFlops(2.0 * W);
            const int ws = int(r.first_channel) - plan.lo(v);
            float* erow = b.e_svb->rowData(v);
            for (int kk = 0; kk < int(r.count); ++kk) {
              const int cc = ws + kk;
              erow[cc] -= float(cp.aValue(d, i, cc - d.base)) * delta;
            }
            stats.work.error_update_elements += r.count;
          }
        }
      }
      mag += std::abs(double(delta));
      ++stats.work.voxel_updates;
      work_rows.push_back(rows_total);
    }

    // First-touch of the A-chunk rows actually processed (streamed from
    // DRAM once; the theta and error passes re-read them from cache).
    std::size_t rows_processed = 0;
    for (int r : work_rows) rows_processed += std::size_t(r);
    prof.amatrixUnique(rows_processed * std::size_t(W) * std::size_t(abytes));

    if (!opt.flags.dynamic_voxel_distribution) {
      // Damped: per-SV static skew mostly averages out across the many
      // blocks resident per SMM; only the kernel tail pays the full
      // max/mean gap (calibrated near Table 3 row 4's 1.064x).
      const double imb = staticPartitionImbalance(work_rows, effectiveTbPerSv());
      prof.setImbalance(1.0 + (imb - 1.0) * 0.25);
    }
    (void)fp;
  }

  /// The naive (untransformed, Fig. 4a) kernel: packed SVB walked in
  /// sensor-channel-major order — uncoalesced, with per-view start lookups.
  void processSvNaive(BatchSv& b, Image2D& x, Rng& rng,
                      gsim::KernelProfiler& prof, GpuRunStats& stats,
                      double& mag) {
    const SystemMatrix& A = problem.A;
    const OptimFlags& fl = opt.flags;
    const SuperVoxel& sv = grid.sv(b.sv_id);
    const SvbPlan& plan = *b.plan;
    const int n = x.size();
    const int abytes = fl.quantize_amatrix ? 1 : 4;
    const double conflict = intraSvConflictMultiplier(
        plan, A, std::min(effectiveTbPerSv(), sv.numVoxels()));

    std::vector<int> order(std::size_t(sv.numVoxels()));
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = int(k);
    rng.shuffle(order);

    std::vector<int> work_rows;
    work_rows.reserve(order.size());

    for (int k : order) {
      const int row = sv.row0 + k / sv.numCols();
      const int col = sv.col0 + k % sv.numCols();
      ++stats.work.voxels_visited;
      prof.descRead(4);
      if (opt.zero_skip && allNeighborsZero(x, row, col)) {
        prof.descRead(9 * 4);
        work_rows.push_back(0);
        continue;
      }
      const std::size_t voxel = std::size_t(row) * std::size_t(n) + std::size_t(col);

      ThetaPair theta;
      int rows_total = 0;
      int elems_total = 0;
      for (int v = 0; v < A.numViews(); ++v) {
        const SystemMatrix::Run& r = A.run(voxel, v);
        if (r.count == 0) continue;
        elems_total += int(r.count);
        prof.descRead(8);  // per-view start-location lookup (§4.1)
        prof.svbScalarAccess(int(r.count) * 2, 4);  // e + w, uncoalesced
        prof.amatrixScalarAccess(int(r.count), abytes);
        prof.addFlops(3.0 * r.count);
        const auto aw = A.weights(voxel, v);
        const int ws = int(r.first_channel) - plan.lo(v);
        const float* erow = b.e_svb->rowData(v);
        const float* wrow = b.w_svb->rowData(v);
        for (int kk = 0; kk < int(r.count); ++kk) {
          const double a = double(aw[std::size_t(kk)]);
          theta.theta1 += -double(wrow[ws + kk]) * a * double(erow[ws + kk]);
          theta.theta2 += double(wrow[ws + kk]) * a * a;
        }
        stats.work.theta_elements += r.count;
        ++rows_total;
      }
      prof.smemTraffic(std::size_t(opt.tunables.threads_per_block) * 8 * 2);
      prof.addFlops(double(opt.tunables.threads_per_block) * 2.0);

      const float delta = solveDelta(problem.prior, x, row, col, theta);
      prof.addFlops(60.0);
      x(row, col) += delta;

      if (delta != 0.0f) {
        for (int v = 0; v < A.numViews(); ++v) {
          const SystemMatrix::Run& r = A.run(voxel, v);
          if (r.count == 0) continue;
          prof.svbScalarAccess(int(r.count), 4);
          prof.amatrixScalarAccess(int(r.count), abytes);
          prof.svbAtomic(int(r.count), conflict);
          prof.addFlops(2.0 * r.count);
          const auto aw = A.weights(voxel, v);
          float* erow = b.e_svb->rowData(v) + (int(r.first_channel) - plan.lo(v));
          for (int kk = 0; kk < int(r.count); ++kk)
            erow[kk] -= aw[std::size_t(kk)] * delta;
          stats.work.error_update_elements += r.count;
        }
      }
      mag += std::abs(double(delta));
      ++stats.work.voxel_updates;
      work_rows.push_back(rows_total);
      prof.amatrixUnique(std::size_t(elems_total) * std::size_t(abytes));
    }

    if (!opt.flags.dynamic_voxel_distribution) {
      const double imb = staticPartitionImbalance(work_rows, effectiveTbPerSv());
      prof.setImbalance(1.0 + (imb - 1.0) * 0.25);
    }
  }

  // ---- Kernel 3: global error writeback (Alg. 3 line 30) ----
  void launchWriteback(std::vector<BatchSv>& batch, Sinogram& e) {
    std::vector<const SvbPlan*> batch_plans;
    batch_plans.reserve(batch.size());
    for (const BatchSv& b : batch) batch_plans.push_back(b.plan);
    const double conflict =
        interSvConflictMultiplier(batch_plans, problem.A.numChannels());

    gsim::LaunchConfig cfg;
    cfg.name = "error_writeback";
    cfg.num_blocks = int(batch.size()) * 8;
    cfg.resources = {.threads_per_block = 256, .regs_per_thread = 24,
                     .smem_per_block_bytes = 0};
    sim.launch(cfg, [&](gsim::BlockCtx& ctx) {
      if (ctx.block_idx != 0) return;
      for (BatchSv& b : batch) {
        b.e_svb->applyDeltaTo(e, *b.e_orig);
        for (int v = 0; v < b.plan->numViews(); ++v) {
          const int w = b.plan->width(v);
          if (w == 0) continue;
          ctx.prof.svbAccess(w, 4, true, true);   // current SVB
          ctx.prof.svbAccess(w, 4, true, true);   // original SVB
          ctx.prof.globalAtomic(w, conflict);     // atomicAdd per element
          ctx.prof.addFlops(2.0 * w);
        }
      }
    });
  }

  void runBatch(const std::vector<int>& ids, Image2D& x, Sinogram& e, Rng& rng,
                GpuRunStats& stats) {
    std::vector<BatchSv> batch;
    batch.reserve(ids.size());
    for (int id : ids) {
      BatchSv b;
      b.sv_id = id;
      SvbPlan& plan = plans[std::size_t(id)];
      if (opt.flags.transformed_layout) {
        // A-chunks are static per SV in a real deployment (precomputed once
        // on the device); rebuilt here per batch purely to bound host
        // memory — no modeled GPU time is charged for it.
        b.chunks = std::make_unique<ChunkPlan>(
            problem.A, plan,
            ChunkPlanOptions{.chunk_width = opt.tunables.chunk_width,
                             .quantize = opt.flags.quantize_amatrix});
      }
      b.plan = &plan;
      batch.push_back(std::move(b));
    }
    launchSvbGen(batch, e);
    launchUpdateKernel(batch, x, rng, stats);
    launchWriteback(batch, e);
    stats.kernels_launched += 3;
    stats.work.svs_processed += ids.size();
    std::size_t gather = 0;
    for (const BatchSv& b : batch) gather += 3 * b.e_svb->raw().size();
    stats.work.svb_gather_elements += gather;
    for (const BatchSv& b : batch)
      stats.work.svb_writeback_elements += b.e_svb->raw().size();
  }
};

GpuIcd::GpuIcd(const Problem& problem, GpuIcdOptions options)
    : impl_(std::make_unique<Impl>(problem, std::move(options))) {}

GpuIcd::~GpuIcd() = default;

const SvGrid& GpuIcd::grid() const { return impl_->grid; }
gsim::GpuSimulator& GpuIcd::simulator() { return impl_->sim; }

GpuRunStats GpuIcd::run(Image2D& x, Sinogram& e,
                        const GpuIterationCallback& on_iteration) {
  Impl& im = *impl_;
  MBIR_CHECK(x.size() == im.problem.A.geometry().image_size);
  im.sim.resetTotals();

  Rng rng(im.opt.seed);
  GpuRunStats stats;
  const double voxels_per_equit = double(x.numVoxels());
  const GpuTunables& tn = im.opt.tunables;

  for (int iter = 1; iter <= im.opt.max_iterations; ++iter) {
    const std::vector<int> selected =
        selectSuperVoxels(iter, std::size_t(im.grid.count()), im.magnitude,
                          tn.sv_fraction, rng);
    const auto groups = im.grid.checkerboardGroups(selected);

    for (const auto& group : groups) {
      for (std::size_t i = 0; i < group.size(); i += std::size_t(tn.svs_per_batch)) {
        const std::size_t end =
            std::min(group.size(), i + std::size_t(tn.svs_per_batch));
        std::vector<int> ids(group.begin() + std::ptrdiff_t(i),
                             group.begin() + std::ptrdiff_t(end));
        // Alg. 3 lines 26-27: don't launch an under-filled kernel; the
        // skipped SVs' magnitudes keep them eligible for later iterations.
        // The threshold is capped at a quarter of the group's full-grid
        // population: identical to the paper's BATCH_SIZE/4 at paper scale
        // (289 SVs), while reduced grids — whose checkerboard groups are
        // intrinsically small — are not starved by an absolute cutoff.
        const int group_universe = im.grid.count() / 4;
        const int threshold =
            std::min(std::max(1, tn.svs_per_batch / 4),
                     std::max(1, group_universe / 4));
        if (im.opt.flags.batch_threshold && int(ids.size()) < threshold) {
          ++stats.batches_skipped_by_threshold;
          continue;
        }
        im.runBatch(ids, x, e, rng, stats);
      }
    }

    stats.iterations = iter;
    stats.equits = double(stats.work.voxel_updates) / voxels_per_equit;
    stats.modeled_seconds = im.sim.totalModeledSeconds();
    if (on_iteration &&
        !on_iteration(GpuIterationInfo{iter, stats.equits,
                                       stats.modeled_seconds, x})) {
      stats.stopped_by_callback = true;
      break;
    }
  }

  stats.modeled_seconds = im.sim.totalModeledSeconds();
  stats.kernel_stats = im.sim.totalStats();
  stats.per_kernel = im.sim.perKernel();
  return stats;
}

}  // namespace mbir
