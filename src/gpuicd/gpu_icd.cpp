#include "gpuicd/gpu_icd.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "gpuicd/conflicts.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "gsim/occupancy.h"
#include "icd/update_order.h"
#include "icd/voxel_update.h"
#include "prior/neighborhood.h"
#include "sv/chunks.h"
#include "sv/svb.h"

namespace mbir {

namespace {

/// Everything one batch needs while its three kernels run.
struct BatchSv {
  int sv_id;
  const SvbPlan* plan;
  const ChunkPlan* chunks = nullptr;        // null for the naive layout
  std::unique_ptr<ChunkPlan> owned_chunks;  // set only when caching is off
  std::unique_ptr<Svb> e_svb;
  std::unique_ptr<Svb> e_orig;
  std::unique_ptr<Svb> w_svb;
  // Race-check buffer ids of this SV's private SVBs, resolved host-side in
  // runBatch (kernel code must not mutate the detector's registry
  // concurrently). -1 when checking is off. SVB buffers are declared at
  // view-row granularity: element v = the SVB's row for view v.
  int rb_e = -1, rb_eorig = -1, rb_w = -1;
};

/// Grid scale of the SVB-generation and writeback kernels (blocks per SV).
constexpr int kAuxBlocksPerSv = 8;

}  // namespace

struct GpuIcd::Impl {
  const Problem problem;  // by value: Problem is a non-owning view struct
  GpuIcdOptions opt;
  SvGrid grid;
  gsim::GpuSimulator sim;
  std::vector<SvbPlan> plans;
  std::vector<double> magnitude;

  // Bounded LRU cache of per-SV chunk plans (front of lru = most recent).
  struct CachedChunks {
    std::unique_ptr<ChunkPlan> plan;
    std::list<int>::iterator lru_it;
  };
  std::list<int> chunk_lru;
  std::unordered_map<int, CachedChunks> chunk_cache;

  // gpuicd.* instruments (null = metrics off), resolved once at
  // construction so the batch path does no registry lookups.
  obs::Counter* m_cache_hits = nullptr;
  obs::Counter* m_cache_misses = nullptr;
  obs::Counter* m_batches = nullptr;
  obs::Counter* m_batches_skipped = nullptr;
  obs::Counter* m_iterations = nullptr;

  // Race-check buffer ids of the shared global buffers (-1 = checking off).
  // Image elements are flat row-major voxel indices; sinogram elements are
  // view * num_channels + channel.
  int rb_image = -1, rb_sino_e = -1, rb_sino_w = -1;

  // Slab window (multi-device sharding): when enabled, only rows in
  // [upd_row0, upd_row1) are updated and only SVs intersecting that window
  // are selectable. Disabled => the window covers the whole image and the
  // original selection path runs verbatim.
  bool slab_on = false;
  int upd_row0 = 0, upd_row1 = 0;
  std::vector<int> owned_svs;

  // Stepwise-run state (beginRun/stepIteration; run() drives the same).
  std::optional<Rng> run_rng;
  GpuRunStats run_stats;
  int run_iter = 0;

  Impl(const Problem& p, GpuIcdOptions o)
      : problem(p),
        opt(std::move(o)),
        grid(p.A.geometry().image_size, opt.tunables.sv),
        sim(opt.device) {
    problem.validate();
    opt.tunables.validate();
    MBIR_CHECK(opt.max_iterations >= 1);
    MBIR_CHECK(opt.chunk_cache_capacity >= 0);
    sim.setHostPool(opt.host_pool);
    sim.setRecorder(opt.recorder);
    sim.setTracePid(opt.trace_pid);
    sim.setSpanContext(opt.span);
    sim.setRaceCheck(opt.race_check);
    sim.setSimdMode(opt.simd);
    sim.setFaultHook(opt.fault_hook);
    if (sim.raceCheckOn()) {
      gsim::RaceDetector& rd = sim.raceDetector();
      rb_image = rd.bufferId("image");
      rb_sino_e = rd.bufferId("sino.e");
      rb_sino_w = rd.bufferId("sino.w");
    }
    if (opt.recorder && opt.recorder->metricsOn()) {
      obs::MetricsRegistry& m = opt.recorder->metrics();
      m_cache_hits = &m.counter("gpuicd.chunk_cache.hits");
      m_cache_misses = &m.counter("gpuicd.chunk_cache.misses");
      m_batches = &m.counter("gpuicd.batch.count");
      m_batches_skipped = &m.counter("gpuicd.batch.skipped_by_threshold");
      m_iterations = &m.counter("gpuicd.iteration.count");
    }
    plans.reserve(std::size_t(grid.count()));
    for (int i = 0; i < grid.count(); ++i)
      plans.emplace_back(p.A.geometry(), grid.sv(i));
    // Start every SV "hot" so SVs a threshold-skipped batch left behind
    // still rank top on magnitude-driven iterations.
    magnitude.assign(std::size_t(grid.count()), 1e30);

    const int n = p.A.geometry().image_size;
    slab_on = opt.slab.enabled();
    if (slab_on) {
      MBIR_CHECK(opt.slab.row0 >= 0 && opt.slab.row1 <= n);
      MBIR_CHECK(opt.slab.halo >= 0);
      // halo == 0 means no neighbour rows are ever refreshed, so updates
      // must keep one row clear of interior boundaries (a voxel update
      // reads a 1-voxel ring); halo >= 1 refreshes the ring each exchange
      // and every owned row is updatable.
      const int shrink = std::max(0, 1 - opt.slab.halo);
      upd_row0 = opt.slab.row0 == 0 ? 0 : opt.slab.row0 + shrink;
      upd_row1 = opt.slab.row1 == n ? n : opt.slab.row1 - shrink;
      upd_row1 = std::max(upd_row0, upd_row1);
      for (int i = 0; i < grid.count(); ++i) {
        const SuperVoxel& sv = grid.sv(i);
        if (sv.row1 > upd_row0 && sv.row0 < upd_row1) owned_svs.push_back(i);
      }
    } else {
      upd_row0 = 0;
      upd_row1 = n;
    }
  }

  bool rowUpdatable(int row) const {
    return !slab_on || (row >= upd_row0 && row < upd_row1);
  }

  int effectiveTbPerSv() const {
    return opt.flags.exploit_intra_sv ? opt.tunables.threadblocks_per_sv : 1;
  }

  gsim::KernelResources updateKernelResources() const {
    const KernelFootprint fp = updateKernelFootprint(opt.flags);
    gsim::KernelResources res;
    res.threads_per_block = opt.tunables.threads_per_block;
    res.regs_per_thread = fp.regs_per_thread;
    res.smem_per_block_bytes =
        fp.smem_bytes_per_thread * std::size_t(opt.tunables.threads_per_block);
    return res;
  }

  /// SVs whose SVBs are resident concurrently, for the L2 capacity model.
  int concurrentSvs(int batch_svs) const {
    const gsim::Occupancy occ =
        computeOccupancy(opt.device, updateKernelResources());
    const int resident_blocks = opt.device.num_smm * occ.blocks_per_smm;
    const int svs = std::max(1, resident_blocks / effectiveTbPerSv());
    return std::min(svs, batch_svs);
  }

  // ---- Kernel 1: SVB generation (Alg. 3 line 28) ----
  void launchSvbGen(std::vector<BatchSv>& batch, const Sinogram& e) {
    gsim::LaunchConfig cfg;
    cfg.name = "svb_gen";
    cfg.num_blocks = int(batch.size()) * kAuxBlocksPerSv;
    cfg.resources = {.threads_per_block = 256, .regs_per_thread = 24,
                     .smem_per_block_bytes = 0};
    sim.launch(cfg, [&](gsim::BlockCtx& ctx) {
      // Block group [sv * kAuxBlocksPerSv, ...) serves batch SV `sv`; the
      // group's first block owns the allocation + gather (a per-SV private
      // buffer, so groups never conflict), and the group stripes the view
      // rows for accounting.
      BatchSv& b = batch[std::size_t(ctx.block_idx / kAuxBlocksPerSv)];
      const int sub = ctx.block_idx % kAuxBlocksPerSv;
      if (sub == 0) {
        const SvbLayout layout = opt.flags.transformed_layout
                                     ? SvbLayout::kPadded
                                     : SvbLayout::kPacked;
        b.e_svb = std::make_unique<Svb>(*b.plan, layout);
        b.e_svb->gather(e);
        b.e_orig = std::make_unique<Svb>(*b.plan, layout);
        std::memcpy(b.e_orig->raw().data(), b.e_svb->raw().data(),
                    b.e_svb->raw().size() * sizeof(float));
        b.w_svb = std::make_unique<Svb>(*b.plan, layout);
        b.w_svb->gather(problem.weights);
      }
      // Accounting: per view row — read global e, write e_svb + e_orig,
      // read global w, write w_svb (5 streams). Race declarations mirror
      // the device kernel's striping: block `sub` owns view rows
      // v ≡ sub (mod kAuxBlocksPerSv), so same-SV blocks write disjoint
      // SVB rows and only *read* the shared global sinogram.
      const int channels = problem.A.numChannels();
      for (int v = sub; v < b.plan->numViews(); v += kAuxBlocksPerSv) {
        const int w = b.plan->width(v);
        if (w == 0) continue;
        ctx.prof.svbAccess(w, 4, /*aligned=*/false, /*as_double=*/true);
        ctx.prof.svbAccess(w, 4, true, true);
        ctx.prof.svbAccess(w, 4, true, true);
        ctx.prof.svbAccess(w, 4, false, true);
        ctx.prof.svbAccess(w, 4, true, true);
        if (ctx.prof.raceCheckOn()) {
          const std::int64_t glo =
              std::int64_t(v) * channels + b.plan->lo(v);
          ctx.prof.raceRead(rb_sino_e, glo, glo + w);
          ctx.prof.raceRead(rb_sino_w, glo, glo + w);
          ctx.prof.raceWrite(b.rb_e, v, v + 1);
          ctx.prof.raceWrite(b.rb_eorig, v, v + 1);
          ctx.prof.raceWrite(b.rb_w, v, v + 1);
        }
      }
    });
  }

  // ---- Kernel 2: the MBIR update kernel (Alg. 3, MBIR_GPU_Kernel) ----
  void launchUpdateKernel(std::vector<BatchSv>& batch, int iter, Image2D& x,
                          GpuRunStats& stats) {
    const OptimFlags& fl = opt.flags;
    const int tb_per_sv = effectiveTbPerSv();

    gsim::LaunchConfig cfg;
    cfg.name = "mbir_update";
    cfg.num_blocks = int(batch.size()) * tb_per_sv;
    cfg.resources = updateKernelResources();

    // L2 working set: SVBs (e + w) of concurrently resident SVs plus a
    // slice of chunk descriptors.
    double svb_bytes_mean = 0.0;
    for (const BatchSv& b : batch)
      svb_bytes_mean += 2.0 * double(b.plan->paddedSize()) * 4.0;
    svb_bytes_mean /= double(batch.size());
    const double working_set =
        svb_bytes_mean * double(concurrentSvs(int(batch.size())));

    // Per-SV outputs, merged in batch order after the launch so the totals
    // do not depend on block completion order.
    std::vector<WorkCounters> sv_work(batch.size());
    std::vector<double> sv_mag(batch.size(), 0.0);

    sim.launch(cfg, [&](gsim::BlockCtx& ctx) {
      // Block group [sv * tb_per_sv, ...) serves batch SV `sv` (Alg. 3's
      // consecutive-threadblock assignment). The group's first block
      // carries the SV's functional sweep; the other blocks' effect is
      // modeled through the intra-SV conflict multiplier and the imbalance
      // factor. Concurrent SVs belong to one checkerboard group and are
      // therefore non-adjacent: a voxel update writes only its own SV and
      // reads at most a 1-voxel ring around it, which can only reach into
      // *adjacent* SVs — never into another SV of the same group — so
      // concurrent sweeps share no mutable image state.
      if (ctx.block_idx % tb_per_sv != 0) return;
      const std::size_t bi = std::size_t(ctx.block_idx / tb_per_sv);
      BatchSv& b = batch[bi];
      ctx.prof.setAmatrixViaTexture(fl.amatrix_via_texture);
      ctx.prof.setL2WorkingSet(working_set);
      if (ctx.prof.raceCheckOn()) {
        // The checkerboard claim under check: an SV sweep writes only its
        // own rect and reads at most a 1-voxel ring around it, so blocks
        // of one launch (= one checkerboard group) must not overlap. The
        // SV's private SVBs see one declaring block per launch (the
        // group's other blocks share them through atomics the functional
        // sweep also models), so they cannot conflict here by design.
        const SuperVoxel& sv = grid.sv(b.sv_id);
        const int n = x.size();
        // Slab-clipped write rect: rows outside the updatable window are
        // skipped by the sweep, so they are read-only halo state here.
        // With the slab disabled the clip is the SV rect, unchanged.
        const int wr0 = std::max(sv.row0, upd_row0);
        const int wr1 = std::min(sv.row1, upd_row1);
        for (int r = wr0; r < wr1; ++r)
          ctx.prof.raceWrite(rb_image, std::int64_t(r) * n + sv.col0,
                             std::int64_t(r) * n + sv.col1);
        const int rr0 = std::max(0, wr0 - 1);
        const int rr1 = std::min(n, wr1 + 1);
        const int rc0 = std::max(0, sv.col0 - 1);
        const int rc1 = std::min(n, sv.col1 + 1);
        for (int r = rr0; r < rr1; ++r)
          ctx.prof.raceRead(rb_image, std::int64_t(r) * n + rc0,
                            std::int64_t(r) * n + rc1);
        ctx.prof.raceAtomic(b.rb_e, 0, b.plan->numViews());
        ctx.prof.raceRead(b.rb_w, 0, b.plan->numViews());
      }
      // Per-SV RNG stream: reproducible for any block schedule, unlike a
      // shared generator threaded through the batch.
      Rng sv_rng = Rng::forStream(opt.seed, std::uint64_t(iter),
                                  std::uint64_t(b.sv_id));
      if (fl.transformed_layout)
        processSvTransformed(b, x, sv_rng, ctx.prof, ctx.warp.ops,
                             sv_work[bi], sv_mag[bi]);
      else
        processSvNaive(b, x, sv_rng, ctx.prof, ctx.warp.ops, sv_work[bi],
                       sv_mag[bi]);
    });

    for (std::size_t i = 0; i < batch.size(); ++i) {
      stats.work += sv_work[i];
      magnitude[std::size_t(batch[i].sv_id)] = sv_mag[i];
    }
  }

  /// One SV's voxel sweep against the padded SVB + A-chunks. Runs inside
  /// one simulated block; everything it mutates (x inside the SV, the SV's
  /// SVBs, `work`, `mag`) is private to that block during the launch.
  /// Functional row math executes as lane groups over the band-covering
  /// slice of each chunk window (the zero padding cannot perturb the lane
  /// accumulators — see core/simd.h); profiler and race declarations are
  /// untouched by the path choice.
  void processSvTransformed(BatchSv& b, Image2D& x, Rng& rng,
                            gsim::KernelProfiler& prof,
                            const gsim::SimdOps& ops, WorkCounters& work,
                            double& mag) {
    const SystemMatrix& A = problem.A;
    const GpuTunables& tn = opt.tunables;
    const OptimFlags& fl = opt.flags;
    const SuperVoxel& sv = grid.sv(b.sv_id);
    const SvbPlan& plan = *b.plan;
    const ChunkPlan& cp = *b.chunks;
    const int n = x.size();
    const int W = tn.chunk_width;
    const int warps = tn.threads_per_block / 32;
    const int abytes = cp.bytesPerElement();
    const int tb_per_sv = effectiveTbPerSv();
    const double conflict = intraSvConflictMultiplier(
        plan, A, std::min(tb_per_sv, sv.numVoxels()));
    const KernelFootprint fp = updateKernelFootprint(fl);

    std::vector<int> order(std::size_t(sv.numVoxels()));
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = int(k);
    rng.shuffle(order);

    std::vector<int> work_rows;  // per scheduled voxel, for imbalance model
    work_rows.reserve(order.size());

    for (int k : order) {
      const int row = sv.row0 + k / sv.numCols();
      const int col = sv.col0 + k % sv.numCols();
      // Slab sharding: rows outside the updatable window belong to a peer
      // slab (or are frozen halo-0 boundary rows) and are never touched —
      // not visited, not profiled, no RNG consumed beyond the shuffle.
      if (!rowUpdatable(row)) continue;
      ++work.voxels_visited;
      // Dynamic voxel fetch from the SV's shared counter.
      prof.descRead(4);
      if (opt.zero_skip && allNeighborsZero(x, row, col)) {
        prof.descRead(9 * 4);  // x and neighbour loads
        work_rows.push_back(0);
        continue;
      }
      const std::size_t voxel = std::size_t(row) * std::size_t(n) + std::size_t(col);

      const bool quant = cp.quantized();
      const float scale = cp.scaleOf(k);
      gsim::ThetaLanes lanes;
      lanes.reset();
      int rows_total = 0;
      for (const ChunkDesc& d : cp.chunksOf(k)) {
        prof.descRead(sizeof(ChunkDesc));
        const std::uint8_t* qrows = quant ? cp.dataQuant(d).data() : nullptr;
        const float* frows = quant ? nullptr : cp.dataFloat(d).data();
        for (int i = 0; i < d.nrows; ++i) {
          const int v = d.view0 + i;
          const SystemMatrix::Run& r = A.run(voxel, v);
          // Warp-level traffic: e row + w row + A row. Rows whose width is
          // not a warp multiple leave lanes idle on the last pass — the
          // reason warp-multiple chunk widths win in Fig. 6.
          prof.svbAccess(W, 4, d.aligned, fl.read_svb_as_double);
          prof.svbAccess(W, 4, d.aligned, fl.read_svb_as_double);
          prof.amatrixAccess(W, abytes, d.aligned);
          const int idle_lanes = (W + 31) / 32 * 32 - W;
          if (idle_lanes > 0) {
            prof.svbIdle(idle_lanes, 4);
            prof.svbIdle(idle_lanes, 4);
          }
          // Spilled thread-locals live in shared memory (§4.2); without
          // the spill they stay in registers and cost no traffic.
          prof.smemTraffic(std::size_t(32) *
                           (fl.spill_registers_to_smem ? 8 : 0));
          prof.addFlops(3.0 * W);
          // Functional math as lane groups over the groups covering the
          // row's true band inside the chunk window (window elements
          // outside the band hold exact +0.0 A values, so the skipped
          // groups could never perturb a lane accumulator — core/simd.h).
          const float* erow = b.e_svb->rowData(v) + d.base;
          const float* wrow = b.w_svb->rowData(v) + d.base;
          const int i0 = int(r.first_channel) - plan.lo(v) - d.base;
          const int i1 = i0 + int(r.count);
          if (quant)
            ops.theta_win_q(qrows + std::size_t(i) * std::size_t(W), scale,
                            erow, wrow, i0, i1, W, lanes);
          else
            ops.theta_win_f(frows + std::size_t(i) * std::size_t(W), erow,
                            wrow, i0, i1, W, lanes);
          work.theta_elements += r.count;
          ++rows_total;
        }
      }
      ThetaPair theta;
      theta.theta1 = gsim::reduceLanes(lanes.t1);
      theta.theta2 = gsim::reduceLanes(lanes.t2);
      // Idle lanes: rows not divisible by the block's warp count.
      const int pad_rows = (rows_total + warps - 1) / warps * warps - rows_total;
      if (pad_rows > 0) {
        prof.svbIdle(pad_rows * W, 4);
        prof.svbIdle(pad_rows * W, 4);
      }
      // Tree reduction of partial thetas through shared memory.
      prof.smemTraffic(std::size_t(tn.threads_per_block) * 8 * 2);
      prof.addFlops(double(tn.threads_per_block) * 2.0);

      const float delta = solveDelta(problem.prior, x, row, col, theta);
      prof.addFlops(60.0);  // prior solve, single thread
      x(row, col) += delta;

      // Error SVB update: e_svb -= A * delta, atomic per element. Runs
      // over the band-covering groups like the theta pass; zero-padded A
      // columns inside those groups subtract an exact ±0.0, which
      // preserves every error bit.
      if (delta != 0.0f) {
        for (const ChunkDesc& d : cp.chunksOf(k)) {
          const std::uint8_t* qrows = quant ? cp.dataQuant(d).data() : nullptr;
          const float* frows = quant ? nullptr : cp.dataFloat(d).data();
          for (int i = 0; i < d.nrows; ++i) {
            const int v = d.view0 + i;
            const SystemMatrix::Run& r = A.run(voxel, v);
            prof.svbAccess(W, 4, d.aligned, false);  // atomics are 4-byte
            prof.amatrixAccess(W, abytes, d.aligned);
            // atomicAdd only where A is nonzero (zero lanes are masked).
            prof.svbAtomic(int(r.count), conflict);
            prof.addFlops(2.0 * W);
            float* erow = b.e_svb->rowData(v) + d.base;
            const int i0 = int(r.first_channel) - plan.lo(v) - d.base;
            const int i1 = i0 + int(r.count);
            if (quant)
              ops.err_win_q(qrows + std::size_t(i) * std::size_t(W), scale,
                            delta, erow, i0, i1, W);
            else
              ops.err_win_f(frows + std::size_t(i) * std::size_t(W), delta,
                            erow, i0, i1, W);
            work.error_update_elements += r.count;
          }
        }
      }
      mag += std::abs(double(delta));
      ++work.voxel_updates;
      work_rows.push_back(rows_total);
    }

    // First-touch of the A-chunk rows actually processed (streamed from
    // DRAM once; the theta and error passes re-read them from cache).
    std::size_t rows_processed = 0;
    for (int r : work_rows) rows_processed += std::size_t(r);
    prof.amatrixUnique(rows_processed * std::size_t(W) * std::size_t(abytes));

    if (!opt.flags.dynamic_voxel_distribution) {
      // Damped: per-SV static skew mostly averages out across the many
      // blocks resident per SMM; only the kernel tail pays the full
      // max/mean gap (calibrated near Table 3 row 4's 1.064x).
      const double imb = staticPartitionImbalance(work_rows, effectiveTbPerSv());
      prof.setImbalance(1.0 + (imb - 1.0) * 0.25);
    }
    (void)fp;
  }

  /// The naive (untransformed, Fig. 4a) kernel: packed SVB walked in
  /// sensor-channel-major order — uncoalesced, with per-view start lookups.
  void processSvNaive(BatchSv& b, Image2D& x, Rng& rng,
                      gsim::KernelProfiler& prof, const gsim::SimdOps& ops,
                      WorkCounters& work, double& mag) {
    const SystemMatrix& A = problem.A;
    const OptimFlags& fl = opt.flags;
    const SuperVoxel& sv = grid.sv(b.sv_id);
    const SvbPlan& plan = *b.plan;
    const int n = x.size();
    const int abytes = fl.quantize_amatrix ? 1 : 4;
    const double conflict = intraSvConflictMultiplier(
        plan, A, std::min(effectiveTbPerSv(), sv.numVoxels()));

    std::vector<int> order(std::size_t(sv.numVoxels()));
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = int(k);
    rng.shuffle(order);

    std::vector<int> work_rows;
    work_rows.reserve(order.size());

    for (int k : order) {
      const int row = sv.row0 + k / sv.numCols();
      const int col = sv.col0 + k % sv.numCols();
      if (!rowUpdatable(row)) continue;
      ++work.voxels_visited;
      prof.descRead(4);
      if (opt.zero_skip && allNeighborsZero(x, row, col)) {
        prof.descRead(9 * 4);
        work_rows.push_back(0);
        continue;
      }
      const std::size_t voxel = std::size_t(row) * std::size_t(n) + std::size_t(col);

      gsim::ThetaLanes lanes;
      lanes.reset();
      int rows_total = 0;
      int elems_total = 0;
      for (int v = 0; v < A.numViews(); ++v) {
        const SystemMatrix::Run& r = A.run(voxel, v);
        if (r.count == 0) continue;
        elems_total += int(r.count);
        prof.descRead(8);  // per-view start-location lookup (§4.1)
        prof.svbScalarAccess(int(r.count) * 2, 4);  // e + w, uncoalesced
        prof.amatrixScalarAccess(int(r.count), abytes);
        prof.addFlops(3.0 * r.count);
        const auto aw = A.weights(voxel, v);
        const int ws = int(r.first_channel) - plan.lo(v);
        ops.theta_row_f(aw.data(), b.e_svb->rowData(v) + ws,
                        b.w_svb->rowData(v) + ws, int(r.count), lanes);
        work.theta_elements += r.count;
        ++rows_total;
      }
      ThetaPair theta;
      theta.theta1 = gsim::reduceLanes(lanes.t1);
      theta.theta2 = gsim::reduceLanes(lanes.t2);
      prof.smemTraffic(std::size_t(opt.tunables.threads_per_block) * 8 * 2);
      prof.addFlops(double(opt.tunables.threads_per_block) * 2.0);

      const float delta = solveDelta(problem.prior, x, row, col, theta);
      prof.addFlops(60.0);
      x(row, col) += delta;

      if (delta != 0.0f) {
        for (int v = 0; v < A.numViews(); ++v) {
          const SystemMatrix::Run& r = A.run(voxel, v);
          if (r.count == 0) continue;
          prof.svbScalarAccess(int(r.count), 4);
          prof.amatrixScalarAccess(int(r.count), abytes);
          prof.svbAtomic(int(r.count), conflict);
          prof.addFlops(2.0 * r.count);
          const auto aw = A.weights(voxel, v);
          float* erow = b.e_svb->rowData(v) + (int(r.first_channel) - plan.lo(v));
          ops.err_row_f(aw.data(), delta, erow, int(r.count));
          work.error_update_elements += r.count;
        }
      }
      mag += std::abs(double(delta));
      ++work.voxel_updates;
      work_rows.push_back(rows_total);
      prof.amatrixUnique(std::size_t(elems_total) * std::size_t(abytes));
    }

    if (!opt.flags.dynamic_voxel_distribution) {
      const double imb = staticPartitionImbalance(work_rows, effectiveTbPerSv());
      prof.setImbalance(1.0 + (imb - 1.0) * 0.25);
    }
  }

  // ---- Kernel 3: global error writeback (Alg. 3 line 30) ----
  void launchWriteback(std::vector<BatchSv>& batch, Sinogram& e) {
    std::vector<const SvbPlan*> batch_plans;
    batch_plans.reserve(batch.size());
    for (const BatchSv& b : batch) batch_plans.push_back(b.plan);
    const double conflict =
        interSvConflictMultiplier(batch_plans, problem.A.numChannels());

    gsim::LaunchConfig cfg;
    cfg.name = "error_writeback";
    cfg.num_blocks = int(batch.size()) * kAuxBlocksPerSv;
    cfg.resources = {.threads_per_block = 256, .regs_per_thread = 24,
                     .smem_per_block_bytes = 0};
    const int stripes = cfg.num_blocks;
    sim.launch(cfg, [&](gsim::BlockCtx& ctx) {
      // SVBs of different SVs overlap in the global sinogram (the reason
      // the real kernel uses atomicAdd), so the functional writeback is
      // striped by view: block s owns views v ≡ s (mod grid) and applies
      // every batch SVB's delta to them in batch order. Each sinogram
      // element has exactly one writer and a fixed accumulation order —
      // concurrency-safe and bit-identical to the serial writeback.
      const int channels = problem.A.numChannels();
      for (BatchSv& b : batch) {
        b.e_svb->applyDeltaTo(e, *b.e_orig, ctx.block_idx, stripes,
                              &ctx.warp.ops);
        for (int v = ctx.block_idx; v < b.plan->numViews(); v += stripes) {
          const int w = b.plan->width(v);
          if (w == 0) continue;
          ctx.prof.svbAccess(w, 4, true, true);   // current SVB
          ctx.prof.svbAccess(w, 4, true, true);   // original SVB
          ctx.prof.globalAtomic(w, conflict);     // atomicAdd per element
          ctx.prof.addFlops(2.0 * w);
          if (ctx.prof.raceCheckOn()) {
            // Declared as plain writes, not atomics: the functional
            // writeback relies on the view striping making every sinogram
            // element single-writer (a stronger invariant than the real
            // kernel's atomicAdd), and that is exactly what the detector
            // verifies here.
            ctx.prof.raceRead(b.rb_e, v, v + 1);
            ctx.prof.raceRead(b.rb_eorig, v, v + 1);
            const std::int64_t glo =
                std::int64_t(v) * channels + b.plan->lo(v);
            ctx.prof.raceWrite(rb_sino_e, glo, glo + w);
          }
        }
      }
    });
  }

  std::unique_ptr<ChunkPlan> buildChunkPlan(int sv_id) {
    return std::make_unique<ChunkPlan>(
        problem.A, plans[std::size_t(sv_id)],
        ChunkPlanOptions{.chunk_width = opt.tunables.chunk_width,
                         .quantize = opt.flags.quantize_amatrix});
  }

  /// Chunk plan for one SV through the bounded LRU cache. A-chunks are
  /// static per SV (they depend only on A, the band, and the tunables), so
  /// steady-state iterations hit the cache and skip chunk construction.
  /// The effective capacity never drops below the live batch size so no
  /// plan borrowed by the in-flight batch can be evicted.
  const ChunkPlan* cachedChunkPlan(int sv_id, int batch_size,
                                   GpuRunStats& stats) {
    auto it = chunk_cache.find(sv_id);
    if (it != chunk_cache.end()) {
      ++stats.chunk_cache_hits;
      if (m_cache_hits) m_cache_hits->add();
      chunk_lru.splice(chunk_lru.begin(), chunk_lru, it->second.lru_it);
      return it->second.plan.get();
    }
    ++stats.chunk_cache_misses;
    if (m_cache_misses) m_cache_misses->add();
    chunk_lru.push_front(sv_id);
    auto [pos, inserted] = chunk_cache.emplace(
        sv_id, CachedChunks{buildChunkPlan(sv_id), chunk_lru.begin()});
    MBIR_CHECK(inserted);
    const std::size_t capacity =
        std::size_t(std::max(opt.chunk_cache_capacity, batch_size));
    while (chunk_cache.size() > capacity) {
      chunk_cache.erase(chunk_lru.back());
      chunk_lru.pop_back();
    }
    return pos->second.plan.get();
  }

  void runBatch(const std::vector<int>& ids, int iter, Image2D& x, Sinogram& e,
                GpuRunStats& stats) {
    std::vector<BatchSv> batch;
    batch.reserve(ids.size());
    for (int id : ids) {
      BatchSv b;
      b.sv_id = id;
      SvbPlan& plan = plans[std::size_t(id)];
      if (opt.flags.transformed_layout) {
        // Host-side preparation; no modeled GPU time is charged (a real
        // deployment precomputes A-chunks once on the device).
        if (opt.chunk_cache_capacity > 0) {
          b.chunks = cachedChunkPlan(id, int(ids.size()), stats);
        } else {
          ++stats.chunk_cache_misses;
          if (m_cache_misses) m_cache_misses->add();
          b.owned_chunks = buildChunkPlan(id);
          b.chunks = b.owned_chunks.get();
        }
      }
      if (sim.raceCheckOn()) {
        // Host-side: kernel blocks run concurrently and must not mutate
        // the detector's buffer registry.
        gsim::RaceDetector& rd = sim.raceDetector();
        const std::string tag = std::to_string(id);
        b.rb_e = rd.bufferId("svb.e/" + tag);
        b.rb_eorig = rd.bufferId("svb.eorig/" + tag);
        b.rb_w = rd.bufferId("svb.w/" + tag);
      }
      b.plan = &plan;
      batch.push_back(std::move(b));
    }
    launchSvbGen(batch, e);
    launchUpdateKernel(batch, iter, x, stats);
    launchWriteback(batch, e);
    if (m_batches) m_batches->add();
    stats.kernels_launched += 3;
    stats.work.svs_processed += ids.size();
    std::size_t gather = 0;
    for (const BatchSv& b : batch) gather += 3 * b.e_svb->raw().size();
    stats.work.svb_gather_elements += gather;
    for (const BatchSv& b : batch)
      stats.work.svb_writeback_elements += b.e_svb->raw().size();
  }
};

GpuIcd::GpuIcd(const Problem& problem, GpuIcdOptions options)
    : impl_(std::make_unique<Impl>(problem, std::move(options))) {}

GpuIcd::~GpuIcd() = default;

const SvGrid& GpuIcd::grid() const { return impl_->grid; }
gsim::GpuSimulator& GpuIcd::simulator() { return impl_->sim; }

void GpuIcd::beginRun(Image2D& x, Sinogram& e) {
  Impl& im = *impl_;
  MBIR_CHECK(x.size() == im.problem.A.geometry().image_size);
  (void)e;
  im.sim.resetTotals();
  im.run_rng.emplace(im.opt.seed);
  im.run_stats = GpuRunStats{};
  im.run_iter = 0;
}

bool GpuIcd::stepIteration(Image2D& x, Sinogram& e) {
  Impl& im = *impl_;
  MBIR_CHECK(im.run_rng.has_value());  // beginRun first
  if (im.run_iter >= im.opt.max_iterations) return false;
  const int iter = ++im.run_iter;
  GpuRunStats& stats = im.run_stats;
  Rng& rng = *im.run_rng;
  const double voxels_per_equit = double(x.numVoxels());
  const GpuTunables& tn = im.opt.tunables;

  obs::Recorder* rec = im.opt.recorder;
  const bool tracing = rec && rec->traceOn();

  const double iter_host_us = tracing ? rec->trace().nowHostUs() : 0.0;
  const double iter_modeled_s = im.sim.totalModeledSeconds();
  const std::size_t iter_updates0 = stats.work.voxel_updates;

  std::vector<int> selected;
  if (im.slab_on) {
    // Slab sharding: selection runs over the owned SVs through a dense
    // local index space, so the magnitude ranking and the random pick see
    // the same shape they would on a dedicated grid. A single-slab window
    // covering the whole image maps by identity, which is what makes an
    // S=1 shard plan bit-identical to the unsharded engine.
    std::vector<double> local_mag(im.owned_svs.size());
    for (std::size_t i = 0; i < im.owned_svs.size(); ++i)
      local_mag[i] = im.magnitude[std::size_t(im.owned_svs[i])];
    const std::vector<int> local = selectSuperVoxels(
        iter, im.owned_svs.size(), local_mag, tn.sv_fraction, rng);
    selected.reserve(local.size());
    for (int li : local) selected.push_back(im.owned_svs[std::size_t(li)]);
  } else {
    selected = selectSuperVoxels(iter, std::size_t(im.grid.count()),
                                 im.magnitude, tn.sv_fraction, rng);
  }
  const auto groups = im.grid.checkerboardGroups(selected);

  for (const auto& group : groups) {
    // Cross-check (race checking only): the analytical checkerboard
    // schedule and the race detector must agree on this group's
    // conflict count before any of its batches launch. Concurrency
    // within a launch never exceeds one batch, so a group clean as a
    // whole is clean for every batch split of it.
    if (im.sim.raceCheckOn() && group.size() > 1)
      scheduleImageConflicts(im.grid, group, &im.sim.raceDetector());
    for (std::size_t i = 0; i < group.size(); i += std::size_t(tn.svs_per_batch)) {
      const std::size_t end =
          std::min(group.size(), i + std::size_t(tn.svs_per_batch));
      std::vector<int> ids(group.begin() + std::ptrdiff_t(i),
                           group.begin() + std::ptrdiff_t(end));
      // Alg. 3 lines 26-27: don't launch an under-filled kernel; the
      // skipped SVs' magnitudes keep them eligible for later iterations.
      // The threshold is capped at a quarter of the group's full-grid
      // population: identical to the paper's BATCH_SIZE/4 at paper scale
      // (289 SVs), while reduced grids — whose checkerboard groups are
      // intrinsically small — are not starved by an absolute cutoff.
      const int group_universe = im.grid.count() / 4;
      const int threshold =
          std::min(std::max(1, tn.svs_per_batch / 4),
                   std::max(1, group_universe / 4));
      if (im.opt.flags.batch_threshold && int(ids.size()) < threshold) {
        ++stats.batches_skipped_by_threshold;
        if (im.m_batches_skipped) im.m_batches_skipped->add();
        continue;
      }
      im.runBatch(ids, iter, x, e, stats);
    }
  }

  stats.iterations = iter;
  stats.equits = double(stats.work.voxel_updates) / voxels_per_equit;
  stats.modeled_seconds = im.sim.totalModeledSeconds();
  if (im.m_iterations) im.m_iterations->add();
  if (tracing) {
    const std::vector<std::pair<std::string, double>> args = {
        {"iteration", double(iter)},
        {"selected_svs", double(selected.size())},
        {"voxel_updates", double(stats.work.voxel_updates - iter_updates0)},
        {"equits", stats.equits}};
    obs::TraceEvent host_ev;
    host_ev.name = "gpuicd.iteration";
    host_ev.cat = "gpuicd";
    host_ev.clock = obs::Clock::kHost;
    host_ev.ts_us = iter_host_us;
    host_ev.dur_us = rec->trace().nowHostUs() - iter_host_us;
    host_ev.num_args = args;
    obs::TraceEvent dev_ev;
    dev_ev.name = "gpuicd.iteration";
    dev_ev.cat = "gpuicd";
    dev_ev.clock = obs::Clock::kModeled;
    dev_ev.pid = im.opt.trace_pid;
    dev_ev.ts_us = iter_modeled_s * 1e6;
    dev_ev.dur_us = (stats.modeled_seconds - iter_modeled_s) * 1e6;
    dev_ev.num_args = args;
    if (im.opt.span) {
      host_ev.tid = im.opt.span->host_tid;
      obs::tagSpan(host_ev, *im.opt.span);
      obs::tagSpan(dev_ev, *im.opt.span);
    }
    rec->trace().record(std::move(host_ev));
    rec->trace().record(std::move(dev_ev));
  }

  // Keep the public stats fully synced after every step — the shard runner
  // reads them between iterations, and run()'s final state falls out.
  stats.kernel_stats = im.sim.totalStats();
  stats.per_kernel = im.sim.perKernel();
  stats.race_check_enabled = im.sim.raceCheckOn();
  const gsim::RaceCheckTotals race_totals = im.sim.raceDetector().totals();
  stats.race_launches_checked = race_totals.launches_checked;
  stats.race_ranges_checked = race_totals.ranges_checked;
  stats.race_reports = race_totals.races_found;
  return true;
}

const GpuRunStats& GpuIcd::runStats() const { return impl_->run_stats; }

GpuRunStats GpuIcd::run(Image2D& x, Sinogram& e,
                        const GpuIterationCallback& on_iteration) {
  Impl& im = *impl_;
  beginRun(x, e);
  while (stepIteration(x, e)) {
    if (on_iteration &&
        !on_iteration(GpuIterationInfo{im.run_iter, im.run_stats.equits,
                                       im.run_stats.modeled_seconds, x})) {
      im.run_stats.stopped_by_callback = true;
      break;
    }
  }
  return im.run_stats;
}

}  // namespace mbir
