// Atomic-contention and load-imbalance estimators for the GPU timing model.
//
// Two atomic paths exist in GPU-ICD:
//  * intra-SV: threadblocks of one SV update the shared error SVB
//    atomically; with a small SV the band is narrow and concurrent voxel
//    footprints collide (the left side of Fig. 7a).
//  * inter-SV: the batch writeback kernel atomically adds every SV's delta
//    band into the global error sinogram; same-batch SVs' bands overlap
//    (any two voxel traces share sinogram cells, Fig. 1b).
//
// Both estimators return an expected serialization multiplier >= 1: the
// average number of contending writers an atomic op must queue behind,
// computed as sum(w^2)/sum(w) over cells (w = writers per cell).
#pragma once

#include <vector>

#include "geom/system_matrix.h"
#include "sv/svb.h"

namespace mbir {

/// Expected serialization of SVB_e atomics when `concurrent_blocks` voxels
/// of the SV update in flight. footprint/band-width sets collision odds.
double intraSvConflictMultiplier(const SvbPlan& plan, const SystemMatrix& A,
                                 int concurrent_blocks);

/// Expected serialization of global-error atomics for a batch of SVs, from
/// an exact per-view interval sweep of their bands.
double interSvConflictMultiplier(const std::vector<const SvbPlan*>& batch,
                                 int num_channels);

/// Completion-time imbalance of a static voxel partition: rows of work per
/// block, max/mean. `work_per_voxel[k]` is e.g. the chunk-row count of local
/// voxel k (0 for zero-skipped); voxels are dealt to `blocks` contiguous
/// ranges in order.
double staticPartitionImbalance(const std::vector<int>& work_per_voxel,
                                int blocks);

}  // namespace mbir
