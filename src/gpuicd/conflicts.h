// Atomic-contention and load-imbalance estimators for the GPU timing model.
//
// Two atomic paths exist in GPU-ICD:
//  * intra-SV: threadblocks of one SV update the shared error SVB
//    atomically; with a small SV the band is narrow and concurrent voxel
//    footprints collide (the left side of Fig. 7a).
//  * inter-SV: the batch writeback kernel atomically adds every SV's delta
//    band into the global error sinogram; same-batch SVs' bands overlap
//    (any two voxel traces share sinogram cells, Fig. 1b).
//
// Both estimators return an expected serialization multiplier >= 1: the
// average number of contending writers an atomic op must queue behind,
// computed as sum(w^2)/sum(w) over cells (w = writers per cell).
#pragma once

#include <vector>

#include "geom/system_matrix.h"
#include "gsim/race_check.h"
#include "sv/supervoxel.h"
#include "sv/svb.h"

namespace mbir {

/// Expected serialization of SVB_e atomics when `concurrent_blocks` voxels
/// of the SV update in flight. footprint/band-width sets collision odds.
double intraSvConflictMultiplier(const SvbPlan& plan, const SystemMatrix& A,
                                 int concurrent_blocks);

/// Expected serialization of global-error atomics for a batch of SVs, from
/// an exact per-view interval sweep of their bands.
double interSvConflictMultiplier(const std::vector<const SvbPlan*>& batch,
                                 int num_channels);

/// Completion-time imbalance of a static voxel partition: rows of work per
/// block, max/mean. `work_per_voxel[k]` is e.g. the chunk-row count of local
/// voxel k (0 for zero-skipped); voxels are dealt to `blocks` contiguous
/// ranges in order.
double staticPartitionImbalance(const std::vector<int>& work_per_voxel,
                                int blocks);

/// Cross-check of the checkerboard schedule's race-freedom claim (paper
/// §4.2): number of SV pairs in `group` whose concurrent sweeps would
/// conflict at device semantics — one SV's written rect intersecting
/// another's written rect or 1-voxel read ring (clamped at image edges).
/// Computed twice, independently: analytically from the SV rectangles, and
/// by declaring the same geometry to a gsim::RaceDetector as one synthetic
/// launch (one block per SV) — exactly the declarations the mbir_update
/// kernel makes. Disagreement between the two implementations is an
/// mbir::Error. When `detector` is non-null the synthetic launch runs on it
/// (buffer "image", kernel "schedule_check"), so its totals and report
/// include the check; otherwise a scratch detector is used.
/// Zero for every group checkerboardGroups() emits while
/// boundary_overlap <= (sv_side - 1) / 2.
int scheduleImageConflicts(const SvGrid& grid, const std::vector<int>& group,
                           gsim::RaceDetector* detector = nullptr);

}  // namespace mbir
