// GPU-ICD tuning parameters and optimization toggles.
//
// Tunables are the knobs the paper sweeps in §5.4 (Fig. 7a-d) plus the
// chunk width of Fig. 6; defaults are the paper's Table 1 values. OptimFlags
// are the §4/§5.3 optimizations — Table 2 and Table 3 toggle them one at a
// time. The two are separated because Tunables change *how much* work maps
// where, while OptimFlags change the kernel's code shape.
#pragma once

#include "core/error.h"
#include "sv/supervoxel.h"

namespace mbir {

struct GpuTunables {
  /// SuperVoxel side (paper Fig. 7a; best 33).
  SvGridOptions sv{.sv_side = 33, .boundary_overlap = 1};
  /// Chunk width W, elements (paper Fig. 6; best 32).
  int chunk_width = 32;
  /// Threadblocks launched per SV = exploited intra-SV parallelism
  /// (paper Fig. 7b; Table 1 uses 40).
  int threadblocks_per_sv = 40;
  /// Threads per threadblock = exploited intra-voxel parallelism
  /// (paper Fig. 7c; best 256).
  int threads_per_block = 256;
  /// Maximum SVs per kernel launch, BATCH_SIZE (paper Fig. 7d; Table 1: 32).
  int svs_per_batch = 32;
  /// Fraction of SVs selected per iteration (paper: 25% for GPU-ICD vs
  /// PSV-ICD's 20%, to keep the four checkerboard groups populated).
  double sv_fraction = 0.25;

  void validate() const {
    sv.validate();
    MBIR_CHECK(chunk_width >= 1);
    MBIR_CHECK(threadblocks_per_sv >= 1);
    MBIR_CHECK(threads_per_block >= 32 && threads_per_block % 32 == 0);
    MBIR_CHECK(svs_per_batch >= 1);
    MBIR_CHECK(sv_fraction > 0.0 && sv_fraction <= 1.0);
  }
};

struct OptimFlags {
  /// §4.1 data layout transformation (padded view-major SVB + A-chunks).
  /// Off = the naive Fig. 4a kernel: packed sensor-channel-major walk,
  /// uncoalesced accesses, per-view start-location lookups.
  bool transformed_layout = true;
  /// §4.3.1 A-matrix as uint8 with per-voxel scale (off = float).
  bool quantize_amatrix = true;
  /// §4.3.1 read the A-matrix through the unified L1/texture cache.
  bool amatrix_via_texture = true;
  /// §4.3.2 issue SVB reads as 8-byte (double) loads for full L2 width.
  bool read_svb_as_double = true;
  /// §4.2 spill thread-local variables to shared memory: 32 regs/thread
  /// (100% occupancy) instead of 44 (62.5%).
  bool spill_registers_to_smem = true;
  /// §3.2 intra-SV parallelism: multiple threadblocks per SV. Off = one
  /// threadblock per SV (Table 3's 6.25x lever).
  bool exploit_intra_sv = true;
  /// §3.2 dynamic voxel scheduling across a SV's threadblocks (off =
  /// static partition; zero-skipping then causes imbalance).
  bool dynamic_voxel_distribution = true;
  /// Alg. 3 line 26: skip kernels with fewer than svs_per_batch/4 SVs.
  bool batch_threshold = true;
};

/// Kernel register/shared-memory footprints implied by the flags (used for
/// the occupancy model; numbers follow §4.2).
struct KernelFootprint {
  int regs_per_thread = 32;
  std::size_t smem_bytes_per_thread = 0;
};

inline KernelFootprint updateKernelFootprint(const OptimFlags& f) {
  KernelFootprint k;
  if (f.spill_registers_to_smem) {
    k.regs_per_thread = 32;
    // 2 x 4B reduction slots + ~24B of spilled thread-locals.
    k.smem_bytes_per_thread = 8 + 24;
  } else {
    k.regs_per_thread = 44;
    k.smem_bytes_per_thread = 8;  // reduction slots only
  }
  return k;
}

}  // namespace mbir
