// GPU-ICD — the paper's contribution (Algorithm 3).
//
// Exploits all three levels of MBIR parallelism on the (simulated) GPU:
//   * inter-SV:    SVs of one checkerboard group updated concurrently,
//                  up to BATCH_SIZE per kernel launch;
//   * intra-SV:    multiple consecutive threadblocks per SV, pulling voxels
//                  from a shared atomic queue (dynamic scheduling);
//   * intra-voxel: a threadblock's threads split a voxel's chunk rows,
//                  reduce theta1/theta2 through shared memory.
//
// Per batch, three kernels run (Alg. 3 lines 28-30): SVB generation, the
// MBIR update kernel, and the atomic global-error writeback — SVB creation
// and writeback are separate kernels to avoid polluting the update kernel's
// cache working set. Functional execution is exact (convergence behaviour,
// quantization error, batch-snapshot staleness are real); time is modeled
// per launch by gsim (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "geom/image.h"
#include "geom/sinogram.h"
#include "gpuicd/tunables.h"
#include "gsim/executor.h"
#include "icd/problem.h"
#include "icd/work.h"
#include "sv/supervoxel.h"

namespace mbir::obs {
class Recorder;
struct JobSpanContext;
}  // namespace mbir::obs

namespace mbir {

class ThreadPool;

/// Row-slab ownership window for multi-device sharding (src/shard,
/// DESIGN.md §13). Disabled by default (row1 == row0): the engine owns the
/// whole image and behaves exactly as before. When enabled, the engine
/// updates only voxels inside its *updatable* window — the owned rows,
/// shrunk by one row at interior slab boundaries when halo == 0 so no
/// update ever reads an unowned, never-refreshed neighbour row. SV
/// selection is restricted to SVs intersecting that window; everything
/// outside is read-only halo state refreshed by the shard runner's
/// exchange between outer iterations.
struct SlabWindow {
  int row0 = 0;  ///< first owned image row (inclusive)
  int row1 = 0;  ///< one past the last owned image row
  int halo = 1;  ///< halo width in rows exchanged per outer iteration
  bool enabled() const { return row1 > row0; }
};

struct GpuIcdOptions {
  GpuTunables tunables;
  OptimFlags flags;
  int max_iterations = 1000;
  bool zero_skip = true;
  std::uint64_t seed = 17;
  /// Simulated device; scale caches with gsim::scaleCachesToProblem when
  /// running reduced geometries.
  gsim::DeviceSpec device = gsim::titanXMaxwell();
  /// Host thread pool simulated kernel blocks execute on (nullptr = the
  /// process-wide pool). Results are bit-identical for any pool size; only
  /// host wall-clock changes.
  ThreadPool* host_pool = nullptr;
  /// Bounded LRU cache of per-SV chunk plans, in entries (A-chunks are
  /// static per SV, so steady-state iterations skip chunk construction
  /// entirely). 0 disables caching: rebuild per batch, minimal host memory.
  int chunk_cache_capacity = 128;
  /// Observability sink (nullptr = off): per-iteration spans on both
  /// clocks, `gpuicd.*` metrics (chunk-cache hits/misses, batches), and —
  /// forwarded to the simulator — per-launch `gsim.launch.*` telemetry.
  /// Purely observational; results are bit-identical either way.
  obs::Recorder* recorder = nullptr;
  /// Trace process for modeled-clock spans (0 = the shared modeled-clock
  /// process). The batch scheduler sets this to the assigned device's pid
  /// so each simulated device renders as its own trace process.
  int trace_pid = 0;
  /// Per-job span context (nullptr = none, obs/span.h): iteration and
  /// launch spans carry the job's id/tenant and land on its host-clock
  /// lane. Borrowed; must outlive the run. Purely observational.
  const obs::JobSpanContext* span = nullptr;
  /// Device-semantics race checking (gsim/race_check.h): every launch's
  /// per-block access declarations are intersected, independent of host
  /// interleaving. Defaults from GPUMBIR_RACE_CHECK; off costs one branch
  /// per declaration site and results are bit-identical either way.
  gsim::RaceCheckConfig race_check = gsim::RaceCheckConfig::fromEnv();
  /// Lane-group execution path kernels run their row math on (gsim/simd.h).
  /// kDefault = the GPUMBIR_SIMD environment knob. Scalar and AVX2 are
  /// bit-identical, so this is purely a wall-clock knob; forcing kAvx2 on a
  /// host that cannot run it throws at construction.
  gsim::SimdMode simd = gsim::SimdMode::kDefault;
  /// Fault-injection hook (nullptr = none, gsim/fault.h): forwarded to the
  /// simulator so chaos testing can corrupt, stall, or kill this run at a
  /// deterministic launch boundary. Borrowed; scoped to the run.
  gsim::FaultHook* fault_hook = nullptr;
  /// Row-slab ownership window (disabled = whole image, the default).
  SlabWindow slab;
};

struct GpuIterationInfo {
  int iteration = 0;  ///< 1-based
  double equits = 0.0;
  double modeled_seconds = 0.0;  ///< cumulative simulated GPU time
  const Image2D& x;
};

/// Return false to stop.
using GpuIterationCallback = std::function<bool(const GpuIterationInfo&)>;

struct GpuRunStats {
  double equits = 0.0;
  int iterations = 0;
  bool stopped_by_callback = false;
  double modeled_seconds = 0.0;
  int kernels_launched = 0;
  int batches_skipped_by_threshold = 0;
  /// Chunk-plan LRU cache behaviour (host-side; no modeled GPU time).
  std::size_t chunk_cache_hits = 0;
  std::size_t chunk_cache_misses = 0;
  WorkCounters work;
  gsim::KernelStats kernel_stats;
  /// Per-kernel-name time/stats breakdown.
  std::map<std::string, gsim::NamedTotals> per_kernel;
  /// Device-semantics race checking (zeros when disabled). Diagnoses are
  /// readable via GpuIcd::simulator().raceDetector().
  bool race_check_enabled = false;
  std::uint64_t race_launches_checked = 0;
  std::uint64_t race_ranges_checked = 0;
  std::uint64_t race_reports = 0;
};

class GpuIcd {
 public:
  GpuIcd(const Problem& problem, GpuIcdOptions options = {});
  ~GpuIcd();

  /// Run until callback stop or max_iterations; x and e updated in place.
  GpuRunStats run(Image2D& x, Sinogram& e,
                  const GpuIterationCallback& on_iteration = {});

  /// Stepwise API used by the multi-device shard runner (src/shard): the
  /// runner interleaves one outer iteration per slab with a halo exchange.
  /// beginRun resets modeled time and the run RNG; stepIteration performs
  /// one full outer iteration (returns false once max_iterations have
  /// run); runStats() is kept in sync after every step. run() is exactly
  /// beginRun + stepIteration-loop, bit-identical to the one-shot path.
  void beginRun(Image2D& x, Sinogram& e);
  bool stepIteration(Image2D& x, Sinogram& e);
  const GpuRunStats& runStats() const;

  const SvGrid& grid() const;
  gsim::GpuSimulator& simulator();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mbir
