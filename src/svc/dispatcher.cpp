#include "svc/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/error.h"
#include "core/hash.h"
#include "obs/json.h"

namespace mbir::svc {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

DistSummary summarize(std::vector<double> v) {
  DistSummary s;
  s.count = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / double(v.size());
  s.max = v.back();
  // Nearest-rank percentiles (exact order statistics, no interpolation).
  auto rank = [&](double p) {
    const std::size_t r = std::size_t(std::ceil(p * double(v.size())));
    return v[std::min(v.size() - 1, r == 0 ? 0 : r - 1)];
  };
  s.p50 = rank(0.50);
  s.p95 = rank(0.95);
  s.p99 = rank(0.99);
  return s;
}

void writeDistSummary(obs::JsonWriter& w, const DistSummary& s) {
  w.beginObject();
  w.kv("count", std::int64_t(s.count));
  w.kv("mean", s.mean);
  w.kv("max", s.max);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("p99", s.p99);
  w.endObject();
}

/// Tenant label value ("" submits land under the default tenant).
std::string tenantLabel(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

}  // namespace

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kDeadlineMissed: return "deadline_missed";
  }
  return "?";
}

bool isTerminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

Dispatcher::Dispatcher(DispatcherOptions options)
    : opt_(std::move(options)),
      flight_(opt_.num_devices, opt_.flight_capacity) {
  MBIR_CHECK_MSG(opt_.num_devices >= 1, "dispatcher needs at least one device");
  MBIR_CHECK_MSG(opt_.queue_capacity >= 1, "queue capacity must be >= 1");
  det_lane_.resize(std::size_t(opt_.num_devices));
  device_clock_.assign(std::size_t(opt_.num_devices), 0.0);
  device_running_.assign(std::size_t(opt_.num_devices), -1);

  obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    obs::MetricsRegistry& m = rec->metrics();
    inst_.submitted = &m.counter("svc.jobs.submitted");
    inst_.rejected = &m.counter("svc.admission.rejected");
    inst_.done = &m.counter("svc.jobs.done");
    inst_.cancelled = &m.counter("svc.jobs.cancelled");
    inst_.failed = &m.counter("svc.jobs.failed");
    inst_.deadline_missed = &m.counter("svc.jobs.deadline_missed");
    inst_.queue_depth = &m.gauge("svc.queue.depth");
    inst_.queue_wait = &m.histogram("svc.queue_wait_host_s");
    inst_.service_time = &m.histogram("svc.job.service_host_s");
    inst_.e2e = &m.histogram("svc.job.e2e_host_s");
    inst_.flight_dumps = &m.counter("svc.flight.dumps");
    m.gauge("svc.devices").set(double(opt_.num_devices));
    m.gauge("svc.queue.capacity").set(double(opt_.queue_capacity));
  }
  if (rec && rec->traceOn()) {
    // Host-clock lanes: tid 0 is the control plane (submits), tid d+1 one
    // lane per device so each device's queue/job/iteration/launch spans
    // nest in their own row next to the modeled per-device processes.
    rec->trace().nameThread(int(obs::Clock::kHost), 0, "svc control", 0);
    for (int d = 0; d < opt_.num_devices; ++d) {
      rec->trace().nameProcess(tracePid(d),
                               "svc device " + std::to_string(d) + " (modeled)",
                               /*sort_index=*/tracePid(d));
      rec->trace().nameThread(int(obs::Clock::kHost), d + 1,
                              "svc device " + std::to_string(d) + " (host)",
                              /*sort_index=*/d + 1);
    }
  }

  devices_.reserve(std::size_t(opt_.num_devices));
  for (int d = 0; d < opt_.num_devices; ++d)
    devices_.emplace_back([this, d] { deviceLoop(d); });
}

Dispatcher::~Dispatcher() {
  std::lock_guard drain_lock(drain_mu_);
  if (joined_) return;
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    // Hard stop: running jobs get the cooperative flag so the device
    // threads return at the next iteration boundary; queued jobs never run.
    for (Job& job : jobs_)
      if (!isTerminal(job.state)) job.cancel.store(true, std::memory_order_release);
    cv_work_.notify_all();
  }
  for (std::thread& t : devices_) t.join();
  joined_ = true;
}

SubmitOutcome Dispatcher::submit(const JobSpec& spec) {
  MBIR_CHECK_MSG(spec.problem && spec.golden, "job needs a problem and golden");
  obs::Recorder* rec = opt_.recorder;
  const bool tracing = rec && rec->traceOn();
  const double submit_t0_us = tracing ? rec->trace().nowHostUs() : 0.0;
  SubmitOutcome out;
  std::lock_guard lock(mu_);
  if (!accepting_) {
    out.reason = "service is draining";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }
  if (queued_ >= opt_.queue_capacity) {
    out.reason = "admission queue full (" +
                 std::to_string(opt_.queue_capacity) + " queued)";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }

  const int id = int(jobs_.size());
  Job& job = jobs_.emplace_back();
  job.id = id;
  job.spec = spec;
  job.admit_tp = std::chrono::steady_clock::now();
  if (spec.deadline_ms >= 0.0) {
    job.has_deadline = true;
    job.deadline_tp =
        job.admit_tp + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(spec.deadline_ms));
  }
  job.result.job_id = id;
  job.result.name =
      spec.name.empty() ? "job" + std::to_string(id) : spec.name;
  // The job's span context: identity now, device/lane at dispatch. The
  // flight sink is unconditional (the ring is always on); trace fields
  // only matter when a trace recorder exists.
  job.span.job_id = id;
  job.span.tenant = spec.tenant;
  job.span.job_name = job.result.name;
  job.span.submit_host_us = submit_t0_us;
  job.span.flight = &flight_;
  if (spec.deterministic) {
    job.det_seq = det_count_++;
    det_lane_[std::size_t(job.det_seq % opt_.num_devices)].push_back(id);
  } else {
    prio_pending_.push_back(id);
  }
  ++queued_;
  ++accepted_;
  queue_depth_max_ = std::max(queue_depth_max_, queued_);
  if (inst_.submitted) inst_.submitted->add();
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  cv_work_.notify_all();

  {
    obs::FlightEvent fev;
    fev.job_id = id;
    fev.kind = "admit";
    fev.detail = tenantLabel(spec.tenant) + ":" + job.result.name;
    fev.value = double(spec.priority);
    flight_.record(obs::FlightRecorder::kControlLane, std::move(fev));
  }
  if (tracing) {
    obs::TraceEvent ev;
    ev.name = "svc.submit";
    ev.cat = "svc";
    ev.clock = obs::Clock::kHost;
    ev.ts_us = submit_t0_us;
    ev.dur_us = rec->trace().nowHostUs() - submit_t0_us;
    ev.tid = 0;  // control lane
    obs::tagSpan(ev, job.span);
    ev.num_args.emplace_back("priority", double(spec.priority));
    rec->trace().record(std::move(ev));
  }

  out.accepted = true;
  out.job_id = id;
  return out;
}

bool Dispatcher::cancel(int job_id) {
  {
    std::lock_guard lock(mu_);
    if (job_id < 0 || job_id >= int(jobs_.size())) return false;
    Job& job = jobs_[std::size_t(job_id)];
    if (isTerminal(job.state)) return false;
    if (job.state == JobState::kQueued && !job.spec.deterministic) {
      // Drop it from the pending set right now, freeing its admission slot.
      prio_pending_.erase(
          std::find(prio_pending_.begin(), prio_pending_.end(), job_id));
      finalizeQueuedLocked(job, JobState::kCancelled);
    } else {
      // Running jobs stop cooperatively; queued deterministic-lane jobs
      // keep their schedule slot and run with the flag set
      // (BatchScheduler parity).
      job.cancel.store(true, std::memory_order_release);
    }
  }
  // A queued-cancel finalization may have requested a flight dump; write
  // it here, off the dispatcher lock.
  flushFlightDumps();
  return true;
}

bool Dispatcher::knownJob(int job_id) const {
  std::lock_guard lock(mu_);
  return job_id >= 0 && job_id < int(jobs_.size());
}

JobStatus Dispatcher::status(int job_id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  return snapshotLocked(jobs_[std::size_t(job_id)]);
}

Dispatcher::Stats Dispatcher::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.accepting = accepting_;
  s.queued = queued_;
  s.running = running_;
  s.submitted = accepted_;
  s.rejected = rejected_;
  s.finished = finished_;
  return s;
}

JobStatus Dispatcher::waitTerminal(int job_id) const {
  std::unique_lock lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  const Job& job = jobs_[std::size_t(job_id)];
  cv_done_.wait(lock, [&] { return isTerminal(job.state); });
  return snapshotLocked(job);
}

std::optional<Image2D> Dispatcher::image(int job_id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  const Job& job = jobs_[std::size_t(job_id)];
  // The run writes job.result without the lock; only a terminal state
  // (published under the lock) guarantees those writes are visible here.
  if (!isTerminal(job.state) || !job.has_image) return std::nullopt;
  return job.result.run.image;
}

Dispatcher::Job* Dispatcher::pickJobLocked(int device) {
  const auto now = std::chrono::steady_clock::now();
  auto transition = [&](Job& job) {
    job.state = JobState::kRunning;
    job.dispatch_seq = dispatch_count_++;
    job.queue_wait_host_s = secondsBetween(job.admit_tp, now);
    job.device = device;
    // Complete the span context before the device thread (this thread)
    // reads it off-lock: which device, which trace lanes.
    job.span.device = device;
    job.span.trace_pid = tracePid(device);
    job.span.host_tid = device + 1;
    device_running_[std::size_t(device)] = job.id;
    --queued_;
    ++running_;
    if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
    {
      obs::FlightEvent fev;
      fev.job_id = job.id;
      fev.kind = "dispatch";
      fev.detail = tenantLabel(job.spec.tenant) + ":" + job.result.name;
      fev.value = job.queue_wait_host_s;
      flight_.record(obs::FlightRecorder::deviceLane(device), std::move(fev));
    }
    obs::Recorder* rec = opt_.recorder;
    if (rec && rec->traceOn()) {
      // The queue wait as an explicit span on the device's host lane,
      // recorded retroactively now that the device is known: it starts at
      // admission and ends here, so submit → queue → job read as one
      // nested chain per job in the trace.
      obs::TraceEvent ev;
      ev.name = "svc.queue";
      ev.cat = "svc";
      ev.clock = obs::Clock::kHost;
      ev.ts_us = job.span.submit_host_us;
      ev.dur_us = rec->trace().nowHostUs() - job.span.submit_host_us;
      ev.tid = job.span.host_tid;
      obs::tagSpan(ev, job.span);
      ev.num_args.emplace_back("queue_wait_host_s", job.queue_wait_host_s);
      ev.num_args.emplace_back("priority", double(job.spec.priority));
      rec->trace().record(std::move(ev));
    }
    // Peers idle in drain mode only exit once the queue is empty — tell them.
    if (draining_ && queued_ == 0) cv_work_.notify_all();
    return &job;
  };

  // Deterministic lane first: this device's det jobs, strictly in
  // submission order (deadlines/priorities do not apply in this lane).
  std::deque<int>& lane = det_lane_[std::size_t(device)];
  if (!lane.empty()) {
    Job& job = jobs_[std::size_t(lane.front())];
    lane.pop_front();
    return transition(job);
  }

  // Priority lane: fail expired jobs fast, then take the highest priority
  // (ties to the earliest submission).
  Job* best = nullptr;
  for (std::size_t i = 0; i < prio_pending_.size();) {
    Job& job = jobs_[std::size_t(prio_pending_[i])];
    if (job.has_deadline && now >= job.deadline_tp) {
      prio_pending_.erase(prio_pending_.begin() + long(i));
      finalizeQueuedLocked(job, JobState::kDeadlineMissed);
      continue;
    }
    if (!best || job.spec.priority > best->spec.priority) best = &job;
    ++i;
  }
  if (!best) return nullptr;
  prio_pending_.erase(
      std::find(prio_pending_.begin(), prio_pending_.end(), best->id));
  return transition(*best);
}

void Dispatcher::finalizeQueuedLocked(Job& job, JobState state) {
  job.state = state;
  const auto now = std::chrono::steady_clock::now();
  job.queue_wait_host_s = secondsBetween(job.admit_tp, now);
  job.e2e_host_s = job.queue_wait_host_s;
  --queued_;
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  if (draining_ && queued_ == 0) cv_work_.notify_all();
  noteTerminalLocked(job);
}

void Dispatcher::noteTerminalLocked(Job& job) {
  ++finished_;
  if (job.dispatch_seq >= 0) device_running_[std::size_t(job.device)] = -1;
  switch (job.state) {
    case JobState::kDone:
      if (inst_.done) inst_.done->add();
      break;
    case JobState::kCancelled:
      if (inst_.cancelled) inst_.cancelled->add();
      requestFlightDumpLocked(job);
      break;
    case JobState::kFailed:
      if (inst_.failed) inst_.failed->add();
      requestFlightDumpLocked(job);
      break;
    case JobState::kDeadlineMissed:
      if (inst_.deadline_missed) inst_.deadline_missed->add();
      requestFlightDumpLocked(job);
      break;
    default:
      break;
  }
  if (inst_.queue_wait) inst_.queue_wait->observe(job.queue_wait_host_s);
  if (inst_.e2e) inst_.e2e->observe(job.e2e_host_s);
  if (job.dispatch_seq >= 0 && inst_.service_time)
    inst_.service_time->observe(job.service_host_s);
  obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    // Per-tenant outcome + latency, labeled — the wire `stats` verb and
    // svc_report surface these next to the aggregate svc.* series.
    const std::string tenant = tenantLabel(job.spec.tenant);
    if (job.state == JobState::kDone)
      rec->metrics().counter("svc.jobs.done", {{"tenant", tenant}}).add();
    rec->metrics()
        .histogram("svc.job.e2e_host_s", {{"tenant", tenant}})
        .observe(job.e2e_host_s);
  }
  {
    // Terminal flight event on the lane that owned the job (control lane
    // when it never dispatched).
    obs::FlightEvent fev;
    fev.job_id = job.id;
    fev.kind = jobStateName(job.state);
    fev.detail = job.result.error.empty() ? tenantLabel(job.spec.tenant)
                                          : job.result.error;
    fev.value = job.e2e_host_s;
    const int lane = job.dispatch_seq >= 0
                         ? obs::FlightRecorder::deviceLane(job.device)
                         : obs::FlightRecorder::kControlLane;
    flight_.record(lane, std::move(fev));
  }
  cv_done_.notify_all();
}

void Dispatcher::requestFlightDumpLocked(const Job& job) {
  pending_flight_.emplace_back(job.id, std::string(jobStateName(job.state)));
  ++flight_dumps_;
  if (inst_.flight_dumps) inst_.flight_dumps->add();
}

void Dispatcher::flushFlightDumps() {
  std::vector<std::pair<int, std::string>> pending;
  {
    std::lock_guard lock(mu_);
    pending.swap(pending_flight_);
  }
  if (opt_.flight_dir.empty()) return;
  for (const auto& [id, reason] : pending)
    flight_.writeFile(opt_.flight_dir + "/flight_" + reason + "_job" +
                          std::to_string(id) + ".json",
                      reason + " job " + std::to_string(id));
}

void Dispatcher::deviceLoop(int device) {
  sched::DeviceRunContext ctx;
  ctx.recorder = opt_.recorder;
  ctx.host_pool = opt_.host_pool;
  ctx.device = device;
  ctx.trace_pid = tracePid(device);
  ctx.span_prefix = "svc";
  double clock_s = 0.0;  // this device's cumulative modeled clock

  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] {
        if (stop_) return true;
        job = pickJobLocked(device);
        if (job) return true;
        return draining_ && queued_ == 0;
      });
      if (stop_ || !job) break;
    }
    // Deadline-miss finalizations inside pickJobLocked may have requested
    // dumps; write them before the (long) run, off the lock.
    flushFlightDumps();

    const WallTimer service_wall;
    ctx.span = &job->span;
    clock_s = sched::runJobOnDevice(ctx, *job->spec.problem, *job->spec.golden,
                                    job->spec.config, job->cancel, clock_s,
                                    job->result);
    ctx.span = nullptr;

    {
      std::lock_guard lock(mu_);
      device_clock_[std::size_t(device)] = clock_s;
      job->service_host_s = service_wall.seconds();
      job->e2e_host_s = job->queue_wait_host_s + job->service_host_s;
      const sched::JobResult& r = job->result;
      if (!r.failed && r.run.image.numVoxels() > 0) {
        job->has_image = true;
        job->image_hash = fnv1a64(r.run.image.flat());
      }
      job->state = r.failed      ? JobState::kFailed
                   : r.cancelled ? JobState::kCancelled
                                 : JobState::kDone;
      --running_;
      noteTerminalLocked(*job);
    }
    flushFlightDumps();
  }
  flushFlightDumps();
}

JobStatus Dispatcher::snapshotLocked(const Job& job) const {
  JobStatus s;
  s.job_id = job.id;
  s.state = job.state;
  s.name = job.result.name;
  s.tenant = job.spec.tenant;
  s.priority = job.spec.priority;
  s.deterministic = job.spec.deterministic;
  s.deadline_ms = job.spec.deadline_ms;
  s.device = job.device;
  s.dispatch_seq = job.dispatch_seq;
  s.queue_wait_host_s = job.queue_wait_host_s;
  s.service_host_s = job.service_host_s;
  s.e2e_host_s = job.e2e_host_s;
  if (isTerminal(job.state) && job.dispatch_seq >= 0) {
    // Run-outcome fields are written off-lock during the run; they are
    // published by the terminal-state transition (which holds the lock).
    s.converged = job.result.run.converged;
    s.equits = job.result.run.equits;
    s.final_rmse_hu = job.result.run.final_rmse_hu;
    s.modeled_seconds = job.result.run.modeled_seconds;
    s.queue_wait_modeled_s = job.result.queue_wait_modeled_s;
    s.error = job.result.error;
    s.image_hash = job.image_hash;
    s.has_image = job.has_image;
  }
  return s;
}

Dispatcher::LiveStats Dispatcher::liveStats() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  LiveStats s;
  s.accepting = accepting_;
  s.draining = draining_;
  s.uptime_host_s = lifetime_.seconds();
  s.num_devices = opt_.num_devices;
  s.queue_capacity = opt_.queue_capacity;
  s.queued = queued_;
  s.running = running_;
  s.submitted = accepted_;
  s.rejected = rejected_;
  s.finished = finished_;
  for (int id : prio_pending_)
    ++s.queue_depth_by_priority[jobs_[std::size_t(id)].spec.priority];
  s.devices.reserve(std::size_t(opt_.num_devices));
  for (int d = 0; d < opt_.num_devices; ++d) {
    LiveDevice dev;
    dev.device = d;
    dev.running_job = device_running_[std::size_t(d)];
    dev.busy = dev.running_job >= 0;
    dev.modeled_s = device_clock_[std::size_t(d)];
    dev.det_lane_depth = int(det_lane_[std::size_t(d)].size());
    s.devices.push_back(std::move(dev));
  }
  for (const Job& job : jobs_) {
    if (isTerminal(job.state)) continue;
    LiveJob lj;
    lj.job_id = job.id;
    lj.state = job.state;
    lj.name = job.result.name;
    lj.tenant = job.spec.tenant;
    lj.priority = job.spec.priority;
    lj.deterministic = job.spec.deterministic;
    lj.device = job.state == JobState::kRunning ? job.device : -1;
    lj.age_host_s = secondsBetween(job.admit_tp, now);
    lj.has_deadline = job.has_deadline;
    if (job.has_deadline)
      lj.deadline_remaining_ms =
          std::chrono::duration<double, std::milli>(job.deadline_tp - now)
              .count();
    s.in_flight.push_back(std::move(lj));
  }
  s.flight_events = flight_.totalRecorded();
  s.flight_dumps = flight_dumps_;
  return s;
}

std::string Dispatcher::liveStatsJson() const {
  const LiveStats s = liveStats();
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kStatsSchema);
  w.kv("accepting", s.accepting);
  w.kv("draining", s.draining);
  w.kv("uptime_host_s", s.uptime_host_s);
  w.kv("num_devices", s.num_devices);
  w.kv("queue_capacity", s.queue_capacity);
  w.kv("queued", s.queued);
  w.kv("running", s.running);
  w.kv("submitted", s.submitted);
  w.kv("rejected", s.rejected);
  w.kv("finished", s.finished);
  w.key("queue_depth_by_priority").beginObject();
  for (const auto& [prio, n] : s.queue_depth_by_priority)
    w.kv(std::to_string(prio), std::int64_t(n));
  w.endObject();
  w.key("devices").beginArray();
  for (const LiveDevice& d : s.devices) {
    w.beginObject();
    w.kv("device", d.device);
    w.kv("busy", d.busy);
    w.kv("running_job", d.running_job);
    w.kv("modeled_s", d.modeled_s);
    w.kv("det_lane_depth", d.det_lane_depth);
    w.endObject();
  }
  w.endArray();
  w.key("in_flight").beginArray();
  for (const LiveJob& j : s.in_flight) {
    w.beginObject();
    w.kv("job_id", j.job_id);
    w.kv("state", jobStateName(j.state));
    w.kv("name", j.name);
    if (!j.tenant.empty()) w.kv("tenant", j.tenant);
    w.kv("priority", j.priority);
    w.kv("deterministic", j.deterministic);
    w.kv("device", j.device);
    w.kv("age_host_s", j.age_host_s);
    if (j.has_deadline) w.kv("deadline_remaining_ms", j.deadline_remaining_ms);
    w.endObject();
  }
  w.endArray();
  w.key("flight").beginObject();
  w.kv("events_recorded", s.flight_events);
  w.kv("dumps", s.flight_dumps);
  w.endObject();
  const obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  w.endObject();
  return w.str();
}

std::uint64_t Dispatcher::flightDumpCount() const {
  std::lock_guard lock(mu_);
  return flight_dumps_;
}

const SvcReport& Dispatcher::drain() {
  std::lock_guard drain_lock(drain_mu_);
  if (joined_) return report_;  // idempotent: repeat callers share the report
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    draining_ = true;
    cv_work_.notify_all();
  }
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
  }
  for (std::thread& t : devices_) t.join();
  joined_ = true;
  flushFlightDumps();  // anything the device threads did not get to

  // Threads are gone; every job is terminal and fully published.
  SvcReport& rep = report_;
  rep.num_devices = opt_.num_devices;
  rep.queue_capacity = opt_.queue_capacity;
  rep.jobs_submitted = accepted_;
  rep.admission_rejected = rejected_;
  rep.queue_depth_max = queue_depth_max_;
  rep.device_modeled_s = device_clock_;
  rep.makespan_modeled_s =
      device_clock_.empty()
          ? 0.0
          : *std::max_element(device_clock_.begin(), device_clock_.end());
  std::vector<double> queue_wait, service, e2e;
  for (const Job& job : jobs_) {
    rep.jobs.push_back(snapshotLocked(job));
    const JobStatus& s = rep.jobs.back();
    switch (s.state) {
      case JobState::kDone:
        ++rep.jobs_done;
        if (s.converged) ++rep.jobs_converged;
        break;
      case JobState::kCancelled: ++rep.jobs_cancelled; break;
      case JobState::kFailed: ++rep.jobs_failed; break;
      case JobState::kDeadlineMissed: ++rep.jobs_deadline_missed; break;
      default: break;
    }
    queue_wait.push_back(s.queue_wait_host_s);
    e2e.push_back(s.e2e_host_s);
    if (s.dispatch_seq >= 0) {
      service.push_back(s.service_host_s);
      rep.modeled_device_seconds_total += s.modeled_seconds;
    }
  }
  rep.queue_wait_host_s = summarize(std::move(queue_wait));
  rep.service_host_s = summarize(std::move(service));
  rep.e2e_host_s = summarize(std::move(e2e));
  rep.host_seconds = lifetime_.seconds();
  rep.jobs_per_host_second =
      rep.host_seconds > 0.0 ? double(rep.jobs_done) / rep.host_seconds : 0.0;

  drained_.store(true, std::memory_order_release);
  return report_;
}

std::string Dispatcher::reportJson() const {
  MBIR_CHECK_MSG(drained(), "reportJson() before drain()");
  const SvcReport& rep = report_;
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kReportSchema);
  w.kv("simd", resolveSimdOps(SimdMode::kDefault).name);
  w.kv("num_devices", rep.num_devices);
  w.kv("queue_capacity", rep.queue_capacity);
  w.kv("jobs_submitted", std::int64_t(rep.jobs_submitted));
  w.kv("admission_rejected", std::int64_t(rep.admission_rejected));
  w.kv("jobs_done", std::int64_t(rep.jobs_done));
  w.kv("jobs_converged", std::int64_t(rep.jobs_converged));
  w.kv("jobs_cancelled", std::int64_t(rep.jobs_cancelled));
  w.kv("jobs_failed", std::int64_t(rep.jobs_failed));
  w.kv("jobs_deadline_missed", std::int64_t(rep.jobs_deadline_missed));
  w.kv("queue_depth_max", rep.queue_depth_max);
  w.kv("host_seconds", rep.host_seconds);
  w.kv("jobs_per_host_second", rep.jobs_per_host_second);
  w.key("queue_wait_host_s");
  writeDistSummary(w, rep.queue_wait_host_s);
  w.key("service_host_s");
  writeDistSummary(w, rep.service_host_s);
  w.key("e2e_host_s");
  writeDistSummary(w, rep.e2e_host_s);
  w.kv("modeled_device_seconds_total", rep.modeled_device_seconds_total);
  w.kv("makespan_modeled_s", rep.makespan_modeled_s);
  w.key("device_modeled_s").beginArray();
  for (double s : rep.device_modeled_s) w.value(s);
  w.endArray();
  w.key("jobs").beginArray();
  for (const JobStatus& s : rep.jobs) {
    w.beginObject();
    w.kv("job_id", s.job_id);
    w.kv("name", s.name);
    if (!s.tenant.empty()) w.kv("tenant", s.tenant);
    w.kv("state", jobStateName(s.state));
    w.kv("priority", s.priority);
    w.kv("deterministic", s.deterministic);
    if (s.deadline_ms >= 0.0) w.kv("deadline_ms", s.deadline_ms);
    w.kv("device", s.device);
    w.kv("dispatch_seq", s.dispatch_seq);
    w.kv("queue_wait_host_s", s.queue_wait_host_s);
    w.kv("service_host_s", s.service_host_s);
    w.kv("e2e_host_s", s.e2e_host_s);
    if (s.dispatch_seq >= 0) {
      w.kv("converged", s.converged);
      w.kv("equits", s.equits);
      w.kv("final_rmse_hu", s.final_rmse_hu);
      w.kv("modeled_seconds", s.modeled_seconds);
      w.kv("queue_wait_modeled_s", s.queue_wait_modeled_s);
    }
    if (!s.error.empty()) w.kv("error", s.error);
    // uint64 hashes cross the wire as hex strings: a JSON number (double)
    // only carries 53 bits exactly.
    if (s.has_image) w.kv("image_hash", hashToHex(s.image_hash));
    w.endObject();
  }
  w.endArray();
  const obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  w.endObject();
  return w.str();
}

void Dispatcher::writeReportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open svc report file: " + path);
  out << reportJson() << '\n';
  MBIR_CHECK_MSG(out.good(), "failed writing svc report: " + path);
}

}  // namespace mbir::svc
