#include "svc/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/error.h"
#include "core/hash.h"
#include "obs/json.h"

namespace mbir::svc {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

DistSummary summarize(std::vector<double> v) {
  DistSummary s;
  s.count = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / double(v.size());
  s.max = v.back();
  // Nearest-rank percentiles (exact order statistics, no interpolation).
  auto rank = [&](double p) {
    const std::size_t r = std::size_t(std::ceil(p * double(v.size())));
    return v[std::min(v.size() - 1, r == 0 ? 0 : r - 1)];
  };
  s.p50 = rank(0.50);
  s.p99 = rank(0.99);
  return s;
}

void writeDistSummary(obs::JsonWriter& w, const DistSummary& s) {
  w.beginObject();
  w.kv("count", std::int64_t(s.count));
  w.kv("mean", s.mean);
  w.kv("max", s.max);
  w.kv("p50", s.p50);
  w.kv("p99", s.p99);
  w.endObject();
}

}  // namespace

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kDeadlineMissed: return "deadline_missed";
  }
  return "?";
}

bool isTerminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

Dispatcher::Dispatcher(DispatcherOptions options) : opt_(std::move(options)) {
  MBIR_CHECK_MSG(opt_.num_devices >= 1, "dispatcher needs at least one device");
  MBIR_CHECK_MSG(opt_.queue_capacity >= 1, "queue capacity must be >= 1");
  det_lane_.resize(std::size_t(opt_.num_devices));
  device_clock_.assign(std::size_t(opt_.num_devices), 0.0);

  obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    obs::MetricsRegistry& m = rec->metrics();
    inst_.submitted = &m.counter("svc.jobs.submitted");
    inst_.rejected = &m.counter("svc.admission.rejected");
    inst_.done = &m.counter("svc.jobs.done");
    inst_.cancelled = &m.counter("svc.jobs.cancelled");
    inst_.failed = &m.counter("svc.jobs.failed");
    inst_.deadline_missed = &m.counter("svc.jobs.deadline_missed");
    inst_.queue_depth = &m.gauge("svc.queue.depth");
    inst_.queue_wait = &m.histogram("svc.queue_wait_host_s");
    inst_.service_time = &m.histogram("svc.job.service_host_s");
    inst_.e2e = &m.histogram("svc.job.e2e_host_s");
    m.gauge("svc.devices").set(double(opt_.num_devices));
    m.gauge("svc.queue.capacity").set(double(opt_.queue_capacity));
  }
  if (rec && rec->traceOn()) {
    for (int d = 0; d < opt_.num_devices; ++d)
      rec->trace().nameProcess(tracePid(d),
                               "svc device " + std::to_string(d) + " (modeled)",
                               /*sort_index=*/tracePid(d));
  }

  devices_.reserve(std::size_t(opt_.num_devices));
  for (int d = 0; d < opt_.num_devices; ++d)
    devices_.emplace_back([this, d] { deviceLoop(d); });
}

Dispatcher::~Dispatcher() {
  std::lock_guard drain_lock(drain_mu_);
  if (joined_) return;
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    // Hard stop: running jobs get the cooperative flag so the device
    // threads return at the next iteration boundary; queued jobs never run.
    for (Job& job : jobs_)
      if (!isTerminal(job.state)) job.cancel.store(true, std::memory_order_release);
    cv_work_.notify_all();
  }
  for (std::thread& t : devices_) t.join();
  joined_ = true;
}

SubmitOutcome Dispatcher::submit(const JobSpec& spec) {
  MBIR_CHECK_MSG(spec.problem && spec.golden, "job needs a problem and golden");
  SubmitOutcome out;
  std::lock_guard lock(mu_);
  if (!accepting_) {
    out.reason = "service is draining";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }
  if (queued_ >= opt_.queue_capacity) {
    out.reason = "admission queue full (" +
                 std::to_string(opt_.queue_capacity) + " queued)";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }

  const int id = int(jobs_.size());
  Job& job = jobs_.emplace_back();
  job.id = id;
  job.spec = spec;
  job.admit_tp = std::chrono::steady_clock::now();
  if (spec.deadline_ms >= 0.0) {
    job.has_deadline = true;
    job.deadline_tp =
        job.admit_tp + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(spec.deadline_ms));
  }
  job.result.job_id = id;
  job.result.name =
      spec.name.empty() ? "job" + std::to_string(id) : spec.name;
  if (spec.deterministic) {
    job.det_seq = det_count_++;
    det_lane_[std::size_t(job.det_seq % opt_.num_devices)].push_back(id);
  } else {
    prio_pending_.push_back(id);
  }
  ++queued_;
  ++accepted_;
  queue_depth_max_ = std::max(queue_depth_max_, queued_);
  if (inst_.submitted) inst_.submitted->add();
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  cv_work_.notify_all();

  out.accepted = true;
  out.job_id = id;
  return out;
}

bool Dispatcher::cancel(int job_id) {
  std::lock_guard lock(mu_);
  if (job_id < 0 || job_id >= int(jobs_.size())) return false;
  Job& job = jobs_[std::size_t(job_id)];
  if (isTerminal(job.state)) return false;
  if (job.state == JobState::kQueued && !job.spec.deterministic) {
    // Drop it from the pending set right now, freeing its admission slot.
    prio_pending_.erase(
        std::find(prio_pending_.begin(), prio_pending_.end(), job_id));
    finalizeQueuedLocked(job, JobState::kCancelled);
    return true;
  }
  // Running jobs stop cooperatively; queued deterministic-lane jobs keep
  // their schedule slot and run with the flag set (BatchScheduler parity).
  job.cancel.store(true, std::memory_order_release);
  return true;
}

bool Dispatcher::knownJob(int job_id) const {
  std::lock_guard lock(mu_);
  return job_id >= 0 && job_id < int(jobs_.size());
}

JobStatus Dispatcher::status(int job_id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  return snapshotLocked(jobs_[std::size_t(job_id)]);
}

Dispatcher::Stats Dispatcher::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.accepting = accepting_;
  s.queued = queued_;
  s.running = running_;
  s.submitted = accepted_;
  s.rejected = rejected_;
  s.finished = finished_;
  return s;
}

JobStatus Dispatcher::waitTerminal(int job_id) const {
  std::unique_lock lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  const Job& job = jobs_[std::size_t(job_id)];
  cv_done_.wait(lock, [&] { return isTerminal(job.state); });
  return snapshotLocked(job);
}

std::optional<Image2D> Dispatcher::image(int job_id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  const Job& job = jobs_[std::size_t(job_id)];
  // The run writes job.result without the lock; only a terminal state
  // (published under the lock) guarantees those writes are visible here.
  if (!isTerminal(job.state) || !job.has_image) return std::nullopt;
  return job.result.run.image;
}

Dispatcher::Job* Dispatcher::pickJobLocked(int device) {
  const auto now = std::chrono::steady_clock::now();
  auto transition = [&](Job& job) {
    job.state = JobState::kRunning;
    job.dispatch_seq = dispatch_count_++;
    job.queue_wait_host_s = secondsBetween(job.admit_tp, now);
    job.device = device;
    --queued_;
    ++running_;
    if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
    // Peers idle in drain mode only exit once the queue is empty — tell them.
    if (draining_ && queued_ == 0) cv_work_.notify_all();
    return &job;
  };

  // Deterministic lane first: this device's det jobs, strictly in
  // submission order (deadlines/priorities do not apply in this lane).
  std::deque<int>& lane = det_lane_[std::size_t(device)];
  if (!lane.empty()) {
    Job& job = jobs_[std::size_t(lane.front())];
    lane.pop_front();
    return transition(job);
  }

  // Priority lane: fail expired jobs fast, then take the highest priority
  // (ties to the earliest submission).
  Job* best = nullptr;
  for (std::size_t i = 0; i < prio_pending_.size();) {
    Job& job = jobs_[std::size_t(prio_pending_[i])];
    if (job.has_deadline && now >= job.deadline_tp) {
      prio_pending_.erase(prio_pending_.begin() + long(i));
      finalizeQueuedLocked(job, JobState::kDeadlineMissed);
      continue;
    }
    if (!best || job.spec.priority > best->spec.priority) best = &job;
    ++i;
  }
  if (!best) return nullptr;
  prio_pending_.erase(
      std::find(prio_pending_.begin(), prio_pending_.end(), best->id));
  return transition(*best);
}

void Dispatcher::finalizeQueuedLocked(Job& job, JobState state) {
  job.state = state;
  const auto now = std::chrono::steady_clock::now();
  job.queue_wait_host_s = secondsBetween(job.admit_tp, now);
  job.e2e_host_s = job.queue_wait_host_s;
  --queued_;
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  if (draining_ && queued_ == 0) cv_work_.notify_all();
  noteTerminalLocked(job);
}

void Dispatcher::noteTerminalLocked(Job& job) {
  ++finished_;
  switch (job.state) {
    case JobState::kDone:
      if (inst_.done) inst_.done->add();
      break;
    case JobState::kCancelled:
      if (inst_.cancelled) inst_.cancelled->add();
      break;
    case JobState::kFailed:
      if (inst_.failed) inst_.failed->add();
      break;
    case JobState::kDeadlineMissed:
      if (inst_.deadline_missed) inst_.deadline_missed->add();
      break;
    default:
      break;
  }
  if (inst_.queue_wait) inst_.queue_wait->observe(job.queue_wait_host_s);
  if (inst_.e2e) inst_.e2e->observe(job.e2e_host_s);
  if (job.dispatch_seq >= 0 && inst_.service_time)
    inst_.service_time->observe(job.service_host_s);
  cv_done_.notify_all();
}

void Dispatcher::deviceLoop(int device) {
  sched::DeviceRunContext ctx;
  ctx.recorder = opt_.recorder;
  ctx.host_pool = opt_.host_pool;
  ctx.device = device;
  ctx.trace_pid = tracePid(device);
  ctx.span_prefix = "svc";
  double clock_s = 0.0;  // this device's cumulative modeled clock

  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] {
        if (stop_) return true;
        job = pickJobLocked(device);
        if (job) return true;
        return draining_ && queued_ == 0;
      });
      if (stop_ || !job) break;
    }

    const WallTimer service_wall;
    clock_s = sched::runJobOnDevice(ctx, *job->spec.problem, *job->spec.golden,
                                    job->spec.config, job->cancel, clock_s,
                                    job->result);

    std::lock_guard lock(mu_);
    device_clock_[std::size_t(device)] = clock_s;
    job->service_host_s = service_wall.seconds();
    job->e2e_host_s = job->queue_wait_host_s + job->service_host_s;
    const sched::JobResult& r = job->result;
    if (!r.failed && r.run.image.numVoxels() > 0) {
      job->has_image = true;
      job->image_hash = fnv1a64(r.run.image.flat());
    }
    job->state = r.failed      ? JobState::kFailed
                 : r.cancelled ? JobState::kCancelled
                               : JobState::kDone;
    --running_;
    noteTerminalLocked(*job);
  }
}

JobStatus Dispatcher::snapshotLocked(const Job& job) const {
  JobStatus s;
  s.job_id = job.id;
  s.state = job.state;
  s.name = job.result.name;
  s.priority = job.spec.priority;
  s.deterministic = job.spec.deterministic;
  s.deadline_ms = job.spec.deadline_ms;
  s.device = job.device;
  s.dispatch_seq = job.dispatch_seq;
  s.queue_wait_host_s = job.queue_wait_host_s;
  s.service_host_s = job.service_host_s;
  s.e2e_host_s = job.e2e_host_s;
  if (isTerminal(job.state) && job.dispatch_seq >= 0) {
    // Run-outcome fields are written off-lock during the run; they are
    // published by the terminal-state transition (which holds the lock).
    s.converged = job.result.run.converged;
    s.equits = job.result.run.equits;
    s.final_rmse_hu = job.result.run.final_rmse_hu;
    s.modeled_seconds = job.result.run.modeled_seconds;
    s.queue_wait_modeled_s = job.result.queue_wait_modeled_s;
    s.error = job.result.error;
    s.image_hash = job.image_hash;
    s.has_image = job.has_image;
  }
  return s;
}

const SvcReport& Dispatcher::drain() {
  std::lock_guard drain_lock(drain_mu_);
  if (joined_) return report_;  // idempotent: repeat callers share the report
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    draining_ = true;
    cv_work_.notify_all();
  }
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
  }
  for (std::thread& t : devices_) t.join();
  joined_ = true;

  // Threads are gone; every job is terminal and fully published.
  SvcReport& rep = report_;
  rep.num_devices = opt_.num_devices;
  rep.queue_capacity = opt_.queue_capacity;
  rep.jobs_submitted = accepted_;
  rep.admission_rejected = rejected_;
  rep.queue_depth_max = queue_depth_max_;
  rep.device_modeled_s = device_clock_;
  rep.makespan_modeled_s =
      device_clock_.empty()
          ? 0.0
          : *std::max_element(device_clock_.begin(), device_clock_.end());
  std::vector<double> queue_wait, service, e2e;
  for (const Job& job : jobs_) {
    rep.jobs.push_back(snapshotLocked(job));
    const JobStatus& s = rep.jobs.back();
    switch (s.state) {
      case JobState::kDone:
        ++rep.jobs_done;
        if (s.converged) ++rep.jobs_converged;
        break;
      case JobState::kCancelled: ++rep.jobs_cancelled; break;
      case JobState::kFailed: ++rep.jobs_failed; break;
      case JobState::kDeadlineMissed: ++rep.jobs_deadline_missed; break;
      default: break;
    }
    queue_wait.push_back(s.queue_wait_host_s);
    e2e.push_back(s.e2e_host_s);
    if (s.dispatch_seq >= 0) {
      service.push_back(s.service_host_s);
      rep.modeled_device_seconds_total += s.modeled_seconds;
    }
  }
  rep.queue_wait_host_s = summarize(std::move(queue_wait));
  rep.service_host_s = summarize(std::move(service));
  rep.e2e_host_s = summarize(std::move(e2e));
  rep.host_seconds = lifetime_.seconds();
  rep.jobs_per_host_second =
      rep.host_seconds > 0.0 ? double(rep.jobs_done) / rep.host_seconds : 0.0;

  drained_.store(true, std::memory_order_release);
  return report_;
}

std::string Dispatcher::reportJson() const {
  MBIR_CHECK_MSG(drained(), "reportJson() before drain()");
  const SvcReport& rep = report_;
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kReportSchema);
  w.kv("simd", resolveSimdOps(SimdMode::kDefault).name);
  w.kv("num_devices", rep.num_devices);
  w.kv("queue_capacity", rep.queue_capacity);
  w.kv("jobs_submitted", std::int64_t(rep.jobs_submitted));
  w.kv("admission_rejected", std::int64_t(rep.admission_rejected));
  w.kv("jobs_done", std::int64_t(rep.jobs_done));
  w.kv("jobs_converged", std::int64_t(rep.jobs_converged));
  w.kv("jobs_cancelled", std::int64_t(rep.jobs_cancelled));
  w.kv("jobs_failed", std::int64_t(rep.jobs_failed));
  w.kv("jobs_deadline_missed", std::int64_t(rep.jobs_deadline_missed));
  w.kv("queue_depth_max", rep.queue_depth_max);
  w.kv("host_seconds", rep.host_seconds);
  w.kv("jobs_per_host_second", rep.jobs_per_host_second);
  w.key("queue_wait_host_s");
  writeDistSummary(w, rep.queue_wait_host_s);
  w.key("service_host_s");
  writeDistSummary(w, rep.service_host_s);
  w.key("e2e_host_s");
  writeDistSummary(w, rep.e2e_host_s);
  w.kv("modeled_device_seconds_total", rep.modeled_device_seconds_total);
  w.kv("makespan_modeled_s", rep.makespan_modeled_s);
  w.key("device_modeled_s").beginArray();
  for (double s : rep.device_modeled_s) w.value(s);
  w.endArray();
  w.key("jobs").beginArray();
  for (const JobStatus& s : rep.jobs) {
    w.beginObject();
    w.kv("job_id", s.job_id);
    w.kv("name", s.name);
    w.kv("state", jobStateName(s.state));
    w.kv("priority", s.priority);
    w.kv("deterministic", s.deterministic);
    if (s.deadline_ms >= 0.0) w.kv("deadline_ms", s.deadline_ms);
    w.kv("device", s.device);
    w.kv("dispatch_seq", s.dispatch_seq);
    w.kv("queue_wait_host_s", s.queue_wait_host_s);
    w.kv("service_host_s", s.service_host_s);
    w.kv("e2e_host_s", s.e2e_host_s);
    if (s.dispatch_seq >= 0) {
      w.kv("converged", s.converged);
      w.kv("equits", s.equits);
      w.kv("final_rmse_hu", s.final_rmse_hu);
      w.kv("modeled_seconds", s.modeled_seconds);
      w.kv("queue_wait_modeled_s", s.queue_wait_modeled_s);
    }
    if (!s.error.empty()) w.kv("error", s.error);
    // uint64 hashes cross the wire as hex strings: a JSON number (double)
    // only carries 53 bits exactly.
    if (s.has_image) w.kv("image_hash", hashToHex(s.image_hash));
    w.endObject();
  }
  w.endArray();
  const obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  w.endObject();
  return w.str();
}

void Dispatcher::writeReportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open svc report file: " + path);
  out << reportJson() << '\n';
  MBIR_CHECK_MSG(out.good(), "failed writing svc report: " + path);
}

}  // namespace mbir::svc
