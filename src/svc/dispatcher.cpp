#include "svc/dispatcher.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/error.h"
#include "core/hash.h"
#include "obs/json.h"
#include "sched/sharded.h"

namespace mbir::svc {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

DistSummary summarize(std::vector<double> v) {
  DistSummary s;
  s.count = v.size();
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / double(v.size());
  s.max = v.back();
  // Nearest-rank percentiles (exact order statistics, no interpolation).
  auto rank = [&](double p) {
    const std::size_t r = std::size_t(std::ceil(p * double(v.size())));
    return v[std::min(v.size() - 1, r == 0 ? 0 : r - 1)];
  };
  s.p50 = rank(0.50);
  s.p95 = rank(0.95);
  s.p99 = rank(0.99);
  return s;
}

void writeDistSummary(obs::JsonWriter& w, const DistSummary& s) {
  w.beginObject();
  w.kv("count", std::int64_t(s.count));
  w.kv("mean", s.mean);
  w.kv("max", s.max);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("p99", s.p99);
  w.endObject();
}

/// Tenant label value ("" submits land under the default tenant).
std::string tenantLabel(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

}  // namespace

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kDeadlineMissed: return "deadline_missed";
  }
  return "?";
}

bool isTerminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

Dispatcher::Dispatcher(DispatcherOptions options)
    : opt_(std::move(options)),
      flight_(opt_.num_devices, opt_.flight_capacity) {
  MBIR_CHECK_MSG(opt_.num_devices >= 1, "dispatcher needs at least one device");
  MBIR_CHECK_MSG(opt_.queue_capacity >= 1, "queue capacity must be >= 1");
  opt_.fault_plan.validate();
  {
    // FairQueue keys are the normalized labels pickAndCharge sees, so a
    // weight configured for "" (the default tenant) must land on "default".
    std::map<std::string, double> weights;
    for (const auto& [tenant, w] : opt_.tenant_weights)
      weights[tenantLabel(tenant)] = w;
    fq_.configure(weights, opt_.default_tenant_weight);
  }
  det_lane_.resize(std::size_t(opt_.num_devices));
  device_clock_.assign(std::size_t(opt_.num_devices), 0.0);
  device_running_.assign(std::size_t(opt_.num_devices), -1);
  device_failed_.assign(std::size_t(opt_.num_devices), 0);
  chaos_dev_.resize(std::size_t(opt_.num_devices));
  plan_ = opt_.fault_plan;
  watchdog_ms_ = opt_.watchdog_ms;
  if (plan_.enabled())
    injector_ = std::make_shared<const chaos::FaultInjector>(plan_);

  obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    obs::MetricsRegistry& m = rec->metrics();
    inst_.submitted = &m.counter("svc.jobs.submitted");
    inst_.rejected = &m.counter("svc.admission.rejected");
    inst_.done = &m.counter("svc.jobs.done");
    inst_.cancelled = &m.counter("svc.jobs.cancelled");
    inst_.failed = &m.counter("svc.jobs.failed");
    inst_.deadline_missed = &m.counter("svc.jobs.deadline_missed");
    inst_.queue_depth = &m.gauge("svc.queue.depth");
    inst_.queue_wait = &m.histogram("svc.queue_wait_host_s");
    inst_.service_time = &m.histogram("svc.job.service_host_s");
    inst_.e2e = &m.histogram("svc.job.e2e_host_s");
    inst_.flight_dumps = &m.counter("svc.flight.dumps");
    inst_.device_failed = &m.counter("sched.device.failed");
    inst_.migrated = &m.counter("svc.jobs.migrated");
    m.gauge("svc.devices").set(double(opt_.num_devices));
    m.gauge("svc.queue.capacity").set(double(opt_.queue_capacity));
  }
  if (rec && rec->traceOn()) {
    // Host-clock lanes: tid 0 is the control plane (submits), tid d+1 one
    // lane per device so each device's queue/job/iteration/launch spans
    // nest in their own row next to the modeled per-device processes.
    rec->trace().nameThread(int(obs::Clock::kHost), 0, "svc control", 0);
    for (int d = 0; d < opt_.num_devices; ++d) {
      rec->trace().nameProcess(tracePid(d),
                               "svc device " + std::to_string(d) + " (modeled)",
                               /*sort_index=*/tracePid(d));
      rec->trace().nameThread(int(obs::Clock::kHost), d + 1,
                              "svc device " + std::to_string(d) + " (host)",
                              /*sort_index=*/d + 1);
    }
  }

  devices_.reserve(std::size_t(opt_.num_devices));
  for (int d = 0; d < opt_.num_devices; ++d)
    devices_.emplace_back([this, d] { deviceLoop(d); });
  watchdog_ = std::thread([this] { watchdogLoop(); });
}

Dispatcher::~Dispatcher() {
  std::lock_guard drain_lock(drain_mu_);
  if (!joined_) {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
      // Hard stop: running jobs get the cooperative flag so the device
      // threads return at the next iteration boundary; queued jobs never run.
      for (Job& job : jobs_)
        if (!isTerminal(job.state)) job.cancel.store(true, std::memory_order_release);
      cv_work_.notify_all();
    }
    // Wake any run parked on a chaos channel (stalled or dead device) so
    // its device thread can unwind and exit; nothing dispatches again.
    for (chaos::DeviceChaos& ch : chaos_dev_) ch.abandon();
    for (std::thread& t : devices_) t.join();
    joined_ = true;
  }
  stopWatchdog();
}

void Dispatcher::stopWatchdog() {
  if (!watchdog_.joinable()) return;
  {
    std::lock_guard lock(mu_);
    watchdog_exit_ = true;
  }
  cv_watchdog_.notify_all();
  watchdog_.join();
}

void Dispatcher::setFaultPlan(const chaos::FaultPlan& plan, double watchdog_ms) {
  plan.validate();
  std::lock_guard lock(mu_);
  plan_ = plan;
  watchdog_ms_ = watchdog_ms;
  injector_ = plan_.enabled()
                  ? std::make_shared<const chaos::FaultInjector>(plan_)
                  : nullptr;
  cv_watchdog_.notify_all();
}

chaos::FaultPlan Dispatcher::faultPlan() const {
  std::lock_guard lock(mu_);
  return plan_;
}

double Dispatcher::watchdogMs() const {
  std::lock_guard lock(mu_);
  return watchdog_ms_;
}

SubmitOutcome Dispatcher::submit(const JobSpec& spec) {
  MBIR_CHECK_MSG(spec.problem && spec.golden, "job needs a problem and golden");
  if (spec.shards < 1) {
    SubmitOutcome out;
    out.reason = "shards must be >= 1";
    std::lock_guard lock(mu_);
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }
  if (spec.shards > 1) {
    SubmitOutcome out;
    if (spec.deterministic) {
      out.reason = "sharded jobs cannot use the deterministic lane "
                   "(round-robin single-device by contract)";
    } else {
      // Build-or-reject the slab plan at the door so a bad geometry fails
      // the submit, never the job: makeShardPlan validates slab heights
      // and the halo fit.
      try {
        shard::makeShardPlan(spec.problem->geometry().image_size, spec.shards,
                             spec.shard_halo, spec.config.gpu.seed);
      } catch (const std::exception& e) {
        out.reason = e.what();
      }
    }
    if (!out.reason.empty()) {
      std::lock_guard lock(mu_);
      ++rejected_;
      if (inst_.rejected) inst_.rejected->add();
      return out;
    }
  }
  obs::Recorder* rec = opt_.recorder;
  const bool tracing = rec && rec->traceOn();
  const double submit_t0_us = tracing ? rec->trace().nowHostUs() : 0.0;
  SubmitOutcome out;
  std::lock_guard lock(mu_);
  if (!accepting_) {
    out.reason = "service is draining";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }
  // A WAL-recovery resubmit (recoveries > 0) bypasses the capacity check:
  // the job was admitted and acknowledged durable by a previous server
  // incarnation, so rejecting it now would break exactly-once completion.
  if (spec.recoveries == 0 && queued_ >= opt_.queue_capacity) {
    out.reason = "admission queue full (" +
                 std::to_string(opt_.queue_capacity) + " queued)";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }
  if (devices_failed_ >= std::uint64_t(opt_.num_devices)) {
    out.reason = "no surviving devices (all " +
                 std::to_string(opt_.num_devices) + " failed)";
    ++rejected_;
    if (inst_.rejected) inst_.rejected->add();
    return out;
  }

  const int id = int(jobs_.size());
  Job& job = jobs_.emplace_back();
  job.id = id;
  job.spec = spec;
  job.admit_tp = std::chrono::steady_clock::now();
  if (spec.deadline_ms >= 0.0) {
    job.has_deadline = true;
    job.deadline_tp =
        job.admit_tp + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(spec.deadline_ms));
  }
  job.result.job_id = id;
  job.result.name =
      spec.name.empty() ? "job" + std::to_string(id) : spec.name;
  // The job's span context: identity now, device/lane at dispatch. The
  // flight sink is unconditional (the ring is always on); trace fields
  // only matter when a trace recorder exists.
  job.span.job_id = id;
  job.span.tenant = spec.tenant;
  job.span.job_name = job.result.name;
  job.span.submit_host_us = submit_t0_us;
  job.span.flight = &flight_;
  if (spec.deterministic) {
    job.det_seq = det_count_++;
    int lane = job.det_seq % opt_.num_devices;
    if (device_failed_[std::size_t(lane)]) {
      // The natural lane is dead; re-key onto the survivors (non-empty:
      // all-failed submits were rejected above). Deterministic given the
      // same failure state — and results never depend on the device.
      const std::vector<int> survivors = survivorsLocked();
      lane = survivors[std::size_t(job.det_seq) % survivors.size()];
    }
    det_lane_[std::size_t(lane)].push_back(id);
  } else {
    prio_pending_.push_back(id);
  }
  ++queued_;
  ++accepted_;
  if (spec.recoveries > 0) {
    ++jobs_recovered_;
    if (rec && rec->metricsOn())
      rec->metrics().counter("svc.jobs.recovered").add();
  }
  queue_depth_max_ = std::max(queue_depth_max_, queued_);
  if (inst_.submitted) inst_.submitted->add();
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  cv_work_.notify_all();

  {
    obs::FlightEvent fev;
    fev.job_id = id;
    fev.kind = "admit";
    fev.detail = tenantLabel(spec.tenant) + ":" + job.result.name;
    fev.value = double(spec.priority);
    flight_.record(obs::FlightRecorder::kControlLane, std::move(fev));
  }
  if (tracing) {
    obs::TraceEvent ev;
    ev.name = "svc.submit";
    ev.cat = "svc";
    ev.clock = obs::Clock::kHost;
    ev.ts_us = submit_t0_us;
    ev.dur_us = rec->trace().nowHostUs() - submit_t0_us;
    ev.tid = 0;  // control lane
    obs::tagSpan(ev, job.span);
    ev.num_args.emplace_back("priority", double(spec.priority));
    rec->trace().record(std::move(ev));
  }

  out.accepted = true;
  out.job_id = id;
  return out;
}

SubmitOutcome Dispatcher::submitCached(const JobSpec& spec,
                                       const Image2D& image,
                                       const CachedResult& cached) {
  obs::Recorder* rec = opt_.recorder;
  const bool tracing = rec && rec->traceOn();
  const double submit_t0_us = tracing ? rec->trace().nowHostUs() : 0.0;
  SubmitOutcome out;
  {
    std::lock_guard lock(mu_);
    if (!accepting_) {
      out.reason = "service is draining";
      ++rejected_;
      if (inst_.rejected) inst_.rejected->add();
      return out;
    }
    const int id = int(jobs_.size());
    Job& job = jobs_.emplace_back();
    job.id = id;
    job.spec = spec;
    job.admit_tp = std::chrono::steady_clock::now();
    job.result.job_id = id;
    job.result.name =
        spec.name.empty() ? "job" + std::to_string(id) : spec.name;
    job.span.job_id = id;
    job.span.tenant = spec.tenant;
    job.span.job_name = job.result.name;
    job.span.submit_host_us = submit_t0_us;
    job.span.flight = &flight_;
    // Born terminal: the cached image IS the result. No queue slot, no
    // dispatch (dispatch_seq stays -1), no device time — so a hit cannot
    // be rejected for capacity and never perturbs the WFQ shares.
    job.cache_hit = true;
    job.result.run.image = image;
    job.result.run.converged = cached.converged;
    job.result.run.equits = cached.equits;
    job.result.run.final_rmse_hu = cached.final_rmse_hu;
    job.result.run.modeled_seconds = cached.modeled_seconds;
    job.has_image = true;
    job.image_hash = cached.image_hash;
    job.e2e_host_s = 0.0;
    job.state = JobState::kDone;
    ++accepted_;
    ++cache_hits_;
    if (inst_.submitted) inst_.submitted->add();
    {
      obs::FlightEvent fev;
      fev.job_id = id;
      fev.kind = "cache_hit";
      fev.detail = tenantLabel(spec.tenant) + ":" + job.result.name;
      fev.value = cached.equits;  // the device work the hit saved
      flight_.record(obs::FlightRecorder::kControlLane, std::move(fev));
    }
    if (rec && rec->metricsOn())
      rec->metrics()
          .counter("svc.cache.hits", {{"tenant", tenantLabel(spec.tenant)}})
          .add();
    if (tracing) {
      obs::TraceEvent ev;
      ev.name = "svc.submit";
      ev.cat = "svc";
      ev.clock = obs::Clock::kHost;
      ev.ts_us = submit_t0_us;
      ev.dur_us = rec->trace().nowHostUs() - submit_t0_us;
      ev.tid = 0;  // control lane
      obs::tagSpan(ev, job.span);
      ev.num_args.emplace_back("cache_hit", 1.0);
      rec->trace().record(std::move(ev));
    }
    noteTerminalLocked(job);
    out.accepted = true;
    out.job_id = id;
    out.cache_hit = true;
  }
  // noteTerminalLocked may have queued an on_terminal notification.
  flushFlightDumps();
  return out;
}

bool Dispatcher::cancel(int job_id) {
  {
    std::lock_guard lock(mu_);
    if (job_id < 0 || job_id >= int(jobs_.size())) return false;
    Job& job = jobs_[std::size_t(job_id)];
    if (isTerminal(job.state)) return false;
    if (job.state == JobState::kQueued && !job.spec.deterministic) {
      // Drop it from the pending set right now, freeing its admission slot.
      prio_pending_.erase(
          std::find(prio_pending_.begin(), prio_pending_.end(), job_id));
      finalizeQueuedLocked(job, JobState::kCancelled);
    } else {
      // Running jobs stop cooperatively; queued deterministic-lane jobs
      // keep their schedule slot and run with the flag set
      // (BatchScheduler parity).
      job.cancel.store(true, std::memory_order_release);
    }
  }
  // A queued-cancel finalization may have requested a flight dump; write
  // it here, off the dispatcher lock.
  flushFlightDumps();
  return true;
}

bool Dispatcher::knownJob(int job_id) const {
  std::lock_guard lock(mu_);
  return job_id >= 0 && job_id < int(jobs_.size());
}

JobStatus Dispatcher::status(int job_id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  return snapshotLocked(jobs_[std::size_t(job_id)]);
}

Dispatcher::Stats Dispatcher::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.accepting = accepting_;
  s.queued = queued_;
  s.running = running_;
  s.submitted = accepted_;
  s.rejected = rejected_;
  s.finished = finished_;
  return s;
}

JobStatus Dispatcher::waitTerminal(int job_id) const {
  std::unique_lock lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  const Job& job = jobs_[std::size_t(job_id)];
  cv_done_.wait(lock, [&] { return isTerminal(job.state); });
  return snapshotLocked(job);
}

std::optional<Image2D> Dispatcher::image(int job_id) const {
  std::lock_guard lock(mu_);
  MBIR_CHECK_MSG(job_id >= 0 && job_id < int(jobs_.size()),
                 "unknown job id " << job_id);
  const Job& job = jobs_[std::size_t(job_id)];
  // The run writes job.result without the lock; only a terminal state
  // (published under the lock) guarantees those writes are visible here.
  if (!isTerminal(job.state) || !job.has_image) return std::nullopt;
  return job.result.run.image;
}

Dispatcher::Job* Dispatcher::pickJobLocked(int device) {
  // A running gang owns every device: nothing else dispatches until its
  // leader clears the flag.
  if (gang_active_) return nullptr;
  const auto now = std::chrono::steady_clock::now();
  auto transition = [&](Job& job) {
    if (job.spec.shards > 1) gang_active_ = true;
    job.state = JobState::kRunning;
    job.dispatch_seq = dispatch_count_++;
    job.queue_wait_host_s = secondsBetween(job.admit_tp, now);
    job.device = device;
    // Complete the span context before the device thread (this thread)
    // reads it off-lock: which device, which trace lanes.
    job.span.device = device;
    job.span.trace_pid = tracePid(device);
    job.span.host_tid = device + 1;
    device_running_[std::size_t(device)] = job.id;
    --queued_;
    ++running_;
    if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
    {
      obs::FlightEvent fev;
      fev.job_id = job.id;
      fev.kind = "dispatch";
      fev.detail = tenantLabel(job.spec.tenant) + ":" + job.result.name;
      fev.value = job.queue_wait_host_s;
      flight_.record(obs::FlightRecorder::deviceLane(device), std::move(fev));
    }
    obs::Recorder* rec = opt_.recorder;
    if (rec && rec->traceOn()) {
      // The queue wait as an explicit span on the device's host lane,
      // recorded retroactively now that the device is known: it starts at
      // admission and ends here, so submit → queue → job read as one
      // nested chain per job in the trace.
      obs::TraceEvent ev;
      ev.name = "svc.queue";
      ev.cat = "svc";
      ev.clock = obs::Clock::kHost;
      ev.ts_us = job.span.submit_host_us;
      ev.dur_us = rec->trace().nowHostUs() - job.span.submit_host_us;
      ev.tid = job.span.host_tid;
      obs::tagSpan(ev, job.span);
      ev.num_args.emplace_back("queue_wait_host_s", job.queue_wait_host_s);
      ev.num_args.emplace_back("priority", double(job.spec.priority));
      rec->trace().record(std::move(ev));
    }
    // Peers idle in drain mode only exit once the queue is empty — tell them.
    if (draining_ && queued_ == 0) cv_work_.notify_all();
    return &job;
  };

  // Deterministic lane first: this device's det jobs, strictly in
  // submission order (deadlines/priorities do not apply in this lane).
  std::deque<int>& lane = det_lane_[std::size_t(device)];
  if (!lane.empty()) {
    Job& job = jobs_[std::size_t(lane.front())];
    lane.pop_front();
    return transition(job);
  }

  // Priority lane: fail expired jobs fast, then weighted fair queuing
  // across tenants (store/wfq.h) — the backlogged tenant with the lowest
  // virtual start time wins the slot — then the highest priority within
  // that tenant (ties to the earliest submission). With one tenant, or all
  // weights equal and one tenant backlogged, this degenerates to the plain
  // max-priority scan.
  std::vector<Job*> eligible;
  for (std::size_t i = 0; i < prio_pending_.size();) {
    Job& job = jobs_[std::size_t(prio_pending_[i])];
    if (job.has_deadline && now >= job.deadline_tp) {
      prio_pending_.erase(prio_pending_.begin() + long(i));
      finalizeQueuedLocked(job, JobState::kDeadlineMissed);
      continue;
    }
    // A sharded job needs every device idle — while anything runs it stays
    // queued (skipped, not removed) and lower-priority singles may pass it.
    if (job.spec.shards > 1 && running_ > 0) {
      ++i;
      continue;
    }
    eligible.push_back(&job);
    ++i;
  }
  if (eligible.empty()) return nullptr;
  // Distinct backlogged tenants in first-seen (submission) order, so the
  // WFQ tiebreak — "first candidate listed" — is deterministic.
  std::vector<std::string> tenants;
  for (const Job* j : eligible) {
    const std::string t = tenantLabel(j->spec.tenant);
    if (std::find(tenants.begin(), tenants.end(), t) == tenants.end())
      tenants.push_back(t);
  }
  const std::string winner = tenants[fq_.pickAndCharge(tenants)];
  Job* best = nullptr;
  for (Job* j : eligible) {
    if (tenantLabel(j->spec.tenant) != winner) continue;
    if (!best || j->spec.priority > best->spec.priority) best = j;
  }
  prio_pending_.erase(
      std::find(prio_pending_.begin(), prio_pending_.end(), best->id));
  return transition(*best);
}

void Dispatcher::finalizeQueuedLocked(Job& job, JobState state) {
  job.state = state;
  const auto now = std::chrono::steady_clock::now();
  job.queue_wait_host_s = secondsBetween(job.admit_tp, now);
  job.e2e_host_s = job.queue_wait_host_s;
  --queued_;
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  if (draining_ && queued_ == 0) cv_work_.notify_all();
  noteTerminalLocked(job);
}

void Dispatcher::noteTerminalLocked(Job& job) {
  ++finished_;
  // device may be -1 for a once-dispatched job that was migrated off a
  // failed device and finalized from the queue.
  if (job.dispatch_seq >= 0 && job.device >= 0)
    device_running_[std::size_t(job.device)] = -1;
  switch (job.state) {
    case JobState::kDone:
      if (inst_.done) inst_.done->add();
      break;
    case JobState::kCancelled:
      if (inst_.cancelled) inst_.cancelled->add();
      requestFlightDumpLocked(job);
      break;
    case JobState::kFailed:
      if (inst_.failed) inst_.failed->add();
      requestFlightDumpLocked(job);
      break;
    case JobState::kDeadlineMissed:
      if (inst_.deadline_missed) inst_.deadline_missed->add();
      requestFlightDumpLocked(job);
      break;
    default:
      break;
  }
  if (inst_.queue_wait) inst_.queue_wait->observe(job.queue_wait_host_s);
  if (inst_.e2e) inst_.e2e->observe(job.e2e_host_s);
  if (job.dispatch_seq >= 0 && inst_.service_time)
    inst_.service_time->observe(job.service_host_s);
  // run.warm_started is written off-lock during the run and published by
  // this terminal transition — first (and only) safe read.
  if (job.dispatch_seq >= 0 && job.result.run.warm_started) {
    ++warm_starts_;
    obs::Recorder* wrec = opt_.recorder;
    if (wrec && wrec->metricsOn())
      wrec->metrics()
          .counter("svc.cache.warm_starts",
                   {{"tenant", tenantLabel(job.spec.tenant)}})
          .add();
  }
  obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    // Per-tenant outcome + latency, labeled — the wire `stats` verb and
    // svc_report surface these next to the aggregate svc.* series.
    const std::string tenant = tenantLabel(job.spec.tenant);
    if (job.state == JobState::kDone)
      rec->metrics().counter("svc.jobs.done", {{"tenant", tenant}}).add();
    rec->metrics()
        .histogram("svc.job.e2e_host_s", {{"tenant", tenant}})
        .observe(job.e2e_host_s);
  }
  {
    // Terminal flight event on the lane that owned the job (control lane
    // when it never dispatched).
    obs::FlightEvent fev;
    fev.job_id = job.id;
    fev.kind = jobStateName(job.state);
    fev.detail = job.result.error.empty() ? tenantLabel(job.spec.tenant)
                                          : job.result.error;
    fev.value = job.e2e_host_s;
    const int lane = job.dispatch_seq >= 0 && job.device >= 0
                         ? obs::FlightRecorder::deviceLane(job.device)
                         : obs::FlightRecorder::kControlLane;
    flight_.record(lane, std::move(fev));
  }
  // Hand the terminal snapshot to the server (WAL terminal record, cache
  // insert) — invoked later, off the lock, by flushFlightDumps().
  if (opt_.on_terminal) pending_terminal_.push_back(snapshotLocked(job));
  // In drain mode device threads only exit once everything is terminal
  // (a migration can put work back in the queue after it looked empty).
  if (draining_ && queued_ == 0 && running_ == 0) cv_work_.notify_all();
  cv_done_.notify_all();
}

void Dispatcher::requestFlightDumpLocked(const Job& job) {
  const std::string reason = jobStateName(job.state);
  pending_flight_.emplace_back(reason + "_job" + std::to_string(job.id),
                               reason + " job " + std::to_string(job.id));
  ++flight_dumps_;
  if (inst_.flight_dumps) inst_.flight_dumps->add();
}

void Dispatcher::flushFlightDumps() {
  std::vector<std::pair<std::string, std::string>> pending;
  std::vector<JobStatus> terminal;
  {
    std::lock_guard lock(mu_);
    pending.swap(pending_flight_);
    terminal.swap(pending_terminal_);
  }
  if (!opt_.flight_dir.empty())
    for (const auto& [stem, reason] : pending)
      flight_.writeFile(opt_.flight_dir + "/flight_" + stem + ".json", reason);
  for (const JobStatus& s : terminal) opt_.on_terminal(s);
}

std::vector<int> Dispatcher::survivorsLocked() const {
  std::vector<int> alive;
  for (int d = 0; d < opt_.num_devices; ++d)
    if (!device_failed_[std::size_t(d)]) alive.push_back(d);
  return alive;
}

void Dispatcher::requeueLocked(Job& job) {
  const std::vector<int> survivors = survivorsLocked();
  if (survivors.empty()) {
    // Nothing left to run it on: the migration dead-ends as a failure so
    // the job still reaches exactly one terminal state and drain() cannot
    // hang waiting for it.
    job.result.error = "no surviving devices";
    job.state = JobState::kFailed;
    job.e2e_host_s =
        secondsBetween(job.admit_tp, std::chrono::steady_clock::now());
    job.device = -1;
    noteTerminalLocked(job);
    return;
  }
  job.state = JobState::kQueued;
  job.device = -1;
  ++queued_;
  queue_depth_max_ = std::max(queue_depth_max_, queued_);
  if (inst_.queue_depth) inst_.queue_depth->set(double(queued_));
  if (job.spec.deterministic) {
    // Survivor choice is keyed by the det sequence number, so the same
    // failure sequence re-lanes the same way on every replay. Appending
    // keeps each lane in submission order among migrated jobs.
    det_lane_[std::size_t(survivors[std::size_t(job.det_seq) %
                                    survivors.size()])]
        .push_back(job.id);
  } else {
    prio_pending_.push_back(job.id);
  }
  cv_work_.notify_all();
}

void Dispatcher::migrateLocked(Job& job, int from_device) {
  ++job.migrations;
  ++jobs_migrated_;
  if (inst_.migrated) inst_.migrated->add();
  {
    obs::FlightEvent fev;
    fev.job_id = job.id;
    fev.kind = "migrate";
    fev.detail = "off failed device " + std::to_string(from_device);
    fev.value = double(job.migrations);
    flight_.record(obs::FlightRecorder::deviceLane(from_device),
                   std::move(fev));
  }
}

void Dispatcher::declareDeviceFailedLocked(int device,
                                           const std::string& reason) {
  if (device_failed_[std::size_t(device)]) return;
  device_failed_[std::size_t(device)] = 1;
  ++devices_failed_;
  if (inst_.device_failed) inst_.device_failed->add();
  {
    obs::FlightEvent fev;
    fev.job_id = device_running_[std::size_t(device)];  // -1 when idle
    fev.kind = "device_failed";
    fev.detail = reason;
    fev.value = double(device);
    flight_.record(obs::FlightRecorder::deviceLane(device), std::move(fev));
  }
  pending_flight_.emplace_back("device_failed_dev" + std::to_string(device),
                               "device " + std::to_string(device) +
                                   " failed: " + reason);
  ++flight_dumps_;
  if (inst_.flight_dumps) inst_.flight_dumps->add();

  // Re-lane the dead device's queued deterministic jobs onto the survivors
  // in submission order. Its running job (if any) is migrated by the device
  // thread itself once the abandoned run unwinds — the run owns job.result.
  std::deque<int> lane;
  lane.swap(det_lane_[std::size_t(device)]);
  for (int id : lane) {
    Job& job = jobs_[std::size_t(id)];
    migrateLocked(job, device);
    --queued_;  // requeueLocked re-adds (or finalizes via the queued path)
    requeueLocked(job);
  }
  if (survivorsLocked().empty()) {
    // Total outage: nothing queued can ever run. Fail the priority lane
    // out so every job still terminates and drain() returns.
    std::vector<int> pend;
    pend.swap(prio_pending_);
    for (int id : pend) {
      Job& job = jobs_[std::size_t(id)];
      job.result.error = "no surviving devices";
      finalizeQueuedLocked(job, JobState::kFailed);
    }
  }
  // Wake a run parked on this device (stall/death) and any device thread
  // waiting for work.
  chaos_dev_[std::size_t(device)].abandon();
  cv_work_.notify_all();
}

void Dispatcher::watchdogLoop() {
  std::unique_lock lock(mu_);
  const int D = opt_.num_devices;
  std::vector<std::uint64_t> last_beat(std::size_t(D), 0);
  std::vector<std::chrono::steady_clock::time_point> last_progress(
      std::size_t(D), std::chrono::steady_clock::now());
  while (!stop_ && !watchdog_exit_) {
    if (watchdog_ms_ <= 0.0) {
      // Disarmed: sleep until a plan install arms us (or teardown).
      cv_watchdog_.wait(lock);
      const auto now = std::chrono::steady_clock::now();
      for (auto& t : last_progress) t = now;
      continue;
    }
    cv_watchdog_.wait_for(
        lock, std::chrono::duration<double, std::milli>(
                  std::max(5.0, watchdog_ms_ / 4.0)));
    if (stop_ || watchdog_exit_) break;
    const auto now = std::chrono::steady_clock::now();
    for (int d = 0; d < D; ++d) {
      if (device_failed_[std::size_t(d)]) continue;
      const int running = device_running_[std::size_t(d)];
      const std::uint64_t beats = chaos_dev_[std::size_t(d)].beats();
      // Only a device running a chaos-monitored (heartbeating) job can go
      // silent; idle devices and unmonitored runs always count as live.
      if (running < 0 || !jobs_[std::size_t(running)].hooked ||
          beats != last_beat[std::size_t(d)]) {
        last_beat[std::size_t(d)] = beats;
        last_progress[std::size_t(d)] = now;
        continue;
      }
      const double silent_ms =
          std::chrono::duration<double, std::milli>(
              now - last_progress[std::size_t(d)])
              .count();
      if (silent_ms > watchdog_ms_)
        declareDeviceFailedLocked(
            d, "watchdog: no heartbeat for " +
                   std::to_string(int(silent_ms)) + " ms (limit " +
                   std::to_string(int(watchdog_ms_)) + " ms)");
    }
  }
}

void Dispatcher::deviceLoop(int device) {
  sched::DeviceRunContext ctx;
  ctx.recorder = opt_.recorder;
  ctx.host_pool = opt_.host_pool;
  ctx.device = device;
  ctx.trace_pid = tracePid(device);
  ctx.span_prefix = "svc";

  while (true) {
    Job* job = nullptr;
    chaos::JobFault fault;
    // Start clock and gang width are resolved under the lock at pick time
    // (a gang's clock is a property of every device, not just this one).
    double start_clock = 0.0;
    int gang_devices = 1;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] {
        if (stop_ || device_failed_[std::size_t(device)]) return true;
        job = pickJobLocked(device);
        if (job) return true;
        // A migration can put work back after the queue looked empty, so
        // drain-mode exit also requires that nothing is still running.
        return draining_ && queued_ == 0 && running_ == 0;
      });
      if (stop_ || device_failed_[std::size_t(device)] || !job) break;
      // Resolve this run's fault while the plan cannot change under us.
      // Forced per-job faults (spec.fault) fire anywhere; plan-decided
      // faults respect the plan's target-device set. One fault per job:
      // a migrated job's re-run is clean, so migration always converges.
      fault = job->spec.fault;
      if (fault.none() && injector_ != nullptr &&
          plan_.targetsDevice(device))
        fault = injector_->jobFault(job->id);
      if (job->fault_fired) fault = chaos::JobFault{};
      if ((fault.kind == chaos::FaultKind::kStall ||
           fault.kind == chaos::FaultKind::kDeath) &&
          watchdog_ms_ <= 0.0)
        fault = chaos::JobFault{};  // no watchdog to notice: would hang forever
      // The watchdog only monitors runs that carry a heartbeating hook.
      job->hooked = injector_ != nullptr || !job->spec.fault.none();
      if (job->spec.shards > 1) {
        // The gang occupies every surviving device: it starts when the
        // slowest of them is free and advances all of their clocks.
        int survivors = 0;
        for (int d2 = 0; d2 < opt_.num_devices; ++d2) {
          if (device_failed_[std::size_t(d2)]) continue;
          ++survivors;
          start_clock = std::max(start_clock, device_clock_[std::size_t(d2)]);
        }
        gang_devices = std::min(job->spec.shards, survivors);
      } else {
        start_clock = device_clock_[std::size_t(device)];
      }
    }
    // Deadline-miss finalizations inside pickJobLocked may have requested
    // dumps; write them before the (long) run, off the lock.
    flushFlightDumps();

    if (fault.kind == chaos::FaultKind::kDeath) {
      // The device dies before the kernel ever starts: no heartbeats, so
      // the watchdog declares it failed and abandon() releases us; the job
      // migrates untouched to a survivor.
      chaos_dev_[std::size_t(device)].waitAbandoned();
      {
        std::lock_guard lock(mu_);
        job->fault_fired = true;
        if (job->spec.shards > 1) gang_active_ = false;
        device_running_[std::size_t(device)] = -1;
        --running_;
        migrateLocked(*job, device);
        requeueLocked(*job);
      }
      flushFlightDumps();
      break;  // this device is gone (or the dispatcher is tearing down)
    }

    const WallTimer service_wall;
    chaos::JobFaultHook hook(fault, device, job->id,
                             &chaos_dev_[std::size_t(device)]);
    ctx.span = &job->span;
    ctx.fault_hook = job->hooked ? &hook : nullptr;
    double clock_after;
    if (job->spec.shards > 1) {
      // One logical job across the gang. The plan was validated at submit
      // with these exact parameters, so this rebuild cannot throw.
      shard::ShardConfig sc;
      sc.plan = shard::makeShardPlan(job->spec.problem->geometry().image_size,
                                     job->spec.shards, job->spec.shard_halo,
                                     job->spec.config.gpu.seed);
      sc.devices = gang_devices;
      sc.base = job->spec.config;
      clock_after = sched::runShardedJobOnDevices(
          ctx, *job->spec.problem, *job->spec.golden, sc, job->cancel,
          start_clock, job->result);
    } else {
      clock_after = sched::runJobOnDevice(ctx, *job->spec.problem,
                                          *job->spec.golden, job->spec.config,
                                          job->cancel, start_clock,
                                          job->result);
    }
    ctx.span = nullptr;
    ctx.fault_hook = nullptr;

    bool device_gone = false;
    {
      std::lock_guard lock(mu_);
      if (hook.fired()) job->fault_fired = true;
      device_gone = device_failed_[std::size_t(device)] != 0;
      if (job->spec.shards > 1) {
        gang_active_ = false;
        cv_work_.notify_all();  // peers idled by the gang can pick again
      }
      if (device_gone && hook.stalled()) {
        // The run froze mid-kernel, the watchdog declared the device dead,
        // and abandon() unwound it via DeviceLost: the outcome is void.
        // Reset the result so the survivor's re-run starts clean. For a
        // sharded job the WHOLE logical job is requeued — a gang member
        // lost mid-halo-exchange can never leave a torn partial image.
        const std::string name = job->result.name;
        job->result = sched::JobResult{};
        job->result.job_id = job->id;
        job->result.name = name;
        job->has_image = false;
        job->image_hash = 0;
        device_running_[std::size_t(device)] = -1;
        --running_;
        migrateLocked(*job, device);
        requeueLocked(*job);
      } else {
        if (job->spec.shards > 1) {
          // The gang ends synchronized: every surviving device's clock
          // advances to the same post-job time.
          for (int d2 = 0; d2 < opt_.num_devices; ++d2)
            if (!device_failed_[std::size_t(d2)])
              device_clock_[std::size_t(d2)] = clock_after;
        } else {
          device_clock_[std::size_t(device)] = clock_after;
        }
        job->service_host_s = service_wall.seconds();
        job->e2e_host_s = job->queue_wait_host_s + job->service_host_s;
        const sched::JobResult& r = job->result;
        if (!r.failed && r.run.image.numVoxels() > 0) {
          job->has_image = true;
          job->image_hash = fnv1a64(r.run.image.flat());
        }
        job->state = r.failed      ? JobState::kFailed
                     : r.cancelled ? JobState::kCancelled
                                   : JobState::kDone;
        --running_;
        noteTerminalLocked(*job);
      }
    }
    flushFlightDumps();
    if (device_gone) break;
  }
  flushFlightDumps();
}

JobStatus Dispatcher::snapshotLocked(const Job& job) const {
  JobStatus s;
  s.job_id = job.id;
  s.state = job.state;
  s.name = job.result.name;
  s.tenant = job.spec.tenant;
  s.priority = job.spec.priority;
  s.deterministic = job.spec.deterministic;
  s.deadline_ms = job.spec.deadline_ms;
  s.shards = job.spec.shards;
  s.device = job.device;
  s.dispatch_seq = job.dispatch_seq;
  s.queue_wait_host_s = job.queue_wait_host_s;
  s.service_host_s = job.service_host_s;
  s.e2e_host_s = job.e2e_host_s;
  s.migrations = job.migrations;
  s.recoveries = job.spec.recoveries;
  s.cache_hit = job.cache_hit;
  s.warm_start = job.spec.warm_start;
  if (isTerminal(job.state)) {
    // The error is set under the lock even for jobs that never dispatched
    // (queue finalizations: deadline misses, dead-ended migrations).
    s.error = job.result.error;
  }
  if (isTerminal(job.state) && (job.dispatch_seq >= 0 || job.cache_hit)) {
    // Run-outcome fields are written off-lock during the run; they are
    // published by the terminal-state transition (which holds the lock).
    // Cache-hit jobs never ran, but carry the cached outcome in the same
    // fields (set under the lock in submitCached).
    s.converged = job.result.run.converged;
    s.equits = job.result.run.equits;
    s.final_rmse_hu = job.result.run.final_rmse_hu;
    s.modeled_seconds = job.result.run.modeled_seconds;
    s.queue_wait_modeled_s = job.result.queue_wait_modeled_s;
    s.image_hash = job.image_hash;
    s.has_image = job.has_image;
  }
  return s;
}

Dispatcher::LiveStats Dispatcher::liveStats() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mu_);
  LiveStats s;
  s.accepting = accepting_;
  s.draining = draining_;
  s.uptime_host_s = lifetime_.seconds();
  s.num_devices = opt_.num_devices;
  s.queue_capacity = opt_.queue_capacity;
  s.queued = queued_;
  s.running = running_;
  s.submitted = accepted_;
  s.rejected = rejected_;
  s.finished = finished_;
  s.chaos_enabled = injector_ != nullptr;
  s.watchdog_ms = watchdog_ms_;
  s.devices_failed = devices_failed_;
  s.jobs_migrated = jobs_migrated_;
  s.cache_hits = cache_hits_;
  s.warm_starts = warm_starts_;
  s.jobs_recovered = jobs_recovered_;
  s.tenant_shares = fq_.snapshot();
  for (int id : prio_pending_)
    ++s.queue_depth_by_priority[jobs_[std::size_t(id)].spec.priority];
  s.devices.reserve(std::size_t(opt_.num_devices));
  for (int d = 0; d < opt_.num_devices; ++d) {
    LiveDevice dev;
    dev.device = d;
    dev.running_job = device_running_[std::size_t(d)];
    dev.busy = dev.running_job >= 0;
    dev.failed = device_failed_[std::size_t(d)] != 0;
    dev.modeled_s = device_clock_[std::size_t(d)];
    dev.det_lane_depth = int(det_lane_[std::size_t(d)].size());
    s.devices.push_back(std::move(dev));
  }
  for (const Job& job : jobs_) {
    if (isTerminal(job.state)) continue;
    LiveJob lj;
    lj.job_id = job.id;
    lj.state = job.state;
    lj.name = job.result.name;
    lj.tenant = job.spec.tenant;
    lj.priority = job.spec.priority;
    lj.deterministic = job.spec.deterministic;
    lj.device = job.state == JobState::kRunning ? job.device : -1;
    lj.age_host_s = secondsBetween(job.admit_tp, now);
    lj.has_deadline = job.has_deadline;
    if (job.has_deadline)
      lj.deadline_remaining_ms =
          std::chrono::duration<double, std::milli>(job.deadline_tp - now)
              .count();
    s.in_flight.push_back(std::move(lj));
  }
  s.flight_events = flight_.totalRecorded();
  s.flight_dumps = flight_dumps_;
  return s;
}

std::string Dispatcher::liveStatsJson() const {
  const LiveStats s = liveStats();
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kStatsSchema);
  w.kv("accepting", s.accepting);
  w.kv("draining", s.draining);
  w.kv("uptime_host_s", s.uptime_host_s);
  w.kv("num_devices", s.num_devices);
  w.kv("queue_capacity", s.queue_capacity);
  w.kv("queued", s.queued);
  w.kv("running", s.running);
  w.kv("submitted", s.submitted);
  w.kv("rejected", s.rejected);
  w.kv("finished", s.finished);
  w.key("queue_depth_by_priority").beginObject();
  for (const auto& [prio, n] : s.queue_depth_by_priority)
    w.kv(std::to_string(prio), std::int64_t(n));
  w.endObject();
  w.key("devices").beginArray();
  for (const LiveDevice& d : s.devices) {
    w.beginObject();
    w.kv("device", d.device);
    w.kv("busy", d.busy);
    w.kv("failed", d.failed);
    w.kv("running_job", d.running_job);
    w.kv("modeled_s", d.modeled_s);
    w.kv("det_lane_depth", d.det_lane_depth);
    w.endObject();
  }
  w.endArray();
  w.key("in_flight").beginArray();
  for (const LiveJob& j : s.in_flight) {
    w.beginObject();
    w.kv("job_id", j.job_id);
    w.kv("state", jobStateName(j.state));
    w.kv("name", j.name);
    if (!j.tenant.empty()) w.kv("tenant", j.tenant);
    w.kv("priority", j.priority);
    w.kv("deterministic", j.deterministic);
    w.kv("device", j.device);
    w.kv("age_host_s", j.age_host_s);
    if (j.has_deadline) w.kv("deadline_remaining_ms", j.deadline_remaining_ms);
    w.endObject();
  }
  w.endArray();
  w.key("flight").beginObject();
  w.kv("events_recorded", s.flight_events);
  w.kv("dumps", s.flight_dumps);
  w.endObject();
  w.key("chaos").beginObject();
  w.kv("enabled", s.chaos_enabled);
  w.kv("watchdog_ms", s.watchdog_ms);
  w.kv("devices_failed", std::int64_t(s.devices_failed));
  w.kv("jobs_migrated", std::int64_t(s.jobs_migrated));
  w.key("plan").raw(faultPlan().toJson());
  w.endObject();
  w.key("store").beginObject();
  w.kv("cache_hits", std::int64_t(s.cache_hits));
  w.kv("warm_starts", std::int64_t(s.warm_starts));
  w.kv("jobs_recovered", std::int64_t(s.jobs_recovered));
  w.key("tenants").beginArray();
  for (const store::FairQueue::Share& sh : s.tenant_shares) {
    w.beginObject();
    w.kv("tenant", sh.tenant);
    w.kv("weight", sh.weight);
    w.kv("vtime", sh.vtime);
    w.kv("served_cost", sh.served_cost);
    w.kv("picks", std::int64_t(sh.picks));
    w.endObject();
  }
  w.endArray();
  w.endObject();
  const obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  w.endObject();
  return w.str();
}

std::uint64_t Dispatcher::flightDumpCount() const {
  std::lock_guard lock(mu_);
  return flight_dumps_;
}

const SvcReport& Dispatcher::drain() {
  std::lock_guard drain_lock(drain_mu_);
  if (joined_) return report_;  // idempotent: repeat callers share the report
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    draining_ = true;
    cv_work_.notify_all();
  }
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
  }
  for (std::thread& t : devices_) t.join();
  joined_ = true;
  stopWatchdog();
  flushFlightDumps();  // anything the device threads did not get to

  // Threads are gone; every job is terminal and fully published.
  SvcReport& rep = report_;
  rep.num_devices = opt_.num_devices;
  rep.queue_capacity = opt_.queue_capacity;
  rep.jobs_submitted = accepted_;
  rep.admission_rejected = rejected_;
  rep.queue_depth_max = queue_depth_max_;
  rep.devices_failed = devices_failed_;
  rep.jobs_migrated = jobs_migrated_;
  rep.cache_hits = cache_hits_;
  rep.warm_starts = warm_starts_;
  rep.jobs_recovered = jobs_recovered_;
  for (int d = 0; d < opt_.num_devices; ++d)
    if (device_failed_[std::size_t(d)]) rep.failed_devices.push_back(d);
  rep.device_modeled_s = device_clock_;
  rep.makespan_modeled_s =
      device_clock_.empty()
          ? 0.0
          : *std::max_element(device_clock_.begin(), device_clock_.end());
  std::vector<double> queue_wait, service, e2e;
  struct TenantAgg {
    std::uint64_t submitted = 0, done = 0, cache_hits = 0, warm_starts = 0;
    std::vector<double> queue_wait, e2e;
  };
  std::map<std::string, TenantAgg> by_tenant;
  for (const Job& job : jobs_) {
    rep.jobs.push_back(snapshotLocked(job));
    const JobStatus& s = rep.jobs.back();
    switch (s.state) {
      case JobState::kDone:
        ++rep.jobs_done;
        if (s.converged) ++rep.jobs_converged;
        break;
      case JobState::kCancelled: ++rep.jobs_cancelled; break;
      case JobState::kFailed: ++rep.jobs_failed; break;
      case JobState::kDeadlineMissed: ++rep.jobs_deadline_missed; break;
      default: break;
    }
    queue_wait.push_back(s.queue_wait_host_s);
    e2e.push_back(s.e2e_host_s);
    if (s.dispatch_seq >= 0) {
      service.push_back(s.service_host_s);
      rep.modeled_device_seconds_total += s.modeled_seconds;
    }
    TenantAgg& agg = by_tenant[tenantLabel(s.tenant)];
    ++agg.submitted;
    if (s.state == JobState::kDone) ++agg.done;
    if (s.cache_hit) ++agg.cache_hits;
    if (s.warm_start && s.dispatch_seq >= 0) ++agg.warm_starts;
    agg.queue_wait.push_back(s.queue_wait_host_s);
    agg.e2e.push_back(s.e2e_host_s);
  }
  rep.queue_wait_host_s = summarize(std::move(queue_wait));
  rep.service_host_s = summarize(std::move(service));
  rep.e2e_host_s = summarize(std::move(e2e));
  rep.host_seconds = lifetime_.seconds();
  rep.jobs_per_host_second =
      rep.host_seconds > 0.0 ? double(rep.jobs_done) / rep.host_seconds : 0.0;
  // Per-tenant summary (sorted by label via the map): the WFQ acceptance
  // surface — per-tenant p99s and goodput next to the configured weight.
  for (auto& [tenant, agg] : by_tenant) {
    SvcReport::TenantSummary t;
    t.tenant = tenant;
    t.weight = fq_.weight(tenant);
    t.jobs_submitted = agg.submitted;
    t.jobs_done = agg.done;
    t.cache_hits = agg.cache_hits;
    t.warm_starts = agg.warm_starts;
    t.goodput_jobs_per_s =
        rep.host_seconds > 0.0 ? double(agg.done) / rep.host_seconds : 0.0;
    t.queue_wait_host_s = summarize(std::move(agg.queue_wait));
    t.e2e_host_s = summarize(std::move(agg.e2e));
    rep.tenants.push_back(std::move(t));
  }

  drained_.store(true, std::memory_order_release);
  return report_;
}

std::string Dispatcher::reportJson() const {
  MBIR_CHECK_MSG(drained(), "reportJson() before drain()");
  const SvcReport& rep = report_;
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kReportSchema);
  w.kv("simd", resolveSimdOps(SimdMode::kDefault).name);
  w.kv("num_devices", rep.num_devices);
  w.kv("queue_capacity", rep.queue_capacity);
  w.kv("jobs_submitted", std::int64_t(rep.jobs_submitted));
  w.kv("admission_rejected", std::int64_t(rep.admission_rejected));
  w.kv("jobs_done", std::int64_t(rep.jobs_done));
  w.kv("jobs_converged", std::int64_t(rep.jobs_converged));
  w.kv("jobs_cancelled", std::int64_t(rep.jobs_cancelled));
  w.kv("jobs_failed", std::int64_t(rep.jobs_failed));
  w.kv("jobs_deadline_missed", std::int64_t(rep.jobs_deadline_missed));
  w.kv("devices_failed", std::int64_t(rep.devices_failed));
  w.kv("jobs_migrated", std::int64_t(rep.jobs_migrated));
  w.kv("cache_hits", std::int64_t(rep.cache_hits));
  w.kv("warm_starts", std::int64_t(rep.warm_starts));
  w.kv("jobs_recovered", std::int64_t(rep.jobs_recovered));
  w.key("failed_devices").beginArray();
  for (int d : rep.failed_devices) w.value(d);
  w.endArray();
  const chaos::FaultPlan plan = faultPlan();
  w.key("chaos").beginObject();
  w.kv("enabled", plan.enabled());
  w.kv("watchdog_ms", watchdogMs());
  w.key("plan").raw(plan.toJson());
  w.endObject();
  w.kv("queue_depth_max", rep.queue_depth_max);
  w.kv("host_seconds", rep.host_seconds);
  w.kv("jobs_per_host_second", rep.jobs_per_host_second);
  w.key("queue_wait_host_s");
  writeDistSummary(w, rep.queue_wait_host_s);
  w.key("service_host_s");
  writeDistSummary(w, rep.service_host_s);
  w.key("e2e_host_s");
  writeDistSummary(w, rep.e2e_host_s);
  w.kv("modeled_device_seconds_total", rep.modeled_device_seconds_total);
  w.kv("makespan_modeled_s", rep.makespan_modeled_s);
  w.key("device_modeled_s").beginArray();
  for (double s : rep.device_modeled_s) w.value(s);
  w.endArray();
  w.key("tenants").beginArray();
  for (const SvcReport::TenantSummary& t : rep.tenants) {
    w.beginObject();
    w.kv("tenant", t.tenant);
    w.kv("weight", t.weight);
    w.kv("jobs_submitted", std::int64_t(t.jobs_submitted));
    w.kv("jobs_done", std::int64_t(t.jobs_done));
    w.kv("cache_hits", std::int64_t(t.cache_hits));
    w.kv("warm_starts", std::int64_t(t.warm_starts));
    w.kv("goodput_jobs_per_s", t.goodput_jobs_per_s);
    w.key("queue_wait_host_s");
    writeDistSummary(w, t.queue_wait_host_s);
    w.key("e2e_host_s");
    writeDistSummary(w, t.e2e_host_s);
    w.endObject();
  }
  w.endArray();
  w.key("jobs").beginArray();
  for (const JobStatus& s : rep.jobs) {
    w.beginObject();
    w.kv("job_id", s.job_id);
    w.kv("name", s.name);
    if (!s.tenant.empty()) w.kv("tenant", s.tenant);
    w.kv("state", jobStateName(s.state));
    w.kv("priority", s.priority);
    w.kv("deterministic", s.deterministic);
    if (s.deadline_ms >= 0.0) w.kv("deadline_ms", s.deadline_ms);
    if (s.shards > 1) w.kv("shards", s.shards);
    w.kv("device", s.device);
    w.kv("dispatch_seq", s.dispatch_seq);
    w.kv("queue_wait_host_s", s.queue_wait_host_s);
    w.kv("service_host_s", s.service_host_s);
    w.kv("e2e_host_s", s.e2e_host_s);
    if (s.dispatch_seq >= 0 || s.cache_hit) {
      w.kv("converged", s.converged);
      w.kv("equits", s.equits);
      w.kv("final_rmse_hu", s.final_rmse_hu);
      w.kv("modeled_seconds", s.modeled_seconds);
      w.kv("queue_wait_modeled_s", s.queue_wait_modeled_s);
    }
    if (s.cache_hit) w.kv("cache_hit", true);
    if (s.warm_start) w.kv("warm_start", true);
    if (s.recoveries > 0) w.kv("recoveries", s.recoveries);
    if (s.migrations > 0) w.kv("migrations", s.migrations);
    if (!s.error.empty()) w.kv("error", s.error);
    // uint64 hashes cross the wire as hex strings: a JSON number (double)
    // only carries 53 bits exactly.
    if (s.has_image) w.kv("image_hash", hashToHex(s.image_hash));
    w.endObject();
  }
  w.endArray();
  const obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  w.endObject();
  return w.str();
}

void Dispatcher::writeReportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open svc report file: " + path);
  out << reportJson() << '\n';
  MBIR_CHECK_MSG(out.good(), "failed writing svc report: " + path);
}

}  // namespace mbir::svc
