#include "svc/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/error.h"

namespace mbir::svc {

namespace {

double numField(const obs::JsonValue& doc, const std::string& k, double def) {
  const obs::JsonValue* v = doc.find(k);
  return v && v->isNumber() ? v->num_v : def;
}

std::string strField(const obs::JsonValue& doc, const std::string& k) {
  const obs::JsonValue* v = doc.find(k);
  return v && v->isString() ? v->str_v : std::string();
}

bool boolField(const obs::JsonValue& doc, const std::string& k, bool def) {
  const obs::JsonValue* v = doc.find(k);
  return v && v->type == obs::JsonValue::Type::kBool ? v->bool_v : def;
}

Client::JobInfo parseJobInfo(const obs::JsonValue& doc) {
  Client::JobInfo info;
  info.job_id = int(numField(doc, "job_id", -1));
  info.state = strField(doc, "state");
  info.name = strField(doc, "name");
  info.device = int(numField(doc, "device", -1));
  info.dispatch_seq = int(numField(doc, "dispatch_seq", -1));
  info.queue_wait_host_s = numField(doc, "queue_wait_host_s", 0.0);
  info.service_host_s = numField(doc, "service_host_s", 0.0);
  info.e2e_host_s = numField(doc, "e2e_host_s", 0.0);
  info.converged = boolField(doc, "converged", false);
  info.equits = numField(doc, "equits", 0.0);
  info.final_rmse_hu = numField(doc, "final_rmse_hu", 0.0);
  info.modeled_seconds = numField(doc, "modeled_seconds", 0.0);
  info.queue_wait_modeled_s = numField(doc, "queue_wait_modeled_s", 0.0);
  info.shards = int(numField(doc, "shards", 1));
  info.migrations = int(numField(doc, "migrations", 0));
  info.recoveries = int(numField(doc, "recoveries", 0));
  info.cache_hit = boolField(doc, "cache_hit", false);
  info.warm_start = boolField(doc, "warm_start", false);
  info.error = strField(doc, "error");
  info.image_hash = strField(doc, "image_hash");
  if (const obs::JsonValue* img = doc.find("image"); img && img->isObject()) {
    const int size = int(numField(*img, "size", 0));
    const obs::JsonValue* pixels = img->find("pixels");
    if (size > 0 && pixels && pixels->isArray() &&
        pixels->array_v.size() == std::size_t(size) * std::size_t(size)) {
      Image2D out(size);
      std::span<float> flat = out.flat();
      for (std::size_t i = 0; i < flat.size(); ++i)
        flat[i] = float(pixels->array_v[i].asNumber());
      info.image = std::move(out);
    }
  }
  return info;
}

}  // namespace

Client::Client(std::uint16_t port, std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MBIR_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("connect(127.0.0.1:" + std::to_string(port) + "): " + err);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), max_frame_bytes_(other.max_frame_bytes_) {
  other.fd_ = -1;
}

obs::JsonValue Client::call(std::string_view payload) {
  MBIR_CHECK_MSG(fd_ >= 0, "client is not connected");
  if (!writeFrame(fd_, payload)) throw Error("svc client: send failed");
  std::string response;
  const FrameStatus st = readFrame(fd_, response, max_frame_bytes_);
  if (st != FrameStatus::kOk)
    throw Error(std::string("svc client: read failed (") +
                frameStatusName(st) + ")");
  return obs::parseJson(response);
}

obs::JsonValue Client::callChecked(std::string_view payload, const char* verb) {
  obs::JsonValue resp = call(payload);
  if (!boolField(resp, "ok", false))
    throw Error(std::string("svc ") + verb + " failed: " +
                (strField(resp, "error").empty() ? "unknown error"
                                                 : strField(resp, "error")));
  return resp;
}

bool Client::ping() {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "ping");
  w.endObject();
  const obs::JsonValue resp = call(w.str());
  return boolField(resp, "ok", false);
}

Client::SubmitResult Client::submit(const SubmitParams& params) {
  const obs::JsonValue resp = call(encodeSubmit(params));
  SubmitResult out;
  out.accepted = boolField(resp, "ok", false);
  if (out.accepted) {
    out.job_id = int(numField(resp, "job_id", -1));
    out.cache_hit = boolField(resp, "cache_hit", false);
  } else {
    out.rejected = boolField(resp, "rejected", false);
    out.error = strField(resp, "error");
  }
  return out;
}

Client::ServerStatus Client::serverStatus() {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "status");
  w.endObject();
  const obs::JsonValue resp = callChecked(w.str(), "status");
  ServerStatus s;
  s.accepting = boolField(resp, "accepting", true);
  s.queued = int(numField(resp, "queued", 0));
  s.running = int(numField(resp, "running", 0));
  s.submitted = std::int64_t(numField(resp, "submitted", 0));
  s.rejected = std::int64_t(numField(resp, "rejected", 0));
  s.finished = std::int64_t(numField(resp, "finished", 0));
  s.num_devices = int(numField(resp, "num_devices", 0));
  s.queue_capacity = int(numField(resp, "queue_capacity", 0));
  return s;
}

Client::JobInfo Client::jobStatus(int job_id) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "status");
  w.kv("job", job_id);
  w.endObject();
  return parseJobInfo(callChecked(w.str(), "status"));
}

Client::JobInfo Client::result(int job_id, bool include_image) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "result");
  w.kv("job", job_id);
  if (include_image) w.kv("include_image", true);
  w.endObject();
  return parseJobInfo(callChecked(w.str(), "result"));
}

bool Client::cancel(int job_id) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "cancel");
  w.kv("job", job_id);
  w.endObject();
  const obs::JsonValue resp = callChecked(w.str(), "cancel");
  return boolField(resp, "cancelled", false);
}

obs::JsonValue Client::stats() {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "stats");
  w.endObject();
  obs::JsonValue resp = callChecked(w.str(), "stats");
  const obs::JsonValue* stats = resp.find("stats");
  if (!stats || !stats->isObject())
    throw Error("svc stats: response carries no stats document");
  return *stats;
}

obs::JsonValue Client::flight(const std::string& reason) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "flight");
  w.kv("reason", reason);
  w.endObject();
  obs::JsonValue resp = callChecked(w.str(), "flight");
  const obs::JsonValue* flight = resp.find("flight");
  if (!flight || !flight->isObject())
    throw Error("svc flight: response carries no flight document");
  return *flight;
}

obs::JsonValue Client::chaos() {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "chaos");
  w.endObject();
  return callChecked(w.str(), "chaos");
}

obs::JsonValue Client::chaos(const chaos::FaultPlan& plan, double watchdog_ms) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "chaos");
  w.kv("seed", std::int64_t(plan.seed));
  w.kv("launch_fault_rate", plan.launch_fault_rate);
  w.kv("stall_rate", plan.stall_rate);
  w.kv("death_rate", plan.death_rate);
  w.key("target_devices").beginArray();
  for (int d : plan.target_devices) w.value(d);
  w.endArray();
  w.kv("watchdog_ms", watchdog_ms);
  w.endObject();
  return callChecked(w.str(), "chaos");
}

obs::JsonValue Client::drain() {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "drain");
  w.endObject();
  obs::JsonValue resp = callChecked(w.str(), "drain");
  const obs::JsonValue* report = resp.find("report");
  if (!report || !report->isObject())
    throw Error("svc drain: response carries no report");
  return *report;
}

}  // namespace mbir::svc
