// Client side of gpumbir.svc/1: a blocking loopback connection plus typed
// wrappers for every verb. One Client is one TCP connection with strictly
// request/response framing — share it across threads only with external
// serialization (or open one Client per thread; the server handles
// connections independently).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "chaos/fault.h"
#include "geom/image.h"
#include "obs/json.h"
#include "svc/protocol.h"

namespace mbir::svc {

class Client {
 public:
  /// Connect to 127.0.0.1:port (throws mbir::Error on failure).
  explicit Client(std::uint16_t port,
                  std::size_t max_frame_bytes = kDefaultMaxFrameBytes);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Send one raw payload, read one response frame, parse it. Throws
  /// mbir::Error on transport failure or malformed response JSON. This is
  /// the escape hatch the fuzz tests and reconctl's raw mode use; the
  /// typed wrappers below cover normal operation.
  obs::JsonValue call(std::string_view payload);

  /// Raw socket fd (tests use it to send deliberately broken frames).
  int fd() const { return fd_; }

  bool ping();

  struct SubmitResult {
    bool accepted = false;
    int job_id = -1;
    bool cache_hit = false;  ///< served from the result cache, no dispatch
    bool rejected = false;  ///< admission backpressure (queue full / drain)
    std::string error;
  };
  /// Never throws on an ok:false response — admission rejection is an
  /// expected outcome, reported in the return value.
  SubmitResult submit(const SubmitParams& params);

  struct ServerStatus {
    bool accepting = true;
    int queued = 0;
    int running = 0;
    std::int64_t submitted = 0;
    std::int64_t rejected = 0;
    std::int64_t finished = 0;
    int num_devices = 0;
    int queue_capacity = 0;
  };
  ServerStatus serverStatus();

  struct JobInfo {
    int job_id = -1;
    std::string state;  ///< jobStateName() string
    std::string name;
    int device = -1;
    int dispatch_seq = -1;
    double queue_wait_host_s = 0.0;
    double service_host_s = 0.0;
    double e2e_host_s = 0.0;
    bool converged = false;
    double equits = 0.0;
    double final_rmse_hu = 0.0;
    double modeled_seconds = 0.0;
    double queue_wait_modeled_s = 0.0;
    int shards = 1;      ///< > 1: gang-dispatched slab-sharded job
    int migrations = 0;  ///< times the whole logical job was requeued
    int recoveries = 0;  ///< times a restart recovered this job from the WAL
    bool cache_hit = false;   ///< served from the result cache
    bool warm_start = false;  ///< ran from a cached near-duplicate image
    std::string error;
    std::string image_hash;  ///< 16 hex chars when the job has an image
    std::optional<Image2D> image;  ///< result(include_image=true) only
    bool terminal() const {
      return state != "queued" && state != "running";
    }
  };
  /// Point-in-time snapshot (throws mbir::Error for unknown ids).
  JobInfo jobStatus(int job_id);
  /// Blocks until the job is terminal; optionally transfers the image.
  JobInfo result(int job_id, bool include_image = false);

  /// True if the cancel took effect (false: job was already terminal).
  bool cancel(int job_id);

  /// Live server snapshot: the parsed gpumbir.svc_stats/1 document
  /// (dispatcher state, per-device clocks, in-flight jobs, metrics).
  obs::JsonValue stats();

  /// Flight-recorder dump: the parsed gpumbir.flight/1 document.
  obs::JsonValue flight(const std::string& reason = "flight verb");

  /// Chaos admin verb: with a plan, install it (plus watchdog) on the
  /// server; without one, read back the active plan and fault counters.
  /// Returns the parsed response (enabled / watchdog_ms / devices_failed /
  /// jobs_migrated / plan).
  obs::JsonValue chaos();
  obs::JsonValue chaos(const chaos::FaultPlan& plan, double watchdog_ms);

  /// Drain the service; returns the parsed gpumbir.svc_report/1 document.
  obs::JsonValue drain();

 private:
  obs::JsonValue callChecked(std::string_view payload, const char* verb);

  int fd_ = -1;
  std::size_t max_frame_bytes_;
};

}  // namespace mbir::svc
