// Online dispatch over the multi-device simulated-GPU substrate: the
// always-on counterpart of sched::BatchScheduler. Jobs stream in through
// submit() while device threads run; there is no runAll() barrier.
//
// Three properties the batch scheduler does not have:
//
//  * Admission control. The queue of not-yet-running jobs is bounded
//    (queue_capacity); a submit that would exceed it is rejected
//    explicitly (SubmitOutcome::accepted == false, svc.admission.rejected
//    metric) — backpressure instead of unbounded growth.
//  * Deadline-aware priority dispatch. A free device pulls the
//    highest-priority queued job (ties in submission order), after failing
//    fast every queued job whose host-clock deadline already expired —
//    expired jobs transition to kDeadlineMissed without ever running, so a
//    late job cannot waste device time.
//  * A deterministic lane. Jobs submitted with deterministic == true bypass
//    priority/deadline logic entirely: they are assigned round-robin by
//    deterministic sequence number (det job s -> device s % D) and each
//    device runs its deterministic jobs in submission order — exactly
//    BatchScheduler::runAll's schedule. A deterministic-only job stream is
//    therefore bit-identical (images, stats, modeled clocks) to the same
//    jobs through runAll, or run serially (tests/test_svc.cpp asserts it).
//    Devices prefer their deterministic lane over the priority lane.
//
// Execution itself is sched::runJobOnDevice — the same plumbing
// (per-device modeled clocks, failure isolation, cooperative cancellation,
// shared obs::Recorder with per-device trace pids) as the batch scheduler,
// so online and offline results cannot drift.
//
// drain() stops admission, runs the queue dry, joins the device threads and
// builds the SvcReport (schema gpumbir.svc_report/1). The destructor hard-
// stops instead: it cancels everything and joins without running out the
// queue.
//
// Chaos lane (DESIGN.md §12): with a FaultPlan installed, every dispatch is
// wrapped in a chaos::JobFaultHook that heartbeats its device and may fire
// an injected fault. A watchdog thread declares a device failed when a
// monitored run's heartbeat goes silent past watchdog_ms (stall or death);
// the failed device's queued jobs re-lane onto the survivors immediately
// and its running job is requeued when the stall unwinds — every affected
// job still reaches exactly one terminal state, and a migrated job re-runs
// clean (faults are one-shot per job). Launch faults fail only the job;
// the device survives. Results are device-assignment-independent, so
// migrated and unaffected jobs stay bit-identical to a fault-free run.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <memory>

#include "chaos/fault.h"
#include "core/timer.h"
#include "obs/flight.h"
#include "sched/scheduler.h"
#include "store/wfq.h"
#include "svc/protocol.h"

namespace mbir::svc {

enum class JobState {
  kQueued,
  kRunning,
  kDone,            ///< ran to its stop criterion (converged or budget)
  kCancelled,       ///< cancelled queued, or cooperatively stopped mid-run
  kFailed,          ///< reconstruct() threw
  kDeadlineMissed,  ///< expired while queued; failed fast, never ran
};
const char* jobStateName(JobState s);
bool isTerminal(JobState s);

struct JobSpec {
  const OwnedProblem* problem = nullptr;  ///< borrowed; must outlive drain
  const Image2D* golden = nullptr;        ///< borrowed; must outlive drain
  RunConfig config;
  std::string name;
  std::string tenant;        ///< "" = default; labels svc.* per-tenant metrics
  int priority = 0;          ///< higher first (priority lane only)
  double deadline_ms = -1.0; ///< host ms from admission; < 0 = none
  bool deterministic = false;
  /// > 1 = single-job multi-device slab sharding (DESIGN.md §13): the image
  /// splits into `shards` row-slabs run as ONE logical job gang-dispatched
  /// over min(shards, surviving devices) devices. Sharded jobs ride the
  /// priority lane only (a sharded+deterministic submit is rejected: the
  /// deterministic lane is round-robin single-device by contract) and
  /// dispatch exclusively — the gang waits until no other job is running,
  /// then occupies every device until its exchange-synchronized run ends.
  int shards = 1;
  /// Halo rows exchanged per outer iteration between adjacent slabs.
  int shard_halo = 1;
  /// Forced per-job fault (chaos/fault.h; kind kNone = no forced fault).
  /// Fires on whatever device dispatches the job, regardless of the plan's
  /// target set; stall/death additionally require the watchdog to be armed
  /// (they are dropped otherwise — nothing could ever resolve them).
  chaos::JobFault fault;
  /// Times this job was already recovered from the WAL by a server restart
  /// (src/store). Counted separately from migrations: a recovered job that
  /// lands on a device that then dies migrates like any other. A recovery
  /// resubmit (> 0) also bypasses the queue-capacity check — the job was
  /// admitted (and acknowledged durable) by a previous incarnation, so
  /// dropping it now would break exactly-once completion.
  int recoveries = 0;
  /// The server attached a cached near-duplicate image as the run's
  /// starting point (RunConfig::initial_image); surfaced in status/report
  /// so equits-saved is measurable.
  bool warm_start = false;
};

struct SubmitOutcome {
  bool accepted = false;
  int job_id = -1;
  /// Admitted via submitCached(): already terminal, result is the cached
  /// image — the client can fetch it immediately.
  bool cache_hit = false;
  std::string reason;  ///< set when rejected
};

/// Point-in-time snapshot of one job (copied under the dispatcher lock;
/// run-outcome fields are meaningful only once the state is terminal).
struct JobStatus {
  int job_id = -1;
  JobState state = JobState::kQueued;
  std::string name;
  std::string tenant;
  int priority = 0;
  bool deterministic = false;
  double deadline_ms = -1.0;
  int shards = 1;         ///< > 1 = gang-dispatched sharded job
  int device = -1;        ///< -1 until dispatched (gang leader when sharded)
  int dispatch_seq = -1;  ///< global dispatch order; -1 = never dispatched
  double queue_wait_host_s = 0.0;
  double service_host_s = 0.0;
  double e2e_host_s = 0.0;
  /// Times this job was requeued off a failed device (queued or running).
  int migrations = 0;
  /// Times this job was recovered from the WAL by a restart (JobSpec).
  int recoveries = 0;
  /// Served straight from the result cache — never dispatched; the run-
  /// outcome fields below carry the cached values.
  bool cache_hit = false;
  /// Ran, but starting from a cached near-duplicate image.
  bool warm_start = false;
  // Terminal summary (from the run, when the job was dispatched):
  bool converged = false;
  double equits = 0.0;
  double final_rmse_hu = 0.0;
  double modeled_seconds = 0.0;
  double queue_wait_modeled_s = 0.0;
  std::string error;
  /// FNV-1a over the result image bits; set when the job produced an image.
  std::uint64_t image_hash = 0;
  bool has_image = false;
};

struct DispatcherOptions {
  int num_devices = 1;
  /// Maximum number of queued (admitted, not yet dispatched) jobs; a
  /// submit beyond it is rejected. Running jobs do not count.
  int queue_capacity = 16;
  ThreadPool* host_pool = nullptr;
  obs::Recorder* recorder = nullptr;
  int base_trace_pid = 10;  ///< device d renders as pid base + d
  /// Flight-recorder ring size per lane (control + one per device). The
  /// flight recorder is always on — bounded memory, no recorder required.
  std::size_t flight_capacity = 256;
  /// Directory automatic flight dumps are written to on deadline miss, job
  /// failure or cancel ("" = no files; dumps stay wire-accessible via the
  /// `flight` verb / flightJson()).
  std::string flight_dir;
  /// Seed-driven fault injection (chaos/fault.h); a disabled (all-zero-
  /// rate) plan means no chaos. Replaceable at runtime via setFaultPlan()
  /// (the wire `chaos` verb).
  chaos::FaultPlan fault_plan;
  /// Per-device watchdog period: a device running a chaos-monitored job
  /// whose heartbeat does not advance for longer than this is declared
  /// failed — its queued and running jobs migrate to the survivors.
  /// <= 0 disarms the watchdog (stall/death faults are then never
  /// injected, since nothing could resolve them). Only chaos-monitored
  /// runs are watched, so an armed watchdog never misfires on plain jobs.
  double watchdog_ms = 0.0;
  /// Weighted fair queuing across tenants (DESIGN.md §14): priority-lane
  /// dispatch picks the backlogged tenant with the lowest virtual time
  /// (store::FairQueue), then the highest priority within that tenant —
  /// so one heavy tenant gets its weight share of dispatch slots, never
  /// the whole machine. Tenants not listed get default_tenant_weight.
  /// With a single tenant (or equal weights) dispatch order is identical
  /// to plain priority scheduling.
  std::map<std::string, double> tenant_weights;
  double default_tenant_weight = 1.0;
  /// Called once per job (off the dispatcher lock) when it reaches a
  /// terminal state, with the terminal snapshot. The server uses it to
  /// append WAL terminal records and populate the result cache. May call
  /// back into the dispatcher (status()/image()); must not block for long
  /// — it runs on device threads between jobs.
  std::function<void(const JobStatus&)> on_terminal;
};

struct DistSummary {
  std::uint64_t count = 0;
  double mean = 0.0, max = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Drain-time summary (schema gpumbir.svc_report/1 via reportJson()).
struct SvcReport {
  int num_devices = 0;
  int queue_capacity = 0;
  std::uint64_t jobs_submitted = 0;   ///< accepted
  std::uint64_t admission_rejected = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_converged = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_deadline_missed = 0;
  int queue_depth_max = 0;
  double host_seconds = 0.0;  ///< dispatcher construction -> drain complete
  double jobs_per_host_second = 0.0;  ///< done jobs / host_seconds
  DistSummary queue_wait_host_s;
  DistSummary service_host_s;
  DistSummary e2e_host_s;
  double modeled_device_seconds_total = 0.0;
  double makespan_modeled_s = 0.0;
  std::vector<double> device_modeled_s;
  // Chaos-lane outcome (all zero/empty on fault-free runs):
  std::uint64_t devices_failed = 0;
  std::uint64_t jobs_migrated = 0;  ///< total migration events
  std::vector<int> failed_devices;
  // Store lane (src/store; all zero without a cache/WAL):
  std::uint64_t cache_hits = 0;    ///< jobs served without dispatching
  std::uint64_t warm_starts = 0;   ///< jobs started from a cached image
  std::uint64_t jobs_recovered = 0;  ///< jobs resubmitted from the WAL
  /// Per-tenant drain summary (p99s per tenant — the WFQ acceptance
  /// surface). Sorted by tenant label; present whenever any job carried a
  /// tenant (the default tenant is labeled "default").
  struct TenantSummary {
    std::string tenant;
    double weight = 1.0;
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_done = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t warm_starts = 0;
    double goodput_jobs_per_s = 0.0;  ///< done / report host_seconds
    DistSummary queue_wait_host_s;
    DistSummary e2e_host_s;
  };
  std::vector<TenantSummary> tenants;
  std::vector<JobStatus> jobs;
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  int numDevices() const { return opt_.num_devices; }
  int queueCapacity() const { return opt_.queue_capacity; }

  /// Admit a job (any thread, any time before drain). Rejected — never
  /// queued unboundedly — when the admission queue is full or the
  /// dispatcher is draining.
  SubmitOutcome submit(const JobSpec& spec);

  /// A finished result the server pulled from the result cache.
  struct CachedResult {
    bool converged = false;
    double equits = 0.0;
    double final_rmse_hu = 0.0;
    double modeled_seconds = 0.0;
    std::uint64_t image_hash = 0;
  };
  /// Admit a job that is already complete: an exact result-cache hit. The
  /// job is created directly in the kDone state with the cached image and
  /// outcome — it never occupies a queue slot or a device, so it cannot be
  /// rejected for capacity (only while draining). status/result/report
  /// treat it like any other done job, with cache_hit = true.
  SubmitOutcome submitCached(const JobSpec& spec, const Image2D& image,
                             const CachedResult& cached);

  /// Cooperative cancel. Queued priority-lane jobs are finalized
  /// immediately (freeing their queue slot); running jobs stop at the next
  /// iteration boundary; queued deterministic-lane jobs keep their slot in
  /// the schedule and run with the flag set (exactly what
  /// BatchScheduler::cancel does, preserving lane bit-identity). Returns
  /// false for unknown ids or already-terminal jobs.
  bool cancel(int job_id);

  bool knownJob(int job_id) const;
  JobStatus status(int job_id) const;

  /// Install/replace the chaos fault plan and watchdog period at runtime
  /// (the wire `chaos` verb). Takes effect for subsequent dispatches; a
  /// disabled plan turns injection off. Thread-safe.
  void setFaultPlan(const chaos::FaultPlan& plan, double watchdog_ms);
  chaos::FaultPlan faultPlan() const;
  double watchdogMs() const;

  struct Stats {
    bool accepting = true;
    int queued = 0;
    int running = 0;
    std::uint64_t submitted = 0;  ///< accepted
    std::uint64_t rejected = 0;
    std::uint64_t finished = 0;   ///< any terminal state
  };
  Stats stats() const;

  /// One device's live state (from liveStats()).
  struct LiveDevice {
    int device = 0;
    bool busy = false;
    bool failed = false;    ///< declared failed by the chaos watchdog
    int running_job = -1;   ///< -1 when idle
    double modeled_s = 0.0; ///< cumulative modeled clock at last job end
    int det_lane_depth = 0; ///< queued deterministic jobs bound to it
  };
  /// One in-flight (queued or running) job's live state.
  struct LiveJob {
    int job_id = -1;
    JobState state = JobState::kQueued;
    std::string name;
    std::string tenant;
    int priority = 0;
    bool deterministic = false;
    int device = -1;            ///< -1 until dispatched
    double age_host_s = 0.0;    ///< host seconds since admission
    bool has_deadline = false;
    double deadline_remaining_ms = 0.0;  ///< negative = already expired
  };
  /// Live snapshot of the whole dispatcher, taken under the dispatcher
  /// lock in O(jobs) without stopping the device threads — the lock is
  /// only ever held briefly by dispatch bookkeeping, never across a run,
  /// so a stats scrape cannot pause dispatch.
  struct LiveStats {
    bool accepting = true;
    bool draining = false;
    double uptime_host_s = 0.0;
    int num_devices = 0;
    int queue_capacity = 0;
    int queued = 0;
    int running = 0;
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t finished = 0;
    std::map<int, int> queue_depth_by_priority;  ///< priority lane only
    std::vector<LiveDevice> devices;
    std::vector<LiveJob> in_flight;
    std::uint64_t flight_events = 0;  ///< flight events ever recorded
    std::uint64_t flight_dumps = 0;   ///< automatic dumps triggered
    // Chaos lane:
    bool chaos_enabled = false;
    double watchdog_ms = 0.0;
    std::uint64_t devices_failed = 0;
    std::uint64_t jobs_migrated = 0;
    // Store lane:
    std::uint64_t cache_hits = 0;
    std::uint64_t warm_starts = 0;
    std::uint64_t jobs_recovered = 0;
    /// Per-tenant WFQ shares (weight, virtual time, dispatches).
    std::vector<store::FairQueue::Share> tenant_shares;
  };
  LiveStats liveStats() const;

  /// liveStats() + the metrics registry as one `gpumbir.svc_stats/1`
  /// document — the payload of the wire protocol's `stats` verb.
  std::string liveStatsJson() const;

  /// Always-on bounded ring of recent per-device span events, dumped
  /// automatically (to DispatcherOptions::flight_dir when set) whenever a
  /// job misses its deadline, fails, or is cancelled — exactly once per
  /// triggering job — and on demand via flightJson() (SIGUSR1, the wire
  /// `flight` verb).
  obs::FlightRecorder& flightRecorder() { return flight_; }
  std::string flightJson(std::string_view reason) const {
    return flight_.dumpJson(reason);
  }
  /// Automatic dumps triggered so far (terminal-failure dumps only; manual
  /// flightJson() calls don't count).
  std::uint64_t flightDumpCount() const;

  /// Block until the job reaches a terminal state; returns the snapshot.
  JobStatus waitTerminal(int job_id) const;

  /// Deliver queued terminal notifications (on_terminal) and flight dumps
  /// on the calling thread. A terminal transition queues its notification
  /// in the same critical section that publishes the state, so
  /// waitTerminal + flushNotifications guarantees the store side effects
  /// (cache insert, WAL terminal record) of an observed result have landed
  /// — the server calls this before answering the `result` verb, which
  /// makes "finish a job, then submit a duplicate" hit the cache
  /// deterministically.
  void flushNotifications() { flushFlightDumps(); }

  /// Copy of a finished job's image (nullopt when the job never ran).
  std::optional<Image2D> image(int job_id) const;

  /// Stop admission, run every queued job to termination, join the device
  /// threads, build the report. Safe to call from any thread (including a
  /// server connection handler); concurrent/repeat callers all get the
  /// same report.
  const SvcReport& drain();
  bool drained() const { return drained_.load(std::memory_order_acquire); }

  /// Machine-readable report (schema gpumbir.svc_report/1). After drain().
  std::string reportJson() const;
  void writeReportJson(const std::string& path) const;

 private:
  struct Job {
    int id = -1;
    JobSpec spec;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point admit_tp;
    std::chrono::steady_clock::time_point deadline_tp;
    JobState state = JobState::kQueued;
    std::atomic<bool> cancel{false};
    int det_seq = -1;
    int dispatch_seq = -1;
    int device = -1;  ///< set under the lock at dispatch (result.device is
                      ///< rewritten off-lock by the run; never read it live)
    double queue_wait_host_s = 0.0;
    double service_host_s = 0.0;
    double e2e_host_s = 0.0;
    std::uint64_t image_hash = 0;
    bool has_image = false;
    int migrations = 0;        ///< times requeued off a failed device
    bool cache_hit = false;    ///< created terminal from the result cache
    bool fault_fired = false;  ///< one-shot: migrated jobs re-run clean
    bool hooked = false;       ///< current run heartbeats (watchdog applies)
    /// The job's identity for trace spans and flight events; filled at
    /// admission, completed (device/lane) at dispatch — both under the
    /// lock, before the device thread reads it.
    obs::JobSpanContext span;
    sched::JobResult result;
  };

  void deviceLoop(int device);
  /// Select this device's next job; also fails expired / drops cancelled
  /// queued priority-lane jobs encountered during the scan.
  Job* pickJobLocked(int device);
  void finalizeQueuedLocked(Job& job, JobState state);
  void noteTerminalLocked(Job& job);
  /// Queue an automatic flight dump for a job that ended badly. File I/O
  /// happens later in flushFlightDumps(), off the dispatcher lock.
  void requestFlightDumpLocked(const Job& job);
  /// Flush deferred off-lock side effects: automatic flight-dump file I/O
  /// and on_terminal notifications (WAL/cache writes in the server). Called
  /// wherever terminal transitions may have queued work, after mu_ is
  /// released.
  void flushFlightDumps();
  JobStatus snapshotLocked(const Job& job) const;
  int tracePid(int device) const { return opt_.base_trace_pid + device; }
  // Chaos lane:
  /// Samples per-device heartbeats; declares a device failed when a
  /// monitored run goes silent past watchdog_ms_. Sleeps while disarmed.
  void watchdogLoop();
  void stopWatchdog();  ///< idempotent; called under drain_mu_
  std::vector<int> survivorsLocked() const;  ///< non-failed device ids
  /// Mark the device failed, re-lane its queued deterministic jobs onto
  /// the survivors (in det-sequence order), wake anything parked on its
  /// chaos channel. The *running* job, if any, is migrated later by the
  /// device thread itself when its run unwinds.
  void declareDeviceFailedLocked(int device, const std::string& reason);
  /// Record a migration event for `job` and requeue it on the survivors
  /// (or finalize it as failed when no device survives).
  void migrateLocked(Job& job, int from_device);
  /// Put a (previously running) job back in a queue lane.
  void requeueLocked(Job& job);

  DispatcherOptions opt_;
  WallTimer lifetime_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_work_;  ///< queue / shutdown changes
  mutable std::condition_variable cv_done_;  ///< job became terminal
  std::deque<Job> jobs_;  // deque: jobs hold atomics, must never relocate
  std::vector<std::deque<int>> det_lane_;  ///< per-device FIFO of det job ids
  std::vector<int> prio_pending_;          ///< queued priority-lane job ids
  std::vector<double> device_clock_;       ///< cumulative modeled clock
  std::vector<int> device_running_;        ///< running job id per device; -1 idle
  /// Automatic flight dumps waiting for file I/O: (file stem, reason).
  std::vector<std::pair<std::string, std::string>> pending_flight_;
  /// Terminal snapshots waiting for the on_terminal callback (off-lock).
  std::vector<JobStatus> pending_terminal_;
  std::uint64_t flight_dumps_ = 0;
  /// Weighted fair queuing across tenants (guarded by mu_).
  store::FairQueue fq_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t warm_starts_ = 0;
  std::uint64_t jobs_recovered_ = 0;
  /// A sharded job is running: it owns every device, so no other pick may
  /// dispatch until it finishes (cleared by the gang leader's thread).
  bool gang_active_ = false;
  int det_count_ = 0;
  int dispatch_count_ = 0;
  int queued_ = 0;
  int running_ = 0;
  int queue_depth_max_ = 0;
  std::uint64_t accepted_ = 0, rejected_ = 0, finished_ = 0;
  bool accepting_ = true;
  bool draining_ = false;
  bool stop_ = false;

  // Chaos lane (guarded by mu_ except where noted). The injector is
  // shared_ptr so a runtime plan swap cannot free a plan a device thread
  // is still deciding with.
  std::shared_ptr<const chaos::FaultInjector> injector_;
  chaos::FaultPlan plan_;
  double watchdog_ms_ = 0.0;
  std::deque<chaos::DeviceChaos> chaos_dev_;  ///< stable addresses; one per device
  std::vector<char> device_failed_;
  std::uint64_t devices_failed_ = 0;
  std::uint64_t jobs_migrated_ = 0;
  mutable std::condition_variable cv_watchdog_;
  bool watchdog_exit_ = false;
  std::thread watchdog_;

  std::vector<std::thread> devices_;
  bool joined_ = false;  ///< device threads joined (guarded by drain_mu_)

  std::mutex drain_mu_;  ///< serializes drain() / destructor teardown
  std::atomic<bool> drained_{false};
  SvcReport report_;

  // svc.* instruments, resolved once at construction (nullptr = metrics off).
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* done = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* deadline_missed = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* service_time = nullptr;
    obs::Histogram* e2e = nullptr;
    obs::Counter* flight_dumps = nullptr;
    obs::Counter* device_failed = nullptr;  ///< sched.device.failed
    obs::Counter* migrated = nullptr;       ///< svc.jobs.migrated
  } inst_;

  obs::FlightRecorder flight_;  // after opt_: sized from its options
};

}  // namespace mbir::svc
