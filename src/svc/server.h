// Loopback TCP server for the gpumbir.svc/1 protocol.
//
// Transport topology: one acceptor thread blocks in accept(); each
// connection gets its own handler thread that loops
// readFrame -> dispatch verb -> writeFrame. All reconstruction work happens
// on the svc::Dispatcher's device threads — a connection thread only
// parses, submits, snapshots and serializes, so a slow reconstruction never
// blocks other clients' control traffic (a `result` verb that waits for a
// job is the one deliberate exception: it parks that connection only).
//
// Lifecycle and fd ownership: handler threads never close their own socket
// — they mark themselves done and the owning server closes fds when it
// reaps (on later accepts) or stops. That keeps the fd-close/reuse race out
// of the design entirely: an fd is closed exactly once, after its thread
// has been joined. stop() shuts the listener and every live connection
// down (shutdown() wakes blocked reads), then joins everything; it is
// idempotent and also runs from the destructor.
//
// The server binds 127.0.0.1 only: this is an in-machine service boundary
// (tests, benches, local tooling), not an exposed network daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <thread>

#include "recon/case_library.h"
#include "store/cache.h"
#include "store/wal.h"
#include "svc/dispatcher.h"
#include "svc/protocol.h"

namespace mbir::svc {

/// Resolves a submit request's case index to a reconstruction problem. The
/// returned references must stay valid until the server is drained (the
/// dispatcher borrows them for queued jobs).
class JobSource {
 public:
  virtual ~JobSource() = default;
  struct Case {
    const OwnedProblem& problem;
    const Image2D& golden;
  };
  /// Throws mbir::Error for indices the source cannot serve (the server
  /// turns that into an ok:false response on the offending connection).
  virtual Case get(int case_index) = 0;
};

/// The standard production source: a thread-safe lazily-built CaseLibrary.
class CaseLibraryJobSource : public JobSource {
 public:
  explicit CaseLibraryJobSource(CaseLibrary& lib) : lib_(lib) {}
  Case get(int case_index) override {
    CaseLibrary::Case c = lib_.get(case_index);
    return Case{c.problem, c.golden};
  }

 private:
  CaseLibrary& lib_;
};

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = let the kernel pick (read it back via
  /// port(), e.g. for tests and --port-file).
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  DispatcherOptions dispatch;
  /// Base RunConfig submits are applied onto (see makeRunConfig()).
  RunConfig base_config;
  /// Durable job log (nullptr = off). Borrowed; must outlive the server.
  /// When set, submits are acknowledged only after their admit record is on
  /// disk, and the constructor re-dispatches every admitted-but-unfinished
  /// job the log replayed (DESIGN.md §14).
  store::JobLog* wal = nullptr;
  /// Content-addressed result cache (nullptr = off). Borrowed; must outlive
  /// the server. Exact hits are served without dispatching; near-duplicates
  /// (same inputs, different config) warm-start from the most-converged
  /// cached image.
  store::ResultCache* cache = nullptr;
};

class Server {
 public:
  /// Binds + listens + starts the acceptor (throws mbir::Error on bind
  /// failure). `source` is borrowed and must outlive the server.
  Server(ServerOptions options, JobSource& source);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound port (resolves port 0).
  std::uint16_t port() const { return port_; }

  Dispatcher& dispatcher() { return dispatcher_; }
  const Dispatcher& dispatcher() const { return dispatcher_; }

  /// True once any client has issued the drain verb (the dispatcher is
  /// drained by then; the process should stop() and exit).
  bool drainRequested() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// Drain the dispatcher (idempotent; also triggered by the drain verb)
  /// and return the final report.
  const SvcReport& drainAndReport();

  /// Stop accepting, wake and join every connection thread, close all fds.
  /// Idempotent; called by the destructor. Does NOT drain the dispatcher —
  /// jobs already admitted keep running unless the dispatcher is destroyed.
  void stop();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void acceptLoop();
  void handleConnection(Connection& conn);
  /// One request -> one response payload. Never throws: protocol and
  /// dispatcher errors become ok:false responses.
  std::string handleRequest(const Request& req);
  std::string handleSubmit(const Request& req);
  std::string handleStatus(const Request& req);
  std::string handleCancel(const Request& req);
  std::string handleResult(const Request& req);
  std::string handleStats();
  std::string handleFlight(const Request& req);
  std::string handleChaos(const Request& req);
  std::string handleDrain();
  /// Join + close finished connections (called on the acceptor thread).
  void reapConnectionsLocked();

  /// Per-job store bookkeeping: which WAL record and cache key a live job
  /// belongs to, registered at submit and consumed at terminal.
  struct StoreRec {
    std::int64_t wal_id = -1;
    std::uint64_t input_hash = 0;
    std::string config_key;
  };
  /// opt_.dispatch plus the on_terminal hook into the store (when enabled).
  DispatcherOptions makeDispatchOptions();
  /// Re-dispatch every admitted-but-unfinished job from the WAL replay
  /// (constructor, before the acceptor starts).
  void recoverPendingJobs();
  /// Memoized hashCaseInputs per case index (sinogram hashing is O(data)).
  std::uint64_t caseInputHash(int case_index, const JobSource::Case& c);
  void registerStoreRec(int job_id, StoreRec rec);
  /// Dispatcher terminal callback (runs on device threads, off-lock).
  void onJobTerminal(const JobStatus& s);
  /// Cache insert + WAL terminal for one finished job. Never throws: a
  /// store I/O failure must not kill a device thread.
  void finishStoreRec(const StoreRec& rec, const JobStatus& s);

  ServerOptions opt_;
  JobSource& source_;
  // Store bookkeeping is declared before dispatcher_ so it is still alive
  // while the dispatcher destructor flushes its last terminal callbacks.
  std::mutex store_mu_;
  std::map<int, StoreRec> job_store_;
  /// Terminal snapshots that raced ahead of registerStoreRec (a fast job
  /// can finish before handleSubmit records its StoreRec).
  std::map<int, JobStatus> unclaimed_terminal_;
  std::map<int, std::uint64_t> case_input_hash_;
  Dispatcher dispatcher_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> drain_requested_{false};
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::list<Connection> connections_;  // list: stable addresses for threads
};

}  // namespace mbir::svc
