#include "svc/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "chaos/fault.h"
#include "core/error.h"
#include "core/hash.h"

namespace mbir::svc {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string encodeFrame(std::string_view payload) {
  MBIR_CHECK_MSG(payload.size() <= 0xFFFFFFFFu, "frame payload too large");
  const auto n = std::uint32_t(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(char((n >> 24) & 0xFF));
  out.push_back(char((n >> 16) & 0xFF));
  out.push_back(char((n >> 8) & 0xFF));
  out.push_back(char(n & 0xFF));
  out.append(payload);
  return out;
}

const char* frameStatusName(FrameStatus s) {
  switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kError: return "error";
  }
  return "?";
}

namespace {

/// Read exactly n bytes; returns bytes read before EOF/error (< n), with
/// `err` set on a hard read error.
std::size_t readExact(int fd, void* buf, std::size_t n, bool& err) {
  err = false;
  auto* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += std::size_t(r);
    } else if (r == 0) {
      return got;  // EOF
    } else if (errno == EINTR) {
      continue;
    } else {
      err = true;
      return got;
    }
  }
  return got;
}

bool writeAll(int fd, const char* p, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as an
    // error return, not a process-killing SIGPIPE. Pipes (tests, local
    // tooling) reject send() with ENOTSOCK — fall back to write() there.
    ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) r = ::write(fd, p + sent, n - sent);
    if (r > 0) {
      sent += std::size_t(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

FrameStatus readFrame(int fd, std::string& payload, std::size_t max_bytes) {
  unsigned char hdr[kFrameHeaderBytes];
  bool err = false;
  std::size_t got = readExact(fd, hdr, sizeof hdr, err);
  if (err) return FrameStatus::kError;
  if (got == 0) return FrameStatus::kClosed;
  if (got < sizeof hdr) return FrameStatus::kTruncated;
  const std::uint32_t n = (std::uint32_t(hdr[0]) << 24) |
                          (std::uint32_t(hdr[1]) << 16) |
                          (std::uint32_t(hdr[2]) << 8) | std::uint32_t(hdr[3]);
  if (n > max_bytes) return FrameStatus::kOversized;
  payload.resize(n);
  if (n == 0) return FrameStatus::kOk;
  got = readExact(fd, payload.data(), n, err);
  if (err) return FrameStatus::kError;
  if (got < n) return FrameStatus::kTruncated;
  return FrameStatus::kOk;
}

bool writeFrame(int fd, std::string_view payload) {
  const std::string frame = encodeFrame(payload);
  return writeAll(fd, frame.data(), frame.size());
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

namespace {
const obs::JsonValue* findTyped(const obs::JsonValue& doc,
                                const std::string& key,
                                obs::JsonValue::Type type,
                                const char* type_name) {
  const obs::JsonValue* v = doc.find(key);
  if (!v) return nullptr;
  if (v->type != type)
    throw Error("field '" + key + "' must be a " + type_name);
  return v;
}
}  // namespace

std::int64_t Request::getInt(const std::string& key, std::int64_t def) const {
  const obs::JsonValue* v =
      findTyped(doc, key, obs::JsonValue::Type::kNumber, "number");
  if (!v) return def;
  const double d = v->num_v;
  if (d != std::floor(d) || std::fabs(d) > 9.0e15)
    throw Error("field '" + key + "' must be an integer");
  return std::int64_t(d);
}

double Request::getDouble(const std::string& key, double def) const {
  const obs::JsonValue* v =
      findTyped(doc, key, obs::JsonValue::Type::kNumber, "number");
  return v ? v->num_v : def;
}

bool Request::getBool(const std::string& key, bool def) const {
  const obs::JsonValue* v =
      findTyped(doc, key, obs::JsonValue::Type::kBool, "bool");
  return v ? v->bool_v : def;
}

std::string Request::getString(const std::string& key,
                               const std::string& def) const {
  const obs::JsonValue* v =
      findTyped(doc, key, obs::JsonValue::Type::kString, "string");
  return v ? v->str_v : def;
}

Request parseRequest(std::string_view payload) {
  Request req;
  req.doc = obs::parseJson(payload);  // throws on malformed input
  if (!req.doc.isObject()) throw Error("request must be a JSON object");
  const obs::JsonValue* schema = req.doc.find("schema");
  if (!schema || !schema->isString() || schema->str_v != kProtocolSchema)
    throw Error("request schema must be \"" + std::string(kProtocolSchema) +
                "\"");
  const obs::JsonValue* verb = req.doc.find("verb");
  if (!verb || !verb->isString() || verb->str_v.empty())
    throw Error("request needs a string 'verb'");
  req.verb = verb->str_v;
  return req;
}

// ---------------------------------------------------------------------------
// Submit parameters
// ---------------------------------------------------------------------------

std::string encodeSubmit(const SubmitParams& p) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("verb", "submit");
  w.kv("case", p.case_index);
  w.kv("algorithm", p.algorithm);
  if (p.max_equits > 0.0) w.kv("max_equits", p.max_equits);
  if (p.stop_rmse_hu) w.kv("stop_rmse_hu", *p.stop_rmse_hu);
  if (p.sv_side > 0) w.kv("sv_side", p.sv_side);
  w.kv("priority", p.priority);
  if (p.deadline_ms >= 0.0) w.kv("deadline_ms", p.deadline_ms);
  w.kv("deterministic", p.deterministic);
  if (p.shards > 1) {
    w.kv("shards", p.shards);
    w.kv("shard_halo", p.shard_halo);
  }
  if (!p.simd.empty()) w.kv("simd", p.simd);
  if (!p.name.empty()) w.kv("name", p.name);
  if (!p.tenant.empty()) w.kv("tenant", p.tenant);
  if (!p.fault.empty()) w.kv("fault", p.fault);
  if (p.bypass_cache) w.kv("bypass_cache", true);
  w.endObject();
  return w.str();
}

SubmitParams parseSubmitParams(const Request& req) {
  SubmitParams p;
  p.case_index = int(req.getInt("case", 0));
  if (p.case_index < 0) throw Error("'case' must be >= 0");
  p.algorithm = req.getString("algorithm", "gpu");
  p.max_equits = req.getDouble("max_equits", 0.0);
  if (req.has("stop_rmse_hu")) p.stop_rmse_hu = req.getDouble("stop_rmse_hu", 0.0);
  p.sv_side = int(req.getInt("sv_side", 0));
  p.priority = int(req.getInt("priority", 0));
  p.deadline_ms = req.getDouble("deadline_ms", -1.0);
  p.deterministic = req.getBool("deterministic", false);
  p.shards = int(req.getInt("shards", 1));
  if (p.shards < 1) throw Error("'shards' must be >= 1");
  p.shard_halo = int(req.getInt("shard_halo", 1));
  if (p.shard_halo < 0) throw Error("'shard_halo' must be >= 0");
  if (p.shards > 1 && p.deterministic)
    throw Error("sharded jobs cannot be deterministic-lane");
  p.simd = req.getString("simd", "");
  p.name = req.getString("name", "");
  p.tenant = req.getString("tenant", "");
  p.fault = req.getString("fault", "");
  // Parse eagerly so a malformed spec fails the submit, not the job.
  chaos::parseFaultSpec(p.fault);
  p.bypass_cache = req.getBool("bypass_cache", false);
  return p;
}

RunConfig makeRunConfig(RunConfig base, const SubmitParams& p) {
  if (p.algorithm == "gpu") {
    base.algorithm = Algorithm::kGpuIcd;
  } else if (p.algorithm == "seq") {
    base.algorithm = Algorithm::kSequentialIcd;
  } else if (p.algorithm == "psv") {
    base.algorithm = Algorithm::kPsvIcd;
  } else {
    throw Error("unknown algorithm '" + p.algorithm +
                "' (expected gpu|seq|psv)");
  }
  if (p.max_equits > 0.0) base.max_equits = p.max_equits;
  if (p.stop_rmse_hu) base.stop_rmse_hu = *p.stop_rmse_hu;
  if (p.sv_side > 0) {
    base.gpu.tunables.sv.sv_side = p.sv_side;
    base.psv.sv.sv_side = p.sv_side;
  }
  // Parse eagerly so a bad value fails the submit, not the job; resolve
  // eagerly so forcing avx2 on an incapable server does too.
  if (!p.simd.empty()) {
    base.simd = parseSimdMode(p.simd);
    resolveSimdOps(base.simd);
  }
  // Accepted == reproducible: PSV with >1 thread is the one lock-racing
  // engine, so the service always pins it (DESIGN.md §7).
  base.psv.num_threads = 1;
  return base;
}

// ---------------------------------------------------------------------------
// Result-cache keys
// ---------------------------------------------------------------------------

std::string cacheConfigKey(const RunConfig& base, const SubmitParams& p) {
  const RunConfig c = makeRunConfig(base, p);
  // Engine-dependent result knobs: only the engine that runs reads its SV
  // side / update-order seed, so keying on the other engine's values would
  // split identical results across distinct keys.
  int sv_side = 0;
  std::uint64_t seed = 0;
  if (c.algorithm == Algorithm::kGpuIcd) {
    sv_side = c.gpu.tunables.sv.sv_side;
    seed = c.gpu.seed;
  } else if (c.algorithm == Algorithm::kPsvIcd) {
    sv_side = c.psv.sv.sv_side;
    seed = c.psv.seed;
  }
  // A single-slab "sharded" job is the unsharded computation.
  const int shards = p.shards > 1 ? p.shards : 1;
  const int halo = p.shards > 1 ? p.shard_halo : 0;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "alg=%s;max_equits=%.17g;stop_rmse_hu=%.17g;sv=%d;seed=%llu;"
                "shards=%d;halo=%d",
                algorithmName(c.algorithm), c.max_equits, c.stop_rmse_hu,
                sv_side, static_cast<unsigned long long>(seed), shards, halo);
  return buf;
}

std::uint64_t hashCaseInputs(const OwnedProblem& problem,
                             const Image2D& golden) {
  const auto& scan = problem.scan();
  const auto& geom = problem.geometry();
  const std::uint64_t parts[6] = {
      fnv1a64(scan.y.flat()),
      fnv1a64(scan.weights.flat()),
      fnv1a64(golden.flat()),
      std::uint64_t(geom.num_views),
      std::uint64_t(geom.num_channels),
      std::uint64_t(geom.image_size),
  };
  return fnv1a64(parts, sizeof parts);
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

void beginResponse(obs::JsonWriter& w, bool ok) {
  w.beginObject();
  w.kv("schema", kProtocolSchema);
  w.kv("ok", ok);
}

std::string errorResponse(std::string_view message, bool rejected) {
  obs::JsonWriter w;
  beginResponse(w, false);
  w.kv("error", message);
  if (rejected) w.kv("rejected", true);
  w.endObject();
  return w.str();
}

}  // namespace mbir::svc
