// gpumbir.svc/1 — wire protocol of the online reconstruction service.
//
// Transport framing: every message (request or response) is one frame —
//   [4-byte big-endian payload length][payload bytes]
// where the payload is a single strict-JSON document (the src/obs writer /
// parser; no other serialization code exists in the service). A frame whose
// declared length exceeds the configured cap is rejected without reading
// the body, so a hostile or corrupted prefix cannot make the server buffer
// unbounded data.
//
// Requests carry {"schema":"gpumbir.svc/1","verb":...} plus verb-specific
// fields; responses carry {"schema":"gpumbir.svc/1","ok":true|false,...}.
// Verbs: submit / status / cancel / result / stats / flight / chaos /
// drain / ping.
// Field access is
// strictly typed (wrong-typed or non-integral fields throw mbir::Error,
// which the server turns into an ok:false response) — combined with the
// parser's strictness (finite numbers only, valid UTF-16 escapes) nothing
// non-finite or malformed reaches the dispatcher.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "recon/reconstructor.h"

namespace mbir::svc {

inline constexpr std::string_view kProtocolSchema = "gpumbir.svc/1";
inline constexpr std::string_view kReportSchema = "gpumbir.svc_report/1";
inline constexpr std::string_view kStatsSchema = "gpumbir.svc_stats/1";
inline constexpr std::size_t kFrameHeaderBytes = 4;
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Prepend the 4-byte big-endian length header to a payload.
std::string encodeFrame(std::string_view payload);

enum class FrameStatus {
  kOk,         ///< one full frame read into `payload`
  kClosed,     ///< clean EOF at a frame boundary
  kTruncated,  ///< peer closed mid-header or mid-payload
  kOversized,  ///< declared length exceeds the cap (body not read)
  kError,      ///< read error (errno path)
};
const char* frameStatusName(FrameStatus s);

/// Blocking read of one frame from a connected socket/pipe fd.
FrameStatus readFrame(int fd, std::string& payload,
                      std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Blocking write of one framed payload; false on error / peer reset.
bool writeFrame(int fd, std::string_view payload);

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A parsed, schema-checked request with strictly-typed field access.
struct Request {
  std::string verb;
  obs::JsonValue doc;

  bool has(const std::string& key) const { return doc.find(key) != nullptr; }
  /// Typed accessors: absent fields yield the default; present fields of
  /// the wrong type (or non-integral where an int is required) throw.
  std::int64_t getInt(const std::string& key, std::int64_t def) const;
  double getDouble(const std::string& key, double def) const;
  bool getBool(const std::string& key, bool def) const;
  std::string getString(const std::string& key, const std::string& def) const;
};

/// Parse + validate a request payload (schema and verb fields are
/// mandatory). Throws mbir::Error on malformed JSON or schema mismatch.
Request parseRequest(std::string_view payload);

// ---------------------------------------------------------------------------
// Submit parameters
// ---------------------------------------------------------------------------

/// Everything a submit request can say, in both directions: the client
/// serializes it, the server parses it, and makeRunConfig() maps it onto a
/// RunConfig identically on both sides (tests reuse the same mapping to
/// build their serial BatchScheduler baselines, so the deterministic-mode
/// bit-identity claim is checked against the exact config the server runs).
struct SubmitParams {
  int case_index = 0;
  /// "gpu" | "seq" | "psv" (GpuIcd / SequentialIcd / PsvIcd).
  std::string algorithm = "gpu";
  /// <= 0 keeps the server's base-config value.
  double max_equits = 0.0;
  /// Overrides the base config when set (0 = RMSE stop disabled is a valid
  /// override, hence the optional).
  std::optional<double> stop_rmse_hu;
  /// SuperVoxel side override for gpu/psv engines; 0 = keep base config.
  int sv_side = 0;
  /// Higher runs first (priority lane); ties dispatch in submission order.
  int priority = 0;
  /// Host-clock deadline in ms from admission; expired queued jobs are
  /// failed fast at dispatch, never run. < 0 = no deadline.
  double deadline_ms = -1.0;
  /// Route through the deterministic FIFO round-robin lane (bit-identical
  /// to BatchScheduler::runAll; priority/deadline are ignored).
  bool deterministic = false;
  /// > 1 = single-job multi-device slab sharding (DESIGN.md §13): the job
  /// runs as one gang over min(shards, devices) devices. Priority lane
  /// only — sharded+deterministic submits are rejected.
  int shards = 1;
  /// Halo rows exchanged per outer iteration between adjacent slabs.
  int shard_halo = 1;
  /// Lane-group execution path override: "off"|"auto"|"avx2" (empty = keep
  /// the server's base config / GPUMBIR_SIMD). Purely a wall-clock knob —
  /// scalar and AVX2 are bit-identical — so jobs stay reproducible
  /// regardless of what the client picks; an unknown value or forcing avx2
  /// on an incapable server fails the submit with ok:false.
  std::string simd;
  std::string name;
  /// Tenant for per-tenant svc.* metric labels ("" = default tenant).
  std::string tenant;
  /// Forced chaos fault for this job ("" = none): "launch@N", "stall@N",
  /// or "death" (chaos::parseFaultSpec). Validated at submit on both
  /// sides; stall/death additionally require the server's watchdog armed.
  std::string fault;
  /// Skip the result cache for this submit (no exact-hit serve, no warm
  /// start); the finished cold-run result is still inserted. reconctl's
  /// --no-cache flag.
  bool bypass_cache = false;
};

/// Serialize a submit request payload.
std::string encodeSubmit(const SubmitParams& p);
/// Extract SubmitParams from a parsed submit request (validates types).
SubmitParams parseSubmitParams(const Request& req);
/// The server-side (and test-baseline) mapping of submit params onto the
/// service's base RunConfig. PSV jobs are pinned to one thread — the only
/// deterministic PSV mode (DESIGN.md §7) — so any accepted job is exactly
/// reproducible.
RunConfig makeRunConfig(RunConfig base, const SubmitParams& p);

// ---------------------------------------------------------------------------
// Result-cache keys (src/store)
// ---------------------------------------------------------------------------

/// Canonical string naming everything about the resolved run config that
/// can change the result bits — algorithm, equit budget, stop criterion,
/// SV side, GPU seed, shard layout — and nothing that cannot (SIMD path is
/// bit-identical; priority / deadline / tenant / deterministic routing only
/// change WHEN a job runs). Two submits with equal keys and equal inputs
/// produce bit-identical images, which is what lets the cache serve exact
/// hits without dispatching. Throws exactly like makeRunConfig on invalid
/// params.
std::string cacheConfigKey(const RunConfig& base, const SubmitParams& p);

/// FNV-1a fingerprint of a case's result-determining inputs: measurement
/// sinogram, statistical weights, golden image (it defines the RMSE stop
/// criterion) and geometry dimensions. Two cases share a fingerprint only
/// if those are bit-identical.
std::uint64_t hashCaseInputs(const OwnedProblem& problem,
                             const Image2D& golden);

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Open a response object and write schema + ok; caller adds fields and
/// closes the object.
void beginResponse(obs::JsonWriter& w, bool ok);
/// Complete ok:false payload. `rejected` marks admission backpressure
/// (distinguishes "queue full, retry later" from protocol errors).
std::string errorResponse(std::string_view message, bool rejected = false);

}  // namespace mbir::svc
