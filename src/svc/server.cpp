#include "svc/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <optional>
#include <sys/socket.h>
#include <unistd.h>

#include "core/error.h"
#include "core/hash.h"

namespace mbir::svc {

namespace {

void writeJobStatus(obs::JsonWriter& w, const JobStatus& s) {
  w.kv("job_id", s.job_id);
  w.kv("name", s.name);
  if (!s.tenant.empty()) w.kv("tenant", s.tenant);
  w.kv("state", jobStateName(s.state));
  w.kv("priority", s.priority);
  w.kv("deterministic", s.deterministic);
  if (s.deadline_ms >= 0.0) w.kv("deadline_ms", s.deadline_ms);
  if (s.shards > 1) w.kv("shards", s.shards);
  w.kv("device", s.device);
  w.kv("dispatch_seq", s.dispatch_seq);
  w.kv("queue_wait_host_s", s.queue_wait_host_s);
  w.kv("service_host_s", s.service_host_s);
  w.kv("e2e_host_s", s.e2e_host_s);
  if (s.migrations > 0) w.kv("migrations", s.migrations);
  if (s.recoveries > 0) w.kv("recoveries", s.recoveries);
  w.kv("cache_hit", s.cache_hit);
  if (s.warm_start) w.kv("warm_start", true);
  if (isTerminal(s.state) && (s.dispatch_seq >= 0 || s.cache_hit)) {
    w.kv("converged", s.converged);
    w.kv("equits", s.equits);
    w.kv("final_rmse_hu", s.final_rmse_hu);
    w.kv("modeled_seconds", s.modeled_seconds);
    w.kv("queue_wait_modeled_s", s.queue_wait_modeled_s);
  }
  if (!s.error.empty()) w.kv("error", s.error);
  if (s.has_image) w.kv("image_hash", hashToHex(s.image_hash));
}

}  // namespace

Server::Server(ServerOptions options, JobSource& source)
    : opt_(std::move(options)),
      source_(source),
      dispatcher_(makeDispatchOptions()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MBIR_CHECK_MSG(listen_fd_ >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind(127.0.0.1:" + std::to_string(opt_.port) + "): " + err);
  }
  MBIR_CHECK_MSG(::listen(listen_fd_, 64) == 0,
                 "listen(): " << std::strerror(errno));

  socklen_t len = sizeof addr;
  MBIR_CHECK_MSG(
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname(): " << std::strerror(errno));
  port_ = ntohs(addr.sin_port);

  // Re-dispatch everything the WAL replayed as admitted-but-unfinished
  // before any client can connect, so recovered jobs keep their original
  // admission order relative to new traffic.
  recoverPendingJobs();

  acceptor_ = std::thread([this] { acceptLoop(); });
}

DispatcherOptions Server::makeDispatchOptions() {
  DispatcherOptions d = opt_.dispatch;
  if (opt_.wal || opt_.cache)
    d.on_terminal = [this](const JobStatus& s) { onJobTerminal(s); };
  return d;
}

std::uint64_t Server::caseInputHash(int case_index, const JobSource::Case& c) {
  {
    std::lock_guard lock(store_mu_);
    if (auto it = case_input_hash_.find(case_index);
        it != case_input_hash_.end())
      return it->second;
  }
  // Hash outside the lock (O(sinogram) work); a racing duplicate computes
  // the same value, so the late emplace is a no-op.
  const std::uint64_t h = hashCaseInputs(c.problem, c.golden);
  std::lock_guard lock(store_mu_);
  case_input_hash_.emplace(case_index, h);
  return h;
}

void Server::registerStoreRec(int job_id, StoreRec rec) {
  std::optional<JobStatus> ready;
  {
    std::lock_guard lock(store_mu_);
    // The job may already be terminal: a fast run's on_terminal callback
    // fired before this thread got here and parked its snapshot.
    if (auto it = unclaimed_terminal_.find(job_id);
        it != unclaimed_terminal_.end()) {
      ready = std::move(it->second);
      unclaimed_terminal_.erase(it);
    } else {
      job_store_.emplace(job_id, std::move(rec));
      return;
    }
  }
  finishStoreRec(rec, *ready);
}

void Server::onJobTerminal(const JobStatus& s) {
  StoreRec rec;
  {
    std::lock_guard lock(store_mu_);
    auto it = job_store_.find(s.job_id);
    if (it == job_store_.end()) {
      // Either the submit thread has not registered its StoreRec yet (park
      // the snapshot for it) or this is a cache-hit job, which is never
      // store-tracked: its result was already durable when it was admitted.
      if (!s.cache_hit) unclaimed_terminal_.emplace(s.job_id, s);
      return;
    }
    rec = std::move(it->second);
    job_store_.erase(it);
  }
  finishStoreRec(rec, s);
}

void Server::finishStoreRec(const StoreRec& rec, const JobStatus& s) {
  try {
    // Cache insert BEFORE the WAL terminal: a crash between the two makes
    // the restart replay the job as pending and serve it from the cache —
    // the same bits, delivered exactly once. The opposite order could mark
    // a job finished whose result no incarnation can produce again without
    // a re-run. Only cold runs are inserted, so every cache entry is
    // bit-identical to a cold run of its key.
    if (opt_.cache && s.state == JobState::kDone && s.has_image &&
        !s.warm_start && !s.cache_hit) {
      if (const std::optional<Image2D> img = dispatcher_.image(s.job_id)) {
        store::ResultCache::Meta meta;
        meta.input_hash = rec.input_hash;
        meta.config_key = rec.config_key;
        meta.converged = s.converged;
        meta.equits = s.equits;
        meta.final_rmse_hu = s.final_rmse_hu;
        meta.modeled_seconds = s.modeled_seconds;
        meta.image_hash = s.image_hash;
        opt_.cache->insert(meta, *img);
      }
    }
    if (opt_.wal && rec.wal_id >= 0)
      opt_.wal->appendTerminal(rec.wal_id, jobStateName(s.state),
                               s.image_hash);
  } catch (const std::exception& e) {
    // Store I/O failure must not kill the device thread delivering the
    // callback; the job itself already completed.
    std::fprintf(stderr, "gpumbir: store update for job %d failed: %s\n",
                 s.job_id, e.what());
  }
}

void Server::recoverPendingJobs() {
  if (!opt_.wal) return;
  for (const store::PendingJob& pj : opt_.wal->pending()) {
    try {
      const Request req = parseRequest(pj.params_json);
      const SubmitParams p = parseSubmitParams(req);
      const JobSource::Case c = source_.get(p.case_index);

      JobSpec spec;
      spec.problem = &c.problem;
      spec.golden = &c.golden;
      spec.config = makeRunConfig(opt_.base_config, p);
      spec.name = p.name;
      spec.tenant = p.tenant;
      spec.priority = p.priority;
      spec.deadline_ms = p.deadline_ms;
      spec.deterministic = p.deterministic;
      spec.shards = p.shards;
      spec.shard_halo = p.shard_halo;
      // No fault replay: an injected fault belonged to the crashed
      // incarnation's chaos plan; the recovered job re-runs clean.
      spec.recoveries = pj.recoveries + 1;

      const std::uint64_t input_hash = caseInputHash(p.case_index, c);
      const std::string config_key = cacheConfigKey(opt_.base_config, p);

      // Exact cache hit: this incarnation (or an identical earlier job)
      // already produced the bits — serve them and close the WAL entry.
      // Recovered jobs never warm-start: recovery promises either a
      // bit-identical det-lane re-run or a fresh cold run.
      if (opt_.cache && !p.bypass_cache && !p.deterministic &&
          p.fault.empty()) {
        if (const auto hit = opt_.cache->find(input_hash, config_key)) {
          Dispatcher::CachedResult cr;
          cr.converged = hit->meta.converged;
          cr.equits = hit->meta.equits;
          cr.final_rmse_hu = hit->meta.final_rmse_hu;
          cr.modeled_seconds = hit->meta.modeled_seconds;
          cr.image_hash = hit->meta.image_hash;
          const SubmitOutcome out =
              dispatcher_.submitCached(spec, *hit->image, cr);
          if (out.accepted) {
            // Cache-hit jobs are not store-tracked, so write the terminal
            // record here: the pending entry is now satisfied.
            opt_.wal->appendTerminal(pj.wal_id, "done", cr.image_hash);
            continue;
          }
        }
      }

      // Re-append the admit with the bumped recoveries count first, so a
      // second crash still knows how many times this job has come back.
      opt_.wal->appendAdmit(pj.wal_id, spec.recoveries, pj.params_json);
      const SubmitOutcome out = dispatcher_.submit(spec);
      if (!out.accepted) {
        std::fprintf(stderr,
                     "gpumbir: WAL recovery: wal_id=%lld rejected: %s\n",
                     static_cast<long long>(pj.wal_id), out.reason.c_str());
        continue;
      }
      StoreRec rec;
      rec.wal_id = pj.wal_id;
      rec.input_hash = input_hash;
      rec.config_key = config_key;
      registerStoreRec(out.job_id, std::move(rec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gpumbir: WAL recovery for wal_id=%lld failed: %s\n",
                   static_cast<long long>(pj.wal_id), e.what());
    }
  }
}

Server::~Server() { stop(); }

void Server::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down (or hard failure): acceptor exits
    }
    std::lock_guard lock(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    reapConnectionsLocked();
    Connection& conn = connections_.emplace_back();
    conn.fd = fd;
    conn.thread = std::thread([this, &conn] { handleConnection(conn); });
  }
}

void Server::reapConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      it->thread.join();
      ::close(it->fd);  // closed exactly once, after the thread is gone
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::handleConnection(Connection& conn) {
  std::string payload;
  while (true) {
    const FrameStatus st = readFrame(conn.fd, payload, opt_.max_frame_bytes);
    if (st == FrameStatus::kOversized) {
      // The body was never read, so the stream cannot be resynced: report
      // and drop the connection.
      writeFrame(conn.fd,
                 errorResponse("frame exceeds " +
                               std::to_string(opt_.max_frame_bytes) +
                               " byte limit"));
      break;
    }
    if (st != FrameStatus::kOk) break;  // closed / truncated / read error

    std::string response;
    try {
      const Request req = parseRequest(payload);
      response = handleRequest(req);
    } catch (const std::exception& e) {
      response = errorResponse(e.what());
    }
    if (!writeFrame(conn.fd, response)) break;
  }
  conn.done.store(true, std::memory_order_release);
}

std::string Server::handleRequest(const Request& req) {
  if (req.verb == "submit") return handleSubmit(req);
  if (req.verb == "status") return handleStatus(req);
  if (req.verb == "cancel") return handleCancel(req);
  if (req.verb == "result") return handleResult(req);
  if (req.verb == "stats") return handleStats();
  if (req.verb == "flight") return handleFlight(req);
  if (req.verb == "chaos") return handleChaos(req);
  if (req.verb == "drain") return handleDrain();
  if (req.verb == "ping") {
    obs::JsonWriter w;
    beginResponse(w, true);
    w.kv("verb", "ping");
    w.endObject();
    return w.str();
  }
  return errorResponse("unknown verb '" + req.verb + "'");
}

std::string Server::handleSubmit(const Request& req) {
  const SubmitParams p = parseSubmitParams(req);
  const JobSource::Case c = source_.get(p.case_index);

  JobSpec spec;
  spec.problem = &c.problem;
  spec.golden = &c.golden;
  spec.config = makeRunConfig(opt_.base_config, p);
  spec.name = p.name;
  spec.tenant = p.tenant;
  spec.priority = p.priority;
  spec.deadline_ms = p.deadline_ms;
  spec.deterministic = p.deterministic;
  spec.shards = p.shards;
  spec.shard_halo = p.shard_halo;
  spec.fault = chaos::parseFaultSpec(p.fault);
  // A forced stall/death on a server with no watchdog would park the device
  // forever with nothing to free it — refuse at the door.
  if ((spec.fault.kind == chaos::FaultKind::kStall ||
       spec.fault.kind == chaos::FaultKind::kDeath) &&
      dispatcher_.watchdogMs() <= 0.0)
    return errorResponse("fault '" + p.fault +
                         "' needs an armed watchdog (see the chaos verb)");

  const bool store_on = opt_.wal || opt_.cache;
  std::uint64_t input_hash = 0;
  std::string config_key;
  if (store_on) {
    input_hash = caseInputHash(p.case_index, c);
    config_key = cacheConfigKey(opt_.base_config, p);
  }

  // Result cache: deterministic-lane jobs never consult it (their contract
  // is the re-runnable lane schedule, not a served result — though their
  // cold results are still inserted for others), and a forced-fault submit
  // wants a run, not a lookup.
  if (opt_.cache && !p.bypass_cache && !p.deterministic && p.fault.empty()) {
    // Exact (input, config) hit: serve the finished image without
    // dispatching. No WAL records either — the result was durable before
    // the job existed, so there is nothing to recover.
    if (const auto hit = opt_.cache->find(input_hash, config_key)) {
      Dispatcher::CachedResult cr;
      cr.converged = hit->meta.converged;
      cr.equits = hit->meta.equits;
      cr.final_rmse_hu = hit->meta.final_rmse_hu;
      cr.modeled_seconds = hit->meta.modeled_seconds;
      cr.image_hash = hit->meta.image_hash;
      const SubmitOutcome out = dispatcher_.submitCached(spec, *hit->image, cr);
      if (!out.accepted) return errorResponse(out.reason, /*rejected=*/true);
      obs::JsonWriter w;
      beginResponse(w, true);
      w.kv("verb", "submit");
      w.kv("job_id", out.job_id);
      w.kv("cache_hit", true);
      w.endObject();
      return w.str();
    }
    // Near-duplicate: same inputs under a different config — warm-start
    // from the most-converged cached image. Single-shard only: a sharded
    // job's slab subproblems cannot take a full-size initial image.
    if (p.shards == 1) {
      if (const auto warm =
              opt_.cache->findWarm(input_hash, c.golden.size())) {
        spec.config.initial_image = warm->image;
        spec.warm_start = true;
      }
    }
  }

  const SubmitOutcome out = dispatcher_.submit(spec);
  if (!out.accepted) return errorResponse(out.reason, /*rejected=*/true);

  if (store_on) {
    StoreRec rec;
    rec.input_hash = input_hash;
    rec.config_key = config_key;
    if (opt_.wal) {
      // Durability point: the admit record is on disk before the client
      // sees the ack, so an acknowledged job survives any crash after this.
      rec.wal_id = opt_.wal->nextId();
      opt_.wal->appendAdmit(rec.wal_id, 0, encodeSubmit(p));
    }
    registerStoreRec(out.job_id, std::move(rec));
  }

  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "submit");
  w.kv("job_id", out.job_id);
  w.kv("cache_hit", false);
  w.endObject();
  return w.str();
}

std::string Server::handleStatus(const Request& req) {
  obs::JsonWriter w;
  if (req.has("job")) {
    const int id = int(req.getInt("job", -1));
    if (!dispatcher_.knownJob(id))
      return errorResponse("unknown job id " + std::to_string(id));
    beginResponse(w, true);
    w.kv("verb", "status");
    writeJobStatus(w, dispatcher_.status(id));
    w.endObject();
    return w.str();
  }
  const Dispatcher::Stats s = dispatcher_.stats();
  beginResponse(w, true);
  w.kv("verb", "status");
  w.kv("accepting", s.accepting);
  w.kv("queued", s.queued);
  w.kv("running", s.running);
  w.kv("submitted", std::int64_t(s.submitted));
  w.kv("rejected", std::int64_t(s.rejected));
  w.kv("finished", std::int64_t(s.finished));
  w.kv("num_devices", dispatcher_.numDevices());
  w.kv("queue_capacity", dispatcher_.queueCapacity());
  w.endObject();
  return w.str();
}

std::string Server::handleCancel(const Request& req) {
  if (!req.has("job")) throw Error("cancel needs a 'job' field");
  const int id = int(req.getInt("job", -1));
  if (!dispatcher_.knownJob(id))
    return errorResponse("unknown job id " + std::to_string(id));
  const bool cancelled = dispatcher_.cancel(id);
  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "cancel");
  w.kv("job_id", id);
  w.kv("cancelled", cancelled);  // false = the job was already terminal
  w.endObject();
  return w.str();
}

std::string Server::handleResult(const Request& req) {
  if (!req.has("job")) throw Error("result needs a 'job' field");
  const int id = int(req.getInt("job", -1));
  if (!dispatcher_.knownJob(id))
    return errorResponse("unknown job id " + std::to_string(id));
  const bool include_image = req.getBool("include_image", false);

  // Blocks this connection (only) until the job is terminal. The flush
  // makes this a store sync point: once a client has seen a result, the
  // job's cache insert / WAL terminal record are on disk too.
  const JobStatus s = dispatcher_.waitTerminal(id);
  dispatcher_.flushNotifications();
  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "result");
  writeJobStatus(w, s);
  if (include_image && s.has_image) {
    const std::optional<Image2D> img = dispatcher_.image(id);
    MBIR_CHECK(img.has_value());
    w.key("image").beginObject();
    w.kv("size", img->size());
    // float -> double is exact and the writer prints doubles round-trip
    // (%.17g), so the client reassembles bit-identical pixels.
    w.key("pixels").beginArray();
    for (float v : img->flat()) w.value(double(v));
    w.endArray();
    w.endObject();
  }
  w.endObject();
  return w.str();
}

std::string Server::handleStats() {
  // The live snapshot is built under the dispatcher lock, which the device
  // threads only touch between jobs — a stats scrape never pauses a run.
  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "stats");
  w.key("stats");
  w.raw(dispatcher_.liveStatsJson());
  w.endObject();
  return w.str();
}

std::string Server::handleFlight(const Request& req) {
  const std::string reason = req.getString("reason", "flight verb");
  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "flight");
  w.key("flight");
  w.raw(dispatcher_.flightJson(reason));
  w.endObject();
  return w.str();
}

std::string Server::handleChaos(const Request& req) {
  // With a "seed" field this is an admin write: install a new fault plan
  // (and watchdog) for jobs dispatched from now on. Without one it is a
  // read-only report. Either way the response shows the active plan.
  if (req.has("seed")) {
    chaos::FaultPlan plan;
    plan.seed = std::uint64_t(req.getInt("seed", 0));
    plan.launch_fault_rate = req.getDouble("launch_fault_rate", 0.0);
    plan.stall_rate = req.getDouble("stall_rate", 0.0);
    plan.death_rate = req.getDouble("death_rate", 0.0);
    if (const obs::JsonValue* devs = req.doc.find("target_devices")) {
      if (!devs->isArray())
        throw Error("'target_devices' must be an array of device ids");
      for (const obs::JsonValue& d : devs->array_v) {
        if (!d.isNumber())
          throw Error("'target_devices' must be an array of device ids");
        plan.target_devices.push_back(int(d.num_v));
      }
    }
    plan.validate();
    const double watchdog_ms = req.getDouble("watchdog_ms", 1000.0);
    dispatcher_.setFaultPlan(plan, watchdog_ms);
  }
  const Dispatcher::LiveStats s = dispatcher_.liveStats();
  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "chaos");
  w.kv("enabled", s.chaos_enabled);
  w.kv("watchdog_ms", s.watchdog_ms);
  w.kv("devices_failed", std::int64_t(s.devices_failed));
  w.kv("jobs_migrated", std::int64_t(s.jobs_migrated));
  w.key("plan").raw(dispatcher_.faultPlan().toJson());
  w.endObject();
  return w.str();
}

std::string Server::handleDrain() {
  drainAndReport();
  obs::JsonWriter w;
  beginResponse(w, true);
  w.kv("verb", "drain");
  w.key("report");
  w.raw(dispatcher_.reportJson());
  w.endObject();
  return w.str();
}

const SvcReport& Server::drainAndReport() {
  const SvcReport& rep = dispatcher_.drain();
  drain_requested_.store(true, std::memory_order_release);
  return rep;
}

void Server::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the acceptor out of accept() ...
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // ... then every connection out of readFrame(); join before closing so
  // an fd is never reused while its thread might still touch it.
  std::lock_guard lock(conn_mu_);
  for (Connection& conn : connections_) ::shutdown(conn.fd, SHUT_RDWR);
  for (Connection& conn : connections_) conn.thread.join();
  for (Connection& conn : connections_) ::close(conn.fd);
  connections_.clear();
}

}  // namespace mbir::svc
