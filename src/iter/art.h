// ART — Algebraic Reconstruction Technique (Kaczmarz).
//
// The other non-regularized family of §7: sweep the measurement rows,
// projecting the image onto each row's hyperplane:
//   x += lambda * a_i (y_i - <a_i, x>) / ||a_i||^2.
// The system matrix is stored column-major (per voxel) for ICD, so ART
// first builds a row-major transpose (RowMajorSystem) — itself a useful
// substrate for any row-action method.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/image.h"
#include "geom/sinogram.h"
#include "geom/system_matrix.h"

namespace mbir {

/// Row-major view of the system matrix: per (view, channel) measurement,
/// the voxels it sees and their weights.
class RowMajorSystem {
 public:
  explicit RowMajorSystem(const SystemMatrix& A);

  struct RowEntry {
    std::uint32_t voxel;
    float weight;
  };

  std::span<const RowEntry> row(int view, int channel) const;
  double rowNormSquared(int view, int channel) const {
    return norms_[index(view, channel)];
  }
  int views() const { return views_; }
  int channels() const { return channels_; }
  std::size_t nnz() const { return entries_.size(); }

 private:
  std::size_t index(int view, int channel) const {
    return std::size_t(view) * std::size_t(channels_) + std::size_t(channel);
  }
  int views_, channels_;
  std::vector<std::uint32_t> row_begin_;  // size rows+1
  std::vector<RowEntry> entries_;
  std::vector<double> norms_;
};

struct ArtOptions {
  int sweeps = 10;            ///< full passes over all measurements
  double relaxation = 0.5;    ///< lambda in (0, 2)
  bool nonnegative = true;
  bool randomize_rows = true; ///< randomized Kaczmarz converges faster
  std::uint64_t seed = 3;
};

/// Run ART from a zero start.
Image2D artReconstruct(const SystemMatrix& A, const Sinogram& y,
                       const ArtOptions& options = {});

}  // namespace mbir
