#include "iter/sirt.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "geom/projector.h"

namespace mbir {

double residualNorm(const SystemMatrix& A, const Sinogram& y, const Image2D& x) {
  const Sinogram e = errorSinogram(A, y, x);
  return std::sqrt(e.sumSquares());
}

Image2D sirtReconstruct(const SystemMatrix& A, const Sinogram& y,
                        const SirtOptions& options) {
  MBIR_CHECK(options.iterations >= 1);
  MBIR_CHECK(options.relaxation > 0.0 && options.relaxation < 2.0);
  MBIR_CHECK(y.views() == A.numViews() && y.channels() == A.numChannels());

  // Row sums: project an all-ones image. Column sums: backproject an
  // all-ones sinogram.
  Image2D ones_img(A.geometry().image_size, 1.0f);
  const Sinogram row_sums = forwardProject(A, ones_img);
  Sinogram ones_sino(A.numViews(), A.numChannels());
  for (float& v : ones_sino.flat()) v = 1.0f;
  const Image2D col_sums = backProject(A, ones_sino);

  Image2D x(A.geometry().image_size);
  for (int it = 1; it <= options.iterations; ++it) {
    Sinogram e = errorSinogram(A, y, x);
    // R-weight the residual in place.
    auto ef = e.flat();
    auto rf = row_sums.flat();
    for (std::size_t i = 0; i < ef.size(); ++i)
      ef[i] = rf[i] > 1e-12f ? ef[i] / rf[i] : 0.0f;
    const Image2D update = backProject(A, e);
    for (std::size_t i = 0; i < x.numVoxels(); ++i) {
      const float c = col_sums[i];
      if (c <= 1e-12f) continue;
      float v = x[i] + float(options.relaxation) * update[i] / c;
      if (options.nonnegative) v = std::max(v, 0.0f);
      x[i] = v;
    }
    if (options.on_iteration) {
      const double rn = std::sqrt(errorSinogram(A, y, x).sumSquares());
      options.on_iteration(it, x, rn);
    }
  }
  return x;
}

}  // namespace mbir
