#include "iter/art.h"

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"

namespace mbir {

RowMajorSystem::RowMajorSystem(const SystemMatrix& A)
    : views_(A.numViews()), channels_(A.numChannels()) {
  const std::size_t rows = std::size_t(views_) * std::size_t(channels_);
  // Counting pass.
  std::vector<std::uint32_t> counts(rows, 0);
  for (std::size_t voxel = 0; voxel < A.numVoxels(); ++voxel) {
    for (int v = 0; v < views_; ++v) {
      const auto& r = A.run(voxel, v);
      for (int k = 0; k < int(r.count); ++k)
        ++counts[index(v, int(r.first_channel) + k)];
    }
  }
  row_begin_.resize(rows + 1);
  row_begin_[0] = 0;
  for (std::size_t i = 0; i < rows; ++i)
    row_begin_[i + 1] = row_begin_[i] + counts[i];
  entries_.resize(row_begin_[rows]);
  norms_.assign(rows, 0.0);

  // Filling pass.
  std::vector<std::uint32_t> cursor(row_begin_.begin(), row_begin_.end() - 1);
  for (std::size_t voxel = 0; voxel < A.numVoxels(); ++voxel) {
    for (int v = 0; v < views_; ++v) {
      const auto& r = A.run(voxel, v);
      const auto w = A.weights(voxel, v);
      for (int k = 0; k < int(r.count); ++k) {
        const std::size_t row = index(v, int(r.first_channel) + k);
        entries_[cursor[row]++] = {std::uint32_t(voxel), w[std::size_t(k)]};
        norms_[row] += double(w[std::size_t(k)]) * double(w[std::size_t(k)]);
      }
    }
  }
}

std::span<const RowMajorSystem::RowEntry> RowMajorSystem::row(int view,
                                                              int channel) const {
  const std::size_t i = index(view, channel);
  return {entries_.data() + row_begin_[i],
          std::size_t(row_begin_[i + 1] - row_begin_[i])};
}

Image2D artReconstruct(const SystemMatrix& A, const Sinogram& y,
                       const ArtOptions& options) {
  MBIR_CHECK(options.sweeps >= 1);
  MBIR_CHECK(options.relaxation > 0.0 && options.relaxation < 2.0);
  MBIR_CHECK(y.views() == A.numViews() && y.channels() == A.numChannels());

  const RowMajorSystem rows(A);
  Image2D x(A.geometry().image_size);
  Rng rng(options.seed);

  std::vector<int> order(std::size_t(rows.views()) * std::size_t(rows.channels()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = int(i);

  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    if (options.randomize_rows) rng.shuffle(order);
    for (int flat : order) {
      const int v = flat / rows.channels();
      const int c = flat % rows.channels();
      const double norm = rows.rowNormSquared(v, c);
      if (norm <= 1e-20) continue;
      const auto row = rows.row(v, c);
      double dot = 0.0;
      for (const auto& e : row) dot += double(e.weight) * double(x[e.voxel]);
      const double step = options.relaxation * (double(y(v, c)) - dot) / norm;
      for (const auto& e : row) {
        float nv = x[e.voxel] + float(step * double(e.weight));
        if (options.nonnegative) nv = std::max(nv, 0.0f);
        x[e.voxel] = nv;
      }
    }
  }
  return x;
}

}  // namespace mbir
