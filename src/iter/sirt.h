// SIRT — Simultaneous Iterative Reconstruction Technique.
//
// The paper's related-work (§7) contrasts MBIR with non-regularized
// iterative methods: SIRT projects the whole volume each iteration,
//   x_{k+1} = clamp( x_k + lambda * C A^T R (y - A x_k) ),
// with R = diag(1/row sums) and C = diag(1/column sums). It lacks a
// convergence criterion beyond a stopping time (§7) — exposed here as a
// fixed iteration count — and serves as a quality/behaviour baseline for
// the examples and tests.
#pragma once

#include <functional>

#include "geom/image.h"
#include "geom/sinogram.h"
#include "geom/system_matrix.h"

namespace mbir {

struct SirtOptions {
  int iterations = 50;
  double relaxation = 1.0;  ///< lambda in (0, 2)
  bool nonnegative = true;
  /// Optional per-iteration observer: fn(iteration, x, residual_norm).
  std::function<void(int, const Image2D&, double)> on_iteration;
};

/// Run SIRT from a zero (or caller-provided) start.
Image2D sirtReconstruct(const SystemMatrix& A, const Sinogram& y,
                        const SirtOptions& options = {});

/// Weighted residual norm ||y - A x||_2 (unweighted 2-norm).
double residualNorm(const SystemMatrix& A, const Sinogram& y, const Image2D& x);

}  // namespace mbir
