#include "sched/sharded.h"

#include <utility>

#include "core/timer.h"

namespace mbir::sched {

double runShardedJobOnDevices(const DeviceRunContext& ctx,
                              const OwnedProblem& problem,
                              const Image2D& golden,
                              const shard::ShardConfig& config,
                              const std::atomic<bool>& cancel_flag,
                              double device_clock_s, JobResult& r,
                              shard::ShardRunResult* shard_out) {
  obs::Recorder* rec = ctx.recorder;
  const bool tracing = rec && rec->traceOn();
  r.device = ctx.device;
  r.queue_wait_modeled_s = device_clock_s;
  r.device_start_modeled_s = device_clock_s;
  const double host_t0_us = tracing ? rec->trace().nowHostUs() : 0.0;
  const WallTimer job_wall;

  shard::ShardConfig sc = config;
  sc.base.cancel = &cancel_flag;
  sc.base.external_recorder = rec;
  sc.base.trace_pid = ctx.trace_pid;
  sc.base.span = ctx.span;
  if (ctx.fault_hook) sc.base.fault_hook = ctx.fault_hook;
  if (ctx.host_pool && !sc.base.gpu.host_pool)
    sc.base.gpu.host_pool = ctx.host_pool;
  shard::ShardRunResult sr;
  try {
    sr = shard::reconstructSharded(problem, golden, sc);
    r.run = std::move(sr.run);
    r.cancelled = r.run.cancelled;
    if (shard_out) {
      shard_out->shard = sr.shard;
      shard_out->plan = sr.plan;
      shard_out->devices = sr.devices;
      shard_out->link_name = sr.link_name;
    }
  } catch (const std::exception& e) {
    r.failed = true;
    r.error = e.what();
  } catch (...) {
    r.failed = true;
    r.error = "unknown exception";
  }
  r.host_seconds = job_wall.seconds();
  const double clock_after = device_clock_s + r.run.modeled_seconds;
  r.device_end_modeled_s = clock_after;

  if (rec && rec->metricsOn())
    rec->metrics()
        .counter("sched.busy_ms", {{"device", std::to_string(ctx.device)}})
        .add(std::uint64_t(r.host_seconds * 1e3 + 0.5));

  if (tracing) {
    std::vector<std::pair<std::string, double>> num_args = {
        {"job_id", double(r.job_id)},
        {"device", double(ctx.device)},
        {"devices", double(config.devices)},
        {"slabs", double(config.plan.numSlabs())},
        {"equits", r.run.equits},
        {"rmse_hu", r.run.final_rmse_hu},
        {"queue_wait_modeled_s", r.queue_wait_modeled_s}};
    std::vector<std::pair<std::string, std::string>> str_args = {
        {"job", r.name}, {"algorithm", "GPU-ICD (sharded)"}};
    if (ctx.span && !ctx.span->tenant.empty())
      str_args.emplace_back("tenant", ctx.span->tenant);
    obs::TraceEvent host_ev;
    host_ev.name = ctx.span_prefix + ".job";
    host_ev.cat = ctx.span_prefix;
    host_ev.clock = obs::Clock::kHost;
    host_ev.ts_us = host_t0_us;
    host_ev.dur_us = rec->trace().nowHostUs() - host_t0_us;
    host_ev.tid = ctx.span ? ctx.span->host_tid : 0;
    host_ev.num_args = num_args;
    host_ev.str_args = str_args;
    obs::TraceEvent dev_ev;
    dev_ev.name = ctx.span_prefix + ".job." + r.name;
    dev_ev.cat = ctx.span_prefix;
    dev_ev.clock = obs::Clock::kModeled;
    dev_ev.pid = ctx.trace_pid;
    dev_ev.ts_us = r.device_start_modeled_s * 1e6;
    dev_ev.dur_us = (r.device_end_modeled_s - r.device_start_modeled_s) * 1e6;
    dev_ev.num_args = num_args;
    dev_ev.str_args = str_args;
    rec->trace().record(std::move(host_ev));
    rec->trace().record(std::move(dev_ev));
  }
  return clock_after;
}

}  // namespace mbir::sched
