// Dispatch of one sharded job over multiple simulated devices.
//
// runShardedJobOnDevices() is the gang sibling of runJobOnDevice(): the
// same plumbing (context application, failure isolation, queue-wait
// bookkeeping, host/modeled job spans) applied to a shard::ShardConfig
// instead of a plain RunConfig. The job is ONE logical job — it occupies
// `config.devices` devices simultaneously, and the returned clock advance
// applies to every device in the gang (they synchronize at each halo
// exchange, so all gang members end at the same modeled time). Used by the
// online service dispatcher (src/svc) for `shards > 1` submissions.
#pragma once

#include "sched/scheduler.h"
#include "shard/shard_job.h"

namespace mbir::sched {

/// Run one sharded job spanning config.devices simulated devices.
/// ctx.device / ctx.trace_pid identify the gang *leader* (lowest device);
/// the shard runner attributes exchange/transfer spans to that pid.
/// Applies ctx to config.base exactly like runJobOnDevice (cancel flag,
/// shared recorder, trace pid, span, fault hook, host pool), isolates
/// failures into `out`, fills out.run from the sharded result and
/// `*shard_out` (when non-null) with the shard-level stats + plan, and
/// returns the gang's device clock after the job (start clock + the
/// synchronized sharded modeled seconds).
double runShardedJobOnDevices(const DeviceRunContext& ctx,
                              const OwnedProblem& problem,
                              const Image2D& golden,
                              const shard::ShardConfig& config,
                              const std::atomic<bool>& cancel_flag,
                              double device_clock_s, JobResult& out,
                              shard::ShardRunResult* shard_out = nullptr);

}  // namespace mbir::sched
