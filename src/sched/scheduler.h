// Batched multi-job reconstruction scheduler over multi-device gsim.
//
// A BatchScheduler accepts a queue of independent reconstruction jobs (each
// an OwnedProblem + golden + RunConfig) and shards them across D simulated
// GPU devices. Every job constructs its own engine — for GPU-ICD that means
// its own gsim::GpuSimulator instance with independent caches and modeled
// clock — so devices never share simulated state; the scheduler adds the
// per-device *cumulative* modeled clock on top (job k's modeled queue wait
// is the device clock when it starts). One driver thread per device walks
// that device's jobs in submission order; the functional kernel work of all
// devices lands on one shared host ThreadPool (safe because parallelFor
// completion is tracked per call — see core/thread_pool.h).
//
// Determinism: job -> device assignment is round-robin by job id (job i runs
// on device i % D), each device runs its jobs in submission order, and the
// per-job reconstruction is exactly reconstruct() — so results (images,
// stats, modeled seconds) are bit-identical to running the same jobs
// serially, for any device count and any host thread count, as long as the
// per-job config is itself deterministic (sequential ICD, GPU-ICD, or
// PSV-ICD with num_threads == 1; see DESIGN.md §7). Asserted by
// tests/test_sched.cpp.
//
// Observability: with a shared obs::Recorder, each device registers as its
// own trace process (pid = base_trace_pid + d) so per-device modeled
// timelines render side by side, and the scheduler records sched.* metrics
// (queue-wait histogram, per-job host seconds, completion counters).
// Purely observational: results are bit-identical with or without it.
#pragma once

#include <atomic>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "recon/reconstructor.h"

namespace mbir::chaos {
class FaultInjector;  // chaos/fault.h
}

namespace mbir::sched {

struct SchedulerOptions {
  /// Number of simulated devices jobs are sharded across (>= 1).
  int num_devices = 1;
  /// Shared host pool the simulated kernel blocks of every device execute
  /// on (nullptr = the process-wide pool). Injected as each GPU job's
  /// host_pool unless the job set its own. Wall-clock only: results are
  /// bit-identical for any pool size.
  ThreadPool* host_pool = nullptr;
  /// Shared observability session for the whole batch (nullptr = off).
  /// Passed to every job as RunConfig::external_recorder.
  obs::Recorder* recorder = nullptr;
  /// Trace pid of device 0; device d renders as pid base_trace_pid + d
  /// (pids 1/2 are the builtin host/modeled clock processes).
  int base_trace_pid = 10;
  /// Seed-driven fault injection (nullptr = off, chaos/fault.h). The batch
  /// scheduler honors *launch* faults only — its device drivers have no
  /// watchdog, so stall/death decisions are ignored offline (the online
  /// dispatcher, src/svc, models all three). Borrowed; must outlive
  /// runAll(). The fault schedule depends only on (plan seed, job id), so
  /// the same plan replays identically online and offline.
  const chaos::FaultInjector* injector = nullptr;
};

/// Outcome of one job. Stable address once runAll() starts (futures resolve
/// to pointers into the scheduler; valid while the scheduler lives).
/// Also the per-job record of the online service dispatcher (src/svc),
/// which runs jobs through the same runJobOnDevice() plumbing.
struct JobResult {
  int job_id = -1;
  int device = -1;
  std::string name;
  bool cancelled = false;  ///< stopped by cancel() at an iteration boundary
  bool failed = false;     ///< reconstruct() threw
  std::string error;       ///< exception message when failed
  /// Modeled seconds this job waited behind earlier jobs on its device
  /// (= the device's cumulative modeled clock when it started).
  double queue_wait_modeled_s = 0.0;
  double device_start_modeled_s = 0.0;
  double device_end_modeled_s = 0.0;
  /// Real host wall-clock of this job's reconstruct() call.
  double host_seconds = 0.0;
  RunResult run;
};

/// Aggregate throughput report for one runAll().
struct BatchReport {
  int jobs_total = 0;
  int jobs_converged = 0;
  int jobs_cancelled = 0;
  int jobs_failed = 0;
  /// Real host wall-clock of the whole batch (all devices in flight).
  double host_seconds = 0.0;
  double jobs_per_host_second = 0.0;
  /// Sum of per-job modeled seconds across all devices.
  double modeled_device_seconds_total = 0.0;
  double modeled_device_seconds_per_job = 0.0;
  /// Largest per-device cumulative modeled clock = batch completion time on
  /// the modeled hardware.
  double makespan_modeled_s = 0.0;
  /// Modeled queue-wait distribution over jobs.
  double queue_wait_mean_s = 0.0;
  double queue_wait_max_s = 0.0;
  /// Final cumulative modeled clock per device.
  std::vector<double> device_modeled_s;
};

/// Everything one simulated device needs to run a job: the plumbing the
/// scheduler (and the online service dispatcher, src/svc) applies on top of
/// a caller-provided RunConfig.
struct DeviceRunContext {
  obs::Recorder* recorder = nullptr;  ///< shared session (nullptr = off)
  ThreadPool* host_pool = nullptr;    ///< injected unless the job set its own
  int device = 0;
  int trace_pid = 0;
  /// Trace span naming: "<prefix>.job" on the host clock and
  /// "<prefix>.job.<name>" on the device's modeled clock ("sched" for the
  /// batch scheduler, "svc" for the online service).
  std::string span_prefix = "sched";
  /// Per-job span context (obs/span.h), set by the caller before each
  /// runJobOnDevice call (nullptr = none): propagated down to recon and
  /// gsim so every span of the job — job, iterations, launches — shares
  /// the job's identity and host-clock device lane. Purely observational.
  const obs::JobSpanContext* span = nullptr;
  /// Fault-injection hook for this run (nullptr = none, gsim/fault.h):
  /// overrides the job config's hook so the dispatch layer owns fault
  /// scoping. Set per runJobOnDevice call, like `span`.
  gsim::FaultHook* fault_hook = nullptr;
};

/// Run one job on a simulated device: applies the context to the job's
/// RunConfig (cancel flag, shared recorder, device trace pid, host pool),
/// isolates failures (a throwing job is recorded, never propagated),
/// advances the device's cumulative modeled clock from `device_clock_s`,
/// and records the host/modeled trace spans. Fills `out` (queue wait,
/// run outcome, host seconds) — out.job_id/name/device are the caller's —
/// and returns the device clock after the job. This is the single execution
/// path shared by BatchScheduler::runAll and svc::Dispatcher, so offline
/// and online dispatch cannot drift semantically.
double runJobOnDevice(const DeviceRunContext& ctx, const OwnedProblem& problem,
                      const Image2D& golden, const RunConfig& config,
                      const std::atomic<bool>& cancel_flag,
                      double device_clock_s, JobResult& out);

class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerOptions options = {});
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueue a job; returns its id. Job i is assigned to device
  /// i % num_devices (deterministic). `problem` and `golden` are borrowed
  /// and must outlive runAll(). Must be called before runAll().
  int submit(const OwnedProblem& problem, const Image2D& golden,
             RunConfig config, std::string name = {});

  int jobCount() const { return int(jobs_.size()); }
  int numDevices() const { return opt_.num_devices; }

  /// Future resolving to the job's result when it finishes (during
  /// runAll()). Valid to request before or after runAll().
  std::shared_future<const JobResult*> future(int job_id);

  /// Request cooperative cancellation: the job stops at its next iteration
  /// boundary (JobResult::cancelled). Callable any time — before runAll()
  /// or from another thread while the batch is in flight.
  void cancel(int job_id);

  /// Run every queued job to completion across the devices (blocking).
  /// One driver thread per device; call at most once.
  const BatchReport& runAll();

  /// Completed-job access (after runAll()).
  const JobResult& result(int job_id) const;
  const BatchReport& report() const;

  /// Machine-readable batch report (schema gpumbir.batch_report/1):
  /// aggregates + one entry per job. After runAll().
  std::string reportJson() const;
  void writeReportJson(const std::string& path) const;

 private:
  struct Job {
    const OwnedProblem* problem = nullptr;
    const Image2D* golden = nullptr;
    RunConfig config;
    std::string name;
    std::atomic<bool> cancel_flag{false};
    std::promise<const JobResult*> promise;
    std::shared_future<const JobResult*> future;
    JobResult result;
  };

  void driveDevice(int device);
  int tracePid(int device) const { return opt_.base_trace_pid + device; }

  SchedulerOptions opt_;
  std::deque<Job> jobs_;  // deque: Jobs hold atomics/promises, never relocate
  BatchReport report_;
  bool ran_ = false;
};

}  // namespace mbir::sched
