#include "sched/scheduler.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <thread>

#include "chaos/fault.h"
#include "core/error.h"
#include "core/timer.h"
#include "obs/json.h"

namespace mbir::sched {

namespace {

/// sched.* instruments, resolved once before the driver threads start so
/// the per-job path never touches the registry mutex.
struct Instruments {
  obs::Counter* completed = nullptr;
  obs::Counter* cancelled = nullptr;
  obs::Counter* failed = nullptr;
  obs::Histogram* queue_wait = nullptr;
  obs::Histogram* job_host_seconds = nullptr;
};

Instruments resolveInstruments(obs::Recorder* rec) {
  Instruments inst;
  if (rec && rec->metricsOn()) {
    obs::MetricsRegistry& m = rec->metrics();
    inst.completed = &m.counter("sched.jobs.completed");
    inst.cancelled = &m.counter("sched.jobs.cancelled");
    inst.failed = &m.counter("sched.jobs.failed");
    inst.queue_wait = &m.histogram("sched.queue_wait_modeled_s");
    inst.job_host_seconds = &m.histogram("sched.job.host_seconds");
  }
  return inst;
}

}  // namespace

double runJobOnDevice(const DeviceRunContext& ctx, const OwnedProblem& problem,
                      const Image2D& golden, const RunConfig& config,
                      const std::atomic<bool>& cancel_flag,
                      double device_clock_s, JobResult& r) {
  obs::Recorder* rec = ctx.recorder;
  const bool tracing = rec && rec->traceOn();
  r.device = ctx.device;
  r.queue_wait_modeled_s = device_clock_s;
  r.device_start_modeled_s = device_clock_s;
  const double host_t0_us = tracing ? rec->trace().nowHostUs() : 0.0;
  const WallTimer job_wall;

  RunConfig rc = config;
  rc.cancel = &cancel_flag;
  rc.external_recorder = rec;
  rc.trace_pid = ctx.trace_pid;
  rc.span = ctx.span;
  if (ctx.fault_hook) rc.fault_hook = ctx.fault_hook;
  if (ctx.host_pool && !rc.gpu.host_pool) rc.gpu.host_pool = ctx.host_pool;
  try {
    r.run = reconstruct(problem, golden, rc);
    r.cancelled = r.run.cancelled;
  } catch (const std::exception& e) {
    r.failed = true;
    r.error = e.what();
  } catch (...) {
    r.failed = true;
    r.error = "unknown exception";
  }
  r.host_seconds = job_wall.seconds();
  const double clock_after = device_clock_s + r.run.modeled_seconds;
  r.device_end_modeled_s = clock_after;

  // Per-device busy time, labeled so the registry splits utilization by
  // device — the live stats verb and svc_report read it back directly.
  // One registry lookup per finished job, not per iteration.
  if (rec && rec->metricsOn())
    rec->metrics()
        .counter("sched.busy_ms", {{"device", std::to_string(ctx.device)}})
        .add(std::uint64_t(r.host_seconds * 1e3 + 0.5));

  if (tracing) {
    std::vector<std::pair<std::string, double>> num_args = {
        {"job_id", double(r.job_id)},
        {"device", double(ctx.device)},
        {"equits", r.run.equits},
        {"rmse_hu", r.run.final_rmse_hu},
        {"queue_wait_modeled_s", r.queue_wait_modeled_s}};
    if (r.run.warm_started) num_args.emplace_back("warm_start", 1.0);
    std::vector<std::pair<std::string, std::string>> str_args = {
        {"job", r.name}, {"algorithm", algorithmName(rc.algorithm)}};
    if (ctx.span && !ctx.span->tenant.empty())
      str_args.emplace_back("tenant", ctx.span->tenant);
    obs::TraceEvent host_ev;
    host_ev.name = ctx.span_prefix + ".job";
    host_ev.cat = ctx.span_prefix;
    host_ev.clock = obs::Clock::kHost;
    host_ev.ts_us = host_t0_us;
    host_ev.dur_us = rec->trace().nowHostUs() - host_t0_us;
    host_ev.tid = ctx.span ? ctx.span->host_tid : 0;
    host_ev.num_args = num_args;
    host_ev.str_args = str_args;
    obs::TraceEvent dev_ev;
    dev_ev.name = ctx.span_prefix + ".job." + r.name;
    dev_ev.cat = ctx.span_prefix;
    dev_ev.clock = obs::Clock::kModeled;
    dev_ev.pid = ctx.trace_pid;
    dev_ev.ts_us = r.device_start_modeled_s * 1e6;
    dev_ev.dur_us = (r.device_end_modeled_s - r.device_start_modeled_s) * 1e6;
    dev_ev.num_args = num_args;
    dev_ev.str_args = str_args;
    rec->trace().record(std::move(host_ev));
    rec->trace().record(std::move(dev_ev));
  }
  return clock_after;
}

BatchScheduler::BatchScheduler(SchedulerOptions options) : opt_(std::move(options)) {
  MBIR_CHECK_MSG(opt_.num_devices >= 1, "scheduler needs at least one device");
}

BatchScheduler::~BatchScheduler() = default;

int BatchScheduler::submit(const OwnedProblem& problem, const Image2D& golden,
                           RunConfig config, std::string name) {
  MBIR_CHECK_MSG(!ran_, "submit() after runAll()");
  const int id = int(jobs_.size());
  Job& job = jobs_.emplace_back();
  job.problem = &problem;
  job.golden = &golden;
  job.config = std::move(config);
  job.name = name.empty() ? "job" + std::to_string(id) : std::move(name);
  job.future = job.promise.get_future().share();
  job.result.job_id = id;
  job.result.device = id % opt_.num_devices;
  job.result.name = job.name;
  return id;
}

std::shared_future<const JobResult*> BatchScheduler::future(int job_id) {
  MBIR_CHECK_MSG(job_id >= 0 && job_id < jobCount(), "unknown job id");
  return jobs_[std::size_t(job_id)].future;
}

void BatchScheduler::cancel(int job_id) {
  MBIR_CHECK_MSG(job_id >= 0 && job_id < jobCount(), "unknown job id");
  jobs_[std::size_t(job_id)].cancel_flag.store(true, std::memory_order_release);
}

void BatchScheduler::driveDevice(int device) {
  obs::Recorder* rec = opt_.recorder;
  const Instruments inst = resolveInstruments(rec);
  DeviceRunContext ctx;
  ctx.recorder = rec;
  ctx.host_pool = opt_.host_pool;
  ctx.device = device;
  ctx.trace_pid = tracePid(device);
  double clock_s = 0.0;  // this device's cumulative modeled clock
  for (std::size_t i = std::size_t(device); i < jobs_.size();
       i += std::size_t(opt_.num_devices)) {
    Job& job = jobs_[i];
    JobResult& r = job.result;
    obs::JobSpanContext span;
    span.job_id = r.job_id;
    span.job_name = job.name;
    span.device = device;
    span.trace_pid = ctx.trace_pid;
    span.host_tid = device + 1;  // host-clock lane per device; 0 = control
    ctx.span = &span;
    // Offline chaos: launch faults only (no watchdog to resolve a stall or
    // death — see SchedulerOptions::injector). The hook lives on this
    // frame, scoped to exactly this run.
    chaos::JobFault fault;
    if (opt_.injector != nullptr) {
      fault = opt_.injector->jobFault(r.job_id);
      if (fault.kind != chaos::FaultKind::kLaunchFault)
        fault = chaos::JobFault{};
    }
    chaos::JobFaultHook hook(fault, device, r.job_id, /*channel=*/nullptr);
    ctx.fault_hook = fault.none() ? nullptr : &hook;
    clock_s = runJobOnDevice(ctx, *job.problem, *job.golden, job.config,
                             job.cancel_flag, clock_s, r);
    ctx.span = nullptr;
    ctx.fault_hook = nullptr;

    if (inst.completed) {
      inst.completed->add();
      if (r.cancelled) inst.cancelled->add();
      if (r.failed) inst.failed->add();
      inst.queue_wait->observe(r.queue_wait_modeled_s);
      inst.job_host_seconds->observe(r.host_seconds);
    }
    job.promise.set_value(&r);
  }
  report_.device_modeled_s[std::size_t(device)] = clock_s;
}

const BatchReport& BatchScheduler::runAll() {
  MBIR_CHECK_MSG(!ran_, "runAll() called twice");
  ran_ = true;
  obs::Recorder* rec = opt_.recorder;
  const int D = opt_.num_devices;
  report_.device_modeled_s.assign(std::size_t(D), 0.0);
  if (rec && rec->traceOn()) {
    for (int d = 0; d < D; ++d) {
      rec->trace().nameProcess(tracePid(d),
                               "device " + std::to_string(d) + " (modeled)",
                               /*sort_index=*/tracePid(d));
      // Host-clock lane per device (tid d+1; tid 0 stays the control lane)
      // so each device's job/iteration/launch spans nest in their own row.
      rec->trace().nameThread(int(obs::Clock::kHost), d + 1,
                              "device " + std::to_string(d) + " (host)",
                              /*sort_index=*/d + 1);
    }
  }
  if (rec && rec->metricsOn()) {
    rec->metrics().gauge("sched.devices").set(double(D));
    rec->metrics().gauge("sched.jobs.submitted").set(double(jobCount()));
  }

  const WallTimer batch_wall;
  if (D == 1) {
    driveDevice(0);  // no point spawning a thread for a single device
  } else {
    std::vector<std::thread> drivers;
    drivers.reserve(std::size_t(D));
    for (int d = 0; d < D; ++d) drivers.emplace_back([this, d] { driveDevice(d); });
    for (std::thread& t : drivers) t.join();
  }
  report_.host_seconds = batch_wall.seconds();

  report_.jobs_total = jobCount();
  double wait_sum = 0.0;
  for (const Job& job : jobs_) {
    const JobResult& r = job.result;
    if (r.run.converged) ++report_.jobs_converged;
    if (r.cancelled) ++report_.jobs_cancelled;
    if (r.failed) ++report_.jobs_failed;
    report_.modeled_device_seconds_total += r.run.modeled_seconds;
    wait_sum += r.queue_wait_modeled_s;
    report_.queue_wait_max_s = std::max(report_.queue_wait_max_s, r.queue_wait_modeled_s);
  }
  if (report_.jobs_total > 0) {
    report_.jobs_per_host_second =
        report_.host_seconds > 0.0 ? report_.jobs_total / report_.host_seconds : 0.0;
    report_.modeled_device_seconds_per_job =
        report_.modeled_device_seconds_total / report_.jobs_total;
    report_.queue_wait_mean_s = wait_sum / report_.jobs_total;
  }
  report_.makespan_modeled_s =
      *std::max_element(report_.device_modeled_s.begin(), report_.device_modeled_s.end());
  return report_;
}

const JobResult& BatchScheduler::result(int job_id) const {
  MBIR_CHECK_MSG(ran_, "result() before runAll()");
  MBIR_CHECK_MSG(job_id >= 0 && job_id < jobCount(), "unknown job id");
  return jobs_[std::size_t(job_id)].result;
}

const BatchReport& BatchScheduler::report() const {
  MBIR_CHECK_MSG(ran_, "report() before runAll()");
  return report_;
}

std::string BatchScheduler::reportJson() const {
  MBIR_CHECK_MSG(ran_, "reportJson() before runAll()");
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.batch_report/1");
  w.kv("simd", resolveSimdOps(SimdMode::kDefault).name);
  w.kv("num_devices", opt_.num_devices);
  w.kv("jobs_total", report_.jobs_total);
  w.kv("jobs_converged", report_.jobs_converged);
  w.kv("jobs_cancelled", report_.jobs_cancelled);
  w.kv("jobs_failed", report_.jobs_failed);
  w.kv("host_seconds", report_.host_seconds);
  w.kv("jobs_per_host_second", report_.jobs_per_host_second);
  w.kv("modeled_device_seconds_total", report_.modeled_device_seconds_total);
  w.kv("modeled_device_seconds_per_job", report_.modeled_device_seconds_per_job);
  w.kv("makespan_modeled_s", report_.makespan_modeled_s);
  w.key("queue_wait_modeled_s").beginObject();
  w.kv("mean", report_.queue_wait_mean_s);
  w.kv("max", report_.queue_wait_max_s);
  w.endObject();
  w.key("device_modeled_s").beginArray();
  for (double s : report_.device_modeled_s) w.value(s);
  w.endArray();
  w.key("jobs").beginArray();
  for (const Job& job : jobs_) {
    const JobResult& r = job.result;
    w.beginObject();
    w.kv("job_id", r.job_id);
    w.kv("name", r.name);
    w.kv("device", r.device);
    w.kv("algorithm", algorithmName(job.config.algorithm));
    if (!r.failed) w.kv("simd", r.run.simd_path);
    w.kv("converged", r.run.converged);
    w.kv("cancelled", r.cancelled);
    w.kv("failed", r.failed);
    if (r.failed) w.kv("error", r.error);
    w.kv("equits", r.run.equits);
    w.kv("final_rmse_hu", r.run.final_rmse_hu);
    w.kv("modeled_seconds", r.run.modeled_seconds);
    w.kv("host_seconds", r.host_seconds);
    w.kv("queue_wait_modeled_s", r.queue_wait_modeled_s);
    w.kv("device_start_modeled_s", r.device_start_modeled_s);
    w.kv("device_end_modeled_s", r.device_end_modeled_s);
    // Per-job race-check summary (each job owns its engine and therefore
    // its own detector; the per-device view is the union over the device's
    // jobs). Emitted from whichever engine the job ran.
    {
      bool enabled = false;
      std::uint64_t launches = 0, ranges = 0, races = 0;
      if (r.run.gpu_stats) {
        enabled = r.run.gpu_stats->race_check_enabled;
        launches = r.run.gpu_stats->race_launches_checked;
        ranges = r.run.gpu_stats->race_ranges_checked;
        races = r.run.gpu_stats->race_reports;
      } else if (r.run.psv_stats) {
        enabled = r.run.psv_stats->race_check_enabled;
        launches = r.run.psv_stats->race_launches_checked;
        ranges = r.run.psv_stats->race_ranges_checked;
        races = r.run.psv_stats->race_reports;
      } else if (r.run.seq_stats) {
        enabled = r.run.seq_stats->race_check_enabled;
        launches = r.run.seq_stats->race_launches_checked;
        ranges = r.run.seq_stats->race_ranges_checked;
        races = r.run.seq_stats->race_reports;
      }
      w.key("race_check").beginObject();
      w.kv("enabled", enabled);
      w.kv("launches_checked", launches);
      w.kv("ranges_checked", ranges);
      w.kv("races_found", races);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  const obs::Recorder* rec = opt_.recorder;
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  w.endObject();
  return w.str();
}

void BatchScheduler::writeReportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open batch report file: " + path);
  out << reportJson() << '\n';
  MBIR_CHECK_MSG(out.good(), "failed writing batch report: " + path);
}

}  // namespace mbir::sched
