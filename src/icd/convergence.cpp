#include "icd/convergence.h"

#include "core/hounsfield.h"

namespace mbir {

double rmseHu(const Image2D& image, const Image2D& golden) {
  return image.rmsDiff(golden) * kHuPerMu;
}

}  // namespace mbir
