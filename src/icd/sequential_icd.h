// Sequential ICD — the publicly-available single-core MBIR reference the
// paper's Table 1 speedups are measured against, and the generator of the
// 40-equit "golden" images used for convergence measurement.
#pragma once

#include <cstdint>
#include <functional>

#include "geom/image.h"
#include "geom/sinogram.h"
#include "gsim/race_check.h"
#include "icd/convergence.h"
#include "icd/problem.h"
#include "icd/work.h"

namespace mbir::obs {
class Recorder;
}  // namespace mbir::obs

namespace mbir {

struct SequentialIcdOptions {
  /// Hard cap on work (equits).
  double max_equits = 40.0;
  /// Randomize voxel visit order each sweep (faster convergence, §2.1).
  bool randomize_order = true;
  /// Apply the zero-skipping rule.
  bool zero_skip = true;
  std::uint64_t seed = 7;
  /// Observability sink (nullptr = off): per-sweep host-clock spans and
  /// `seq.*` counters. Purely observational.
  obs::Recorder* recorder = nullptr;
  /// Device-semantics race checking. Sequential ICD is single-threaded, so
  /// each sweep is declared as a trivial one-block launch — always clean;
  /// wired so all three engines report through the same channel and the
  /// baseline exercises the disabled/enabled paths. Defaults from
  /// GPUMBIR_RACE_CHECK.
  gsim::RaceCheckConfig race_check = gsim::RaceCheckConfig::fromEnv();
};

struct IcdRunStats {
  double equits = 0.0;
  std::size_t voxel_updates = 0;
  int sweeps = 0;
  bool stopped_by_callback = false;
  WorkCounters work;  ///< consumed by gsim's CPU timing models
  /// Device-semantics race checking (zeros when disabled).
  bool race_check_enabled = false;
  std::uint64_t race_launches_checked = 0;
  std::uint64_t race_ranges_checked = 0;
  std::uint64_t race_reports = 0;
};

/// Called after each full sweep with cumulative progress; return false to
/// stop.
using SweepCallback =
    std::function<bool(const Image2D& x, const IcdRunStats& progress)>;

class SequentialIcd {
 public:
  SequentialIcd(const Problem& problem, SequentialIcdOptions options = {});

  /// Run sweeps over the image until max_equits or the callback stops it.
  /// `x` is the starting image (updated in place); `e` must be the matching
  /// error sinogram y - A x (updated in place).
  IcdRunStats run(Image2D& x, Sinogram& e, const SweepCallback& on_sweep = {});

 private:
  const Problem problem_;  // by value: Problem is a non-owning view struct
  SequentialIcdOptions options_;
};

}  // namespace mbir
