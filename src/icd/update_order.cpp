#include "icd/update_order.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mbir {

std::vector<int> topFractionByMagnitude(const std::vector<double>& magnitude,
                                        double fraction) {
  MBIR_CHECK(fraction > 0.0 && fraction <= 1.0);
  const std::size_t n = magnitude.size();
  const std::size_t k =
      std::min(n, std::size_t(std::ceil(fraction * double(n))));
  std::vector<int> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = int(i);
  std::nth_element(idx.begin(), idx.begin() + std::ptrdiff_t(k), idx.end(),
                   [&](int a, int b) {
                     return magnitude[std::size_t(a)] > magnitude[std::size_t(b)];
                   });
  idx.resize(k);
  return idx;
}

std::vector<int> randomFraction(std::size_t n, double fraction, Rng& rng) {
  MBIR_CHECK(fraction > 0.0 && fraction <= 1.0);
  const std::size_t k = std::min(n, std::size_t(std::ceil(fraction * double(n))));
  std::vector<int> idx = rng.permutation(int(n));
  idx.resize(k);
  return idx;
}

std::vector<int> selectSuperVoxels(int iter, std::size_t num_svs,
                                   const std::vector<double>& magnitude,
                                   double fraction, Rng& rng) {
  MBIR_CHECK(iter >= 1);
  MBIR_CHECK(magnitude.size() == num_svs);
  std::vector<int> selected;
  if (iter == 1) {
    selected.resize(num_svs);
    for (std::size_t i = 0; i < num_svs; ++i) selected[i] = int(i);
  } else if (iter % 2 == 0) {
    selected = topFractionByMagnitude(magnitude, fraction);
  } else {
    selected = randomFraction(num_svs, fraction, rng);
  }
  rng.shuffle(selected);
  return selected;
}

}  // namespace mbir
