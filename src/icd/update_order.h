// Voxel / SuperVoxel update-order policies.
//
// ICD converges fastest when voxels are visited in randomized order
// (Bowsher et al., paper §2.1); PSV-ICD and GPU-ICD additionally select a
// *subset* of SuperVoxels per iteration — all on iteration 1, the top
// fraction by accumulated update magnitude on even iterations, and a random
// fraction on odd iterations (Alg. 2 lines 4-9 / Alg. 3 lines 17-22).
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace mbir {

/// Select the SuperVoxels to update for iteration `iter` (1-based).
/// `magnitude[i]` is the accumulated |delta| of SV i since it was last
/// processed. `fraction` is 0.20 for PSV-ICD, 0.25 for GPU-ICD.
/// Returned indices are in randomized order.
std::vector<int> selectSuperVoxels(int iter, std::size_t num_svs,
                                   const std::vector<double>& magnitude,
                                   double fraction, Rng& rng);

/// Top-k indices of `magnitude` (k = ceil(fraction * n)), unordered.
std::vector<int> topFractionByMagnitude(const std::vector<double>& magnitude,
                                        double fraction);

/// k distinct random indices from [0, n).
std::vector<int> randomFraction(std::size_t n, double fraction, Rng& rng);

}  // namespace mbir
