// Full MBIR cost evaluation. Used by tests (ICD must descend monotonically)
// and by examples reporting optimization progress.
#pragma once

#include "geom/image.h"
#include "icd/problem.h"

namespace mbir {

struct CostBreakdown {
  double data = 0.0;   ///< 1/2 ||y - A x||^2_W, evaluated from e = y - A x
  double prior = 0.0;  ///< sum over cliques (each pair once) of b * rho
  double total() const { return data + prior; }
};

/// Evaluate using a maintained error sinogram e (cheap; exact given e).
CostBreakdown computeCost(const Problem& p, const Image2D& x, const Sinogram& e);

/// Evaluate from scratch (forward-projects x; for verifying e's integrity).
CostBreakdown computeCostFromScratch(const Problem& p, const Image2D& x);

}  // namespace mbir
