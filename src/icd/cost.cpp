#include "icd/cost.h"

#include "geom/projector.h"
#include "prior/neighborhood.h"

namespace mbir {

namespace {

double priorEnergy(const Problem& p, const Image2D& x) {
  // Count each clique once: visit only "forward" neighbours (E, SW, S, SE).
  static constexpr int kForward[4][2] = {{0, 1}, {1, -1}, {1, 0}, {1, 1}};
  const auto& nb = neighborhood8();
  // Map forward offsets to their b weights.
  double b_of[4] = {0, 0, 0, 0};
  for (int f = 0; f < 4; ++f)
    for (const auto& n : nb)
      if (n.dr == kForward[f][0] && n.dc == kForward[f][1]) b_of[f] = n.b;

  double acc = 0.0;
  const int n = x.size();
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      for (int f = 0; f < 4; ++f) {
        const int rr = r + kForward[f][0];
        const int cc = c + kForward[f][1];
        if (rr < 0 || rr >= n || cc < 0 || cc >= n) continue;
        acc += b_of[f] * p.prior.potential(double(x(r, c)) - double(x(rr, cc)));
      }
  return acc;
}

}  // namespace

CostBreakdown computeCost(const Problem& p, const Image2D& x, const Sinogram& e) {
  CostBreakdown c;
  c.data = 0.5 * e.weightedSumSquares(p.weights);
  c.prior = priorEnergy(p, x);
  return c;
}

CostBreakdown computeCostFromScratch(const Problem& p, const Image2D& x) {
  const Sinogram e = errorSinogram(p.A, p.y, x);
  return computeCost(p, x, e);
}

}  // namespace mbir
