// The reconstruction problem bundle shared by every ICD variant.
#pragma once

#include "geom/sinogram.h"
#include "geom/system_matrix.h"
#include "prior/prior.h"

namespace mbir {

/// Non-owning view of one reconstruction problem: minimize
///   f(x) = 1/2 ||y - A x||^2_W + sum_cliques b rho(x_i - x_j),  x >= 0.
/// The owning side (recon::ReconstructionProblem or a test fixture) must
/// outlive this view.
struct Problem {
  const SystemMatrix& A;
  const Sinogram& y;        ///< measurements
  const Sinogram& weights;  ///< inverse-variance weights W (diagonal)
  const Prior& prior;

  void validate() const {
    MBIR_CHECK(y.views() == A.numViews() && y.channels() == A.numChannels());
    MBIR_CHECK(weights.views() == A.numViews() &&
               weights.channels() == A.numChannels());
  }
};

}  // namespace mbir
