// Convergence accounting: equits and RMSE-in-HU against a golden image.
//
// The paper (§5.2) measures work in "equits" — one equit = N voxel updates
// where N is the image's voxel count (zero-skipped voxels don't count) —
// and declares convergence when RMSE against a 40-equit sequential-ICD
// golden image drops below 10 HU.
#pragma once

#include <cstddef>

#include "geom/image.h"

namespace mbir {

/// Counts voxel updates and converts to equits.
class EquitCounter {
 public:
  explicit EquitCounter(std::size_t voxels_per_equit)
      : voxels_per_equit_(voxels_per_equit) {}

  void addUpdates(std::size_t n) { updates_ += n; }
  std::size_t updates() const { return updates_; }
  double equits() const {
    return double(updates_) / double(voxels_per_equit_);
  }

 private:
  std::size_t voxels_per_equit_;
  std::size_t updates_ = 0;
};

/// RMSE between two attenuation images, reported in Hounsfield Units.
double rmseHu(const Image2D& image, const Image2D& golden);

/// The paper's convergence threshold: "no visible artifacts remain".
inline constexpr double kConvergedRmseHu = 10.0;

}  // namespace mbir
