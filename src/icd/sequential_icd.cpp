#include "icd/sequential_icd.h"

#include "core/rng.h"
#include "icd/voxel_update.h"
#include "obs/obs.h"

namespace mbir {

SequentialIcd::SequentialIcd(const Problem& problem, SequentialIcdOptions options)
    : problem_(problem), options_(options) {
  problem_.validate();
  MBIR_CHECK(options_.max_equits > 0.0);
}

IcdRunStats SequentialIcd::run(Image2D& x, Sinogram& e, const SweepCallback& on_sweep) {
  MBIR_CHECK(std::size_t(x.size()) * std::size_t(x.size()) == problem_.A.numVoxels());
  Rng rng(options_.seed);
  const int n = x.size();
  const std::size_t num_voxels = x.numVoxels();

  IcdRunStats stats;
  EquitCounter equits(num_voxels);

  std::vector<int> order(num_voxels);
  for (std::size_t i = 0; i < num_voxels; ++i) order[i] = int(i);

  // Per-voxel nonzero counts, for the work counters the CPU timing model
  // consumes.
  std::vector<std::uint32_t> nnz(num_voxels, 0);
  for (std::size_t voxel = 0; voxel < num_voxels; ++voxel) {
    std::uint32_t acc = 0;
    for (int v = 0; v < problem_.A.numViews(); ++v)
      acc += problem_.A.run(voxel, v).count;
    nnz[voxel] = acc;
  }

  obs::Recorder* rec = options_.recorder;
  const bool tracing = rec && rec->traceOn();
  obs::Counter* m_sweeps = nullptr;
  obs::Counter* m_updates = nullptr;
  if (rec && rec->metricsOn()) {
    m_sweeps = &rec->metrics().counter("seq.sweep.count");
    m_updates = &rec->metrics().counter("seq.voxel.updates");
  }

  while (equits.equits() < options_.max_equits) {
    const double sweep_host_us = tracing ? rec->trace().nowHostUs() : 0.0;
    const std::size_t sweep_updates0 = stats.work.voxel_updates;
    if (options_.randomize_order) rng.shuffle(order);
    for (int voxel : order) {
      const int row = voxel / n;
      const int col = voxel % n;
      const VoxelUpdateResult r =
          updateVoxelGlobal(problem_, x, e, row, col, options_.zero_skip);
      ++stats.work.voxels_visited;
      if (r.updated) {
        equits.addUpdates(1);
        ++stats.work.voxel_updates;
        stats.work.theta_elements += nnz[std::size_t(voxel)];
        stats.work.error_update_elements += nnz[std::size_t(voxel)];
      }
    }
    ++stats.sweeps;
    stats.equits = equits.equits();
    stats.voxel_updates = equits.updates();
    if (m_sweeps) {
      m_sweeps->add();
      m_updates->add(
          std::uint64_t(stats.work.voxel_updates - sweep_updates0));
    }
    if (tracing) {
      obs::TraceEvent ev;
      ev.name = "seq.sweep";
      ev.cat = "seq";
      ev.clock = obs::Clock::kHost;
      ev.ts_us = sweep_host_us;
      ev.dur_us = rec->trace().nowHostUs() - sweep_host_us;
      ev.num_args = {{"sweep", double(stats.sweeps)},
                     {"equits", stats.equits},
                     {"voxel_updates",
                      double(stats.work.voxel_updates - sweep_updates0)}};
      rec->trace().record(std::move(ev));
    }
    if (on_sweep && !on_sweep(x, stats)) {
      stats.stopped_by_callback = true;
      break;
    }
    // Degenerate all-zero start: every voxel zero-skipped forever.
    if (equits.updates() == 0) break;
  }
  stats.equits = equits.equits();
  stats.voxel_updates = equits.updates();
  return stats;
}

}  // namespace mbir
