#include "icd/sequential_icd.h"

#include <algorithm>

#include "core/rng.h"
#include "icd/voxel_update.h"
#include "obs/obs.h"

namespace mbir {

SequentialIcd::SequentialIcd(const Problem& problem, SequentialIcdOptions options)
    : problem_(problem), options_(options) {
  problem_.validate();
  MBIR_CHECK(options_.max_equits > 0.0);
}

IcdRunStats SequentialIcd::run(Image2D& x, Sinogram& e, const SweepCallback& on_sweep) {
  MBIR_CHECK(std::size_t(x.size()) * std::size_t(x.size()) == problem_.A.numVoxels());
  Rng rng(options_.seed);
  const int n = x.size();
  const std::size_t num_voxels = x.numVoxels();

  IcdRunStats stats;
  EquitCounter equits(num_voxels);

  std::vector<int> order(num_voxels);
  for (std::size_t i = 0; i < num_voxels; ++i) order[i] = int(i);

  // Per-voxel nonzero counts, for the work counters the CPU timing model
  // consumes.
  std::vector<std::uint32_t> nnz(num_voxels, 0);
  for (std::size_t voxel = 0; voxel < num_voxels; ++voxel) {
    std::uint32_t acc = 0;
    for (int v = 0; v < problem_.A.numViews(); ++v)
      acc += problem_.A.run(voxel, v).count;
    nnz[voxel] = acc;
  }

  obs::Recorder* rec = options_.recorder;
  const bool tracing = rec && rec->traceOn();
  obs::Counter* m_sweeps = nullptr;
  obs::Counter* m_updates = nullptr;
  if (rec && rec->metricsOn()) {
    m_sweeps = &rec->metrics().counter("seq.sweep.count");
    m_updates = &rec->metrics().counter("seq.voxel.updates");
  }

  // Single-threaded baseline: each sweep is one "block" touching the whole
  // image and error sinogram — trivially race-free, but declared so all
  // three engines exercise the same checking channel.
  gsim::RaceDetector race(options_.race_check);
  const bool race_on = race.config().enabled;
  int rb_image = -1, rb_sino_e = -1;
  if (race_on) {
    rb_image = race.bufferId("image");
    rb_sino_e = race.bufferId("sino.e");
  }

  while (equits.equits() < options_.max_equits) {
    const double sweep_host_us = tracing ? rec->trace().nowHostUs() : 0.0;
    const std::size_t sweep_updates0 = stats.work.voxel_updates;
    if (options_.randomize_order) rng.shuffle(order);
    for (int voxel : order) {
      const int row = voxel / n;
      const int col = voxel % n;
      const VoxelUpdateResult r =
          updateVoxelGlobal(problem_, x, e, row, col, options_.zero_skip);
      ++stats.work.voxels_visited;
      if (r.updated) {
        equits.addUpdates(1);
        ++stats.work.voxel_updates;
        stats.work.theta_elements += nnz[std::size_t(voxel)];
        stats.work.error_update_elements += nnz[std::size_t(voxel)];
      }
    }
    if (race_on) {
      std::vector<gsim::BlockAccessLog> logs(1);
      logs[0].read(rb_image, 0, std::int64_t(num_voxels));
      logs[0].write(rb_image, 0, std::int64_t(num_voxels));
      logs[0].write(rb_sino_e, 0,
                    std::int64_t(problem_.A.numViews()) *
                        std::int64_t(problem_.A.numChannels()));
      race.checkLaunch("seq_sweep", logs);
    }
    ++stats.sweeps;
    stats.equits = equits.equits();
    stats.voxel_updates = equits.updates();
    if (m_sweeps) {
      m_sweeps->add();
      m_updates->add(
          std::uint64_t(stats.work.voxel_updates - sweep_updates0));
    }
    if (tracing) {
      obs::TraceEvent ev;
      ev.name = "seq.sweep";
      ev.cat = "seq";
      ev.clock = obs::Clock::kHost;
      ev.ts_us = sweep_host_us;
      ev.dur_us = rec->trace().nowHostUs() - sweep_host_us;
      ev.num_args = {{"sweep", double(stats.sweeps)},
                     {"equits", stats.equits},
                     {"voxel_updates",
                      double(stats.work.voxel_updates - sweep_updates0)}};
      rec->trace().record(std::move(ev));
    }
    if (on_sweep && !on_sweep(x, stats)) {
      stats.stopped_by_callback = true;
      break;
    }
    // Degenerate all-zero start: every voxel zero-skipped forever.
    if (equits.updates() == 0) break;
  }
  stats.equits = equits.equits();
  stats.voxel_updates = equits.updates();
  stats.race_check_enabled = race_on;
  const gsim::RaceCheckTotals race_totals = race.totals();
  stats.race_launches_checked = race_totals.launches_checked;
  stats.race_ranges_checked = race_totals.ranges_checked;
  stats.race_reports = race_totals.races_found;
  return stats;
}

}  // namespace mbir
