// Algorithm 1: the single-voxel ICD update — the foundation of every
// ICD-based technique in this repository (sequential, PSV-ICD, GPU-ICD).
//
//   theta1 = - sum_{i in views} sum_{j in channels(voxel, i)} w_ij A_ij e_ij
//   theta2 =   sum_{i in views} sum_{j in channels(voxel, i)} w_ij A_ij^2
//   delta  = argmin_d theta1 d + (theta2 / 2) d^2
//                      + sum_nb b_nb [rho'(u_nb) d + coeff(u_nb) d^2]
//          = -(theta1 + sum_nb b_nb rho'(u_nb)) / (theta2 + 2 sum_nb b_nb coeff(u_nb))
//     with u_nb = x_v - x_nb, then clamped so x_v + delta >= 0.
//   e_ij  -= A_ij * delta
//
// The GPU and PSV variants run the same math against SuperVoxel buffers;
// this header exposes the pieces so they share one implementation of the
// numerics (tests pin all three to identical results).
#pragma once

#include "geom/image.h"
#include "icd/problem.h"
#include "prior/neighborhood.h"

namespace mbir {

struct ThetaPair {
  double theta1 = 0.0;
  double theta2 = 0.0;
};

struct VoxelUpdateResult {
  float delta = 0.0f;   ///< applied change (after positivity clamp)
  bool updated = false; ///< false when zero-skipped
};

/// theta1/theta2 against the *global* error sinogram (sequential ICD path).
ThetaPair computeThetaGlobal(const SystemMatrix& A, const Sinogram& e,
                             const Sinogram& w, std::size_t voxel);

/// Closed-form surrogate solve: returns the clamped delta for a voxel whose
/// current value is `xv`, given data-term thetas and its neighbourhood.
/// Exposed separately so SVB-based paths reuse it.
float solveDelta(const Prior& prior, const Image2D& x, int row, int col,
                 const ThetaPair& theta);

/// Apply delta to the global error sinogram: e -= A[voxel] * delta.
void applyErrorUpdateGlobal(const SystemMatrix& A, Sinogram& e,
                            std::size_t voxel, float delta);

/// Full Algorithm 1 against global structures (used by sequential ICD and
/// as the reference the SVB paths are tested against). `zero_skip` applies
/// the paper's skip rule.
VoxelUpdateResult updateVoxelGlobal(const Problem& p, Image2D& x, Sinogram& e,
                                    int row, int col, bool zero_skip);

}  // namespace mbir
