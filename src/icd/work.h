// Work counters accumulated by the ICD engines during functional execution.
//
// The container this repo runs in has one CPU core and no GPU, so Table-1
// style wall-clock comparisons against a 16-core Xeon are impossible to
// measure directly. Instead each engine counts the primitive work it
// performs (elements touched in theta loops, SVB copies, writebacks, lock
// acquisitions, ...) and machine models in gsim/ convert those counts into
// modeled execution times (see DESIGN.md §1).
#pragma once

#include <cstddef>

namespace mbir {

struct WorkCounters {
  std::size_t voxel_updates = 0;          ///< voxels actually updated
  std::size_t voxels_visited = 0;         ///< including zero-skipped
  std::size_t theta_elements = 0;         ///< (w, A, e) triples in theta loops
  std::size_t error_update_elements = 0;  ///< e -= A*delta element updates
  std::size_t svb_gather_elements = 0;    ///< elements copied into SVBs
  std::size_t svb_writeback_elements = 0; ///< elements written back
  std::size_t lock_acquisitions = 0;      ///< global-sinogram mutex acquires
  std::size_t svs_processed = 0;

  WorkCounters& operator+=(const WorkCounters& o) {
    voxel_updates += o.voxel_updates;
    voxels_visited += o.voxels_visited;
    theta_elements += o.theta_elements;
    error_update_elements += o.error_update_elements;
    svb_gather_elements += o.svb_gather_elements;
    svb_writeback_elements += o.svb_writeback_elements;
    lock_acquisitions += o.lock_acquisitions;
    svs_processed += o.svs_processed;
    return *this;
  }
};

}  // namespace mbir
