#include "icd/voxel_update.h"

#include <algorithm>

namespace mbir {

ThetaPair computeThetaGlobal(const SystemMatrix& A, const Sinogram& e,
                             const Sinogram& w, std::size_t voxel) {
  ThetaPair t;
  const int num_views = A.numViews();
  const int num_channels = A.numChannels();
  auto ef = e.flat();
  auto wf = w.flat();
  for (int v = 0; v < num_views; ++v) {
    const SystemMatrix::Run& r = A.run(voxel, v);
    const auto aw = A.weights(voxel, v);
    const std::size_t base =
        std::size_t(v) * std::size_t(num_channels) + r.first_channel;
    for (std::size_t k = 0; k < aw.size(); ++k) {
      const double a = double(aw[k]);
      const double wij = double(wf[base + k]);
      t.theta1 += -wij * a * double(ef[base + k]);
      t.theta2 += wij * a * a;
    }
  }
  return t;
}

float solveDelta(const Prior& prior, const Image2D& x, int row, int col,
                 const ThetaPair& theta) {
  const float xv = x(row, col);
  double num = theta.theta1;
  double den = theta.theta2;
  forEachNeighbor(x, row, col, [&](float xnb, double b) {
    const double u = double(xv) - double(xnb);
    num += b * prior.influence(u);
    den += 2.0 * b * prior.surrogateCoeff(u);
  });
  if (den <= 0.0) return 0.0f;  // empty column and flat prior: nothing to do
  double delta = -num / den;
  // Positivity constraint: x + delta >= 0.
  delta = std::max(delta, -double(xv));
  return float(delta);
}

void applyErrorUpdateGlobal(const SystemMatrix& A, Sinogram& e,
                            std::size_t voxel, float delta) {
  if (delta == 0.0f) return;
  const int num_views = A.numViews();
  const int num_channels = A.numChannels();
  auto ef = e.flat();
  for (int v = 0; v < num_views; ++v) {
    const SystemMatrix::Run& r = A.run(voxel, v);
    const auto aw = A.weights(voxel, v);
    float* dst = ef.data() + std::size_t(v) * std::size_t(num_channels) + r.first_channel;
    for (std::size_t k = 0; k < aw.size(); ++k) dst[k] -= aw[k] * delta;
  }
}

VoxelUpdateResult updateVoxelGlobal(const Problem& p, Image2D& x, Sinogram& e,
                                    int row, int col, bool zero_skip) {
  if (zero_skip && allNeighborsZero(x, row, col)) return {0.0f, false};
  const std::size_t voxel =
      std::size_t(row) * std::size_t(x.size()) + std::size_t(col);
  const ThetaPair theta = computeThetaGlobal(p.A, e, p.weights, voxel);
  const float delta = solveDelta(p.prior, x, row, col, theta);
  x(row, col) += delta;
  applyErrorUpdateGlobal(p.A, e, voxel, delta);
  return {delta, true};
}

}  // namespace mbir
