// Scanner simulator: phantom -> (measurement sinogram, weight sinogram,
// ground-truth image).
//
// Stands in for the paper's Imatron C-300 acquisitions (DESIGN.md §1).
// Projection goes through the *analytic* ellipse integrals, not the discrete
// system matrix, so reconstruction never inverts the exact operator that
// generated the data.
#pragma once

#include <cstdint>

#include "geom/geometry.h"
#include "geom/image.h"
#include "geom/sinogram.h"
#include "phantom/ellipse.h"
#include "scan/noise.h"

namespace mbir {

struct ScanResult {
  Sinogram y;          ///< measurements (log-transformed line integrals)
  Sinogram weights;    ///< inverse-variance weights
  Image2D ground_truth;///< rasterized phantom (1/mm), for image-quality metrics
};

/// Simulate one scan. `seed` controls the noise realization only.
ScanResult simulateScan(const EllipsePhantom& phantom,
                        const ParallelBeamGeometry& geometry,
                        const NoiseModel& noise = {},
                        std::uint64_t seed = 1234);

}  // namespace mbir
