// Photon-statistics noise model.
//
// A CT measurement at one (view, channel) starts as I0 incident photons;
// after attenuation the expected count is lambda = I0 * exp(-p) where p is
// the line integral. The detector observes a Poisson draw (plus Gaussian
// electronic noise), and the log-transformed measurement is
// y = ln(I0 / k). The MBIR weight for that measurement is the inverse
// variance of y, which for Poisson statistics is the observed count k
// itself (var(ln(I0/k)) ~ 1/k). Weights are kept unnormalized so the data
// term is the true negative log-likelihood; the prior's sigma_x (in 1/mm)
// then has its usual physical meaning.
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "geom/sinogram.h"

namespace mbir {

struct NoiseModel {
  /// Incident photons per channel per view (dose). Typical clinical/security
  /// values are 1e4 - 1e6.
  double i0 = 2.0e5;
  /// Std-dev of additive Gaussian electronic noise (in photon counts).
  double electronic_sigma = 2.0;
  /// Disable to get the noiseless limit (weights from expected counts).
  bool enable_noise = true;
};

struct NoisySinogram {
  Sinogram y;        ///< log-transformed measurements (line integrals)
  Sinogram weights;  ///< inverse-variance weights (photon counts)
};

/// Apply the noise model to an ideal (noiseless line-integral) sinogram.
NoisySinogram applyNoise(const Sinogram& ideal, const NoiseModel& model, Rng& rng);

}  // namespace mbir
