#include "scan/noise.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mbir {

NoisySinogram applyNoise(const Sinogram& ideal, const NoiseModel& model, Rng& rng) {
  MBIR_CHECK(model.i0 > 1.0);
  MBIR_CHECK(model.electronic_sigma >= 0.0);

  NoisySinogram out{Sinogram(ideal.views(), ideal.channels()),
                    Sinogram(ideal.views(), ideal.channels())};

  auto src = ideal.flat();
  auto y = out.y.flat();
  auto w = out.weights.flat();

  for (std::size_t i = 0; i < src.size(); ++i) {
    const double p = double(src[i]);
    const double lambda = model.i0 * std::exp(-p);
    double k = lambda;
    if (model.enable_noise) {
      k = double(rng.poisson(lambda));
      if (model.electronic_sigma > 0.0)
        k += rng.normal(0.0, model.electronic_sigma);
    }
    k = std::max(k, 1.0);  // photon starvation clamp
    y[i] = float(std::log(model.i0 / k));
    // var(ln(I0/k)) ~ 1/k; the inverse-variance weight is k.
    w[i] = float(k);
  }
  return out;
}

}  // namespace mbir
