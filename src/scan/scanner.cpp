#include "scan/scanner.h"

#include "phantom/analytic_projection.h"
#include "phantom/rasterize.h"

namespace mbir {

ScanResult simulateScan(const EllipsePhantom& phantom,
                        const ParallelBeamGeometry& geometry,
                        const NoiseModel& noise, std::uint64_t seed) {
  geometry.validate();
  const Sinogram ideal = analyticProject(phantom, geometry);
  Rng rng(seed);
  NoisySinogram noisy = applyNoise(ideal, noise, rng);
  return ScanResult{std::move(noisy.y), std::move(noisy.weights),
                    rasterize(phantom, geometry)};
}

}  // namespace mbir
