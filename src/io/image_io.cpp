#include "io/image_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "core/error.h"
#include "core/hounsfield.h"

namespace mbir {

namespace {

void writePgm16(const std::string& path, int width, int height,
                const std::vector<std::uint16_t>& pixels) {
  std::ofstream f(path, std::ios::binary);
  MBIR_CHECK_MSG(f.good(), "cannot open " << path);
  f << "P5\n" << width << " " << height << "\n65535\n";
  // PGM stores 16-bit big-endian.
  for (std::uint16_t p : pixels) {
    const char hi = char(p >> 8), lo = char(p & 0xff);
    f.write(&hi, 1);
    f.write(&lo, 1);
  }
  MBIR_CHECK_MSG(f.good(), "write to " << path << " failed");
}

}  // namespace

void writePgm(const Image2D& image, const std::string& path,
              const CtWindow& window) {
  MBIR_CHECK(window.window_hu > 0.0);
  const double lo = window.level_hu - window.window_hu / 2.0;
  std::vector<std::uint16_t> pixels;
  pixels.reserve(image.numVoxels());
  for (int r = 0; r < image.size(); ++r)
    for (int c = 0; c < image.size(); ++c) {
      const double hu = muToHu(double(image(r, c)));
      const double t = std::clamp((hu - lo) / window.window_hu, 0.0, 1.0);
      pixels.push_back(std::uint16_t(t * 65535.0 + 0.5));
    }
  writePgm16(path, image.size(), image.size(), pixels);
}

void writeSinogramPgm(const Sinogram& sino, const std::string& path) {
  float vmin = sino.flat().front(), vmax = vmin;
  for (float v : sino.flat()) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const double span = double(vmax) - double(vmin);
  std::vector<std::uint16_t> pixels;
  pixels.reserve(sino.size());
  for (int v = 0; v < sino.views(); ++v)
    for (int c = 0; c < sino.channels(); ++c) {
      const double t = span > 0.0 ? (double(sino(v, c)) - vmin) / span : 0.0;
      pixels.push_back(std::uint16_t(t * 65535.0 + 0.5));
    }
  writePgm16(path, sino.channels(), sino.views(), pixels);
}

void writeRawFloat(const Image2D& image, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  MBIR_CHECK_MSG(f.good(), "cannot open " << path);
  f.write(reinterpret_cast<const char*>(image.flat().data()),
          std::streamsize(image.numVoxels() * sizeof(float)));
  MBIR_CHECK_MSG(f.good(), "write to " << path << " failed");
}

Image2D readRawFloat(const std::string& path, int size) {
  std::ifstream f(path, std::ios::binary);
  MBIR_CHECK_MSG(f.good(), "cannot open " << path);
  Image2D img(size);
  f.read(reinterpret_cast<char*>(img.flat().data()),
         std::streamsize(img.numVoxels() * sizeof(float)));
  MBIR_CHECK_MSG(f.gcount() ==
                     std::streamsize(img.numVoxels() * sizeof(float)),
                 "short read from " << path);
  return img;
}

}  // namespace mbir
