// Image export: binary PGM with CT window/level, raw float32, and CSV.
//
// Lets every example and bench dump inspectable reconstructions without
// external dependencies. The PGM path applies the standard radiology
// windowing: pixel = clamp((HU - (level - window/2)) / window) * 65535.
#pragma once

#include <string>

#include "geom/image.h"
#include "geom/sinogram.h"

namespace mbir {

struct CtWindow {
  double level_hu = 0.0;     ///< window centre
  double window_hu = 400.0;  ///< full width
};

/// Soft-tissue-ish default for baggage/medical slices.
inline CtWindow defaultWindow() { return {0.0, 1200.0}; }

/// 16-bit binary PGM (P5) of an attenuation image with the given window.
void writePgm(const Image2D& image, const std::string& path,
              const CtWindow& window = defaultWindow());

/// 16-bit PGM of a sinogram, min-max scaled (for inspecting traces).
void writeSinogramPgm(const Sinogram& sino, const std::string& path);

/// Raw little-endian float32, row-major (loadable with numpy.fromfile).
void writeRawFloat(const Image2D& image, const std::string& path);

/// Read back a raw float32 image of known size (round-trip tests, external
/// tooling pipelines).
Image2D readRawFloat(const std::string& path, int size);

}  // namespace mbir
