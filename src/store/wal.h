// Crash-safe write-ahead job log (DESIGN.md §14).
//
// The service's durability contract: a submit is acknowledged to the client
// only after its admit record is on disk (appended + fsync'd), and every
// terminal transition appends a terminal record. A restarted server replays
// the log, recomputes the set of admitted-but-unfinished jobs, and
// re-dispatches them — the deterministic lane makes the re-run bit-identical
// to the uninterrupted one, so recovery is idempotent even for jobs that
// finished after the last record reached disk.
//
// On-disk format: a sequence of length-prefixed, checksummed records
//   [u32 BE payload length][u64 BE FNV-1a of payload][payload bytes]
// where each payload is one strict-JSON document (src/obs writer/parser).
// Two record kinds:
//   {"type":"admit","wal_id":N,"recoveries":R,"params":{<submit request>}}
//   {"type":"terminal","wal_id":N,"state":"done","image_hash":"<hex>"}
// The params document is the original wire submit request verbatim, so
// replay re-enters the exact parseSubmitParams/makeRunConfig path the live
// submit took.
//
// Tail tolerance: a crash can leave a torn final record (short write) — or,
// after media corruption, a record whose checksum no longer matches. Replay
// consumes the longest valid prefix and stops at the first bad record; the
// constructor then truncates the file back to that prefix so subsequent
// appends produce a parseable log. Any record that was fully fsync'd is
// never lost (tests/test_store.cpp sweeps truncation at every byte offset).
//
// wal_id is a monotone sequence that survives restarts (next = max seen
// + 1), so admit records from different server incarnations never collide
// in one log file.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mbir::obs {
class MetricsRegistry;
class Counter;
}  // namespace mbir::obs

namespace mbir::store {

inline constexpr std::size_t kWalHeaderBytes = 12;  // u32 length + u64 fnv
/// Upper bound on one record's payload; a longer declared length is treated
/// as tail corruption (a torn length prefix can claim anything).
inline constexpr std::size_t kWalMaxRecordBytes = 4u << 20;

/// One admitted-but-unfinished job recovered from a replay.
struct PendingJob {
  std::int64_t wal_id = -1;
  /// Times this job has already been recovered (the restart resubmits it
  /// with recoveries + 1).
  int recoveries = 0;
  /// The original submit request document, verbatim.
  std::string params_json;
};

struct ReplayStats {
  std::uint64_t records = 0;        ///< checksum-valid records consumed
  std::uint64_t bytes = 0;          ///< bytes of the valid prefix
  bool tail_truncated = false;      ///< file ended mid-record / bad checksum
  std::uint64_t tail_bytes_dropped = 0;
  std::uint64_t malformed_payloads = 0;  ///< checksum ok, JSON/type bad
  /// Repeat admits for one wal_id: a restart re-appends the admit with its
  /// bumped recoveries count; replay folds it into the pending entry.
  std::uint64_t duplicate_admits = 0;
  std::uint64_t duplicate_terminals = 0;
  std::uint64_t orphan_terminals = 0;  ///< terminal with no admit record
};

/// Append-only, fsync-per-record job log bound to <dir>/jobs.wal.
/// Thread-safe: appends from connection threads and the dispatcher's
/// terminal-notification flush interleave under an internal mutex.
class JobLog {
 public:
  /// Opens (creating dir/file as needed), replays the existing log and
  /// truncates any corrupt tail. Throws mbir::Error when the directory
  /// cannot be created or the file cannot be opened.
  explicit JobLog(std::string dir, obs::MetricsRegistry* metrics = nullptr);
  ~JobLog();

  JobLog(const JobLog&) = delete;
  JobLog& operator=(const JobLog&) = delete;

  const std::string& path() const { return path_; }

  /// Next wal_id — monotone across restarts, unique within the log file.
  std::int64_t nextId();

  /// Durable append (record on disk when this returns).
  void appendAdmit(std::int64_t wal_id, int recoveries,
                   std::string_view params_json);
  void appendTerminal(std::int64_t wal_id, std::string_view state,
                      std::uint64_t image_hash);

  /// Jobs admitted but not terminal as of open, in admit order.
  const std::vector<PendingJob>& pending() const { return pending_; }
  const ReplayStats& replayStats() const { return replay_; }
  std::uint64_t recordsAppended() const;
  std::uint64_t bytesAppended() const;

  // -- low-level pieces, exposed for the fuzz tests -----------------------

  /// Frame one payload: header (length + FNV-1a checksum) + payload.
  static std::string encodeRecord(std::string_view payload);

  struct RawReplay {
    std::vector<std::string> payloads;
    ReplayStats stats;
  };
  /// Scan a log file, returning every checksum-valid payload in the longest
  /// valid prefix. Never throws on corruption — a missing file is simply an
  /// empty replay. `stats.bytes` is the prefix length a writer can safely
  /// truncate to / append after.
  static RawReplay replayFile(const std::string& path);

  /// Interpret replayed payloads as admit/terminal records and compute the
  /// pending set (tolerates duplicates and out-of-order records; updates
  /// the malformed/duplicate/orphan counters in `stats`).
  static std::vector<PendingJob> resolvePending(
      const std::vector<std::string>& payloads, ReplayStats& stats,
      std::int64_t* max_wal_id = nullptr);

 private:
  void appendRecordLocked(std::string_view payload);

  std::string dir_;
  std::string path_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::int64_t next_id_ = 0;
  std::vector<PendingJob> pending_;
  ReplayStats replay_;
  std::uint64_t appended_records_ = 0;
  std::uint64_t appended_bytes_ = 0;

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_fsyncs_ = nullptr;
};

}  // namespace mbir::store
