#include "store/cache.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "core/error.h"
#include "core/hash.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace mbir::store {

namespace {

constexpr std::string_view kEntrySchema = "gpumbir.cache_entry/1";
constexpr std::string_view kEntrySuffix = ".rce";

void putU32BE(std::string& out, std::uint32_t v) {
  out.push_back(char((v >> 24) & 0xFF));
  out.push_back(char((v >> 16) & 0xFF));
  out.push_back(char((v >> 8) & 0xFF));
  out.push_back(char(v & 0xFF));
}

void putU64BE(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(char((v >> shift) & 0xFF));
}

std::uint32_t getU32BE(const unsigned char* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

std::uint64_t getU64BE(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | std::uint64_t(p[i]);
  return v;
}

bool parseHex64(const std::string& s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  out = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    out = (out << 4) | std::uint64_t(d);
  }
  return true;
}

/// Serialize one entry to its on-disk byte layout.
std::string encodeEntry(const ResultCache::Meta& meta, const Image2D& image) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", kEntrySchema);
  w.kv("input_hash", hashToHex(meta.input_hash));
  w.kv("config_key", meta.config_key);
  w.kv("size", image.size());
  w.kv("converged", meta.converged);
  w.kv("equits", meta.equits);
  w.kv("final_rmse_hu", meta.final_rmse_hu);
  w.kv("modeled_seconds", meta.modeled_seconds);
  w.kv("image_hash", hashToHex(meta.image_hash));
  w.endObject();
  const std::string& header = w.str();

  std::string out;
  const std::span<const float> pixels = image.flat();
  const std::size_t pixel_bytes = pixels.size() * sizeof(float);
  out.reserve(4 + header.size() + pixel_bytes + 8);
  putU32BE(out, std::uint32_t(header.size()));
  out.append(header);
  // Raw native-endian float bits: exact by construction (this repo targets
  // one host at a time; a foreign-endian file fails the checksum re-verify
  // of image_hash below and is dropped, never mis-served).
  out.append(reinterpret_cast<const char*>(pixels.data()), pixel_bytes);
  putU64BE(out, fnv1a64(pixels));
  return out;
}

/// Parse an entry file's bytes; false (without throwing) on any corruption.
bool decodeEntry(const std::string& data, ResultCache::Meta& meta,
                 Image2D& image) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  if (data.size() < 4) return false;
  const std::uint32_t header_len = getU32BE(bytes);
  if (data.size() < 4 + std::size_t(header_len) + 8) return false;
  obs::JsonValue doc;
  try {
    doc = obs::parseJson(std::string_view(data.data() + 4, header_len));
  } catch (const std::exception&) {
    return false;
  }
  const obs::JsonValue* schema = doc.find("schema");
  if (!schema || !schema->isString() || schema->str_v != kEntrySchema)
    return false;
  const obs::JsonValue* ih = doc.find("input_hash");
  const obs::JsonValue* key = doc.find("config_key");
  const obs::JsonValue* size = doc.find("size");
  const obs::JsonValue* im = doc.find("image_hash");
  if (!ih || !ih->isString() || !key || !key->isString() || !size ||
      !size->isNumber() || !im || !im->isString())
    return false;
  if (!parseHex64(ih->str_v, meta.input_hash)) return false;
  if (!parseHex64(im->str_v, meta.image_hash)) return false;
  meta.config_key = key->str_v;
  if (const obs::JsonValue* v = doc.find("converged"))
    meta.converged = v->bool_v;
  if (const obs::JsonValue* v = doc.find("equits")) meta.equits = v->num_v;
  if (const obs::JsonValue* v = doc.find("final_rmse_hu"))
    meta.final_rmse_hu = v->num_v;
  if (const obs::JsonValue* v = doc.find("modeled_seconds"))
    meta.modeled_seconds = v->num_v;

  const int n = int(size->num_v);
  if (n <= 0 || n > 1 << 14) return false;
  const std::size_t pixel_bytes =
      std::size_t(n) * std::size_t(n) * sizeof(float);
  if (data.size() != 4 + std::size_t(header_len) + pixel_bytes + 8)
    return false;
  const char* pixels = data.data() + 4 + header_len;
  const std::uint64_t want =
      getU64BE(bytes + 4 + header_len + pixel_bytes);
  if (fnv1a64(pixels, pixel_bytes) != want) return false;
  image = Image2D(n);
  std::memcpy(image.flat().data(), pixels, pixel_bytes);
  // Belt and braces: the embedded image_hash must match the pixel bits too
  // (it's the value svc reports compare against).
  return fnv1a64(image.flat()) == meta.image_hash;
}

void makeDirs(const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    partial = dir.substr(0, i);
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
      throw Error("mkdir(" + partial + "): " + std::strerror(errno));
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw Error("mkdir(" + dir + "): " + std::strerror(errno));
}

}  // namespace

std::string ResultCache::fileName(const Key& key) {
  return hashToHex(key.first) + "-" + hashToHex(key.second) +
         std::string(kEntrySuffix);
}

std::string ResultCache::filePath(const Key& key) const {
  return dir_ + "/" + fileName(key);
}

ResultCache::ResultCache(std::string dir, std::size_t capacity,
                         obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), capacity_(std::max<std::size_t>(1, capacity)) {
  MBIR_CHECK_MSG(!dir_.empty(), "ResultCache needs a directory");
  makeDirs(dir_);
  {
    std::lock_guard lock(mu_);
    loadDirLocked();
  }
  if (metrics) {
    m_hits_ = &metrics->counter("store.cache.hits");
    m_misses_ = &metrics->counter("store.cache.misses");
    m_warm_hits_ = &metrics->counter("store.cache.warm_hits");
    m_inserts_ = &metrics->counter("store.cache.inserts");
    m_evictions_ = &metrics->counter("store.cache.evictions");
    metrics->gauge("store.cache.capacity").set(double(capacity_));
    std::lock_guard lock(mu_);
    metrics->gauge("store.cache.loaded").set(double(index_.size()));
  }
}

void ResultCache::loadDirLocked() {
  DIR* d = ::opendir(dir_.c_str());
  if (!d) return;
  std::vector<std::string> names;
  while (dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    if (name.size() > kEntrySuffix.size() &&
        name.compare(name.size() - kEntrySuffix.size(), kEntrySuffix.size(),
                     kEntrySuffix) == 0)
      names.push_back(name);
  }
  ::closedir(d);
  // Deterministic load order (directory order is arbitrary): sorted names.
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    auto entry = std::make_shared<Entry>();
    auto image = std::make_shared<Image2D>();
    bool ok = !data.empty() && decodeEntry(data, entry->meta, *image);
    // The file name must agree with the embedded key — a renamed or
    // tampered file is corruption, not a cache entry.
    ok = ok && name == fileName({entry->meta.input_hash,
                                 fnv1a64(entry->meta.config_key.data(),
                                         entry->meta.config_key.size())});
    if (!ok) {
      ++counters_.corrupt_dropped;
      ::unlink(path.c_str());
      continue;
    }
    entry->image = std::move(image);
    const Key key{entry->meta.input_hash,
                  fnv1a64(entry->meta.config_key.data(),
                          entry->meta.config_key.size())};
    if (index_.count(key)) continue;  // duplicate (cannot happen via names)
    if (index_.size() >= capacity_) break;  // bounded load
    lru_.push_front(key);
    index_.emplace(key, Slot{std::move(entry), lru_.begin()});
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mu_);
  return index_.size();
}

void ResultCache::touchLocked(Slot& slot, const Key& key) {
  lru_.erase(slot.lru);
  lru_.push_front(key);
  slot.lru = lru_.begin();
}

std::shared_ptr<const ResultCache::Entry> ResultCache::find(
    std::uint64_t input_hash, const std::string& config_key) {
  const Key key{input_hash,
                fnv1a64(config_key.data(), config_key.size())};
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    if (m_misses_) m_misses_->add();
    return nullptr;
  }
  const Entry& e = *it->second.entry;
  // Full-key verify: an FNV collision between different configs (or a
  // tampered entry) must read as a miss, never as the wrong image.
  if (e.meta.input_hash != input_hash || e.meta.config_key != config_key) {
    ++counters_.verify_failures;
    ++counters_.misses;
    if (m_misses_) m_misses_->add();
    return nullptr;
  }
  touchLocked(it->second, key);
  ++counters_.hits;
  if (m_hits_) m_hits_->add();
  return it->second.entry;
}

std::shared_ptr<const ResultCache::Entry> ResultCache::findWarm(
    std::uint64_t input_hash, int image_size) {
  std::lock_guard lock(mu_);
  // Entries sharing input_hash are contiguous in the (input, config) map.
  auto it = index_.lower_bound(Key{input_hash, 0});
  std::shared_ptr<const Entry> best;
  for (; it != index_.end() && it->first.first == input_hash; ++it) {
    const Entry& e = *it->second.entry;
    if (e.meta.input_hash != input_hash) continue;  // FNV-collision guard
    if (e.image->size() != image_size) continue;
    if (!best || e.meta.equits > best->meta.equits) best = it->second.entry;
  }
  if (best) {
    ++counters_.warm_hits;
    if (m_warm_hits_) m_warm_hits_->add();
  }
  return best;
}

void ResultCache::insert(const Meta& meta, const Image2D& image) {
  const Key key{meta.input_hash,
                fnv1a64(meta.config_key.data(), meta.config_key.size())};
  const std::string bytes = encodeEntry(meta, image);
  const std::string path = filePath(key);
  const std::string tmp = path + ".tmp";
  {
    // Atomic publish: whole-file write + fsync, then rename into place. A
    // crash leaves either the previous entry or the new one, never a torn
    // file (startup drops torn temps by suffix mismatch).
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
      throw Error("cache open(" + tmp + "): " + std::strerror(errno));
    std::size_t sent = 0;
    bool ok = true;
    while (ok && sent < bytes.size()) {
      const ssize_t r = ::write(fd, bytes.data() + sent, bytes.size() - sent);
      if (r < 0) {
        if (errno == EINTR) continue;
        ok = false;
        break;
      }
      sent += std::size_t(r);
    }
    ok = ok && ::fdatasync(fd) == 0;
    ::close(fd);
    ok = ok && ::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
      ::unlink(tmp.c_str());
      throw Error("cache write(" + path + "): " + std::strerror(errno));
    }
  }
  auto entry = std::make_shared<Entry>();
  entry->meta = meta;
  entry->image = std::make_shared<Image2D>(image);

  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Idempotent overwrite (same key => same deterministic bits in
    // practice; either way the newest wins).
    it->second.entry = std::move(entry);
    touchLocked(it->second, key);
  } else {
    lru_.push_front(key);
    index_.emplace(key, Slot{std::move(entry), lru_.begin()});
    while (index_.size() > capacity_) evictLocked();
  }
  ++counters_.inserts;
  if (m_inserts_) m_inserts_->add();
}

void ResultCache::evictLocked() {
  const Key victim = lru_.back();
  lru_.pop_back();
  index_.erase(victim);
  ::unlink(filePath(victim).c_str());
  ++counters_.evictions;
  if (m_evictions_) m_evictions_->add();
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

}  // namespace mbir::store
