// Content-addressed reconstruction result cache (DESIGN.md §14).
//
// Key = (input_hash, config_key):
//   * input_hash — FNV-1a over the case's measurement sinogram, weights,
//     golden image and geometry dimensions (svc::hashCaseInputs); two cases
//     collide only if their inputs are bit-identical.
//   * config_key — a canonical string naming everything about the resolved
//     RunConfig that can change the result bits (algorithm, budgets, stop
//     criterion, SV side, shard layout). Wall-clock-only knobs (SIMD path,
//     priority, deadline, tenant) are deliberately excluded.
// The index addresses entries by (input_hash, FNV(config_key)); a hit
// re-verifies the FULL stored config_key string and input hash, so an FNV
// collision between distinct configs can never serve the wrong image.
//
// Entries live in memory (images are small) and on disk, one file per
// entry:
//   [u32 BE header length][header JSON][raw float pixels][u64 BE pixel FNV]
// Files are written to a temp name and rename()d into place, so a crash
// mid-insert leaves either the whole entry or nothing; startup scans the
// directory, drops anything whose checksum or embedded key mismatches, and
// rebuilds the index — the cache is exactly as durable as the files.
//
// Capacity is an entry count; inserting past it evicts least-recently-used
// entries (memory and file together), keeping the on-disk layout bounded.
//
// Two lookups:
//   * find()     — exact (input, config) hit: the finished image, served
//                  without dispatching.
//   * findWarm() — same inputs, any config: the most-converged cached image
//                  as a warm start for a near-duplicate job (different
//                  iteration budget / stop criterion), measured as
//                  equits-to-converge saved.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "geom/image.h"

namespace mbir::obs {
class MetricsRegistry;
class Counter;
}  // namespace mbir::obs

namespace mbir::store {

class ResultCache {
 public:
  struct Meta {
    std::uint64_t input_hash = 0;
    std::string config_key;
    bool converged = false;
    double equits = 0.0;
    double final_rmse_hu = 0.0;
    double modeled_seconds = 0.0;
    std::uint64_t image_hash = 0;
  };
  struct Entry {
    Meta meta;
    std::shared_ptr<const Image2D> image;
  };

  /// Opens (creating) the directory and loads every valid entry file, up to
  /// `capacity` entries. Throws mbir::Error when the directory cannot be
  /// created.
  ResultCache(std::string dir, std::size_t capacity,
              obs::MetricsRegistry* metrics = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  const std::string& dir() const { return dir_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// Exact hit (full-key verified); nullptr on miss. Refreshes LRU order.
  std::shared_ptr<const Entry> find(std::uint64_t input_hash,
                                    const std::string& config_key);

  /// Best warm-start candidate: same inputs, same image size, any config —
  /// the entry with the most converged equits. nullptr when none.
  std::shared_ptr<const Entry> findWarm(std::uint64_t input_hash,
                                        int image_size);

  /// Insert (or idempotently overwrite) an entry; persists to disk first,
  /// then updates the index and evicts past capacity.
  void insert(const Meta& meta, const Image2D& image);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t warm_hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t verify_failures = 0;  ///< full-key mismatch on an FNV hit
    std::uint64_t corrupt_dropped = 0;  ///< bad entry files at startup
  };
  Counters counters() const;

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;  // input, FNV(config)

  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<Key>::iterator lru;  // position in lru_ (front = most recent)
  };

  static std::string fileName(const Key& key);
  std::string filePath(const Key& key) const;
  void touchLocked(Slot& slot, const Key& key);
  void evictLocked();
  void loadDirLocked();

  std::string dir_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::map<Key, Slot> index_;
  std::list<Key> lru_;
  Counters counters_;

  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_warm_hits_ = nullptr;
  obs::Counter* m_inserts_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace mbir::store
