// Weighted fair queuing across tenants (DESIGN.md §14): start-time fair
// queuing (SFQ) with per-tenant deficit-style virtual-time counters.
//
// Each tenant t carries a virtual finish time vtime[t]. To pick among the
// tenants that currently have dispatchable work:
//   start[t]  = max(vtime[t], V)          (V = global virtual time)
//   winner    = argmin start[t]           (ties: first candidate listed)
//   V         = start[winner]
//   vtime[winner] = start[winner] + cost / weight[winner]
// A tenant with weight w therefore gets a w-proportional share of dispatch
// slots while backlogged, and the max(·, V) clamp means an idle tenant
// rejoining cannot burst on banked credit — it resumes at the current
// virtual time like everyone else (bounded unfairness, the SFQ property).
//
// This scheduler is pure bookkeeping: the svc dispatcher consults it under
// its own lock (pickAndCharge is NOT internally synchronized) to choose
// which tenant's job the free device takes, then applies its existing
// priority/FIFO order within that tenant. The deterministic lane and gang
// dispatch bypass it entirely — det-lane bit-identity and whole-machine
// gangs are stronger contracts than fairness.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mbir::store {

class FairQueue {
 public:
  /// Per-tenant weights, keyed by the same (opaque) tenant labels later
  /// passed to pickAndCharge; any tenant not listed gets `default_weight`.
  /// Weights must be > 0.
  void configure(const std::map<std::string, double>& weights,
                 double default_weight = 1.0);

  double weight(const std::string& tenant) const;

  /// Choose among tenants that have dispatchable work right now and charge
  /// the winner `cost`. Returns the index into `candidates` (which must be
  /// non-empty; duplicates are allowed and count once). Not thread-safe —
  /// call under the owner's lock.
  std::size_t pickAndCharge(const std::vector<std::string>& candidates,
                            double cost = 1.0);

  struct Share {
    std::string tenant;
    double weight = 1.0;
    double vtime = 0.0;        ///< virtual finish time (deficit counter)
    double served_cost = 0.0;  ///< total cost charged
    std::uint64_t picks = 0;
  };
  /// Every tenant ever seen (or configured), sorted by name.
  std::vector<Share> snapshot() const;

 private:
  struct State {
    double vtime = 0.0;
    double served_cost = 0.0;
    std::uint64_t picks = 0;
  };

  std::map<std::string, double> weights_;
  double default_weight_ = 1.0;
  double vnow_ = 0.0;
  std::map<std::string, State> tenants_;
};

}  // namespace mbir::store
