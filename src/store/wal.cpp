#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "core/error.h"
#include "core/hash.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace mbir::store {

namespace {

void putU32BE(std::string& out, std::uint32_t v) {
  out.push_back(char((v >> 24) & 0xFF));
  out.push_back(char((v >> 16) & 0xFF));
  out.push_back(char((v >> 8) & 0xFF));
  out.push_back(char(v & 0xFF));
}

void putU64BE(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(char((v >> shift) & 0xFF));
}

std::uint32_t getU32BE(const unsigned char* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

std::uint64_t getU64BE(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | std::uint64_t(p[i]);
  return v;
}

void makeDirs(const std::string& dir) {
  // mkdir -p without <filesystem>: create each component, tolerate EEXIST.
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    partial = dir.substr(0, i);
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
      throw Error("mkdir(" + partial + "): " + std::strerror(errno));
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw Error("mkdir(" + dir + "): " + std::strerror(errno));
}

}  // namespace

std::string JobLog::encodeRecord(std::string_view payload) {
  MBIR_CHECK_MSG(payload.size() <= kWalMaxRecordBytes,
                 "WAL record too large: " << payload.size() << " bytes");
  std::string out;
  out.reserve(kWalHeaderBytes + payload.size());
  putU32BE(out, std::uint32_t(payload.size()));
  putU64BE(out, fnv1a64(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

JobLog::RawReplay JobLog::replayFile(const std::string& path) {
  RawReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;  // no log yet: empty replay
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t off = 0;
  while (off + kWalHeaderBytes <= data.size()) {
    const std::uint32_t len = getU32BE(bytes + off);
    if (len > kWalMaxRecordBytes) break;  // torn/corrupt length prefix
    if (off + kWalHeaderBytes + len > data.size()) break;  // torn payload
    const std::uint64_t want = getU64BE(bytes + off + 4);
    const char* payload = data.data() + off + kWalHeaderBytes;
    if (fnv1a64(payload, len) != want) break;  // bit rot / torn write
    out.payloads.emplace_back(payload, len);
    off += kWalHeaderBytes + len;
    ++out.stats.records;
    out.stats.bytes = off;
  }
  if (out.stats.bytes < data.size()) {
    out.stats.tail_truncated = true;
    out.stats.tail_bytes_dropped = data.size() - out.stats.bytes;
  }
  return out;
}

std::vector<PendingJob> JobLog::resolvePending(
    const std::vector<std::string>& payloads, ReplayStats& stats,
    std::int64_t* max_wal_id) {
  // Admits in arrival order; terminals erase. Duplicates are idempotent and
  // a terminal may precede its admit (out-of-order tolerance): a terminal
  // for an id marks it finished no matter when the admit shows up.
  std::vector<PendingJob> order;
  std::map<std::int64_t, std::size_t> admitted;  // wal_id -> index in order
  std::set<std::int64_t> finished;
  std::int64_t max_id = -1;
  for (const std::string& payload : payloads) {
    obs::JsonValue doc;
    try {
      doc = obs::parseJson(payload);
    } catch (const std::exception&) {
      ++stats.malformed_payloads;
      continue;
    }
    if (!doc.isObject()) {
      ++stats.malformed_payloads;
      continue;
    }
    const obs::JsonValue* type = doc.find("type");
    const obs::JsonValue* id = doc.find("wal_id");
    if (!type || !type->isString() || !id || !id->isNumber()) {
      ++stats.malformed_payloads;
      continue;
    }
    const auto wal_id = std::int64_t(id->num_v);
    max_id = std::max(max_id, wal_id);
    if (type->str_v == "admit") {
      const obs::JsonValue* params = doc.find("params");
      if (!params || !params->isObject()) {
        ++stats.malformed_payloads;
        continue;
      }
      if (finished.count(wal_id)) {
        ++stats.duplicate_admits;
        continue;
      }
      if (auto dup = admitted.find(wal_id); dup != admitted.end()) {
        // A restart re-appends the admit with its bumped recoveries count
        // (same wal_id, same params) — fold that into the pending entry so
        // recovery counts survive multiple crashes.
        ++stats.duplicate_admits;
        if (const obs::JsonValue* r = doc.find("recoveries");
            r && r->isNumber())
          order[dup->second].recoveries =
              std::max(order[dup->second].recoveries, int(r->num_v));
        continue;
      }
      PendingJob job;
      job.wal_id = wal_id;
      if (const obs::JsonValue* r = doc.find("recoveries");
          r && r->isNumber())
        job.recoveries = int(r->num_v);
      // Re-serialize the params subtree back to a document. The parser
      // produced it from strict JSON, so writing it back is lossless for
      // everything a submit request contains.
      obs::JsonWriter w;
      std::function<void(const obs::JsonValue&)> emit =
          [&](const obs::JsonValue& v) {
            switch (v.type) {
              case obs::JsonValue::Type::kNull: w.null(); break;
              case obs::JsonValue::Type::kBool: w.value(v.bool_v); break;
              case obs::JsonValue::Type::kNumber: w.value(v.num_v); break;
              case obs::JsonValue::Type::kString: w.value(v.str_v); break;
              case obs::JsonValue::Type::kArray:
                w.beginArray();
                for (const obs::JsonValue& e : v.array_v) emit(e);
                w.endArray();
                break;
              case obs::JsonValue::Type::kObject:
                w.beginObject();
                for (const auto& [k, e] : v.object_v) {
                  w.key(k);
                  emit(e);
                }
                w.endObject();
                break;
            }
          };
      emit(*params);
      job.params_json = w.str();
      admitted[wal_id] = order.size();
      order.push_back(std::move(job));
    } else if (type->str_v == "terminal") {
      if (finished.count(wal_id)) {
        ++stats.duplicate_terminals;
        continue;
      }
      finished.insert(wal_id);
      auto it = admitted.find(wal_id);
      if (it == admitted.end()) {
        ++stats.orphan_terminals;  // admit may still arrive later (or never)
      } else {
        order[it->second].wal_id = -1;  // tombstone; compacted below
        admitted.erase(it);
      }
    } else {
      ++stats.malformed_payloads;
    }
  }
  std::vector<PendingJob> pending;
  for (PendingJob& job : order)
    if (job.wal_id >= 0) pending.push_back(std::move(job));
  if (max_wal_id) *max_wal_id = max_id;
  return pending;
}

JobLog::JobLog(std::string dir, obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), path_(dir_ + "/jobs.wal") {
  MBIR_CHECK_MSG(!dir_.empty(), "JobLog needs a directory");
  makeDirs(dir_);

  RawReplay raw = replayFile(path_);
  replay_ = raw.stats;
  std::int64_t max_id = -1;
  pending_ = resolvePending(raw.payloads, replay_, &max_id);
  next_id_ = max_id + 1;

  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  MBIR_CHECK_MSG(fd_ >= 0, "open(" << path_ << "): " << std::strerror(errno));
  // Truncate any corrupt tail so future appends extend a clean prefix, then
  // position at the end of the valid records.
  MBIR_CHECK_MSG(::ftruncate(fd_, off_t(replay_.bytes)) == 0,
                 "ftruncate(" << path_ << "): " << std::strerror(errno));
  MBIR_CHECK_MSG(::lseek(fd_, off_t(replay_.bytes), SEEK_SET) >= 0,
                 "lseek(" << path_ << "): " << std::strerror(errno));

  if (metrics) {
    m_appends_ = &metrics->counter("store.wal.appends");
    m_bytes_ = &metrics->counter("store.wal.bytes");
    m_fsyncs_ = &metrics->counter("store.wal.fsyncs");
    metrics->gauge("store.wal.replayed_records")
        .set(double(replay_.records));
    metrics->gauge("store.wal.recovered_pending").set(double(pending_.size()));
  }
}

JobLog::~JobLog() {
  if (fd_ >= 0) ::close(fd_);
}

std::int64_t JobLog::nextId() {
  std::lock_guard lock(mu_);
  return next_id_++;
}

void JobLog::appendRecordLocked(std::string_view payload) {
  const std::string record = encodeRecord(payload);
  std::size_t sent = 0;
  while (sent < record.size()) {
    const ssize_t r =
        ::write(fd_, record.data() + sent, record.size() - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error("WAL write(" + path_ + "): " + std::strerror(errno));
    }
    sent += std::size_t(r);
  }
  // The durability point: the record (and, transitively, every record
  // before it) is on disk when fdatasync returns.
  MBIR_CHECK_MSG(::fdatasync(fd_) == 0,
                 "WAL fdatasync(" << path_ << "): " << std::strerror(errno));
  ++appended_records_;
  appended_bytes_ += record.size();
  if (m_appends_) m_appends_->add();
  if (m_bytes_) m_bytes_->add(double(record.size()));
  if (m_fsyncs_) m_fsyncs_->add();
}

void JobLog::appendAdmit(std::int64_t wal_id, int recoveries,
                         std::string_view params_json) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("type", "admit");
  w.kv("wal_id", wal_id);
  w.kv("recoveries", recoveries);
  w.key("params").raw(params_json);
  w.endObject();
  std::lock_guard lock(mu_);
  appendRecordLocked(w.str());
}

void JobLog::appendTerminal(std::int64_t wal_id, std::string_view state,
                            std::uint64_t image_hash) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("type", "terminal");
  w.kv("wal_id", wal_id);
  w.kv("state", state);
  if (image_hash != 0) w.kv("image_hash", hashToHex(image_hash));
  w.endObject();
  std::lock_guard lock(mu_);
  appendRecordLocked(w.str());
}

std::uint64_t JobLog::recordsAppended() const {
  std::lock_guard lock(mu_);
  return appended_records_;
}

std::uint64_t JobLog::bytesAppended() const {
  std::lock_guard lock(mu_);
  return appended_bytes_;
}

}  // namespace mbir::store
