#include "store/wfq.h"

#include <algorithm>

#include "core/error.h"

namespace mbir::store {

void FairQueue::configure(const std::map<std::string, double>& weights,
                          double default_weight) {
  MBIR_CHECK_MSG(default_weight > 0.0, "default tenant weight must be > 0");
  for (const auto& [tenant, w] : weights)
    MBIR_CHECK_MSG(w > 0.0, "tenant '" << tenant << "' weight must be > 0");
  weights_ = weights;
  default_weight_ = default_weight;
  for (const auto& [tenant, w] : weights_) tenants_.try_emplace(tenant);
}

double FairQueue::weight(const std::string& tenant) const {
  auto it = weights_.find(tenant);
  return it != weights_.end() ? it->second : default_weight_;
}

std::size_t FairQueue::pickAndCharge(
    const std::vector<std::string>& candidates, double cost) {
  MBIR_CHECK_MSG(!candidates.empty(), "pickAndCharge with no candidates");
  std::size_t best = 0;
  double best_start = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    State& st = tenants_[candidates[i]];
    const double start = std::max(st.vtime, vnow_);
    if (i == 0 || start < best_start) {
      best = i;
      best_start = start;
    }
  }
  State& winner = tenants_[candidates[best]];
  vnow_ = best_start;
  winner.vtime = best_start + cost / weight(candidates[best]);
  winner.served_cost += cost;
  ++winner.picks;
  return best;
}

std::vector<FairQueue::Share> FairQueue::snapshot() const {
  std::vector<Share> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, st] : tenants_) {
    Share s;
    s.tenant = tenant;
    s.weight = weight(tenant);
    s.vtime = st.vtime;
    s.served_cost = st.served_cost;
    s.picks = st.picks;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mbir::store
