// Deterministic, seed-driven fault injection for the service stack
// (DESIGN.md §12).
//
// The chaos lane answers one question the happy-path suites cannot: does
// the sched/svc stack *survive* a device that stalls, dies, or corrupts a
// launch mid-run? Everything here is built around replayability — a
// FaultPlan is a pure function from (seed, job id) to a fault decision, so
// the fault schedule of any run, including a failing soak in CI, is
// reconstructible bit-for-bit from the printed seed. No wall clocks, no
// global RNG state, no dependence on which device a job happened to land on.
//
// Layers:
//   FaultPlan     — the serializable config: seed, per-mode rates, target
//                   devices. Travels through DispatcherOptions, the wire
//                   protocol's `chaos` admin verb, and recon_server flags.
//   FaultInjector — plan + decision function `jobFault(job_id)` using
//                   Rng::forStream(seed, job_id) keyed streams.
//   JobFaultHook  — the gsim::FaultHook bound to one dispatched run: it
//                   heartbeats its device's DeviceChaos channel on every
//                   execution event and fires its assigned fault (throw
//                   LaunchFault / park-then-throw DeviceLost) exactly once
//                   at the assigned event index.
//   DeviceChaos   — one device's liveness channel: a heartbeat counter the
//                   dispatcher's watchdog samples, plus the permanent
//                   "abandoned" latch the watchdog trips when it declares
//                   the device failed (waking any run parked on it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "gsim/fault.h"

namespace mbir::obs {
class JsonWriter;
struct JsonValue;
}  // namespace mbir::obs

namespace mbir::chaos {

enum class FaultKind {
  kNone = 0,
  kLaunchFault,  ///< one corrupted launch: structured gsim::LaunchFault
  kStall,        ///< device freezes mid-run; only the watchdog frees it
  kDeath,        ///< device dies at dispatch: never heartbeats, never runs
};

const char* faultKindName(FaultKind k);

/// The fault assigned to one job: what happens and at which execution event
/// (0-based launch/iteration count within the run) it happens. kDeath
/// ignores `at_event` — the device is dead before the first event.
struct JobFault {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t at_event = 0;

  bool none() const { return kind == FaultKind::kNone; }
};

/// Parse a forced-fault spec as carried by the wire protocol's submit verb:
/// "" (none), "launch@N", "stall@N", "death". Throws mbir::Error on
/// malformed specs. faultSpecString is the inverse.
JobFault parseFaultSpec(const std::string& spec);
std::string faultSpecString(const JobFault& f);

/// Seed-driven chaos configuration. Rates are per-job probabilities in
/// [0, 1]; they are tried in order launch, stall, death against a single
/// uniform draw, so their sum must be <= 1. `target_devices` restricts the
/// *device-level* faults (stall/death) to the listed device ids — a soak
/// can guarantee survivors. Launch faults are job-level and fire wherever
/// the job runs.
struct FaultPlan {
  std::uint64_t seed = 0;
  double launch_fault_rate = 0.0;
  double stall_rate = 0.0;
  double death_rate = 0.0;
  std::vector<int> target_devices;  ///< empty = all devices targetable

  bool enabled() const {
    return launch_fault_rate > 0.0 || stall_rate > 0.0 || death_rate > 0.0;
  }
  bool targetsDevice(int device) const;
  void validate() const;  ///< throws mbir::Error on bad rates

  /// JSON object (not a framed document): {"seed":..,"launch_fault_rate":..,
  /// "stall_rate":..,"death_rate":..,"target_devices":[..]}.
  void writeJson(obs::JsonWriter& w) const;
  std::string toJson() const;
  /// Inverse of writeJson; unknown keys ignored, missing keys default.
  /// Throws mbir::Error on type mismatches or invalid rates.
  static FaultPlan fromJson(const obs::JsonValue& doc);
};

/// The pure decision function: which fault, if any, hits job `job_id`.
/// Each job gets its own Rng::forStream(seed, job_id) stream, so the
/// schedule is independent of submission order, devices, and timing.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  JobFault jobFault(int job_id) const;

 private:
  FaultPlan plan_;
};

/// One device's chaos channel, owned by the dispatcher. Heartbeats are a
/// relaxed atomic counter (hot path: one increment per execution event);
/// the abandoned latch is a one-way flag under a mutex so parked runs can
/// block on it.
class DeviceChaos {
 public:
  void beat() { heartbeat_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t beats() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }

  /// Watchdog: declare the device abandoned (permanent) and wake any run
  /// parked in waitAbandoned().
  void abandon();
  bool abandoned() const;
  /// Block until abandon() — how a stalled run models "frozen": it stops
  /// heartbeating and waits for the watchdog to notice.
  void waitAbandoned();

 private:
  std::atomic<std::uint64_t> heartbeat_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool abandoned_ = false;
};

/// The gsim::FaultHook for one dispatched run. Always heartbeats (when a
/// DeviceChaos channel is attached); fires its JobFault exactly once at
/// `at_event`:
///   kLaunchFault — throws gsim::LaunchFault (job fails, device survives);
///   kStall       — stops heartbeating, parks on the channel until the
///                  watchdog abandons the device, then throws
///                  gsim::DeviceLost (job migrates, device is gone).
/// kDeath never reaches a hook — the dispatcher models it at dispatch.
class JobFaultHook final : public gsim::FaultHook {
 public:
  JobFaultHook(JobFault fault, int device, int job_id, DeviceChaos* channel)
      : fault_(fault), device_(device), job_id_(job_id), channel_(channel) {}

  void onEvent(const char* what, std::uint64_t index) override;

  /// True once the fault has fired (so a migrated job can re-run clean).
  bool fired() const { return fired_.load(std::memory_order_acquire); }
  /// True if this run stalled and was abandoned by the watchdog.
  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  int jobId() const { return job_id_; }

 private:
  JobFault fault_;
  int device_;
  int job_id_;
  DeviceChaos* channel_;
  std::uint64_t events_ = 0;  ///< only touched by the running device thread
  std::atomic<bool> fired_{false};
  std::atomic<bool> stalled_{false};
};

}  // namespace mbir::chaos
