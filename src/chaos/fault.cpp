#include "chaos/fault.h"

#include <utility>

#include "core/error.h"
#include "core/rng.h"
#include "obs/json.h"

namespace mbir::chaos {

const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLaunchFault: return "launch";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDeath: return "death";
  }
  return "?";
}

JobFault parseFaultSpec(const std::string& spec) {
  JobFault f;
  if (spec.empty()) return f;
  std::string kind = spec;
  const std::size_t at = spec.find('@');
  if (at != std::string::npos) {
    kind = spec.substr(0, at);
    const std::string idx = spec.substr(at + 1);
    MBIR_CHECK_MSG(!idx.empty() &&
                       idx.find_first_not_of("0123456789") == std::string::npos,
                   "bad fault spec event index: '" << spec << "'");
    f.at_event = std::stoull(idx);
  }
  if (kind == "launch") {
    f.kind = FaultKind::kLaunchFault;
  } else if (kind == "stall") {
    f.kind = FaultKind::kStall;
  } else if (kind == "death") {
    MBIR_CHECK_MSG(at == std::string::npos,
                   "death takes no event index: '" << spec << "'");
    f.kind = FaultKind::kDeath;
  } else {
    MBIR_CHECK_MSG(false, "unknown fault spec '"
                              << spec
                              << "' (want launch@N | stall@N | death)");
  }
  return f;
}

std::string faultSpecString(const JobFault& f) {
  switch (f.kind) {
    case FaultKind::kNone: return "";
    case FaultKind::kLaunchFault:
      return "launch@" + std::to_string(f.at_event);
    case FaultKind::kStall: return "stall@" + std::to_string(f.at_event);
    case FaultKind::kDeath: return "death";
  }
  return "";
}

bool FaultPlan::targetsDevice(int device) const {
  if (target_devices.empty()) return true;
  for (int d : target_devices)
    if (d == device) return true;
  return false;
}

void FaultPlan::validate() const {
  MBIR_CHECK_MSG(launch_fault_rate >= 0.0 && launch_fault_rate <= 1.0,
                 "launch_fault_rate=" << launch_fault_rate);
  MBIR_CHECK_MSG(stall_rate >= 0.0 && stall_rate <= 1.0,
                 "stall_rate=" << stall_rate);
  MBIR_CHECK_MSG(death_rate >= 0.0 && death_rate <= 1.0,
                 "death_rate=" << death_rate);
  MBIR_CHECK_MSG(launch_fault_rate + stall_rate + death_rate <= 1.0,
                 "fault rates sum to > 1");
}

void FaultPlan::writeJson(obs::JsonWriter& w) const {
  w.beginObject();
  w.kv("seed", std::uint64_t(seed));
  w.kv("launch_fault_rate", launch_fault_rate);
  w.kv("stall_rate", stall_rate);
  w.kv("death_rate", death_rate);
  w.key("target_devices").beginArray();
  for (int d : target_devices) w.value(d);
  w.endArray();
  w.endObject();
}

std::string FaultPlan::toJson() const {
  obs::JsonWriter w;
  writeJson(w);
  return w.str();
}

FaultPlan FaultPlan::fromJson(const obs::JsonValue& doc) {
  MBIR_CHECK_MSG(doc.isObject(), "fault plan must be a JSON object");
  FaultPlan p;
  if (const obs::JsonValue* v = doc.find("seed"))
    p.seed = std::uint64_t(v->asNumber());
  if (const obs::JsonValue* v = doc.find("launch_fault_rate"))
    p.launch_fault_rate = v->asNumber();
  if (const obs::JsonValue* v = doc.find("stall_rate"))
    p.stall_rate = v->asNumber();
  if (const obs::JsonValue* v = doc.find("death_rate"))
    p.death_rate = v->asNumber();
  if (const obs::JsonValue* v = doc.find("target_devices")) {
    MBIR_CHECK_MSG(v->isArray(), "target_devices must be an array");
    for (const obs::JsonValue& d : v->array_v)
      p.target_devices.push_back(int(d.asNumber()));
  }
  p.validate();
  return p;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

JobFault FaultInjector::jobFault(int job_id) const {
  JobFault f;
  if (!plan_.enabled()) return f;
  // One keyed stream per job: the decision depends only on (seed, job_id),
  // never on how many decisions were made before it. Stream tag 0xFA17
  // ("fault") keeps chaos draws disjoint from the engines' per-SV streams.
  Rng rng = Rng::forStream(plan_.seed, std::uint64_t(job_id), 0xFA17);
  const double u = rng.uniform();
  double edge = plan_.launch_fault_rate;
  if (u < edge) {
    f.kind = FaultKind::kLaunchFault;
  } else if (u < (edge += plan_.stall_rate)) {
    f.kind = FaultKind::kStall;
  } else if (u < (edge += plan_.death_rate)) {
    f.kind = FaultKind::kDeath;
    return f;  // at_event is meaningless for death
  } else {
    return f;
  }
  // Fire within the first few execution events so even ~1-equit jobs reach
  // their fault point; the exact offset is itself seed-deterministic.
  f.at_event = rng.below(4);
  return f;
}

void DeviceChaos::abandon() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned_ = true;
  }
  cv_.notify_all();
}

bool DeviceChaos::abandoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abandoned_;
}

void DeviceChaos::waitAbandoned() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return abandoned_; });
}

void JobFaultHook::onEvent(const char* what, std::uint64_t index) {
  (void)index;  // fire points count all events of this run, not per-kind
  const std::uint64_t event = events_++;
  if (!fault_.none() && !fired_.load(std::memory_order_relaxed) &&
      event >= fault_.at_event) {
    fired_.store(true, std::memory_order_release);
    switch (fault_.kind) {
      case FaultKind::kLaunchFault:
        throw gsim::LaunchFault(what, event, device_);
      case FaultKind::kStall:
        // The device freezes: no more heartbeats, the run parks until the
        // watchdog abandons the device, then unwinds as DeviceLost so the
        // dispatcher can migrate the job.
        stalled_.store(true, std::memory_order_release);
        MBIR_CHECK_MSG(channel_ != nullptr,
                       "stall fault dispatched without a chaos channel");
        channel_->waitAbandoned();
        throw gsim::DeviceLost(device_);
      case FaultKind::kDeath:
      case FaultKind::kNone:
        break;  // death is modeled at dispatch; none unreachable
    }
  }
  if (channel_ != nullptr) channel_->beat();
}

}  // namespace mbir::chaos
