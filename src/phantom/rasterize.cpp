#include "phantom/rasterize.h"

#include "core/error.h"
#include "core/thread_pool.h"

namespace mbir {

Image2D rasterize(const EllipsePhantom& phantom, const ParallelBeamGeometry& g,
                  int supersample) {
  MBIR_CHECK(supersample >= 1);
  g.validate();
  Image2D img(g.image_size);
  const int ss = supersample;
  const double inv_ss2 = 1.0 / double(ss * ss);
  const double step = g.pixel_size_mm / double(ss);

  globalThreadPool().parallelFor(0, g.image_size, [&](int row) {
    for (int col = 0; col < g.image_size; ++col) {
      const double x0 = g.pixelX(col) - g.pixel_size_mm / 2.0 + step / 2.0;
      const double y0 = g.pixelY(row) - g.pixel_size_mm / 2.0 + step / 2.0;
      double acc = 0.0;
      for (int sy = 0; sy < ss; ++sy)
        for (int sx = 0; sx < ss; ++sx)
          acc += phantom.valueAt(x0 + double(sx) * step, y0 + double(sy) * step);
      img(row, col) = float(acc * inv_ss2);
    }
  }, /*grain=*/4);
  return img;
}

}  // namespace mbir
