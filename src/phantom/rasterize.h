// Rasterize an ellipse phantom onto the reconstruction grid.
#pragma once

#include "geom/geometry.h"
#include "geom/image.h"
#include "phantom/ellipse.h"

namespace mbir {

/// Render the phantom into an image on the geometry's pixel grid.
/// `supersample` subdivides each pixel supersample x supersample for
/// anti-aliased edges (3 is a good default; 1 = point sampling).
Image2D rasterize(const EllipsePhantom& phantom, const ParallelBeamGeometry& g,
                  int supersample = 3);

}  // namespace mbir
