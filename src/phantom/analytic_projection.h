// Exact (analytic) forward projection of ellipse phantoms.
//
// Integrates each ellipse's closed-form chord across every channel aperture
// (small Gauss quadrature across the aperture), producing the noiseless
// line-integral sinogram independent of the discrete system matrix. The
// scanner simulator projects phantoms this way so reconstruction never
// inverts the exact operator it was simulated with.
#pragma once

#include "geom/geometry.h"
#include "geom/sinogram.h"
#include "phantom/ellipse.h"

namespace mbir {

/// Noiseless sinogram of exact line integrals (dimensionless).
Sinogram analyticProject(const EllipsePhantom& phantom,
                         const ParallelBeamGeometry& g);

}  // namespace mbir
