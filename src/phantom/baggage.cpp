#include "phantom/baggage.h"

#include <cmath>
#include <numbers>

#include "core/error.h"
#include "core/rng.h"
#include "core/hounsfield.h"

namespace mbir {

const std::vector<Material>& baggageMaterials() {
  // Approximate linear attenuation at ~70 keV effective energy.
  static const std::vector<Material> kMaterials = {
      {"clothing", 0.004},   // loosely packed fabric
      {"water", kMuWaterPerMm},
      {"plastic", 0.0225},   // polymers / explosive simulant density range
      {"rubber", 0.026},
      {"glass", 0.055},
      {"aluminum", 0.075},
  };
  return kMaterials;
}

EllipsePhantom makeBaggagePhantom(std::uint64_t suite_seed, int case_index,
                                  const BaggageConfig& config) {
  MBIR_CHECK(case_index >= 0);
  MBIR_CHECK(config.field_radius_mm > 0.0);
  MBIR_CHECK(config.min_objects >= 0 && config.max_objects >= config.min_objects);

  // Per-case independent stream: hash the pair (seed, index).
  Rng rng(suite_seed * 0x9e3779b97f4a7c15ull + std::uint64_t(case_index) * 0xda942042e4dd58b5ull + 1);

  EllipsePhantom p;
  const double R = config.field_radius_mm;

  // Luggage shell: a large soft-sided container (fabric-ish fill) with
  // slightly random aspect and tilt.
  Ellipse shell;
  shell.a = R * rng.uniform(0.82, 0.95);
  shell.b = R * rng.uniform(0.58, 0.80);
  shell.cx = R * rng.uniform(-0.03, 0.03);
  shell.cy = R * rng.uniform(-0.03, 0.03);
  shell.phi = rng.uniform(0.0, std::numbers::pi);
  shell.value = baggageMaterials()[0].mu_per_mm;  // clothing fill
  p.ellipses.push_back(shell);

  const auto& mats = baggageMaterials();
  const int num_objects =
      config.min_objects +
      int(rng.below(std::uint64_t(config.max_objects - config.min_objects + 1)));

  const bool add_metal = rng.uniform() < config.metal_fraction;

  for (int i = 0; i < num_objects; ++i) {
    Ellipse e;
    // Keep the object inside the shell: place its center within 70% of the
    // shell's smaller semi-axis and bound its size accordingly.
    const double max_r = 0.7 * std::min(shell.a, shell.b);
    const double rr = max_r * std::sqrt(rng.uniform());  // area-uniform
    const double ang = rng.uniform(0.0, 2.0 * std::numbers::pi);
    e.cx = shell.cx + rr * std::cos(ang);
    e.cy = shell.cy + rr * std::sin(ang);
    e.a = rng.uniform(0.04, 0.22) * R;
    e.b = rng.uniform(0.04, 0.22) * R;
    e.phi = rng.uniform(0.0, std::numbers::pi);
    // Skip the clothing entry (index 0) for objects.
    const std::size_t mat = 1 + rng.below(mats.size() - 1);
    e.value = mats[mat].mu_per_mm;
    p.ellipses.push_back(e);
  }

  if (add_metal) {
    Ellipse m;
    m.cx = shell.cx + 0.4 * shell.a * (rng.uniform() - 0.5);
    m.cy = shell.cy + 0.4 * shell.b * (rng.uniform() - 0.5);
    m.a = rng.uniform(0.015, 0.04) * R;
    m.b = rng.uniform(0.015, 0.04) * R;
    m.phi = rng.uniform(0.0, std::numbers::pi);
    m.value = 0.18;  // dense metal (steel-ish, small to limit artifacts)
    p.ellipses.push_back(m);
  }

  return p;
}

}  // namespace mbir
