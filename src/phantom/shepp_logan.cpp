#include "phantom/shepp_logan.h"

#include <array>
#include <cmath>
#include <numbers>

#include "core/error.h"
#include "core/hounsfield.h"

namespace mbir {

namespace {

struct SlEllipse {
  double value, a, b, x0, y0, phi_deg;
};

// Canonical Shepp-Logan parameters in unit-disc coordinates.
constexpr std::array<SlEllipse, 10> kStandard{{
    {2.00, 0.6900, 0.9200, 0.00, 0.0000, 0.0},
    {-0.98, 0.6624, 0.8740, 0.00, -0.0184, 0.0},
    {-0.02, 0.1100, 0.3100, 0.22, 0.0000, -18.0},
    {-0.02, 0.1600, 0.4100, -0.22, 0.0000, 18.0},
    {0.01, 0.2100, 0.2500, 0.00, 0.3500, 0.0},
    {0.01, 0.0460, 0.0460, 0.00, 0.1000, 0.0},
    {0.01, 0.0460, 0.0460, 0.00, -0.1000, 0.0},
    {0.01, 0.0460, 0.0230, -0.08, -0.6050, 0.0},
    {0.01, 0.0230, 0.0230, 0.00, -0.6060, 0.0},
    {0.01, 0.0230, 0.0460, 0.06, -0.6050, 0.0},
}};

// Toft's modified contrast values (same geometry).
constexpr std::array<double, 10> kModifiedValues{1.0, -0.8, -0.2, -0.2, 0.1,
                                                 0.1, 0.1,  0.1,  0.1, 0.1};

EllipsePhantom build(double radius_mm, const std::array<SlEllipse, 10>& defs,
                     const std::array<double, 10>* override_values) {
  MBIR_CHECK(radius_mm > 0.0);
  // The phantom's largest extent is the outer ellipse's 0.92 semi-axis.
  const double scale = radius_mm / 0.92;
  EllipsePhantom p;
  p.ellipses.reserve(defs.size());
  for (std::size_t i = 0; i < defs.size(); ++i) {
    const SlEllipse& d = defs[i];
    Ellipse e;
    e.cx = d.x0 * scale;
    e.cy = d.y0 * scale;
    e.a = d.a * scale;
    e.b = d.b * scale;
    e.phi = d.phi_deg * std::numbers::pi / 180.0;
    const double v = override_values ? (*override_values)[i] : d.value;
    e.value = v * kMuWaterPerMm;
    p.ellipses.push_back(e);
  }
  return p;
}

}  // namespace

EllipsePhantom sheppLogan(double radius_mm) {
  return build(radius_mm, kStandard, nullptr);
}

EllipsePhantom modifiedSheppLogan(double radius_mm) {
  return build(radius_mm, kStandard, &kModifiedValues);
}

}  // namespace mbir
