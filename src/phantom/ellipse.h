// Ellipse primitives.
//
// Phantoms are additive superpositions of ellipses (the classic CT test
// construction): each ellipse adds its attenuation value inside its
// boundary. Ellipses admit closed-form line integrals, so a phantom's exact
// sinogram is available analytically — tests use this to validate the
// system matrix, and the scanner simulator uses it to avoid the "inverse
// crime" of projecting with the same matrix used for reconstruction.
#pragma once

#include <vector>

namespace mbir {

struct Ellipse {
  double cx = 0.0;     ///< center x (mm)
  double cy = 0.0;     ///< center y (mm)
  double a = 1.0;      ///< semi-axis along the ellipse's own x axis (mm)
  double b = 1.0;      ///< semi-axis along the ellipse's own y axis (mm)
  double phi = 0.0;    ///< rotation (radians, counter-clockwise)
  double value = 0.0;  ///< additive attenuation contribution (1/mm)

  /// True if (x, y) lies inside (boundary inclusive).
  bool contains(double x, double y) const;

  /// Length (mm) of the intersection of the ellipse with the line
  /// { (x, y) : x cos(theta) + y sin(theta) = t }.
  double chordLength(double theta, double t) const;
};

/// A phantom: ellipses whose values superpose additively.
struct EllipsePhantom {
  std::vector<Ellipse> ellipses;

  /// Attenuation at a point (sum over containing ellipses), 1/mm.
  double valueAt(double x, double y) const;

  /// Exact line integral along x cos(theta) + y sin(theta) = t.
  double lineIntegral(double theta, double t) const;

  /// Radius of the smallest origin-centered circle containing all ellipses.
  double boundingRadius() const;
};

}  // namespace mbir
