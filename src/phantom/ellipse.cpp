#include "phantom/ellipse.h"

#include <algorithm>
#include <cmath>

namespace mbir {

bool Ellipse::contains(double x, double y) const {
  const double dx = x - cx;
  const double dy = y - cy;
  const double c = std::cos(phi), s = std::sin(phi);
  // Rotate into the ellipse frame.
  const double u = dx * c + dy * s;
  const double v = -dx * s + dy * c;
  return (u * u) / (a * a) + (v * v) / (b * b) <= 1.0;
}

double Ellipse::chordLength(double theta, double t) const {
  // Shift the line so the ellipse is centered: effective offset from center.
  const double tc = t - (cx * std::cos(theta) + cy * std::sin(theta));
  // In the ellipse frame the projection half-width at angle (theta - phi) is
  // rho = sqrt(a^2 cos^2 + b^2 sin^2); the chord of a unit circle scales by
  // ab / rho^2 * 2 sqrt(rho^2 - tc^2).
  const double ca = std::cos(theta - phi);
  const double sa = std::sin(theta - phi);
  const double rho2 = a * a * ca * ca + b * b * sa * sa;
  const double disc = rho2 - tc * tc;
  if (disc <= 0.0) return 0.0;
  return 2.0 * a * b * std::sqrt(disc) / rho2;
}

double EllipsePhantom::valueAt(double x, double y) const {
  double acc = 0.0;
  for (const Ellipse& e : ellipses)
    if (e.contains(x, y)) acc += e.value;
  return acc;
}

double EllipsePhantom::lineIntegral(double theta, double t) const {
  double acc = 0.0;
  for (const Ellipse& e : ellipses) acc += e.value * e.chordLength(theta, t);
  return acc;
}

double EllipsePhantom::boundingRadius() const {
  double r = 0.0;
  for (const Ellipse& e : ellipses) {
    const double center = std::hypot(e.cx, e.cy);
    r = std::max(r, center + std::max(e.a, e.b));
  }
  return r;
}

}  // namespace mbir
