// Random baggage phantom generator — the stand-in for the ALERT TO3 dataset.
//
// The paper's 3200 test cases are checked-luggage scans from an Imatron
// C-300 (transportation-security CT). We cannot ship that data, so this
// generator produces security-scan-like slices: a luggage shell containing a
// random arrangement of objects drawn from a small material library
// (clothing, water, plastics, glass, aluminum). Every case is fully
// determined by (suite seed, case index), so a "suite of N cases" is
// reproducible, and large empty regions make zero-skipping meaningful
// exactly as in real baggage data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phantom/ellipse.h"

namespace mbir {

struct BaggageConfig {
  /// All content fits inside this radius (mm); pick <= scanner FOV radius.
  double field_radius_mm = 48.0;
  /// Object count range (inclusive).
  int min_objects = 4;
  int max_objects = 12;
  /// Fraction of cases that include one small high-density (metal) object.
  double metal_fraction = 0.3;
};

/// Materials used by the generator (attenuation in 1/mm).
struct Material {
  std::string name;
  double mu_per_mm;
};

/// The material library (clothing ... aluminum); exposed for tests/examples.
const std::vector<Material>& baggageMaterials();

/// Deterministically generate case `case_index` of the suite with the given
/// seed. Different indices give independent phantoms.
EllipsePhantom makeBaggagePhantom(std::uint64_t suite_seed, int case_index,
                                  const BaggageConfig& config = {});

}  // namespace mbir
