#include "phantom/analytic_projection.h"

#include <array>
#include <cmath>

#include "core/thread_pool.h"

namespace mbir {

namespace {
// 3-point Gauss–Legendre nodes/weights on [-1/2, 1/2]: averages the line
// integral across each channel aperture (a real detector integrates flux
// over its face).
constexpr std::array<double, 3> kNodes{-0.3872983346207417, 0.0, 0.3872983346207417};
constexpr std::array<double, 3> kWeights{5.0 / 18.0, 8.0 / 18.0, 5.0 / 18.0};
}  // namespace

Sinogram analyticProject(const EllipsePhantom& phantom,
                         const ParallelBeamGeometry& g) {
  g.validate();
  Sinogram y(g);
  globalThreadPool().parallelFor(0, g.num_views, [&](int v) {
    const double theta = g.angle(v);
    auto row = y.row(v);
    for (int c = 0; c < g.num_channels; ++c) {
      double acc = 0.0;
      for (std::size_t q = 0; q < kNodes.size(); ++q) {
        const double t =
            (double(c) + kNodes[q] - g.centerChannel()) * g.channel_spacing_mm;
        acc += kWeights[q] * phantom.lineIntegral(theta, t);
      }
      row[std::size_t(c)] = float(acc);
    }
  }, /*grain=*/4);
  return y;
}

}  // namespace mbir
