// The Shepp-Logan head phantom, scaled to a caller-specified radius and
// expressed in linear attenuation (1/mm) with water-equivalent soft tissue.
#pragma once

#include "phantom/ellipse.h"

namespace mbir {

/// Standard (unmodified) Shepp-Logan phantom scaled so its outer skull
/// ellipse has semi-major axis `radius_mm`. Values use mu(water) scaling so
/// tissue contrast lands in a realistic HU range.
EllipsePhantom sheppLogan(double radius_mm);

/// "Modified" Shepp-Logan (Toft) with boosted contrast, better for visual
/// checks at low dose.
EllipsePhantom modifiedSheppLogan(double radius_mm);

}  // namespace mbir
