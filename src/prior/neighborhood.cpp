#include "prior/neighborhood.h"

#include <cmath>

namespace mbir {

const std::array<NeighborOffset, 8>& neighborhood8() {
  static const std::array<NeighborOffset, 8> kNeighbors = [] {
    const double edge = 1.0;
    const double diag = 1.0 / std::sqrt(2.0);
    const double total = 4.0 * edge + 4.0 * diag;
    std::array<NeighborOffset, 8> n{{
        {-1, -1, diag / total}, {-1, 0, edge / total}, {-1, 1, diag / total},
        {0, -1, edge / total},  {0, 1, edge / total},
        {1, -1, diag / total},  {1, 0, edge / total},  {1, 1, diag / total},
    }};
    return n;
  }();
  return kNeighbors;
}

bool allNeighborsZero(const Image2D& x, int row, int col) {
  if (x(row, col) != 0.0f) return false;
  bool all_zero = true;
  forEachNeighbor(x, row, col, [&](float v, double) {
    if (v != 0.0f) all_zero = false;
  });
  return all_zero;
}

}  // namespace mbir
