// MBIR prior model interface.
//
// MBIR minimizes  f(x) = 1/2 ||y - A x||^2_W  +  sum_{cliques {i,j}} b_ij rho(x_i - x_j).
// ICD's 1D voxel subproblem replaces rho by its symmetric-bound quadratic
// surrogate at the current difference u (Yu et al., "functional
// substitution"): rho(u + d) <= rho(u) + rho'(u) d + coeff(u) d^2, with
// coeff(u) = rho'(u) / (2u) (limit rho''(0)/2 at u = 0). This makes the
// voxel update a closed-form minimization (icd/voxel_update.h) while keeping
// monotone cost descent — a property the test suite checks.
#pragma once

namespace mbir {

class Prior {
 public:
  virtual ~Prior() = default;

  /// rho(delta): clique potential.
  virtual double potential(double delta) const = 0;

  /// rho'(delta): influence function.
  virtual double influence(double delta) const = 0;

  /// rho'(u) / (2u) with the u -> 0 limit; the surrogate quadratic coefficient.
  virtual double surrogateCoeff(double u) const = 0;
};

/// Gaussian MRF: rho(d) = d^2 / (2 sigma^2). The classical quadratic prior;
/// blurs edges but is the fastest-converging reference.
class QuadraticPrior final : public Prior {
 public:
  explicit QuadraticPrior(double sigma_x);
  double potential(double delta) const override;
  double influence(double delta) const override;
  double surrogateCoeff(double u) const override;
  double sigmaX() const { return sigma_x_; }

 private:
  double sigma_x_;
};

/// q-GGMRF prior (Thibault et al. 2007) with p = 2:
///   rho(d) = (d^2 / (2 sigma^2)) * r / (1 + r),   r = |d / (T sigma)|^(q-2)
/// Quadratic near zero (noise suppression), approximately |d|^q for large
/// differences (edge preservation). Requires 1 < q < 2.
class QggmrfPrior final : public Prior {
 public:
  QggmrfPrior(double sigma_x, double q = 1.2, double T = 1.0);
  double potential(double delta) const override;
  double influence(double delta) const override;
  double surrogateCoeff(double u) const override;

  double sigmaX() const { return sigma_x_; }
  double q() const { return q_; }
  double T() const { return T_; }

 private:
  double sigma_x_;
  double q_;
  double T_;
};

}  // namespace mbir
