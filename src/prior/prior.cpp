#include "prior/prior.h"

#include <cmath>

#include "core/error.h"

namespace mbir {

QuadraticPrior::QuadraticPrior(double sigma_x) : sigma_x_(sigma_x) {
  MBIR_CHECK(sigma_x > 0.0);
}

double QuadraticPrior::potential(double delta) const {
  return delta * delta / (2.0 * sigma_x_ * sigma_x_);
}

double QuadraticPrior::influence(double delta) const {
  return delta / (sigma_x_ * sigma_x_);
}

double QuadraticPrior::surrogateCoeff(double /*u*/) const {
  return 1.0 / (2.0 * sigma_x_ * sigma_x_);
}

QggmrfPrior::QggmrfPrior(double sigma_x, double q, double T)
    : sigma_x_(sigma_x), q_(q), T_(T) {
  MBIR_CHECK(sigma_x > 0.0);
  MBIR_CHECK_MSG(q > 1.0 && q < 2.0, "q-GGMRF requires 1 < q < 2, got q=" << q);
  MBIR_CHECK(T > 0.0);
}

namespace {
// Below this |d| / (T sigma) ratio the prior is numerically quadratic.
constexpr double kQuadraticLimit = 1e-12;
}  // namespace

double QggmrfPrior::potential(double delta) const {
  const double s2 = sigma_x_ * sigma_x_;
  const double ad = std::abs(delta) / (T_ * sigma_x_);
  if (ad < kQuadraticLimit) return delta * delta / (2.0 * s2);
  const double r = std::pow(ad, q_ - 2.0);  // q - 2 < 0: r grows as d -> 0
  return delta * delta / (2.0 * s2) * r / (1.0 + r);
}

double QggmrfPrior::influence(double delta) const {
  const double s2 = sigma_x_ * sigma_x_;
  const double ad = std::abs(delta) / (T_ * sigma_x_);
  if (ad < kQuadraticLimit) return delta / s2;
  const double r = std::pow(ad, q_ - 2.0);
  const double onepr = 1.0 + r;
  return delta / s2 * r * (q_ / 2.0 + r) / (onepr * onepr);
}

double QggmrfPrior::surrogateCoeff(double u) const {
  const double s2 = sigma_x_ * sigma_x_;
  const double au = std::abs(u) / (T_ * sigma_x_);
  if (au < kQuadraticLimit) return 1.0 / (2.0 * s2);
  return influence(u) / (2.0 * u);
}

}  // namespace mbir
