// 8-neighbour clique system for the 2D MRF prior.
//
// Clique weights b are inverse-distance (1 for edge neighbours, 1/sqrt(2)
// for diagonals), normalized to sum to 1 over the full 8-neighbourhood.
// Image-border voxels simply have fewer cliques (free boundary).
#pragma once

#include <array>

#include "geom/image.h"

namespace mbir {

struct NeighborOffset {
  int dr, dc;
  double b;  ///< clique weight
};

/// The 8 neighbour offsets with normalized weights.
const std::array<NeighborOffset, 8>& neighborhood8();

/// Visit the in-bounds neighbours of (row, col): fn(value, b_weight).
template <typename Fn>
void forEachNeighbor(const Image2D& x, int row, int col, Fn&& fn) {
  for (const NeighborOffset& n : neighborhood8()) {
    const int r = row + n.dr;
    const int c = col + n.dc;
    if (r < 0 || r >= x.size() || c < 0 || c >= x.size()) continue;
    fn(x(r, c), n.b);
  }
}

/// True when the voxel and all in-bounds neighbours are zero (the paper's
/// zero-skipping predicate, §2.1).
bool allNeighborsZero(const Image2D& x, int row, int col);

}  // namespace mbir
