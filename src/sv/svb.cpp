#include "sv/svb.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "geom/footprint.h"

namespace mbir {

SvbPlan::SvbPlan(const ParallelBeamGeometry& g, const SuperVoxel& sv, int pad_align)
    : sv_(sv), num_views_(g.num_views), pad_align_(pad_align) {
  MBIR_CHECK(pad_align >= 1);
  lo_.resize(std::size_t(num_views_));
  width_.resize(std::size_t(num_views_));
  packed_offset_.resize(std::size_t(num_views_));

  // The projection t of any voxel center in the SV is linear in (x, y), so
  // per view its extremes occur at the SV's corner voxels; padding by the
  // footprint half-support (same for every voxel at a view) and the
  // channel-aperture half-width covers every voxel's run.
  const double xs[2] = {g.pixelX(sv.col0), g.pixelX(sv.col1 - 1)};
  const double ys[2] = {g.pixelY(sv.row0), g.pixelY(sv.row1 - 1)};

  std::size_t offset = 0;
  for (int v = 0; v < num_views_; ++v) {
    const double th = g.angle(v);
    const double c = std::cos(th), s = std::sin(th);
    double tmin = 1e300, tmax = -1e300;
    for (double x : xs)
      for (double y : ys) {
        const double t = x * c + y * s;
        tmin = std::min(tmin, t);
        tmax = std::max(tmax, t);
      }
    const double hs =
        TrapezoidProfile(g.pixel_size_mm, th).halfSupport() / g.channel_spacing_mm;
    const double cc = g.centerChannel();
    int lo = int(std::ceil(cc + tmin / g.channel_spacing_mm - hs - 0.5));
    int hi = int(std::floor(cc + tmax / g.channel_spacing_mm + hs + 0.5));
    lo = std::max(lo, 0);
    hi = std::min(hi, g.num_channels - 1);
    const int w = std::max(0, hi - lo + 1);
    lo_[std::size_t(v)] = lo;
    width_[std::size_t(v)] = w;
    max_width_ = std::max(max_width_, w);
    packed_offset_[std::size_t(v)] = offset;
    offset += std::size_t(w);
  }
  packed_size_ = offset;
  padded_width_ = int(roundUp(std::size_t(std::max(max_width_, 1)),
                              std::size_t(pad_align_)));
}

void SvbPlan::growPaddedWidth(int min_width) {
  if (min_width > padded_width_)
    padded_width_ =
        int(roundUp(std::size_t(min_width), std::size_t(pad_align_)));
}

Svb::Svb(const SvbPlan& plan, SvbLayout layout)
    : plan_(&plan),
      layout_(layout),
      buf_(layout == SvbLayout::kPacked ? plan.packedSize() : plan.paddedSize()) {}

std::size_t Svb::indexOf(int view, int channel) const {
  const int c = channel - plan_->lo(view);
  MBIR_CHECK_MSG(c >= 0 && c < plan_->width(view),
                 "channel " << channel << " outside band of view " << view);
  if (layout_ == SvbLayout::kPacked)
    return plan_->packedOffset(view) + std::size_t(c);
  return std::size_t(view) * std::size_t(plan_->paddedWidth()) + std::size_t(c);
}

float& Svb::at(int view, int channel) { return buf_[indexOf(view, channel)]; }

float Svb::atOrZero(int view, int channel) const {
  const int c = channel - plan_->lo(view);
  if (c < 0 || c >= plan_->width(view)) return 0.0f;
  if (layout_ == SvbLayout::kPacked)
    return buf_[plan_->packedOffset(view) + std::size_t(c)];
  return buf_[std::size_t(view) * std::size_t(plan_->paddedWidth()) + std::size_t(c)];
}

float* Svb::rowData(int view) {
  if (layout_ == SvbLayout::kPacked) return buf_.data() + plan_->packedOffset(view);
  return buf_.data() + std::size_t(view) * std::size_t(plan_->paddedWidth());
}

const float* Svb::rowData(int view) const {
  return const_cast<Svb*>(this)->rowData(view);
}

int Svb::rowWidth(int view) const {
  return layout_ == SvbLayout::kPacked ? plan_->width(view) : plan_->paddedWidth();
}

void Svb::gather(const Sinogram& src) {
  MBIR_CHECK(src.views() == plan_->numViews());
  if (layout_ == SvbLayout::kPadded && !buf_.empty())
    std::memset(buf_.data(), 0, buf_.size() * sizeof(float));
  for (int v = 0; v < plan_->numViews(); ++v) {
    const int w = plan_->width(v);
    if (w == 0) continue;
    const auto row = src.row(v);
    std::memcpy(rowData(v), row.data() + plan_->lo(v), std::size_t(w) * sizeof(float));
  }
}

void Svb::applyDeltaTo(Sinogram& dst, const Svb& original,
                       const SimdOps* ops) const {
  applyDeltaTo(dst, original, 0, 1, ops);
}

void Svb::applyDeltaTo(Sinogram& dst, const Svb& original, int stripe,
                       int num_stripes, const SimdOps* ops) const {
  MBIR_CHECK(original.plan_ == plan_ && original.layout_ == layout_);
  MBIR_CHECK(dst.views() == plan_->numViews());
  MBIR_CHECK(num_stripes >= 1 && stripe >= 0 && stripe < num_stripes);
  if (ops == nullptr) ops = &scalarSimdOps();
  for (int v = stripe; v < plan_->numViews(); v += num_stripes) {
    const int w = plan_->width(v);
    if (w == 0) continue;
    float* out = dst.row(v).data() + plan_->lo(v);
    ops->apply_delta_row(rowData(v), original.rowData(v), out, w);
  }
}

}  // namespace mbir
