// SuperVoxel Buffers (SVBs) and their layouts (paper §2.2, Fig. 2, §4.1).
//
// An SVB is a private copy of the sinogram band touched by one SuperVoxel:
// for each view, the channel interval covering every voxel's footprint in
// the SV. Two layouts are implemented:
//
//  * Packed (Fig. 4a): variable-width view rows concatenated back-to-back —
//    PSV-ICD's cache-friendly CPU layout, and the "naive" GPU layout whose
//    uncoalesced accesses motivate the transformation.
//  * Padded (Fig. 4b): the paper's transformed layout — the SVB is
//    transposed to view-major and made perfectly rectangular by
//    zero-padding, each row placed at an aligned address.
//
// Error and weight sinograms use the same band, so one SvbPlan serves both.
#pragma once

#include <cstddef>
#include <vector>

#include "core/aligned.h"
#include "core/simd.h"
#include "geom/geometry.h"
#include "geom/sinogram.h"
#include "geom/system_matrix.h"
#include "sv/supervoxel.h"

namespace mbir {

/// Per-view channel band [lo, lo+width) covering an SV, plus both layouts'
/// shape metadata. Built once per SV (the band depends only on geometry).
class SvbPlan {
 public:
  /// `pad_align` is the row alignment of the padded layout in elements
  /// (32 floats = one 128-byte GPU transaction).
  SvbPlan(const ParallelBeamGeometry& g, const SuperVoxel& sv, int pad_align = 32);

  const SuperVoxel& sv() const { return sv_; }
  int numViews() const { return num_views_; }
  int lo(int view) const { return lo_[std::size_t(view)]; }
  int width(int view) const { return width_[std::size_t(view)]; }
  int maxWidth() const { return max_width_; }
  int padAlign() const { return pad_align_; }

  /// Packed layout: element (view, global channel ch) lives at
  /// packedOffset(view) + (ch - lo(view)).
  std::size_t packedOffset(int view) const { return packed_offset_[std::size_t(view)]; }
  std::size_t packedSize() const { return packed_size_; }

  /// Padded layout row pitch (elements). Rows are aligned; columns past
  /// width(view) are zero padding. Grown via growPaddedWidth() when a chunk
  /// plan needs read room past the band (sv/chunks.h).
  int paddedWidth() const { return padded_width_; }
  std::size_t paddedSize() const {
    return std::size_t(num_views_) * std::size_t(padded_width_);
  }
  void growPaddedWidth(int min_width);

 private:
  SuperVoxel sv_;
  int num_views_;
  int pad_align_;
  std::vector<int> lo_, width_;
  int max_width_ = 0;
  std::vector<std::size_t> packed_offset_;
  std::size_t packed_size_ = 0;
  int padded_width_ = 0;
};

enum class SvbLayout {
  kPacked,  ///< variable-width rows, concatenated (CPU / naive GPU)
  kPadded,  ///< rectangular, view-major, aligned rows (transformed GPU)
};

/// One SVB instance (error or weights) in a chosen layout.
class Svb {
 public:
  Svb(const SvbPlan& plan, SvbLayout layout);

  const SvbPlan& plan() const { return *plan_; }
  SvbLayout layout() const { return layout_; }

  /// Copy the band in from the global sinogram (zero-fills padding).
  void gather(const Sinogram& src);

  /// Element by (view, *global* channel). Channel must lie in the band.
  float& at(int view, int channel);
  float atOrZero(int view, int channel) const;

  /// Direct row access for kernels: pointer to column 0 of the view row
  /// (column c corresponds to global channel lo(view) + c).
  float* rowData(int view);
  const float* rowData(int view) const;
  /// Row pitch in elements (padded: paddedWidth; packed: that row's width).
  int rowWidth(int view) const;

  /// dst += (this - original), over the band. This is PSV-ICD's locked
  /// writeback (Alg. 2 lines 16-19) and the functional core of GPU-ICD's
  /// atomic writeback kernel. Rows run through `ops` (core/simd.h; nullptr
  /// = scalar) — the op is elementwise, so every path produces the same
  /// bits.
  void applyDeltaTo(Sinogram& dst, const Svb& original,
                    const SimdOps* ops = nullptr) const;

  /// Striped variant for concurrent writeback: only views v with
  /// v % num_stripes == stripe are applied. SVBs of different SVs overlap
  /// in sinogram space, so concurrent writers partition the destination by
  /// view stripe — each sinogram element then has exactly one writer and
  /// the (deterministic) result matches applying every SVB serially.
  void applyDeltaTo(Sinogram& dst, const Svb& original, int stripe,
                    int num_stripes, const SimdOps* ops = nullptr) const;

  std::span<float> raw() { return buf_.span(); }
  std::span<const float> raw() const { return buf_.span(); }

 private:
  std::size_t indexOf(int view, int channel) const;

  const SvbPlan* plan_;
  SvbLayout layout_;
  AlignedBuffer<float> buf_;
};

}  // namespace mbir
