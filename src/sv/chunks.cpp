#include "sv/chunks.h"

#include <algorithm>
#include <cmath>

namespace mbir {

ChunkPlan::ChunkPlan(const SystemMatrix& A, SvbPlan& svb_plan,
                     ChunkPlanOptions options)
    : options_(options), sv_(svb_plan.sv()) {
  MBIR_CHECK(options.chunk_width >= 1);
  MBIR_CHECK_MSG(options.chunk_width >= A.maxFootprintWidth(),
                 "chunk width " << options.chunk_width
                                << " below max footprint width "
                                << A.maxFootprintWidth());

  const int W = options.chunk_width;
  const int align_unit = std::min(W, svb_plan.padAlign());
  const int num_views = A.numViews();
  const int image_size = A.geometry().image_size;
  const int num_voxels = sv_.numVoxels();

  voxel_begin_.assign(std::size_t(num_voxels) + 1, 0);
  scale_.assign(std::size_t(num_voxels), 0.0f);

  // Pass 1: build descriptors (no data yet).
  int max_column_end = 0;
  for (int k = 0; k < num_voxels; ++k) {
    voxel_begin_[std::size_t(k)] = std::uint32_t(descs_.size());
    const std::size_t voxel = std::size_t(sv_.voxelAt(k, image_size));
    scale_[std::size_t(k)] = A.voxelMax(voxel) / 255.0f;

    bool open = false;
    ChunkDesc cur{};
    auto close = [&] {
      if (open) descs_.push_back(cur);
      open = false;
    };

    for (int v = 0; v < num_views; ++v) {
      const SystemMatrix::Run& r = A.run(voxel, v);
      if (r.count == 0) {
        close();
        continue;
      }
      const int ws = int(r.first_channel) - svb_plan.lo(v);
      const int we = ws + int(r.count);
      MBIR_CHECK_MSG(ws >= 0 && we <= svb_plan.width(v),
                     "voxel run outside SVB band (voxel " << voxel << " view "
                                                          << v << ")");
      true_nnz_ += std::size_t(r.count);

      if (open && ws >= cur.base && we <= cur.base + W &&
          cur.view0 + cur.nrows == v) {
        ++cur.nrows;
        continue;
      }
      close();
      // Aligned base when the window fits behind the alignment boundary;
      // otherwise fall back to an unaligned base at the window start
      // (possible when W is barely above the footprint width).
      int base = ws / align_unit * align_unit;
      bool aligned = true;
      if (we > base + W) {
        base = ws;
        aligned = false;
      }
      cur = ChunkDesc{k, v, 1, base, 0, aligned};
      open = true;
      max_column_end = std::max(max_column_end, base + W);
    }
    close();
  }
  voxel_begin_[std::size_t(num_voxels)] = std::uint32_t(descs_.size());

  // The padded SVB must be readable over every chunk window.
  svb_plan.growPaddedWidth(max_column_end);

  // Assign data offsets.
  std::size_t offset = 0;
  for (ChunkDesc& d : descs_) {
    d.data_offset = std::uint32_t(offset);
    offset += std::size_t(d.nrows) * std::size_t(W);
    MBIR_CHECK_MSG(offset <= UINT32_MAX, "chunk table exceeds uint32 offsets");
  }
  total_elements_ = offset;

  // Pass 2: fill A rows (zero-padded outside the voxel's true footprint).
  if (options_.quantize)
    qdata_ = AlignedBuffer<std::uint8_t>(total_elements_);
  else
    fdata_ = AlignedBuffer<float>(total_elements_);

  for (const ChunkDesc& d : descs_) {
    const std::size_t voxel =
        std::size_t(sv_.voxelAt(d.local_voxel, image_size));
    const float vmax = A.voxelMax(voxel);
    for (int i = 0; i < d.nrows; ++i) {
      const int v = d.view0 + i;
      const SystemMatrix::Run& r = A.run(voxel, v);
      const auto aw = A.weights(voxel, v);
      const int ws = int(r.first_channel) - svb_plan.lo(v);
      const std::size_t row_off = d.data_offset + std::size_t(i) * std::size_t(W);
      for (int k = 0; k < int(r.count); ++k) {
        const int col = ws + k - d.base;
        MBIR_CHECK(col >= 0 && col < W);
        if (options_.quantize) {
          // Normalize by the voxel max so the 8 bits carry the MSBs
          // (paper §4.3.1), with +0.5 rounding.
          const float q = vmax > 0.0f ? aw[std::size_t(k)] / vmax * 255.0f + 0.5f : 0.0f;
          qdata_[row_off + std::size_t(col)] =
              std::uint8_t(std::min(q, 255.0f));
        } else {
          fdata_[row_off + std::size_t(col)] = aw[std::size_t(k)];
        }
      }
    }
  }
}

std::span<const ChunkDesc> ChunkPlan::chunksOf(int local_voxel) const {
  const std::size_t b = voxel_begin_[std::size_t(local_voxel)];
  const std::size_t e = voxel_begin_[std::size_t(local_voxel) + 1];
  return {descs_.data() + b, e - b};
}

std::span<const float> ChunkPlan::dataFloat(const ChunkDesc& d) const {
  MBIR_CHECK(!options_.quantize);
  return {fdata_.data() + d.data_offset,
          std::size_t(d.nrows) * std::size_t(options_.chunk_width)};
}

std::span<const std::uint8_t> ChunkPlan::dataQuant(const ChunkDesc& d) const {
  MBIR_CHECK(options_.quantize);
  return {qdata_.data() + d.data_offset,
          std::size_t(d.nrows) * std::size_t(options_.chunk_width)};
}

float ChunkPlan::aValue(const ChunkDesc& d, int r, int c) const {
  const std::size_t idx =
      d.data_offset + std::size_t(r) * std::size_t(options_.chunk_width) + std::size_t(c);
  if (options_.quantize)
    return float(qdata_[idx]) * scale_[std::size_t(d.local_voxel)];
  return fdata_[idx];
}

double ChunkPlan::paddingRatio() const {
  if (true_nnz_ == 0) return 1.0;
  return double(total_elements_) / double(true_nnz_);
}

double ChunkPlan::alignedFraction() const {
  if (descs_.empty()) return 1.0;
  std::size_t aligned = 0;
  for (const ChunkDesc& d : descs_)
    if (d.aligned) ++aligned;
  return double(aligned) / double(descs_.size());
}

}  // namespace mbir
