// Chunk decomposition of the padded SVB and the zero-padded A-matrix
// (paper §4.1, Fig. 4b).
//
// In the padded view-major SVB, a voxel's data in view-row v occupies the
// column window [ws(v), ws(v) + count(v)) where ws(v) = first_channel(v) -
// band_lo(v). The window drifts sinusoidally across views. A *chunk* is a
// rectangular block — a fixed column window [base, base + W) spanning a
// maximal run of consecutive views whose voxel windows all fit inside it.
// The A-matrix is re-packed per chunk as nrows x W dense rows, zero-padded
// outside the voxel's true footprint, so the kernel's inner loop is a plain
// element-by-element multiply over perfectly rectangular, aligned rows —
// the coalesced-access shape GPUs want. Zero padding guarantees the
// non-voxel-related SVB elements inside the window never affect correctness
// (a property the test suite pins against the global-sinogram reference).
//
// The same table can be built with uint8-quantized A entries (§4.3.1):
// q = round(A / voxelMax * 255), dequantized on the fly by q * scale with
// scale = voxelMax / 255 stored once per voxel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aligned.h"
#include "geom/system_matrix.h"
#include "sv/svb.h"

namespace mbir {

struct ChunkDesc {
  std::int32_t local_voxel;     ///< voxel index within the SV (row-major)
  std::int32_t view0;           ///< first view (SVB row) of the chunk
  std::int32_t nrows;           ///< consecutive views covered
  std::int32_t base;            ///< SVB column of the window start
  std::uint32_t data_offset;    ///< start of this chunk's A rows (elements)
  bool aligned;                 ///< base is a multiple of the alignment unit
};

struct ChunkPlanOptions {
  /// Chunk width W in elements (paper Fig. 6 sweeps 8..128; best 32).
  int chunk_width = 32;
  /// Store A entries as uint8 with per-voxel scale (paper §4.3.1) instead
  /// of float.
  bool quantize = true;
};

/// Per-SV chunk table + re-packed A data. Construction may grow the plan's
/// padded width so every chunk's window is readable.
class ChunkPlan {
 public:
  ChunkPlan(const SystemMatrix& A, SvbPlan& svb_plan, ChunkPlanOptions options);

  int chunkWidth() const { return options_.chunk_width; }
  bool quantized() const { return options_.quantize; }
  const SuperVoxel& sv() const { return sv_; }

  std::span<const ChunkDesc> chunksOf(int local_voxel) const;
  std::size_t numChunks() const { return descs_.size(); }

  /// Chunk A rows (nrows * W elements, row-major). Exactly one of these is
  /// live depending on quantized().
  std::span<const float> dataFloat(const ChunkDesc& d) const;
  std::span<const std::uint8_t> dataQuant(const ChunkDesc& d) const;

  /// Dequantization scale for a voxel (voxelMax / 255); 0 for empty columns.
  float scaleOf(int local_voxel) const { return scale_[std::size_t(local_voxel)]; }

  /// Reconstructed A value at (chunk row r, column c) — dequantizes when
  /// quantized. Shared by the simulated kernel and tests.
  float aValue(const ChunkDesc& d, int r, int c) const;

  // --- occupancy/bandwidth accounting for the GPU timing model ---
  std::size_t totalDataElements() const { return total_elements_; }
  std::size_t trueNnz() const { return true_nnz_; }
  /// padded elements / true nonzeros (>= 1); the §4.1 redundancy cost.
  double paddingRatio() const;
  /// Fraction of chunks whose base is alignment-friendly.
  double alignedFraction() const;
  /// Bytes of A data per element (1 when quantized, 4 otherwise).
  int bytesPerElement() const { return options_.quantize ? 1 : 4; }

 private:
  ChunkPlanOptions options_;
  SuperVoxel sv_;
  std::vector<ChunkDesc> descs_;
  std::vector<std::uint32_t> voxel_begin_;  // per local voxel, into descs_
  AlignedBuffer<float> fdata_;
  AlignedBuffer<std::uint8_t> qdata_;
  std::vector<float> scale_;
  std::size_t total_elements_ = 0;
  std::size_t true_nnz_ = 0;
};

}  // namespace mbir
