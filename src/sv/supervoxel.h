// SuperVoxel partitioning (PSV-ICD / GPU-ICD, paper §2.2 and §3.2).
//
// A SuperVoxel (SV) is a square block of neighbouring voxels whose sinogram
// traces overlap heavily; giving each SV a private sinogram buffer (SVB)
// converts the sinusoidal global access pattern into near-linear local
// accesses. Adjacent SVs share `boundary_overlap` voxels on each side for
// faster convergence (§3.2). For GPU-ICD, SVs are split into 4 checkerboard
// groups such that same-group SVs share no voxels and can be updated
// concurrently without voxel/error-sinogram correspondence races.
#pragma once

#include <array>
#include <vector>

#include "core/error.h"

namespace mbir {

struct SvGridOptions {
  /// Side of the SV tile in voxels (paper tunes 9..49; CPU best 13, GPU 33).
  int sv_side = 16;
  /// Voxels shared with each adjacent SV on every side.
  int boundary_overlap = 1;

  void validate() const {
    MBIR_CHECK_MSG(sv_side >= 2, "sv_side=" << sv_side);
    MBIR_CHECK(boundary_overlap >= 0);
    MBIR_CHECK_MSG(boundary_overlap < sv_side,
                   "overlap " << boundary_overlap << " >= side " << sv_side);
  }
};

struct SuperVoxel {
  int id = 0;
  int grid_r = 0, grid_c = 0;  ///< tile coordinates in the SV grid
  /// Covered voxel ranges [row0, row1) x [col0, col1), overlap included.
  int row0 = 0, row1 = 0, col0 = 0, col1 = 0;

  int numRows() const { return row1 - row0; }
  int numCols() const { return col1 - col0; }
  int numVoxels() const { return numRows() * numCols(); }

  /// Checkerboard group in {0, 1, 2, 3}: (grid_r & 1) * 2 + (grid_c & 1).
  /// Same-group SVs are at least one full tile apart on both axes, so they
  /// never share boundary voxels.
  int checkerboardGroup() const { return (grid_r & 1) * 2 + (grid_c & 1); }

  /// Flat image voxel index of local voxel k (row-major within the SV).
  int voxelAt(int k, int image_size) const {
    const int r = row0 + k / numCols();
    const int c = col0 + k % numCols();
    return r * image_size + c;
  }

  bool containsVoxel(int row, int col) const {
    return row >= row0 && row < row1 && col >= col0 && col < col1;
  }
};

/// The SV tiling of an image.
class SvGrid {
 public:
  SvGrid(int image_size, SvGridOptions options);

  int imageSize() const { return image_size_; }
  const SvGridOptions& options() const { return options_; }
  int count() const { return int(svs_.size()); }
  int gridRows() const { return grid_rows_; }
  int gridCols() const { return grid_cols_; }
  const SuperVoxel& sv(int id) const { return svs_[std::size_t(id)]; }
  const std::vector<SuperVoxel>& all() const { return svs_; }

  /// Partition `selected` SV ids into the 4 checkerboard groups, preserving
  /// the order given (GPU-ICD launches the groups one after another,
  /// Alg. 3 line 24).
  std::array<std::vector<int>, 4> checkerboardGroups(
      const std::vector<int>& selected) const;

  /// True if SVs a and b share at least one voxel (overlap touching).
  bool svsShareVoxels(int a, int b) const;

 private:
  int image_size_;
  SvGridOptions options_;
  int grid_rows_, grid_cols_;
  std::vector<SuperVoxel> svs_;
};

}  // namespace mbir
