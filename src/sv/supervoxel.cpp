#include "sv/supervoxel.h"

#include <algorithm>

namespace mbir {

SvGrid::SvGrid(int image_size, SvGridOptions options)
    : image_size_(image_size), options_(options) {
  MBIR_CHECK(image_size >= 2);
  options.validate();
  const int side = options.sv_side;
  const int ov = options.boundary_overlap;

  grid_rows_ = (image_size + side - 1) / side;
  grid_cols_ = grid_rows_;

  svs_.reserve(std::size_t(grid_rows_) * std::size_t(grid_cols_));
  for (int gr = 0; gr < grid_rows_; ++gr) {
    for (int gc = 0; gc < grid_cols_; ++gc) {
      SuperVoxel sv;
      sv.id = int(svs_.size());
      sv.grid_r = gr;
      sv.grid_c = gc;
      sv.row0 = std::max(0, gr * side - ov);
      sv.row1 = std::min(image_size, (gr + 1) * side + ov);
      sv.col0 = std::max(0, gc * side - ov);
      sv.col1 = std::min(image_size, (gc + 1) * side + ov);
      svs_.push_back(sv);
    }
  }
}

std::array<std::vector<int>, 4> SvGrid::checkerboardGroups(
    const std::vector<int>& selected) const {
  std::array<std::vector<int>, 4> groups;
  for (int id : selected) {
    MBIR_CHECK(id >= 0 && id < count());
    groups[std::size_t(svs_[std::size_t(id)].checkerboardGroup())].push_back(id);
  }
  return groups;
}

bool SvGrid::svsShareVoxels(int a, int b) const {
  const SuperVoxel& sa = sv(a);
  const SuperVoxel& sb = sv(b);
  const bool rows_overlap = sa.row0 < sb.row1 && sb.row0 < sa.row1;
  const bool cols_overlap = sa.col0 < sb.col1 && sb.col0 < sa.col1;
  return rows_overlap && cols_overlap;
}

}  // namespace mbir
