#include "core/cpufeat.h"

namespace mbir {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports consults cpuid *and* the OS XSAVE state (a CPU
  // with AVX2 whose OS does not save ymm registers reports unsupported),
  // which is exactly the "may I execute this" question.
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpuFeatures() {
  static const CpuFeatures f = detect();
  return f;
}

bool cpuHasAvx2Fma() {
  const CpuFeatures& f = cpuFeatures();
  return f.avx2 && f.fma;
}

}  // namespace mbir
