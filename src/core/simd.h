// SIMD lane-group execution for the functional GPU simulator and the
// projector row loops beneath it.
//
// gsim kernels used to run their functional math one simulated thread at a
// time; this layer makes groups of kSimdLanes (8) simulated warp lanes
// execute as host vector lanes — the way a CPU software rasterizer
// processes fragment groups. Two implementations exist behind one dispatch
// table (SimdOps): a portable scalar emulation (simd.cpp) and an 8-wide
// AVX2/FMA build (simd_avx2.cpp, compiled in its own TU with -mavx2 -mfma).
// The path is selected at *runtime* — per process via the GPUMBIR_SIMD
// environment knob (off | auto | avx2), per run via the SimdMode carried in
// engine options — so one binary runs everywhere and a deterministic
// service lane can pin a path.
//
// Determinism contract (asserted by tests/test_simd.cpp and the engine
// bit-identity suites): the scalar and AVX2 implementations of every op are
// BIT-IDENTICAL. This holds because both execute the same canonical
// lane-group semantics:
//
//  * Element i of a row maps to lane i mod kSimdLanes. Accumulating ops
//    (theta, dot) keep one accumulator per lane, carried across rows, and
//    are reduced with reduceLanes() in fixed lane order 0..7 — never in
//    element order. The scalar path emulates exactly this lane structure.
//  * Every op performs the same IEEE-754 operation sequence per element
//    (widen to double, multiply, multiply, add/subtract — no FMA
//    contraction in value-bearing math; the build forces -ffp-contract=off
//    so -march=native cannot re-fuse it).
//  * Masked tail lanes (row length not a multiple of 8) contribute exact
//    +0.0 products, which cannot perturb any accumulator bit (accumulators
//    are never -0.0: they start at +0.0 and IEEE addition only yields -0.0
//    from two -0.0 operands or an exact negative cancellation, which
//    rounds to +0.0).
//
// The KernelProfiler counter stream, modeled time, and race-detector access
// declarations are warp-granularity and independent of how the functional
// math executes, so they are bit-identical across paths by construction.
#pragma once

#include <cstdint>
#include <string_view>

namespace mbir {

/// Lanes per group: one AVX2 ymm register of floats (8 x f32); double
/// accumulators span two ymm registers (2 x 4 x f64).
inline constexpr int kSimdLanes = 8;

/// How a run selects its lane-group implementation.
enum class SimdMode {
  kDefault,  ///< resolve from GPUMBIR_SIMD (unset = kAuto)
  kOff,      ///< scalar lane-group emulation, always available
  kAuto,     ///< AVX2 when compiled in and the CPU supports it, else scalar
  kAvx2,     ///< force AVX2; resolving throws if unavailable
};

const char* simdModeName(SimdMode m);

/// Parse "off" | "auto" | "avx2" (throws mbir::Error on anything else).
SimdMode parseSimdMode(std::string_view s);

/// GPUMBIR_SIMD environment knob; unset or empty = kAuto. Read once.
SimdMode simdModeFromEnv();

/// Per-voxel theta accumulator lanes (theta1/theta2 of the ICD voxel
/// update), 32-byte aligned so the AVX2 path can load/store them directly.
struct alignas(32) ThetaLanes {
  double t1[kSimdLanes];
  double t2[kSimdLanes];
  void reset() {
    for (int l = 0; l < kSimdLanes; ++l) t1[l] = t2[l] = 0.0;
  }
};

/// Dispatch table of the lane-group row ops the engines' hot loops run on.
/// `n` is the row length in elements; rows need not be aligned (hot buffers
/// come from core/aligned.h, but ops tolerate any offset into them).
struct SimdOps {
  const char* name;  ///< "scalar" | "avx2" (recorded in reports/benches)

  /// Theta accumulation over a dense float A row:
  ///   m = double(w[i]) * double(a[i]);
  ///   acc.t1[i%8] -= m * double(e[i]);  acc.t2[i%8] += m * double(a[i]);
  void (*theta_row_f)(const float* a, const float* e, const float* w, int n,
                      ThetaLanes& acc);
  /// Same with on-the-fly dequantization a_i = float(q[i]) * scale
  /// (uint8 A-chunk rows, paper §4.3.1).
  void (*theta_row_q)(const std::uint8_t* q, float scale, const float* e,
                      const float* w, int n, ThetaLanes& acc);

  /// Error-SVB row update: e[i] -= a[i] * delta (float multiply/subtract).
  void (*err_row_f)(const float* a, float delta, float* e, int n);
  /// Quantized variant: e[i] -= (float(q[i]) * scale) * delta.
  void (*err_row_q)(const std::uint8_t* q, float scale, float delta,
                    float* e, int n);

  /// Band-covering *window* variants for the transformed GPU-ICD layout:
  /// pointers are chunk-window bases (window width `win`, zero-padded A
  /// outside the true band [i0, i1)), and the op processes exactly the lane
  /// groups covering the band — [i0 & ~7, min(roundUp8(i1), win)) — with
  /// lane = window index mod 8. Skipped window elements hold a == +0.0 so
  /// omitting them cannot change any accumulator bit; processed zero-padded
  /// elements contribute +0.0 products identically on both paths.
  /// Preconditions: 0 <= i0 <= i1 <= win; all row buffers are readable
  /// (err: writable) over [0, win).
  void (*theta_win_f)(const float* a, const float* e, const float* w, int i0,
                      int i1, int win, ThetaLanes& acc);
  void (*theta_win_q)(const std::uint8_t* q, float scale, const float* e,
                      const float* w, int i0, int i1, int win,
                      ThetaLanes& acc);
  void (*err_win_f)(const float* a, float delta, float* e, int i0, int i1,
                    int win);
  void (*err_win_q)(const std::uint8_t* q, float scale, float delta, float* e,
                    int i0, int i1, int win);

  /// Writeback row: dst[i] += cur[i] - orig[i] (Svb::applyDeltaTo core).
  void (*apply_delta_row)(const float* cur, const float* orig, float* dst,
                          int n);

  /// Projection row: dst[i] += w[i] * xv (forward projector).
  void (*axpy_row)(const float* w, float xv, float* dst, int n);

  /// Lane-strided dot: acc[i%8] += double(w[i]) * double(s[i])
  /// (backprojector; acc has kSimdLanes doubles, carried across rows).
  void (*dot_row)(const float* w, const float* s, int n, double* acc);
};

/// The always-available scalar lane-group emulation.
const SimdOps& scalarSimdOps();

/// The AVX2/FMA table, or nullptr when the TU was built without AVX2
/// support or the host CPU lacks AVX2+FMA (core/cpufeat.h).
const SimdOps* avx2SimdOps();

/// Resolve a mode to a concrete table. kDefault resolves through the env
/// knob; kAvx2 throws mbir::Error when AVX2 is unavailable (kAuto falls
/// back to scalar silently).
const SimdOps& resolveSimdOps(SimdMode m);

/// Fixed-order lane reduction: ((((l0+l1)+l2)+...)+l7). The ONLY way lane
/// accumulators may be collapsed — element-order sums would break the
/// scalar/AVX2 bit-identity contract.
inline double reduceLanes(const double* lanes) {
  double s = lanes[0];
  for (int l = 1; l < kSimdLanes; ++l) s += lanes[l];
  return s;
}

}  // namespace mbir
