#include "core/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace mbir {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MBIR_CHECK(!headers_.empty());
}

void AsciiTable::addRow(std::vector<std::string> cells) {
  MBIR_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::fmt(int v) { return std::to_string(v); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(headers_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

void AsciiTable::writeCsv(const std::string& path) const {
  std::ofstream f(path);
  MBIR_CHECK_MSG(f.good(), "cannot open " << path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) f << ',';
      // Quote cells containing commas.
      if (cells[c].find(',') != std::string::npos)
        f << '"' << cells[c] << '"';
      else
        f << cells[c];
    }
    f << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  MBIR_CHECK_MSG(f.good(), "write to " << path << " failed");
}

}  // namespace mbir
