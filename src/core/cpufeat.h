// Runtime host-CPU feature detection for the SIMD lane-group dispatch.
//
// The AVX2 lane-group path (gsim/simd.h) is compiled into its own
// translation unit with -mavx2 -mfma; whether it may *run* is a property of
// the machine the binary lands on, decided here once per process. Prebuilt
// binaries therefore fall back to the scalar lane-group path safely —
// selecting a vector path never requires rebuilding (DESIGN.md §10).
#pragma once

namespace mbir {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// Detected features of the host CPU (computed once, cheap to call).
const CpuFeatures& cpuFeatures();

/// True when the host can execute the 8-wide AVX2/FMA lane-group path.
bool cpuHasAvx2Fma();

}  // namespace mbir
