// ASCII table rendering so each bench binary prints the same rows the
// paper's tables report, plus CSV export for plotting.
#pragma once

#include <string>
#include <vector>

namespace mbir {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(int v);

  /// Render with column alignment and +----+ rules.
  std::string render() const;

  /// Write headers+rows as CSV to `path` (throws mbir::Error on I/O failure).
  void writeCsv(const std::string& path) const;

  /// Raw cells, for machine-readable exports (BENCH_*.json).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mbir
