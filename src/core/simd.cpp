// Scalar lane-group TU + mode parsing/resolution for the SIMD dispatch.

#include "core/simd.h"

#include <cstdlib>
#include <string>

#include "core/cpufeat.h"
#include "core/error.h"

#include "core/simd_kernels.inl"

namespace mbir {

// Defined in simd_avx2.cpp; returns nullptr when that TU was compiled
// without AVX2+FMA codegen support.
const SimdOps* simdAvx2OpsOrNull();

const SimdOps& scalarSimdOps() { return kOps; }

const SimdOps* avx2SimdOps() {
  if (!cpuHasAvx2Fma()) return nullptr;
  return simdAvx2OpsOrNull();
}

const char* simdModeName(SimdMode m) {
  switch (m) {
    case SimdMode::kDefault:
      return "default";
    case SimdMode::kOff:
      return "off";
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdMode parseSimdMode(std::string_view s) {
  if (s == "off" || s == "scalar") return SimdMode::kOff;
  if (s == "auto" || s.empty()) return SimdMode::kAuto;
  if (s == "avx2") return SimdMode::kAvx2;
  MBIR_CHECK_MSG(false, "bad SIMD mode '" << std::string(s)
                                          << "' (want off|auto|avx2)");
  return SimdMode::kAuto;  // unreachable
}

SimdMode simdModeFromEnv() {
  const char* env = std::getenv("GPUMBIR_SIMD");
  if (env == nullptr || *env == '\0') return SimdMode::kAuto;
  return parseSimdMode(env);
}

const SimdOps& resolveSimdOps(SimdMode m) {
  if (m == SimdMode::kDefault) m = simdModeFromEnv();
  switch (m) {
    case SimdMode::kOff:
      return scalarSimdOps();
    case SimdMode::kAvx2: {
      const SimdOps* ops = avx2SimdOps();
      MBIR_CHECK_MSG(ops != nullptr,
                     "GPUMBIR_SIMD=avx2 requested but the AVX2 lane-group "
                     "path is unavailable (CPU lacks AVX2+FMA or the build "
                     "had no AVX2 compiler support)");
      return *ops;
    }
    case SimdMode::kAuto:
    default: {
      const SimdOps* ops = avx2SimdOps();
      return ops != nullptr ? *ops : scalarSimdOps();
    }
  }
}

}  // namespace mbir
