// Summary statistics used by the benchmark harness (Table 1 reports mean,
// geometric-mean speedup, and standard deviation over a suite of cases).
#pragma once

#include <cstddef>
#include <vector>

namespace mbir {

/// Streaming accumulator (Welford) for mean / variance plus log-sum for
/// geometric means.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Geometric mean; valid only if every sample was > 0.
  double geomean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double log_sum_ = 0.0;
  bool all_positive_ = true;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile (linear interpolation) of an unsorted sample, p in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace mbir
