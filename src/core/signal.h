// Shared SIGINT/SIGTERM handling for long-running binaries (recon_server,
// service benches): instead of letting a signal kill the process mid-write
// (half-emitted JSON artifacts, leaked worker threads), binaries install
// this helper once and poll/wait on it, then drain and exit cleanly.
//
// Implementation is the classic self-pipe: the async-signal-safe handler
// writes one byte to a pipe and records the signal number in an atomic;
// waiters poll() the pipe's read end (level-triggered — the byte is never
// consumed, so any number of waiters observe the shutdown) or just test
// requested() between units of work.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace mbir {

class ShutdownSignal {
 public:
  /// Install the process-wide SIGINT/SIGTERM handler (idempotent; the
  /// instance lives for the process). Call once near the top of main().
  static ShutdownSignal& instance();

  /// True once a shutdown signal arrived (or trigger() was called).
  bool requested() const { return sig_.load(std::memory_order_acquire) != 0; }

  /// The first signal received (SIGINT/SIGTERM), 0 when none yet.
  int signalNumber() const { return sig_.load(std::memory_order_acquire); }

  /// Block up to `timeout` for a shutdown request; returns requested().
  bool waitFor(std::chrono::milliseconds timeout) const;

  /// Programmatic shutdown request (tests, or an in-process drain verb):
  /// behaves exactly as if `sig` had been delivered.
  void trigger(int sig);

  ShutdownSignal(const ShutdownSignal&) = delete;
  ShutdownSignal& operator=(const ShutdownSignal&) = delete;

 private:
  ShutdownSignal();

  std::atomic<int> sig_{0};
  int pipe_fds_[2] = {-1, -1};
};

/// SIGUSR1 as an operator request ("dump your flight recorder now"): unlike
/// ShutdownSignal it is consumable and repeatable — each delivery bumps a
/// counter, consume() takes exactly one pending request, and the process
/// keeps running. Polled (no self-pipe): the consumers are service loops
/// that already wake every few hundred ms.
class Usr1Signal {
 public:
  /// Install the process-wide SIGUSR1 handler (idempotent; the instance
  /// lives for the process). Call once near the top of main().
  static Usr1Signal& instance();

  /// Take one pending SIGUSR1, if any arrived since the last consume().
  bool consume();

  /// Total SIGUSR1 deliveries (including consumed ones).
  std::uint64_t total() const {
    return total_.load(std::memory_order_acquire);
  }

  /// Programmatic delivery (tests): behaves exactly like the signal.
  void trigger();

  Usr1Signal(const Usr1Signal&) = delete;
  Usr1Signal& operator=(const Usr1Signal&) = delete;

 private:
  Usr1Signal() = default;

  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace mbir
