// Shared SIGINT/SIGTERM handling for long-running binaries (recon_server,
// service benches): instead of letting a signal kill the process mid-write
// (half-emitted JSON artifacts, leaked worker threads), binaries install
// this helper once and poll/wait on it, then drain and exit cleanly.
//
// Implementation is the classic self-pipe: the async-signal-safe handler
// writes one byte to a pipe and records the signal number in an atomic;
// waiters poll() the pipe's read end (level-triggered — the byte is never
// consumed, so any number of waiters observe the shutdown) or just test
// requested() between units of work.
#pragma once

#include <atomic>
#include <chrono>

namespace mbir {

class ShutdownSignal {
 public:
  /// Install the process-wide SIGINT/SIGTERM handler (idempotent; the
  /// instance lives for the process). Call once near the top of main().
  static ShutdownSignal& instance();

  /// True once a shutdown signal arrived (or trigger() was called).
  bool requested() const { return sig_.load(std::memory_order_acquire) != 0; }

  /// The first signal received (SIGINT/SIGTERM), 0 when none yet.
  int signalNumber() const { return sig_.load(std::memory_order_acquire); }

  /// Block up to `timeout` for a shutdown request; returns requested().
  bool waitFor(std::chrono::milliseconds timeout) const;

  /// Programmatic shutdown request (tests, or an in-process drain verb):
  /// behaves exactly as if `sig` had been delivered.
  void trigger(int sig);

  ShutdownSignal(const ShutdownSignal&) = delete;
  ShutdownSignal& operator=(const ShutdownSignal&) = delete;

 private:
  ShutdownSignal();

  std::atomic<int> sig_{0};
  int pipe_fds_[2] = {-1, -1};
};

}  // namespace mbir
