// Wall-clock timing for the benchmark harness.
#pragma once

#include <chrono>

namespace mbir {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mbir
