// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the system (phantom suites, noise injection,
// randomized ICD update orders, random SV selection) draw from Rng so that
// every experiment is reproducible from a single seed. xoshiro256++ is used
// for speed; seeding goes through SplitMix64 per the xoshiro authors'
// recommendation.
#pragma once

#include <cstdint>
#include <vector>

namespace mbir {

/// xoshiro256++ PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform on [0, 2^64).
  std::uint64_t next();

  /// Uniform real on [0, 1).
  double uniform();

  /// Uniform real on [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer on [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second draw).
  double normal();
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Poisson draw; exact inversion for small means, normal approx above 64.
  std::uint64_t poisson(double mean);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = std::size_t(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of [0, n).
  std::vector<int> permutation(int n);

  /// Derive an independent stream (for per-case / per-thread seeding).
  Rng split();

  /// Deterministic independent stream keyed by up to three identifiers
  /// (e.g. seed, iteration, SuperVoxel id). Unlike split(), the result does
  /// not depend on any generator's consumption history, so concurrent
  /// consumers seeded this way stay reproducible regardless of execution
  /// order (GPU-ICD's per-SV streams).
  static Rng forStream(std::uint64_t a, std::uint64_t b = 0,
                       std::uint64_t c = 0);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mbir
