// Error handling primitives.
//
// The library throws gpumbir::Error (derived from std::runtime_error) for
// precondition violations. MBIR_CHECK is used at API boundaries; it is always
// on (reconstruction inputs come from scanners and config files, so argument
// validation is not a debug-only concern).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mbir {

/// Exception type thrown by all gpumbir precondition checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throwCheckFailure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "MBIR_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mbir

/// Validate a precondition; throws mbir::Error with location info on failure.
#define MBIR_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::mbir::detail::throwCheckFailure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

/// MBIR_CHECK with a streamed message: MBIR_CHECK_MSG(n > 0, "n=" << n).
#define MBIR_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream mbir_check_os_;                                   \
      mbir_check_os_ << stream_expr;                                       \
      ::mbir::detail::throwCheckFailure(#cond, __FILE__, __LINE__,         \
                                        mbir_check_os_.str());             \
    }                                                                      \
  } while (0)
