// Lane-group op bodies shared by the scalar and AVX2 translation units.
//
// Included exactly twice: by simd.cpp (portable scalar lane emulation) and
// by simd_avx2.cpp (GPUMBIR_SIMD_WIDE defined, compiled with -mavx2 -mfma).
// Everything here has internal linkage; each TU exports its table through a
// named accessor defined after the include. The op bodies below are written
// once against the VecF/VecI/VecD wrappers so the two paths cannot drift:
// the scalar wrappers perform the identical IEEE operation per lane that
// the AVX2 wrappers perform per vector element.
//
// Bit-identity rules encoded here (see simd.h header comment for the full
// argument):
//  * no FMA contraction in value-bearing math — every multiply and
//    add/subtract is a separate, individually rounded operation;
//  * accumulating ops (theta_*, dot_row) process full 8-lane groups
//    vectorized and finish with a per-element scalar tail that addresses
//    lane i % kSimdLanes — the same element->lane map the vector body uses;
//  * elementwise ops (err_row_f, apply_delta_row, axpy_row) use masked
//    load/store for the tail — active lanes compute the identical value,
//    inactive lanes are never read or written;
//  * quantized (uint8) rows never use masked byte loads: an 8-byte load at
//    a row tail could touch past the allocation, so the q-tail is scalar.

#include <cstdint>

#if GPUMBIR_SIMD_WIDE
#include <immintrin.h>
#endif

#include "core/simd.h"

namespace mbir {
namespace {

#if GPUMBIR_SIMD_WIDE

// ---------------------------------------------------------------------------
// AVX2 wrappers: 8 x f32 in one ymm, 8 x f64 as two ymm halves (lanes 0-3 in
// lo, 4-7 in hi — matching the cvtps_pd widening order so lane indices agree
// with the scalar emulation).

inline __m256i tailMask(int k) {
  // Lane l active iff l < k. k in [0, 8).
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(k),
                            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}

struct VecF {
  __m256 v;
  static VecF load(const float* p) { return {_mm256_loadu_ps(p)}; }
  /// First k lanes from p, remaining lanes +0.0; lanes >= k are not read.
  static VecF maskLoad(const float* p, int k) {
    return {_mm256_maskload_ps(p, tailMask(k))};
  }
  static VecF broadcast(float x) { return {_mm256_set1_ps(x)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  /// First k lanes to p; lanes >= k are not written.
  void maskStore(float* p, int k) const {
    _mm256_maskstore_ps(p, tailMask(k), v);
  }
  float lane(int l) const {
    alignas(32) float tmp[kSimdLanes];
    _mm256_store_ps(tmp, v);
    return tmp[l];
  }
  VecF operator*(VecF o) const { return {_mm256_mul_ps(v, o.v)}; }
  VecF operator+(VecF o) const { return {_mm256_add_ps(v, o.v)}; }
  VecF operator-(VecF o) const { return {_mm256_sub_ps(v, o.v)}; }
};

struct VecI {
  __m256i v;
  /// Zero-extend 8 contiguous uint8 values to 8 x i32 (reads 8 bytes).
  static VecI loadU8(const std::uint8_t* p) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return {_mm256_cvtepu8_epi32(bytes)};
  }
  VecF toF() const { return {_mm256_cvtepi32_ps(v)}; }
};

struct VecD {
  __m256d lo, hi;  // lanes 0-3, 4-7
  static VecD load(const double* p) {
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
  }
  static VecD widen(VecF f) {
    return {_mm256_cvtps_pd(_mm256_castps256_ps128(f.v)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(f.v, 1))};
  }
  void store(double* p) const {
    _mm256_storeu_pd(p, lo);
    _mm256_storeu_pd(p + 4, hi);
  }
  VecD operator*(VecD o) const {
    return {_mm256_mul_pd(lo, o.lo), _mm256_mul_pd(hi, o.hi)};
  }
  VecD operator+(VecD o) const {
    return {_mm256_add_pd(lo, o.lo), _mm256_add_pd(hi, o.hi)};
  }
  VecD operator-(VecD o) const {
    return {_mm256_sub_pd(lo, o.lo), _mm256_sub_pd(hi, o.hi)};
  }
};

constexpr const char* kPathName = "avx2";

#else  // !GPUMBIR_SIMD_WIDE

// ---------------------------------------------------------------------------
// Scalar wrappers: the same 8-lane group structure executed one lane at a
// time with plain IEEE float/double arithmetic.

struct VecF {
  float l[kSimdLanes];
  static VecF load(const float* p) {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = p[i];
    return r;
  }
  static VecF maskLoad(const float* p, int k) {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = i < k ? p[i] : 0.0f;
    return r;
  }
  static VecF broadcast(float x) {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = x;
    return r;
  }
  void store(float* p) const {
    for (int i = 0; i < kSimdLanes; ++i) p[i] = l[i];
  }
  void maskStore(float* p, int k) const {
    for (int i = 0; i < k; ++i) p[i] = l[i];
  }
  float lane(int i) const { return l[i]; }
  VecF operator*(VecF o) const {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = l[i] * o.l[i];
    return r;
  }
  VecF operator+(VecF o) const {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = l[i] + o.l[i];
    return r;
  }
  VecF operator-(VecF o) const {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = l[i] - o.l[i];
    return r;
  }
};

struct VecI {
  std::int32_t l[kSimdLanes];
  static VecI loadU8(const std::uint8_t* p) {
    VecI r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = p[i];
    return r;
  }
  VecF toF() const {
    VecF r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = float(l[i]);
    return r;
  }
};

struct VecD {
  double l[kSimdLanes];
  static VecD load(const double* p) {
    VecD r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = p[i];
    return r;
  }
  static VecD widen(VecF f) {
    VecD r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = double(f.l[i]);
    return r;
  }
  void store(double* p) const {
    for (int i = 0; i < kSimdLanes; ++i) p[i] = l[i];
  }
  VecD operator*(VecD o) const {
    VecD r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = l[i] * o.l[i];
    return r;
  }
  VecD operator+(VecD o) const {
    VecD r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = l[i] + o.l[i];
    return r;
  }
  VecD operator-(VecD o) const {
    VecD r;
    for (int i = 0; i < kSimdLanes; ++i) r.l[i] = l[i] - o.l[i];
    return r;
  }
};

constexpr const char* kPathName = "scalar";

#endif  // GPUMBIR_SIMD_WIDE

// ---------------------------------------------------------------------------
// Op bodies (shared text between the two TUs).

void thetaRowF(const float* a, const float* e, const float* w, int n,
               ThetaLanes& acc) {
  VecD t1 = VecD::load(acc.t1);
  VecD t2 = VecD::load(acc.t2);
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const VecD ad = VecD::widen(VecF::load(a + i));
    const VecD m = VecD::widen(VecF::load(w + i)) * ad;
    t1 = t1 - m * VecD::widen(VecF::load(e + i));
    t2 = t2 + m * ad;
  }
  t1.store(acc.t1);
  t2.store(acc.t2);
  for (; i < n; ++i) {
    const int l = i % kSimdLanes;
    const double ad = double(a[i]);
    const double m = double(w[i]) * ad;
    acc.t1[l] -= m * double(e[i]);
    acc.t2[l] += m * ad;
  }
}

void thetaRowQ(const std::uint8_t* q, float scale, const float* e,
               const float* w, int n, ThetaLanes& acc) {
  const VecF vscale = VecF::broadcast(scale);
  VecD t1 = VecD::load(acc.t1);
  VecD t2 = VecD::load(acc.t2);
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    const VecD ad = VecD::widen(VecI::loadU8(q + i).toF() * vscale);
    const VecD m = VecD::widen(VecF::load(w + i)) * ad;
    t1 = t1 - m * VecD::widen(VecF::load(e + i));
    t2 = t2 + m * ad;
  }
  t1.store(acc.t1);
  t2.store(acc.t2);
  for (; i < n; ++i) {
    const int l = i % kSimdLanes;
    const double ad = double(float(q[i]) * scale);
    const double m = double(w[i]) * ad;
    acc.t1[l] -= m * double(e[i]);
    acc.t2[l] += m * ad;
  }
}

void errRowF(const float* a, float delta, float* e, int n) {
  const VecF vdelta = VecF::broadcast(delta);
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    (VecF::load(e + i) - VecF::load(a + i) * vdelta).store(e + i);
  }
  if (const int k = n - i; k > 0) {
    (VecF::maskLoad(e + i, k) - VecF::maskLoad(a + i, k) * vdelta)
        .maskStore(e + i, k);
  }
}

void errRowQ(const std::uint8_t* q, float scale, float delta, float* e,
             int n) {
  const VecF vscale = VecF::broadcast(scale);
  const VecF vdelta = VecF::broadcast(delta);
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    (VecF::load(e + i) - (VecI::loadU8(q + i).toF() * vscale) * vdelta)
        .store(e + i);
  }
  // Scalar tail: an 8-byte masked load of q could read past the row.
  for (; i < n; ++i) e[i] -= (float(q[i]) * scale) * delta;
}

// Window variants (transformed GPU-ICD chunk layout): process the lane
// groups covering the band [i0, i1) of a zero-padded window of width `win`.
// Group bounds are computed identically on both paths, so the set of
// elements touched — and therefore every store and every accumulator bit —
// is path-independent. The final group goes through a scalar tail only when
// the window itself ends mid-group (win not a multiple of kSimdLanes).

inline int coverEnd(int i1, int win) {
  const int r8 = (i1 + kSimdLanes - 1) & ~(kSimdLanes - 1);
  return r8 < win ? r8 : win;
}

void thetaWinF(const float* a, const float* e, const float* w, int i0, int i1,
               int win, ThetaLanes& acc) {
  if (i1 <= i0) return;
  int i = i0 & ~(kSimdLanes - 1);
  const int cov = coverEnd(i1, win);
  VecD t1 = VecD::load(acc.t1);
  VecD t2 = VecD::load(acc.t2);
  for (; i + kSimdLanes <= cov; i += kSimdLanes) {
    const VecD ad = VecD::widen(VecF::load(a + i));
    const VecD m = VecD::widen(VecF::load(w + i)) * ad;
    t1 = t1 - m * VecD::widen(VecF::load(e + i));
    t2 = t2 + m * ad;
  }
  t1.store(acc.t1);
  t2.store(acc.t2);
  for (; i < cov; ++i) {
    const int l = i % kSimdLanes;
    const double ad = double(a[i]);
    const double m = double(w[i]) * ad;
    acc.t1[l] -= m * double(e[i]);
    acc.t2[l] += m * ad;
  }
}

void thetaWinQ(const std::uint8_t* q, float scale, const float* e,
               const float* w, int i0, int i1, int win, ThetaLanes& acc) {
  if (i1 <= i0) return;
  const VecF vscale = VecF::broadcast(scale);
  int i = i0 & ~(kSimdLanes - 1);
  const int cov = coverEnd(i1, win);
  VecD t1 = VecD::load(acc.t1);
  VecD t2 = VecD::load(acc.t2);
  for (; i + kSimdLanes <= cov; i += kSimdLanes) {
    const VecD ad = VecD::widen(VecI::loadU8(q + i).toF() * vscale);
    const VecD m = VecD::widen(VecF::load(w + i)) * ad;
    t1 = t1 - m * VecD::widen(VecF::load(e + i));
    t2 = t2 + m * ad;
  }
  t1.store(acc.t1);
  t2.store(acc.t2);
  for (; i < cov; ++i) {
    const int l = i % kSimdLanes;
    const double ad = double(float(q[i]) * scale);
    const double m = double(w[i]) * ad;
    acc.t1[l] -= m * double(e[i]);
    acc.t2[l] += m * ad;
  }
}

void errWinF(const float* a, float delta, float* e, int i0, int i1, int win) {
  if (i1 <= i0) return;
  const VecF vdelta = VecF::broadcast(delta);
  int i = i0 & ~(kSimdLanes - 1);
  const int cov = coverEnd(i1, win);
  for (; i + kSimdLanes <= cov; i += kSimdLanes) {
    (VecF::load(e + i) - VecF::load(a + i) * vdelta).store(e + i);
  }
  for (; i < cov; ++i) e[i] -= a[i] * delta;
}

void errWinQ(const std::uint8_t* q, float scale, float delta, float* e,
             int i0, int i1, int win) {
  if (i1 <= i0) return;
  const VecF vscale = VecF::broadcast(scale);
  const VecF vdelta = VecF::broadcast(delta);
  int i = i0 & ~(kSimdLanes - 1);
  const int cov = coverEnd(i1, win);
  for (; i + kSimdLanes <= cov; i += kSimdLanes) {
    (VecF::load(e + i) - (VecI::loadU8(q + i).toF() * vscale) * vdelta)
        .store(e + i);
  }
  for (; i < cov; ++i) e[i] -= (float(q[i]) * scale) * delta;
}

void applyDeltaRow(const float* cur, const float* orig, float* dst, int n) {
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    (VecF::load(dst + i) + (VecF::load(cur + i) - VecF::load(orig + i)))
        .store(dst + i);
  }
  if (const int k = n - i; k > 0) {
    (VecF::maskLoad(dst + i, k) +
     (VecF::maskLoad(cur + i, k) - VecF::maskLoad(orig + i, k)))
        .maskStore(dst + i, k);
  }
}

void axpyRow(const float* w, float xv, float* dst, int n) {
  const VecF vx = VecF::broadcast(xv);
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    (VecF::load(dst + i) + VecF::load(w + i) * vx).store(dst + i);
  }
  if (const int k = n - i; k > 0) {
    (VecF::maskLoad(dst + i, k) + VecF::maskLoad(w + i, k) * vx)
        .maskStore(dst + i, k);
  }
}

void dotRow(const float* w, const float* s, int n, double* acc) {
  VecD a = VecD::load(acc);
  int i = 0;
  for (; i + kSimdLanes <= n; i += kSimdLanes) {
    a = a + VecD::widen(VecF::load(w + i)) * VecD::widen(VecF::load(s + i));
  }
  a.store(acc);
  for (; i < n; ++i) {
    acc[i % kSimdLanes] += double(w[i]) * double(s[i]);
  }
}

constexpr SimdOps kOps = {
    kPathName, &thetaRowF, &thetaRowQ, &errRowF,       &errRowQ,
    &thetaWinF, &thetaWinQ, &errWinF,  &errWinQ,
    &applyDeltaRow, &axpyRow, &dotRow,
};

}  // namespace
}  // namespace mbir
