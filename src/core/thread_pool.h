// Minimal work-queue thread pool used by PSV-ICD (Alg. 2) and by the batch
// preparation paths of GPU-ICD. parallelFor provides dynamic (chunked)
// scheduling, matching how PSV-ICD distributes SuperVoxels across cores.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mbir {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return unsigned(workers_.size()); }

  /// Enqueue a task; returns immediately. A task that throws does not kill
  /// the worker (or the process): the first exception is stashed and
  /// rethrown by the next wait().
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished; rethrows the first
  /// exception any task threw since the last wait().
  void wait();

  /// Like wait(), but wakes as soon as the first task error is stashed and
  /// invokes `on_error` (outside the pool lock, at most once) before
  /// resuming the drain. Gang workloads use this to break peers out of a
  /// rendezvous a failed task will never reach — without it, a task
  /// blocked on a dead peer would deadlock the wait (the shard runner's
  /// cancelled-between-halo-phases case). The first error still rethrows
  /// after every task has finished.
  void wait(const std::function<void()>& on_error);

  /// Run fn(i) for i in [begin, end) across the pool with dynamic
  /// self-scheduling in blocks of `grain`. Blocks until complete.
  /// Exceptions from fn propagate (first one wins). Completion is tracked
  /// per call, so any number of external threads can run parallelFor on the
  /// same pool concurrently without waiting on each other's work (the batch
  /// scheduler's device drivers rely on this). Must not be called from
  /// inside a pool task of the same pool.
  void parallelFor(int begin, int end, const std::function<void(int)>& fn,
                   int grain = 1);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // from submit()ed tasks; guarded by mu_
};

/// Process-wide pool (lazily constructed); benches and PSV-ICD share it.
ThreadPool& globalThreadPool();

}  // namespace mbir
