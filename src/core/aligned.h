// Cache-line / SIMD-aligned heap buffer.
//
// SVBs and A-chunk tables require rows placed at aligned addresses (paper
// §4.1: "place each row at an aligned address") so that a warp's accesses
// map to whole memory transactions. AlignedBuffer is the owning storage for
// those structures.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>

#include "core/error.h"

namespace mbir {

/// Default alignment: one 128-byte GPU memory transaction (also 2 cache lines).
inline constexpr std::size_t kDefaultAlignment = 128;

/// Owning, aligned, zero-initialized buffer of trivially-copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kDefaultAlignment)
      : size_(count), alignment_(alignment) {
    MBIR_CHECK((alignment & (alignment - 1)) == 0);
    if (count == 0) return;
    std::size_t bytes = count * sizeof(T);
    bytes = (bytes + alignment - 1) / alignment * alignment;
    void* p = std::aligned_alloc(alignment, bytes);
    MBIR_CHECK_MSG(p != nullptr, "aligned_alloc of " << bytes << " bytes failed");
    std::memset(p, 0, bytes);
    data_.reset(static_cast<T*>(p));
  }

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  std::size_t size() const { return size_; }
  std::size_t alignment() const { return alignment_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_.get()[i]; }
  const T& operator[](std::size_t i) const { return data_.get()[i]; }

  std::span<T> span() { return {data_.get(), size_}; }
  std::span<const T> span() const { return {data_.get(), size_}; }

  void fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) data_.get()[i] = value;
  }

 private:
  struct FreeDeleter {
    void operator()(T* p) const { std::free(p); }
  };
  std::unique_ptr<T[], FreeDeleter> data_;
  std::size_t size_ = 0;
  std::size_t alignment_ = kDefaultAlignment;
};

/// Round `n` up to the next multiple of `align` (align must be a power of two
/// for pointer use; any positive value is accepted for element counts).
constexpr std::size_t roundUp(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace mbir
