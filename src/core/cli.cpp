#include "core/cli.h"

#include <cstdio>
#include <cstdlib>

#include "core/error.h"

namespace mbir {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean flag
    }
  }
}

void CliArgs::describe(const std::string& name, const std::string& help,
                       const std::string& default_value) {
  docs_.push_back({name, help, default_value});
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) > 0; }

std::string CliArgs::getString(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int CliArgs::getInt(const std::string& name, int def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::stoi(it->second);
}

double CliArgs::getDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

bool CliArgs::getBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  MBIR_CHECK_MSG(false, "bad boolean value for --" << name << ": " << v);
  return def;
}

bool CliArgs::helpRequested(const std::string& program_summary) const {
  if (!has("help")) return false;
  std::printf("%s\n\n%s\n\nOptions:\n", program_.c_str(), program_summary.c_str());
  for (const auto& d : docs_) {
    std::printf("  --%-24s %s", d.name.c_str(), d.help.c_str());
    if (!d.def.empty()) std::printf(" (default: %s)", d.def.c_str());
    std::printf("\n");
  }
  std::printf("  --%-24s %s\n", "help", "show this message");
  return true;
}

}  // namespace mbir
