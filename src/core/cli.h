// Tiny command-line option parser shared by benches and examples.
//
// Supports "--name value" and "--name=value" forms plus boolean flags.
// Every bench documents its options via describe() and prints them on
// --help, so each paper-table binary is runnable and discoverable on its own.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mbir {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Register documentation for --help output.
  void describe(const std::string& name, const std::string& help,
                const std::string& default_value = "");

  bool has(const std::string& name) const;
  std::string getString(const std::string& name, const std::string& def) const;
  int getInt(const std::string& name, int def) const;
  double getDouble(const std::string& name, double def) const;
  bool getBool(const std::string& name, bool def) const;

  /// If --help was passed, print usage and return true (caller exits).
  bool helpRequested(const std::string& program_summary) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  struct Doc {
    std::string name, help, def;
  };
  mutable std::vector<Doc> docs_;
  std::string program_;
};

}  // namespace mbir
