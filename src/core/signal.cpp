#include "core/signal.h"

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "core/error.h"

namespace mbir {

namespace {
ShutdownSignal* g_instance = nullptr;

extern "C" void shutdownSignalHandler(int sig) {
  // Async-signal-safe: one atomic store and one write(2). g_instance is set
  // before sigaction() installs this handler.
  if (g_instance) g_instance->trigger(sig);
}
}  // namespace

ShutdownSignal::ShutdownSignal() {
  MBIR_CHECK_MSG(::pipe(pipe_fds_) == 0, "self-pipe creation failed");
  for (int fd : pipe_fds_) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);  // handler write never blocks
  }
}

ShutdownSignal& ShutdownSignal::instance() {
  static ShutdownSignal* inst = [] {
    auto* s = new ShutdownSignal();  // lives for the process
    g_instance = s;
    struct sigaction sa = {};
    sa.sa_handler = shutdownSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    return s;
  }();
  return *inst;
}

void ShutdownSignal::trigger(int sig) {
  int expected = 0;
  sig_.compare_exchange_strong(expected, sig, std::memory_order_release);
  const char byte = 's';
  [[maybe_unused]] const auto n = ::write(pipe_fds_[1], &byte, 1);
}

bool ShutdownSignal::waitFor(std::chrono::milliseconds timeout) const {
  if (requested()) return true;
  struct pollfd pfd = {};
  pfd.fd = pipe_fds_[0];
  pfd.events = POLLIN;
  ::poll(&pfd, 1, int(timeout.count()));  // byte left unread: level-triggered
  return requested();
}

}  // namespace mbir
