#include "core/signal.h"

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "core/error.h"

namespace mbir {

namespace {
ShutdownSignal* g_instance = nullptr;
Usr1Signal* g_usr1_instance = nullptr;

extern "C" void shutdownSignalHandler(int sig) {
  // Async-signal-safe: one atomic store and one write(2). g_instance is set
  // before sigaction() installs this handler.
  if (g_instance) g_instance->trigger(sig);
}

extern "C" void usr1SignalHandler(int) {
  // Async-signal-safe: two atomic increments.
  if (g_usr1_instance) g_usr1_instance->trigger();
}
}  // namespace

ShutdownSignal::ShutdownSignal() {
  MBIR_CHECK_MSG(::pipe(pipe_fds_) == 0, "self-pipe creation failed");
  for (int fd : pipe_fds_) {
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    ::fcntl(fd, F_SETFL, O_NONBLOCK);  // handler write never blocks
  }
}

ShutdownSignal& ShutdownSignal::instance() {
  static ShutdownSignal* inst = [] {
    auto* s = new ShutdownSignal();  // lives for the process
    g_instance = s;
    struct sigaction sa = {};
    sa.sa_handler = shutdownSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    return s;
  }();
  return *inst;
}

void ShutdownSignal::trigger(int sig) {
  int expected = 0;
  sig_.compare_exchange_strong(expected, sig, std::memory_order_release);
  const char byte = 's';
  [[maybe_unused]] const auto n = ::write(pipe_fds_[1], &byte, 1);
}

bool ShutdownSignal::waitFor(std::chrono::milliseconds timeout) const {
  if (requested()) return true;
  struct pollfd pfd = {};
  pfd.fd = pipe_fds_[0];
  pfd.events = POLLIN;
  ::poll(&pfd, 1, int(timeout.count()));  // byte left unread: level-triggered
  return requested();
}

Usr1Signal& Usr1Signal::instance() {
  static Usr1Signal* inst = [] {
    auto* s = new Usr1Signal();  // lives for the process
    g_usr1_instance = s;
    struct sigaction sa = {};
    sa.sa_handler = usr1SignalHandler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &sa, nullptr);
    return s;
  }();
  return *inst;
}

void Usr1Signal::trigger() {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  total_.fetch_add(1, std::memory_order_acq_rel);
}

bool Usr1Signal::consume() {
  std::uint64_t n = pending_.load(std::memory_order_acquire);
  while (n > 0) {
    if (pending_.compare_exchange_weak(n, n - 1, std::memory_order_acq_rel))
      return true;
  }
  return false;
}

}  // namespace mbir
