#include "core/thread_pool.h"

#include <exception>

#include "core/error.h"

namespace mbir {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    MBIR_CHECK(!stop_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::wait(const std::function<void()>& on_error) {
  std::unique_lock lock(mu_);
  cv_done_.wait(lock,
                [this] { return in_flight_ == 0 || first_error_ != nullptr; });
  if (first_error_ && in_flight_ > 0 && on_error) {
    // A task died while peers are still running — possibly blocked on a
    // rendezvous the dead task will never reach. Let the caller break them
    // out (e.g. abort a barrier) before draining the rest.
    lock.unlock();
    on_error();
    lock.lock();
  }
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not escape the worker thread (std::terminate)
    // or leave in_flight_ short — catch, stash the first error for wait(),
    // and keep the completion accounting exact. parallelFor's helpers do
    // their own per-call catch and never reach this path with an exception.
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
        // Wake wait(on_error) immediately: peers of the failed task may be
        // blocked on a rendezvous only the waiter can abort.
        cv_done_.notify_all();
      }
    }
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(int begin, int end,
                             const std::function<void(int)>& fn, int grain) {
  MBIR_CHECK(grain >= 1);
  if (begin >= end) return;
  const int n = end - begin;
  if (n <= grain || size() == 1) {
    for (int i = begin; i < end; ++i) fn(i);
    return;
  }

  // Completion is tracked per call, not via the pool-global wait(): several
  // threads may drive independent parallelFor calls on one pool at once
  // (the batch scheduler's device drivers do), and none of them may block
  // on another call's tasks.
  std::atomic<int> next{begin};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex call_mu;  // guards first_error and helpers_left
  std::condition_variable call_cv;
  int helpers_left = 0;

  auto body = [&] {
    for (;;) {
      const int start = next.fetch_add(grain, std::memory_order_relaxed);
      if (start >= end || failed.load(std::memory_order_relaxed)) return;
      const int stop = std::min(end, start + grain);
      try {
        for (int i = start; i < stop; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(call_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const unsigned tasks = std::min<unsigned>(size(), unsigned((n + grain - 1) / grain));
  helpers_left = int(tasks) - 1;
  for (unsigned t = 1; t < tasks; ++t) {
    submit([&] {
      body();
      // Notify under the lock: the waiter owns call_cv on its stack and
      // destroys it as soon as it sees helpers_left == 0, so the notify
      // must complete before this thread releases the mutex.
      std::lock_guard lock(call_mu);
      if (--helpers_left == 0) call_cv.notify_all();
    });
  }
  body();  // caller participates
  {
    std::unique_lock lock(call_mu);
    call_cv.wait(lock, [&] { return helpers_left == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& globalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mbir
