#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace mbir {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  if (x > 0.0)
    log_sum_ += std::log(x);
  else
    all_positive_ = false;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::mean() const {
  MBIR_CHECK(n_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / double(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::geomean() const {
  MBIR_CHECK(n_ > 0);
  MBIR_CHECK_MSG(all_positive_, "geomean requires strictly positive samples");
  return std::exp(log_sum_ / double(n_));
}

double percentile(std::vector<double> samples, double p) {
  MBIR_CHECK(!samples.empty());
  MBIR_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double idx = p / 100.0 * double(samples.size() - 1);
  const std::size_t lo = std::size_t(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - double(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace mbir
