// FNV-1a 64-bit hashing over raw bytes — the repo's stable fingerprint for
// bit-identity checks (golden fixtures, batch determinism asserts, and the
// service protocol's image_hash field). Equal hash <=> bit-identical bytes
// for all practical purposes; any single-ULP drift in a float buffer
// changes the fingerprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

namespace mbir {

inline std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a64(std::span<const float> v) {
  return fnv1a64(v.data(), v.size() * sizeof(float));
}

/// Fixed-width lowercase hex rendering ("0123abcd..."), used where a hash
/// crosses a JSON boundary (doubles only hold 53 bits exactly, so hashes
/// are transported as strings).
inline std::string hashToHex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace mbir
