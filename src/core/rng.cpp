#include "core/rng.h"

#include <cmath>
#include <numbers>

#include "core/error.h"

namespace mbir {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return double(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  MBIR_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double a = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(a);
  have_cached_normal_ = true;
  return r * std::cos(a);
}

std::uint64_t Rng::poisson(double mean) {
  MBIR_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for photon
    // counts (>> 64 in any realistic dose model).
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : std::uint64_t(x + 0.5);
  }
  // Knuth inversion.
  const double l = std::exp(-mean);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > l);
  return k - 1;
}

std::vector<int> Rng::permutation(int n) {
  MBIR_CHECK(n >= 0);
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[std::size_t(i)] = i;
  shuffle(v);
  return v;
}

Rng Rng::split() { return Rng(next() ^ 0xd2b74407b1ce6e93ull); }

Rng Rng::forStream(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  // Chain each key through SplitMix64 so nearby tuples (consecutive
  // iterations / SV ids) land on unrelated seeds.
  std::uint64_t x = a;
  std::uint64_t h = splitmix64(x);
  x = h ^ b;
  h = splitmix64(x);
  x = h ^ c;
  return Rng(splitmix64(x));
}

}  // namespace mbir
