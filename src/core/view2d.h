// Non-owning 2D view over contiguous row-major storage.
#pragma once

#include <cstddef>
#include <span>

#include "core/error.h"

namespace mbir {

/// Row-major 2D view: element (r, c) lives at data[r * stride + c].
/// Rows may be padded (stride >= cols) — the SVB padded layout relies on this.
template <typename T>
class View2D {
 public:
  View2D() = default;
  View2D(T* data, int rows, int cols, std::ptrdiff_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    MBIR_CHECK(rows >= 0 && cols >= 0 && stride >= cols);
  }
  View2D(T* data, int rows, int cols) : View2D(data, rows, cols, cols) {}

  T& operator()(int r, int c) const { return data_[std::ptrdiff_t(r) * stride_ + c]; }
  T& at(int r, int c) const {
    MBIR_CHECK_MSG(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "r=" << r << " c=" << c << " rows=" << rows_ << " cols=" << cols_);
    return (*this)(r, c);
  }

  std::span<T> row(int r) const {
    return {data_ + std::ptrdiff_t(r) * stride_, size_t(cols_)};
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::ptrdiff_t stride() const { return stride_; }
  T* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Implicit conversion View2D<T> -> View2D<const T>.
  operator View2D<const T>() const { return {data_, rows_, cols_, stride_}; }

 private:
  T* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
  std::ptrdiff_t stride_ = 0;
};

}  // namespace mbir
