// Hounsfield Unit conversions.
//
// The paper reports convergence as RMSE against a golden image in Hounsfield
// Units, stopping below 10 HU (§5.2). Images are carried internally in
// linear attenuation (1/mm); these helpers convert for reporting.
#pragma once

namespace mbir {

/// Linear attenuation coefficient of water (1/mm) at a representative CT
/// effective energy (~70 keV).
inline constexpr double kMuWaterPerMm = 0.0206;

/// mu (1/mm) -> HU: 1000 * (mu - mu_water) / mu_water.
inline double muToHu(double mu_per_mm) {
  return 1000.0 * (mu_per_mm - kMuWaterPerMm) / kMuWaterPerMm;
}

/// HU -> mu (1/mm).
inline double huToMu(double hu) {
  return kMuWaterPerMm * (1.0 + hu / 1000.0);
}

/// Scale factor converting an attenuation *difference* (1/mm) to an HU
/// difference (RMSE conversions use this; the offset cancels).
inline constexpr double kHuPerMu = 1000.0 / kMuWaterPerMm;

}  // namespace mbir
