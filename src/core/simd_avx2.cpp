// AVX2/FMA lane-group TU. CMake compiles exactly this file with
// -mavx2 -mfma when the compiler supports those flags; the guard below
// degrades it to a nullptr provider otherwise, so the build never emits
// AVX2 instructions outside this TU and the binary stays runnable on
// machines without AVX2 (runtime selection lives in core/cpufeat.h).

#include "core/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#define GPUMBIR_SIMD_WIDE 1
#include "core/simd_kernels.inl"

namespace mbir {
const SimdOps* simdAvx2OpsOrNull() { return &kOps; }
}  // namespace mbir

#else

namespace mbir {
const SimdOps* simdAvx2OpsOrNull() { return nullptr; }
}  // namespace mbir

#endif
