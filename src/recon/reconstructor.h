// Reconstructor facade: run any of the three ICD engines against an
// OwnedProblem with the paper's convergence protocol (§5.2):
//   * golden image = 40-equit sequential ICD,
//   * convergence = RMSE vs golden < 10 HU,
//   * work measured in equits, time via the per-machine models.
//
// Also records the (equits, modeled seconds, RMSE) convergence curve —
// that's Fig. 5's data.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/simd.h"
#include "gpuicd/gpu_icd.h"
#include "icd/sequential_icd.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "psv/psv_icd.h"
#include "recon/problem_setup.h"

namespace mbir {

enum class Algorithm { kSequentialIcd, kPsvIcd, kGpuIcd };

const char* algorithmName(Algorithm a);

struct RunConfig {
  Algorithm algorithm = Algorithm::kGpuIcd;
  /// Stop when RMSE vs golden falls below this (HU); <= 0 disables.
  double stop_rmse_hu = 10.0;
  /// Safety cap on work.
  double max_equits = 60.0;
  SequentialIcdOptions seq;
  PsvIcdOptions psv;
  GpuIcdOptions gpu;
  /// Scale the simulated GPU's caches to this problem's sinogram size
  /// (DESIGN.md §1); on by default for reduced geometries.
  bool scale_gpu_caches = true;
  /// Observability: when enabled, reconstruct() creates an obs::Recorder,
  /// threads it through the selected engine (and the GPU simulator),
  /// records reconstructor-phase and per-iteration spans on both clocks,
  /// and exports the trace / run report to the configured paths
  /// (DESIGN.md §observability). Disabled by default: outputs are
  /// bit-identical to a config without observability.
  obs::ObsConfig obs;
  /// Record into this caller-owned session instead of creating one
  /// (`obs` is then ignored and no files are exported — the owner decides
  /// when/where). Used by the batch scheduler so concurrent jobs share one
  /// trace/metrics session; registration is mutex-guarded, updates atomic.
  obs::Recorder* external_recorder = nullptr;
  /// Cooperative cancellation: checked at every iteration boundary; when
  /// the flag is set the run stops and RunResult::cancelled is true. The
  /// partial image/curve up to that iteration are still returned. nullptr
  /// (default) = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Trace process modeled-clock spans are attributed to (0 = the shared
  /// "modeled device clock" process). The batch scheduler gives each
  /// simulated device its own pid so per-device timelines render apart.
  int trace_pid = 0;
  /// Per-job span context (nullptr = none, obs/span.h): iteration and
  /// launch spans carry the job's id/tenant and land on its host-clock
  /// device lane, and coarse per-iteration events feed the job's flight
  /// recorder. Borrowed; must outlive the run. Purely observational.
  const obs::JobSpanContext* span = nullptr;
  /// Lane-group execution path for engine row math (core/simd.h). Applied
  /// to whichever engine runs; kDefault defers to the GPUMBIR_SIMD env
  /// knob. Scalar and AVX2 are bit-identical, so this only changes host
  /// wall-clock — never results. The resolved path lands in
  /// RunResult::simd_path and every report that embeds a config.
  SimdMode simd = SimdMode::kDefault;
  /// Fault-injection hook (nullptr = none, gsim/fault.h): called at every
  /// iteration boundary for all three engines (the chaos watchdog's
  /// heartbeat) and, for the GPU engine, additionally before every
  /// simulated launch. May throw or block; reconstruct() lets thrown
  /// faults unwind to the scheduler layer. Borrowed; scoped to the run.
  gsim::FaultHook* fault_hook = nullptr;
  /// Warm start (src/store result cache): start the solve from this image
  /// instead of the FBP initialization. Must match the problem's
  /// image_size. Zero-skipping stays sound — a cached reconstruction has
  /// air at ~zero just like FBP. Changes WHERE iteration starts, so a
  /// warm-started run reaches the same stop tolerance in fewer equits but
  /// with different final bits than a cold run; the service therefore
  /// never warm-starts deterministic-lane jobs. shared_ptr: the cache
  /// retains the entry while queued jobs reference it.
  std::shared_ptr<const Image2D> initial_image;
};

struct ConvergencePoint {
  double equits;
  double modeled_seconds;
  double rmse_hu;
};

struct RunResult {
  Image2D image;
  bool converged = false;
  /// Stopped early because RunConfig::cancel was set.
  bool cancelled = false;
  /// Started from RunConfig::initial_image rather than FBP.
  bool warm_started = false;
  double equits = 0.0;
  double final_rmse_hu = 0.0;
  /// Modeled wall-clock on the paper's machine for this algorithm
  /// (16-core Xeon for PSV, single core for sequential, Titan X for GPU).
  double modeled_seconds = 0.0;
  /// Real host wall-clock of the run (functional execution + modeling),
  /// for tracking actual speedups of the simulator itself across PRs.
  double host_seconds = 0.0;
  WorkCounters work;
  /// Lane-group path the run actually executed on ("scalar" or "avx2").
  const char* simd_path = "";
  std::vector<ConvergencePoint> curve;
  std::optional<GpuRunStats> gpu_stats;
  std::optional<PsvRunStats> psv_stats;
  std::optional<IcdRunStats> seq_stats;
  /// The run's observability session (null unless RunConfig::obs enabled):
  /// metrics registry + trace, inspectable after the run regardless of
  /// whether files were exported.
  std::shared_ptr<obs::Recorder> recorder;
};

/// Compute the golden reference (sequential ICD for `equits` from FBP init).
Image2D computeGolden(const OwnedProblem& problem, double equits = 40.0);

/// Run one reconstruction to the configured convergence criterion.
RunResult reconstruct(const OwnedProblem& problem, const Image2D& golden,
                      RunConfig config);

}  // namespace mbir
