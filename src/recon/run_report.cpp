#include "recon/run_report.h"

#include <cstdint>
#include <fstream>

#include "core/error.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "recon/reconstructor.h"

namespace mbir {
namespace {

using obs::JsonWriter;

void writeKernelStats(JsonWriter& w, const gsim::KernelStats& s) {
  w.beginObject();
  w.kv("svb_access_bytes", s.svb_access_bytes);
  w.kv("svb_access_time_bytes", s.svb_access_time_bytes);
  w.kv("svb_unique_bytes", s.svb_unique_bytes);
  w.kv("amatrix_access_bytes", s.amatrix_access_bytes);
  w.kv("amatrix_unique_bytes", s.amatrix_unique_bytes);
  w.kv("amatrix_via_texture", s.amatrix_via_texture);
  w.kv("desc_bytes", s.desc_bytes);
  w.kv("smem_bytes", s.smem_bytes);
  w.kv("flops", s.flops);
  w.kv("atomic_ops", s.atomic_ops);
  w.kv("atomic_ops_weighted", s.atomic_ops_weighted);
  w.kv("l2_working_set_bytes", s.l2_working_set_bytes);
  w.kv("imbalance_factor", s.imbalance_factor);
  w.kv("grid_blocks", s.grid_blocks);
  w.kv("launches", s.launches);
  w.endObject();
}

void writeWorkCounters(JsonWriter& w, const WorkCounters& c) {
  w.beginObject();
  w.kv("voxel_updates", std::uint64_t(c.voxel_updates));
  w.kv("voxels_visited", std::uint64_t(c.voxels_visited));
  w.kv("theta_elements", std::uint64_t(c.theta_elements));
  w.kv("error_update_elements", std::uint64_t(c.error_update_elements));
  w.kv("svb_gather_elements", std::uint64_t(c.svb_gather_elements));
  w.kv("svb_writeback_elements", std::uint64_t(c.svb_writeback_elements));
  w.kv("lock_acquisitions", std::uint64_t(c.lock_acquisitions));
  w.kv("svs_processed", std::uint64_t(c.svs_processed));
  w.endObject();
}

void writeRaceCheck(JsonWriter& w, bool enabled, std::uint64_t launches,
                    std::uint64_t ranges, std::uint64_t races) {
  w.beginObject();
  w.kv("enabled", enabled);
  w.kv("launches_checked", launches);
  w.kv("ranges_checked", ranges);
  w.kv("races_found", races);
  w.endObject();
}

}  // namespace

std::string runReportJson(const RunResult& result, const RunConfig& config) {
  JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.run_report/1");
  w.kv("algorithm", algorithmName(config.algorithm));

  w.key("config").beginObject();
  w.kv("stop_rmse_hu", config.stop_rmse_hu);
  w.kv("max_equits", config.max_equits);
  w.kv("scale_gpu_caches", config.scale_gpu_caches);
  w.kv("simd", result.simd_path);
  w.endObject();

  w.kv("converged", result.converged);
  w.kv("cancelled", result.cancelled);
  w.kv("warm_started", result.warm_started);
  w.kv("equits", result.equits);
  w.kv("final_rmse_hu", result.final_rmse_hu);
  w.kv("modeled_seconds", result.modeled_seconds);
  w.kv("host_seconds", result.host_seconds);

  w.key("work");
  writeWorkCounters(w, result.work);

  w.key("curve").beginArray();
  for (const ConvergencePoint& p : result.curve) {
    w.beginObject();
    w.kv("equits", p.equits);
    w.kv("modeled_seconds", p.modeled_seconds);
    w.kv("rmse_hu", p.rmse_hu);
    w.endObject();
  }
  w.endArray();

  if (result.gpu_stats) {
    const GpuRunStats& g = *result.gpu_stats;
    w.key("gpu").beginObject();
    w.kv("iterations", g.iterations);
    w.kv("kernels_launched", g.kernels_launched);
    w.kv("batches_skipped_by_threshold", g.batches_skipped_by_threshold);
    w.kv("modeled_seconds", g.modeled_seconds);
    w.key("chunk_cache").beginObject();
    w.kv("hits", std::uint64_t(g.chunk_cache_hits));
    w.kv("misses", std::uint64_t(g.chunk_cache_misses));
    w.endObject();
    w.key("race_check");
    writeRaceCheck(w, g.race_check_enabled, g.race_launches_checked,
                   g.race_ranges_checked, g.race_reports);
    w.key("kernel_stats");
    writeKernelStats(w, g.kernel_stats);
    w.key("per_kernel").beginObject();
    for (const auto& [name, totals] : g.per_kernel) {
      w.key(name).beginObject();
      w.kv("seconds", totals.seconds);
      w.kv("launches", totals.launches);
      w.key("stats");
      writeKernelStats(w, totals.stats);
      w.endObject();
    }
    w.endObject();
    w.endObject();
  }

  if (result.psv_stats) {
    const PsvRunStats& p = *result.psv_stats;
    w.key("psv").beginObject();
    w.kv("iterations", p.iterations);
    w.key("race_check");
    writeRaceCheck(w, p.race_check_enabled, p.race_launches_checked,
                   p.race_ranges_checked, p.race_reports);
    w.endObject();
  }

  if (result.seq_stats) {
    const IcdRunStats& s = *result.seq_stats;
    w.key("seq").beginObject();
    w.kv("sweeps", s.sweeps);
    w.key("race_check");
    writeRaceCheck(w, s.race_check_enabled, s.race_launches_checked,
                   s.race_ranges_checked, s.race_reports);
    w.endObject();
  }

  const obs::Recorder* rec = result.recorder.get();
  if (rec && rec->metricsOn()) {
    w.key("metrics");
    rec->metrics().writeJson(w);
  }
  if (rec && rec->traceOn()) {
    w.key("trace").beginObject();
    w.kv("events", std::uint64_t(rec->trace().size()));
    w.kv("path", rec->config().trace_path);
    w.endObject();
  }

  w.endObject();
  return w.str();
}

void writeRunReport(const std::string& path, const RunResult& result,
                    const RunConfig& config) {
  std::ofstream out(path, std::ios::binary);
  MBIR_CHECK_MSG(out.good(), "cannot open run report file: " + path);
  out << runReportJson(result, config) << '\n';
  MBIR_CHECK_MSG(out.good(), "failed writing run report: " + path);
}

}  // namespace mbir
