// Image-quality metrics beyond plain RMSE.
//
// Full-image RMSE against a rasterized ground truth is dominated by edge
// pixels: an edge-preserving reconstruction places a hard transition where
// the anti-aliased truth has a half-covered pixel, which penalizes *better*
// edges. Flat-region metrics measure what radiologists and screeners
// actually look at — noise and streak artifacts in uniform materials.
#pragma once

#include "geom/image.h"

namespace mbir {

/// RMSE (in HU) computed only over pixels whose (2*margin+1)^2 ground-truth
/// neighbourhood is perfectly uniform — i.e. away from material boundaries.
/// Streak artifacts (the sparse-view failure mode of direct methods) live
/// exactly in these regions.
double flatRegionRmseHu(const Image2D& image, const Image2D& truth,
                        int margin = 2);

/// Fraction of pixels used by flatRegionRmseHu (sanity check for tests).
double flatRegionFraction(const Image2D& truth, int margin = 2);

}  // namespace mbir
