#include "recon/case_library.h"

#include "core/error.h"

namespace mbir {

CaseLibrary::CaseLibrary(SuiteConfig config, double golden_equits)
    : suite_(std::move(config)), golden_equits_(golden_equits) {
  MBIR_CHECK_MSG(golden_equits_ > 0.0, "golden_equits must be positive");
}

CaseLibrary::Case CaseLibrary::get(int index) {
  MBIR_CHECK_MSG(index >= 0, "case index must be >= 0, got " << index);
  std::lock_guard lock(mu_);
  auto it = cache_.find(index);
  if (it == cache_.end()) {
    auto entry = std::make_unique<Entry>(
        Entry{suite_.makeCase(index), Image2D{}});
    entry->golden = computeGolden(entry->problem, golden_equits_);
    it = cache_.emplace(index, std::move(entry)).first;
  }
  return Case{it->second->problem, it->second->golden};
}

int CaseLibrary::builtCount() const {
  std::lock_guard lock(mu_);
  return int(cache_.size());
}

}  // namespace mbir
