// Thread-safe lazy library of reconstruction cases: Suite cases plus their
// golden reference images, built on first use and cached for the process
// lifetime. This is what an online deployment holds behind the service
// (src/svc): submit requests name a case index, concurrent connection
// threads resolve it here, and the borrowed problem/golden references stay
// valid for as long as the library lives.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "recon/reconstructor.h"
#include "recon/suite.h"

namespace mbir {

class CaseLibrary {
 public:
  /// `golden_equits` controls the cost/fidelity of the cached golden images
  /// (the paper's protocol uses 40; services on reduced geometries can use
  /// less — every consumer of a case sees the same golden either way).
  explicit CaseLibrary(SuiteConfig config, double golden_equits = 40.0);

  const Suite& suite() const { return suite_; }
  double goldenEquits() const { return golden_equits_; }

  struct Case {
    const OwnedProblem& problem;
    const Image2D& golden;
  };

  /// Case `index` (deterministic in (suite seed, index)); built and cached
  /// on first request. References are stable for the library's lifetime.
  /// Throws mbir::Error for a negative index.
  Case get(int index);

  /// Number of distinct cases built so far.
  int builtCount() const;

 private:
  struct Entry {
    OwnedProblem problem;
    Image2D golden;
  };

  Suite suite_;
  double golden_equits_;
  mutable std::mutex mu_;  // guards cache_; builds happen under it, so the
                           // first request for a case serializes with peers
  std::map<int, std::unique_ptr<Entry>> cache_;
};

}  // namespace mbir
