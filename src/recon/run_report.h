// Machine-readable run reports: serialize a RunResult (+ its RunConfig and
// observability session) to JSON, schema "gpumbir.run_report/1".
//
// The report is the tooling-facing counterpart of the human-facing bench
// tables: convergence curve, work counters, per-engine stats (including the
// GPU chunk-plan cache behaviour), the metrics-registry snapshot, and a
// summary of the trace (DESIGN.md §observability).
#pragma once

#include <string>

namespace mbir {

struct RunResult;
struct RunConfig;

/// Serialize the report to a JSON string.
std::string runReportJson(const RunResult& result, const RunConfig& config);

/// Serialize and write to `path` (throws mbir::Error on I/O failure).
void writeRunReport(const std::string& path, const RunResult& result,
                    const RunConfig& config);

}  // namespace mbir
