// Test-case suite generation — the stand-in for the paper's 3200-case
// ALERT TO3 benchmark set (DESIGN.md §1).
//
// A Suite fixes one scanner geometry (the system matrix is computed once
// and shared by every case, as in a real scanner deployment) and generates
// reproducible cases: baggage phantoms indexed by case number, plus a
// Shepp-Logan case for medical-style examples.
#pragma once

#include <cstdint>
#include <memory>

#include "geom/geometry.h"
#include "geom/system_matrix.h"
#include "phantom/baggage.h"
#include "recon/problem_setup.h"
#include "scan/noise.h"

namespace mbir {

struct SuiteConfig {
  ParallelBeamGeometry geometry = benchScaleGeometry();
  NoiseModel noise;
  PriorConfig prior;
  BaggageConfig baggage;  ///< field radius auto-fitted when <= 0
  std::uint64_t seed = 2026;
};

class Suite {
 public:
  explicit Suite(SuiteConfig config);

  const SuiteConfig& config() const { return config_; }
  const SystemMatrix& matrix() const { return *A_; }
  std::shared_ptr<const SystemMatrix> matrixPtr() const { return A_; }

  /// Baggage case `index` (deterministic in (seed, index)).
  OwnedProblem makeCase(int index) const;

  /// A Shepp-Logan head case (noise seed varies with `index`).
  OwnedProblem makeSheppLoganCase(int index = 0) const;

 private:
  SuiteConfig config_;
  std::shared_ptr<const SystemMatrix> A_;
};

}  // namespace mbir
