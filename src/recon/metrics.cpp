#include "recon/metrics.h"

#include <cmath>

#include "core/error.h"
#include "core/hounsfield.h"

namespace mbir {

namespace {

template <typename Fn>
void forEachFlatPixel(const Image2D& truth, int margin, Fn&& fn) {
  const int n = truth.size();
  for (int r = margin; r < n - margin; ++r) {
    for (int c = margin; c < n - margin; ++c) {
      const float v = truth(r, c);
      bool flat = true;
      for (int dr = -margin; dr <= margin && flat; ++dr)
        for (int dc = -margin; dc <= margin; ++dc)
          if (truth(r + dr, c + dc) != v) {
            flat = false;
            break;
          }
      if (flat) fn(r, c);
    }
  }
}

}  // namespace

double flatRegionRmseHu(const Image2D& image, const Image2D& truth, int margin) {
  MBIR_CHECK(image.sameShape(truth));
  MBIR_CHECK(margin >= 1);
  double acc = 0.0;
  std::size_t n = 0;
  forEachFlatPixel(truth, margin, [&](int r, int c) {
    const double d = double(image(r, c)) - double(truth(r, c));
    acc += d * d;
    ++n;
  });
  MBIR_CHECK_MSG(n > 0, "ground truth has no flat regions at margin " << margin);
  return std::sqrt(acc / double(n)) * kHuPerMu;
}

double flatRegionFraction(const Image2D& truth, int margin) {
  std::size_t n = 0;
  forEachFlatPixel(truth, margin, [&](int, int) { ++n; });
  return double(n) / double(truth.numVoxels());
}

}  // namespace mbir
