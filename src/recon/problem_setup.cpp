#include "recon/problem_setup.h"

#include "core/error.h"
#include "geom/projector.h"

namespace mbir {

std::unique_ptr<Prior> makePrior(const PriorConfig& config) {
  switch (config.kind) {
    case PriorConfig::Kind::kQggmrf:
      return std::make_unique<QggmrfPrior>(config.sigma_x, config.q, config.T);
    case PriorConfig::Kind::kQuadratic:
      return std::make_unique<QuadraticPrior>(config.sigma_x);
  }
  MBIR_CHECK_MSG(false, "unknown prior kind");
  return nullptr;
}

OwnedProblem::OwnedProblem(std::shared_ptr<const SystemMatrix> A,
                           ScanResult scan, const PriorConfig& prior_config)
    : A_(std::move(A)), scan_(std::move(scan)), prior_(makePrior(prior_config)) {
  MBIR_CHECK(A_ != nullptr);
  view().validate();
}

Image2D OwnedProblem::fbpInitialImage() const {
  return fbpReconstruct(scan_.y, A_->geometry());
}

Sinogram OwnedProblem::initialError(const Image2D& x) const {
  return errorSinogram(*A_, scan_.y, x);
}

}  // namespace mbir
