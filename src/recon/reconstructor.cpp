#include "recon/reconstructor.h"

#include <cmath>

#include "core/timer.h"
#include "gsim/cpu_model.h"
#include "icd/convergence.h"

namespace mbir {

const char* algorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSequentialIcd: return "Sequential ICD";
    case Algorithm::kPsvIcd: return "PSV-ICD (CPU)";
    case Algorithm::kGpuIcd: return "GPU-ICD";
  }
  return "?";
}

Image2D computeGolden(const OwnedProblem& problem, double equits) {
  Image2D x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  const Problem p = problem.view();
  SequentialIcdOptions opt;
  opt.max_equits = equits;
  SequentialIcd icd(p, opt);
  icd.run(x, e);
  return x;
}

RunResult reconstruct(const OwnedProblem& problem, const Image2D& golden,
                      RunConfig config) {
  const WallTimer host_wall;
  RunResult result;
  result.image = problem.fbpInitialImage();
  Sinogram e = problem.initialError(result.image);
  const Problem p = problem.view();

  const auto track = [&](const Image2D& x, double equits,
                         double modeled_seconds) -> bool {
    const double rmse = rmseHu(x, golden);
    result.curve.push_back({equits, modeled_seconds, rmse});
    result.final_rmse_hu = rmse;
    if (config.stop_rmse_hu > 0.0 && rmse < config.stop_rmse_hu) {
      result.converged = true;
      return false;  // stop
    }
    return equits < config.max_equits;
  };

  switch (config.algorithm) {
    case Algorithm::kSequentialIcd: {
      SequentialIcdOptions opt = config.seq;
      opt.max_equits = config.max_equits;
      SequentialIcd icd(p, opt);
      IcdRunStats stats = icd.run(
          result.image, e, [&](const Image2D& x, const IcdRunStats& progress) {
            return track(x, progress.equits,
                         gsim::modelSequentialCpuSeconds(
                             progress.work, gsim::sequentialReference()));
          });
      result.equits = stats.equits;
      result.work = stats.work;
      result.modeled_seconds =
          gsim::modelSequentialCpuSeconds(stats.work, gsim::sequentialReference());
      result.seq_stats = stats;
      break;
    }
    case Algorithm::kPsvIcd: {
      PsvIcdOptions opt = config.psv;
      opt.max_iterations = 2000;  // callback-driven; cap is a safety net
      PsvIcd icd(p, opt);
      PsvRunStats run_stats = icd.run(
          result.image, e, [&](const PsvIterationInfo& info) {
            return track(info.x, info.equits,
                         gsim::modelPsvCpuSeconds(info.work, gsim::xeon16Core()));
          });
      result.equits = run_stats.equits;
      result.work = run_stats.work;
      result.modeled_seconds =
          gsim::modelPsvCpuSeconds(run_stats.work, gsim::xeon16Core());
      result.psv_stats = run_stats;
      break;
    }
    case Algorithm::kGpuIcd: {
      GpuIcdOptions opt = config.gpu;
      opt.max_iterations = 2000;
      if (config.scale_gpu_caches) {
        // SVB size scales with views (see gsim::scaleCachesToProblem docs).
        const double ratio = double(problem.geometry().num_views) / 720.0;
        opt.device = gsim::scaleCachesToProblem(opt.device, ratio);
      }
      GpuIcd icd(p, opt);
      GpuRunStats stats = icd.run(
          result.image, e, [&](const GpuIterationInfo& info) {
            return track(info.x, info.equits, info.modeled_seconds);
          });
      result.equits = stats.equits;
      result.work = stats.work;
      result.modeled_seconds = stats.modeled_seconds;
      result.gpu_stats = std::move(stats);
      break;
    }
  }

  if (result.curve.empty())
    result.final_rmse_hu = rmseHu(result.image, golden);
  result.host_seconds = host_wall.seconds();
  return result;
}

}  // namespace mbir
