#include "recon/reconstructor.h"

#include <cmath>

#include "core/timer.h"
#include "gsim/cpu_model.h"
#include "gsim/fault.h"
#include "obs/flight.h"
#include "icd/convergence.h"
#include "recon/run_report.h"

namespace mbir {

const char* algorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kSequentialIcd: return "Sequential ICD";
    case Algorithm::kPsvIcd: return "PSV-ICD (CPU)";
    case Algorithm::kGpuIcd: return "GPU-ICD";
  }
  return "?";
}

Image2D computeGolden(const OwnedProblem& problem, double equits) {
  Image2D x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  const Problem p = problem.view();
  SequentialIcdOptions opt;
  opt.max_equits = equits;
  SequentialIcd icd(p, opt);
  icd.run(x, e);
  return x;
}

RunResult reconstruct(const OwnedProblem& problem, const Image2D& golden,
                      RunConfig config) {
  const WallTimer host_wall;
  RunResult result;
  obs::Recorder* rec = config.external_recorder;
  if (!rec && config.obs.enabled()) {
    result.recorder = std::make_shared<obs::Recorder>(config.obs);
    rec = result.recorder.get();
  }
  const bool tracing = rec && rec->traceOn();
  obs::Counter* m_iterations = nullptr;
  obs::Gauge* m_rmse = nullptr;
  if (rec && rec->metricsOn()) {
    m_iterations = &rec->metrics().counter("recon.iteration.count");
    m_rmse = &rec->metrics().gauge("recon.rmse_hu");
  }

  // Resolve the lane-group path once so the result records what actually
  // ran (and a forced-but-unavailable path fails loudly up front).
  result.simd_path = resolveSimdOps(config.simd).name;

  const double setup_t0_us = tracing ? rec->trace().nowHostUs() : 0.0;
  if (config.initial_image) {
    MBIR_CHECK_MSG(
        config.initial_image->size() == problem.geometry().image_size,
        "warm-start image is " << config.initial_image->size()
                               << "px, problem needs "
                               << problem.geometry().image_size << "px");
    result.image = *config.initial_image;
    result.warm_started = true;
  } else {
    result.image = problem.fbpInitialImage();
  }
  Sinogram e = problem.initialError(result.image);
  const Problem p = problem.view();
  if (tracing) {
    obs::TraceEvent ev;
    ev.name = "recon.setup";
    ev.cat = "recon";
    ev.clock = obs::Clock::kHost;
    ev.ts_us = setup_t0_us;
    ev.dur_us = rec->trace().nowHostUs() - setup_t0_us;
    ev.num_args = {{"image_size", double(result.image.size())}};
    if (config.span) {
      ev.tid = config.span->host_tid;
      obs::tagSpan(ev, *config.span);
    }
    rec->trace().record(std::move(ev));
  }

  // Per-iteration spans on both clocks, engine-agnostic: host time between
  // callbacks, modeled time between the engine's cumulative timestamps.
  int track_iter = 0;
  double prev_host_us = tracing ? rec->trace().nowHostUs() : 0.0;
  double prev_modeled_s = 0.0;
  const auto track = [&](const Image2D& x, double equits,
                         double modeled_seconds) -> bool {
    // Fault seam, before the cancel check so fault firing points depend
    // only on the iteration count, never on cancel timing. All three
    // engines pass through here, so iteration boundaries are the
    // engine-agnostic heartbeat the chaos watchdog listens to.
    if (config.fault_hook != nullptr)
      config.fault_hook->onEvent("iteration", std::uint64_t(track_iter));
    if (config.cancel && config.cancel->load(std::memory_order_acquire)) {
      result.cancelled = true;
      return false;  // stop; partial image/curve up to here is kept
    }
    const double rmse = rmseHu(x, golden);
    result.curve.push_back({equits, modeled_seconds, rmse});
    result.final_rmse_hu = rmse;
    ++track_iter;
    if (m_iterations) {
      m_iterations->add();
      m_rmse->set(rmse);
    }
    if (config.span && config.span->flight) {
      obs::FlightEvent fev;
      fev.job_id = config.span->job_id;
      fev.kind = "iteration";
      fev.detail = config.span->tenant;
      fev.value = rmse;
      config.span->flight->record(
          obs::FlightRecorder::deviceLane(config.span->device),
          std::move(fev));
    }
    if (tracing) {
      const double now_us = rec->trace().nowHostUs();
      const std::vector<std::pair<std::string, double>> args = {
          {"iteration", double(track_iter)},
          {"equits", equits},
          {"rmse_hu", rmse}};
      obs::TraceEvent host_ev;
      host_ev.name = "recon.iteration";
      host_ev.cat = "recon";
      host_ev.clock = obs::Clock::kHost;
      host_ev.ts_us = prev_host_us;
      host_ev.dur_us = now_us - prev_host_us;
      host_ev.num_args = args;
      obs::TraceEvent dev_ev;
      dev_ev.name = "recon.iteration";
      dev_ev.cat = "recon";
      dev_ev.clock = obs::Clock::kModeled;
      dev_ev.pid = config.trace_pid;
      dev_ev.ts_us = prev_modeled_s * 1e6;
      dev_ev.dur_us = (modeled_seconds - prev_modeled_s) * 1e6;
      dev_ev.num_args = args;
      if (config.span) {
        host_ev.tid = config.span->host_tid;
        obs::tagSpan(host_ev, *config.span);
        obs::tagSpan(dev_ev, *config.span);
      }
      rec->trace().record(std::move(host_ev));
      rec->trace().record(std::move(dev_ev));
      prev_host_us = now_us;
      prev_modeled_s = modeled_seconds;
    }
    if (config.stop_rmse_hu > 0.0 && rmse < config.stop_rmse_hu) {
      result.converged = true;
      return false;  // stop
    }
    return equits < config.max_equits;
  };

  switch (config.algorithm) {
    case Algorithm::kSequentialIcd: {
      SequentialIcdOptions opt = config.seq;
      opt.max_equits = config.max_equits;
      opt.recorder = rec;
      SequentialIcd icd(p, opt);
      IcdRunStats stats = icd.run(
          result.image, e, [&](const Image2D& x, const IcdRunStats& progress) {
            return track(x, progress.equits,
                         gsim::modelSequentialCpuSeconds(
                             progress.work, gsim::sequentialReference()));
          });
      result.equits = stats.equits;
      result.work = stats.work;
      result.modeled_seconds =
          gsim::modelSequentialCpuSeconds(stats.work, gsim::sequentialReference());
      result.seq_stats = stats;
      break;
    }
    case Algorithm::kPsvIcd: {
      PsvIcdOptions opt = config.psv;
      opt.max_iterations = 2000;  // callback-driven; cap is a safety net
      opt.recorder = rec;
      opt.simd = config.simd;
      PsvIcd icd(p, opt);
      PsvRunStats run_stats = icd.run(
          result.image, e, [&](const PsvIterationInfo& info) {
            return track(info.x, info.equits,
                         gsim::modelPsvCpuSeconds(info.work, gsim::xeon16Core()));
          });
      result.equits = run_stats.equits;
      result.work = run_stats.work;
      result.modeled_seconds =
          gsim::modelPsvCpuSeconds(run_stats.work, gsim::xeon16Core());
      result.psv_stats = run_stats;
      break;
    }
    case Algorithm::kGpuIcd: {
      GpuIcdOptions opt = config.gpu;
      opt.max_iterations = 2000;
      opt.recorder = rec;
      opt.simd = config.simd;
      opt.span = config.span;
      opt.fault_hook = config.fault_hook;
      if (config.trace_pid != 0) opt.trace_pid = config.trace_pid;
      if (config.scale_gpu_caches) {
        // SVB size scales with views (see gsim::scaleCachesToProblem docs).
        const double ratio = double(problem.geometry().num_views) / 720.0;
        opt.device = gsim::scaleCachesToProblem(opt.device, ratio);
      }
      GpuIcd icd(p, opt);
      GpuRunStats stats = icd.run(
          result.image, e, [&](const GpuIterationInfo& info) {
            return track(info.x, info.equits, info.modeled_seconds);
          });
      result.equits = stats.equits;
      result.work = stats.work;
      result.modeled_seconds = stats.modeled_seconds;
      result.gpu_stats = std::move(stats);
      break;
    }
  }

  if (result.curve.empty())
    result.final_rmse_hu = rmseHu(result.image, golden);
  result.host_seconds = host_wall.seconds();

  if (rec) {
    if (rec->metricsOn()) {
      rec->metrics().gauge("recon.equits").set(result.equits);
      rec->metrics().gauge("recon.final_rmse_hu").set(result.final_rmse_hu);
      rec->metrics().gauge("recon.modeled_seconds").set(result.modeled_seconds);
    }
    // Report first: it embeds the trace summary, and nothing below records
    // new events, so the counts it captures are final. External sessions
    // are exported by their owner, not here.
    if (!config.external_recorder) {
      if (!config.obs.report_path.empty())
        writeRunReport(config.obs.report_path, result, config);
      if (rec->traceOn() && !config.obs.trace_path.empty())
        rec->trace().writeFile(config.obs.trace_path);
    }
  }
  return result;
}

}  // namespace mbir
