#include "recon/suite.h"

#include <algorithm>

#include "phantom/shepp_logan.h"

namespace mbir {

Suite::Suite(SuiteConfig config) : config_(std::move(config)) {
  config_.geometry.validate();
  if (config_.baggage.field_radius_mm <= 0.0 ||
      config_.baggage.field_radius_mm > config_.geometry.fieldOfViewRadius()) {
    // Keep content inside both the detector FOV and the image grid.
    const double half_image = (double(config_.geometry.image_size) / 2.0 - 1.0) *
                              config_.geometry.pixel_size_mm;
    config_.baggage.field_radius_mm =
        0.95 * std::min(config_.geometry.fieldOfViewRadius(), half_image);
  }
  A_ = std::make_shared<const SystemMatrix>(
      SystemMatrix::compute(config_.geometry));
}

OwnedProblem Suite::makeCase(int index) const {
  const EllipsePhantom phantom =
      makeBaggagePhantom(config_.seed, index, config_.baggage);
  ScanResult scan = simulateScan(phantom, config_.geometry, config_.noise,
                                 config_.seed * 1315423911ull + std::uint64_t(index));
  return OwnedProblem(A_, std::move(scan), config_.prior);
}

OwnedProblem Suite::makeSheppLoganCase(int index) const {
  const double radius = 0.9 * std::min(config_.geometry.fieldOfViewRadius(),
                                       (double(config_.geometry.image_size) / 2.0 - 1.0) *
                                           config_.geometry.pixel_size_mm);
  const EllipsePhantom phantom = modifiedSheppLogan(radius);
  ScanResult scan = simulateScan(phantom, config_.geometry, config_.noise,
                                 config_.seed * 2654435761ull + std::uint64_t(index));
  return OwnedProblem(A_, std::move(scan), config_.prior);
}

}  // namespace mbir
