// Owning reconstruction-problem bundle: ties a scan to a system matrix and
// a prior, and provides the standard initialization (FBP image + error
// sinogram). This is the object user code holds; the algorithm classes take
// the non-owning icd::Problem view.
#pragma once

#include <memory>

#include "geom/fbp.h"
#include "geom/image.h"
#include "geom/system_matrix.h"
#include "icd/problem.h"
#include "prior/prior.h"
#include "scan/scanner.h"

namespace mbir {

struct PriorConfig {
  enum class Kind { kQggmrf, kQuadratic };
  Kind kind = Kind::kQggmrf;
  /// MRF scale in attenuation units (1/mm). T * sigma_x is the q-GGMRF
  /// noise/edge transition; ~8e-4 (1/mm) ~= 40 HU works well with the
  /// default dose.
  double sigma_x = 8e-4;
  double q = 1.2;
  double T = 1.0;
};

std::unique_ptr<Prior> makePrior(const PriorConfig& config);

class OwnedProblem {
 public:
  OwnedProblem(std::shared_ptr<const SystemMatrix> A, ScanResult scan,
               const PriorConfig& prior_config = {});

  /// Non-owning view for the algorithm classes. Valid while *this lives.
  Problem view() const { return Problem{*A_, scan_.y, scan_.weights, *prior_}; }

  const SystemMatrix& matrix() const { return *A_; }
  const ScanResult& scan() const { return scan_; }
  const ParallelBeamGeometry& geometry() const { return A_->geometry(); }

  /// Standard MBIR initialization: the FBP image (§2.1 zero-skipping is
  /// sound from an FBP start: air is zero, objects are not).
  Image2D fbpInitialImage() const;

  /// e = y - A x for a starting image.
  Sinogram initialError(const Image2D& x) const;

 private:
  std::shared_ptr<const SystemMatrix> A_;
  ScanResult scan_;
  std::unique_ptr<Prior> prior_;
};

}  // namespace mbir
