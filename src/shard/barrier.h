// Reusable rendezvous for the shard runner's BSP iterations.
//
// All D device loops arrive at the end of each outer iteration; the last
// arriver runs the halo exchange (leader_work) while holding the barrier,
// then releases everyone with a continue/stop signal. abort() is the
// one-way escape hatch: a device loop that dies (fault, cancellation
// unwinding) aborts the barrier so peers blocked at the rendezvous return
// kStop instead of waiting for an arrival that will never come — the
// deadlock the ThreadPool::wait(on_error) regression test pins down.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "core/error.h"

namespace mbir::shard {

class ShardBarrier {
 public:
  enum class Signal { kContinue, kStop };

  explicit ShardBarrier(int parties) : parties_(parties) {
    MBIR_CHECK(parties >= 1);
  }

  /// Block until all parties arrive. The last arriver runs `leader_work`
  /// (may be null) under the barrier lock and its return value is handed
  /// to every party. If leader_work throws, the barrier aborts (peers get
  /// kStop) and the exception rethrows on the leader's thread. After an
  /// abort every arrival — current or future — returns kStop immediately.
  Signal arriveAndWait(const std::function<Signal()>& leader_work) {
    std::unique_lock lock(mu_);
    if (aborted_) return Signal::kStop;
    const std::uint64_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      Signal s = Signal::kContinue;
      if (leader_work) {
        try {
          s = leader_work();
        } catch (...) {
          aborted_ = true;
          ++generation_;
          cv_.notify_all();
          throw;
        }
      }
      signal_ = s;
      ++generation_;
      cv_.notify_all();
      return s;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return aborted_ ? Signal::kStop : signal_;
  }

  /// One-way abort; wakes current waiters and short-circuits all future
  /// arrivals to kStop. Safe to call from any thread, any number of times.
  void abort() {
    std::lock_guard lock(mu_);
    if (aborted_) return;
    aborted_ = true;
    ++generation_;
    cv_.notify_all();
  }

  bool aborted() const {
    std::lock_guard lock(mu_);
    return aborted_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  bool aborted_ = false;
  Signal signal_ = Signal::kContinue;
};

}  // namespace mbir::shard
