// Multi-device slab-sharded GPU-ICD runner (DESIGN.md §13).
//
// Splits one reconstruction across the slabs of a ShardPlan: every slab
// gets its own GpuIcd engine on its own simulated device state (a full
// private image + error-sinogram copy), restricted to its slab window.
// Execution is bulk-synchronous: each outer iteration all slabs update
// their owned rows concurrently, then a halo exchange — three kernels on a
// dedicated exchange simulator, every access race-declared — merges the
// per-slab error deltas in slab order, assembles the authoritative image
// from owned rows, and refreshes each slab's halo rows. Interconnect cost
// (halo rows + error all-reduce over a modeled PCIe/NVLink link) is added
// to the synchronized device clocks.
//
// Determinism contract: the image/error bits are a pure function of the
// problem and the ShardPlan. The device count D only maps slabs onto
// devices (slab s -> device s % D) and therefore only changes *modeled
// time* — D=1, 2, 4 produce bit-identical images for one plan, and an
// S=1 plan is bit-identical to the unsharded GpuIcd.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "geom/image.h"
#include "geom/sinogram.h"
#include "gpuicd/gpu_icd.h"
#include "gsim/timing.h"
#include "icd/problem.h"
#include "shard/plan.h"

namespace mbir::shard {

struct ShardedOptions {
  /// Per-slab engine template. The slab window and the run seed (taken
  /// from the plan) are overridden per slab, and the fault hook is routed
  /// only to slab engines on device 0 plus the exchange simulator so the
  /// fault-event sequence stays single-threaded and replayable. Everything
  /// else — tunables, flags, device spec, host pool, recorder, race
  /// checking, SIMD — applies to every slab engine.
  GpuIcdOptions engine;
  /// Simulated devices the slabs run on, slab s -> device s % devices.
  /// Must be in [1, numSlabs]. Changes modeled time only, never bits.
  int devices = 1;
  /// Interconnect the halo rows and error all-reduce travel over.
  gsim::LinkSpec link = gsim::pcie3Link();
  /// Cooperative cancellation, checked at every exchange boundary. The
  /// returned image is always the assembly of the last *completed*
  /// exchange — a consistent BSP snapshot, never a torn mix.
  const std::atomic<bool>* cancel = nullptr;
  /// Test-only sabotage (tests/test_shard.cpp): the halo-pack kernel's
  /// first block declares — without performing — a write reaching past its
  /// slab boundary, modeling a kernel that touches an unowned halo without
  /// a declared exchange. The race detector must attribute the resulting
  /// write-write conflict exactly.
  bool plant_undeclared_halo_write = false;
};

struct ShardIterationInfo {
  int iteration = 0;             ///< 1-based outer iteration
  double equits = 0.0;           ///< summed over slabs
  double modeled_seconds = 0.0;  ///< synchronized clock incl. exchange+comm
  const Image2D& x;              ///< assembled image at the BSP boundary
};

/// Return false to stop (invoked by the exchange leader, after the
/// exchange, with the assembled image).
using ShardIterationCallback = std::function<bool(const ShardIterationInfo&)>;

struct ShardRunStats {
  int iterations = 0;
  double equits = 0.0;
  bool stopped_by_callback = false;
  bool cancelled = false;
  /// Synchronized multi-device modeled time: per-device compute, barrier
  /// at each exchange, plus exchange kernels and interconnect transfers.
  double modeled_seconds = 0.0;
  /// Critical-path compute: max over devices of summed slab kernel time.
  double compute_seconds = 0.0;
  /// Interconnect time on the critical path (halo + all-reduce + initial
  /// broadcast + final gather). Zero when devices == 1.
  double comm_seconds = 0.0;
  /// Exchange-kernel time on the dedicated exchange simulator.
  double exchange_seconds = 0.0;
  std::size_t comm_bytes = 0;
  std::size_t comm_transfers = 0;
  int exchanges = 0;
  WorkCounters work;  ///< summed over slab engines
  int kernels_launched = 0;
  /// Race-check totals summed over every slab simulator + the exchange
  /// simulator (zeros when checking is off).
  bool race_check_enabled = false;
  std::uint64_t race_launches_checked = 0;
  std::uint64_t race_ranges_checked = 0;
  std::uint64_t race_reports = 0;
};

class ShardedGpuIcd {
 public:
  /// Validates the plan against the problem's image size and `opt.devices`
  /// against the slab count; throws mbir::Error on mismatch.
  ShardedGpuIcd(const Problem& problem, ShardPlan plan, ShardedOptions opt);
  ~ShardedGpuIcd();

  /// Run until callback stop, cancellation, or the engine iteration cap;
  /// x and e are updated in place at every exchange boundary.
  ShardRunStats run(Image2D& x, Sinogram& e,
                    const ShardIterationCallback& on_iteration = {});

  const ShardPlan& plan() const;
  /// The exchange simulator — tests read its race detector to prove the
  /// halo exchange is fully declared (and that planted trespasses trip).
  gsim::GpuSimulator& exchangeSimulator();
  /// Slab engine `s`'s simulator (races of the slab-local update kernels).
  gsim::GpuSimulator& slabSimulator(int s);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mbir::shard
