#include "shard/shard_job.h"

#include <utility>

#include "core/timer.h"
#include "gsim/fault.h"
#include "icd/convergence.h"
#include "obs/flight.h"
#include "obs/json.h"

namespace mbir::shard {

ShardRunResult reconstructSharded(const OwnedProblem& problem,
                                  const Image2D& golden, ShardConfig config) {
  const WallTimer host_wall;
  ShardRunResult out;
  out.plan = config.plan;
  out.devices = config.devices;
  out.link_name = config.link.name;
  RunResult& result = out.run;

  obs::Recorder* rec = config.base.external_recorder;
  if (!rec && config.base.obs.enabled()) {
    result.recorder = std::make_shared<obs::Recorder>(config.base.obs);
    rec = result.recorder.get();
  }
  const bool tracing = rec && rec->traceOn();
  obs::Counter* m_iterations = nullptr;
  obs::Gauge* m_rmse = nullptr;
  if (rec && rec->metricsOn()) {
    m_iterations = &rec->metrics().counter("recon.iteration.count");
    m_rmse = &rec->metrics().gauge("recon.rmse_hu");
  }
  result.simd_path = resolveSimdOps(config.base.simd).name;

  result.image = problem.fbpInitialImage();
  Sinogram e = problem.initialError(result.image);
  const Problem p = problem.view();

  ShardedOptions opt;
  opt.engine = config.base.gpu;
  opt.engine.max_iterations = 2000;  // callback-driven; cap is a safety net
  opt.engine.recorder = rec;
  opt.engine.simd = config.base.simd;
  opt.engine.span = config.base.span;
  opt.engine.fault_hook = config.base.fault_hook;
  if (config.base.trace_pid != 0) opt.engine.trace_pid = config.base.trace_pid;
  if (config.base.scale_gpu_caches) {
    const double ratio = double(problem.geometry().num_views) / 720.0;
    opt.engine.device = gsim::scaleCachesToProblem(opt.engine.device, ratio);
  }
  opt.devices = config.devices;
  opt.link = config.link;
  // Cancellation is handled by the shard runner itself (at the exchange
  // boundary, before the exchange) so the returned image is always a
  // consistent BSP snapshot — the iteration callback below must not also
  // stop on it, or the cancelled flag would be lost.
  opt.cancel = config.base.cancel;

  // Same per-iteration protocol as reconstruct(): fault seam first, then
  // RMSE/curve/metrics/flight/spans, then the convergence decision. The
  // callback runs on the exchange leader's thread under the shard barrier,
  // so it is single-threaded like reconstruct()'s.
  int track_iter = 0;
  double prev_host_us = tracing ? rec->trace().nowHostUs() : 0.0;
  double prev_modeled_s = 0.0;
  const auto track = [&](const ShardIterationInfo& info) -> bool {
    if (config.base.fault_hook != nullptr)
      config.base.fault_hook->onEvent("iteration", std::uint64_t(track_iter));
    const double rmse = rmseHu(info.x, golden);
    result.curve.push_back({info.equits, info.modeled_seconds, rmse});
    result.final_rmse_hu = rmse;
    ++track_iter;
    if (m_iterations) {
      m_iterations->add();
      m_rmse->set(rmse);
    }
    if (config.base.span && config.base.span->flight) {
      obs::FlightEvent fev;
      fev.job_id = config.base.span->job_id;
      fev.kind = "iteration";
      fev.detail = config.base.span->tenant;
      fev.value = rmse;
      config.base.span->flight->record(
          obs::FlightRecorder::deviceLane(config.base.span->device),
          std::move(fev));
    }
    if (tracing) {
      const double now_us = rec->trace().nowHostUs();
      const std::vector<std::pair<std::string, double>> args = {
          {"iteration", double(track_iter)},
          {"equits", info.equits},
          {"rmse_hu", rmse},
          {"devices", double(config.devices)}};
      obs::TraceEvent host_ev;
      host_ev.name = "recon.iteration";
      host_ev.cat = "recon";
      host_ev.clock = obs::Clock::kHost;
      host_ev.ts_us = prev_host_us;
      host_ev.dur_us = now_us - prev_host_us;
      host_ev.num_args = args;
      obs::TraceEvent dev_ev;
      dev_ev.name = "recon.iteration";
      dev_ev.cat = "recon";
      dev_ev.clock = obs::Clock::kModeled;
      dev_ev.pid = config.base.trace_pid;
      dev_ev.ts_us = prev_modeled_s * 1e6;
      dev_ev.dur_us = (info.modeled_seconds - prev_modeled_s) * 1e6;
      dev_ev.num_args = args;
      if (config.base.span) {
        host_ev.tid = config.base.span->host_tid;
        obs::tagSpan(host_ev, *config.base.span);
        obs::tagSpan(dev_ev, *config.base.span);
      }
      rec->trace().record(std::move(host_ev));
      rec->trace().record(std::move(dev_ev));
      prev_host_us = now_us;
      prev_modeled_s = info.modeled_seconds;
    }
    if (config.base.stop_rmse_hu > 0.0 && rmse < config.base.stop_rmse_hu) {
      result.converged = true;
      return false;
    }
    return info.equits < config.base.max_equits;
  };

  ShardedGpuIcd icd(p, config.plan, std::move(opt));
  out.shard = icd.run(result.image, e, track);

  result.cancelled = out.shard.cancelled;
  result.equits = out.shard.equits;
  result.work = out.shard.work;
  result.modeled_seconds = out.shard.modeled_seconds;
  if (result.curve.empty()) result.final_rmse_hu = rmseHu(result.image, golden);
  result.host_seconds = host_wall.seconds();

  if (rec && rec->metricsOn()) {
    rec->metrics().gauge("recon.equits").set(result.equits);
    rec->metrics().gauge("recon.final_rmse_hu").set(result.final_rmse_hu);
    rec->metrics().gauge("recon.modeled_seconds").set(result.modeled_seconds);
  }
  return out;
}

std::string shardReportJson(const ShardRunResult& r) {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("schema", "gpumbir.shard_report/1");
  w.kv("algorithm", "GPU-ICD (sharded)");
  w.key("plan").raw(r.plan.toJson());
  w.kv("devices", r.devices);
  w.kv("link", r.link_name);
  w.kv("converged", r.run.converged);
  w.kv("cancelled", r.run.cancelled);
  w.kv("final_rmse_hu", r.run.final_rmse_hu);
  w.kv("equits", r.run.equits);
  w.kv("iterations", r.shard.iterations);
  w.kv("exchanges", r.shard.exchanges);
  w.kv("modeled_seconds", r.shard.modeled_seconds);
  w.kv("compute_seconds", r.shard.compute_seconds);
  w.kv("comm_seconds", r.shard.comm_seconds);
  w.kv("exchange_seconds", r.shard.exchange_seconds);
  w.kv("comm_overhead",
       r.shard.modeled_seconds > 0.0
           ? r.shard.comm_seconds / r.shard.modeled_seconds
           : 0.0);
  w.kv("comm_bytes", std::uint64_t(r.shard.comm_bytes));
  w.kv("comm_transfers", std::uint64_t(r.shard.comm_transfers));
  w.kv("voxel_updates", std::uint64_t(r.shard.work.voxel_updates));
  w.kv("kernels_launched", r.shard.kernels_launched);
  w.kv("host_seconds", r.run.host_seconds);
  w.kv("simd_path", r.run.simd_path);
  w.key("race_check").beginObject();
  w.kv("enabled", r.shard.race_check_enabled);
  w.kv("launches_checked", r.shard.race_launches_checked);
  w.kv("ranges_checked", r.shard.race_ranges_checked);
  w.kv("races_found", r.shard.race_reports);
  w.endObject();
  w.endObject();
  return w.str();
}

}  // namespace mbir::shard
