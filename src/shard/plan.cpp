#include "shard/plan.h"

#include "core/error.h"
#include "obs/json.h"

namespace mbir::shard {

void ShardPlan::validate() const {
  MBIR_CHECK_MSG(image_size > 0, "image_size=" << image_size);
  MBIR_CHECK_MSG(!slabs.empty(), "a shard plan needs at least one slab");
  MBIR_CHECK_MSG(halo >= 0, "halo=" << halo);
  MBIR_CHECK_MSG(slabs.front().row0 == 0,
                 "slabs must start at row 0, got " << slabs.front().row0);
  MBIR_CHECK_MSG(slabs.back().row1 == image_size,
                 "slabs must end at row " << image_size << ", got "
                                          << slabs.back().row1);
  for (std::size_t s = 0; s < slabs.size(); ++s) {
    MBIR_CHECK_MSG(slabs[s].height() >= 1,
                   "slab " << s << " has height " << slabs[s].height());
    if (s > 0)
      MBIR_CHECK_MSG(slabs[s].row0 == slabs[s - 1].row1,
                     "slab " << s << " starts at " << slabs[s].row0
                             << " but slab " << s - 1 << " ends at "
                             << slabs[s - 1].row1);
    // A halo wider than a slab would make the exchange reach *through* a
    // slab into its far neighbour — reject rather than silently clip.
    MBIR_CHECK_MSG(halo <= slabs[s].height(),
                   "halo " << halo << " exceeds slab " << s << " height "
                           << slabs[s].height());
  }
}

std::string ShardPlan::toJson() const {
  obs::JsonWriter w;
  w.beginObject();
  w.kv("seed", double(seed));
  w.kv("image_size", image_size);
  w.kv("halo", halo);
  w.key("slabs").beginArray();
  for (const SlabSpec& s : slabs) {
    w.beginObject();
    w.kv("row0", s.row0);
    w.kv("row1", s.row1);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.str();
}

ShardPlan makeShardPlan(int image_size, int num_slabs, int halo,
                        std::uint64_t seed) {
  MBIR_CHECK_MSG(num_slabs >= 1, "num_slabs=" << num_slabs);
  MBIR_CHECK_MSG(num_slabs <= image_size,
                 "num_slabs=" << num_slabs << " > image rows " << image_size);
  ShardPlan plan;
  plan.seed = seed;
  plan.image_size = image_size;
  plan.halo = halo;
  const int base = image_size / num_slabs;
  const int extra = image_size % num_slabs;
  int row = 0;
  for (int s = 0; s < num_slabs; ++s) {
    SlabSpec slab;
    slab.row0 = row;
    row += base + (s < extra ? 1 : 0);
    slab.row1 = row;
    plan.slabs.push_back(slab);
  }
  plan.validate();
  return plan;
}

}  // namespace mbir::shard
