// Slab-decomposition plan for single-job multi-device sharding.
//
// A ShardPlan splits one reconstruction image into S contiguous row-slabs.
// The plan — seed, halo width, slab boundaries, image size — fully
// determines the sharded result: slab s always runs the same per-slab ICD
// update sequence and the halo exchange merges per-slab state in slab
// order, so the reconstructed image is bit-identical for ANY device count
// the plan is executed on (devices only remap which slab computes where,
// which changes modeled time, never bits). That is the determinism
// contract DESIGN.md §13 documents and tests/test_shard.cpp enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mbir::shard {

/// One contiguous row-slab: image rows [row0, row1).
struct SlabSpec {
  int row0 = 0;
  int row1 = 0;
  int height() const { return row1 - row0; }
};

struct ShardPlan {
  std::uint64_t seed = 17;
  int image_size = 0;
  /// Halo width in rows exchanged across each interior slab boundary per
  /// outer iteration. 0 is legal (boundary-adjacent rows freeze instead of
  /// exchanging); must not exceed the shortest slab's height.
  int halo = 1;
  std::vector<SlabSpec> slabs;

  int numSlabs() const { return int(slabs.size()); }

  /// Throws mbir::Error unless the slabs exactly tile [0, image_size) in
  /// order with positive heights and the halo fits every slab.
  void validate() const;

  std::string toJson() const;
};

/// Even split of `image_size` rows into `num_slabs` slabs (earlier slabs
/// absorb the remainder, one extra row each).
ShardPlan makeShardPlan(int image_size, int num_slabs, int halo,
                        std::uint64_t seed = 17);

}  // namespace mbir::shard
