// One logical sharded reconstruction job (DESIGN.md §13).
//
// reconstructSharded() is the sharded sibling of mbir::reconstruct(): same
// convergence protocol (RMSE vs golden, equit cap, convergence curve), same
// observability plumbing (recorder, spans, flight recorder, fault seam,
// cancellation), but the engine underneath is a ShardedGpuIcd spanning
// `devices` simulated devices. The batch scheduler dispatches it through
// sched/sharded.h; the result serializes as a `gpumbir.shard_report/1`.
#pragma once

#include <string>

#include "recon/reconstructor.h"
#include "shard/plan.h"
#include "shard/sharded_icd.h"

namespace mbir::shard {

struct ShardConfig {
  ShardPlan plan;
  /// Simulated devices the slabs are mapped onto (modeled time only —
  /// never bits; see ShardPlan's determinism contract).
  int devices = 1;
  gsim::LinkSpec link = gsim::pcie3Link();
  /// Convergence protocol + engine options + observability, exactly as for
  /// reconstruct(). base.algorithm is ignored (always GPU-ICD); base.gpu is
  /// the per-slab engine template.
  RunConfig base;
};

struct ShardRunResult {
  /// Filled like reconstruct()'s result: image, converged/cancelled,
  /// curve, equits, modeled_seconds (= the synchronized shard clock),
  /// host_seconds, work, simd_path.
  RunResult run;
  ShardRunStats shard;
  ShardPlan plan;
  int devices = 1;
  std::string link_name;
};

/// Run one sharded reconstruction to the configured convergence criterion.
ShardRunResult reconstructSharded(const OwnedProblem& problem,
                                  const Image2D& golden, ShardConfig config);

/// Machine-readable summary, schema `gpumbir.shard_report/1`.
std::string shardReportJson(const ShardRunResult& result);

}  // namespace mbir::shard
