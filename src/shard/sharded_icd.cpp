#include "shard/sharded_icd.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/thread_pool.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "shard/barrier.h"

namespace mbir::shard {

namespace {
/// View stripes of the error all-reduce kernel (single-writer per view).
constexpr int kReduceStripes = 8;
}  // namespace

struct ShardedGpuIcd::Impl {
  const Problem problem;  // by value: Problem is a non-owning view struct
  const ShardPlan plan;
  const ShardedOptions opt;
  gsim::GpuSimulator exchange_sim;
  std::vector<std::unique_ptr<GpuIcd>> engines;

  // Exchange-simulator race buffers (-1 = checking off). "shard.image" /
  // "shard.sino.e" are the shared assembly buffers; the per-slab entries
  // are each slab's private copies.
  int rb_image = -1, rb_sino = -1, rb_snap = -1;
  std::vector<int> rb_x, rb_e;

  // shard.* instruments (null = metrics off).
  obs::Counter* m_exchanges = nullptr;
  obs::Counter* m_comm_bytes = nullptr;
  obs::Counter* m_comm_transfers = nullptr;
  obs::Gauge* m_comm_seconds = nullptr;

  Impl(const Problem& p, ShardPlan pl, ShardedOptions o)
      : problem(p),
        plan(std::move(pl)),
        opt(std::move(o)),
        exchange_sim(opt.engine.device) {
    plan.validate();
    MBIR_CHECK_MSG(plan.image_size == p.A.geometry().image_size,
                   "plan image_size " << plan.image_size << " != problem "
                                      << p.A.geometry().image_size);
    MBIR_CHECK_MSG(opt.devices >= 1 && opt.devices <= plan.numSlabs(),
                   "devices=" << opt.devices << " for " << plan.numSlabs()
                              << " slabs");

    exchange_sim.setHostPool(opt.engine.host_pool);
    exchange_sim.setRecorder(opt.engine.recorder);
    exchange_sim.setTracePid(opt.engine.trace_pid);
    exchange_sim.setSpanContext(opt.engine.span);
    exchange_sim.setRaceCheck(opt.engine.race_check);
    exchange_sim.setSimdMode(opt.engine.simd);
    exchange_sim.setFaultHook(opt.engine.fault_hook);
    if (exchange_sim.raceCheckOn()) {
      gsim::RaceDetector& rd = exchange_sim.raceDetector();
      rb_image = rd.bufferId("shard.image");
      rb_sino = rd.bufferId("shard.sino.e");
      rb_snap = rd.bufferId("shard.sino.snap");
      for (int s = 0; s < plan.numSlabs(); ++s) {
        const std::string tag = std::to_string(s);
        rb_x.push_back(rd.bufferId("shard.image/" + tag));
        rb_e.push_back(rd.bufferId("shard.sino.e/" + tag));
      }
    }
    if (opt.engine.recorder && opt.engine.recorder->metricsOn()) {
      obs::MetricsRegistry& m = opt.engine.recorder->metrics();
      m_exchanges = &m.counter("shard.exchange.count");
      m_comm_bytes = &m.counter("shard.comm.bytes");
      m_comm_transfers = &m.counter("shard.comm.transfers");
      m_comm_seconds = &m.gauge("shard.comm.seconds");
    }

    engines.reserve(std::size_t(plan.numSlabs()));
    for (int s = 0; s < plan.numSlabs(); ++s) {
      GpuIcdOptions eo = opt.engine;
      eo.seed = plan.seed;  // the seed is part of the plan contract
      eo.slab = SlabWindow{plan.slabs[std::size_t(s)].row0,
                           plan.slabs[std::size_t(s)].row1, plan.halo};
      // Fault events must form one deterministic, single-threaded sequence
      // for replay-by-index; only device 0's slabs (plus the exchange
      // simulator, above) carry the hook. Device loops never run a hooked
      // engine concurrently with another hooked call site: device 0's
      // steps and the leader's exchange are ordered by the barrier.
      if (s % opt.devices != 0) eo.fault_hook = nullptr;
      engines.push_back(std::make_unique<GpuIcd>(problem, std::move(eo)));
    }
  }

  /// Halo + error-all-reduce interconnect time for one exchange. Pure
  /// function of plan, device count and buffer sizes — host timing never
  /// leaks into the modeled clock. Adjacent cross-device slab pairs swap
  /// their halo rows concurrently (one link each, critical path = one
  /// pair); the error sinogram is merged with a ring all-reduce.
  double iterationCommSeconds(std::size_t img_row_bytes,
                              std::size_t sino_bytes, std::size_t& bytes,
                              std::size_t& transfers) const {
    const int D = opt.devices;
    if (D == 1) return 0.0;
    double t = 0.0;
    const std::size_t halo_pair_bytes =
        2 * std::size_t(plan.halo) * img_row_bytes;
    bool any_cross = false;
    for (int s = 0; s + 1 < plan.numSlabs(); ++s) {
      if (s % D == (s + 1) % D) continue;  // same device: no link traffic
      any_cross = true;
      bytes += halo_pair_bytes;
      transfers += 2;
    }
    if (any_cross && plan.halo > 0)
      t += gsim::transferSeconds(opt.link, halo_pair_bytes);
    // Ring all-reduce of the error sinogram: 2(D-1) steps of sino/D each;
    // total fabric traffic 2(D-1) * sino_bytes.
    t += 2.0 * double(D - 1) *
         gsim::transferSeconds(opt.link, sino_bytes / std::size_t(D));
    bytes += 2 * std::size_t(D - 1) * sino_bytes;
    transfers += 2 * std::size_t(D - 1);
    return t;
  }

  /// The halo exchange: three launches on the exchange simulator, each
  /// with per-launch disjoint declared accesses (the executor runs blocks
  /// truly concurrently, so phases inside one launch would be unsafe).
  /// Kernel 1 packs owned rows into the assembly image; kernel 2 folds the
  /// per-slab error deltas over the pre-iteration snapshot in slab order
  /// (view-striped, single writer per view); kernel 3 refreshes each
  /// slab's halo rows and hands every slab the merged sinogram.
  void runExchange(Image2D& x, Sinogram& e, std::vector<Image2D>& xs,
                   std::vector<Sinogram>& es, Sinogram& snap) {
    const int S = plan.numSlabs();
    const int n = x.size();
    const int views = e.views();
    const int channels = e.channels();

    gsim::LaunchConfig pack_cfg;
    pack_cfg.name = "shard.halo_pack";
    pack_cfg.num_blocks = S;
    pack_cfg.resources = {.threads_per_block = 256, .regs_per_thread = 16,
                          .smem_per_block_bytes = 0};
    exchange_sim.launch(pack_cfg, [&](gsim::BlockCtx& ctx) {
      const int s = ctx.block_idx;
      const SlabSpec& slab = plan.slabs[std::size_t(s)];
      const std::size_t lo = std::size_t(slab.row0) * std::size_t(n);
      const std::size_t hi = std::size_t(slab.row1) * std::size_t(n);
      std::memcpy(x.flat().data() + lo, xs[std::size_t(s)].flat().data() + lo,
                  (hi - lo) * sizeof(float));
      for (int r = slab.row0; r < slab.row1; ++r) {
        ctx.prof.svbAccess(n, 4, true, true);  // read slab copy
        ctx.prof.svbAccess(n, 4, true, true);  // write assembly
      }
      if (ctx.prof.raceCheckOn()) {
        ctx.prof.raceRead(rb_x[std::size_t(s)], std::int64_t(lo),
                          std::int64_t(hi));
        ctx.prof.raceWrite(rb_image, std::int64_t(lo), std::int64_t(hi));
        if (opt.plant_undeclared_halo_write && s == 0 && S > 1) {
          // Sabotage (test-only): model a kernel writing into the halo it
          // does not own. The trespass overlaps slab 1's declared owned
          // rows, so the detector must report a write-write conflict on
          // "shard.image" between blocks 0 and 1 of this kernel.
          const std::int64_t bad_hi = std::min<std::int64_t>(
              std::int64_t(n) * n,
              std::int64_t(slab.row1 + std::max(1, plan.halo)) * n);
          ctx.prof.raceWrite(rb_image, std::int64_t(hi), bad_hi);
        }
      }
    });

    gsim::LaunchConfig red_cfg;
    red_cfg.name = "shard.reduce_e";
    red_cfg.num_blocks = std::min(kReduceStripes, views);
    red_cfg.resources = {.threads_per_block = 256, .regs_per_thread = 16,
                         .smem_per_block_bytes = 0};
    exchange_sim.launch(red_cfg, [&](gsim::BlockCtx& ctx) {
      for (int v = ctx.block_idx; v < views; v += ctx.num_blocks) {
        float* out = e.row(v).data();
        const float* sn = snap.row(v).data();
        if (S == 1) {
          // One slab owns every voxel, so its error copy IS the merged
          // state. A straight copy (not the fold below) keeps this
          // bit-identical to the unsharded engine: float addition is not
          // associative, and snap + (e0 - snap) would perturb the bits.
          std::memcpy(out, es[0].row(v).data(),
                      std::size_t(channels) * sizeof(float));
        } else {
          // Fixed slab order makes the fold deterministic and
          // device-count-invariant. Exact in expectation because voxel
          // ownership is disjoint: each slab's delta is -A * (its own
          // voxel updates).
          for (int c = 0; c < channels; ++c) {
            float acc = sn[c];
            for (int s = 0; s < S; ++s)
              acc += es[std::size_t(s)].row(v)[c] - sn[c];
            out[c] = acc;
          }
        }
        for (int s = 0; s < S + 2; ++s)
          ctx.prof.svbAccess(channels, 4, true, true);
        ctx.prof.addFlops(2.0 * double(S) * channels);
        if (ctx.prof.raceCheckOn()) {
          const std::int64_t vlo = std::int64_t(v) * channels;
          const std::int64_t vhi = vlo + channels;
          ctx.prof.raceWrite(rb_sino, vlo, vhi);
          ctx.prof.raceRead(rb_snap, vlo, vhi);
          for (int s = 0; s < S; ++s)
            ctx.prof.raceRead(rb_e[std::size_t(s)], vlo, vhi);
        }
      }
    });

    gsim::LaunchConfig unpack_cfg;
    unpack_cfg.name = "shard.halo_unpack";
    unpack_cfg.num_blocks = S;
    unpack_cfg.resources = {.threads_per_block = 256, .regs_per_thread = 16,
                            .smem_per_block_bytes = 0};
    exchange_sim.launch(unpack_cfg, [&](gsim::BlockCtx& ctx) {
      const int s = ctx.block_idx;
      const SlabSpec& slab = plan.slabs[std::size_t(s)];
      Image2D& xl = xs[std::size_t(s)];
      const int h = plan.halo;
      const int lo_r0 = std::max(0, slab.row0 - h);
      const int hi_r1 = std::min(n, slab.row1 + h);
      const auto copy_rows = [&](int r0, int r1) {
        if (r0 >= r1) return;
        const std::size_t lo = std::size_t(r0) * std::size_t(n);
        const std::size_t cnt = std::size_t(r1 - r0) * std::size_t(n);
        std::memcpy(xl.flat().data() + lo, x.flat().data() + lo,
                    cnt * sizeof(float));
        for (int r = r0; r < r1; ++r) {
          ctx.prof.svbAccess(n, 4, true, true);
          ctx.prof.svbAccess(n, 4, true, true);
        }
        if (ctx.prof.raceCheckOn()) {
          ctx.prof.raceRead(rb_image, std::int64_t(lo),
                            std::int64_t(lo + cnt));
          ctx.prof.raceWrite(rb_x[std::size_t(s)], std::int64_t(lo),
                             std::int64_t(lo + cnt));
        }
      };
      copy_rows(lo_r0, slab.row0);   // halo rows below
      copy_rows(slab.row1, hi_r1);   // halo rows above
      Sinogram& el = es[std::size_t(s)];
      std::memcpy(el.flat().data(), e.flat().data(),
                  el.flat().size() * sizeof(float));
      for (int v = 0; v < views; ++v) {
        ctx.prof.svbAccess(channels, 4, true, true);
        ctx.prof.svbAccess(channels, 4, true, true);
      }
      if (ctx.prof.raceCheckOn()) {
        const std::int64_t sino_n = std::int64_t(views) * channels;
        ctx.prof.raceRead(rb_sino, 0, sino_n);
        ctx.prof.raceWrite(rb_e[std::size_t(s)], 0, sino_n);
      }
    });

    // Next iteration's delta baseline (host bookkeeping, no modeled time:
    // a real deployment keeps the snapshot on-device as a side effect of
    // the all-reduce).
    snap = e;
  }
};

ShardedGpuIcd::ShardedGpuIcd(const Problem& problem, ShardPlan plan,
                             ShardedOptions opt)
    : impl_(std::make_unique<Impl>(problem, std::move(plan), std::move(opt))) {}

ShardedGpuIcd::~ShardedGpuIcd() = default;

const ShardPlan& ShardedGpuIcd::plan() const { return impl_->plan; }
gsim::GpuSimulator& ShardedGpuIcd::exchangeSimulator() {
  return impl_->exchange_sim;
}
gsim::GpuSimulator& ShardedGpuIcd::slabSimulator(int s) {
  return impl_->engines[std::size_t(s)]->simulator();
}

ShardRunStats ShardedGpuIcd::run(Image2D& x, Sinogram& e,
                                 const ShardIterationCallback& on_iteration) {
  Impl& im = *impl_;
  MBIR_CHECK(x.size() == im.plan.image_size);
  const int S = im.plan.numSlabs();
  const int D = im.opt.devices;
  const int n = x.size();

  im.exchange_sim.resetTotals();
  ShardRunStats stats;

  // Per-slab private state: full image + error copies, refreshed by the
  // exchange. `snap` is the pre-iteration error baseline the reduce folds
  // deltas over.
  std::vector<Image2D> xs(std::size_t(S), x);
  std::vector<Sinogram> es(std::size_t(S), e);
  Sinogram snap = e;
  for (int s = 0; s < S; ++s)
    im.engines[std::size_t(s)]->beginRun(xs[std::size_t(s)],
                                         es[std::size_t(s)]);

  const std::size_t img_bytes = x.numVoxels() * sizeof(float);
  const std::size_t img_row_bytes = std::size_t(n) * sizeof(float);
  const std::size_t sino_bytes = e.size() * sizeof(float);

  // Modeled clocks. Device count > 1 pays an initial broadcast of the
  // image + error + weights sinograms to every non-leader device (links in
  // parallel, so one transfer on the critical path).
  std::vector<double> device_clock(std::size_t(D), 0.0);
  std::vector<double> device_compute(std::size_t(D), 0.0);
  if (D > 1) {
    const double bcast =
        gsim::transferSeconds(im.opt.link, img_bytes + 2 * sino_bytes);
    std::fill(device_clock.begin(), device_clock.end(), bcast);
    stats.comm_seconds += bcast;
    stats.comm_bytes += std::size_t(D - 1) * (img_bytes + 2 * sino_bytes);
    stats.comm_transfers += std::size_t(D - 1);
  }

  obs::Recorder* rec = im.opt.engine.recorder;
  const bool tracing = rec && rec->traceOn();

  ShardBarrier barrier(D);
  std::vector<double> prev_modeled(std::size_t(S), 0.0);
  std::vector<double> compute_delta(std::size_t(D), 0.0);
  std::atomic<bool> exhausted{false};

  // Runs on the last device loop to arrive, under the barrier lock; every
  // shared-state access below is ordered by that lock.
  const auto leader_work = [&]() -> ShardBarrier::Signal {
    if (exhausted.load(std::memory_order_acquire))
      return ShardBarrier::Signal::kStop;
    if (im.opt.cancel &&
        im.opt.cancel->load(std::memory_order_acquire)) {
      stats.cancelled = true;
      return ShardBarrier::Signal::kStop;
    }
    ++stats.iterations;
    for (int d = 0; d < D; ++d) {
      device_clock[std::size_t(d)] += compute_delta[std::size_t(d)];
      device_compute[std::size_t(d)] += compute_delta[std::size_t(d)];
    }
    const double sync =
        *std::max_element(device_clock.begin(), device_clock.end());

    const double ex0 = im.exchange_sim.totalModeledSeconds();
    im.runExchange(x, e, xs, es, snap);
    const double ex_delta = im.exchange_sim.totalModeledSeconds() - ex0;

    std::size_t bytes = 0, transfers = 0;
    const double comm =
        im.iterationCommSeconds(img_row_bytes, sino_bytes, bytes, transfers);
    const double after = sync + ex_delta + comm;
    std::fill(device_clock.begin(), device_clock.end(), after);

    ++stats.exchanges;
    stats.comm_seconds += comm;
    stats.comm_bytes += bytes;
    stats.comm_transfers += transfers;
    stats.modeled_seconds = after;
    if (im.m_exchanges) {
      im.m_exchanges->add();
      im.m_comm_bytes->add(bytes);
      im.m_comm_transfers->add(transfers);
      im.m_comm_seconds->set(stats.comm_seconds);
    }
    if (tracing && comm > 0.0) {
      obs::TraceEvent ev;
      ev.name = "shard.transfer";
      ev.cat = "shard";
      ev.clock = obs::Clock::kModeled;
      ev.pid = im.opt.engine.trace_pid;
      ev.ts_us = (sync + ex_delta) * 1e6;
      ev.dur_us = comm * 1e6;
      ev.num_args = {{"iteration", double(stats.iterations)},
                     {"bytes", double(bytes)},
                     {"transfers", double(transfers)},
                     {"devices", double(D)}};
      ev.str_args = {{"link", im.opt.link.name}};
      if (im.opt.engine.span) obs::tagSpan(ev, *im.opt.engine.span);
      rec->trace().record(std::move(ev));
    }

    std::size_t updates = 0;
    for (const auto& eng : im.engines)
      updates += eng->runStats().work.voxel_updates;
    stats.equits = double(updates) / double(x.numVoxels());

    if (on_iteration &&
        !on_iteration(ShardIterationInfo{stats.iterations, stats.equits,
                                         stats.modeled_seconds, x})) {
      stats.stopped_by_callback = true;
      return ShardBarrier::Signal::kStop;
    }
    return ShardBarrier::Signal::kContinue;
  };

  // One persistent loop per simulated device on a private driver pool
  // (slab engines' kernel blocks run on the — distinct — host pool, so the
  // parallelFor-from-own-pool restriction is never violated).
  ThreadPool driver{unsigned(D)};
  for (int d = 0; d < D; ++d) {
    driver.submit([&, d] {
      try {
        for (;;) {
          bool done = false;
          double delta = 0.0;
          for (int s = d; s < S; s += D) {
            GpuIcd& eng = *im.engines[std::size_t(s)];
            if (!eng.stepIteration(xs[std::size_t(s)], es[std::size_t(s)])) {
              // All engines share max_iterations, so every device loop
              // exhausts on the same round.
              done = true;
              break;
            }
            const double m = eng.runStats().modeled_seconds;
            delta += m - prev_modeled[std::size_t(s)];
            prev_modeled[std::size_t(s)] = m;
          }
          if (done)
            exhausted.store(true, std::memory_order_release);
          else
            compute_delta[std::size_t(d)] = delta;
          if (barrier.arriveAndWait(leader_work) ==
              ShardBarrier::Signal::kStop)
            return;
        }
      } catch (...) {
        // A slab engine (or the exchange) died — release peers parked at
        // the rendezvous before unwinding, else they wait forever on an
        // arrival that will never come.
        barrier.abort();
        throw;
      }
    });
  }
  // The on_error hook is the backstop for the same deadlock if an error
  // reaches the pool before abort() does (regression-tested in test_core).
  driver.wait([&] { barrier.abort(); });

  // Final device-to-host gather of the assembled image.
  double final_clock =
      *std::max_element(device_clock.begin(), device_clock.end());
  if (D > 1) {
    const double gather = gsim::transferSeconds(im.opt.link, img_bytes);
    final_clock += gather;
    stats.comm_seconds += gather;
    stats.comm_bytes += img_bytes;
    stats.comm_transfers += 1;
  }
  stats.modeled_seconds = final_clock;
  stats.compute_seconds =
      *std::max_element(device_compute.begin(), device_compute.end());
  stats.exchange_seconds = im.exchange_sim.totalModeledSeconds();

  stats.kernels_launched = 3 * stats.exchanges;
  for (const auto& eng : im.engines) {
    const GpuRunStats& es_ = eng->runStats();
    stats.work += es_.work;
    stats.kernels_launched += es_.kernels_launched;
  }
  stats.equits = double(stats.work.voxel_updates) / double(x.numVoxels());

  const auto add_race = [&](const gsim::GpuSimulator& sim) {
    stats.race_check_enabled = stats.race_check_enabled || sim.raceCheckOn();
    const gsim::RaceCheckTotals t = sim.raceDetector().totals();
    stats.race_launches_checked += t.launches_checked;
    stats.race_ranges_checked += t.ranges_checked;
    stats.race_reports += t.races_found;
  };
  add_race(im.exchange_sim);
  for (int s = 0; s < S; ++s) add_race(im.engines[std::size_t(s)]->simulator());
  return stats;
}

}  // namespace mbir::shard
