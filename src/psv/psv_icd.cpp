#include "psv/psv_icd.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <optional>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "icd/update_order.h"
#include "obs/obs.h"
#include "icd/voxel_update.h"
#include "prior/neighborhood.h"
#include "sv/svb.h"

namespace mbir {

namespace {

// Boundary voxels are shared by adjacent SVs, which PSV-ICD updates
// concurrently (the algorithm tolerates the resulting staleness — §3.2).
// All image accesses on the parallel path therefore go through relaxed
// atomics so the races are well-defined.
float loadX(Image2D& x, int row, int col) {
  return std::atomic_ref<float>(x(row, col)).load(std::memory_order_relaxed);
}
void addX(Image2D& x, int row, int col, float delta) {
  std::atomic_ref<float> ref(x(row, col));
  ref.store(ref.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

bool zeroSkipRelaxed(Image2D& x, int row, int col) {
  if (loadX(x, row, col) != 0.0f) return false;
  const int n = x.size();
  for (const NeighborOffset& nb : neighborhood8()) {
    const int r = row + nb.dr, c = col + nb.dc;
    if (r < 0 || r >= n || c < 0 || c >= n) continue;
    if (loadX(x, r, c) != 0.0f) return false;
  }
  return true;
}

/// solveDelta (icd/voxel_update.h) with relaxed image loads.
float solveDeltaRelaxed(const Prior& prior, Image2D& x, int row, int col,
                        const ThetaPair& theta) {
  const float xv = loadX(x, row, col);
  double num = theta.theta1;
  double den = theta.theta2;
  const int n = x.size();
  for (const NeighborOffset& nb : neighborhood8()) {
    const int r = row + nb.dr, c = col + nb.dc;
    if (r < 0 || r >= n || c < 0 || c >= n) continue;
    const double u = double(xv) - double(loadX(x, r, c));
    num += nb.b * prior.influence(u);
    den += 2.0 * nb.b * prior.surrogateCoeff(u);
  }
  if (den <= 0.0) return 0.0f;
  return float(std::max(-num / den, -double(xv)));
}

/// theta1/theta2 against packed SVBs (Alg. 1 lines 3-6, SVB-local). Rows
/// execute as lane groups: per-lane accumulators carried across views,
/// reduced in fixed lane order at the end (core/simd.h canonical
/// semantics) — identical bits on the scalar and AVX2 paths.
ThetaPair computeThetaSvb(const SystemMatrix& A, const Svb& e_svb,
                          const Svb& w_svb, std::size_t voxel,
                          std::size_t& elements, const SimdOps& ops) {
  ThetaLanes lanes;
  lanes.reset();
  const SvbPlan& plan = e_svb.plan();
  for (int v = 0; v < A.numViews(); ++v) {
    const SystemMatrix::Run& r = A.run(voxel, v);
    if (r.count == 0) continue;
    const auto aw = A.weights(voxel, v);
    const int start = int(r.first_channel) - plan.lo(v);
    ops.theta_row_f(aw.data(), e_svb.rowData(v) + start,
                    w_svb.rowData(v) + start, int(aw.size()), lanes);
    elements += aw.size();
  }
  ThetaPair t;
  t.theta1 = reduceLanes(lanes.t1);
  t.theta2 = reduceLanes(lanes.t2);
  return t;
}

/// e_svb -= A[voxel] * delta (Alg. 1 lines 9-11, SVB-local).
void applyErrorUpdateSvb(const SystemMatrix& A, Svb& e_svb, std::size_t voxel,
                         float delta, std::size_t& elements,
                         const SimdOps& ops) {
  if (delta == 0.0f) return;
  const SvbPlan& plan = e_svb.plan();
  for (int v = 0; v < A.numViews(); ++v) {
    const SystemMatrix::Run& r = A.run(voxel, v);
    if (r.count == 0) continue;
    const auto aw = A.weights(voxel, v);
    float* erow = e_svb.rowData(v) + (int(r.first_channel) - plan.lo(v));
    ops.err_row_f(aw.data(), delta, erow, int(aw.size()));
    elements += aw.size();
  }
}

}  // namespace

PsvIcd::PsvIcd(const Problem& problem, PsvIcdOptions options)
    : problem_(problem),
      options_(options),
      grid_(problem.A.geometry().image_size, options.sv) {
  problem_.validate();
  MBIR_CHECK(options_.sv_fraction > 0.0 && options_.sv_fraction <= 1.0);
  MBIR_CHECK(options_.max_iterations >= 1);
}

PsvRunStats PsvIcd::run(Image2D& x, Sinogram& e,
                        const PsvIterationCallback& on_iteration) {
  MBIR_CHECK(x.size() == problem_.A.geometry().image_size);
  const SystemMatrix& A = problem_.A;
  const int image_size = x.size();
  const SimdOps& simd_ops = resolveSimdOps(options_.simd);

  // One SVB plan per SV, reused across iterations (band depends only on
  // geometry).
  std::vector<SvbPlan> plans;
  plans.reserve(std::size_t(grid_.count()));
  for (int i = 0; i < grid_.count(); ++i)
    plans.emplace_back(A.geometry(), grid_.sv(i));

  std::optional<ThreadPool> local_pool;
  if (options_.num_threads > 0) local_pool.emplace(options_.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : globalThreadPool();

  Rng rng(options_.seed);
  std::vector<double> magnitude(std::size_t(grid_.count()), 0.0);

  std::mutex sino_mu;       // guards the global error sinogram
  std::mutex stats_mu;      // guards the shared counters
  PsvRunStats stats;
  std::atomic<std::size_t> total_updates{0};
  const double voxels_per_equit = double(x.numVoxels());

  obs::Recorder* rec = options_.recorder;
  const bool tracing = rec && rec->traceOn();
  obs::Counter* m_iterations = nullptr;
  obs::Counter* m_svs = nullptr;
  obs::Counter* m_locks = nullptr;
  if (rec && rec->metricsOn()) {
    obs::MetricsRegistry& m = rec->metrics();
    m_iterations = &m.counter("psv.iteration.count");
    m_svs = &m.counter("psv.sv.processed");
    m_locks = &m.counter("psv.lock.acquisitions");
  }

  // Standalone race detector (PSV does not run through GpuSimulator): each
  // iteration's concurrent SV sweeps form one logical launch.
  gsim::RaceDetector race(options_.race_check);
  const bool race_on = race.config().enabled;
  int rb_image = -1, rb_sino_e = -1;
  if (race_on) {
    rb_image = race.bufferId("image");
    rb_sino_e = race.bufferId("sino.e");
  }

  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    const double iter_host_us = tracing ? rec->trace().nowHostUs() : 0.0;
    const std::size_t iter_locks0 = stats.work.lock_acquisitions;
    const std::vector<int> selected = selectSuperVoxels(
        iter, std::size_t(grid_.count()), magnitude, options_.sv_fraction, rng);

    // Independent per-SV RNG streams, drawn up front for determinism under
    // dynamic scheduling.
    std::vector<std::uint64_t> seeds(selected.size());
    for (auto& s : seeds) s = rng.next();

    pool.parallelFor(0, int(selected.size()), [&](int si) {
      const int sv_id = selected[std::size_t(si)];
      const SuperVoxel& sv = grid_.sv(sv_id);
      const SvbPlan& plan = plans[std::size_t(sv_id)];
      WorkCounters wc;

      Svb w_svb(plan, SvbLayout::kPacked);
      w_svb.gather(problem_.weights);
      Svb e_svb(plan, SvbLayout::kPacked);
      {
        std::lock_guard lock(sino_mu);
        e_svb.gather(e);
        ++wc.lock_acquisitions;
      }
      Svb e_orig(plan, SvbLayout::kPacked);
      std::memcpy(e_orig.raw().data(), e_svb.raw().data(),
                  e_svb.raw().size() * sizeof(float));
      // weights gather + error gather + original-error copy
      wc.svb_gather_elements += 3 * e_svb.raw().size();

      Rng sv_rng(seeds[std::size_t(si)]);
      std::vector<int> order(std::size_t(sv.numVoxels()));
      for (std::size_t k = 0; k < order.size(); ++k) order[k] = int(k);
      if (options_.randomize_voxel_order) sv_rng.shuffle(order);

      double mag_acc = 0.0;
      for (int k : order) {
        const int row = sv.row0 + k / sv.numCols();
        const int col = sv.col0 + k % sv.numCols();
        ++wc.voxels_visited;
        if (options_.zero_skip && zeroSkipRelaxed(x, row, col)) continue;
        const std::size_t voxel =
            std::size_t(row) * std::size_t(image_size) + std::size_t(col);
        const ThetaPair theta = computeThetaSvb(A, e_svb, w_svb, voxel,
                                                wc.theta_elements, simd_ops);
        const float delta = solveDeltaRelaxed(problem_.prior, x, row, col, theta);
        addX(x, row, col, delta);
        applyErrorUpdateSvb(A, e_svb, voxel, delta, wc.error_update_elements,
                            simd_ops);
        mag_acc += std::abs(double(delta));
        ++wc.voxel_updates;
      }

      {
        std::lock_guard lock(sino_mu);
        e_svb.applyDeltaTo(e, e_orig, &simd_ops);
        ++wc.lock_acquisitions;
      }
      wc.svb_writeback_elements += e_svb.raw().size();
      ++wc.svs_processed;

      magnitude[std::size_t(sv_id)] = mag_acc;  // single writer per SV
      total_updates.fetch_add(wc.voxel_updates, std::memory_order_relaxed);
      {
        std::lock_guard lock(stats_mu);
        stats.work += wc;
      }
    });

    if (race_on) {
      // Declarations derive from static geometry, so they are built
      // host-side after the sweep rather than inside the workers. Per SV
      // "block": image rect + clamped read ring, all atomic (every image
      // access above goes through std::atomic_ref — adjacent SVs genuinely
      // share boundary voxels); the lock-serialized global-sinogram
      // gather/writeback as atomic over the SV's band; the private SVBs as
      // plain writes. A write/anything diagnosis therefore means an SVB
      // stopped being private or an image access bypassed the atomics.
      const int channels = A.numChannels();
      std::vector<gsim::BlockAccessLog> logs(selected.size());
      for (std::size_t si = 0; si < selected.size(); ++si) {
        const int sv_id = selected[si];
        const SuperVoxel& sv = grid_.sv(sv_id);
        const SvbPlan& plan = plans[std::size_t(sv_id)];
        const int rr0 = std::max(0, sv.row0 - 1);
        const int rr1 = std::min(image_size, sv.row1 + 1);
        const int rc0 = std::max(0, sv.col0 - 1);
        const int rc1 = std::min(image_size, sv.col1 + 1);
        for (int r = rr0; r < rr1; ++r)
          logs[si].atomic(rb_image, std::int64_t(r) * image_size + rc0,
                          std::int64_t(r) * image_size + rc1);
        for (int v = 0; v < plan.numViews(); ++v) {
          const int w = plan.width(v);
          if (w == 0) continue;
          const std::int64_t glo = std::int64_t(v) * channels + plan.lo(v);
          logs[si].atomic(rb_sino_e, glo, glo + w);
        }
        logs[si].write(race.bufferId("svb/" + std::to_string(sv_id)), 0,
                       plan.numViews());
      }
      const int found = race.checkLaunch("psv_sweep", logs);
      if (found > 0 && race.config().throw_on_race)
        MBIR_CHECK_MSG(false, gsim::RaceDetector::describe(race.races().back()));
    }

    stats.iterations = iter;
    stats.equits = double(total_updates.load()) / voxels_per_equit;
    if (m_iterations) {
      m_iterations->add();
      m_svs->add(std::uint64_t(selected.size()));
      m_locks->add(
          std::uint64_t(stats.work.lock_acquisitions - iter_locks0));
    }
    if (tracing) {
      obs::TraceEvent ev;
      ev.name = "psv.iteration";
      ev.cat = "psv";
      ev.clock = obs::Clock::kHost;
      ev.ts_us = iter_host_us;
      ev.dur_us = rec->trace().nowHostUs() - iter_host_us;
      ev.num_args = {{"iteration", double(iter)},
                     {"selected_svs", double(selected.size())},
                     {"equits", stats.equits}};
      rec->trace().record(std::move(ev));
    }
    if (on_iteration &&
        !on_iteration(PsvIterationInfo{iter, stats.equits, stats.work, x})) {
      stats.stopped_by_callback = true;
      break;
    }
  }
  stats.race_check_enabled = race_on;
  const gsim::RaceCheckTotals race_totals = race.totals();
  stats.race_launches_checked = race_totals.launches_checked;
  stats.race_ranges_checked = race_totals.ranges_checked;
  stats.race_reports = race_totals.races_found;
  return stats;
}

}  // namespace mbir
