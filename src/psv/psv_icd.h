// PSV-ICD — Parallel SuperVoxel ICD (Wang et al., PPoPP 2016; paper Alg. 2).
//
// The state-of-the-art multicore CPU algorithm GPU-ICD is compared against:
//   * voxels grouped into SuperVoxels, each with private error/weight SVBs,
//   * SVs distributed across CPU cores (inter-SV parallelism only),
//   * voxels within an SV updated sequentially against the SVB,
//   * SVB deltas merged into the global error sinogram under a lock,
//   * per-iteration SV selection: all SVs (iter 1), top 20% by accumulated
//     update magnitude (even iters), random 20% (odd iters).
//
// This is a real std::thread implementation (functionally exact on any core
// count); the benches pair it with gsim's 16-core Xeon timing model for the
// Table 1 comparison.
#pragma once

#include <cstdint>
#include <functional>

#include "core/simd.h"
#include "geom/image.h"
#include "geom/sinogram.h"
#include "gsim/race_check.h"
#include "icd/problem.h"
#include "icd/work.h"
#include "sv/supervoxel.h"

namespace mbir::obs {
class Recorder;
}  // namespace mbir::obs

namespace mbir {

struct PsvIcdOptions {
  SvGridOptions sv{.sv_side = 13, .boundary_overlap = 1};  // paper Table 1
  /// Fraction of SVs updated per iteration after the first (paper: 20%).
  double sv_fraction = 0.20;
  int max_iterations = 1000;
  bool zero_skip = true;
  bool randomize_voxel_order = true;
  std::uint64_t seed = 11;
  /// 0 = use the global pool's size.
  unsigned num_threads = 0;
  /// Observability sink (nullptr = off): per-iteration host-clock spans and
  /// `psv.*` counters. Purely observational.
  obs::Recorder* recorder = nullptr;
  /// Device-semantics race checking: each iteration's concurrent SV sweeps
  /// are declared to a gsim::RaceDetector as one launch (one block per SV).
  /// Image and global-sinogram accesses are declared atomic — PSV-ICD
  /// really does tolerate boundary staleness through relaxed atomics and a
  /// sinogram lock — so the check guards the SVB-privacy claim and will
  /// flag any future scheme that drops the atomics. Defaults from
  /// GPUMBIR_RACE_CHECK.
  gsim::RaceCheckConfig race_check = gsim::RaceCheckConfig::fromEnv();
  /// Lane-group execution path for the SVB row loops (core/simd.h).
  /// kDefault = the GPUMBIR_SIMD environment knob. Scalar and AVX2 are
  /// bit-identical, so this is purely a wall-clock knob.
  SimdMode simd = SimdMode::kDefault;
};

struct PsvIterationInfo {
  int iteration = 0;      ///< 1-based
  double equits = 0.0;
  WorkCounters work;      ///< cumulative counters (for timing models)
  const Image2D& x;
};

/// Return false to stop iterating.
using PsvIterationCallback = std::function<bool(const PsvIterationInfo&)>;

struct PsvRunStats {
  double equits = 0.0;
  int iterations = 0;
  bool stopped_by_callback = false;
  WorkCounters work;
  /// Device-semantics race checking (zeros when disabled).
  bool race_check_enabled = false;
  std::uint64_t race_launches_checked = 0;
  std::uint64_t race_ranges_checked = 0;
  std::uint64_t race_reports = 0;
};

class PsvIcd {
 public:
  PsvIcd(const Problem& problem, PsvIcdOptions options = {});

  /// Run iterations until the callback stops or max_iterations. `x` and the
  /// matching error sinogram `e` are updated in place.
  PsvRunStats run(Image2D& x, Sinogram& e,
                  const PsvIterationCallback& on_iteration = {});

  const SvGrid& grid() const { return grid_; }

 private:
  const Problem problem_;  // by value: Problem is a non-owning view struct
  PsvIcdOptions options_;
  SvGrid grid_;
};

}  // namespace mbir
