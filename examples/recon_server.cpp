// Online reconstruction server: hosts the gpumbir.svc/1 service on
// 127.0.0.1, dispatching submitted jobs across simulated devices until a
// client issues `drain` or the process receives SIGINT/SIGTERM. Either way
// it exits cleanly: stop admission, run the queue dry, write the
// gpumbir.svc_report/1 report (and optionally the Perfetto trace), join
// every thread, exit 0.
//
//   ./recon_server [--port 0] [--devices 2] [--queue-cap 16]
//                  [--size 64] [--views 96] [--channels 128]
//                  [--golden-equits 12] [--max-equits 10] [--sv-side 0]
//                  [--port-file PATH] [--report svc_report.json]
//                  [--trace PATH] [--flight-dir DIR]
//                  [--wal-dir DIR] [--cache-dir DIR] [--cache-capacity 64]
//                  [--tenant-weights alice=4,bob=1] [--default-weight 1]
//                  [--chaos-seed N --chaos-stall-rate 0.05 ...
//                   --chaos-devices 1,3] [--watchdog-ms 1000]
//
// --wal-dir enables the durable job log (DESIGN.md §14): submits are acked
// only once on disk, and a restart pointed at the same directory re-runs
// every admitted-but-unfinished job. --cache-dir enables the
// content-addressed result cache (exact hits served without dispatching,
// near-duplicates warm-started). --tenant-weights drives weighted-fair
// dispatch on the priority lane.
//
// The --chaos-* flags install a seed-driven fault plan (DESIGN.md §12) at
// startup; any --chaos-* flag arms the heartbeat watchdog (default 1000 ms,
// override with --watchdog-ms). The same plan can be installed or changed
// at runtime via `reconctl chaos`.
//
// With --flight-dir the always-on flight recorder writes a
// gpumbir.flight/1 dump there whenever a job fails, misses its deadline or
// is cancelled, and `kill -USR1 <pid>` dumps it on demand. Without
// --flight-dir nothing is written automatically, but the recorder stays
// reachable over the wire via `reconctl flight`.
//
// Drive it with ./reconctl (see --help there), e.g.
//   ./recon_server --port-file /tmp/port &
//   ./reconctl submit --port-file /tmp/port --case 0 --priority 5 --wait
//   ./reconctl drain --port-file /tmp/port
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "core/cli.h"
#include "core/signal.h"
#include "obs/obs.h"
#include "store/cache.h"
#include "store/wal.h"
#include "svc/server.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("port", "TCP port on 127.0.0.1 (0 = kernel-assigned)", "0");
  args.describe("devices", "simulated device count", "2");
  args.describe("queue-cap", "admission queue bound (jobs)", "16");
  args.describe("size", "image size of served cases (pixels per side)", "64");
  args.describe("views", "view angles of served cases", "96");
  args.describe("channels", "detector channels of served cases", "128");
  args.describe("golden-equits", "equits for cached golden references", "12");
  args.describe("max-equits", "default per-job equit budget", "10");
  args.describe("sv-side", "default SV side for gpu/psv jobs (0 = builtin)",
                "0");
  args.describe("port-file", "write the bound port number to this file", "");
  args.describe("report", "write gpumbir.svc_report/1 here on exit",
                "svc_report.json");
  args.describe("trace", "write a Perfetto trace here on exit", "");
  args.describe("flight-dir",
                "write gpumbir.flight/1 dumps here (job failures, SIGUSR1)",
                "");
  args.describe("wal-dir",
                "durable job log directory (empty = no WAL; restarts with "
                "the same dir recover unfinished jobs)",
                "");
  args.describe("cache-dir",
                "content-addressed result cache directory (empty = no cache)",
                "");
  args.describe("cache-capacity", "result cache bound (entries)", "64");
  args.describe("tenant-weights",
                "weighted-fair shares, e.g. alice=4,bob=1 ('default' names "
                "the no-tenant bucket)",
                "");
  args.describe("default-weight", "share for tenants not listed above", "1");
  args.describe("chaos-seed", "fault-plan seed (with any chaos rate)", "0");
  args.describe("chaos-launch-rate", "per-job corrupted-launch rate", "0");
  args.describe("chaos-stall-rate", "per-job device-stall rate", "0");
  args.describe("chaos-death-rate", "per-job device-death rate", "0");
  args.describe("chaos-devices",
                "devices stall/death may hit, comma-separated (empty = all)",
                "");
  args.describe("watchdog-ms",
                "heartbeat watchdog limit (0 = disarmed unless chaos flags "
                "are given)",
                "0");
  if (args.helpRequested("Online reconstruction service (gpumbir.svc/1)."))
    return 0;

  // The signal handlers must be installed before any worker thread exists
  // so every thread inherits the disposition.
  ShutdownSignal& shutdown = ShutdownSignal::instance();
  Usr1Signal& usr1 = Usr1Signal::instance();

  SuiteConfig suite_cfg;
  suite_cfg.geometry.image_size = args.getInt("size", 64);
  suite_cfg.geometry.num_views = args.getInt("views", 96);
  suite_cfg.geometry.num_channels = args.getInt("channels", 128);
  CaseLibrary library(suite_cfg, args.getDouble("golden-equits", 12.0));
  svc::CaseLibraryJobSource source(library);

  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs_cfg.trace = !args.getString("trace", "").empty();
  obs::Recorder recorder(obs_cfg);

  svc::ServerOptions opt;
  opt.port = std::uint16_t(args.getInt("port", 0));
  opt.dispatch.num_devices = args.getInt("devices", 2);
  opt.dispatch.queue_capacity = args.getInt("queue-cap", 16);
  opt.dispatch.recorder = &recorder;
  const std::string flight_dir = args.getString("flight-dir", "");
  opt.dispatch.flight_dir = flight_dir;
  chaos::FaultPlan plan;
  plan.seed = std::uint64_t(args.getInt("chaos-seed", 0));
  plan.launch_fault_rate = args.getDouble("chaos-launch-rate", 0.0);
  plan.stall_rate = args.getDouble("chaos-stall-rate", 0.0);
  plan.death_rate = args.getDouble("chaos-death-rate", 0.0);
  const std::string chaos_devices = args.getString("chaos-devices", "");
  for (std::size_t i = 0; i < chaos_devices.size();) {
    const std::size_t comma = chaos_devices.find(',', i);
    const std::string tok = chaos_devices.substr(
        i, comma == std::string::npos ? comma : comma - i);
    if (!tok.empty()) plan.target_devices.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    i = comma + 1;
  }
  opt.dispatch.fault_plan = plan;
  // Weighted-fair shares: "name=weight,name=weight" ("default" = the
  // no-tenant bucket).
  const std::string weights_arg = args.getString("tenant-weights", "");
  for (std::size_t i = 0; i < weights_arg.size();) {
    const std::size_t comma = weights_arg.find(',', i);
    const std::string tok = weights_arg.substr(
        i, comma == std::string::npos ? comma : comma - i);
    if (!tok.empty()) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "recon_server: bad --tenant-weights token '%s' "
                     "(want name=weight)\n", tok.c_str());
        return 2;
      }
      opt.dispatch.tenant_weights[tok.substr(0, eq)] =
          std::stod(tok.substr(eq + 1));
    }
    if (comma == std::string::npos) break;
    i = comma + 1;
  }
  opt.dispatch.default_tenant_weight = args.getDouble("default-weight", 1.0);
  // Any chaos flag arms the watchdog: a plan without one could park a
  // stalled device forever.
  double watchdog_ms = args.getDouble("watchdog-ms", 0.0);
  if (plan.enabled() && watchdog_ms <= 0.0) watchdog_ms = 1000.0;
  opt.dispatch.watchdog_ms = watchdog_ms;
  opt.base_config.algorithm = Algorithm::kGpuIcd;
  opt.base_config.max_equits = args.getDouble("max-equits", 10.0);
  const int sv_side = args.getInt("sv-side", 0);
  if (sv_side > 0) {
    opt.base_config.gpu.tunables.sv.sv_side = sv_side;
    opt.base_config.psv.sv.sv_side = sv_side;
  }

  obs::MetricsRegistry* metrics = obs_cfg.metrics ? &recorder.metrics() : nullptr;
  std::optional<store::JobLog> wal;
  const std::string wal_dir = args.getString("wal-dir", "");
  if (!wal_dir.empty()) {
    wal.emplace(wal_dir, metrics);
    opt.wal = &*wal;
  }
  std::optional<store::ResultCache> cache;
  const std::string cache_dir = args.getString("cache-dir", "");
  if (!cache_dir.empty()) {
    cache.emplace(cache_dir, std::size_t(args.getInt("cache-capacity", 64)),
                  metrics);
    opt.cache = &*cache;
  }

  svc::Server server(opt, source);
  std::printf("recon_server: listening on 127.0.0.1:%u (%d devices, queue "
              "cap %d)\n",
              unsigned(server.port()), opt.dispatch.num_devices,
              opt.dispatch.queue_capacity);
  if (wal)
    std::printf("recon_server: WAL %s: replayed %llu records, recovered %zu "
                "pending job(s)\n",
                wal->path().c_str(),
                (unsigned long long)wal->replayStats().records,
                wal->pending().size());
  if (cache)
    std::printf("recon_server: result cache %s: %zu entr%s loaded (cap %zu)\n",
                cache->dir().c_str(), cache->size(),
                cache->size() == 1 ? "y" : "ies", cache->capacity());
  if (plan.enabled())
    std::printf("recon_server: chaos armed, seed %llu (launch %.3f / stall "
                "%.3f / death %.3f), watchdog %.0f ms\n",
                (unsigned long long)plan.seed, plan.launch_fault_rate,
                plan.stall_rate, plan.death_rate, watchdog_ms);
  std::fflush(stdout);

  const std::string port_file = args.getString("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
  }

  // Serve until a client drains us or the OS asks us to go. SIGUSR1 is an
  // operator's "dump the flight recorder" — consumed here, never fatal.
  std::uint64_t usr1_dumps = 0;
  while (!server.drainRequested() &&
         !shutdown.waitFor(std::chrono::milliseconds(200))) {
    while (usr1.consume()) {
      const std::string path =
          (flight_dir.empty() ? std::string(".") : flight_dir) +
          "/flight_sigusr1_" + std::to_string(++usr1_dumps) + ".json";
      server.dispatcher().flightRecorder().writeFile(path, "SIGUSR1");
      std::printf("recon_server: SIGUSR1, wrote %s\n", path.c_str());
      std::fflush(stdout);
    }
  }
  if (shutdown.requested() && !server.drainRequested())
    std::printf("recon_server: signal %d, draining...\n",
                shutdown.signalNumber());

  const svc::SvcReport& rep = server.drainAndReport();
  const std::string report_path = args.getString("report", "svc_report.json");
  if (!report_path.empty()) server.dispatcher().writeReportJson(report_path);
  const std::string trace_path = args.getString("trace", "");
  if (!trace_path.empty()) recorder.trace().writeFile(trace_path);
  server.stop();

  std::printf("recon_server: drained. %llu submitted / %llu rejected; "
              "%llu done, %llu cancelled, %llu failed, %llu deadline-missed "
              "(%.2f jobs/s over %.1f s)\n",
              (unsigned long long)rep.jobs_submitted,
              (unsigned long long)rep.admission_rejected,
              (unsigned long long)rep.jobs_done,
              (unsigned long long)rep.jobs_cancelled,
              (unsigned long long)rep.jobs_failed,
              (unsigned long long)rep.jobs_deadline_missed,
              rep.jobs_per_host_second, rep.host_seconds);
  if (rep.devices_failed > 0 || rep.jobs_migrated > 0)
    std::printf("recon_server: chaos: %llu devices failed, %llu jobs "
                "migrated\n",
                (unsigned long long)rep.devices_failed,
                (unsigned long long)rep.jobs_migrated);
  if (rep.cache_hits > 0 || rep.warm_starts > 0 || rep.jobs_recovered > 0)
    std::printf("recon_server: store: %llu cache hit(s), %llu warm start(s), "
                "%llu recovered job(s)\n",
                (unsigned long long)rep.cache_hits,
                (unsigned long long)rep.warm_starts,
                (unsigned long long)rep.jobs_recovered);
  if (!report_path.empty())
    std::printf("recon_server: wrote %s\n", report_path.c_str());
  return rep.jobs_failed == 0 ? 0 : 1;
}
