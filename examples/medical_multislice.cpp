// Medical multi-slice reconstruction — the paper's dataset organization:
// a 3D volume reconstructed as a stack of independent 2D slices, all
// sharing one system matrix (the per-geometry A is computed once and
// reused, which is why real deployments amortize its cost).
//
// Emulates a head study: Shepp-Logan anatomy whose feature scale varies
// slightly per slice, reconstructed slice-by-slice with GPU-ICD.
//
//   ./medical_multislice [--size 128] [--slices 6] [--dose 2e5]
#include <cstdio>

#include "core/cli.h"
#include "core/timer.h"
#include "geom/image.h"
#include "icd/convergence.h"
#include "phantom/shepp_logan.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"
#include "scan/scanner.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size", "128");
  args.describe("slices", "number of slices in the volume", "6");
  args.describe("dose", "incident photons per measurement", "2e5");
  if (args.helpRequested("Multi-slice (volume) MBIR reconstruction study."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 128);
  cfg.noise.i0 = args.getDouble("dose", 2e5);
  const int num_slices = args.getInt("slices", 6);

  WallTimer setup;
  Suite suite(cfg);  // system matrix computed once for the whole volume
  std::printf("system matrix built once in %.2fs (%zu nonzeros), shared by %d slices\n",
              setup.seconds(), suite.matrix().nnz(), num_slices);

  ImageStack volume(num_slices, cfg.geometry.image_size);
  double total_modeled = 0.0;
  double total_equits = 0.0;

  const double fov = 0.88 * cfg.geometry.fieldOfViewRadius();
  for (int s = 0; s < num_slices; ++s) {
    // Head cross-section shrinks toward the ends of the scan range.
    const double z = double(s) / double(std::max(1, num_slices - 1));
    const double radius = fov * (0.75 + 0.25 * std::sin(z * 3.14159));
    const EllipsePhantom anatomy = modifiedSheppLogan(radius);
    ScanResult scan = simulateScan(anatomy, cfg.geometry, cfg.noise,
                                   1000 + std::uint64_t(s));
    OwnedProblem problem(suite.matrixPtr(), std::move(scan), cfg.prior);

    const Image2D golden = computeGolden(problem, 30.0);
    RunConfig rc;
    rc.algorithm = Algorithm::kGpuIcd;
    const RunResult r = reconstruct(problem, golden, rc);
    volume.slice(s) = r.image;
    total_modeled += r.modeled_seconds;
    total_equits += r.equits;
    std::printf("slice %d: radius %.1fmm, %.1f equits, %.1f HU vs golden, "
                "modeled %.4fs %s\n",
                s, radius, r.equits, r.final_rmse_hu, r.modeled_seconds,
                r.converged ? "" : "(not converged)");
  }

  std::printf("\nvolume of %d slices: modeled GPU time %.3fs total "
              "(%.4fs/slice, %.2f equits/slice avg)\n",
              num_slices, total_modeled, total_modeled / num_slices,
              total_equits / num_slices);
  std::printf("paper context: 0.407s/slice mean at 512^2 x 720 views on the "
              "Titan X (Table 1)\n");
  return 0;
}
