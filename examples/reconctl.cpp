// Control CLI for a running recon_server: one verb per invocation.
//
//   ./reconctl <ping|submit|status|result|cancel|stats|flight|chaos|drain>
//              --port N [...]
//
//   ./reconctl ping    --port 45123
//   ./reconctl submit  --port 45123 --case 0 --priority 5 --deadline-ms 2000
//   ./reconctl submit  --port 45123 --case 1 --deterministic --wait
//   ./reconctl submit  --port 45123 --case 0 --fault launch@1 --wait
//   ./reconctl submit  --port 45123 --case 0 --json [--no-cache]
//   ./reconctl status  --port 45123 [--job 3]
//   ./reconctl result  --port 45123 --job 3
//   ./reconctl cancel  --port 45123 --job 3
//   ./reconctl stats   --port 45123 [--watch] [--interval-ms 1000] [--json]
//   ./reconctl flight  --port 45123 --out flight.json
//   ./reconctl chaos   --port 45123 [--seed 42 --stall-rate 0.05 ...]
//   ./reconctl drain   --port 45123 --out svc_report.json
//
// --port-file PATH (as written by recon_server --port-file) can replace
// --port everywhere.
//
// Exit codes (scriptable — asserted by tests/reconctl_cli_test.sh):
//   0  the verb succeeded; for submit --wait / result, the job finished
//      done or cancelled
//   1  transport or server error (refused connection, ok:false response,
//      unknown verb, bad usage)
//   2  submit only: admission rejection (queue full / draining) — back off
//   3  submit --wait / result: the job terminated failed or deadline-missed
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "core/cli.h"
#include "core/error.h"
#include "core/signal.h"
#include "svc/client.h"

using namespace mbir;

namespace {

/// Serialize a parsed JsonValue back to JSON (object keys come out sorted —
/// the parser stores members in a std::map — which is fine for a report).
void writeJsonValue(obs::JsonWriter& w, const obs::JsonValue& v) {
  using Type = obs::JsonValue::Type;
  switch (v.type) {
    case Type::kNull: w.null(); break;
    case Type::kBool: w.value(v.bool_v); break;
    case Type::kNumber: w.value(v.num_v); break;
    case Type::kString: w.value(v.str_v); break;
    case Type::kArray:
      w.beginArray();
      for (const obs::JsonValue& e : v.array_v) writeJsonValue(w, e);
      w.endArray();
      break;
    case Type::kObject:
      w.beginObject();
      for (const auto& [k, e] : v.object_v) {
        w.key(k);
        writeJsonValue(w, e);
      }
      w.endObject();
      break;
  }
}

std::uint16_t resolvePort(const CliArgs& args) {
  const std::string port_file = args.getString("port-file", "");
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    int port = 0;
    if (!(in >> port) || port <= 0 || port > 65535)
      throw Error("cannot read a port from " + port_file);
    return std::uint16_t(port);
  }
  const int port = args.getInt("port", 0);
  if (port <= 0 || port > 65535)
    throw Error("need --port or --port-file (see --help)");
  return std::uint16_t(port);
}

double numField(const obs::JsonValue& doc, const char* k, double def) {
  const obs::JsonValue* v = doc.find(k);
  return v && v->isNumber() ? v->num_v : def;
}

std::string strField(const obs::JsonValue& doc, const char* k) {
  const obs::JsonValue* v = doc.find(k);
  return v && v->isString() ? v->str_v : std::string();
}

bool boolField(const obs::JsonValue& doc, const char* k, bool def) {
  const obs::JsonValue* v = doc.find(k);
  return v && v->type == obs::JsonValue::Type::kBool ? v->bool_v : def;
}

/// Human rendering of one gpumbir.svc_stats/1 snapshot.
void printStats(const obs::JsonValue& s) {
  std::printf("uptime %.1f s, accepting %s%s\n", numField(s, "uptime_host_s", 0),
              boolField(s, "accepting", true) ? "yes" : "no",
              boolField(s, "draining", false) ? ", draining" : "");
  std::printf("queue %lld/%lld, running %lld; submitted %lld, rejected %lld, "
              "finished %lld\n",
              (long long)numField(s, "queued", 0),
              (long long)numField(s, "queue_capacity", 0),
              (long long)numField(s, "running", 0),
              (long long)numField(s, "submitted", 0),
              (long long)numField(s, "rejected", 0),
              (long long)numField(s, "finished", 0));
  if (const obs::JsonValue* by_prio = s.find("queue_depth_by_priority");
      by_prio && by_prio->isObject() && !by_prio->object_v.empty()) {
    std::printf("queued by priority:");
    for (const auto& [prio, n] : by_prio->object_v)
      std::printf(" %s:%lld", prio.c_str(), (long long)n.asNumber());
    std::printf("\n");
  }
  if (const obs::JsonValue* devices = s.find("devices");
      devices && devices->isArray()) {
    for (const obs::JsonValue& d : devices->array_v) {
      const int job = int(numField(d, "running_job", -1));
      std::printf("device %d: ", int(numField(d, "device", 0)));
      if (boolField(d, "failed", false))
        std::printf("FAILED");
      else if (job >= 0)
        std::printf("running job %d", job);
      else
        std::printf("idle");
      std::printf(", modeled clock %.3f s, det lane %d\n",
                  numField(d, "modeled_s", 0),
                  int(numField(d, "det_lane_depth", 0)));
    }
  }
  if (const obs::JsonValue* jobs = s.find("in_flight");
      jobs && jobs->isArray() && !jobs->array_v.empty()) {
    std::printf("in flight:\n");
    for (const obs::JsonValue& j : jobs->array_v) {
      std::printf("  job %d [%s] %s", int(numField(j, "job_id", -1)),
                  strField(j, "state").c_str(), strField(j, "name").c_str());
      if (!strField(j, "tenant").empty())
        std::printf(" tenant=%s", strField(j, "tenant").c_str());
      if (numField(j, "device", -1) >= 0)
        std::printf(" on device %d", int(numField(j, "device", -1)));
      std::printf(", age %.2f s", numField(j, "age_host_s", 0));
      if (j.find("deadline_remaining_ms"))
        std::printf(", deadline in %.0f ms",
                    numField(j, "deadline_remaining_ms", 0));
      std::printf("\n");
    }
  }
  if (const obs::JsonValue* flight = s.find("flight");
      flight && flight->isObject())
    std::printf("flight recorder: %lld events, %lld automatic dumps\n",
                (long long)numField(*flight, "events_recorded", 0),
                (long long)numField(*flight, "dumps", 0));
  if (const obs::JsonValue* ch = s.find("chaos");
      ch && ch->isObject() && boolField(*ch, "enabled", false))
    std::printf("chaos: watchdog %.0f ms, devices failed %lld, jobs "
                "migrated %lld\n",
                numField(*ch, "watchdog_ms", 0),
                (long long)numField(*ch, "devices_failed", 0),
                (long long)numField(*ch, "jobs_migrated", 0));
  if (const obs::JsonValue* st = s.find("store"); st && st->isObject()) {
    std::printf("store: %lld cache hits, %lld warm starts, %lld recovered "
                "jobs\n",
                (long long)numField(*st, "cache_hits", 0),
                (long long)numField(*st, "warm_starts", 0),
                (long long)numField(*st, "jobs_recovered", 0));
    if (const obs::JsonValue* tenants = st->find("tenants");
        tenants && tenants->isArray() && !tenants->array_v.empty()) {
      for (const obs::JsonValue& t : tenants->array_v)
        std::printf("  tenant %s: weight %.1f, %lld picks, served cost "
                    "%.1f\n",
                    strField(t, "tenant").c_str(), numField(t, "weight", 1),
                    (long long)numField(t, "picks", 0),
                    numField(t, "served_cost", 0));
    }
  }
}

void printJob(const svc::Client::JobInfo& info) {
  std::printf("job %d [%s] %s", info.job_id, info.state.c_str(),
              info.name.c_str());
  if (info.device >= 0) std::printf(" on device %d", info.device);
  if (info.shards > 1) std::printf(" (%d shards)", info.shards);
  if (info.migrations > 0) std::printf(" (migrated x%d)", info.migrations);
  if (info.recoveries > 0) std::printf(" (recovered x%d)", info.recoveries);
  if (info.cache_hit) std::printf(" (served from cache)");
  if (info.warm_start) std::printf(" (warm start)");
  if (info.terminal() && (info.dispatch_seq >= 0 || info.cache_hit))
    std::printf(": %s, RMSE %.1f HU in %.1f equits, modeled %.3f s",
                info.converged ? "converged" : "stopped", info.final_rmse_hu,
                info.equits, info.modeled_seconds);
  if (!info.image_hash.empty())
    std::printf(", image %s", info.image_hash.c_str());
  if (!info.error.empty()) std::printf(", error: %s", info.error.c_str());
  std::printf("\n");
}

/// Exit code for a terminal job: a job that failed (or missed its deadline)
/// must fail the invoking script, not exit 0 with the failure buried in
/// stdout. Cancellation is a requested outcome, not an error.
int terminalExit(const svc::Client::JobInfo& info) {
  return info.state == "failed" || info.state == "deadline_missed" ? 3 : 0;
}

void printChaos(const obs::JsonValue& resp) {
  std::printf("chaos %s, watchdog %.0f ms; devices failed %lld, jobs "
              "migrated %lld\n",
              boolField(resp, "enabled", false) ? "enabled" : "disabled",
              numField(resp, "watchdog_ms", 0),
              (long long)numField(resp, "devices_failed", 0),
              (long long)numField(resp, "jobs_migrated", 0));
  if (const obs::JsonValue* plan = resp.find("plan");
      plan && plan->isObject()) {
    obs::JsonWriter w;
    writeJsonValue(w, *plan);
    std::printf("plan: %s\n", w.str().c_str());
  }
}

int run(const CliArgs& args, const std::string& verb) {
  svc::Client client(resolvePort(args));

  if (verb == "ping") {
    if (!client.ping()) {
      std::fprintf(stderr, "ping failed\n");
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }

  if (verb == "submit") {
    svc::SubmitParams p;
    p.case_index = args.getInt("case", 0);
    p.algorithm = args.getString("algorithm", "gpu");
    p.max_equits = args.getDouble("max-equits", 0.0);
    if (args.has("stop-rmse"))
      p.stop_rmse_hu = args.getDouble("stop-rmse", 0.0);
    p.sv_side = args.getInt("sv-side", 0);
    p.priority = args.getInt("priority", 0);
    p.deadline_ms = args.getDouble("deadline-ms", -1.0);
    p.deterministic = args.getBool("deterministic", false);
    p.shards = args.getInt("shards", 1);
    p.shard_halo = args.getInt("shard-halo", 1);
    p.name = args.getString("name", "");
    p.tenant = args.getString("tenant", "");
    p.fault = args.getString("fault", "");
    p.bypass_cache = args.getBool("no-cache", false);
    const bool as_json = args.getBool("json", false);
    const svc::Client::SubmitResult out = client.submit(p);
    if (!out.accepted) {
      if (as_json) {
        obs::JsonWriter w;
        w.beginObject();
        w.kv("accepted", false);
        w.kv("rejected", out.rejected);
        w.kv("error", out.error);
        w.endObject();
        std::printf("%s\n", w.str().c_str());
      } else {
        std::fprintf(stderr, "%s: %s\n",
                     out.rejected ? "rejected" : "error", out.error.c_str());
      }
      return out.rejected ? 2 : 1;
    }
    // A cache hit is already terminal, so fetching its outcome never
    // blocks; for --wait the fetch is the point.
    svc::Client::JobInfo info;
    bool have_info = false;
    if (args.getBool("wait", false) || out.cache_hit) {
      info = client.result(out.job_id);
      have_info = true;
    }
    if (as_json) {
      obs::JsonWriter w;
      w.beginObject();
      w.kv("accepted", true);
      w.kv("job_id", out.job_id);
      w.kv("cache_hit", out.cache_hit);
      if (have_info) {
        w.kv("state", info.state);
        w.kv("converged", info.converged);
        w.kv("equits", info.equits);
        w.kv("final_rmse_hu", info.final_rmse_hu);
        w.kv("modeled_seconds", info.modeled_seconds);
        if (info.warm_start) w.kv("warm_start", true);
        if (info.recoveries > 0) w.kv("recoveries", info.recoveries);
        if (info.migrations > 0) w.kv("migrations", info.migrations);
        if (!info.image_hash.empty()) w.kv("image_hash", info.image_hash);
        if (!info.error.empty()) w.kv("error", info.error);
      }
      w.endObject();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf(out.cache_hit ? "served from cache: job %d\n"
                                : "accepted job %d\n",
                  out.job_id);
      if (have_info) printJob(info);
    }
    return have_info ? terminalExit(info) : 0;
  }

  if (verb == "status") {
    if (args.has("job")) {
      printJob(client.jobStatus(args.getInt("job", -1)));
      return 0;
    }
    const svc::Client::ServerStatus s = client.serverStatus();
    std::printf("devices %d, queue %d/%d, running %d, accepting %s\n"
                "submitted %lld, rejected %lld, finished %lld\n",
                s.num_devices, s.queued, s.queue_capacity, s.running,
                s.accepting ? "yes" : "no", (long long)s.submitted,
                (long long)s.rejected, (long long)s.finished);
    return 0;
  }

  if (verb == "result") {
    if (!args.has("job")) throw Error("result needs --job");
    const svc::Client::JobInfo info = client.result(args.getInt("job", -1));
    printJob(info);
    return terminalExit(info);
  }

  if (verb == "cancel") {
    if (!args.has("job")) throw Error("cancel needs --job");
    const bool did = client.cancel(args.getInt("job", -1));
    std::printf(did ? "cancelled\n" : "already terminal\n");
    return 0;
  }

  if (verb == "stats") {
    const bool as_json = args.getBool("json", false);
    const bool watch = args.getBool("watch", false);
    const int interval_ms = args.getInt("interval-ms", 1000);
    ShutdownSignal& shutdown = ShutdownSignal::instance();
    while (true) {
      const obs::JsonValue stats = client.stats();
      if (as_json) {
        obs::JsonWriter w;
        writeJsonValue(w, stats);
        std::printf("%s\n", w.str().c_str());
      } else {
        if (watch) std::printf("\033[2J\033[H");  // clear, home
        printStats(stats);
      }
      std::fflush(stdout);
      if (!watch) break;
      if (shutdown.waitFor(std::chrono::milliseconds(interval_ms))) break;
    }
    return 0;
  }

  if (verb == "flight") {
    const obs::JsonValue dump = client.flight("reconctl flight");
    obs::JsonWriter w;
    writeJsonValue(w, dump);
    const std::string out_path = args.getString("out", "");
    if (out_path.empty()) {
      std::printf("%s\n", w.str().c_str());
    } else {
      std::ofstream out(out_path, std::ios::binary);
      out << w.str() << '\n';
      if (!out.good()) throw Error("failed writing " + out_path);
      std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
  }

  if (verb == "chaos") {
    if (args.has("seed")) {
      chaos::FaultPlan plan;
      plan.seed = std::uint64_t(args.getInt("seed", 0));
      plan.launch_fault_rate = args.getDouble("launch-rate", 0.0);
      plan.stall_rate = args.getDouble("stall-rate", 0.0);
      plan.death_rate = args.getDouble("death-rate", 0.0);
      const std::string devices = args.getString("devices", "");
      for (std::size_t i = 0; i < devices.size();) {
        const std::size_t comma = devices.find(',', i);
        const std::string tok =
            devices.substr(i, comma == std::string::npos ? comma : comma - i);
        if (!tok.empty()) plan.target_devices.push_back(std::stoi(tok));
        if (comma == std::string::npos) break;
        i = comma + 1;
      }
      printChaos(client.chaos(plan, args.getDouble("watchdog-ms", 1000.0)));
    } else {
      printChaos(client.chaos());
    }
    return 0;
  }

  if (verb == "drain") {
    const obs::JsonValue report = client.drain();
    auto count = [&](const char* k) {
      const obs::JsonValue* v = report.find(k);
      return v && v->isNumber() ? (long long)v->num_v : 0ll;
    };
    std::printf("drained: %lld submitted / %lld rejected; %lld done, "
                "%lld cancelled, %lld failed, %lld deadline-missed\n",
                count("jobs_submitted"), count("admission_rejected"),
                count("jobs_done"), count("jobs_cancelled"),
                count("jobs_failed"), count("jobs_deadline_missed"));
    const std::string out_path = args.getString("out", "");
    if (!out_path.empty()) {
      obs::JsonWriter w;
      writeJsonValue(w, report);
      std::ofstream out(out_path, std::ios::binary);
      out << w.str() << '\n';
      if (!out.good()) throw Error("failed writing " + out_path);
      std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
  }

  std::fprintf(stderr,
               "unknown verb '%s' "
               "(ping|submit|status|result|cancel|stats|flight|chaos|drain)\n",
               verb.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("port", "server port on 127.0.0.1", "");
  args.describe("port-file", "read the port from this file instead", "");
  args.describe("case", "submit: case index to reconstruct", "0");
  args.describe("algorithm", "submit: gpu|seq|psv", "gpu");
  args.describe("max-equits", "submit: equit budget (0 = server default)",
                "0");
  args.describe("stop-rmse", "submit: RMSE stop threshold override (HU)", "");
  args.describe("sv-side", "submit: SV side override (0 = server default)",
                "0");
  args.describe("priority", "submit: higher runs first", "0");
  args.describe("deadline-ms", "submit: fail fast if not started in time",
                "-1");
  args.describe("deterministic", "submit: FIFO round-robin lane", "false");
  args.describe("shards", "submit: slab-shard the job over this many devices "
                "(gang dispatch; priority lane only)", "1");
  args.describe("shard-halo", "submit: halo rows exchanged per iteration", "1");
  args.describe("name", "submit: job label", "");
  args.describe("tenant", "submit: tenant label for per-tenant metrics", "");
  args.describe("fault", "submit: forced chaos fault (launch@N|stall@N|death)",
                "");
  args.describe("wait", "submit: block until the job finishes", "false");
  args.describe("no-cache", "submit: bypass the result cache", "false");
  args.describe("job", "status/result/cancel: job id", "");
  args.describe("watch", "stats: refresh until interrupted", "false");
  args.describe("interval-ms", "stats --watch: refresh period", "1000");
  args.describe("json", "stats/submit: print a JSON document instead of "
                "prose", "false");
  args.describe("out", "drain/flight: write the JSON document here", "");
  args.describe("seed", "chaos: install a plan with this seed", "");
  args.describe("launch-rate", "chaos: per-job corrupted-launch rate", "0");
  args.describe("stall-rate", "chaos: per-job device-stall rate", "0");
  args.describe("death-rate", "chaos: per-job device-death rate", "0");
  args.describe("devices", "chaos: target devices, comma-separated "
                "(empty = all)", "");
  args.describe("watchdog-ms", "chaos: heartbeat watchdog limit", "1000");
  if (args.helpRequested("Control a running recon_server (gpumbir.svc/1)."))
    return 0;
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: reconctl "
                 "<ping|submit|status|result|cancel|stats|flight|chaos|drain> "
                 "--port N [options]\n");
    return 1;
  }
  try {
    return run(args, args.positional().front());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "reconctl: %s\n", e.what());
    return 1;
  }
}
