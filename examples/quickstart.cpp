// Quickstart: simulate a CT scan of the Shepp-Logan phantom and reconstruct
// it three ways — FBP (direct method), sequential ICD MBIR (reference), and
// GPU-ICD MBIR (the paper's algorithm on the simulated Titan X) — reporting
// image quality and modeled runtime for each.
//
//   ./quickstart [--size 128] [--views 180] [--channels 256] [--dose 2e5]
#include <cstdio>

#include "core/cli.h"
#include "core/timer.h"
#include "geom/fbp.h"
#include "icd/convergence.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size (pixels per side)", "128");
  args.describe("views", "number of view angles", "180");
  args.describe("channels", "detector channels", "256");
  args.describe("dose", "incident photons per measurement", "2e5");
  if (args.helpRequested("Reconstruct a Shepp-Logan scan with FBP, sequential ICD, and GPU-ICD."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 128);
  cfg.geometry.num_views = args.getInt("views", 180);
  cfg.geometry.num_channels = args.getInt("channels", 256);
  cfg.noise.i0 = args.getDouble("dose", 2e5);

  std::printf("Simulating scanner: %dx%d image, %d views, %d channels, I0=%.0f\n",
              cfg.geometry.image_size, cfg.geometry.image_size,
              cfg.geometry.num_views, cfg.geometry.num_channels, cfg.noise.i0);

  WallTimer setup_timer;
  Suite suite(cfg);
  OwnedProblem problem = suite.makeSheppLoganCase();
  std::printf("System matrix: %zu nonzeros (%.1f MB), built in %.2fs\n",
              suite.matrix().nnz(), double(suite.matrix().nnz()) * 4e-6,
              setup_timer.seconds());

  // Ground truth and golden reference.
  const Image2D& truth = problem.scan().ground_truth;
  std::printf("Computing 40-equit golden image (sequential ICD)...\n");
  const Image2D golden = computeGolden(problem);
  std::printf("  golden vs ground truth: %.1f HU RMSE (noise + modeling floor)\n",
              rmseHu(golden, truth));

  // 1) FBP — the direct method MBIR is contrasted against.
  const Image2D fbp = fbpReconstruct(problem.scan().y, problem.geometry());
  std::printf("\nFBP:             RMSE vs golden %7.1f HU (direct method)\n",
              rmseHu(fbp, golden));

  // 2) Sequential ICD to the paper's 10 HU criterion.
  RunConfig seq_cfg;
  seq_cfg.algorithm = Algorithm::kSequentialIcd;
  RunResult seq = reconstruct(problem, golden, seq_cfg);
  std::printf("Sequential ICD:  RMSE %7.1f HU in %.1f equits, modeled %8.2f s (1 core)\n",
              seq.final_rmse_hu, seq.equits, seq.modeled_seconds);

  // 3) PSV-ICD, the multicore baseline (modeled on a 16-core Xeon).
  RunConfig psv_cfg;
  psv_cfg.algorithm = Algorithm::kPsvIcd;
  RunResult psv = reconstruct(problem, golden, psv_cfg);
  std::printf("PSV-ICD:         RMSE %7.1f HU in %.1f equits, modeled %8.4f s (16-core Xeon)\n",
              psv.final_rmse_hu, psv.equits, psv.modeled_seconds);

  // 4) GPU-ICD with the paper's Table 1 parameters.
  RunConfig gpu_cfg;
  gpu_cfg.algorithm = Algorithm::kGpuIcd;
  RunResult gpu = reconstruct(problem, golden, gpu_cfg);
  std::printf("GPU-ICD:         RMSE %7.1f HU in %.1f equits, modeled %8.4f s (Titan X)\n",
              gpu.final_rmse_hu, gpu.equits, gpu.modeled_seconds);
  if (gpu.modeled_seconds > 0.0)
    std::printf("\nModeled speedups: GPU-ICD %.0fx over sequential, %.2fx over PSV-ICD\n",
                seq.modeled_seconds / gpu.modeled_seconds,
                psv.modeled_seconds / gpu.modeled_seconds);

  std::printf("converged: seq=%s psv=%s gpu=%s\n", seq.converged ? "yes" : "no",
              psv.converged ? "yes" : "no", gpu.converged ? "yes" : "no");
  return (seq.converged && psv.converged && gpu.converged) ? 0 : 1;
}
