// Parameter auto-tuning — the paper's §8 future work ("we plan to build a
// model that automatically selects input-specific high performing parameter
// values"), realized here as a measured coordinate-descent search over
// GPU-ICD's tunables on the target image.
//
// The paper observes (§5.2) that the best parameter values differ across
// images; this tool finds good values for one image and prints them in the
// form GpuTunables accepts.
//
//   ./autotune [--size 128] [--case 0] [--rounds 2]
#include <cstdio>
#include <vector>

#include "core/cli.h"
#include "core/table.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

using namespace mbir;

namespace {

double measure(const OwnedProblem& problem, const Image2D& golden,
               const GpuTunables& tunables) {
  RunConfig rc;
  rc.algorithm = Algorithm::kGpuIcd;
  rc.gpu.tunables = tunables;
  const RunResult r = reconstruct(problem, golden, rc);
  return r.converged ? r.modeled_seconds : 1e30;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size", "128");
  args.describe("case", "baggage case index", "0");
  args.describe("rounds", "coordinate-descent passes", "2");
  if (args.helpRequested(
          "Auto-tune GPU-ICD parameters for one image (paper §8 future work)."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 128);
  Suite suite(cfg);
  const OwnedProblem problem = suite.makeCase(args.getInt("case", 0));
  const Image2D golden = computeGolden(problem);

  GpuTunables best;  // paper Table 1 defaults as the starting point
  best.sv.sv_side = 33;
  double best_time = measure(problem, golden, best);
  std::printf("starting point (paper Table 1 values): %.4fs\n", best_time);

  struct Axis {
    const char* name;
    std::vector<int> values;
    void (*set)(GpuTunables&, int);
  };
  const Axis axes[] = {
      {"sv_side", {17, 25, 33, 41},
       [](GpuTunables& t, int v) { t.sv.sv_side = v; }},
      {"chunk_width", {16, 32, 64},
       [](GpuTunables& t, int v) { t.chunk_width = v; }},
      {"threadblocks_per_sv", {16, 32, 40, 64},
       [](GpuTunables& t, int v) { t.threadblocks_per_sv = v; }},
      {"threads_per_block", {128, 256, 384},
       [](GpuTunables& t, int v) { t.threads_per_block = v; }},
      {"svs_per_batch", {8, 16, 32, 64},
       [](GpuTunables& t, int v) { t.svs_per_batch = v; }},
  };

  AsciiTable trace({"round", "axis", "value", "modeled time (s)", "kept"});
  const int rounds = args.getInt("rounds", 2);
  for (int round = 1; round <= rounds; ++round) {
    for (const Axis& axis : axes) {
      for (int v : axis.values) {
        GpuTunables candidate = best;
        axis.set(candidate, v);
        const double t = measure(problem, golden, candidate);
        const bool keep = t < best_time;
        trace.addRow({AsciiTable::fmt(round), axis.name, AsciiTable::fmt(v),
                      AsciiTable::fmt(t, 4), keep ? "yes" : ""});
        if (keep) {
          best = candidate;
          best_time = t;
        }
      }
    }
  }

  std::printf("\n%s\n", trace.render().c_str());
  std::printf("tuned configuration (%.4fs modeled):\n", best_time);
  std::printf("  sv_side=%d chunk_width=%d threadblocks_per_sv=%d "
              "threads_per_block=%d svs_per_batch=%d\n",
              best.sv.sv_side, best.chunk_width, best.threadblocks_per_sv,
              best.threads_per_block, best.svs_per_batch);
  return 0;
}
