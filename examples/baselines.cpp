// Reconstruction-method shoot-out — the paper's §7 taxonomy on one scan:
// FBP (direct), SIRT and ART (non-regularized iterative), and MBIR via
// GPU-ICD (regularized iterative). Reports artifact RMSE in flat regions
// and writes each reconstruction as a 16-bit PGM for visual inspection.
//
//   ./baselines [--size 128] [--views 60] [--case 2] [--save-images]
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "geom/fbp.h"
#include "io/image_io.h"
#include "iter/art.h"
#include "iter/sirt.h"
#include "recon/metrics.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size", "128");
  args.describe("views", "number of views (sparse by default)", "60");
  args.describe("case", "baggage case index", "2");
  args.describe("save-images", "write PGM files of every reconstruction", "off");
  args.describe("sigma", "q-GGMRF sigma_x (1/mm); sparse views want stronger "
                "regularization than the 8e-4 dense-view default", "2e-4");
  if (args.helpRequested("Compare FBP, SIRT, ART and MBIR on one scan."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 128);
  cfg.geometry.num_views = args.getInt("views", 60);
  cfg.prior.sigma_x = args.getDouble("sigma", 2e-4);
  Suite suite(cfg);
  const OwnedProblem problem = suite.makeCase(args.getInt("case", 2));
  const SystemMatrix& A = problem.matrix();
  const Sinogram& y = problem.scan().y;
  const Image2D& truth = problem.scan().ground_truth;

  const bool save = args.getBool("save-images", false);
  AsciiTable t({"method", "class (paper §7)", "artifact RMSE (HU)", "notes"});

  const Image2D fbp = fbpReconstruct(y, problem.geometry());
  t.addRow({"FBP", "direct", AsciiTable::fmt(flatRegionRmseHu(fbp, truth), 1),
            "one shot; streaks at sparse views"});

  SirtOptions sirt_opt;
  sirt_opt.iterations = 60;
  const Image2D sirt = sirtReconstruct(A, y, sirt_opt);
  t.addRow({"SIRT", "iterative, non-regularized",
            AsciiTable::fmt(flatRegionRmseHu(sirt, truth), 1),
            "60 iterations; stopping time, no convergence criterion"});

  ArtOptions art_opt;
  art_opt.sweeps = 8;
  const Image2D art = artReconstruct(A, y, art_opt);
  t.addRow({"ART (Kaczmarz)", "iterative, non-regularized",
            AsciiTable::fmt(flatRegionRmseHu(art, truth), 1),
            "8 randomized sweeps"});

  const Image2D golden = computeGolden(problem, 30.0);
  RunConfig rc;
  rc.algorithm = Algorithm::kGpuIcd;
  const RunResult mbir = reconstruct(problem, golden, rc);
  t.addRow({"MBIR (GPU-ICD)", "iterative, regularized",
            AsciiTable::fmt(flatRegionRmseHu(mbir.image, truth), 1),
            std::string("converged in ") + AsciiTable::fmt(mbir.equits, 1) +
                " equits"});

  std::printf("%s\n", t.render().c_str());

  if (save) {
    writePgm(truth, "truth.pgm");
    writePgm(fbp, "fbp.pgm");
    writePgm(sirt, "sirt.pgm");
    writePgm(art, "art.pgm");
    writePgm(mbir.image, "mbir.pgm");
    writeSinogramPgm(y, "sinogram.pgm");
    std::printf("wrote truth/fbp/sirt/art/mbir.pgm and sinogram.pgm\n");
  }
  return 0;
}
