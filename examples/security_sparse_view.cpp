// Sparse-view security scan — the workload class the paper's introduction
// motivates (transportation security / explosive detection, §1, §7).
//
// Scans a randomly-generated baggage slice at a decreasing number of views
// and reconstructs with FBP (direct method) and GPU-ICD MBIR. Sparse-view
// acquisitions are where regularized iterative reconstruction pays off:
// FBP develops streak artifacts while MBIR degrades gracefully — exactly
// the regime the paper's §7 notes ordered-subset methods cannot serve.
//
//   ./security_sparse_view [--size 128] [--case 3] [--dose 2e5]
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "geom/fbp.h"
#include "icd/convergence.h"
#include "phantom/baggage.h"
#include "recon/metrics.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size", "128");
  args.describe("case", "baggage case index", "3");
  args.describe("dose", "incident photons per measurement", "2e5");
  if (args.helpRequested(
          "Sparse-view baggage CT: FBP vs GPU-ICD MBIR as views decrease."))
    return 0;

  const int size = args.getInt("size", 128);
  const int case_index = args.getInt("case", 3);

  // Artifact RMSE: flat (uniform-material) regions of the ground truth,
  // where sparse-view streaks appear; full-image RMSE would mostly measure
  // edge anti-aliasing (see recon/metrics.h).
  AsciiTable t({"views", "FBP artifact RMSE (HU)", "MBIR artifact RMSE (HU)",
                "MBIR advantage", "MBIR modeled time (s)"});

  for (int views : {180, 90, 45, 24}) {
    SuiteConfig cfg;
    cfg.geometry.image_size = size;
    cfg.geometry.num_views = views;
    cfg.geometry.num_channels = 256;
    cfg.noise.i0 = args.getDouble("dose", 2e5);
    Suite suite(cfg);
    const OwnedProblem problem = suite.makeCase(case_index);
    const Image2D& truth = problem.scan().ground_truth;

    const Image2D fbp = fbpReconstruct(problem.scan().y, problem.geometry());

    // MBIR quality is measured against ground truth here (not the golden):
    // sparse-view is an image-quality story, not a convergence-speed one.
    RunConfig rc;
    rc.algorithm = Algorithm::kGpuIcd;
    rc.stop_rmse_hu = 10.0;
    const Image2D golden = computeGolden(problem, 30.0);
    const RunResult mbir = reconstruct(problem, golden, rc);

    const double fbp_rmse = flatRegionRmseHu(fbp, truth);
    const double mbir_rmse = flatRegionRmseHu(mbir.image, truth);
    t.addRow({AsciiTable::fmt(views), AsciiTable::fmt(fbp_rmse, 1),
              AsciiTable::fmt(mbir_rmse, 1),
              AsciiTable::fmt(fbp_rmse / mbir_rmse, 2) + "x",
              AsciiTable::fmt(mbir.modeled_seconds, 4)});
    std::printf("[%3d views] FBP %.1f HU, MBIR %.1f HU\n", views, fbp_rmse,
                mbir_rmse);
  }

  std::printf("\n%s\n", t.render().c_str());
  std::printf("MBIR's advantage grows as views drop — the sparse-view regime "
              "of security and NDE scanning (paper §7).\n");
  return 0;
}
