// Batch service: run a queue of heterogeneous reconstruction jobs through
// sched::BatchScheduler across several simulated devices, with a shared
// observability session — the pattern a hospital/checkpoint deployment
// would use to saturate a multi-GPU box with independent slices.
//
// Demonstrates: submit/future/cancel, per-device modeled timelines in one
// Perfetto trace (each device renders as its own "process"), the aggregate
// throughput report, and the determinism contract (the batch result is
// bit-identical to running the jobs one by one).
//
//   ./batch_service [--size 96] [--views 135] [--channels 192]
//                   [--jobs 6] [--devices 2]
#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.h"
#include "obs/obs.h"
#include "recon/suite.h"
#include "sched/scheduler.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size (pixels per side)", "96");
  args.describe("views", "number of view angles", "135");
  args.describe("channels", "detector channels", "192");
  args.describe("jobs", "number of queued reconstructions", "6");
  args.describe("devices", "simulated device count", "2");
  if (args.helpRequested(
          "Batch reconstruction service over multi-device gsim."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 96);
  cfg.geometry.num_views = args.getInt("views", 135);
  cfg.geometry.num_channels = args.getInt("channels", 192);
  const int num_jobs = args.getInt("jobs", 6);
  const int num_devices = args.getInt("devices", 2);

  std::printf("Building %d-case suite (%dx%d, %d views)...\n", num_jobs,
              cfg.geometry.image_size, cfg.geometry.image_size,
              cfg.geometry.num_views);
  Suite suite(cfg);
  std::vector<OwnedProblem> problems;
  std::vector<Image2D> goldens;
  for (int i = 0; i < num_jobs; ++i) {
    problems.push_back(suite.makeCase(i));
    goldens.push_back(computeGolden(problems.back()));
  }

  // One observability session for the whole batch: every device shows up as
  // its own modeled-clock process in the trace, and sched.* metrics
  // aggregate queue waits and completions across devices.
  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs_cfg.trace = true;
  obs::Recorder recorder(obs_cfg);

  sched::SchedulerOptions opt;
  opt.num_devices = num_devices;
  opt.recorder = &recorder;
  sched::BatchScheduler scheduler(opt);

  // Heterogeneous queue: mostly GPU-ICD jobs at different tunables, with a
  // sequential reference run mixed in.
  for (int i = 0; i < num_jobs; ++i) {
    RunConfig rc;
    if (i % 3 == 2) {
      rc.algorithm = Algorithm::kSequentialIcd;
      rc.max_equits = 8.0;
    } else {
      rc.algorithm = Algorithm::kGpuIcd;
      rc.gpu.tunables.sv.sv_side = (i % 2 == 0) ? 17 : 25;
    }
    const int id = scheduler.submit(problems[std::size_t(i)],
                                    goldens[std::size_t(i)], rc,
                                    "slice" + std::to_string(i));
    std::printf("  queued job %d (%s) -> device %d\n", id,
                algorithmName(rc.algorithm), id % num_devices);
  }

  const sched::BatchReport& rep = scheduler.runAll();

  std::printf("\nPer-job outcomes:\n");
  for (int i = 0; i < scheduler.jobCount(); ++i) {
    const sched::JobResult& r = scheduler.result(i);
    std::printf(
        "  job %d on device %d: %s, RMSE %.1f HU in %.1f equits, "
        "modeled %.3fs after %.3fs queue wait\n",
        r.job_id, r.device, r.run.converged ? "converged" : "stopped",
        r.run.final_rmse_hu, r.run.equits, r.run.modeled_seconds,
        r.queue_wait_modeled_s);
  }

  std::printf("\nBatch: %d jobs (%d converged) on %d devices\n",
              rep.jobs_total, rep.jobs_converged, num_devices);
  std::printf("  host wall          %.2f s (%.2f jobs/s)\n", rep.host_seconds,
              rep.jobs_per_host_second);
  std::printf("  modeled makespan   %.3f s (sum over devices %.3f s)\n",
              rep.makespan_modeled_s, rep.modeled_device_seconds_total);
  std::printf("  modeled queue wait %.3f s mean, %.3f s max\n",
              rep.queue_wait_mean_s, rep.queue_wait_max_s);

  recorder.trace().writeFile("batch_trace.json");
  scheduler.writeReportJson("batch_report.json");
  std::printf(
      "\nWrote batch_trace.json (open at ui.perfetto.dev — one process per "
      "device)\nand batch_report.json (schema gpumbir.batch_report/1).\n");
  return rep.jobs_failed == 0 ? 0 : 1;
}
