// Online reconstruction service demo: an in-process svc::Server on a
// loopback port, driven through the real wire protocol by svc::Client —
// the same path recon_server/reconctl use, in one binary so the whole
// acceptance story is reproducible with no shell plumbing.
//
// The demo walks the service's load-bearing behaviors in order:
//   1. Mixed-priority online dispatch: concurrent submissions race in over
//      2 simulated devices and the priority lane orders the backlog.
//   2. Admission control: the queue bound fills and further submits are
//      rejected explicitly (backpressure, not unbounded queueing).
//   3. Deadlines: an expired queued job is failed fast, never run.
//   4. Deterministic lane: deterministic submissions reproduce
//      sched::BatchScheduler::runAll bit-for-bit (image hashes compared).
//   5. Graceful drain: the svc_report/1 summary + Perfetto trace land on
//      disk with every thread joined.
//
//   ./batch_service [--size 64] [--views 96] [--channels 128]
//                   [--jobs 8] [--devices 2] [--queue-cap 4]
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.h"
#include "core/hash.h"
#include "obs/obs.h"
#include "recon/case_library.h"
#include "sched/scheduler.h"
#include "svc/client.h"
#include "svc/server.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size (pixels per side)", "64");
  args.describe("views", "number of view angles", "96");
  args.describe("channels", "detector channels", "128");
  args.describe("jobs", "concurrent mixed-priority submissions", "8");
  args.describe("devices", "simulated device count", "2");
  args.describe("queue-cap", "admission queue bound", "4");
  if (args.helpRequested(
          "Online reconstruction service demo (gpumbir.svc/1 over loopback)."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 64);
  cfg.geometry.num_views = args.getInt("views", 96);
  cfg.geometry.num_channels = args.getInt("channels", 128);
  const int num_jobs = args.getInt("jobs", 8);
  const int num_devices = args.getInt("devices", 2);
  const int queue_cap = args.getInt("queue-cap", 4);

  std::printf("Preparing case library (%dx%d, %d views)...\n",
              cfg.geometry.image_size, cfg.geometry.image_size,
              cfg.geometry.num_views);
  CaseLibrary library(cfg, /*golden_equits=*/12.0);
  svc::CaseLibraryJobSource source(library);

  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs_cfg.trace = true;
  obs::Recorder recorder(obs_cfg);

  svc::ServerOptions opt;
  opt.dispatch.num_devices = num_devices;
  opt.dispatch.queue_capacity = queue_cap;
  opt.dispatch.recorder = &recorder;
  opt.base_config.algorithm = Algorithm::kGpuIcd;
  opt.base_config.max_equits = 6.0;
  svc::Server server(opt, source);
  std::printf("Service up on 127.0.0.1:%u (%d devices, queue cap %d)\n\n",
              unsigned(server.port()), num_devices, queue_cap);

  // --- 1. Concurrent mixed-priority submissions over the wire. -----------
  std::printf("Phase 1: %d concurrent mixed-priority submissions\n",
              num_jobs);
  std::vector<int> accepted_ids;
  {
    std::vector<std::thread> submitters;
    std::vector<svc::Client::SubmitResult> outcomes(
        static_cast<std::size_t>(num_jobs));
    for (int i = 0; i < num_jobs; ++i) {
      submitters.emplace_back([&, i] {
        svc::Client client(server.port());
        svc::SubmitParams p;
        p.case_index = i % 4;
        p.priority = i % 3;  // mixed priorities
        p.name = "wave" + std::to_string(i);
        outcomes[std::size_t(i)] = client.submit(p);
      });
    }
    for (std::thread& t : submitters) t.join();
    int rejected = 0;
    for (const auto& o : outcomes)
      if (o.accepted)
        accepted_ids.push_back(o.job_id);
      else
        ++rejected;
    std::printf("  accepted %zu, rejected %d (queue cap %d + %d devices "
                "absorb the burst)\n",
                accepted_ids.size(), rejected, queue_cap, num_devices);
  }

  svc::Client client(server.port());
  for (int id : accepted_ids) {
    const svc::Client::JobInfo info = client.result(id);
    std::printf("  job %d [%s] on device %d: RMSE %.1f HU, %.1f equits\n",
                info.job_id, info.state.c_str(), info.device,
                info.final_rmse_hu, info.equits);
  }

  // --- 2. Admission overflow: flood an idle-but-small queue. -------------
  std::printf("\nPhase 2: admission control at queue cap %d\n", queue_cap);
  {
    int accepted = 0, rejected = 0;
    std::vector<int> flood_ids;
    for (int i = 0; i < queue_cap + num_devices + 4; ++i) {
      svc::SubmitParams p;
      p.case_index = 0;
      p.name = "flood" + std::to_string(i);
      const auto o = client.submit(p);
      if (o.accepted) {
        ++accepted;
        flood_ids.push_back(o.job_id);
      } else {
        ++rejected;
        std::printf("  rejected: %s\n", o.error.c_str());
        break;  // one observed rejection is the point
      }
    }
    std::printf("  accepted %d before backpressure\n", accepted);
    for (int id : flood_ids) client.result(id);  // let the flood finish
  }

  // --- 3. Deadline fail-fast. --------------------------------------------
  std::printf("\nPhase 3: deadline expiry\n");
  {
    // A 0 ms deadline job behind a real one: expired at dispatch, never run.
    svc::SubmitParams blocker;
    blocker.case_index = 0;
    blocker.name = "blocker";
    std::vector<int> blocker_ids;
    for (int d = 0; d < num_devices; ++d)
      blocker_ids.push_back(client.submit(blocker).job_id);
    svc::SubmitParams late;
    late.case_index = 1;
    late.deadline_ms = 0.0;
    late.name = "late";
    const int late_id = client.submit(late).job_id;
    for (int id : blocker_ids) client.result(id);
    const svc::Client::JobInfo info = client.result(late_id);
    std::printf("  job '%s' -> %s (service time %.3f s)\n",
                info.name.c_str(), info.state.c_str(), info.service_host_s);
  }

  // --- 4. Deterministic lane vs offline batch scheduler. -----------------
  std::printf("\nPhase 4: deterministic lane == BatchScheduler::runAll\n");
  {
    const int det_jobs = 4;
    std::vector<int> det_ids;
    for (int i = 0; i < det_jobs; ++i) {
      svc::SubmitParams p;
      p.case_index = i;
      p.deterministic = true;
      p.name = "det" + std::to_string(i);
      det_ids.push_back(client.submit(p).job_id);
    }
    std::vector<std::string> svc_hashes;
    for (int id : det_ids)
      svc_hashes.push_back(client.result(id).image_hash);

    sched::SchedulerOptions soff;
    soff.num_devices = num_devices;
    sched::BatchScheduler offline(soff);
    for (int i = 0; i < det_jobs; ++i) {
      const CaseLibrary::Case c = library.get(i);
      svc::SubmitParams p;
      p.case_index = i;
      offline.submit(c.problem, c.golden,
                     svc::makeRunConfig(opt.base_config, p));
    }
    offline.runAll();
    bool all_match = true;
    for (int i = 0; i < det_jobs; ++i) {
      const std::string off_hash =
          hashToHex(fnv1a64(offline.result(i).run.image.flat()));
      const bool match = off_hash == svc_hashes[std::size_t(i)];
      all_match = all_match && match;
      std::printf("  det job %d: svc %s, offline %s%s\n", i,
                  svc_hashes[std::size_t(i)].c_str(), off_hash.c_str(),
                  match ? "" : "  <-- MISMATCH");
    }
    if (!all_match) {
      std::fprintf(stderr, "deterministic lane diverged from runAll\n");
      return 1;
    }
    std::printf("  bit-identical across the online/offline split\n");
  }

  // --- 5. Graceful drain + artifacts. ------------------------------------
  std::printf("\nPhase 5: drain\n");
  client.drain();
  server.dispatcher().writeReportJson("svc_report.json");
  recorder.trace().writeFile("svc_trace.json");
  server.stop();
  const svc::SvcReport& rep = server.dispatcher().drain();  // cached report
  std::printf("  %llu submitted / %llu rejected; %llu done, %llu "
              "deadline-missed; makespan %.3f modeled s\n",
              (unsigned long long)rep.jobs_submitted,
              (unsigned long long)rep.admission_rejected,
              (unsigned long long)rep.jobs_done,
              (unsigned long long)rep.jobs_deadline_missed,
              rep.makespan_modeled_s);
  std::printf("\nWrote svc_report.json (schema gpumbir.svc_report/1) and "
              "svc_trace.json\n(open at ui.perfetto.dev — one process per "
              "device).\n");
  return rep.jobs_failed == 0 ? 0 : 1;
}
