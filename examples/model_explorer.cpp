// Model explorer: run one GPU-ICD reconstruction and dump the simulated
// Titan X's per-kernel accounting — modeled time, occupancy, bottleneck
// path, and achieved bandwidths (the quantities the paper reports in §5.3).
//
//   ./model_explorer [--size 128] [--views 180] [--channels 256]
//                    [--sv-side 33] [--chunk-width 32] [--tb-per-sv 40]
//                    [--threads 256] [--batch 32]
#include <cstdio>

#include "core/cli.h"
#include "gsim/timing.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"

using namespace mbir;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  args.describe("size", "image size", "128");
  args.describe("views", "view angles", "180");
  args.describe("channels", "detector channels", "256");
  args.describe("sv-side", "SuperVoxel side", "33");
  args.describe("chunk-width", "chunk width W", "32");
  args.describe("tb-per-sv", "threadblocks per SV", "40");
  args.describe("threads", "threads per block", "256");
  args.describe("batch", "SVs per batch", "32");
  if (args.helpRequested("Dump GPU-ICD's simulated per-kernel performance model."))
    return 0;

  SuiteConfig cfg;
  cfg.geometry.image_size = args.getInt("size", 128);
  cfg.geometry.num_views = args.getInt("views", 180);
  cfg.geometry.num_channels = args.getInt("channels", 256);
  Suite suite(cfg);
  OwnedProblem problem = suite.makeCase(0);
  const Image2D golden = computeGolden(problem);

  RunConfig rc;
  rc.algorithm = Algorithm::kGpuIcd;
  rc.gpu.tunables.sv.sv_side = args.getInt("sv-side", 33);
  rc.gpu.tunables.chunk_width = args.getInt("chunk-width", 32);
  rc.gpu.tunables.threadblocks_per_sv = args.getInt("tb-per-sv", 40);
  rc.gpu.tunables.threads_per_block = args.getInt("threads", 256);
  rc.gpu.tunables.svs_per_batch = args.getInt("batch", 32);
  RunResult r = reconstruct(problem, golden, rc);

  std::printf("converged=%s equits=%.2f rmse=%.1fHU modeled=%.4fs (%.4fs/equit)\n\n",
              r.converged ? "yes" : "no", r.equits, r.final_rmse_hu,
              r.modeled_seconds,
              r.equits > 0 ? r.modeled_seconds / r.equits : 0.0);

  const GpuRunStats& g = *r.gpu_stats;
  std::printf("%-16s %9s %8s %12s %10s %10s %10s %10s\n", "kernel", "launches",
              "sec", "sec/launch", "svb GB", "A GB", "smem GB", "atomics M");
  for (const auto& [name, t] : g.per_kernel) {
    std::printf("%-16s %9d %8.4f %12.6f %10.3f %10.3f %10.3f %10.2f\n",
                name.c_str(), t.launches, t.seconds,
                t.seconds / std::max(1, t.launches),
                t.stats.svb_access_bytes * 1e-9,
                t.stats.amatrix_access_bytes * 1e-9, t.stats.smem_bytes * 1e-9,
                t.stats.atomic_ops * 1e-6);
  }

  const auto bw = gsim::bandwidthReport(g.kernel_stats, g.modeled_seconds);
  std::printf("\nachieved bandwidths over the run: tex %.0f GB/s (hit %.1f%%), "
              "L2 %.0f GB/s, smem %.0f GB/s, dram %.0f GB/s, total %.0f GB/s\n",
              bw.tex_gbs, bw.tex_hit_rate * 100.0, bw.l2_gbs, bw.smem_gbs,
              bw.dram_gbs, bw.total_gbs);
  std::printf("batches skipped by threshold: %d; kernels launched: %d\n",
              g.batches_skipped_by_threshold, g.kernels_launched);
  return 0;
}
