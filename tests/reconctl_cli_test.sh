#!/usr/bin/env bash
# Exit-code contract test for reconctl against a live recon_server:
#
#   0  verb succeeded (submit --wait / result: job done or cancelled)
#   1  transport or server error (refused connection, ok:false response)
#   2  admission rejection (not exercised here: needs a saturated queue)
#   3  submit --wait / result: job terminated failed or deadline-missed
#
# Also asserts the server's own exit code: nonzero when any job failed.
#
#   usage: reconctl_cli_test.sh <path-to-reconctl> <path-to-recon_server>
set -u

RECONCTL="${1:?usage: reconctl_cli_test.sh <reconctl> <recon_server>}"
RECON_SERVER="${2:?usage: reconctl_cli_test.sh <reconctl> <recon_server>}"

TMP="$(mktemp -d)"
SERVER_PID=""
FAILURES=0

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

expect_exit() { # expect_exit <want> <description> <command...>
  local want="$1" desc="$2"
  shift 2
  "$@" >"$TMP/out" 2>"$TMP/err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: exit $got, want $want"
    sed 's/^/  | /' "$TMP/out" "$TMP/err"
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $desc (exit $got)"
  fi
}

# A refused connection is a transport error, not a silent success.
expect_exit 1 "ping with nothing listening" "$RECONCTL" ping --port 1

# Tiny cases and a small budget keep every job sub-second. No chaos flags:
# the watchdog starts disarmed, which the forced-stall refusal relies on.
"$RECON_SERVER" --devices 2 --size 32 --views 48 --channels 64 \
  --golden-equits 4 --max-equits 3 --port-file "$TMP/port" \
  --report "$TMP/svc_report.json" >"$TMP/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -s "$TMP/port" ] && break
  sleep 0.1
done
if [ ! -s "$TMP/port" ]; then
  echo "FAIL: server never wrote its port file"
  cat "$TMP/server.log"
  exit 1
fi
PORT_ARGS=(--port-file "$TMP/port")

expect_exit 0 "ping live server" "$RECONCTL" ping "${PORT_ARGS[@]}"
expect_exit 0 "clean submit --wait" \
  "$RECONCTL" submit "${PORT_ARGS[@]}" --case 0 --wait
expect_exit 1 "status for unknown job" \
  "$RECONCTL" status "${PORT_ARGS[@]}" --job 999
expect_exit 1 "malformed fault spec" \
  "$RECONCTL" submit "${PORT_ARGS[@]}" --fault explode@now
expect_exit 1 "forced stall with disarmed watchdog" \
  "$RECONCTL" submit "${PORT_ARGS[@]}" --fault stall@0
expect_exit 3 "launch-faulted submit --wait" \
  "$RECONCTL" submit "${PORT_ARGS[@]}" --fault launch@1 --wait
expect_exit 0 "chaos verb arms the watchdog" \
  "$RECONCTL" chaos "${PORT_ARGS[@]}" --seed 7 --watchdog-ms 500
expect_exit 0 "chaos verb reads back" "$RECONCTL" chaos "${PORT_ARGS[@]}"
expect_exit 0 "forced stall migrates once armed" \
  "$RECONCTL" submit "${PORT_ARGS[@]}" --fault stall@1 --deterministic --wait
expect_exit 0 "drain" \
  "$RECONCTL" drain "${PORT_ARGS[@]}" --out "$TMP/report.json"

# The launch-faulted job failed, so the server itself must exit nonzero —
# a soak driver can trust the process status alone.
wait "$SERVER_PID"
SERVER_EXIT=$?
SERVER_PID=""
if [ "$SERVER_EXIT" -ne 1 ]; then
  echo "FAIL: server exit $SERVER_EXIT, want 1 (one failed job)"
  cat "$TMP/server.log"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: server exits 1 after a failed job"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES failure(s)"
  exit 1
fi
echo "all reconctl CLI exit-code checks passed"
