// Unit tests for the core module: RNG, statistics, thread pool, aligned
// buffers, 2D views, tables, CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>

#include "core/aligned.h"
#include "core/cli.h"
#include "core/error.h"
#include "core/hounsfield.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "core/view2d.h"

namespace mbir {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(9);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng r(10);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(7), 7u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(12);
  EXPECT_THROW(r.below(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatches) {
  Rng r(14);
  for (double mean : {0.5, 4.0, 30.0, 500.0}) {
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) acc += double(r.poisson(mean));
    EXPECT_NEAR(acc / n, mean, std::max(0.1, mean * 0.05)) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng r(15);
  EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, PermutationIsValid) {
  Rng r(16);
  auto p = r.permutation(100);
  std::set<int> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng a(20);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RunningStats, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, GeomeanOfPowers) {
  RunningStats s;
  s.add(1.0);
  s.add(4.0);
  s.add(16.0);
  EXPECT_NEAR(s.geomean(), 4.0, 1e-12);
}

TEST(RunningStats, GeomeanRejectsNonPositive) {
  RunningStats s;
  s.add(1.0);
  s.add(0.0);
  EXPECT_THROW(s.geomean(), Error);
}

TEST(RunningStats, EmptyMeanThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), Error);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallelFor(0, 100, [&](int i) { hits[std::size_t(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallelFor(5, 5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(0, 10,
                       [&](int i) {
                         if (i == 3) throw Error("boom");
                       }),
      Error);
}

TEST(ThreadPool, ParallelForWithGrain) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallelFor(0, 1000, [&](int i) { sum += i; }, 16);
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { done++; });
  pool.wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, SubmittedTaskExceptionRethrownByWait) {
  // A throwing submit()ed task used to escape workerLoop and call
  // std::terminate; it must instead be stashed and rethrown by wait(),
  // with sibling tasks still completing.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&, i] {
      if (i == 3) throw Error("planted submit failure");
      done++;
    });
  EXPECT_THROW(pool.wait(), Error);
  EXPECT_EQ(done.load(), 7);
}

TEST(ThreadPool, WaitOnErrorBreaksBlockedGangPeer) {
  // A gang task that dies before a rendezvous must not leave its peer
  // blocked forever: wait(on_error) wakes as soon as the error is stashed
  // and lets the caller abort the rendezvous the dead task will never
  // reach (the shard runner's cancelled-between-halo-phases case). Without
  // the early wake this test deadlocks.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.submit([] { throw Error("gang member died"); });
  pool.submit([&] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  EXPECT_THROW(pool.wait([&] {
    {
      std::lock_guard lock(mu);
      release = true;
    }
    cv.notify_all();
  }),
               Error);
}

TEST(ThreadPool, PoolUsableAfterTaskException) {
  // The error is cleared once rethrown: later batches start clean and a
  // clean wait() does not replay the old exception.
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait(), Error);

  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) pool.submit([&] { done++; });
  pool.wait();  // must not throw
  EXPECT_EQ(done.load(), 4);
}

TEST(ThreadPool, FirstSubmitExceptionWinsOthersSwallowed) {
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i)
    pool.submit([] { throw Error("planted"); });
  EXPECT_THROW(pool.wait(), Error);
  pool.wait();  // all tasks drained; only one exception surfaced
}

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer<float> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kDefaultAlignment, 0u);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(AlignedBuffer, MovePreservesData) {
  AlignedBuffer<int> a(10);
  a[3] = 7;
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 7);
  EXPECT_EQ(b.size(), 10u);
}

TEST(AlignedBuffer, RoundUp) {
  EXPECT_EQ(roundUp(0, 32), 0u);
  EXPECT_EQ(roundUp(1, 32), 32u);
  EXPECT_EQ(roundUp(32, 32), 32u);
  EXPECT_EQ(roundUp(33, 32), 64u);
}

TEST(View2D, StridedAccess) {
  std::vector<int> data(20, 0);
  View2D<int> v(data.data(), 4, 3, 5);  // padded rows
  v(2, 1) = 42;
  EXPECT_EQ(data[2 * 5 + 1], 42);
  EXPECT_EQ(v.row(2)[1], 42);
}

TEST(View2D, AtBoundsCheck) {
  std::vector<int> data(12);
  View2D<int> v(data.data(), 3, 4);
  EXPECT_NO_THROW(v.at(2, 3));
  EXPECT_THROW(v.at(3, 0), Error);
  EXPECT_THROW(v.at(0, 4), Error);
}

TEST(AsciiTable, RenderAndCsv) {
  AsciiTable t({"a", "bb"});
  t.addRow({"1", "2"});
  t.addRow({"longer", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  const std::string path = ::testing::TempDir() + "gpumbir_table.csv";
  t.writeCsv(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

TEST(AsciiTable, RowArityChecked) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), Error);
}

TEST(CliArgs, ParsesForms) {
  // Note "--flag" is last: a bare flag followed by a non-option token would
  // consume it as a value (documented parser behaviour).
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hi", "pos", "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.getInt("alpha", 0), 3);
  EXPECT_EQ(args.getString("beta", ""), "hi");
  EXPECT_TRUE(args.getBool("flag", false));
  EXPECT_EQ(args.getInt("missing", 9), 9);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(CliArgs, BadBoolThrows) {
  const char* argv[] = {"prog", "--x", "maybe"};
  CliArgs args(3, argv);
  EXPECT_THROW(args.getBool("x", false), Error);
}

TEST(Hounsfield, RoundTrip) {
  EXPECT_NEAR(muToHu(huToMu(123.0)), 123.0, 1e-9);
  EXPECT_NEAR(muToHu(kMuWaterPerMm), 0.0, 1e-12);
  EXPECT_NEAR(huToMu(0.0), kMuWaterPerMm, 1e-15);
  EXPECT_NEAR(muToHu(0.0), -1000.0, 1e-9);
}

TEST(Check, MacroThrowsWithMessage) {
  try {
    MBIR_CHECK_MSG(1 == 2, "value=" << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

}  // namespace
}  // namespace mbir
