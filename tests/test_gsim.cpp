// Tests for the GPU execution simulator: occupancy calculator, coalescing
// transactions, timing model monotonicity, and the CPU machine models.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "core/error.h"
#include "core/thread_pool.h"
#include "gsim/cpu_model.h"
#include "gsim/device.h"
#include "gsim/executor.h"
#include "gsim/occupancy.h"
#include "gsim/timing.h"

namespace mbir::gsim {
namespace {

// ---------- occupancy ----------

TEST(Occupancy, FullWith32Regs256Threads) {
  // §4.2: 32 regs/thread at 256 threads/block reaches 100% occupancy.
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(
      dev, {.threads_per_block = 256, .regs_per_thread = 32,
            .smem_per_block_bytes = 8192});
  EXPECT_EQ(occ.blocks_per_smm, 8);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegisterLimitedWith44Regs) {
  // §4.2: the naive kernel's 44 regs/thread limits occupancy.
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(
      dev, {.threads_per_block = 256, .regs_per_thread = 44,
            .smem_per_block_bytes = 2048});
  EXPECT_STREQ(occ.limiter, "registers");
  EXPECT_LT(occ.fraction, 0.7);
  EXPECT_GT(occ.fraction, 0.4);
}

TEST(Occupancy, SmemLimited) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(
      dev, {.threads_per_block = 128, .regs_per_thread = 16,
            .smem_per_block_bytes = 40 * 1024});
  EXPECT_STREQ(occ.limiter, "shared_memory");
  EXPECT_EQ(occ.blocks_per_smm, 2);
}

TEST(Occupancy, BlockCountLimitedForTinyBlocks) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(
      dev, {.threads_per_block = 32, .regs_per_thread = 16,
            .smem_per_block_bytes = 0});
  EXPECT_STREQ(occ.limiter, "blocks");
  EXPECT_EQ(occ.blocks_per_smm, dev.max_blocks_per_smm);
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);  // 32 blocks x 32 threads / 2048
}

TEST(Occupancy, ImpossibleConfigThrows) {
  const DeviceSpec dev = titanXMaxwell();
  const KernelResources too_many_threads{.threads_per_block = 2048,
                                         .regs_per_thread = 32,
                                         .smem_per_block_bytes = 0};
  EXPECT_THROW(computeOccupancy(dev, too_many_threads), mbir::Error);
  const KernelResources too_much_smem{.threads_per_block = 256,
                                      .regs_per_thread = 32,
                                      .smem_per_block_bytes = 100 * 1024};
  EXPECT_THROW(computeOccupancy(dev, too_much_smem), mbir::Error);
}

TEST(Occupancy, ThreadsPerBlockSweepMatchesPaperShape) {
  // Fig. 7c: 256 and 64 both reach full occupancy (the paper notes 64
  // threads/block has 100% occupancy yet still performs worse, via L2
  // conflicts); 384 is slightly lower (5 blocks x 384 = 1920 / 2048).
  const DeviceSpec dev = titanXMaxwell();
  auto frac = [&](int threads) {
    return computeOccupancy(dev, {.threads_per_block = threads,
                                  .regs_per_thread = 32,
                                  .smem_per_block_bytes = std::size_t(threads) * 32})
        .fraction;
  };
  EXPECT_DOUBLE_EQ(frac(256), 1.0);
  EXPECT_LT(frac(384), 1.0);
  EXPECT_DOUBLE_EQ(frac(64), 1.0);
}

// ---------- profiler / coalescing ----------

TEST(Profiler, CoalescedWarpReadIsOneTransaction) {
  const DeviceSpec dev = titanXMaxwell();
  KernelProfiler prof(dev);
  prof.svbAccess(32, 4, /*aligned=*/true, /*as_double=*/true);
  EXPECT_DOUBLE_EQ(prof.stats().svb_access_bytes, 128.0);
  EXPECT_DOUBLE_EQ(prof.stats().svb_access_time_bytes, 128.0);
}

TEST(Profiler, UnalignedCostsOneExtraTransaction) {
  const DeviceSpec dev = titanXMaxwell();
  KernelProfiler prof(dev);
  prof.svbAccess(32, 4, /*aligned=*/false, /*as_double=*/true);
  EXPECT_DOUBLE_EQ(prof.stats().svb_access_bytes, 256.0);
}

TEST(Profiler, FloatWidthPenaltyAppliesToTimeBytesOnly) {
  const DeviceSpec dev = titanXMaxwell();
  KernelProfiler prof(dev);
  prof.svbAccess(32, 4, true, /*as_double=*/false);
  EXPECT_DOUBLE_EQ(prof.stats().svb_access_bytes, 128.0);
  EXPECT_NEAR(prof.stats().svb_access_time_bytes, 128.0 / dev.l2_float_width_factor, 1e-9);
}

TEST(Profiler, ScalarAccessIsPerElementTransactions) {
  const DeviceSpec dev = titanXMaxwell();
  KernelProfiler prof(dev);
  prof.svbScalarAccess(10, 4);
  EXPECT_DOUBLE_EQ(prof.stats().svb_access_bytes, 10.0 * 128.0);
}

TEST(Profiler, QuantizedARowIsQuarterTraffic) {
  const DeviceSpec dev = titanXMaxwell();
  KernelProfiler f(dev), q(dev);
  f.amatrixAccess(128, 4, true);  // 512B -> 4 transactions
  q.amatrixAccess(128, 1, true);  // 128B -> 1 transaction
  EXPECT_DOUBLE_EQ(f.stats().amatrix_access_bytes,
                   4.0 * q.stats().amatrix_access_bytes);
}

TEST(Profiler, AtomicConflictWeighting) {
  const DeviceSpec dev = titanXMaxwell();
  KernelProfiler prof(dev);
  prof.svbAtomic(10, 2.5);
  EXPECT_DOUBLE_EQ(prof.stats().atomic_ops, 10.0);
  EXPECT_DOUBLE_EQ(prof.stats().atomic_ops_weighted, 25.0);
  EXPECT_THROW(prof.svbAtomic(1, 0.5), mbir::Error);
}

// ---------- timing model ----------

KernelStats baseStats() {
  KernelStats s;
  s.svb_access_bytes = 1e9;
  s.svb_access_time_bytes = 1e9;
  s.amatrix_access_bytes = 5e8;
  s.flops = 1e9;
  s.grid_blocks = 10000;  // fully fills the device
  return s;
}

TEST(Timing, MoreBytesNeverFaster) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(dev, {256, 32, 0});
  KernelStats a = baseStats();
  KernelStats b = baseStats();
  b.svb_access_time_bytes *= 2.0;
  EXPECT_GE(modelKernelTime(dev, b, occ).total,
            modelKernelTime(dev, a, occ).total);
}

TEST(Timing, LowerOccupancySlower) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy full = computeOccupancy(dev, {256, 32, 0});
  const Occupancy low = computeOccupancy(dev, {256, 44, 0});
  const KernelStats s = baseStats();
  EXPECT_GT(modelKernelTime(dev, s, low).total,
            modelKernelTime(dev, s, full).total);
}

TEST(Timing, RegisterSpillSpeedupNearPaper) {
  // Table 3 row 2: occupancy via register spill gives ~1.12x.
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy full = computeOccupancy(dev, {256, 32, 0});
  const Occupancy low = computeOccupancy(dev, {256, 44, 0});
  const KernelStats s = baseStats();
  const double ratio = modelKernelTime(dev, s, low).total /
                       modelKernelTime(dev, s, full).total;
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.25);
}

TEST(Timing, SmallGridUnderfillsDevice) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(dev, {256, 32, 0});
  KernelStats s = baseStats();
  s.grid_blocks = dev.num_smm;  // 1 block per SMM out of 8 resident
  const double small = modelKernelTime(dev, s, occ).total;
  s.grid_blocks = dev.num_smm * occ.blocks_per_smm;
  const double full = modelKernelTime(dev, s, occ).total;
  EXPECT_GT(small, full * 3.0);
}

TEST(Timing, ImbalanceScalesTime) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(dev, {256, 32, 0});
  KernelStats s = baseStats();
  const double base = modelKernelTime(dev, s, occ).total;
  s.imbalance_factor = 2.0;
  EXPECT_NEAR(modelKernelTime(dev, s, occ).total,
              (base - dev.kernel_launch_us * 1e-6) * 2.0 + dev.kernel_launch_us * 1e-6,
              1e-9);
}

TEST(Timing, L2SpillRoutesToDram) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(dev, {256, 32, 0});
  KernelStats s = baseStats();
  s.l2_working_set_bytes = double(dev.l2_size_bytes) * 4.0;
  const auto t = modelKernelTime(dev, s, occ);
  EXPECT_GT(t.dram, 0.0);
  s.l2_working_set_bytes = double(dev.l2_size_bytes) / 2.0;
  EXPECT_EQ(modelKernelTime(dev, s, occ).dram, 0.0);
}

TEST(Timing, TextureVsGlobalPath) {
  const DeviceSpec dev = titanXMaxwell();
  const Occupancy occ = computeOccupancy(dev, {256, 32, 0});
  KernelStats tex = baseStats();
  tex.amatrix_via_texture = true;
  KernelStats glob = baseStats();
  glob.amatrix_via_texture = false;
  // Global path loads the shared L2 pipe, so it cannot be faster.
  EXPECT_LE(modelKernelTime(dev, tex, occ).total,
            modelKernelTime(dev, glob, occ).total);
}

TEST(Timing, BandwidthReportConsistent) {
  KernelStats s = baseStats();
  s.amatrix_unique_bytes = 1e8;
  const auto r = bandwidthReport(s, 0.01);
  EXPECT_NEAR(r.tex_gbs, 50.0, 1e-9);
  EXPECT_NEAR(r.tex_hit_rate, 1.0 - 1e8 / 5e8, 1e-12);
  EXPECT_GT(r.total_gbs, r.tex_gbs);
}

// ---------- executor ----------

TEST(Executor, RunsAllBlocksAndAggregates) {
  GpuSimulator sim;
  std::atomic<int> visited{0};  // blocks run concurrently on the host pool
  const auto report = sim.launch(
      {.name = "k", .num_blocks = 7, .resources = {256, 32, 0}},
      [&](BlockCtx& ctx) {
        ++visited;
        ctx.prof.addFlops(100.0);
      });
  EXPECT_EQ(visited.load(), 7);
  EXPECT_DOUBLE_EQ(report.stats.flops, 700.0);
  EXPECT_EQ(report.stats.grid_blocks, 7);
  EXPECT_GT(sim.totalModeledSeconds(), 0.0);
  EXPECT_EQ(sim.perKernel().at("k").launches, 1);
}

TEST(Executor, BlockCtxCarriesPerBlockProfiler) {
  // Each block reports through its own profiler; the merged report still
  // sees every block's traffic, keyed nowhere by thread identity.
  GpuSimulator sim;
  ThreadPool pool(3);
  sim.setHostPool(&pool);
  const auto report = sim.launch(
      {.name = "k", .num_blocks = 11, .resources = {256, 32, 0}},
      [&](BlockCtx& ctx) {
        ctx.prof.addFlops(double(ctx.block_idx));
        if (ctx.block_idx == 4) ctx.prof.setImbalance(3.0);
      });
  EXPECT_DOUBLE_EQ(report.stats.flops, 55.0);  // 0 + 1 + ... + 10
  EXPECT_DOUBLE_EQ(report.stats.imbalance_factor, 3.0);
}

TEST(Executor, ResetClearsTotals) {
  GpuSimulator sim;
  sim.launch({.name = "k", .num_blocks = 1, .resources = {256, 32, 0}},
             [](BlockCtx&) {});
  sim.resetTotals();
  EXPECT_DOUBLE_EQ(sim.totalModeledSeconds(), 0.0);
  EXPECT_TRUE(sim.perKernel().empty());
}

// ---------- device scaling ----------

TEST(DeviceScaling, ScalesL2AndSmm) {
  const DeviceSpec dev = titanXMaxwell();
  const DeviceSpec scaled = scaleCachesToProblem(dev, 0.25);
  EXPECT_EQ(scaled.l2_size_bytes, dev.l2_size_bytes / 4);
  EXPECT_EQ(scaled.num_smm, 6);
  EXPECT_DOUBLE_EQ(scaled.dram_bw_gbs, dev.dram_bw_gbs);
}

TEST(DeviceScaling, NeverScalesUpAndHasFloors) {
  const DeviceSpec dev = titanXMaxwell();
  EXPECT_EQ(scaleCachesToProblem(dev, 2.0).l2_size_bytes, dev.l2_size_bytes);
  EXPECT_GE(scaleCachesToProblem(dev, 1e-6).l2_size_bytes, 32u * 1024u);
  EXPECT_GE(scaleCachesToProblem(dev, 1e-6).num_smm, 2);
}

// ---------- CPU models ----------

TEST(CpuModel, WorkScalesLinearly) {
  WorkCounters w;
  w.theta_elements = 1000000;
  w.error_update_elements = 1000000;
  const CpuModel m = sequentialReference();
  const double t1 = modelSequentialCpuSeconds(w, m);
  w.theta_elements *= 2;
  w.error_update_elements *= 2;
  EXPECT_NEAR(modelSequentialCpuSeconds(w, m), 2.0 * t1, 1e-12);
}

TEST(CpuModel, CoresDivideParallelWork) {
  WorkCounters w;
  w.theta_elements = 10000000;
  w.error_update_elements = 10000000;
  CpuModel m = xeon16Core();
  m.cores = 16;
  const double t16 = modelPsvCpuSeconds(w, m);
  m.cores = 1;
  EXPECT_NEAR(modelPsvCpuSeconds(w, m), 16.0 * t16, 1e-12);
}

TEST(CpuModel, LockTimeIsSerial) {
  WorkCounters w;
  w.lock_acquisitions = 1000;
  CpuModel m = xeon16Core();
  const double t = modelPsvCpuSeconds(w, m);
  EXPECT_NEAR(t, 1000.0 * m.lock_us * 1e-6, 1e-12);
}

TEST(CpuModel, SequentialSlowerPerElementThanPsvCore) {
  // The whole point of SVBs (§2.2): cache-resident elements are much
  // cheaper than the sinusoidal DRAM walk.
  EXPECT_GT(sequentialReference().element_ns, 4.0 * xeon16Core().element_ns);
}

// KernelStats::operator+= merge semantics: traffic/work counters sum,
// whole-kernel properties AND- or max-merge (a launch is only on the
// texture path if every block is; the L2 working set and grid size are
// launch-wide maxima, not sums).
TEST(KernelStatsMerge, TrafficAndWorkCountersSum) {
  KernelStats a;
  a.svb_access_bytes = 10;
  a.svb_access_time_bytes = 11;
  a.svb_unique_bytes = 12;
  a.amatrix_access_bytes = 13;
  a.amatrix_unique_bytes = 14;
  a.desc_bytes = 15;
  a.smem_bytes = 16;
  a.flops = 17;
  a.atomic_ops = 18;
  a.atomic_ops_weighted = 19;
  a.launches = 2;
  KernelStats b;
  b.svb_access_bytes = 100;
  b.svb_access_time_bytes = 110;
  b.svb_unique_bytes = 120;
  b.amatrix_access_bytes = 130;
  b.amatrix_unique_bytes = 140;
  b.desc_bytes = 150;
  b.smem_bytes = 160;
  b.flops = 170;
  b.atomic_ops = 180;
  b.atomic_ops_weighted = 190;
  b.launches = 3;

  a += b;
  EXPECT_DOUBLE_EQ(a.svb_access_bytes, 110);
  EXPECT_DOUBLE_EQ(a.svb_access_time_bytes, 121);
  EXPECT_DOUBLE_EQ(a.svb_unique_bytes, 132);
  EXPECT_DOUBLE_EQ(a.amatrix_access_bytes, 143);
  EXPECT_DOUBLE_EQ(a.amatrix_unique_bytes, 154);
  EXPECT_DOUBLE_EQ(a.desc_bytes, 165);
  EXPECT_DOUBLE_EQ(a.smem_bytes, 176);
  EXPECT_DOUBLE_EQ(a.flops, 187);
  EXPECT_DOUBLE_EQ(a.atomic_ops, 198);
  EXPECT_DOUBLE_EQ(a.atomic_ops_weighted, 209);
  EXPECT_EQ(a.launches, 5);
}

TEST(KernelStatsMerge, TexturePathAndMerges) {
  KernelStats tex;  // defaults: amatrix_via_texture = true
  KernelStats glob;
  glob.amatrix_via_texture = false;

  KernelStats m1 = tex;
  m1 += tex;
  EXPECT_TRUE(m1.amatrix_via_texture);

  KernelStats m2 = tex;
  m2 += glob;  // any global-path block moves the launch off texture
  EXPECT_FALSE(m2.amatrix_via_texture);

  KernelStats m3 = glob;
  m3 += tex;  // ...regardless of merge order
  EXPECT_FALSE(m3.amatrix_via_texture);
}

TEST(KernelStatsMerge, LaunchWidePropertiesMaxMerge) {
  KernelStats a;
  a.l2_working_set_bytes = 1000;
  a.imbalance_factor = 1.5;
  a.grid_blocks = 40;
  KernelStats b;
  b.l2_working_set_bytes = 500;
  b.imbalance_factor = 2.5;
  b.grid_blocks = 80;

  KernelStats ab = a;
  ab += b;
  EXPECT_DOUBLE_EQ(ab.l2_working_set_bytes, 1000);
  EXPECT_DOUBLE_EQ(ab.imbalance_factor, 2.5);
  EXPECT_EQ(ab.grid_blocks, 80);

  KernelStats ba = b;  // max-merge is symmetric
  ba += a;
  EXPECT_DOUBLE_EQ(ba.l2_working_set_bytes, 1000);
  EXPECT_DOUBLE_EQ(ba.imbalance_factor, 2.5);
  EXPECT_EQ(ba.grid_blocks, 80);
}

TEST(KernelStatsMerge, MergeWithDefaultIsIdentityForCounters) {
  KernelStats a;
  a.svb_access_bytes = 7;
  a.flops = 9;
  a.imbalance_factor = 1.25;
  a.grid_blocks = 3;
  a.launches = 1;
  KernelStats merged = a;
  merged += KernelStats{};
  EXPECT_DOUBLE_EQ(merged.svb_access_bytes, 7);
  EXPECT_DOUBLE_EQ(merged.flops, 9);
  EXPECT_TRUE(merged.amatrix_via_texture);
  EXPECT_DOUBLE_EQ(merged.imbalance_factor, 1.25);
  EXPECT_EQ(merged.grid_blocks, 3);
  EXPECT_EQ(merged.launches, 1);
}

}  // namespace
}  // namespace mbir::gsim
