// Tests for the §4.1 chunk decomposition and §4.3.1 A-matrix quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "sv/chunks.h"
#include "sv/supervoxel.h"
#include "sv/svb.h"
#include "test_util.h"

namespace mbir {
namespace {

class ChunkFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::tinyGeometry();
    A_ = test::cachedMatrix(g_);
    grid_ = std::make_unique<SvGrid>(
        g_.image_size, SvGridOptions{.sv_side = 8, .boundary_overlap = 1});
  }
  ChunkPlan makePlan(int sv_id, int width, bool quantize, SvbPlan& plan_out) {
    plan_out = SvbPlan(g_, grid_->sv(sv_id));
    return ChunkPlan(*A_, plan_out,
                     ChunkPlanOptions{.chunk_width = width, .quantize = quantize});
  }
  ParallelBeamGeometry g_;
  std::shared_ptr<const SystemMatrix> A_;
  std::unique_ptr<SvGrid> grid_;
};

TEST_F(ChunkFixture, ChunksCoverEveryRunExactlyOnce) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = false});
  const SuperVoxel& sv = grid_->sv(5);
  for (int k = 0; k < sv.numVoxels(); ++k) {
    const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
    std::vector<int> covered(std::size_t(g_.num_views), 0);
    for (const ChunkDesc& d : cp.chunksOf(k)) {
      EXPECT_EQ(d.local_voxel, k);
      for (int i = 0; i < d.nrows; ++i) {
        const int v = d.view0 + i;
        covered[std::size_t(v)]++;
        // The voxel's window fits inside the chunk's column range.
        const auto& r = A_->run(voxel, v);
        ASSERT_GT(int(r.count), 0);
        const int ws = int(r.first_channel) - plan.lo(v);
        EXPECT_GE(ws, d.base);
        EXPECT_LE(ws + int(r.count), d.base + cp.chunkWidth());
      }
    }
    for (int v = 0; v < g_.num_views; ++v) {
      const int expect = A_->run(voxel, v).count > 0 ? 1 : 0;
      EXPECT_EQ(covered[std::size_t(v)], expect) << "voxel " << voxel << " view " << v;
    }
  }
}

TEST_F(ChunkFixture, FloatChunksReproduceAExactly) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = false});
  const SuperVoxel& sv = grid_->sv(5);
  for (int k = 0; k < sv.numVoxels(); k += 3) {
    const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
    for (const ChunkDesc& d : cp.chunksOf(k)) {
      for (int i = 0; i < d.nrows; ++i) {
        const int v = d.view0 + i;
        const auto& r = A_->run(voxel, v);
        const auto aw = A_->weights(voxel, v);
        const int ws = int(r.first_channel) - plan.lo(v);
        for (int kk = 0; kk < int(r.count); ++kk)
          EXPECT_FLOAT_EQ(cp.aValue(d, i, ws + kk - d.base), aw[std::size_t(kk)]);
      }
    }
  }
}

TEST_F(ChunkFixture, PaddingIsZero) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = false});
  const SuperVoxel& sv = grid_->sv(5);
  for (int k = 0; k < sv.numVoxels(); k += 7) {
    const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
    for (const ChunkDesc& d : cp.chunksOf(k)) {
      for (int i = 0; i < d.nrows; ++i) {
        const auto& r = A_->run(voxel, d.view0 + i);
        const int ws = int(r.first_channel) - plan.lo(d.view0 + i);
        for (int c = 0; c < cp.chunkWidth(); ++c) {
          const int col = d.base + c;
          if (col < ws || col >= ws + int(r.count))
            EXPECT_EQ(cp.aValue(d, i, c), 0.0f);
        }
      }
    }
  }
}

TEST_F(ChunkFixture, QuantizationErrorBounded) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = true});
  const SuperVoxel& sv = grid_->sv(5);
  for (int k = 0; k < sv.numVoxels(); k += 5) {
    const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
    const float vmax = A_->voxelMax(voxel);
    const float bound = vmax / 255.0f * 0.5f + 1e-6f;  // half an LSB
    for (const ChunkDesc& d : cp.chunksOf(k)) {
      for (int i = 0; i < d.nrows; ++i) {
        const int v = d.view0 + i;
        const auto& r = A_->run(voxel, v);
        const auto aw = A_->weights(voxel, v);
        const int ws = int(r.first_channel) - plan.lo(v);
        for (int kk = 0; kk < int(r.count); ++kk) {
          const float err =
              std::abs(cp.aValue(d, i, ws + kk - d.base) - aw[std::size_t(kk)]);
          EXPECT_LE(err, bound);
        }
      }
    }
  }
}

TEST_F(ChunkFixture, QuantizedScaleIsVoxelMaxOver255) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = true});
  const SuperVoxel& sv = grid_->sv(5);
  for (int k = 0; k < sv.numVoxels(); k += 9) {
    const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
    EXPECT_FLOAT_EQ(cp.scaleOf(k), A_->voxelMax(voxel) / 255.0f);
  }
}

TEST_F(ChunkFixture, MaxEntryQuantizesTo255) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = true});
  // The voxel's largest A entry must dequantize to ~vmax (255 * scale).
  const SuperVoxel& sv = grid_->sv(5);
  const int k = sv.numVoxels() / 2;
  const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
  float best = 0.0f;
  for (const ChunkDesc& d : cp.chunksOf(k))
    for (int i = 0; i < d.nrows; ++i)
      for (int c = 0; c < cp.chunkWidth(); ++c)
        best = std::max(best, cp.aValue(d, i, c));
  EXPECT_NEAR(best, A_->voxelMax(voxel), A_->voxelMax(voxel) * 0.003f);
}

class ChunkWidthParam : public ::testing::TestWithParam<int> {};

TEST_P(ChunkWidthParam, PaddingRatioAtLeastOne) {
  const auto g = test::tinyGeometry();
  auto A = test::cachedMatrix(g);
  SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  SvbPlan plan(g, grid.sv(5));
  const ChunkPlan cp(*A, plan, {.chunk_width = GetParam(), .quantize = true});
  EXPECT_GE(cp.paddingRatio(), 1.0);
  EXPECT_GT(cp.numChunks(), 0u);
  EXPECT_EQ(cp.totalDataElements() % std::size_t(GetParam()), 0u);
  // The SVB must be readable across every chunk window.
  EXPECT_GE(plan.paddedWidth(), GetParam());
}

TEST_P(ChunkWidthParam, WiderChunksMeanFewerChunks) {
  const auto g = test::tinyGeometry();
  auto A = test::cachedMatrix(g);
  SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  SvbPlan p1(g, grid.sv(5)), p2(g, grid.sv(5));
  const ChunkPlan narrow(*A, p1, {.chunk_width = GetParam(), .quantize = true});
  const ChunkPlan wide(*A, p2, {.chunk_width = GetParam() * 2, .quantize = true});
  EXPECT_LE(wide.numChunks(), narrow.numChunks());
}

INSTANTIATE_TEST_SUITE_P(Widths, ChunkWidthParam, ::testing::Values(8, 16, 24, 32, 64));

TEST_F(ChunkFixture, TooNarrowWidthThrows) {
  SvbPlan plan(g_, grid_->sv(5));
  EXPECT_THROW(
      ChunkPlan(*A_, plan, {.chunk_width = 1, .quantize = false}), Error);
}

TEST_F(ChunkFixture, TrueNnzMatchesMatrix) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 16, .quantize = false});
  const SuperVoxel& sv = grid_->sv(5);
  std::size_t nnz = 0;
  for (int k = 0; k < sv.numVoxels(); ++k) {
    const std::size_t voxel = std::size_t(sv.voxelAt(k, g_.image_size));
    for (int v = 0; v < g_.num_views; ++v) nnz += A_->run(voxel, v).count;
  }
  EXPECT_EQ(cp.trueNnz(), nnz);
}

TEST_F(ChunkFixture, AlignedFractionHighForWarpWidth) {
  SvbPlan plan(g_, grid_->sv(5));
  const ChunkPlan cp(*A_, plan, {.chunk_width = 32, .quantize = true});
  EXPECT_GT(cp.alignedFraction(), 0.9);
}

}  // namespace
}  // namespace mbir
