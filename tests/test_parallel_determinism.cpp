// Determinism of host-parallel simulated kernel execution: the gsim
// executor and GPU-ICD must produce bit-identical functional results,
// KernelStats, and modeled seconds for any host thread count, and the
// chunk-plan LRU cache must be a pure wall-clock optimization.
#include <gtest/gtest.h>

#include <cstring>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "gpuicd/gpu_icd.h"
#include "gsim/executor.h"
#include "obs/obs.h"
#include "sv/svb.h"
#include "test_support.h"

namespace mbir {
namespace {

using test::expectStatsBitIdentical;

// ---------- executor ----------

gsim::LaunchReport launchWithPool(ThreadPool* pool) {
  gsim::GpuSimulator sim;
  sim.setHostPool(pool);
  return sim.launch(
      {.name = "k", .num_blocks = 29, .resources = {256, 32, 0}},
      [](gsim::BlockCtx& ctx) {
        // Block-dependent accounting exercises the ordered per-block merge
        // (floating-point sums would differ under any reordering).
        ctx.prof.addFlops(1.0 / double(ctx.block_idx + 1));
        ctx.prof.svbAccess(7 + ctx.block_idx % 5, 4, ctx.block_idx % 2 == 0,
                           false);
        ctx.prof.svbAtomic(ctx.block_idx, 1.0 + 0.1 * double(ctx.block_idx));
        if (ctx.block_idx == 17) ctx.prof.setImbalance(2.5);
        ctx.prof.setL2WorkingSet(double(ctx.block_idx) * 100.0);
      });
}

TEST(ExecutorDeterminism, ReportInvariantToHostThreadCount) {
  ThreadPool p1(1), p2(2), p4(4);
  const auto r1 = launchWithPool(&p1);
  const auto r2 = launchWithPool(&p2);
  const auto r4 = launchWithPool(&p4);
  expectStatsBitIdentical(r1.stats, r2.stats);
  expectStatsBitIdentical(r1.stats, r4.stats);
  EXPECT_EQ(r1.time.total, r2.time.total);
  EXPECT_EQ(r1.time.total, r4.time.total);
}

TEST(ExecutorDeterminism, RepeatedLaunchIsBitIdentical) {
  ThreadPool pool(4);
  const auto a = launchWithPool(&pool);
  const auto b = launchWithPool(&pool);
  expectStatsBitIdentical(a.stats, b.stats);
  EXPECT_EQ(a.time.total, b.time.total);
}

// ---------- Svb striped writeback ----------

TEST(SvbStriped, StripeUnionEqualsFullApply) {
  const auto g = test::tinyGeometry();
  const SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  const SvbPlan plan(g, grid.sv(6));

  Sinogram global(g);
  Rng rng(11);
  for (float& v : global.flat()) v = float(rng.uniform());

  Svb svb(plan, SvbLayout::kPadded);
  svb.gather(global);
  Svb orig(plan, SvbLayout::kPadded);
  std::memcpy(orig.raw().data(), svb.raw().data(),
              svb.raw().size() * sizeof(float));
  for (int v = 0; v < plan.numViews(); ++v)
    for (int c = 0; c < plan.width(v); ++c)
      svb.rowData(v)[c] += float(v) * 0.25f + float(c);

  Sinogram full = global;
  svb.applyDeltaTo(full, orig);

  const int stripes = 5;
  Sinogram striped = global;
  for (int s = 0; s < stripes; ++s) svb.applyDeltaTo(striped, orig, s, stripes);

  EXPECT_EQ(0, std::memcmp(full.flat().data(), striped.flat().data(),
                           full.flat().size() * sizeof(float)));
}

// ---------- GPU-ICD ----------

GpuRunStats runGpuWith(ThreadPool* pool, int chunk_cache_capacity, Image2D& x,
                       int iterations = 3, obs::Recorder* recorder = nullptr) {
  const OwnedProblem& problem = test::tinyProblem();
  GpuIcdOptions opt = test::tinyGpuOptions();
  opt.max_iterations = iterations;
  opt.host_pool = pool;
  opt.chunk_cache_capacity = chunk_cache_capacity;
  opt.recorder = recorder;
  x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  GpuIcd icd(problem.view(), opt);
  return icd.run(x, e);
}

using test::expectGpuRunsBitIdentical;

TEST(GpuIcdDeterminism, BitIdenticalAcrossThreadCounts) {
  ThreadPool p1(1), p2(2), p4(4);
  Image2D x1, x2, x4;
  const auto s1 = runGpuWith(&p1, 128, x1);
  const auto s2 = runGpuWith(&p2, 128, x2);
  const auto s4 = runGpuWith(&p4, 128, x4);
  ASSERT_GT(s1.work.voxel_updates, 0u);
  expectGpuRunsBitIdentical(s1, x1, s2, x2);
  expectGpuRunsBitIdentical(s1, x1, s4, x4);
}

TEST(GpuIcdDeterminism, SerialPoolMatchesGlobalPool) {
  ThreadPool p1(1);
  Image2D xs, xg;
  const auto ss = runGpuWith(&p1, 128, xs);
  const auto sg = runGpuWith(nullptr, 128, xg);  // process-wide pool
  expectGpuRunsBitIdentical(ss, xs, sg, xg);
}

TEST(GpuIcdDeterminism, ChunkCacheIsPureOptimization) {
  ThreadPool p2(2);
  Image2D xc, xn;
  const auto cached = runGpuWith(&p2, 128, xc);
  const auto uncached = runGpuWith(&p2, 0, xn);
  expectGpuRunsBitIdentical(cached, xc, uncached, xn);
  // Iteration 1 visits every SV, so by iteration 2 the top-fraction
  // selection must re-use cached plans.
  EXPECT_GT(cached.chunk_cache_hits, 0u);
  EXPECT_EQ(uncached.chunk_cache_hits, 0u);
  EXPECT_GT(uncached.chunk_cache_misses, cached.chunk_cache_misses);
}

TEST(GpuIcdDeterminism, TinyCacheCapacityStillCorrect) {
  // Capacity below the batch size: the cache must pin the live batch and
  // still produce identical results.
  ThreadPool p2(2);
  Image2D xa, xb;
  const auto a = runGpuWith(&p2, 1, xa);
  const auto b = runGpuWith(&p2, 128, xb);
  expectGpuRunsBitIdentical(a, xa, b, xb);
}

// ---------- observability is purely observational ----------

TEST(GpuIcdDeterminism, ObservabilityDoesNotPerturbResults) {
  // Full tracing + metrics (including per-block spans, the most invasive
  // option) must leave images, stats, and modeled seconds bit-identical to
  // an uninstrumented run, for any host thread count.
  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  ocfg.trace = true;
  ocfg.block_spans = true;

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    Image2D x_plain, x_obs;
    const auto plain = runGpuWith(&pool, 128, x_plain);
    obs::Recorder rec(ocfg);
    const auto observed = runGpuWith(&pool, 128, x_obs, 3, &rec);
    expectGpuRunsBitIdentical(plain, x_plain, observed, x_obs);
    EXPECT_EQ(plain.chunk_cache_hits, observed.chunk_cache_hits);
    EXPECT_EQ(plain.chunk_cache_misses, observed.chunk_cache_misses);
    // ...and the recorder did actually observe the run.
    EXPECT_GT(rec.metrics().counterValue("gsim.launch.count"), 0u);
    EXPECT_GT(rec.metrics().counterValue("gpuicd.chunk_cache.hits"), 0u);
    EXPECT_GT(rec.trace().size(), 0u);
  }
}

TEST(GpuIcdDeterminism, RecorderSeesSameCountsForAnyThreadCount) {
  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  Image2D x1, x4;
  ThreadPool p1(1), p4(4);
  obs::Recorder r1(ocfg), r4(ocfg);
  runGpuWith(&p1, 128, x1, 3, &r1);
  runGpuWith(&p4, 128, x4, 3, &r4);
  for (const char* name :
       {"gsim.launch.count", "gsim.launch.blocks", "gsim.launch.flops",
        "gsim.launch.svb_access_bytes", "gpuicd.chunk_cache.hits",
        "gpuicd.chunk_cache.misses", "gpuicd.batch.count",
        "gpuicd.iteration.count"}) {
    EXPECT_EQ(r1.metrics().counterValue(name), r4.metrics().counterValue(name))
        << name;
  }
}

}  // namespace
}  // namespace mbir
