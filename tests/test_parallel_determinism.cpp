// Determinism of host-parallel simulated kernel execution: the gsim
// executor and GPU-ICD must produce bit-identical functional results,
// KernelStats, and modeled seconds for any host thread count, and the
// chunk-plan LRU cache must be a pure wall-clock optimization.
#include <gtest/gtest.h>

#include <cstring>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "gpuicd/gpu_icd.h"
#include "gsim/executor.h"
#include "obs/obs.h"
#include "sv/svb.h"
#include "test_util.h"

namespace mbir {
namespace {

void expectStatsBitIdentical(const gsim::KernelStats& a,
                             const gsim::KernelStats& b) {
  EXPECT_EQ(a.svb_access_bytes, b.svb_access_bytes);
  EXPECT_EQ(a.svb_access_time_bytes, b.svb_access_time_bytes);
  EXPECT_EQ(a.svb_unique_bytes, b.svb_unique_bytes);
  EXPECT_EQ(a.amatrix_access_bytes, b.amatrix_access_bytes);
  EXPECT_EQ(a.amatrix_unique_bytes, b.amatrix_unique_bytes);
  EXPECT_EQ(a.amatrix_via_texture, b.amatrix_via_texture);
  EXPECT_EQ(a.desc_bytes, b.desc_bytes);
  EXPECT_EQ(a.smem_bytes, b.smem_bytes);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.atomic_ops, b.atomic_ops);
  EXPECT_EQ(a.atomic_ops_weighted, b.atomic_ops_weighted);
  EXPECT_EQ(a.l2_working_set_bytes, b.l2_working_set_bytes);
  EXPECT_EQ(a.imbalance_factor, b.imbalance_factor);
  EXPECT_EQ(a.grid_blocks, b.grid_blocks);
  EXPECT_EQ(a.launches, b.launches);
}

// ---------- executor ----------

gsim::LaunchReport launchWithPool(ThreadPool* pool) {
  gsim::GpuSimulator sim;
  sim.setHostPool(pool);
  return sim.launch(
      {.name = "k", .num_blocks = 29, .resources = {256, 32, 0}},
      [](gsim::BlockCtx& ctx) {
        // Block-dependent accounting exercises the ordered per-block merge
        // (floating-point sums would differ under any reordering).
        ctx.prof.addFlops(1.0 / double(ctx.block_idx + 1));
        ctx.prof.svbAccess(7 + ctx.block_idx % 5, 4, ctx.block_idx % 2 == 0,
                           false);
        ctx.prof.svbAtomic(ctx.block_idx, 1.0 + 0.1 * double(ctx.block_idx));
        if (ctx.block_idx == 17) ctx.prof.setImbalance(2.5);
        ctx.prof.setL2WorkingSet(double(ctx.block_idx) * 100.0);
      });
}

TEST(ExecutorDeterminism, ReportInvariantToHostThreadCount) {
  ThreadPool p1(1), p2(2), p4(4);
  const auto r1 = launchWithPool(&p1);
  const auto r2 = launchWithPool(&p2);
  const auto r4 = launchWithPool(&p4);
  expectStatsBitIdentical(r1.stats, r2.stats);
  expectStatsBitIdentical(r1.stats, r4.stats);
  EXPECT_EQ(r1.time.total, r2.time.total);
  EXPECT_EQ(r1.time.total, r4.time.total);
}

TEST(ExecutorDeterminism, RepeatedLaunchIsBitIdentical) {
  ThreadPool pool(4);
  const auto a = launchWithPool(&pool);
  const auto b = launchWithPool(&pool);
  expectStatsBitIdentical(a.stats, b.stats);
  EXPECT_EQ(a.time.total, b.time.total);
}

// ---------- Svb striped writeback ----------

TEST(SvbStriped, StripeUnionEqualsFullApply) {
  const auto g = test::tinyGeometry();
  const SvGrid grid(g.image_size, {.sv_side = 8, .boundary_overlap = 1});
  const SvbPlan plan(g, grid.sv(6));

  Sinogram global(g);
  Rng rng(11);
  for (float& v : global.flat()) v = float(rng.uniform());

  Svb svb(plan, SvbLayout::kPadded);
  svb.gather(global);
  Svb orig(plan, SvbLayout::kPadded);
  std::memcpy(orig.raw().data(), svb.raw().data(),
              svb.raw().size() * sizeof(float));
  for (int v = 0; v < plan.numViews(); ++v)
    for (int c = 0; c < plan.width(v); ++c)
      svb.rowData(v)[c] += float(v) * 0.25f + float(c);

  Sinogram full = global;
  svb.applyDeltaTo(full, orig);

  const int stripes = 5;
  Sinogram striped = global;
  for (int s = 0; s < stripes; ++s) svb.applyDeltaTo(striped, orig, s, stripes);

  EXPECT_EQ(0, std::memcmp(full.flat().data(), striped.flat().data(),
                           full.flat().size() * sizeof(float)));
}

// ---------- GPU-ICD ----------

GpuRunStats runGpuWith(ThreadPool* pool, int chunk_cache_capacity, Image2D& x,
                       int iterations = 3, obs::Recorder* recorder = nullptr) {
  const OwnedProblem& problem = test::tinyProblem();
  GpuIcdOptions opt;
  opt.tunables.sv.sv_side = 8;  // fits the 32^2 test image
  opt.device = gsim::scaleCachesToProblem(opt.device, 48.0 / 720.0);
  opt.max_iterations = iterations;
  opt.host_pool = pool;
  opt.chunk_cache_capacity = chunk_cache_capacity;
  opt.recorder = recorder;
  x = problem.fbpInitialImage();
  Sinogram e = problem.initialError(x);
  GpuIcd icd(problem.view(), opt);
  return icd.run(x, e);
}

void expectRunsBitIdentical(const GpuRunStats& sa, const Image2D& xa,
                            const GpuRunStats& sb, const Image2D& xb) {
  EXPECT_EQ(0, std::memcmp(xa.flat().data(), xb.flat().data(),
                           xa.flat().size() * sizeof(float)));
  EXPECT_EQ(sa.equits, sb.equits);
  EXPECT_EQ(sa.modeled_seconds, sb.modeled_seconds);
  EXPECT_EQ(sa.work.voxel_updates, sb.work.voxel_updates);
  EXPECT_EQ(sa.work.theta_elements, sb.work.theta_elements);
  EXPECT_EQ(sa.work.error_update_elements, sb.work.error_update_elements);
  expectStatsBitIdentical(sa.kernel_stats, sb.kernel_stats);
}

TEST(GpuIcdDeterminism, BitIdenticalAcrossThreadCounts) {
  ThreadPool p1(1), p2(2), p4(4);
  Image2D x1, x2, x4;
  const auto s1 = runGpuWith(&p1, 128, x1);
  const auto s2 = runGpuWith(&p2, 128, x2);
  const auto s4 = runGpuWith(&p4, 128, x4);
  ASSERT_GT(s1.work.voxel_updates, 0u);
  expectRunsBitIdentical(s1, x1, s2, x2);
  expectRunsBitIdentical(s1, x1, s4, x4);
}

TEST(GpuIcdDeterminism, SerialPoolMatchesGlobalPool) {
  ThreadPool p1(1);
  Image2D xs, xg;
  const auto ss = runGpuWith(&p1, 128, xs);
  const auto sg = runGpuWith(nullptr, 128, xg);  // process-wide pool
  expectRunsBitIdentical(ss, xs, sg, xg);
}

TEST(GpuIcdDeterminism, ChunkCacheIsPureOptimization) {
  ThreadPool p2(2);
  Image2D xc, xn;
  const auto cached = runGpuWith(&p2, 128, xc);
  const auto uncached = runGpuWith(&p2, 0, xn);
  expectRunsBitIdentical(cached, xc, uncached, xn);
  // Iteration 1 visits every SV, so by iteration 2 the top-fraction
  // selection must re-use cached plans.
  EXPECT_GT(cached.chunk_cache_hits, 0u);
  EXPECT_EQ(uncached.chunk_cache_hits, 0u);
  EXPECT_GT(uncached.chunk_cache_misses, cached.chunk_cache_misses);
}

TEST(GpuIcdDeterminism, TinyCacheCapacityStillCorrect) {
  // Capacity below the batch size: the cache must pin the live batch and
  // still produce identical results.
  ThreadPool p2(2);
  Image2D xa, xb;
  const auto a = runGpuWith(&p2, 1, xa);
  const auto b = runGpuWith(&p2, 128, xb);
  expectRunsBitIdentical(a, xa, b, xb);
}

// ---------- observability is purely observational ----------

TEST(GpuIcdDeterminism, ObservabilityDoesNotPerturbResults) {
  // Full tracing + metrics (including per-block spans, the most invasive
  // option) must leave images, stats, and modeled seconds bit-identical to
  // an uninstrumented run, for any host thread count.
  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  ocfg.trace = true;
  ocfg.block_spans = true;

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    Image2D x_plain, x_obs;
    const auto plain = runGpuWith(&pool, 128, x_plain);
    obs::Recorder rec(ocfg);
    const auto observed = runGpuWith(&pool, 128, x_obs, 3, &rec);
    expectRunsBitIdentical(plain, x_plain, observed, x_obs);
    EXPECT_EQ(plain.chunk_cache_hits, observed.chunk_cache_hits);
    EXPECT_EQ(plain.chunk_cache_misses, observed.chunk_cache_misses);
    // ...and the recorder did actually observe the run.
    EXPECT_GT(rec.metrics().counterValue("gsim.launch.count"), 0u);
    EXPECT_GT(rec.metrics().counterValue("gpuicd.chunk_cache.hits"), 0u);
    EXPECT_GT(rec.trace().size(), 0u);
  }
}

TEST(GpuIcdDeterminism, RecorderSeesSameCountsForAnyThreadCount) {
  obs::ObsConfig ocfg;
  ocfg.metrics = true;
  Image2D x1, x4;
  ThreadPool p1(1), p4(4);
  obs::Recorder r1(ocfg), r4(ocfg);
  runGpuWith(&p1, 128, x1, 3, &r1);
  runGpuWith(&p4, 128, x4, 3, &r4);
  for (const char* name :
       {"gsim.launch.count", "gsim.launch.blocks", "gsim.launch.flops",
        "gsim.launch.svb_access_bytes", "gpuicd.chunk_cache.hits",
        "gpuicd.chunk_cache.misses", "gpuicd.batch.count",
        "gpuicd.iteration.count"}) {
    EXPECT_EQ(r1.metrics().counterValue(name), r4.metrics().counterValue(name))
        << name;
  }
}

}  // namespace
}  // namespace mbir
