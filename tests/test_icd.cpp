// Tests for the ICD core: Algorithm 1 voxel updates, cost monotonicity,
// zero-skipping, update orders, convergence accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/hounsfield.h"
#include "core/rng.h"
#include "core/stats.h"
#include "geom/projector.h"
#include "icd/convergence.h"
#include "icd/cost.h"
#include "icd/sequential_icd.h"
#include "icd/update_order.h"
#include "icd/voxel_update.h"
#include "test_util.h"

namespace mbir {
namespace {

class IcdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    problem_ = &test::tinyProblem();
    x_ = problem_->fbpInitialImage();
    e_ = problem_->initialError(x_);
  }
  const OwnedProblem* problem_;
  Image2D x_;
  Sinogram e_;
};

TEST_F(IcdTest, ThetaMatchesBruteForce) {
  const Problem p = problem_->view();
  const std::size_t voxel = 17 * 32 + 12;
  const ThetaPair t = computeThetaGlobal(p.A, e_, p.weights, voxel);

  double t1 = 0.0, t2 = 0.0;
  p.A.forEachEntry(voxel, [&](int v, int c, float a) {
    t1 += -double(p.weights(v, c)) * double(a) * double(e_(v, c));
    t2 += double(p.weights(v, c)) * double(a) * double(a);
  });
  EXPECT_NEAR(t.theta1, t1, std::abs(t1) * 1e-12 + 1e-9);
  EXPECT_NEAR(t.theta2, t2, std::abs(t2) * 1e-12 + 1e-9);
}

TEST_F(IcdTest, Theta2NonNegative) {
  const Problem p = problem_->view();
  for (std::size_t voxel = 0; voxel < p.A.numVoxels(); voxel += 37) {
    EXPECT_GE(computeThetaGlobal(p.A, e_, p.weights, voxel).theta2, 0.0);
  }
}

TEST_F(IcdTest, UpdateMaintainsErrorSinogramInvariant) {
  // After any sequence of voxel updates, e must equal y - A x exactly
  // (within float accumulation error).
  const Problem p = problem_->view();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int row = int(rng.below(32));
    const int col = int(rng.below(32));
    updateVoxelGlobal(p, x_, e_, row, col, false);
  }
  const Sinogram fresh = errorSinogram(p.A, p.y, x_);
  double worst = 0.0;
  for (std::size_t i = 0; i < fresh.flat().size(); ++i)
    worst = std::max(worst,
                     std::abs(double(fresh.flat()[i]) - double(e_.flat()[i])));
  EXPECT_LT(worst, 2e-3);
}

TEST_F(IcdTest, SingleUpdateDecreasesCost) {
  const Problem p = problem_->view();
  const CostBreakdown before = computeCost(p, x_, e_);
  // Update a voxel well inside the object.
  updateVoxelGlobal(p, x_, e_, 16, 16, false);
  const CostBreakdown after = computeCost(p, x_, e_);
  EXPECT_LE(after.total(), before.total() + 1e-6);
}

TEST_F(IcdTest, SweepDecreasesCostMonotonically) {
  const Problem p = problem_->view();
  SequentialIcdOptions opt;
  opt.max_equits = 4;
  SequentialIcd icd(p, opt);
  double prev = computeCost(p, x_, e_).total();
  int violations = 0;
  icd.run(x_, e_, [&](const Image2D& img, const IcdRunStats&) {
    const double cost = computeCostFromScratch(p, img).total();
    if (cost > prev * (1.0 + 1e-9)) ++violations;
    prev = cost;
    return true;
  });
  EXPECT_EQ(violations, 0);
}

TEST_F(IcdTest, PositivityConstraintHolds) {
  const Problem p = problem_->view();
  SequentialIcdOptions opt;
  opt.max_equits = 2;
  SequentialIcd icd(p, opt);
  icd.run(x_, e_);
  for (float v : x_.flat()) EXPECT_GE(v, 0.0f);
}

TEST_F(IcdTest, ZeroSkipSkipsIsolatedZeros) {
  const Problem p = problem_->view();
  Image2D x(32);  // all zero
  Sinogram e = problem_->initialError(x);
  const auto r = updateVoxelGlobal(p, x, e, 16, 16, true);
  EXPECT_FALSE(r.updated);
  EXPECT_EQ(x(16, 16), 0.0f);
  // Without zero-skip the same voxel does update.
  const auto r2 = updateVoxelGlobal(p, x, e, 16, 16, false);
  EXPECT_TRUE(r2.updated);
}

TEST_F(IcdTest, AllZeroStartTerminates) {
  const Problem p = problem_->view();
  Image2D x(32);
  Sinogram e = problem_->initialError(x);
  SequentialIcdOptions opt;
  opt.max_equits = 5;
  SequentialIcd icd(p, opt);
  const auto stats = icd.run(x, e);  // everything zero-skipped
  EXPECT_EQ(stats.voxel_updates, 0u);
  EXPECT_EQ(stats.sweeps, 1);
}

TEST_F(IcdTest, ConvergesToFixpoint) {
  const Problem p = problem_->view();
  SequentialIcdOptions opt;
  opt.max_equits = 25;
  SequentialIcd icd(p, opt);
  icd.run(x_, e_);
  // At the fixpoint, further updates barely move any voxel. A handful of
  // high-contrast (metal-edge) voxels converge slowly under q-GGMRF's
  // halving surrogate steps, so bound the bulk (95th percentile) tightly
  // and the worst case loosely.
  std::vector<double> deltas;
  Image2D x2 = x_;
  Sinogram e2 = e_;
  for (int row = 0; row < 32; ++row)
    for (int col = 0; col < 32; ++col) {
      const auto r = updateVoxelGlobal(p, x2, e2, row, col, false);
      deltas.push_back(std::abs(double(r.delta)) * kHuPerMu);
    }
  EXPECT_LT(percentile(deltas, 95.0), 2.0);
  EXPECT_LT(percentile(deltas, 100.0), 60.0);
}

TEST_F(IcdTest, WorkCountersPopulated) {
  const Problem p = problem_->view();
  SequentialIcdOptions opt;
  opt.max_equits = 1;
  SequentialIcd icd(p, opt);
  const auto stats = icd.run(x_, e_);
  EXPECT_GT(stats.work.voxel_updates, 0u);
  EXPECT_GT(stats.work.theta_elements, stats.work.voxel_updates * 10);
  EXPECT_EQ(stats.work.theta_elements, stats.work.error_update_elements);
  EXPECT_GE(stats.work.voxels_visited, stats.work.voxel_updates);
}

TEST(EquitCounter, ConvertsUpdates) {
  EquitCounter c(100);
  c.addUpdates(250);
  EXPECT_DOUBLE_EQ(c.equits(), 2.5);
}

TEST(RmseHu, ScalesAttenuationDifference) {
  Image2D a(4), b(4);
  for (float& v : b.flat()) v = float(kMuWaterPerMm / 1000.0);  // 1 HU offset
  EXPECT_NEAR(rmseHu(a, b), 1.0, 1e-6);
}

// ---------- update order policies ----------

TEST(UpdateOrder, FirstIterationSelectsAll) {
  Rng rng(1);
  std::vector<double> mag(10, 0.0);
  const auto sel = selectSuperVoxels(1, 10, mag, 0.2, rng);
  EXPECT_EQ(sel.size(), 10u);
}

TEST(UpdateOrder, EvenIterationPicksTopMagnitude) {
  Rng rng(2);
  std::vector<double> mag{1, 9, 2, 8, 3, 7, 4, 6, 5, 0};
  const auto sel = selectSuperVoxels(2, 10, mag, 0.2, rng);
  ASSERT_EQ(sel.size(), 2u);
  std::set<int> s(sel.begin(), sel.end());
  EXPECT_TRUE(s.count(1));
  EXPECT_TRUE(s.count(3));
}

TEST(UpdateOrder, OddIterationIsRandomSubset) {
  Rng rng(3);
  std::vector<double> mag(20, 0.0);
  const auto sel = selectSuperVoxels(3, 20, mag, 0.25, rng);
  EXPECT_EQ(sel.size(), 5u);
  std::set<int> s(sel.begin(), sel.end());
  EXPECT_EQ(s.size(), 5u);  // distinct
  for (int i : sel) EXPECT_LT(i, 20);
}

TEST(UpdateOrder, FractionCeils) {
  std::vector<double> mag(7, 1.0);
  EXPECT_EQ(topFractionByMagnitude(mag, 0.25).size(), 2u);  // ceil(1.75)
}

TEST(UpdateOrder, RandomFractionDistinct) {
  Rng rng(4);
  const auto sel = randomFraction(50, 0.5, rng);
  std::set<int> s(sel.begin(), sel.end());
  EXPECT_EQ(s.size(), 25u);
}

// ---------- cost ----------

TEST_F(IcdTest, CostFromScratchMatchesMaintained) {
  const Problem p = problem_->view();
  const CostBreakdown a = computeCost(p, x_, e_);
  const CostBreakdown b = computeCostFromScratch(p, x_);
  EXPECT_NEAR(a.total(), b.total(), std::abs(b.total()) * 1e-4);
}

TEST_F(IcdTest, PriorEnergyZeroForFlatImage) {
  const Problem p = problem_->view();
  Image2D flat(32, 0.01f);
  const Sinogram e = problem_->initialError(flat);
  EXPECT_NEAR(computeCost(p, flat, e).prior, 0.0, 1e-12);
}

}  // namespace
}  // namespace mbir
