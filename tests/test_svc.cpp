// Integration tests for the online reconstruction service (src/svc): wire
// framing, protocol parsing, admission control, deadline fail-fast,
// priority ordering, the deterministic lane's bit-identity to the offline
// batch scheduler, cancellation, graceful drain, and malformed-frame fuzz
// over a real loopback connection.
//
// Flake resistance: anything that must observe a "busy" service first parks
// the device(s) on long blocker jobs (RMSE stop disabled, large equit cap)
// and polls status until they are actually running; blockers are then
// cancelled cooperatively to let the test finish fast. No sleeps are used
// as synchronization.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "core/error.h"
#include "core/hash.h"
#include "core/rng.h"
#include "obs/obs.h"
#include "sched/scheduler.h"
#include "svc/client.h"
#include "svc/server.h"
#include "test_support.h"

namespace mbir::test {
namespace {

using svc::Client;
using svc::SubmitParams;

/// Serves tinyProblem()/tinyGolden() for every case index (the problem is
/// identical across indices; determinism comparisons only need the configs
/// to match). Indices >= 100 throw, to exercise the server's error path.
class TinySource : public svc::JobSource {
 public:
  Case get(int case_index) override {
    if (case_index >= 100) throw Error("case index out of range");
    return Case{tinyProblem(), tinyGolden()};
  }
};

RunConfig tinyBaseConfig() {
  RunConfig cfg = tinyRunConfig(Algorithm::kGpuIcd, /*max_equits=*/3.0);
  cfg.stop_rmse_hu = 0.0;  // fixed-work jobs: budget-bound, reproducible
  return cfg;
}

struct TestService {
  explicit TestService(int devices, int queue_cap,
                       obs::Recorder* recorder = nullptr,
                       std::string flight_dir = "") {
    svc::ServerOptions opt;
    opt.dispatch.num_devices = devices;
    opt.dispatch.queue_capacity = queue_cap;
    opt.dispatch.recorder = recorder;
    opt.dispatch.flight_dir = std::move(flight_dir);
    opt.base_config = tinyBaseConfig();
    server = std::make_unique<svc::Server>(opt, source);
  }
  Client connect() { return Client(server->port()); }

  TinySource source;
  std::unique_ptr<svc::Server> server;
};

/// A job that runs until cancelled (RMSE stop off, huge budget).
SubmitParams blockerParams(const std::string& name) {
  SubmitParams p;
  p.max_equits = 10000.0;
  p.stop_rmse_hu = 0.0;
  p.name = name;
  return p;
}

/// Poll until the job reports `state` (the submit->dispatch handoff is
/// asynchronous); tight loop with a yield, bounded by the test timeout.
void awaitState(Client& client, int job_id, const std::string& state) {
  while (client.jobStatus(job_id).state != state)
    std::this_thread::yield();
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(SvcFraming, RoundTripsThroughAPipe) {
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  ASSERT_TRUE(svc::writeFrame(fds[1], R"({"x":1})"));
  ASSERT_TRUE(svc::writeFrame(fds[1], ""));  // empty payload is legal framing
  std::string payload;
  EXPECT_EQ(svc::FrameStatus::kOk, svc::readFrame(fds[0], payload));
  EXPECT_EQ(R"({"x":1})", payload);
  EXPECT_EQ(svc::FrameStatus::kOk, svc::readFrame(fds[0], payload));
  EXPECT_EQ("", payload);
  ::close(fds[1]);
  EXPECT_EQ(svc::FrameStatus::kClosed, svc::readFrame(fds[0], payload));
  ::close(fds[0]);
}

TEST(SvcFraming, TruncatedHeaderAndPayloadAreDistinguishedFromClose) {
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  // Two header bytes, then EOF: mid-header truncation.
  ASSERT_EQ(2, ::write(fds[1], "\x00\x00", 2));
  ::close(fds[1]);
  std::string payload;
  EXPECT_EQ(svc::FrameStatus::kTruncated, svc::readFrame(fds[0], payload));
  ::close(fds[0]);

  ASSERT_EQ(0, ::pipe(fds));
  // Header declares 8 bytes; only 3 arrive.
  ASSERT_EQ(4, ::write(fds[1], "\x00\x00\x00\x08", 4));
  ASSERT_EQ(3, ::write(fds[1], "abc", 3));
  ::close(fds[1]);
  EXPECT_EQ(svc::FrameStatus::kTruncated, svc::readFrame(fds[0], payload));
  ::close(fds[0]);
}

TEST(SvcFraming, OversizedDeclaredLengthIsRejectedWithoutReadingTheBody) {
  int fds[2];
  ASSERT_EQ(0, ::pipe(fds));
  const std::string frame = svc::encodeFrame("0123456789");
  ASSERT_EQ(ssize_t(frame.size()),
            ::write(fds[1], frame.data(), frame.size()));
  std::string payload;
  EXPECT_EQ(svc::FrameStatus::kOversized,
            svc::readFrame(fds[0], payload, /*max_bytes=*/4));
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(SvcProtocol, MakeRunConfigMapsAlgorithmsAndPinsPsvThreads) {
  RunConfig base = tinyBaseConfig();
  base.psv.num_threads = 8;  // a service must not inherit racy PSV

  SubmitParams p;
  p.algorithm = "psv";
  p.max_equits = 7.0;
  p.sv_side = 4;
  RunConfig cfg = svc::makeRunConfig(base, p);
  EXPECT_EQ(Algorithm::kPsvIcd, cfg.algorithm);
  EXPECT_EQ(1, cfg.psv.num_threads);
  EXPECT_DOUBLE_EQ(7.0, cfg.max_equits);
  EXPECT_EQ(4, cfg.psv.sv.sv_side);
  EXPECT_EQ(4, cfg.gpu.tunables.sv.sv_side);

  p.algorithm = "seq";
  EXPECT_EQ(Algorithm::kSequentialIcd,
            svc::makeRunConfig(base, p).algorithm);
  p.algorithm = "gpu";
  EXPECT_EQ(Algorithm::kGpuIcd, svc::makeRunConfig(base, p).algorithm);
  p.algorithm = "warp9";
  EXPECT_THROW(svc::makeRunConfig(base, p), Error);
}

TEST(SvcProtocol, RequestFieldAccessIsStrictlyTyped) {
  const svc::Request req = svc::parseRequest(
      R"({"schema":"gpumbir.svc/1","verb":"submit","case":2,)"
      R"("priority":"high"})");
  EXPECT_EQ("submit", req.verb);
  EXPECT_EQ(2, req.getInt("case", 0));
  EXPECT_EQ(5, req.getInt("absent", 5));
  EXPECT_THROW(req.getInt("priority", 0), Error);  // string, not number
  EXPECT_THROW(svc::parseRequest(R"({"verb":"submit"})"), Error);  // no schema
  EXPECT_THROW(svc::parseRequest(R"({"schema":"gpumbir.svc/2","verb":"x"})"),
               Error);
  EXPECT_THROW(svc::parseRequest("[1,2]"), Error);
  EXPECT_THROW(
      svc::parseRequest(
          R"({"schema":"gpumbir.svc/1","verb":"submit","case":2.5})")
          .getInt("case", 0),
      Error);  // non-integral int field
}

// ---------------------------------------------------------------------------
// Round trip / status / result
// ---------------------------------------------------------------------------

TEST(SvcServer, SubmitStatusResultRoundTrip) {
  TestService service(/*devices=*/1, /*queue_cap=*/4);
  Client client = service.connect();
  ASSERT_TRUE(client.ping());

  SubmitParams p;
  p.name = "hello";
  const Client::SubmitResult out = client.submit(p);
  ASSERT_TRUE(out.accepted);
  EXPECT_GE(out.job_id, 0);

  const Client::JobInfo info = client.result(out.job_id);
  EXPECT_EQ("done", info.state);
  EXPECT_EQ("hello", info.name);
  EXPECT_EQ(0, info.device);
  EXPECT_NEAR(3.0, info.equits, 1.0);
  EXPECT_GT(info.modeled_seconds, 0.0);
  EXPECT_EQ(16u, info.image_hash.size());

  // status for an unknown job is an error, not a crash.
  EXPECT_THROW(client.jobStatus(12345), Error);
  // and the reported hash matches a local reconstruction bit for bit.
  const RunResult local =
      reconstruct(tinyProblem(), tinyGolden(), tinyBaseConfig());
  EXPECT_EQ(hashToHex(fnv1a64(local.image.flat())), info.image_hash);

  const Client::ServerStatus st = client.serverStatus();
  EXPECT_EQ(1, st.num_devices);
  EXPECT_EQ(1, st.submitted);
  EXPECT_EQ(1, st.finished);
}

TEST(SvcServer, ResultCanCarryTheImageExactly) {
  TestService service(1, 4);
  Client client = service.connect();
  const int id = client.submit(SubmitParams{}).job_id;
  const Client::JobInfo info = client.result(id, /*include_image=*/true);
  ASSERT_TRUE(info.image.has_value());
  // float -> JSON double -> float must be bit-exact.
  EXPECT_EQ(info.image_hash, hashToHex(fnv1a64(info.image->flat())));
}

TEST(SvcServer, BadCaseIndexAndUnknownVerbSurfaceAsErrors) {
  TestService service(1, 4);
  Client client = service.connect();
  SubmitParams p;
  p.case_index = 100;  // TinySource throws for this
  const Client::SubmitResult out = client.submit(p);
  EXPECT_FALSE(out.accepted);
  EXPECT_FALSE(out.rejected);  // an error, not admission backpressure
  EXPECT_NE(std::string::npos, out.error.find("out of range"));

  const obs::JsonValue resp =
      client.call(R"({"schema":"gpumbir.svc/1","verb":"transmogrify"})");
  EXPECT_FALSE(resp.find("ok")->bool_v);
  ASSERT_TRUE(client.ping());  // connection survives protocol errors
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(SvcServer, AdmissionQueueOverflowRejectsExplicitly) {
  const int kQueueCap = 2;
  TestService service(/*devices=*/1, kQueueCap);
  Client client = service.connect();

  // Park the device, then fill the queue exactly to the bound.
  const int blocker = client.submit(blockerParams("blocker")).job_id;
  awaitState(client, blocker, "running");
  std::vector<int> queued;
  for (int i = 0; i < kQueueCap; ++i) {
    const auto out = client.submit(SubmitParams{});
    ASSERT_TRUE(out.accepted) << out.error;
    queued.push_back(out.job_id);
  }

  // The next submit must bounce, flagged as backpressure.
  const auto overflow = client.submit(SubmitParams{});
  EXPECT_FALSE(overflow.accepted);
  EXPECT_TRUE(overflow.rejected);
  EXPECT_NE(std::string::npos, overflow.error.find("queue full"));

  // Cancelling a queued job frees its slot immediately.
  EXPECT_TRUE(client.cancel(queued.back()));
  EXPECT_TRUE(client.submit(SubmitParams{}).accepted);

  EXPECT_TRUE(client.cancel(blocker));
  const obs::JsonValue report = client.drain();
  EXPECT_EQ(1.0, report.find("admission_rejected")->num_v);
  EXPECT_EQ(double(kQueueCap), report.find("queue_depth_max")->num_v);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(SvcServer, ExpiredDeadlineFailsFastWithoutRunning) {
  TestService service(/*devices=*/1, /*queue_cap=*/4);
  Client client = service.connect();
  const int blocker = client.submit(blockerParams("blocker")).job_id;
  awaitState(client, blocker, "running");

  SubmitParams late;
  late.deadline_ms = 0.0;  // already expired when the device frees up
  late.name = "late";
  const int late_id = client.submit(late).job_id;

  SubmitParams fine;
  fine.deadline_ms = 60000.0;  // comfortably alive
  fine.name = "fine";
  const int fine_id = client.submit(fine).job_id;

  EXPECT_TRUE(client.cancel(blocker));
  const Client::JobInfo late_info = client.result(late_id);
  EXPECT_EQ("deadline_missed", late_info.state);
  EXPECT_EQ(-1, late_info.device);          // never dispatched
  EXPECT_EQ(0.0, late_info.service_host_s); // never ran
  EXPECT_TRUE(late_info.image_hash.empty());

  const Client::JobInfo fine_info = client.result(fine_id);
  EXPECT_EQ("done", fine_info.state);

  const obs::JsonValue report = client.drain();
  EXPECT_EQ(1.0, report.find("jobs_deadline_missed")->num_v);
}

// ---------------------------------------------------------------------------
// Priority ordering
// ---------------------------------------------------------------------------

TEST(SvcServer, PriorityLaneDispatchesHighestFirstTiesInSubmitOrder) {
  TestService service(/*devices=*/1, /*queue_cap=*/8);
  Client client = service.connect();
  const int blocker = client.submit(blockerParams("blocker")).job_id;
  awaitState(client, blocker, "running");

  auto prio = [&](int priority, const std::string& name) {
    SubmitParams p;
    p.priority = priority;
    p.name = name;
    return client.submit(p).job_id;
  };
  const int low = prio(1, "low");
  const int high = prio(5, "high");
  const int mid = prio(3, "mid");
  const int high2 = prio(5, "high2");  // same priority, later submit

  EXPECT_TRUE(client.cancel(blocker));
  const int s_low = client.result(low).dispatch_seq;
  const int s_high = client.result(high).dispatch_seq;
  const int s_mid = client.result(mid).dispatch_seq;
  const int s_high2 = client.result(high2).dispatch_seq;
  EXPECT_LT(s_high, s_high2);  // tie broken by submission order
  EXPECT_LT(s_high2, s_mid);
  EXPECT_LT(s_mid, s_low);
  client.drain();
}

// ---------------------------------------------------------------------------
// Deterministic lane
// ---------------------------------------------------------------------------

TEST(SvcServer, DeterministicLaneIsBitIdenticalToBatchSchedulerRunAll) {
  const int kDevices = 2;
  const int kJobs = 4;
  TestService service(kDevices, /*queue_cap=*/8);
  Client client = service.connect();

  // Heterogeneous deterministic jobs: budgets and engines vary per job.
  std::vector<SubmitParams> specs;
  for (int i = 0; i < kJobs; ++i) {
    SubmitParams p;
    p.deterministic = true;
    p.algorithm = (i % 2 == 0) ? "gpu" : "seq";
    p.max_equits = 2.0 + i;
    p.name = "det" + std::to_string(i);
    specs.push_back(p);
  }
  std::vector<int> ids;
  for (const SubmitParams& p : specs) {
    const auto out = client.submit(p);
    ASSERT_TRUE(out.accepted) << out.error;
    ids.push_back(out.job_id);
  }
  std::vector<Client::JobInfo> online;
  for (int id : ids) online.push_back(client.result(id));

  // The same jobs through the offline scheduler at the same device count.
  sched::SchedulerOptions opt;
  opt.num_devices = kDevices;
  sched::BatchScheduler offline(opt);
  for (const SubmitParams& p : specs)
    offline.submit(tinyProblem(), tinyGolden(),
                   svc::makeRunConfig(tinyBaseConfig(), p), p.name);
  offline.runAll();

  for (int i = 0; i < kJobs; ++i) {
    const sched::JobResult& off = offline.result(i);
    SCOPED_TRACE("job " + std::to_string(i));
    // det job s runs on device s % D — the batch scheduler's assignment.
    EXPECT_EQ(off.device, online[std::size_t(i)].device);
    // Images are bit-identical (hash of float bits)...
    EXPECT_EQ(hashToHex(fnv1a64(off.run.image.flat())),
              online[std::size_t(i)].image_hash);
    // ...and so are the modeled clocks: same per-device schedule.
    EXPECT_EQ(off.run.modeled_seconds,
              online[std::size_t(i)].modeled_seconds);
    EXPECT_EQ(off.queue_wait_modeled_s,
              online[std::size_t(i)].queue_wait_modeled_s);
  }
  client.drain();
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(SvcServer, CancelMidQueueNeverRunsAndCancelRunningStopsCooperatively) {
  TestService service(/*devices=*/1, /*queue_cap=*/4);
  Client client = service.connect();
  const int blocker = client.submit(blockerParams("blocker")).job_id;
  awaitState(client, blocker, "running");

  const int queued = client.submit(SubmitParams{}).job_id;
  EXPECT_TRUE(client.cancel(queued));
  const Client::JobInfo q = client.result(queued);
  EXPECT_EQ("cancelled", q.state);
  EXPECT_EQ(-1, q.dispatch_seq);  // finalized in the queue, never dispatched

  EXPECT_TRUE(client.cancel(blocker));
  const Client::JobInfo b = client.result(blocker);
  EXPECT_EQ("cancelled", b.state);
  EXPECT_GE(b.dispatch_seq, 0);       // it ran, then stopped cooperatively
  EXPECT_FALSE(b.image_hash.empty()); // partial image still published
  EXPECT_FALSE(client.cancel(blocker));  // already terminal

  const obs::JsonValue report = client.drain();
  EXPECT_EQ(2.0, report.find("jobs_cancelled")->num_v);
  EXPECT_EQ(0.0, report.find("jobs_failed")->num_v);
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

TEST(SvcServer, DrainIsGracefulValidatedAndTerminal) {
  const int kDevices = 2;
  TestService service(kDevices, /*queue_cap=*/8);
  Client client = service.connect();
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(client.submit(SubmitParams{}).job_id);

  const obs::JsonValue report = client.drain();  // waits out the backlog
  EXPECT_EQ("gpumbir.svc_report/1", report.find("schema")->str_v);
  EXPECT_EQ(3.0, report.find("jobs_submitted")->num_v);
  EXPECT_EQ(3.0, report.find("jobs_done")->num_v);
  ASSERT_TRUE(report.find("jobs")->isArray());
  EXPECT_EQ(3u, report.find("jobs")->array_v.size());
  ASSERT_TRUE(report.find("device_modeled_s")->isArray());
  EXPECT_EQ(std::size_t(kDevices),
            report.find("device_modeled_s")->array_v.size());
  // Histogrammed distributions come with exact order statistics.
  const obs::JsonValue* e2e = report.find("e2e_host_s");
  ASSERT_NE(nullptr, e2e);
  EXPECT_EQ(3.0, e2e->find("count")->num_v);
  EXPECT_GE(e2e->find("p99")->num_v, e2e->find("p50")->num_v);
  // svc.* metrics ride along when a recorder is attached — here there is
  // none, so the report omits them rather than fabricating zeros.
  EXPECT_EQ(nullptr, report.find("metrics"));

  // Post-drain the service refuses work but still answers.
  const auto out = client.submit(SubmitParams{});
  EXPECT_FALSE(out.accepted);
  EXPECT_TRUE(out.rejected);
  EXPECT_TRUE(service.server->drainRequested());
  // Results of drained jobs remain queryable.
  EXPECT_EQ("done", client.result(ids.front()).state);
  // Draining again returns the same (cached) report.
  EXPECT_EQ(3.0, client.drain().find("jobs_done")->num_v);
}

// ---------------------------------------------------------------------------
// Observability: stats verb, flight recorder, span tracing
// ---------------------------------------------------------------------------

TEST(SvcServer, StatsAnswersLiveWhileEveryDeviceIsBusy) {
  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs::Recorder recorder(obs_cfg);
  TestService service(/*devices=*/2, /*queue_cap=*/8, &recorder);
  Client client = service.connect();

  // Park both devices, then queue a tenant-tagged job behind them. The
  // scrape below must answer while the blockers are mid-run — stats takes
  // the dispatcher lock only for a snapshot, never waiting on a device.
  const int b0 = client.submit(blockerParams("block0")).job_id;
  const int b1 = client.submit(blockerParams("block1")).job_id;
  awaitState(client, b0, "running");
  awaitState(client, b1, "running");
  SubmitParams waiting;
  waiting.priority = 3;
  waiting.tenant = "acme";
  waiting.name = "waiting";
  const int q0 = client.submit(waiting).job_id;

  // client.stats() round-trips the document through the strict parser.
  const obs::JsonValue stats = client.stats();
  EXPECT_EQ("gpumbir.svc_stats/1", stats.find("schema")->str_v);
  EXPECT_TRUE(stats.find("accepting")->bool_v);
  EXPECT_FALSE(stats.find("draining")->bool_v);
  EXPECT_GT(stats.find("uptime_host_s")->num_v, 0.0);
  EXPECT_EQ(2.0, stats.find("running")->num_v);
  EXPECT_EQ(1.0, stats.find("queued")->num_v);
  EXPECT_EQ(3.0, stats.find("submitted")->num_v);
  const obs::JsonValue* by_prio = stats.find("queue_depth_by_priority");
  ASSERT_NE(nullptr, by_prio);
  EXPECT_EQ(1.0, by_prio->find("3")->num_v);

  const obs::JsonValue* devices = stats.find("devices");
  ASSERT_TRUE(devices->isArray());
  ASSERT_EQ(2u, devices->array_v.size());
  for (const obs::JsonValue& d : devices->array_v) {
    EXPECT_TRUE(d.find("busy")->bool_v);
    EXPECT_GE(d.find("running_job")->num_v, 0.0);
    EXPECT_GE(d.find("modeled_s")->num_v, 0.0);
  }

  const obs::JsonValue* in_flight = stats.find("in_flight");
  ASSERT_TRUE(in_flight->isArray());
  ASSERT_EQ(3u, in_flight->array_v.size());
  int running_seen = 0;
  const obs::JsonValue* queued_entry = nullptr;
  for (const obs::JsonValue& j : in_flight->array_v) {
    if (j.find("state")->str_v == "running") ++running_seen;
    if (int(j.find("job_id")->num_v) == q0) queued_entry = &j;
  }
  EXPECT_EQ(2, running_seen);
  ASSERT_NE(nullptr, queued_entry);
  EXPECT_EQ("queued", queued_entry->find("state")->str_v);
  EXPECT_EQ("acme", queued_entry->find("tenant")->str_v);
  EXPECT_EQ(-1.0, queued_entry->find("device")->num_v);
  EXPECT_GE(queued_entry->find("age_host_s")->num_v, 0.0);

  // Flight counters and the metrics registry ride along in the same doc.
  const obs::JsonValue* flight = stats.find("flight");
  ASSERT_NE(nullptr, flight);
  EXPECT_GT(flight->find("events_recorded")->num_v, 0.0);
  ASSERT_NE(nullptr, stats.find("metrics"));
  EXPECT_GE(stats.find("metrics")
                ->find("counters")
                ->find("svc.jobs.submitted")
                ->num_v,
            3.0);

  // The scrape paused nothing: the service still dispatches and drains.
  EXPECT_TRUE(client.cancel(q0));
  EXPECT_TRUE(client.cancel(b0));
  EXPECT_TRUE(client.cancel(b1));
  client.drain();
}

TEST(SvcServer, FlightDumpsFireExactlyOncePerBadlyEndingJob) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "gpumbir_flight_dumps";
  fs::remove_all(dir);
  fs::create_directories(dir);

  TestService service(/*devices=*/1, /*queue_cap=*/8, /*recorder=*/nullptr,
                      dir.string());
  Client client = service.connect();
  const int blocker = client.submit(blockerParams("blocker")).job_id;
  awaitState(client, blocker, "running");

  SubmitParams late;
  late.deadline_ms = 0.0;
  late.name = "late";
  const int late_id = client.submit(late).job_id;      // -> deadline_missed
  const int queued = client.submit(SubmitParams{}).job_id;
  const int good = client.submit(SubmitParams{}).job_id;
  EXPECT_TRUE(client.cancel(queued));                  // -> cancelled (queued)
  EXPECT_TRUE(client.cancel(blocker));                 // -> cancelled (ran)

  EXPECT_EQ("deadline_missed", client.result(late_id).state);
  EXPECT_EQ("cancelled", client.result(queued).state);
  EXPECT_EQ("cancelled", client.result(blocker).state);
  EXPECT_EQ("done", client.result(good).state);  // a good ending: no dump

  // The wire `flight` verb serves the same ring on demand (no file).
  const obs::JsonValue flight = client.flight("probe");
  EXPECT_EQ("gpumbir.flight/1", flight.find("schema")->str_v);
  EXPECT_EQ("probe", flight.find("reason")->str_v);
  ASSERT_TRUE(flight.find("lanes")->isArray());
  EXPECT_EQ(2u, flight.find("lanes")->array_v.size());  // control + device 0

  client.drain();  // flushes any dump the device thread did not get to

  // Exactly one automatic dump per badly-ending job, named after it.
  EXPECT_EQ(3u, service.server->dispatcher().flightDumpCount());
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++files;
  EXPECT_EQ(3u, files);
  const std::vector<std::pair<int, std::string>> expected = {
      {late_id, "deadline_missed"},
      {queued, "cancelled"},
      {blocker, "cancelled"},
  };
  for (const auto& [id, reason] : expected) {
    const fs::path p = dir / ("flight_" + std::string(reason) + "_job" +
                              std::to_string(id) + ".json");
    ASSERT_TRUE(fs::exists(p)) << p;
    std::ifstream in(p);
    std::stringstream buf;
    buf << in.rdbuf();
    const obs::JsonValue dump = obs::parseJson(buf.str());
    EXPECT_EQ("gpumbir.flight/1", dump.find("schema")->str_v);
    EXPECT_NE(std::string::npos,
              dump.find("reason")->str_v.find(std::to_string(id)));
  }
  fs::remove_all(dir);
}

TEST(SvcServer, TracingDoesNotPerturbDeterministicLaneResults) {
  // The same deterministic job stream with full tracing on and with no
  // recorder at all must produce bit-identical images: spans and flight
  // events are observational only.
  const auto run_once = [](obs::Recorder* rec) {
    TestService service(/*devices=*/2, /*queue_cap=*/8, rec);
    Client client = service.connect();
    std::vector<int> ids;
    for (int i = 0; i < 4; ++i) {
      SubmitParams p;
      p.deterministic = true;
      p.algorithm = (i % 2 == 0) ? "gpu" : "seq";
      p.max_equits = 2.0 + i;
      p.name = "det" + std::to_string(i);
      ids.push_back(client.submit(p).job_id);
    }
    std::vector<std::string> hashes;
    for (int id : ids) hashes.push_back(client.result(id).image_hash);
    client.drain();
    return hashes;
  };

  obs::ObsConfig obs_cfg;
  obs_cfg.trace = true;
  obs_cfg.metrics = true;
  obs::Recorder recorder(obs_cfg);
  const std::vector<std::string> traced = run_once(&recorder);
  const std::vector<std::string> plain = run_once(nullptr);
  ASSERT_EQ(4u, traced.size());
  EXPECT_EQ(plain, traced);

  // And the traced run really did record the service span hierarchy:
  // submit on the control lane, queue waits on the device host lanes, the
  // job/iteration spans below them, with named host threads.
  const std::string trace = recorder.trace().toJson();
  EXPECT_NE(std::string::npos, trace.find("\"svc.submit\""));
  EXPECT_NE(std::string::npos, trace.find("\"svc.queue\""));
  EXPECT_NE(std::string::npos, trace.find("\"svc.job\""));
  EXPECT_NE(std::string::npos, trace.find("\"recon.iteration\""));
  EXPECT_NE(std::string::npos, trace.find("\"thread_name\""));
  EXPECT_NE(std::string::npos, trace.find("\"job_id\""));
}

TEST(SvcServer, TenantsFlowThroughReportAndLabeledMetrics) {
  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs::Recorder recorder(obs_cfg);
  TestService service(/*devices=*/1, /*queue_cap=*/4, &recorder);
  Client client = service.connect();

  SubmitParams acme;
  acme.tenant = "acme";
  acme.name = "acme-job";
  const int acme_id = client.submit(acme).job_id;
  const int anon_id = client.submit(SubmitParams{}).job_id;
  EXPECT_EQ("done", client.result(acme_id).state);
  EXPECT_EQ("done", client.result(anon_id).state);

  // The drain report carries the tenant per job (omitted when default).
  const obs::JsonValue report = client.drain();
  const obs::JsonValue* jobs = report.find("jobs");
  ASSERT_TRUE(jobs->isArray());
  for (const obs::JsonValue& j : jobs->array_v) {
    const int id = int(j.find("job_id")->num_v);
    if (id == acme_id) {
      ASSERT_NE(nullptr, j.find("tenant"));
      EXPECT_EQ("acme", j.find("tenant")->str_v);
    } else {
      EXPECT_EQ(nullptr, j.find("tenant"));
    }
  }

  // Terminal accounting is labeled per tenant ("" -> "default").
  obs::MetricsRegistry& m = recorder.metrics();
  EXPECT_EQ(1u, m.counterValue("svc.jobs.done{tenant=acme}"));
  EXPECT_EQ(1u, m.counterValue("svc.jobs.done{tenant=default}"));
  EXPECT_EQ(1u, m.histogramSnapshot("svc.job.e2e_host_s{tenant=acme}").count);
  EXPECT_EQ(1u,
            m.histogramSnapshot("svc.job.e2e_host_s{tenant=default}").count);
  // The unlabeled aggregate still sees every job.
  EXPECT_EQ(2u, m.histogramSnapshot("svc.job.e2e_host_s").count);
}

// ---------------------------------------------------------------------------
// Malformed-frame fuzz
// ---------------------------------------------------------------------------

TEST(SvcServer, MalformedPayloadCorpusNeverKillsTheServer) {
  TestService service(1, 4);
  // Every payload is framed correctly but garbage inside; the server must
  // answer ok:false (or close the connection) and keep serving.
  const std::vector<std::string> corpus = {
      "",
      "not json",
      "{",
      "[1,2,3]",
      R"("just a string")",
      R"({"schema":"gpumbir.svc/1"})",                    // no verb
      R"({"schema":"nope","verb":"ping"})",               // wrong schema
      R"({"schema":"gpumbir.svc/1","verb":""})",          // empty verb
      R"({"schema":"gpumbir.svc/1","verb":"submit","case":-3})",
      R"({"schema":"gpumbir.svc/1","verb":"submit","case":1e999})",
      R"({"schema":"gpumbir.svc/1","verb":"submit","priority":1.5})",
      R"({"schema":"gpumbir.svc/1","verb":"status","job":true})",
      R"({"schema":"gpumbir.svc/1","verb":"cancel"})",
      R"({"schema":"gpumbir.svc/1","verb":"result","job":99})",
      R"({"a":1,"a":2,"schema":"gpumbir.svc/1","verb":"ping"})",  // dup key
      std::string("\x00\xff\xfe garbage \x01", 12),
  };
  for (const std::string& payload : corpus) {
    SCOPED_TRACE(payload);
    Client client = service.connect();
    try {
      const obs::JsonValue resp = client.call(payload);
      EXPECT_FALSE(resp.find("ok")->bool_v);
      EXPECT_NE(nullptr, resp.find("error"));
    } catch (const Error&) {
      // Connection-level rejection is acceptable; server survival is what
      // the post-iteration ping asserts.
    }
    Client probe = service.connect();
    EXPECT_TRUE(probe.ping());
  }
}

/// Count entries under a /proc/self/* directory (open fds, live threads).
std::size_t procCount(const char* dir) {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir))
    ++n;
  return n;
}

TEST(SvcServer, MalformedFrameFloodDoesNotLeakFdsOrThreads) {
  // A client flooding the server with garbage frames at a steady rate must
  // not leak connection fds or handler threads on the server side, and
  // well-formed submissions must keep being admitted throughout. The
  // server lives in this process, so /proc/self counts cover it.
  ::signal(SIGPIPE, SIG_IGN);  // flood writes race server-side closes
  TestService service(1, 8);
  Client good = service.connect();
  ASSERT_TRUE(good.ping());

  const std::size_t fd_baseline = procCount("/proc/self/fd");
  const std::size_t thread_baseline = procCount("/proc/self/task");

  Rng rng = Rng::forStream(0xF100D, 0);
  int admitted = 0;
  for (int round = 0; round < 6; ++round) {
    {
      // A wave of concurrently open flooders, each sending garbage.
      std::vector<Client> flood;
      for (int i = 0; i < 8; ++i) flood.push_back(service.connect());
      for (Client& c : flood) {
        std::string junk;
        switch (rng.below(3)) {
          case 0:  // random bytes, framing and all
            for (int b = 0; b < 32; ++b) junk.push_back(char(rng.below(256)));
            break;
          case 1:  // oversized declared length
            junk = std::string("\xff\xff\xff\xff", 4);
            break;
          default:  // well-framed garbage payload
            junk = svc::encodeFrame("{\"schema\":\"gpumbir.svc/1\"");
            break;
        }
        (void)!::write(c.fd(), junk.data(), junk.size());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Admission keeps working mid-flood.
      const Client::SubmitResult out = good.submit(SubmitParams{});
      ASSERT_TRUE(out.accepted) << out.error;
      EXPECT_EQ("done", good.result(out.job_id).state);
      ++admitted;
    }  // wave closed: the server should reap each connection handler
  }
  EXPECT_EQ(6, admitted);

  // Fd and thread counts return to ~baseline once the flood stops. Dead
  // connections are reaped lazily at the next accept, so each poll round
  // opens (and closes) a probe connection to drive the reaper; the probe
  // itself accounts for the small slack in the bound.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::size_t fds = 0, threads = 0;
  for (;;) {
    {
      Client reaper = service.connect();
      ASSERT_TRUE(reaper.ping());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fds = procCount("/proc/self/fd");
    threads = procCount("/proc/self/task");
    if ((fds <= fd_baseline + 2 && threads <= thread_baseline + 2) ||
        std::chrono::steady_clock::now() > deadline)
      break;
  }
  EXPECT_LE(fds, fd_baseline + 2);
  EXPECT_LE(threads, thread_baseline + 2);

  // And the service is still fully operational.
  Client probe = service.connect();
  ASSERT_TRUE(probe.ping());
  EXPECT_EQ("done", probe.result(probe.submit(SubmitParams{}).job_id).state);
  probe.drain();
}

TEST(SvcServer, BrokenFramesAreSurvivable) {
  TestService service(1, 4);
  {  // Truncated header: 2 bytes then close.
    Client client = service.connect();
    ASSERT_EQ(2, ::write(client.fd(), "\x00\x01", 2));
  }
  {  // Truncated payload: header says 100 bytes, send 5, close.
    Client client = service.connect();
    ASSERT_EQ(4, ::write(client.fd(), "\x00\x00\x00\x64", 4));
    ASSERT_EQ(5, ::write(client.fd(), "hello", 5));
  }
  {  // Oversized declared length: the server answers and closes.
    Client client = service.connect();
    ASSERT_EQ(4, ::write(client.fd(), "\xff\xff\xff\xff", 4));
    std::string payload;
    EXPECT_EQ(svc::FrameStatus::kOk, svc::readFrame(client.fd(), payload));
    const obs::JsonValue resp = obs::parseJson(payload);
    EXPECT_FALSE(resp.find("ok")->bool_v);
    EXPECT_NE(std::string::npos,
              resp.find("error")->str_v.find("byte limit"));
  }
  // After all of that, the service still works end to end.
  Client client = service.connect();
  ASSERT_TRUE(client.ping());
  EXPECT_EQ("done", client.result(client.submit(SubmitParams{}).job_id).state);
  client.drain();
}

}  // namespace
}  // namespace mbir::test
