// Tests for geometry, footprints, sinogram/image containers, and FBP.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/error.h"
#include "geom/fbp.h"
#include "geom/footprint.h"
#include "geom/geometry.h"
#include "geom/image.h"
#include "geom/sinogram.h"
#include "phantom/analytic_projection.h"
#include "phantom/ellipse.h"
#include "test_util.h"

namespace mbir {
namespace {

TEST(Geometry, ValidateAcceptsPresets) {
  EXPECT_NO_THROW(paperScaleGeometry().validate());
  EXPECT_NO_THROW(benchScaleGeometry().validate());
  EXPECT_NO_THROW(testScaleGeometry().validate());
}

TEST(Geometry, ValidateRejectsBadFields) {
  ParallelBeamGeometry g = testScaleGeometry();
  g.num_views = 0;
  EXPECT_THROW(g.validate(), Error);
  g = testScaleGeometry();
  g.pixel_size_mm = -1;
  EXPECT_THROW(g.validate(), Error);
  g = testScaleGeometry();
  g.image_size = 1;
  EXPECT_THROW(g.validate(), Error);
}

TEST(Geometry, AnglesUniformOverHalfTurn) {
  const auto g = testScaleGeometry();
  EXPECT_DOUBLE_EQ(g.angle(0), 0.0);
  const double step = g.angle(1) - g.angle(0);
  EXPECT_NEAR(step * g.num_views, std::numbers::pi, 1e-12);
}

TEST(Geometry, CenterPixelProjectsToCenterChannel) {
  auto g = testScaleGeometry();
  g.image_size = 33;  // odd: (16,16) is exactly the rotation center
  for (int v = 0; v < g.num_views; v += 7) {
    EXPECT_NEAR(g.projectToChannel(0.0, 0.0, v), g.centerChannel(), 1e-12);
  }
}

TEST(Geometry, PixelCoordinatesAreCentered) {
  const auto g = testScaleGeometry();  // 32x32
  EXPECT_NEAR(g.pixelX(0) + g.pixelX(g.image_size - 1), 0.0, 1e-12);
  EXPECT_NEAR(g.pixelY(0) + g.pixelY(g.image_size - 1), 0.0, 1e-12);
  EXPECT_GT(g.pixelY(0), g.pixelY(1));  // y decreases with row
  EXPECT_LT(g.pixelX(0), g.pixelX(1));  // x increases with col
}

TEST(Geometry, FovRadius) {
  const auto g = testScaleGeometry();
  EXPECT_NEAR(g.fieldOfViewRadius(), 31.5 * 0.5, 1e-12);
}

class TrapezoidParam : public ::testing::TestWithParam<double> {};

TEST_P(TrapezoidParam, IntegralEqualsPixelArea) {
  const double p = 0.8;
  TrapezoidProfile t(p, GetParam());
  EXPECT_NEAR(t.integral(-10.0, 10.0), p * p, 1e-9);
}

TEST_P(TrapezoidParam, ValueMatchesNumericDerivativeOfCumulative) {
  TrapezoidProfile t(1.0, GetParam());
  for (double u = -1.2; u <= 1.2; u += 0.07) {
    // Skip the kinks (and, for axis-aligned angles, jumps) of the profile.
    if (std::abs(std::abs(u) - t.halfSupport()) < 0.02 ||
        std::abs(std::abs(u) - t.halfFlat()) < 0.02)
      continue;
    const double h = 1e-6;
    const double numeric = t.integral(u - h, u + h) / (2 * h);
    EXPECT_NEAR(numeric, t.value(u), 1e-4) << "u=" << u;
  }
}

TEST_P(TrapezoidParam, SymmetricProfile) {
  TrapezoidProfile t(0.8, GetParam());
  for (double u : {0.1, 0.3, 0.55, 0.9})
    EXPECT_DOUBLE_EQ(t.value(u), t.value(-u));
}

INSTANTIATE_TEST_SUITE_P(Angles, TrapezoidParam,
                         ::testing::Values(0.0, 0.2, std::numbers::pi / 4,
                                           1.0, std::numbers::pi / 2, 2.5,
                                           std::numbers::pi));

TEST(Trapezoid, AxisAlignedIsBox) {
  // theta = 0: shadow is a box of width p, height p.
  TrapezoidProfile t(0.8, 0.0);
  EXPECT_NEAR(t.value(0.0), 0.8, 1e-12);
  EXPECT_NEAR(t.value(0.39), 0.8, 1e-9);
  EXPECT_NEAR(t.value(0.41), 0.0, 1e-9);
}

TEST(Trapezoid, DiagonalIsTriangle) {
  // theta = 45 deg: flat top collapses; peak chord = p * sqrt(2).
  TrapezoidProfile t(1.0, std::numbers::pi / 4);
  EXPECT_NEAR(t.halfFlat(), 0.0, 1e-12);
  EXPECT_NEAR(t.value(0.0), std::sqrt(2.0), 1e-9);
}

TEST(Sinogram, IndexingAndBounds) {
  Sinogram s(4, 8);
  s.at(3, 7) = 2.5f;
  EXPECT_EQ(s(3, 7), 2.5f);
  EXPECT_THROW(s.at(4, 0), Error);
  EXPECT_THROW(s.at(0, 8), Error);
  EXPECT_EQ(s.row(3)[7], 2.5f);
}

TEST(Sinogram, WeightedSumSquares) {
  Sinogram s(2, 2), w(2, 2);
  s(0, 0) = 2.0f;
  w(0, 0) = 3.0f;
  s(1, 1) = 1.0f;
  w(1, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(s.weightedSumSquares(w), 3 * 4 + 4 * 1);
  EXPECT_DOUBLE_EQ(s.sumSquares(), 5.0);
}

TEST(Image2D, RmsDiff) {
  Image2D a(4), b(4);
  b(0, 0) = 4.0f;
  EXPECT_DOUBLE_EQ(a.rmsDiff(b), std::sqrt(16.0 / 16.0));
}

TEST(Image2D, FlatIndexMatches2D) {
  Image2D img(8);
  img(3, 5) = 9.0f;
  EXPECT_EQ(img[3 * 8 + 5], 9.0f);
}

TEST(ImageStack, IndependentSlices) {
  ImageStack stack(3, 16);
  stack.slice(1)(0, 0) = 5.0f;
  EXPECT_EQ(stack.slice(0)(0, 0), 0.0f);
  EXPECT_EQ(stack.slice(1)(0, 0), 5.0f);
  EXPECT_EQ(stack.numSlices(), 3);
}

TEST(Fbp, RecoversUniformCylinder) {
  const auto g = test::smallGeometry();
  EllipsePhantom phantom;
  phantom.ellipses.push_back(
      {0.0, 0.0, 10.0, 10.0, 0.0, 0.02});  // 10mm disc, mu = 0.02/mm
  const Sinogram y = analyticProject(phantom, g);
  const Image2D img = fbpReconstruct(y, g);
  // Center value within 15% of true attenuation.
  const int c = g.image_size / 2;
  EXPECT_NEAR(img(c, c), 0.02f, 0.003f);
  // Far outside the disc: close to zero.
  EXPECT_NEAR(img(2, c), 0.0f, 0.004f);
}

TEST(Fbp, NonNegativeByDefault) {
  const auto g = test::tinyGeometry();
  EllipsePhantom phantom;
  phantom.ellipses.push_back({0.0, 0.0, 6.0, 4.0, 0.3, 0.02});
  const Image2D img = fbpReconstruct(analyticProject(phantom, g), g);
  for (float v : img.flat()) EXPECT_GE(v, 0.0f);
}

TEST(Fbp, MaskedOutsideFov) {
  const auto g = test::tinyGeometry();
  EllipsePhantom phantom;
  phantom.ellipses.push_back({0.0, 0.0, 6.0, 6.0, 0.0, 0.02});
  const Image2D img = fbpReconstruct(analyticProject(phantom, g), g);
  EXPECT_EQ(img(0, 0), 0.0f);  // corner is outside the FOV circle
}

}  // namespace
}  // namespace mbir
