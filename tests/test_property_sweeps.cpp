// Cross-cutting property sweeps: every engine must solve every geometry /
// prior / tunables combination to the same answer — the invariant that all
// of the paper's performance machinery (SVBs, chunks, quantization,
// checkerboard batching) is *transparent* to the optimization.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gpuicd/conflicts.h"
#include "icd/convergence.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"
#include "sv/supervoxel.h"
#include "test_util.h"

namespace mbir {
namespace {

struct SweepCase {
  int views, channels, size;
  PriorConfig::Kind prior;
};

std::string caseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& p = info.param;
  return std::to_string(p.views) + "v_" + std::to_string(p.channels) + "c_" +
         std::to_string(p.size) + "px_" +
         (p.prior == PriorConfig::Kind::kQggmrf ? "qggmrf" : "quad");
}

class GeometryPriorSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    SuiteConfig cfg;
    cfg.geometry = test::tinyGeometry();
    cfg.geometry.num_views = p.views;
    cfg.geometry.num_channels = p.channels;
    cfg.geometry.image_size = p.size;
    cfg.prior.kind = p.prior;
    suite_ = std::make_unique<Suite>(cfg);
    problem_ = std::make_unique<OwnedProblem>(suite_->makeCase(1));
    golden_ = computeGolden(*problem_, 25.0);
  }

  RunResult run(Algorithm algo) {
    RunConfig cfg;
    cfg.algorithm = algo;
    cfg.max_equits = 25.0;
    cfg.psv.sv.sv_side = 8;
    cfg.gpu.tunables.sv.sv_side = 8;
    return reconstruct(*problem_, golden_, cfg);
  }

  std::unique_ptr<Suite> suite_;
  std::unique_ptr<OwnedProblem> problem_;
  Image2D golden_{1};
};

TEST_P(GeometryPriorSweep, SequentialConverges) {
  const RunResult r = run(Algorithm::kSequentialIcd);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_rmse_hu, kConvergedRmseHu);
}

TEST_P(GeometryPriorSweep, PsvConverges) {
  const RunResult r = run(Algorithm::kPsvIcd);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_rmse_hu, kConvergedRmseHu);
}

TEST_P(GeometryPriorSweep, GpuConverges) {
  const RunResult r = run(Algorithm::kGpuIcd);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.final_rmse_hu, kConvergedRmseHu);
  // The three engines solve the same problem.
  const RunResult seq = run(Algorithm::kSequentialIcd);
  EXPECT_LT(rmseHu(r.image, seq.image), 15.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryPriorSweep,
    ::testing::Values(
        SweepCase{48, 64, 32, PriorConfig::Kind::kQggmrf},
        SweepCase{48, 64, 32, PriorConfig::Kind::kQuadratic},
        SweepCase{36, 48, 24, PriorConfig::Kind::kQggmrf},
        SweepCase{64, 96, 40, PriorConfig::Kind::kQggmrf},
        SweepCase{30, 64, 32, PriorConfig::Kind::kQuadratic}),
    caseName);

// ---------- GPU tunables sweep ----------

struct TunablesCase {
  int sv_side, chunk_width, threads, tb_per_sv, batch;
};

class GpuTunablesSweep : public ::testing::TestWithParam<TunablesCase> {};

TEST_P(GpuTunablesSweep, ConvergesForAnyTunables) {
  const auto& p = GetParam();
  const auto& problem = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();

  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.max_equits = 25.0;
  cfg.gpu.tunables.sv.sv_side = p.sv_side;
  cfg.gpu.tunables.chunk_width = p.chunk_width;
  cfg.gpu.tunables.threads_per_block = p.threads;
  cfg.gpu.tunables.threadblocks_per_sv = p.tb_per_sv;
  cfg.gpu.tunables.svs_per_batch = p.batch;
  const RunResult r = reconstruct(problem, golden, cfg);
  EXPECT_TRUE(r.converged)
      << "side=" << p.sv_side << " W=" << p.chunk_width;
  EXPECT_GT(r.modeled_seconds, 0.0);
  for (float v : r.image.flat()) EXPECT_GE(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, GpuTunablesSweep,
    ::testing::Values(TunablesCase{5, 8, 64, 4, 4},
                      TunablesCase{8, 16, 128, 8, 8},
                      TunablesCase{8, 32, 256, 40, 32},
                      TunablesCase{11, 32, 512, 16, 2},
                      TunablesCase{16, 64, 256, 32, 64},
                      TunablesCase{8, 32, 96, 1, 16}));

// ---------- SV-fraction sweep ----------

class SvFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvFractionSweep, AnyFractionConverges) {
  const auto& problem = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.max_equits = 30.0;
  cfg.gpu.tunables.sv.sv_side = 8;
  cfg.gpu.tunables.sv_fraction = GetParam();
  const RunResult r = reconstruct(problem, golden, cfg);
  EXPECT_TRUE(r.converged) << "fraction " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fractions, SvFractionSweep,
                         ::testing::Values(0.1, 0.2, 0.25, 0.5, 1.0));

// ---------- boundary-overlap sweep ----------

class OverlapSweep : public ::testing::TestWithParam<int> {};

TEST_P(OverlapSweep, OverlapNeverBreaksCorrectness) {
  const auto& problem = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.max_equits = 30.0;
  cfg.gpu.tunables.sv.sv_side = 8;
  cfg.gpu.tunables.sv.boundary_overlap = GetParam();
  const RunResult r = reconstruct(problem, golden, cfg);
  EXPECT_TRUE(r.converged) << "overlap " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Overlaps, OverlapSweep, ::testing::Values(0, 1, 2, 3));

// ---------- race-freedom sweep (DESIGN.md §8) ----------

// The checkerboard schedule's race-freedom claim must hold for every SV
// geometry, not just the defaults: run GPU-ICD with the device-semantics
// race detector in fatal mode (any diagnosed race throws mid-run) and
// independently re-derive the claim from the SV rectangles.

struct RaceSweepCase {
  int sv_side, overlap;
};

std::string raceCaseName(const ::testing::TestParamInfo<RaceSweepCase>& info) {
  return "side" + std::to_string(info.param.sv_side) + "_ov" +
         std::to_string(info.param.overlap);
}

class RaceFreedomSweep : public ::testing::TestWithParam<RaceSweepCase> {};

TEST_P(RaceFreedomSweep, AllGpuLaunchesRaceFree) {
  const auto& p = GetParam();
  const auto& problem = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  RunConfig cfg;
  cfg.algorithm = Algorithm::kGpuIcd;
  cfg.max_equits = 12.0;
  cfg.gpu.tunables.sv.sv_side = p.sv_side;
  cfg.gpu.tunables.sv.boundary_overlap = p.overlap;
  cfg.gpu.race_check = {
      .enabled = true, .throw_on_race = true, .max_reports = 64};
  // throw_on_race means a single diagnosed race anywhere aborts the run.
  const RunResult r = reconstruct(problem, golden, cfg);
  ASSERT_TRUE(r.gpu_stats);
  EXPECT_TRUE(r.gpu_stats->race_check_enabled);
  EXPECT_GT(r.gpu_stats->race_launches_checked, 0u);
  EXPECT_GT(r.gpu_stats->race_ranges_checked, 0u);
  EXPECT_EQ(r.gpu_stats->race_reports, 0u);
}

TEST_P(RaceFreedomSweep, CheckerboardGroupsConflictFree) {
  // Analytic + detector cross-check of the same claim, over both the tiny
  // image and a larger grid with more SVs per group. All swept cases keep
  // overlap <= (sv_side - 1) / 2, the bound under which the schedule is
  // provably clean.
  const auto& p = GetParam();
  ASSERT_LE(p.overlap, (p.sv_side - 1) / 2);
  for (const int image_size : {32, 64}) {
    const SvGrid grid(image_size,
                      {.sv_side = p.sv_side, .boundary_overlap = p.overlap});
    std::vector<int> all(std::size_t(grid.count()));
    for (int i = 0; i < grid.count(); ++i) all[std::size_t(i)] = i;
    for (const std::vector<int>& group : grid.checkerboardGroups(all)) {
      if (group.size() < 2) continue;
      EXPECT_EQ(scheduleImageConflicts(grid, group), 0)
          << "size=" << image_size << " side=" << p.sv_side
          << " ov=" << p.overlap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, RaceFreedomSweep,
                         ::testing::Values(RaceSweepCase{5, 0},
                                           RaceSweepCase{5, 2},
                                           RaceSweepCase{8, 0},
                                           RaceSweepCase{8, 1},
                                           RaceSweepCase{8, 3},
                                           RaceSweepCase{11, 2},
                                           RaceSweepCase{16, 5}),
                         raceCaseName);

}  // namespace
}  // namespace mbir
