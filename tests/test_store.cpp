// Tests for src/store (DESIGN.md §14): the crash-safe write-ahead job log,
// the content-addressed result cache, and weighted fair queuing — plus
// integration through a live svc::Server: duplicate submits served from the
// cache without dispatching, warm starts for near-duplicates, WAL-recovery
// re-dispatch (bit-identical on the deterministic lane), and recovery
// interoperating with chaos-lane migration.
//
// The WAL fuzz section sweeps truncation at EVERY byte offset and flips
// every byte of a valid log: replay must always return exactly the longest
// valid record prefix and never accept a corrupted record or anything
// after it.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "core/error.h"
#include "core/hash.h"
#include "sched/scheduler.h"
#include "store/cache.h"
#include "store/wal.h"
#include "store/wfq.h"
#include "svc/client.h"
#include "svc/server.h"
#include "test_support.h"

namespace mbir::test {
namespace {

namespace fs = std::filesystem;
using store::JobLog;
using store::ResultCache;
using svc::Client;
using svc::SubmitParams;

/// Self-deleting unique temp directory (tests create WAL/cache dirs in it).
struct TempDir {
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "gpumbir_store_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    MBIR_CHECK(::mkdtemp(buf.data()) != nullptr);
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
  MBIR_CHECK(out.good());
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// An admit payload exactly as JobLog::appendAdmit frames it.
std::string admitPayload(std::int64_t wal_id, int recoveries,
                         const std::string& params_json =
                             R"({"schema":"gpumbir.svc/1","verb":"submit"})") {
  return std::string(R"({"type":"admit","wal_id":)") +
         std::to_string(wal_id) + R"(,"recoveries":)" +
         std::to_string(recoveries) + R"(,"params":)" + params_json + "}";
}

std::string terminalPayload(std::int64_t wal_id,
                            const std::string& state = "done") {
  return std::string(R"({"type":"terminal","wal_id":)") +
         std::to_string(wal_id) + R"(,"state":")" + state +
         R"(","image_hash":"0000000000000000"})";
}

// ---------------------------------------------------------------------------
// WAL: round trip, replay, and crash tolerance
// ---------------------------------------------------------------------------

TEST(StoreWal, RoundTripPendingAndIdContinuityAcrossReopen) {
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  const std::string params = svc::encodeSubmit(SubmitParams{});
  {
    JobLog log(dir);
    EXPECT_TRUE(log.pending().empty());
    const std::int64_t a = log.nextId();
    const std::int64_t b = log.nextId();
    EXPECT_NE(a, b);
    log.appendAdmit(a, 0, params);
    log.appendAdmit(b, 0, params);
    log.appendTerminal(a, "done", 0x1234u);
    EXPECT_EQ(3u, log.recordsAppended());
  }
  JobLog log(dir);
  ASSERT_EQ(1u, log.pending().size());
  EXPECT_EQ(1, log.pending()[0].wal_id);
  EXPECT_EQ(0, log.pending()[0].recoveries);
  // The params document survives the replay round trip and still parses as
  // the original wire submit request.
  const svc::Request req = svc::parseRequest(log.pending()[0].params_json);
  EXPECT_NO_THROW(svc::parseSubmitParams(req));
  EXPECT_EQ(3u, log.replayStats().records);
  EXPECT_FALSE(log.replayStats().tail_truncated);
  // wal_id is monotone across incarnations: next = max seen + 1.
  EXPECT_EQ(2, log.nextId());
}

TEST(StoreWal, TruncationSweepAtEveryByteOffsetKeepsLongestValidPrefix) {
  // Simulated kill-at-every-offset: for every possible torn-write length,
  // replay must return exactly the records that were fully on disk.
  const std::vector<std::string> payloads = {
      admitPayload(0, 0), terminalPayload(0), admitPayload(1, 2)};
  std::string file;
  std::vector<std::size_t> ends;  // byte offset where record i ends
  for (const std::string& p : payloads) {
    file += JobLog::encodeRecord(p);
    ends.push_back(file.size());
  }

  TempDir tmp;
  const std::string path = tmp.sub("jobs.wal");
  for (std::size_t cut = 0; cut <= file.size(); ++cut) {
    writeFile(path, file.substr(0, cut));
    const JobLog::RawReplay rr = JobLog::replayFile(path);
    std::size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= cut) ++complete;
    ASSERT_EQ(complete, rr.payloads.size()) << "cut at byte " << cut;
    for (std::size_t i = 0; i < complete; ++i)
      EXPECT_EQ(payloads[i], rr.payloads[i]);
    const std::size_t prefix = complete == 0 ? 0 : ends[complete - 1];
    EXPECT_EQ(prefix, rr.stats.bytes) << "cut at byte " << cut;
    EXPECT_EQ(cut != prefix, rr.stats.tail_truncated) << "cut at byte " << cut;
  }
}

TEST(StoreWal, ReopenAfterTornTailTruncatesAndAppendsCleanly) {
  TempDir tmp;
  const std::string dir = tmp.sub("wal");
  const std::string params = svc::encodeSubmit(SubmitParams{});
  {
    JobLog log(dir);
    log.appendAdmit(log.nextId(), 0, params);
    log.appendAdmit(log.nextId(), 0, params);
  }
  // Tear the final record mid-payload.
  const std::string path = dir + "/jobs.wal";
  const std::string full = readFile(path);
  writeFile(path, full.substr(0, full.size() - 7));

  {
    JobLog log(dir);  // truncates the torn tail...
    EXPECT_TRUE(log.replayStats().tail_truncated);
    EXPECT_EQ(1u, log.replayStats().records);
    ASSERT_EQ(1u, log.pending().size());
    EXPECT_EQ(0, log.pending()[0].wal_id);
    // ...and the lost admit's wal_id is re-issued (it was never recoverable).
    EXPECT_EQ(1, log.nextId());
    log.appendAdmit(1, 0, params);  // ...so appends extend a clean prefix
  }
  JobLog log(dir);
  EXPECT_FALSE(log.replayStats().tail_truncated);
  EXPECT_EQ(2u, log.replayStats().records);
  EXPECT_EQ(2u, log.pending().size());
}

TEST(StoreWal, BitFlipSweepNeverAcceptsACorruptedRecordOrItsSuffix) {
  const std::vector<std::string> payloads = {admitPayload(0, 0),
                                             admitPayload(1, 0)};
  const std::string r0 = JobLog::encodeRecord(payloads[0]);
  const std::string file = r0 + JobLog::encodeRecord(payloads[1]);

  TempDir tmp;
  const std::string path = tmp.sub("jobs.wal");
  for (std::size_t i = 0; i < file.size(); ++i) {
    std::string bad = file;
    bad[i] = char(bad[i] ^ 0x5A);
    writeFile(path, bad);
    const JobLog::RawReplay rr = JobLog::replayFile(path);
    // Replay stops at the first invalid record: a flip in record 0 drops
    // everything (the intact record 1 after it is unreachable — its offset
    // can no longer be trusted); a flip in record 1 keeps only record 0.
    const std::size_t expect = i < r0.size() ? 0u : 1u;
    ASSERT_EQ(expect, rr.payloads.size()) << "flip at byte " << i;
    if (expect == 1) EXPECT_EQ(payloads[0], rr.payloads[0]);
    EXPECT_TRUE(rr.stats.tail_truncated) << "flip at byte " << i;
  }
}

TEST(StoreWal, ResolvePendingToleratesDuplicatesOutOfOrderAndGarbage) {
  store::ReplayStats stats;
  std::int64_t max_id = -1;
  const std::vector<std::string> payloads = {
      terminalPayload(7),       // out of order: terminal before its admit
      admitPayload(1, 0),       //
      admitPayload(2, 0),       //
      admitPayload(1, 3),       // duplicate admit: folds recoveries to 3
      terminalPayload(2),       //
      terminalPayload(2),       // duplicate terminal
      admitPayload(7, 0),       // late admit for the early terminal: finished
      "not json at all",        //
      R"({"type":"wat","wal_id":9})",  // unknown record type
  };
  const std::vector<store::PendingJob> pending =
      JobLog::resolvePending(payloads, stats, &max_id);

  ASSERT_EQ(1u, pending.size());  // only wal_id 1 is admitted-but-unfinished
  EXPECT_EQ(1, pending[0].wal_id);
  EXPECT_EQ(3, pending[0].recoveries);
  EXPECT_EQ(1u, stats.orphan_terminals);
  EXPECT_EQ(2u, stats.duplicate_admits);  // re-admit of 1 + late admit of 7
  EXPECT_EQ(1u, stats.duplicate_terminals);
  EXPECT_EQ(2u, stats.malformed_payloads);
  EXPECT_EQ(9, max_id);
}

// ---------------------------------------------------------------------------
// Result cache: round trip, verification, eviction, warm candidates
// ---------------------------------------------------------------------------

Image2D patternImage(int size, float scale) {
  Image2D img(size);
  for (std::size_t i = 0; i < img.numVoxels(); ++i)
    img[i] = scale * float(i % 97) - 0.5f * scale;
  return img;
}

ResultCache::Meta metaFor(std::uint64_t input, const std::string& key,
                          const Image2D& img, double equits) {
  ResultCache::Meta m;
  m.input_hash = input;
  m.config_key = key;
  m.converged = true;
  m.equits = equits;
  m.final_rmse_hu = 12.5;
  m.modeled_seconds = 0.25;
  m.image_hash = fnv1a64(img.flat());
  return m;
}

TEST(StoreCache, InsertFindRoundTripAndReloadFromDisk) {
  TempDir tmp;
  const Image2D img = patternImage(16, 1e-3f);
  {
    ResultCache cache(tmp.sub("cache"), 8);
    cache.insert(metaFor(0xABCDu, "alg=gpu;eq=3", img, 3.0), img);
    const auto hit = cache.find(0xABCDu, "alg=gpu;eq=3");
    ASSERT_NE(nullptr, hit);
    expectImagesBitIdentical(img, *hit->image);
    EXPECT_EQ(3.0, hit->meta.equits);
    EXPECT_EQ(nullptr, cache.find(0xABCDu, "alg=gpu;eq=4"));  // config miss
    EXPECT_EQ(nullptr, cache.find(0x9999u, "alg=gpu;eq=3"));  // input miss
    EXPECT_EQ(1u, cache.counters().inserts);
    EXPECT_EQ(1u, cache.counters().hits);
    EXPECT_EQ(2u, cache.counters().misses);
  }
  // A fresh cache on the same directory serves the same bits.
  ResultCache cache(tmp.sub("cache"), 8);
  EXPECT_EQ(1u, cache.size());
  EXPECT_EQ(0u, cache.counters().corrupt_dropped);
  const auto hit = cache.find(0xABCDu, "alg=gpu;eq=3");
  ASSERT_NE(nullptr, hit);
  expectImagesBitIdentical(img, *hit->image);
  EXPECT_EQ(fnv1a64(img.flat()), hit->meta.image_hash);
}

TEST(StoreCache, TamperedAndMisnamedEntryFilesAreDroppedAtStartup) {
  TempDir tmp;
  const std::string dir = tmp.sub("cache");
  const Image2D a = patternImage(16, 1e-3f);
  const Image2D b = patternImage(16, 2e-3f);
  {
    ResultCache cache(dir, 8);
    cache.insert(metaFor(1, "ka", a, 2.0), a);
    cache.insert(metaFor(2, "kb", b, 2.0), b);
  }
  std::vector<std::string> files;
  for (const auto& e : fs::directory_iterator(dir))
    files.push_back(e.path().string());
  ASSERT_EQ(2u, files.size());

  // Flip a byte in the middle of one entry's pixel data.
  std::string bytes = readFile(files[0]);
  bytes[bytes.size() / 2] = char(bytes[bytes.size() / 2] ^ 0xFF);
  writeFile(files[0], bytes);
  // Rename the other to a different key's file name: even with a valid
  // checksum, the embedded key must agree with the address it is served
  // under — this is the full-key verification that makes an FNV collision
  // (or a stray copied file) unable to serve the wrong image.
  const std::string rogue = dir + "/deadbeefdeadbeef-0123456789abcdef.rce";
  fs::rename(files[1], rogue);

  ResultCache cache(dir, 8);
  EXPECT_EQ(0u, cache.size());
  EXPECT_EQ(2u, cache.counters().corrupt_dropped);
  EXPECT_EQ(nullptr, cache.find(1, "ka"));
  EXPECT_EQ(nullptr, cache.find(2, "kb"));
  // Dropped files are unlinked — the directory stays bounded.
  EXPECT_EQ(0, std::distance(fs::directory_iterator(dir),
                             fs::directory_iterator{}));
}

TEST(StoreCache, CapacityEvictsLeastRecentlyUsedAndUnlinksItsFile) {
  TempDir tmp;
  const std::string dir = tmp.sub("cache");
  ResultCache cache(dir, 2);
  const Image2D img = patternImage(16, 1e-3f);
  cache.insert(metaFor(1, "k", img, 1.0), img);
  cache.insert(metaFor(2, "k", img, 1.0), img);
  ASSERT_NE(nullptr, cache.find(1, "k"));  // touch 1: now 2 is the LRU entry
  cache.insert(metaFor(3, "k", img, 1.0), img);

  EXPECT_EQ(2u, cache.size());
  EXPECT_EQ(1u, cache.counters().evictions);
  EXPECT_NE(nullptr, cache.find(1, "k"));
  EXPECT_EQ(nullptr, cache.find(2, "k"));  // evicted
  EXPECT_NE(nullptr, cache.find(3, "k"));
  EXPECT_EQ(2, std::distance(fs::directory_iterator(dir),
                             fs::directory_iterator{}));

  // Idempotent overwrite: re-inserting an existing key is not an eviction.
  cache.insert(metaFor(3, "k", img, 5.0), img);
  EXPECT_EQ(2u, cache.size());
  EXPECT_EQ(1u, cache.counters().evictions);
  EXPECT_EQ(5.0, cache.find(3, "k")->meta.equits);
}

TEST(StoreCache, WarmLookupPicksMostConvergedEntryOfMatchingSize) {
  TempDir tmp;
  ResultCache cache(tmp.sub("cache"), 8);
  const Image2D rough = patternImage(16, 1e-3f);
  const Image2D fine = patternImage(16, 3e-3f);
  const Image2D other_size = patternImage(8, 1e-3f);
  cache.insert(metaFor(7, "eq=2", rough, 2.0), rough);
  cache.insert(metaFor(7, "eq=6", fine, 6.0), fine);
  cache.insert(metaFor(7, "eq=9-small", other_size, 9.0), other_size);

  const auto warm = cache.findWarm(7, 16);
  ASSERT_NE(nullptr, warm);
  EXPECT_EQ(6.0, warm->meta.equits);  // most converged at the right size
  expectImagesBitIdentical(fine, *warm->image);
  EXPECT_EQ(nullptr, cache.findWarm(8, 16));   // different inputs
  EXPECT_EQ(nullptr, cache.findWarm(7, 32));   // no entry at that size
  EXPECT_EQ(1u, cache.counters().warm_hits);
}

// ---------------------------------------------------------------------------
// Weighted fair queuing
// ---------------------------------------------------------------------------

TEST(StoreWfq, PicksAreWeightProportionalForBackloggedTenants) {
  store::FairQueue fq;
  fq.configure({{"heavy", 4.0}, {"light", 1.0}});
  const std::vector<std::string> both = {"heavy", "light"};
  int heavy = 0;
  for (int i = 0; i < 500; ++i)
    if (both[fq.pickAndCharge(both)] == "heavy") ++heavy;
  // SFQ is deterministic: a 4:1 split of 500 picks is 400/100 up to the
  // interleave at the window edges.
  EXPECT_NEAR(400, heavy, 4);

  bool saw_heavy = false, saw_light = false;
  for (const store::FairQueue::Share& s : fq.snapshot()) {
    if (s.tenant == "heavy") {
      saw_heavy = true;
      EXPECT_EQ(4.0, s.weight);
      EXPECT_EQ(std::uint64_t(heavy), s.picks);
      EXPECT_EQ(double(heavy), s.served_cost);
    }
    if (s.tenant == "light") {
      saw_light = true;
      EXPECT_EQ(1.0, s.weight);
      EXPECT_EQ(std::uint64_t(500 - heavy), s.picks);
    }
  }
  EXPECT_TRUE(saw_heavy);
  EXPECT_TRUE(saw_light);
}

TEST(StoreWfq, IdleTenantRejoinsAtCurrentVirtualTimeWithoutBankedCredit) {
  store::FairQueue fq;
  fq.configure({{"a", 1.0}, {"b", 1.0}});
  const std::vector<std::string> only_a = {"a"};
  for (int i = 0; i < 100; ++i) fq.pickAndCharge(only_a);

  // If "b" had banked 100 slots of credit it would now win ~the next 100
  // picks; the SFQ clamp must make it resume at a fair 1:1 share instead.
  const std::vector<std::string> both = {"a", "b"};
  int b_wins = 0;
  for (int i = 0; i < 40; ++i)
    if (both[fq.pickAndCharge(both)] == "b") ++b_wins;
  EXPECT_GE(b_wins, 18);
  EXPECT_LE(b_wins, 22);
}

TEST(StoreWfq, UnknownTenantGetsTheDefaultWeight) {
  store::FairQueue fq;
  fq.configure({{"vip", 3.0}}, /*default_weight=*/0.5);
  EXPECT_EQ(3.0, fq.weight("vip"));
  EXPECT_EQ(0.5, fq.weight("walk-in"));
}

// ---------------------------------------------------------------------------
// Service integration: cache serves, warm starts, WAL recovery, chaos
// ---------------------------------------------------------------------------

class TinySource : public svc::JobSource {
 public:
  Case get(int case_index) override {
    if (case_index >= 100) throw Error("case index out of range");
    return Case{tinyProblem(), tinyGolden()};
  }
};

RunConfig tinyBaseConfig() {
  RunConfig cfg = tinyRunConfig(Algorithm::kGpuIcd, /*max_equits=*/3.0);
  cfg.stop_rmse_hu = 0.0;  // fixed-work jobs: budget-bound, reproducible
  return cfg;
}

/// A server with the store lane wired up (WAL and/or cache borrowed).
struct StoreService {
  StoreService(JobLog* wal, ResultCache* cache, int devices = 1,
               svc::DispatcherOptions dispatch = {}) {
    svc::ServerOptions opt;
    opt.dispatch = std::move(dispatch);
    opt.dispatch.num_devices = devices;
    opt.dispatch.queue_capacity = 16;
    opt.base_config = tinyBaseConfig();
    opt.wal = wal;
    opt.cache = cache;
    server = std::make_unique<svc::Server>(opt, source);
  }
  Client connect() { return Client(server->port()); }

  TinySource source;
  std::unique_ptr<svc::Server> server;
};

TEST(SvcStore, DuplicateSubmitIsServedFromTheCacheWithoutDispatching) {
  TempDir tmp;
  ResultCache cache(tmp.sub("cache"), 8);
  StoreService service(nullptr, &cache);
  Client client = service.connect();

  SubmitParams p;
  p.name = "cold";
  const Client::SubmitResult cold = client.submit(p);
  ASSERT_TRUE(cold.accepted) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  const Client::JobInfo cold_info = client.result(cold.job_id);
  ASSERT_EQ("done", cold_info.state) << cold_info.error;

  // Identical resubmit: already terminal at the submit ack, same bits,
  // never dispatched.
  p.name = "dup";
  const Client::SubmitResult dup = client.submit(p);
  ASSERT_TRUE(dup.accepted) << dup.error;
  EXPECT_TRUE(dup.cache_hit);
  const Client::JobInfo dup_info = client.jobStatus(dup.job_id);
  EXPECT_EQ("done", dup_info.state);
  EXPECT_TRUE(dup_info.cache_hit);
  EXPECT_EQ(-1, dup_info.dispatch_seq);
  EXPECT_EQ(cold_info.image_hash, dup_info.image_hash);
  EXPECT_EQ(cold_info.equits, dup_info.equits);

  // Content addressing: a different case index with bit-identical inputs
  // (TinySource serves one problem for every index) hits the same entry.
  SubmitParams p2;
  p2.case_index = 3;
  p2.name = "same-bits";
  const Client::SubmitResult same = client.submit(p2);
  ASSERT_TRUE(same.accepted) << same.error;
  EXPECT_TRUE(same.cache_hit);

  // --no-cache: the lookup is bypassed and the job really runs.
  SubmitParams p3;
  p3.bypass_cache = true;
  p3.name = "bypass";
  const Client::SubmitResult bypass = client.submit(p3);
  ASSERT_TRUE(bypass.accepted) << bypass.error;
  EXPECT_FALSE(bypass.cache_hit);
  const Client::JobInfo bypass_info = client.result(bypass.job_id);
  EXPECT_EQ("done", bypass_info.state);
  EXPECT_GE(bypass_info.dispatch_seq, 0);
  EXPECT_EQ(cold_info.image_hash, bypass_info.image_hash);

  const svc::SvcReport& rep = service.server->drainAndReport();
  EXPECT_EQ(2u, rep.cache_hits);
  EXPECT_EQ(0u, rep.warm_starts);
}

TEST(SvcStore, NearDuplicateWarmStartsAndConvergesInFewerEquits) {
  TempDir tmp;
  ResultCache cache(tmp.sub("cache"), 8);
  StoreService service(nullptr, &cache);
  Client client = service.connect();

  // Seed the cache with a well-converged run of the shared inputs.
  SubmitParams seed;
  seed.max_equits = 6.0;
  seed.name = "seed";
  const Client::SubmitResult s = client.submit(seed);
  ASSERT_TRUE(s.accepted) << s.error;
  const Client::JobInfo seed_info = client.result(s.job_id);
  ASSERT_EQ("done", seed_info.state) << seed_info.error;
  ASSERT_GT(seed_info.final_rmse_hu, 0.0);

  // A convergence-bound config whose stop threshold sits just above the
  // seed's final RMSE: from a zero image it takes several equits...
  const double stop = seed_info.final_rmse_hu * 1.01;
  SubmitParams coldp;
  coldp.max_equits = 20.0;
  coldp.stop_rmse_hu = stop;
  coldp.bypass_cache = true;  // forces the cold path for the baseline
  coldp.name = "cold-baseline";
  const Client::SubmitResult c = client.submit(coldp);
  ASSERT_TRUE(c.accepted) << c.error;
  const Client::JobInfo cold = client.result(c.job_id);
  ASSERT_EQ("done", cold.state) << cold.error;
  EXPECT_FALSE(cold.warm_start);

  // ...but the near-duplicate (different budget => exact-key miss) starts
  // from the cached seed image, which already satisfies the threshold.
  SubmitParams warmp;
  warmp.max_equits = 21.0;  // differs from coldp: exact miss, warm candidate
  warmp.stop_rmse_hu = stop;
  warmp.name = "warm";
  const Client::SubmitResult w = client.submit(warmp);
  ASSERT_TRUE(w.accepted) << w.error;
  EXPECT_FALSE(w.cache_hit);
  const Client::JobInfo warm = client.result(w.job_id);
  ASSERT_EQ("done", warm.state) << warm.error;
  EXPECT_TRUE(warm.warm_start);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.equits, cold.equits);

  const svc::SvcReport& rep = service.server->drainAndReport();
  EXPECT_EQ(1u, rep.warm_starts);
}

TEST(SvcStore, WalRecoveryRedispatchesPendingJobsBitIdentically) {
  TempDir tmp;
  const std::string wal_dir = tmp.sub("wal");

  // Two deterministic-lane jobs admitted but unfinished when the previous
  // incarnation died: write their admit records the way a live server
  // would, with no terminals.
  std::vector<SubmitParams> specs;
  for (int i = 0; i < 2; ++i) {
    SubmitParams p;
    p.deterministic = true;
    p.max_equits = 2.0 + i;
    p.name = "det" + std::to_string(i);
    specs.push_back(p);
  }
  {
    JobLog wal(wal_dir);
    for (const SubmitParams& p : specs)
      wal.appendAdmit(wal.nextId(), 0, svc::encodeSubmit(p));
  }

  const int kDevices = 2;
  svc::SvcReport rep;
  {
    JobLog wal(wal_dir);
    ASSERT_EQ(2u, wal.pending().size());
    StoreService service(&wal, nullptr, kDevices);
    rep = service.server->drainAndReport();
  }
  EXPECT_EQ(2u, rep.jobs_done);
  EXPECT_EQ(2u, rep.jobs_recovered);

  // The recovered runs are bit-identical to the same jobs through the
  // offline batch scheduler — recovery is idempotent on the det lane.
  sched::SchedulerOptions opt;
  opt.num_devices = kDevices;
  sched::BatchScheduler offline(opt);
  for (const SubmitParams& p : specs)
    offline.submit(tinyProblem(), tinyGolden(),
                   svc::makeRunConfig(tinyBaseConfig(), p), p.name);
  offline.runAll();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const svc::JobStatus* job = nullptr;
    for (const svc::JobStatus& j : rep.jobs)
      if (j.name == specs[i].name) job = &j;
    ASSERT_NE(nullptr, job) << specs[i].name;
    EXPECT_EQ(1, job->recoveries);
    EXPECT_EQ(fnv1a64(offline.result(int(i)).run.image.flat()),
              job->image_hash);
  }

  // Every recovered job reached a terminal record: nothing is pending, and
  // a second restart re-runs nothing (exactly-once completion).
  JobLog wal(wal_dir);
  EXPECT_TRUE(wal.pending().empty());
}

TEST(SvcStore, WalRecoveryServesAnExactDuplicateFromTheCache) {
  TempDir tmp;
  const std::string wal_dir = tmp.sub("wal");
  const std::string cache_dir = tmp.sub("cache");

  SubmitParams p;
  p.name = "job";
  std::string cold_hash;
  {
    JobLog wal(wal_dir);
    ResultCache cache(cache_dir, 8);
    StoreService service(&wal, &cache);
    Client client = service.connect();
    const Client::SubmitResult out = client.submit(p);
    ASSERT_TRUE(out.accepted) << out.error;
    const Client::JobInfo info = client.result(out.job_id);
    ASSERT_EQ("done", info.state) << info.error;
    cold_hash = info.image_hash;
    // Simulate a duplicate of the same work that was admitted (and logged)
    // but lost to the crash before it ran.
    wal.appendAdmit(wal.nextId(), 0, svc::encodeSubmit(p));
    service.server->drainAndReport();
  }

  JobLog wal(wal_dir);
  ASSERT_EQ(1u, wal.pending().size());
  ResultCache cache(cache_dir, 8);
  ASSERT_EQ(1u, cache.size());
  svc::SvcReport rep;
  {
    StoreService service(&wal, &cache, 1);
    rep = service.server->drainAndReport();
  }
  // Recovery recognized the finished bits: served from the cache, no
  // dispatch, and the WAL entry was closed with a terminal record.
  EXPECT_EQ(1u, rep.cache_hits);
  ASSERT_EQ(1u, rep.jobs.size());
  EXPECT_TRUE(rep.jobs[0].cache_hit);
  EXPECT_EQ(-1, rep.jobs[0].dispatch_seq);
  EXPECT_EQ(cold_hash, hashToHex(rep.jobs[0].image_hash));

  JobLog reopened(wal_dir);
  EXPECT_TRUE(reopened.pending().empty());
}

TEST(SvcStore, RecoveredJobMigratesOffADyingDeviceExactlyOnce) {
  // Satellite of the chaos lane: a WAL-recovered job whose first device
  // dies must migrate once and complete, with recoveries and migrations
  // counted separately.
  TempDir tmp;
  const std::string wal_dir = tmp.sub("wal");
  {
    JobLog wal(wal_dir);
    SubmitParams p;
    // Deterministic lane: det job 0 always dispatches to device 0 first,
    // so the targeted death below fires on its first run.
    p.deterministic = true;
    p.name = "survivor";
    wal.appendAdmit(wal.nextId(), 0, svc::encodeSubmit(p));
  }

  svc::DispatcherOptions dispatch;
  dispatch.fault_plan.seed = 1;
  dispatch.fault_plan.death_rate = 1.0;
  dispatch.fault_plan.target_devices = {0};  // device 1 is the survivor
  dispatch.watchdog_ms = 150.0;

  JobLog wal(wal_dir);
  ASSERT_EQ(1u, wal.pending().size());
  svc::SvcReport rep;
  {
    StoreService service(&wal, nullptr, /*devices=*/2, dispatch);
    rep = service.server->drainAndReport();
  }
  EXPECT_EQ(1u, rep.jobs_done);
  EXPECT_EQ(1u, rep.jobs_recovered);
  EXPECT_EQ(1u, rep.jobs_migrated);
  EXPECT_EQ(1u, rep.devices_failed);
  ASSERT_EQ(1u, rep.jobs.size());
  EXPECT_EQ(svc::JobState::kDone, rep.jobs[0].state) << rep.jobs[0].error;
  EXPECT_EQ(1, rep.jobs[0].recoveries);
  EXPECT_EQ(1, rep.jobs[0].migrations);
  EXPECT_EQ(1, rep.jobs[0].device);

  JobLog reopened(wal_dir);
  EXPECT_TRUE(reopened.pending().empty());
}

TEST(SvcStore, DrainReportCarriesPerTenantSummariesAndWeights) {
  svc::DispatcherOptions dispatch;
  dispatch.tenant_weights["gold"] = 4.0;
  StoreService service(nullptr, nullptr, /*devices=*/1, dispatch);
  Client client = service.connect();

  for (int i = 0; i < 2; ++i) {
    SubmitParams p;
    p.tenant = "gold";
    p.name = "gold" + std::to_string(i);
    ASSERT_TRUE(client.submit(p).accepted);
  }
  SubmitParams p;
  p.name = "anon";
  ASSERT_TRUE(client.submit(p).accepted);

  const svc::SvcReport& rep = service.server->drainAndReport();
  ASSERT_EQ(2u, rep.tenants.size());  // sorted: "default" < "gold"
  EXPECT_EQ("default", rep.tenants[0].tenant);
  EXPECT_EQ(1.0, rep.tenants[0].weight);
  EXPECT_EQ(1u, rep.tenants[0].jobs_done);
  EXPECT_EQ("gold", rep.tenants[1].tenant);
  EXPECT_EQ(4.0, rep.tenants[1].weight);
  EXPECT_EQ(2u, rep.tenants[1].jobs_done);
  EXPECT_GT(rep.tenants[1].e2e_host_s.count, 0u);
}

}  // namespace
}  // namespace mbir::test
