// Tests for the recon facade: suites, golden protocol, reconstruct(), and
// cross-algorithm integration on a small problem.
#include <gtest/gtest.h>

#include <cmath>

#include "icd/convergence.h"
#include "icd/cost.h"
#include "recon/reconstructor.h"
#include "recon/suite.h"
#include "test_support.h"

namespace mbir {
namespace {

TEST(Suite, CasesAreDeterministic) {
  SuiteConfig cfg;
  cfg.geometry = test::tinyGeometry();
  Suite suite(cfg);
  const auto a = suite.makeCase(3);
  const auto b = suite.makeCase(3);
  EXPECT_EQ(a.scan().ground_truth.rmsDiff(b.scan().ground_truth), 0.0);
  double ydiff = 0.0;
  for (std::size_t i = 0; i < a.scan().y.flat().size(); ++i)
    ydiff += std::abs(double(a.scan().y.flat()[i]) - double(b.scan().y.flat()[i]));
  EXPECT_EQ(ydiff, 0.0);
}

TEST(Suite, CasesDiffer) {
  SuiteConfig cfg;
  cfg.geometry = test::tinyGeometry();
  Suite suite(cfg);
  const auto a = suite.makeCase(0);
  const auto b = suite.makeCase(1);
  EXPECT_GT(a.scan().ground_truth.rmsDiff(b.scan().ground_truth), 0.0);
}

TEST(Suite, MatrixSharedAcrossCases) {
  SuiteConfig cfg;
  cfg.geometry = test::tinyGeometry();
  Suite suite(cfg);
  const auto a = suite.makeCase(0);
  const auto b = suite.makeCase(1);
  EXPECT_EQ(&a.matrix(), &b.matrix());
}

TEST(Suite, BaggageFitsFov) {
  SuiteConfig cfg;
  cfg.geometry = test::tinyGeometry();
  Suite suite(cfg);
  EXPECT_LE(suite.config().baggage.field_radius_mm,
            cfg.geometry.fieldOfViewRadius());
  // Phantom content must be inside the grid: ground truth borders are air.
  const auto scan = suite.makeCase(2).scan();
  const int n = cfg.geometry.image_size;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(scan.ground_truth(0, i), 0.0f);
    EXPECT_EQ(scan.ground_truth(n - 1, i), 0.0f);
  }
}

TEST(Suite, SheppLoganCaseWorks) {
  SuiteConfig cfg;
  cfg.geometry = test::tinyGeometry();
  Suite suite(cfg);
  const auto c = suite.makeSheppLoganCase();
  EXPECT_GT(c.scan().y.sumSquares(), 0.0);
}

TEST(OwnedProblem, FbpInitNonZeroInsideObject) {
  const auto& p = test::tinyProblem();
  const Image2D x0 = p.fbpInitialImage();
  double mass = 0.0;
  for (float v : x0.flat()) mass += double(v);
  EXPECT_GT(mass, 0.0);
}

TEST(OwnedProblem, InitialErrorMatchesResidual) {
  const auto& p = test::tinyProblem();
  const Image2D x0 = p.fbpInitialImage();
  const Sinogram e = p.initialError(x0);
  // Energy of the residual is below the raw data energy (FBP explains most
  // of the sinogram).
  EXPECT_LT(e.sumSquares(), p.scan().y.sumSquares());
}

TEST(Golden, MoreEquitsLowerCost) {
  const auto& p = test::tinyProblem();
  const Image2D g5 = computeGolden(p, 5.0);
  const Image2D g20 = computeGolden(p, 20.0);
  const double c5 = computeCostFromScratch(p.view(), g5).total();
  const double c20 = computeCostFromScratch(p.view(), g20).total();
  EXPECT_LE(c20, c5);
}

class AlgorithmParam : public ::testing::TestWithParam<Algorithm> {};

TEST_P(AlgorithmParam, ReconstructConvergesUnderThreshold) {
  const auto& p = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  const RunConfig cfg = test::tinyRunConfig(GetParam());
  const RunResult r = reconstruct(p, golden, cfg);
  EXPECT_TRUE(r.converged) << algorithmName(GetParam());
  EXPECT_LT(r.final_rmse_hu, kConvergedRmseHu);
  EXPECT_GT(r.equits, 0.0);
  EXPECT_GT(r.modeled_seconds, 0.0);
  EXPECT_FALSE(r.curve.empty());
  // Curve ends below where it starts.
  EXPECT_LT(r.curve.back().rmse_hu, r.curve.front().rmse_hu + 1e-9);
  // Image is physical.
  for (float v : r.image.flat()) EXPECT_GE(v, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(All, AlgorithmParam,
                         ::testing::Values(Algorithm::kSequentialIcd,
                                           Algorithm::kPsvIcd,
                                           Algorithm::kGpuIcd));

TEST(ReconIntegration, AlgorithmsAgreePairwise) {
  const auto& p = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  RunConfig cfg = test::tinyRunConfig(Algorithm::kSequentialIcd);
  const auto seq = reconstruct(p, golden, cfg);
  cfg.algorithm = Algorithm::kPsvIcd;
  const auto psv = reconstruct(p, golden, cfg);
  cfg.algorithm = Algorithm::kGpuIcd;
  const auto gpu = reconstruct(p, golden, cfg);

  EXPECT_LT(rmseHu(seq.image, psv.image), 15.0);
  EXPECT_LT(rmseHu(seq.image, gpu.image), 15.0);
  EXPECT_LT(rmseHu(psv.image, gpu.image), 15.0);

  // Modeled machine ordering: the parallel engines beat sequential. (At
  // this tiny 32^2 scale kernel-launch overhead can put GPU-ICD behind
  // PSV-ICD; the GPU advantage at realistic sizes is what bench/table1
  // demonstrates.)
  EXPECT_GT(seq.modeled_seconds, psv.modeled_seconds);
  EXPECT_GT(seq.modeled_seconds, gpu.modeled_seconds);
}

TEST(ReconIntegration, CurveTimesAreMonotone) {
  const auto& p = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  const auto r = reconstruct(p, golden, test::tinyRunConfig(Algorithm::kGpuIcd));
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].equits, r.curve[i - 1].equits);
    EXPECT_GE(r.curve[i].modeled_seconds, r.curve[i - 1].modeled_seconds);
  }
}

TEST(ReconIntegration, StopRmseDisabledRunsToMaxEquits) {
  const auto& p = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  RunConfig cfg;
  cfg.algorithm = Algorithm::kSequentialIcd;
  cfg.stop_rmse_hu = -1.0;
  cfg.max_equits = 3.0;
  const auto r = reconstruct(p, golden, cfg);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.equits, 2.0);
}

TEST(ReconIntegration, GpuStatsExposed) {
  const auto& p = test::tinyProblem();
  const Image2D& golden = test::tinyGolden();
  const auto r = reconstruct(p, golden, test::tinyRunConfig(Algorithm::kGpuIcd));
  ASSERT_TRUE(r.gpu_stats.has_value());
  EXPECT_GT(r.gpu_stats->kernels_launched, 0);
  EXPECT_EQ(r.gpu_stats->per_kernel.count("mbir_update"), 1u);
  EXPECT_GT(r.gpu_stats->kernel_stats.svb_access_bytes, 0.0);
}

TEST(PriorConfig, BothKindsConstruct) {
  PriorConfig q;
  EXPECT_NE(makePrior(q), nullptr);
  PriorConfig quad;
  quad.kind = PriorConfig::Kind::kQuadratic;
  EXPECT_NE(makePrior(quad), nullptr);
}

}  // namespace
}  // namespace mbir
